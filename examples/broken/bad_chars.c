/* Stray characters the lexer has no token for: each one is a recoverable
   diagnostic, and the functions around them analyze normally. */

int f(int *p) { return *p; }
@
int g(const int *q) { return *q; }
`
int h(int *r) { return *r; }
