/* The second declarator kills the whole typedef declaration during
   recovery, so `use` refers to a typedef the program tables never saw:
   it is demoted to a degraded outcome instead of crashing the run. */

typedef int T, 5;

int use(T *p) { return *p; }

int ok(int *q) { return *q; }
