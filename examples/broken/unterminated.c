/* An unterminated comment swallows the rest of the file; everything
   before it still parses and analyzes. */

int before(const int *p) { return *p; }

/* this comment never ends...
int after(int *q) { return *q; }
