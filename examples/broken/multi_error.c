/* Several independent faults: cqualc must report one diagnostic per
   fault, keep analyzing the intact functions, and exit 2. */

int good1(int *p) { return *p; }

int = 3;

int good2(const int *q) { return *q; }

int broken_body(int *r) { return * ; }

int 5bad;

struct pair { int x; int y; };

int good3(struct pair *pp) { return pp->x; }
