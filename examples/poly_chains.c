/* Deep chains of tiny polymorphic helpers: the scheme-compaction
   showcase (run with and without --no-compact and compare the
   "qualifier variables" line; the const report is identical).

   Each step function just forwards its argument, but under
   polymorphic analysis every level's type scheme embeds an instance
   of the level below it — without compaction the constraint system
   grows quadratically with chain depth. Compaction projects each
   scheme onto its interface variables, so growth is linear.

   The trim/skip helpers are shared flat-returning readers called
   several times with the same argument inside one caller: eligible
   calls after the first reuse the first call's instantiation (the
   "memoized instantiations" stat). */

int printf(const char *fmt, ...);

/* chain A: forwarders over a const-preserving cursor */
char *a0(char *s) { return s; }
char *a1(char *s) { return a0(s); }
char *a2(char *s) { return a1(s); }
char *a3(char *s) { return a2(s); }
char *a4(char *s) { return a3(s); }
char *a5(char *s) { return a4(s); }
char *a6(char *s) { return a5(s); }
char *a7(char *s) { return a6(s); }

/* chain B, built on top of the whole of chain A */
char *b0(char *s) { return a7(s); }
char *b1(char *s) { return b0(s); }
char *b2(char *s) { return b1(s); }
char *b3(char *s) { return b2(s); }
char *b4(char *s) { return b3(s); }
char *b5(char *s) { return b4(s); }
char *b6(char *s) { return b5(s); }
char *b7(char *s) { return b6(s); }

/* shared flat readers: called repeatedly with the same argument */
int length(const char *s) {
  int n = 0;
  while (*s) { n++; s++; }
  return n;
}

int spaces(const char *s) {
  int n = 0;
  while (*s) { if (*s == ' ') n++; s++; }
  return n;
}

/* reads only, through the full B chain */
int probe(char *s) {
  char *t;
  t = b7(s);
  return *t;
}

/* several same-argument calls of the shared readers: memo hits */
int poll(char *s) {
  int n;
  n = length(s) + length(s);
  n = n + spaces(s) + spaces(s);
  return n;
}

/* writes through the A chain: its argument can never be const */
void smudge(char *dst) {
  char *t;
  t = a7(dst);
  *t = 'x';
}

int main(int argc, char **argv) {
  char clean[32];
  char dirty[32];
  probe(clean);
  poll(clean);
  smudge(dirty);
  printf("%d\n", length("chains"));
  return 0;
}
