/* Three-level taint over C, using the user-defined lattice in
 * examples/taint3.lat:
 *
 *     untainted < maybe_tainted < tainted
 *
 * $-annotations name levels directly. half_clean strips shell
 * metacharacters: its result is no longer an injection vector but its
 * content is still untrusted, so it is declared $maybe_tainted. Logging
 * accepts that; executing a command does not.
 *
 * Run with:
 *   cqualc --lattice examples/taint3.lat examples/taint_levels.c --positions
 *
 * Expected: one type error — the exec_cmd call. The two-point taint
 * lattice (--taint) cannot express this program: half_clean's result is
 * either tainted (log_msg flagged, a false positive) or untainted (the
 * exec_cmd bug missed).
 */

$tainted char *read_net(char *buf);
$maybe_tainted char *half_clean($tainted char *s);
void log_msg($maybe_tainted char *msg);
void exec_cmd($untainted char *cmd);

void handler(char *b) {
  char *raw;
  char *clean;
  raw = read_net(b);
  clean = half_clean(raw);
  log_msg(clean);  /* ok: maybe_tainted <= maybe_tainted */
  exec_cmd(clean); /* error: maybe_tainted </= untainted */
}
