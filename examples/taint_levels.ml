(* Multi-level taint: a user-defined qualifier lattice (PR 5).

   The classic taint analysis (examples/taint_tracking.ml) has exactly
   two levels — a value is tainted or it is not. Real sanitizers are
   rarely that binary: a function that strips shell metacharacters
   removes the injection vector but cannot vouch for the content. A
   three-level chain

       untainted  <  maybe_tainted  <  tainted

   lets the type system say so: logging accepts anything up to
   [maybe_tainted], while executing a command requires [untainted].

   The lattice is declared programmatically here with
   [Qualifier.Order.chain_exn]; the same space can be loaded from a
   config file with [--lattice examples/taint3.lat] on both CLIs.

   Run with: dune exec examples/taint_levels.exe *)

open Qlambda
module Q = Typequal.Qualifier
module Space = Typequal.Lattice.Space

(* one ordered coordinate: a three-level chain (2 bits, Birkhoff-encoded) *)
let taint =
  Q.ordered "taint"
    (Q.Order.chain_exn [ "untainted"; "maybe_tainted"; "tainted" ])

let space = Space.create [ taint ]

let show sp src =
  Fmt.pr "@.%s@." src;
  match Infer.check ~poly:true sp (Parse.parse src) with
  | Ok _ -> Fmt.pr "  => SAFE (typechecks)@."
  | Error (m :: _) -> Fmt.pr "  => FLAGGED: %s@." m
  | Error [] -> ()

(* [half_clean] strips metacharacters: its result is fresh, so it is no
   longer an injection vector, but the content is still untrusted —
   annotate the result [maybe_tainted]. *)
let half_cleaned use =
  "let read_net = fun u -> @[tainted] 42 in\n\
   let half_clean = fun x -> if x == 0 then @[maybe_tainted] 0 else \
   @[maybe_tainted] 1 in\n" ^ use

let () =
  Fmt.pr "== three-level taint: untainted < maybe_tainted < tainted ==@.";
  Fmt.pr "annotations and assertions name levels directly@.";

  (* logging tolerates half-cleaned data: maybe_tainted <= maybe_tainted *)
  show space
    (half_cleaned
       "let log = fun x -> (x |[maybe_tainted]) in\n\
        log (half_clean (read_net ()))");

  (* ...but executing it still needs full trust: maybe_tainted </= untainted *)
  show space
    (half_cleaned
       "let exec = fun cmd -> (cmd |[untainted]) in\n\
        exec (half_clean (read_net ()))");

  (* raw network data fails even the logging bound *)
  show space
    (half_cleaned
       "let log = fun x -> (x |[maybe_tainted]) in\n\
        log (read_net ())");

  (* trusted data passes the strictest sink *)
  show space
    "let exec = fun cmd -> (cmd |[untainted]) in\n\
     exec 7";

  (* The two-point lattice cannot express this. With only
     tainted/untainted, half_clean's result is either tainted — and the
     harmless log call above is FLAGGED (false positive) — or untainted,
     and the dangerous exec call is SAFE (missed bug). *)
  Fmt.pr "@.-- the same scenario under the two-point lattice --@.";
  let two_point = Rules.taint_space in
  show two_point
    "let read_net = fun u -> @[tainted] 42 in\n\
     let half_clean = fun x -> if x == 0 then @[tainted] 0 else @[tainted] 1 \
     in\n\
     let log = fun x -> (x |[~tainted]) in\n\
     log (half_clean (read_net ()))";
  Fmt.pr "   (false positive: logging half-cleaned data is fine)@.";
  show two_point
    "let read_net = fun u -> @[tainted] 42 in\n\
     let half_clean = fun x -> if x == 0 then 0 else 1 in\n\
     let exec = fun cmd -> (cmd |[~tainted]) in\n\
     exec (half_clean (read_net ()))";
  Fmt.pr "   (missed bug: half-cleaned data reached exec)@."
