(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 4.4) on the synthetic benchmark suite, plus the
   scaling/overhead claims of the text and the ablations of DESIGN.md.

   Sections (run all by default, or select: table1 table2 figure6 scaling
   parallel compaction lattice ablation solver extensions micro):

     table1  — the benchmark suite (paper Table 1)
     table2  — compile/mono/poly times (avg of 5, like the paper) and
               Declared / Mono / Poly / Total-possible counts (Table 2)
     figure6 — stacked percentage bars of Declared / Mono-added /
               Poly-added / Other per benchmark (Figure 6), plus CSV
     scaling — inference time vs program size; checks "scales roughly
               linearly" and "polymorphic at most 3x monomorphic"
     parallel— the multicore wavefront engine at 1/2/4 domains on a
               32-kloc workload; writes BENCH_parallel.json
     compaction — scheme compaction + instantiation memoization on vs
               off (poly/polyrec, serial and --jobs 4) on a 32-kloc
               chain-heavy workload; writes BENCH_compaction.json
     lattice — const analysis in the default two-point space vs the same
               rules hosted next to an unconstrained three-level chain
               (user-defined lattice), jobs 1 and 4; asserts identical
               verdicts and writes BENCH_lattice.json
     ablation— (a) unsound covariant ref vs (SubRef); (b) struct field
               sharing off; (c) worklist vs naive solver
     solver  — online cycle elimination + incremental re-solve vs the
               seed solver (full re-solve per query, no unification) on
               cyclic / chain / polymorphic-instantiation workloads;
               also runs under `ablation` and `micro`
     extensions — polymorphic recursion (Section 4.3's wish) and scheme
               simplification (Section 6's open problem)
     micro   — Bechamel micro-benchmarks of the solver and both inference
               modes
     cache   — the persistent scheme cache on the CI smoke corpus: cold
               populate vs warm no-op (>= 5x) vs one dirty unit (only
               its SCCs re-infer), plus a fault-injection sweep —
               truncation, bit flips, magic/version skew — asserting
               every corruption is rejected, counted, and recomputed to
               a byte-identical report; writes BENCH_cache.json.
               TYPEQUAL_CACHE_LINES overrides the line target.
     scale   — the flat-arena push: a 1M+ line multi-file project analyzed
               at jobs 1/2/4/8 (wall time, peak heap, solver counters,
               serial-vs-parallel report digest), plus an arena-vs-
               pre-arena solver core ablation sized to the 32-kloc
               workloads; writes BENCH_scale.json. Only runs when named
               explicitly (or under "all") — the corpus is large.
               TYPEQUAL_SCALE_LINES overrides the line target.
     frontend— per-unit parse+link vs the megastring concat oracle on the
               million-line corpus: compile wall time (>= 1.3x serial),
               compile-phase peak heap (strictly below concat's),
               byte-identical reports at jobs 1/4 under both frontends,
               and the per-unit AST cache re-parsing exactly the dirty
               unit; writes BENCH_frontend.json. Only runs when named
               explicitly (or under "all").
               TYPEQUAL_FRONTEND_LINES overrides the line target.
     daemon  — the persistent Session behind typequald on the CI smoke
               corpus: cold-analysis wall time, warm position-query
               latency percentiles (p50 target <= 10 ms, enforced),
               single-unit edit + re-query percentiles with the honest
               speedup vs cold (10x target recorded, not enforced: the
               monotone store's linear rebuild floor caps it), and a
               warm-vs-cold render byte-identity check; writes
               BENCH_daemon.json. Only runs when named explicitly (or
               under "all"). TYPEQUAL_DAEMON_LINES overrides the line
               target.

   Every section that runs records wall times, sizes and solver stats
   into BENCH_solver.json (machine-readable, tracked across PRs). *)

open Cqual
module TS = Typequal.Solver

(* ------------------------------------------------------------------ *)
(* Machine-readable results: BENCH_solver.json                         *)
(* ------------------------------------------------------------------ *)

(* Hand-rolled JSON (no json library in the dependency set): every bench
   section that runs records its wall times, sizes and solver stats here,
   and the accumulated object is written out at exit so the perf
   trajectory is tracked across PRs. *)
type json =
  | Jraw of string
  | Jstr of string
  | Jlist of json list
  | Jobj of (string * json) list

let rec pp_json buf = function
  | Jraw s -> Buffer.add_string buf s
  | Jstr s ->
      Buffer.add_char buf '"';
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string buf "\\\""
          | '\\' -> Buffer.add_string buf "\\\\"
          | '\n' -> Buffer.add_string buf "\\n"
          | c -> Buffer.add_char buf c)
        s;
      Buffer.add_char buf '"'
  | Jlist l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          pp_json buf x)
        l;
      Buffer.add_char buf ']'
  | Jobj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          pp_json buf (Jstr k);
          Buffer.add_char buf ':';
          pp_json buf v)
        kvs;
      Buffer.add_char buf '}'

let jf v = Jraw (Printf.sprintf "%.6f" v)
let ji (i : int) = Jraw (string_of_int i)
let jb b = Jraw (if b then "true" else "false")

let jstats (s : TS.stats) =
  Jobj
    [
      ("vars_created", ji s.TS.vars_created);
      ("vars_unified", ji s.TS.vars_unified);
      ("edges_added", ji s.TS.edges_added);
      ("edges_deduped", ji s.TS.edges_deduped);
      ("cycles_collapsed", ji s.TS.cycles_collapsed);
      ("incr_solves", ji s.TS.incr_solves);
      ("full_solves", ji s.TS.full_solves);
      ("worklist_pops", ji s.TS.worklist_pops);
      ("solve_s", jf s.TS.solve_s);
      ("absorb_s", jf s.TS.absorb_s);
      ("congen_s", jf s.TS.congen_s);
      ("generalize_s", jf s.TS.generalize_s);
      ("compact_s", jf s.TS.compact_s);
      ("instantiate_s", jf s.TS.instantiate_s);
      ("report_s", jf s.TS.report_s);
      ("scheme_vars_before", ji s.TS.scheme_vars_before);
      ("scheme_vars_after", ji s.TS.scheme_vars_after);
      ("scheme_edges_before", ji s.TS.scheme_edges_before);
      ("scheme_edges_after", ji s.TS.scheme_edges_after);
      ("instantiations_memo_hits", ji s.TS.instantiations_memo_hits);
      ("memo_candidates", ji s.TS.memo_candidates);
      ("memo_misses", ji s.TS.memo_misses);
      ("memo_reject_nonflat_ret", ji s.TS.memo_reject_nonflat_ret);
      ("memo_reject_may_violate", ji s.TS.memo_reject_may_violate);
      ("empty_batches_skipped", ji s.TS.empty_batches_skipped);
      ("heap_words", ji s.TS.heap_words);
      ("top_heap_words", ji s.TS.top_heap_words);
      ("cores_available", ji s.TS.cores_available);
    ]

(* set by the cache section while measuring warm runs: any section whose
   numbers could have been served from the persistent cache says so in
   its env block *)
let cache_used = ref false

(* memory + machine context, attached to every bench section so the perf
   trajectory tracks heap growth alongside wall time *)
(* the GC profile the run applied (TYPEQUAL_GC), recorded in every env
   block so perf trajectories are comparable *)
let gc_profile = ref "off"

let jenv () =
  let g = Gc.quick_stat () in
  Jobj
    [
      ("heap_words", ji g.Gc.heap_words);
      ("top_heap_words", ji g.Gc.top_heap_words);
      ("cores_available", ji (Typequal.Pool.cores_available ()));
      ("cache_used", jb !cache_used);
      ("gc_profile", Jstr !gc_profile);
    ]

let bench_sections : (string * json) list ref = ref []

let record_section name j =
  let j =
    match j with
    | Jobj kvs -> Jobj (("env", jenv ()) :: kvs)
    | other -> Jobj [ ("env", jenv ()); ("data", other) ]
  in
  bench_sections := (name, j) :: !bench_sections

let write_json () =
  match !bench_sections with
  | [] -> ()
  | secs ->
      let buf = Buffer.create 4096 in
      pp_json buf
        (Jobj
           [
             ("paper", Jstr "A Theory of Type Qualifiers (PLDI 1999)");
             ("sections", Jobj (List.rev secs));
           ]);
      let oc = open_out "BENCH_solver.json" in
      output_string oc (Buffer.contents buf);
      output_char oc '\n';
      close_out oc;
      Fmt.pr "@.wrote BENCH_solver.json@."

let paper_table2 =
  (* the paper's reported numbers, for side-by-side shape comparison:
     name, (declared, mono, poly, total) *)
  [
    ("woman-3.0a-sim", (50, 67, 72, 95));
    ("patch-2.5-sim", (84, 99, 107, 148));
    ("m4-1.4-sim", (88, 249, 262, 370));
    ("diffutils-2.7-sim", (153, 209, 243, 372));
    ("ssh-1.2.26-sim", (147, 316, 347, 547));
    ("uucp-1.04-sim", (433, 1116, 1299, 1773));
  ]

let time_avg n f =
  (* the paper reports the average of five runs *)
  let ts =
    List.init n (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (f ());
        Unix.gettimeofday () -. t0)
  in
  List.fold_left ( +. ) 0. ts /. float n

let time_best n f =
  (* minimum over n runs: the standard noise reduction for wall-clock
     measurements on shared (CI) machines *)
  List.fold_left min infinity
    (List.init n (fun _ ->
         let t0 = Unix.gettimeofday () in
         ignore (f ());
         Unix.gettimeofday () -. t0))

(* ------------------------------------------------------------------ *)

let table1 () =
  Fmt.pr "@.=== Table 1: Benchmarks for const inference ===@.";
  Fmt.pr "(synthetic stand-ins regenerated deterministically at the paper's@.";
  Fmt.pr " line counts; see DESIGN.md 'Substitutions')@.@.";
  Fmt.pr "%-20s %8s  %s@." "Name" "Lines" "Description";
  List.iter
    (fun (b : Cbench.Suite.bench) ->
      Fmt.pr "%-20s %8d  %s@." b.b_name b.b_lines b.b_description)
    Cbench.Suite.table1

(* ------------------------------------------------------------------ *)

type t2row = {
  name : string;
  compile_s : float;
  mono_s : float;
  poly_s : float;
  declared : int;
  mono : int;
  poly : int;
  total : int;
  errors : int;
}

let table2_rows ?(runs = 5) () : t2row list =
  let jrows = ref [] in
  let rows =
    List.map
      (fun (b : Cbench.Suite.bench) ->
        let src = Cbench.Suite.source_of b in
        let compile_s = time_avg runs (fun () -> Driver.compile src) in
        let prog = Driver.compile src in
        let mono_s =
          time_avg runs (fun () ->
              let env, ifaces = Analysis.run Analysis.Mono prog in
              Report.measure env ifaces)
        in
        let poly_s =
          time_avg runs (fun () ->
              let env, ifaces = Analysis.run Analysis.Poly prog in
              Report.measure env ifaces)
        in
        let env_m, if_m = Analysis.run Analysis.Mono prog in
        let rm = Report.measure env_m if_m in
        let env_p, if_p = Analysis.run Analysis.Poly prog in
        let rp = Report.measure env_p if_p in
        jrows :=
          Jobj
            [
              ("name", Jstr b.b_name);
              ("lines", ji b.b_lines);
              ("compile_s", jf compile_s);
              ("mono_s", jf mono_s);
              ("poly_s", jf poly_s);
              ("declared", ji rm.Report.declared);
              ("mono", ji rm.Report.possible);
              ("poly", ji rp.Report.possible);
              ("total", ji rm.Report.total);
              ("mono_solver", jstats (Analysis.stats env_m));
              ("poly_solver", jstats (Analysis.stats env_p));
            ]
          :: !jrows;
        {
          name = b.b_name;
          compile_s;
          mono_s;
          poly_s;
          declared = rm.Report.declared;
          mono = rm.Report.possible;
          poly = rp.Report.possible;
          total = rm.Report.total;
          errors = rm.Report.type_errors + rp.Report.type_errors;
        })
      Cbench.Suite.table1
  in
  record_section "table2" (Jlist (List.rev !jrows));
  rows

let table2 rows =
  Fmt.pr
    "@.=== Table 2: Number of inferred possibly-const positions ===@.@.";
  Fmt.pr "%-20s %11s %11s %11s %9s %6s %6s %6s@." "Name" "Compile(s)"
    "Mono(s)" "Poly(s)" "Declared" "Mono" "Poly" "Total";
  List.iter
    (fun r ->
      Fmt.pr "%-20s %11.3f %11.3f %11.3f %9d %6d %6d %6d@." r.name
        r.compile_s r.mono_s r.poly_s r.declared r.mono r.poly r.total)
    rows;
  Fmt.pr "@.shape checks against the paper (absolute counts differ — the@.";
  Fmt.pr "substrate is synthetic — but each claimed relation must hold):@.";
  let ok = ref true in
  let check name cond detail =
    Fmt.pr "  [%s] %s%s@." (if cond then "ok" else "FAIL") name detail;
    if not cond then ok := false
  in
  List.iter
    (fun r ->
      let p = List.assoc_opt r.name paper_table2 in
      let paper_ratio =
        match p with
        | Some (_, m, pl, _) ->
            Printf.sprintf " (paper: %.2f)" (float pl /. float m)
        | None -> ""
      in
      check
        (Printf.sprintf "%s: declared <= mono <= poly <= total" r.name)
        (r.declared <= r.mono && r.mono <= r.poly && r.poly <= r.total)
        "";
      check
        (Printf.sprintf "%s: poly/mono in [1.0, 1.25]" r.name)
        (let ratio = float r.poly /. float r.mono in
         ratio >= 1.0 && ratio <= 1.25)
        (Printf.sprintf " measured %.2f%s" (float r.poly /. float r.mono)
           paper_ratio);
      check
        (Printf.sprintf "%s: poly time <= 3x mono time" r.name)
        (r.poly_s <= (3. *. r.mono_s) +. 0.005)
        (Printf.sprintf " measured %.2fx" (r.poly_s /. r.mono_s));
      check (Printf.sprintf "%s: no type errors" r.name) (r.errors = 0) "")
    rows;
  check "suite: more consts inferable than declared everywhere"
    (List.for_all (fun r -> r.mono > r.declared) rows)
    "";
  (* uucp headline: "more than 2.5 times more consts than are actually
     present" — we check the same direction at a conservative factor *)
  (let u = List.find (fun r -> r.name = "uucp-1.04-sim") rows in
   check "uucp: poly/declared >= 2"
     (float u.poly /. float u.declared >= 2.)
     (Printf.sprintf " measured %.2f (paper: %.2f)"
        (float u.poly /. float u.declared)
        (1299. /. 433.)));
  Fmt.pr "%s@."
    (if !ok then "ALL SHAPE CHECKS PASSED" else "SHAPE CHECKS FAILED")

(* ------------------------------------------------------------------ *)

let figure6 rows =
  Fmt.pr "@.=== Figure 6: Number of inferred consts for benchmarks ===@.";
  Fmt.pr "(stacked percentage of total possible positions)@.@.";
  let width = 50 in
  Fmt.pr "%-20s %s@." ""
    "0%        20%       40%       60%       80%      100%";
  Fmt.pr "%-20s |%s|@." "" (String.make (width - 2) '-');
  List.iter
    (fun r ->
      let pct x = float x /. float r.total in
      let chars f c = String.make (int_of_float ((f *. float width) +. 0.5)) c in
      let bar =
        chars (pct r.declared) 'D'
        ^ chars (pct (r.mono - r.declared)) 'M'
        ^ chars (pct (r.poly - r.mono)) 'P'
      in
      let bar =
        if String.length bar < width then
          bar ^ String.make (width - String.length bar) '.'
        else String.sub bar 0 width
      in
      Fmt.pr "%-20s %s@." r.name bar)
    rows;
  Fmt.pr
    "@.legend: D=Declared  M=Mono (additional)  P=Poly (additional)  \
     .=Other@.";
  Fmt.pr "@.CSV:@.";
  Fmt.pr "name,declared_pct,mono_added_pct,poly_added_pct,other_pct@.";
  List.iter
    (fun r ->
      let pct x = 100. *. float x /. float r.total in
      Fmt.pr "%s,%.1f,%.1f,%.1f,%.1f@." r.name (pct r.declared)
        (pct (r.mono - r.declared))
        (pct (r.poly - r.mono))
        (pct (r.total - r.poly)))
    rows

(* ------------------------------------------------------------------ *)

let scaling () =
  Fmt.pr "@.=== Scaling: inference time vs program size (Section 4.4) ===@.";
  Fmt.pr "\"the inference scales roughly linearly with the program size\"@.@.";
  Fmt.pr "%8s %8s %10s %10s %10s %13s@." "lines" "funcs" "mono(s)" "poly(s)"
    "poly/mono" "us/line(mono)";
  let sizes = [ 1000; 2000; 4000; 8000; 16000; 32000 ] in
  let jrows = ref [] in
  let per_line =
    List.map
      (fun n ->
        let src = Cbench.Gen.generate ~seed:(1000 + n) ~target_lines:n () in
        let prog = Driver.compile src in
        let nfun = List.length (Cfront.Cprog.functions prog) in
        let mono_s =
          time_avg 3 (fun () ->
              let env, ifaces = Analysis.run Analysis.Mono prog in
              Report.measure env ifaces)
        in
        let poly_s =
          time_avg 3 (fun () ->
              let env, ifaces = Analysis.run Analysis.Poly prog in
              Report.measure env ifaces)
        in
        let env, ifaces = Analysis.run Analysis.Poly prog in
        ignore (Report.measure env ifaces);
        jrows :=
          Jobj
            [
              ("lines", ji n);
              ("functions", ji nfun);
              ("mono_s", jf mono_s);
              ("poly_s", jf poly_s);
              ("poly_solver", jstats (Analysis.stats env));
            ]
          :: !jrows;
        Fmt.pr "%8d %8d %10.3f %10.3f %10.2f %13.2f@." n nfun mono_s poly_s
          (poly_s /. mono_s)
          (mono_s /. float n *. 1e6);
        (n, mono_s, poly_s))
      sizes
  in
  record_section "scaling" (Jlist (List.rev !jrows));
  match (List.hd per_line, List.nth per_line (List.length per_line - 1)) with
  | (n0, m0, _), (n1, m1, _) ->
      let r0 = m0 /. float n0 and r1 = m1 /. float n1 in
      Fmt.pr
        "@.[%s] per-line cost ratio large/small = %.2f (roughly linear if \
         < 4)@."
        (if r1 /. r0 < 4. then "ok" else "FAIL")
        (r1 /. r0)

(* ------------------------------------------------------------------ *)

let ablation () =
  Fmt.pr "@.=== Ablations (DESIGN.md) ===@.";

  (* (a) unsound covariant ref rule vs the paper's invariant (SubRef) *)
  Fmt.pr
    "@.(a) ref subtyping: (SubRef) invariance vs the unsound covariant rule@.";
  let counterexample =
    "let x = ref (@[nonzero] 37) in\n\
     let clear = fun p -> p := @[~nonzero] 0 in\n\
     clear x;\n\
     (!x) |[nonzero]"
  in
  let open Qlambda in
  let space = Rules.cn_space in
  let ast = Parse.parse counterexample in
  let sound = Infer.typechecks ~hooks:Rules.cn_hooks space ast in
  let unsound =
    Infer.typechecks ~hooks:Rules.cn_hooks ~unsound_ref:true space ast
  in
  let stuck =
    match Eval.run space ast with Eval.Stuck_at _ -> true | _ -> false
  in
  Fmt.pr "    Section 2.4 counterexample: sound rule %s, unsound rule %s,@."
    (if sound then "ACCEPTS (bug!)" else "rejects")
    (if unsound then "accepts" else "REJECTS (unexpected)");
  Fmt.pr "    and the program indeed gets stuck at runtime: %b@." stuck;

  (* (b) struct field sharing off *)
  Fmt.pr "@.(b) struct field sharing (Section 4.2) on vs off@.";
  let shared_conflict =
    "struct buf { char *data; };\n\
     void f(struct buf *x, const char *s) { x->data = s; }\n\
     void g(struct buf *y) { *(y->data) = 'c'; }"
  in
  let with_sharing = Driver.run_source ~mode:Analysis.Mono shared_conflict in
  let without =
    Driver.run_source ~mode:Analysis.Mono ~field_sharing:false shared_conflict
  in
  Fmt.pr
    "    conflicting uses of one struct type: sharing detects %d error(s), \
     no-sharing misses it (%d errors)@."
    with_sharing.Driver.results.Report.type_errors
    without.Driver.results.Report.type_errors;
  let b = List.nth Cbench.Suite.table1 2 in
  let src = Cbench.Suite.source_of b in
  let on = Driver.run_source ~mode:Analysis.Mono src in
  let off = Driver.run_source ~mode:Analysis.Mono ~field_sharing:false src in
  Fmt.pr
    "    %s possible consts: sharing=%d, no-sharing=%d (no-sharing is \
     unsound, not more precise)@."
    b.b_name on.Driver.results.Report.possible
    off.Driver.results.Report.possible;

  (* (c) worklist vs naive solver *)
  Fmt.pr "@.(c) solver: worklist propagation vs naive round-robin@.";
  let module S = Typequal.Solver in
  let sp = Analysis.const_space in
  let st =
    let st = S.create sp in
    let n = 20000 in
    let vars = Array.init n (fun _ -> S.fresh st) in
    let rng = Cbench.Rng.create 7 in
    for i = 0 to n - 1 do
      S.add_leq_vv st vars.(i) vars.(Cbench.Rng.int rng n);
      if Cbench.Rng.int rng 100 < 3 then
        S.add_leq_cv st (Typequal.Lattice.Elt.top sp) vars.(i)
    done;
    st
  in
  let t_work = time_avg 3 (fun () -> S.solve_least st) in
  let t_naive = time_avg 3 (fun () -> S.solve_least_naive st) in
  Fmt.pr "    20k vars / 20k edges: worklist %.4fs, naive %.4fs (%.1fx)@."
    t_work t_naive (t_naive /. t_work);
  record_section "ablation"
    (Jobj
       [
         ("worklist_s", jf t_work);
         ("naive_s", jf t_naive);
         ("solver", jstats (S.stats st));
       ])

(* ------------------------------------------------------------------ *)

(* Solver ablation: cycle elimination + incremental re-solving vs the
   seed solver's behavior (no unification, full re-solve after every
   constraint addition). Each workload interleaves constraint additions
   with solution queries, which is exactly the access pattern inference
   produces: generate some constraints, classify some variables, repeat. *)
let solver_ablation () =
  Fmt.pr
    "@.=== Solver ablation: online cycle elimination + incremental solve \
     ===@.";
  let sp = Analysis.const_space in
  let top = Typequal.Lattice.Elt.top sp in
  let create = function
    | `Seed -> TS.create ~cycle_elim:false sp
    | `Optimized -> TS.create ~cycle_elim:true sp
  in
  (* the seed solver invalidated everything on any addition and re-ran the
     full least+greatest fixpoint at the next query *)
  let query strategy st v =
    (match strategy with
    | `Seed -> ignore (TS.solve_from_scratch st)
    | `Optimized -> ());
    ignore (TS.least st v)
  in
  let cyclic strategy =
    (* mutual-subtyping pairs chained together: the kappa1 <= kappa2 <=
       kappa1 shape ref cells produce constantly *)
    let n = 3000 and stride = 30 in
    let st = create strategy in
    let vars = Array.init n (fun _ -> TS.fresh st) in
    for i = 0 to n - 2 do
      TS.add_leq_vv st vars.(i) vars.(i + 1);
      if i mod 2 = 0 then TS.add_leq_vv st vars.(i + 1) vars.(i);
      if i mod 100 = 0 then TS.add_leq_cv st top vars.(i);
      if i mod stride = 0 then query strategy st vars.(i)
    done;
    st
  in
  let chain strategy =
    (* acyclic control: cycle elimination must never hurt *)
    let n = 3000 and stride = 30 in
    let st = create strategy in
    let vars = Array.init n (fun _ -> TS.fresh st) in
    TS.add_leq_cv st top vars.(0);
    for i = 0 to n - 2 do
      TS.add_leq_vv st vars.(i) vars.(i + 1);
      if i mod stride = 0 then query strategy st vars.(i + 1)
    done;
    st
  in
  let poly strategy =
    (* a scheme whose body carries an internal two-cycle, instantiated
       repeatedly against one shared variable — polymorphic instantiation's
       signature workload *)
    let st = create strategy in
    let shared = TS.fresh st in
    let (g, a, b), atoms =
      TS.recording st (fun () ->
          let g = TS.fresh st and a = TS.fresh st and b = TS.fresh st in
          TS.add_leq_vv st g a;
          TS.add_leq_vv st a b;
          TS.add_leq_vv st b a;
          TS.add_leq_vv st b shared;
          (g, a, b))
    in
    let sch = TS.make_scheme ~locals:[ g; a; b ] ~atoms in
    for i = 0 to 999 do
      let rn = TS.instantiate st sch in
      TS.add_leq_cv st top (rn g);
      if i mod 10 = 0 then query strategy st shared
    done;
    st
  in
  let workloads =
    [ ("cyclic", cyclic, true); ("chain", chain, false); ("poly", poly, true) ]
  in
  Fmt.pr "%-8s %12s %12s %9s@." "workload" "seed(s)" "optimized(s)" "speedup";
  let ok = ref true in
  let check name cond detail =
    Fmt.pr "  [%s] %s%s@." (if cond then "ok" else "FAIL") name detail;
    if not cond then ok := false
  in
  let jrows =
    List.map
      (fun (name, wl, want_2x) ->
        let seed_s = time_avg 3 (fun () -> wl `Seed) in
        let opt_s = time_avg 3 (fun () -> wl `Optimized) in
        let stats = TS.stats (wl `Optimized) in
        Fmt.pr "%-8s %12.4f %12.4f %8.1fx@." name seed_s opt_s
          (seed_s /. opt_s);
        (name, seed_s, opt_s, want_2x, stats))
      workloads
  in
  List.iter
    (fun (name, seed_s, opt_s, want_2x, _) ->
      check
        (Printf.sprintf "%s: optimized never slower" name)
        (opt_s <= seed_s *. 1.05)
        (Printf.sprintf " (%.4fs vs %.4fs)" opt_s seed_s);
      if want_2x then
        check
          (Printf.sprintf "%s: optimized >= 2x faster" name)
          (seed_s /. opt_s >= 2.)
          (Printf.sprintf " measured %.1fx" (seed_s /. opt_s)))
    jrows;
  Fmt.pr "%s@."
    (if !ok then "ALL SOLVER ABLATION CHECKS PASSED"
     else "SOLVER ABLATION CHECKS FAILED");
  record_section "solver_ablation"
    (Jobj
       [
         ( "workloads",
           Jlist
             (List.map
                (fun (name, seed_s, opt_s, want_2x, stats) ->
                  Jobj
                    [
                      ("name", Jstr name);
                      ("seed_s", jf seed_s);
                      ("optimized_s", jf opt_s);
                      ("speedup", jf (seed_s /. opt_s));
                      ("required_2x", jb want_2x);
                      ("solver", jstats stats);
                    ])
                jrows) );
         ("all_checks_passed", jb !ok);
       ])

let micro () =
  Fmt.pr "@.=== Bechamel micro-benchmarks ===@.";
  let open Bechamel in
  let open Toolkit in
  let src = Cbench.Gen.generate ~seed:99 ~target_lines:2000 () in
  let prog = Driver.compile src in
  let module S = Typequal.Solver in
  let sp = Analysis.const_space in
  let solver_input =
    let st = S.create sp in
    let n = 5000 in
    let vars = Array.init n (fun _ -> S.fresh st) in
    let rng = Cbench.Rng.create 11 in
    for i = 0 to n - 1 do
      S.add_leq_vv st vars.(i) vars.(Cbench.Rng.int rng n)
    done;
    S.add_leq_cv st (Typequal.Lattice.Elt.top sp) vars.(0);
    st
  in
  let tests =
    Test.make_grouped ~name:"typequal"
      [
        Test.make ~name:"solver-worklist-5k"
          (Staged.stage (fun () -> S.solve_least solver_input));
        Test.make ~name:"solver-naive-5k"
          (Staged.stage (fun () -> S.solve_least_naive solver_input));
        Test.make ~name:"parse-2kloc"
          (Staged.stage (fun () -> ignore (Driver.compile src)));
        Test.make ~name:"mono-infer-2kloc"
          (Staged.stage (fun () ->
               let env, ifaces = Analysis.run Analysis.Mono prog in
               ignore (Report.measure env ifaces)));
        Test.make ~name:"poly-infer-2kloc"
          (Staged.stage (fun () ->
               let env, ifaces = Analysis.run Analysis.Poly prog in
               ignore (Report.measure env ifaces)));
        Test.make ~name:"lambda-poly-infer"
          (Staged.stage (fun () ->
               let open Qlambda in
               ignore
                 (Infer.typechecks ~hooks:Rules.cn_hooks ~poly:true
                    Rules.cn_space
                    (Parse.parse
                       "let id = fun x -> x in let y = id (ref 1) in let z \
                        = id (@[const] ref 1) in !y"))));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let res = Analyze.all ols Instance.monotonic_clock raw in
  let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) res [] in
  Fmt.pr "%-40s %12s@." "benchmark" "time/run";
  let jrows = ref [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ ns ] ->
          let pp ppf ns =
            if ns > 1e9 then Fmt.pf ppf "%9.3f s " (ns /. 1e9)
            else if ns > 1e6 then Fmt.pf ppf "%9.3f ms" (ns /. 1e6)
            else if ns > 1e3 then Fmt.pf ppf "%9.3f us" (ns /. 1e3)
            else Fmt.pf ppf "%9.1f ns" ns
          in
          jrows := Jobj [ ("name", Jstr name); ("ns_per_run", jf ns) ] :: !jrows;
          Fmt.pr "%-40s %a@." name pp ns
      | _ -> Fmt.pr "%-40s (no estimate)@." name)
    (List.sort compare items);
  record_section "micro" (Jlist (List.rev !jrows))

(* ------------------------------------------------------------------ *)
(* Parallel analysis: the multicore wavefront engine at 1/2/4 domains   *)
(* ------------------------------------------------------------------ *)

let parallel () =
  Fmt.pr "@.=== Parallel analysis: wavefront engine at 1/2/4 domains ===@.";
  let cores = Domain.recommended_domain_count () in
  Fmt.pr "cores available: %d%s@." cores
    (if cores < 2 then
       " (single-core machine: no speedup is possible; this measures \
        overhead and checks determinism)"
     else "");
  let lines = 32000 in
  let src = Cbench.Gen.generate ~seed:(1000 + lines) ~target_lines:lines () in
  let t0 = Unix.gettimeofday () in
  let prog = Driver.compile src in
  let t_compile_s = Unix.gettimeofday () -. t0 in
  let fdg = Fdg.build prog in
  Fmt.pr
    "workload: %d lines, %d functions, %d sccs (largest %d), wavefront \
     width %d@.@."
    lines
    (List.length (Cfront.Cprog.functions prog))
    (Fdg.scc_count fdg) (Fdg.largest_scc fdg) (Fdg.wavefront_width fdg);
  Fmt.pr "(timings are the best of 3 runs per mode/jobs cell)@.";
  Fmt.pr "%-6s %5s %12s %9s %10s %10s %9s@." "mode" "jobs" "analyze(s)"
    "speedup" "gen(s)" "merge(s)" "possible";
  let jrows = ref [] in
  List.iter
    (fun (mname, mode) ->
      let base = ref nan in
      List.iter
        (fun jobs ->
          let analyze_s =
            time_best 3 (fun () ->
                let env, ifaces = Analysis.run ~jobs mode prog in
                Report.measure env ifaces)
          in
          let env, ifaces = Analysis.run ~jobs mode prog in
          let r = Report.measure env ifaces in
          if jobs = 1 then base := analyze_s;
          let gen_s, merge_s =
            match env.Analysis.par with
            | Some p -> (p.Analysis.ps_gen_s, p.Analysis.ps_merge_s)
            | None -> (0., 0.)
          in
          Fmt.pr "%-6s %5d %12.3f %8.2fx %10.3f %10.3f %9d@." mname jobs
            analyze_s (!base /. analyze_s) gen_s merge_s r.Report.possible;
          jrows :=
            Jobj
              [
                ("mode", Jstr mname);
                ("jobs", ji jobs);
                ("analyze_s", jf analyze_s);
                ("speedup_vs_serial", jf (!base /. analyze_s));
                ("generate_s", jf gen_s);
                ("merge_s", jf merge_s);
                ("possible", ji r.Report.possible);
                ("type_errors", ji r.Report.type_errors);
                ("solver", jstats (Analysis.stats env));
              ]
            :: !jrows)
        [ 1; 2; 4 ])
    [ ("mono", Analysis.Mono); ("poly", Analysis.Poly) ];
  let buf = Buffer.create 2048 in
  pp_json buf
    (Jobj
       [
         ("paper", Jstr "A Theory of Type Qualifiers (PLDI 1999)");
         ("env", jenv ());
         ("cores_available", ji cores);
         ("timing", Jstr "best_of_3");
         ("workload_lines", ji lines);
         ("t_compile_s", jf t_compile_s);
         ("runs", Jlist (List.rev !jrows));
       ]);
  let oc = open_out "BENCH_parallel.json" in
  output_string oc (Buffer.contents buf);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.wrote BENCH_parallel.json@."

(* ------------------------------------------------------------------ *)
(* Scheme compaction: compaction + instantiation memo on vs off        *)
(* ------------------------------------------------------------------ *)

let compaction () =
  Fmt.pr
    "@.=== Scheme compaction: simplification at generalization, \
     instantiation memo ===@.";
  let cores = Domain.recommended_domain_count () in
  Fmt.pr "cores available: %d@." cores;
  let lines = 32000 in
  let workloads =
    [
      (* deep chains of tiny polymorphic helpers: uncompacted, the scheme
         of depth k contains an instance of the whole depth-(k-1) scheme,
         so instantiation variables grow quadratically with depth *)
      ("chains", Cbench.Gen.generate_chains ~seed:7 ~target_lines:lines ());
      (* the Table 2-shaped mix, as a no-regression control *)
      ("mix", Cbench.Gen.generate ~seed:(1000 + lines) ~target_lines:lines ());
    ]
  in
  let ok = ref true in
  let check name cond detail =
    Fmt.pr "  [%s] %s%s@." (if cond then "ok" else "FAIL") name detail;
    if not cond then ok := false
  in
  let chains_ratio = ref 0. in
  let jworkloads =
    List.map
      (fun (wname, src) ->
        let t0 = Unix.gettimeofday () in
        let prog = Driver.compile src in
        let t_compile_s = Unix.gettimeofday () -. t0 in
        Fmt.pr "@.workload %s: %d lines, %d functions@." wname
          (Cfront.Cprog.count_lines src)
          (List.length (Cfront.Cprog.functions prog));
        Fmt.pr "%-8s %8s %5s %12s %12s %18s %10s %9s@." "mode" "compact"
          "jobs" "analyze(s)" "vars" "scheme vars" "memo" "possible";
        let jrows = ref [] in
        let cells = ref [] in
        List.iter
          (fun (mname, mode) ->
            List.iter
              (fun compact ->
                List.iter
                  (fun jobs ->
                    let t0 = Unix.gettimeofday () in
                    let env, ifaces = Analysis.run ~compact ~jobs mode prog in
                    let r = Report.measure env ifaces in
                    let dt = Unix.gettimeofday () -. t0 in
                    let st = Analysis.stats env in
                    cells := (mname, compact, jobs, dt, st, r) :: !cells;
                    Fmt.pr "%-8s %8s %5d %12.3f %12d %8d -> %7d %10d %9d@."
                      mname
                      (if compact then "on" else "off")
                      jobs dt st.TS.vars_created st.TS.scheme_vars_before
                      st.TS.scheme_vars_after st.TS.instantiations_memo_hits
                      r.Report.possible;
                    jrows :=
                      Jobj
                        [
                          ("mode", Jstr mname);
                          ("compact", jb compact);
                          ("jobs", ji jobs);
                          ("analyze_s", jf dt);
                          ("possible", ji r.Report.possible);
                          ("type_errors", ji r.Report.type_errors);
                          ("solver", jstats st);
                        ]
                      :: !jrows)
                  [ 1; 4 ])
              [ true; false ])
          [ ("poly", Analysis.Poly); ("polyrec", Analysis.Polyrec) ];
        (* every (mode, jobs) cell must report identically on vs off *)
        List.iter
          (fun (mname, compact, jobs, _, _, (r : Report.results)) ->
            if compact then
              let _, _, _, _, _, r' =
                List.find
                  (fun (m, c, j, _, _, _) ->
                    m = mname && (not c) && j = jobs)
                  !cells
              in
              check
                (Printf.sprintf "%s/%s/jobs=%d: reports identical on vs off"
                   wname mname jobs)
                (r.Report.possible = r'.Report.possible
                && r.Report.type_errors = r'.Report.type_errors)
                (Printf.sprintf " (possible %d vs %d, errors %d vs %d)"
                   r.Report.possible r'.Report.possible r.Report.type_errors
                   r'.Report.type_errors))
          !cells;
        (* measured variable reduction, the headline figure *)
        let vars_of mname compact =
          let _, _, _, _, (st : TS.stats), _ =
            List.find
              (fun (m, c, j, _, _, _) -> m = mname && c = compact && j = 1)
              !cells
          in
          st.TS.vars_created
        in
        let ratio =
          float (vars_of "poly" false) /. float (max 1 (vars_of "poly" true))
        in
        if wname = "chains" then chains_ratio := ratio;
        Fmt.pr "%s poly vars_created: %d (off) / %d (on) = %.1fx reduction@."
          wname (vars_of "poly" false) (vars_of "poly" true) ratio;
        (* compaction must not slow the monomorphic path down (it never
           generalizes, so only constant bookkeeping differs); one warm-up
           pair plus interleaved best-of-3 so heap state left behind by
           the poly runs above weighs on both sides equally *)
        let mono_once compact =
          let t0 = Unix.gettimeofday () in
          let env, ifaces = Analysis.run ~compact Analysis.Mono prog in
          ignore (Report.measure env ifaces);
          Unix.gettimeofday () -. t0
        in
        ignore (mono_once true);
        ignore (mono_once false);
        let mono_on = ref infinity and mono_off = ref infinity in
        for _ = 1 to 3 do
          mono_on := Float.min !mono_on (mono_once true);
          mono_off := Float.min !mono_off (mono_once false)
        done;
        let mono_on = !mono_on and mono_off = !mono_off in
        check
          (Printf.sprintf "%s: mono wall-clock no regression" wname)
          (mono_on <= (mono_off *. 1.10) +. 0.05)
          (Printf.sprintf " (on %.3fs vs off %.3fs)" mono_on mono_off);
        Jobj
          [
            ("name", Jstr wname);
            ("lines", ji lines);
            ("t_compile_s", jf t_compile_s);
            ("poly_vars_reduction", jf ratio);
            ("mono_on_s", jf mono_on);
            ("mono_off_s", jf mono_off);
            ("runs", Jlist (List.rev !jrows));
          ])
      workloads
  in
  check "chains: poly vars_created reduced >= 2x" (!chains_ratio >= 2.)
    (Printf.sprintf " measured %.1fx" !chains_ratio);
  Fmt.pr "%s@."
    (if !ok then "ALL COMPACTION CHECKS PASSED" else "COMPACTION CHECKS FAILED");
  let buf = Buffer.create 2048 in
  pp_json buf
    (Jobj
       [
         ("paper", Jstr "A Theory of Type Qualifiers (PLDI 1999)");
         ("env", jenv ());
         ("cores_available", ji cores);
         ("workload_lines", ji lines);
         ("all_checks_passed", jb !ok);
         ("workloads", Jlist jworkloads);
       ]);
  let oc = open_out "BENCH_compaction.json" in
  output_string oc (Buffer.contents buf);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.wrote BENCH_compaction.json@."

(* ------------------------------------------------------------------ *)
(* User-defined lattices: a wider space must not slow the default path *)
(* ------------------------------------------------------------------ *)

let lattice () =
  Fmt.pr
    "@.=== User-defined lattices: two-point vs three-level space ===@.";
  let lines = 32000 in
  let src = Cbench.Gen.generate ~seed:(1000 + lines) ~target_lines:lines () in
  let t0 = Unix.gettimeofday () in
  let prog = Driver.compile src in
  let t_compile_s = Unix.gettimeofday () -. t0 in
  let module Q = Typequal.Qualifier in
  let wide_rules =
    Analysis.const_rules_in
      (Typequal.Lattice.Space.create
         [ Q.const; Q.ordered "trust" (Q.Order.chain_exn [ "low"; "mid"; "high" ]) ])
  in
  Fmt.pr
    "workload: %d lines; const analysis in the default 1-bit space vs the \
     same rules@."
    lines;
  Fmt.pr
    "hosted next to an unconstrained 3-level chain (2 extra bits per \
     element)@.";
  Fmt.pr "(timings are the best of 3 runs per cell)@.@.";
  Fmt.pr "%-12s %5s %12s %10s %9s %7s@." "space" "jobs" "analyze(s)"
    "overhead" "possible" "errors";
  let jrows = ref [] in
  let base = Hashtbl.create 4 in
  let counts = ref None in
  let ok = ref true in
  List.iter
    (fun (sname, rules) ->
      List.iter
        (fun jobs ->
          let analyze_s =
            time_best 3 (fun () ->
                let env, ifaces = Analysis.run ~rules ~jobs Analysis.Mono prog in
                Report.measure env ifaces)
          in
          let env, ifaces = Analysis.run ~rules ~jobs Analysis.Mono prog in
          let r = Report.measure env ifaces in
          if sname = "two_point" then Hashtbl.replace base jobs analyze_s;
          let overhead =
            analyze_s /. (try Hashtbl.find base jobs with Not_found -> nan)
          in
          (* the verdicts must not depend on the hosting space or on jobs *)
          let c = (r.Report.total, r.Report.possible, r.Report.type_errors) in
          (match !counts with
          | None -> counts := Some c
          | Some c0 -> if c <> c0 then ok := false);
          Fmt.pr "%-12s %5d %12.3f %9.2fx %9d %7d@." sname jobs analyze_s
            overhead r.Report.possible r.Report.type_errors;
          jrows :=
            Jobj
              [
                ("space", Jstr sname);
                ("jobs", ji jobs);
                ("analyze_s", jf analyze_s);
                ("overhead_vs_two_point", jf overhead);
                ("possible", ji r.Report.possible);
                ("type_errors", ji r.Report.type_errors);
                ("solver", jstats (Analysis.stats env));
              ]
            :: !jrows)
        [ 1; 4 ])
    [ ("two_point", Analysis.const_rules); ("three_level", wide_rules) ];
  if not !ok then
    failwith "lattice bench: verdicts differ across spaces or job counts";
  Fmt.pr "@.(verdicts identical across both spaces and both job counts — \
          asserted)@.";
  record_section "lattice" (Jlist (List.rev !jrows));
  let buf = Buffer.create 2048 in
  pp_json buf
    (Jobj
       [
         ("paper", Jstr "A Theory of Type Qualifiers (PLDI 1999)");
         ("env", jenv ());
         ("timing", Jstr "best_of_3");
         ("workload_lines", ji lines);
         ("t_compile_s", jf t_compile_s);
         ("counts_identical", jb !ok);
         ("runs", Jlist (List.rev !jrows));
       ]);
  let oc = open_out "BENCH_lattice.json" in
  output_string oc (Buffer.contents buf);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.wrote BENCH_lattice.json@."

(* ------------------------------------------------------------------ *)
(* Extensions beyond the paper's evaluation                            *)
(* ------------------------------------------------------------------ *)

let extensions () =
  Fmt.pr "@.=== Extensions: polymorphic recursion & scheme simplification ===@.";
  Fmt.pr "(Section 4.3 wished for polymorphic recursion; Section 6 poses@.";
  Fmt.pr " constraint simplification as an open problem)@.@.";
  Fmt.pr "%-20s %6s %6s %8s %11s %11s %11s@." "Name" "Poly" "PolyRec"
    "Total" "Poly(s)" "PolyRec(s)" "Simpl(s)";
  List.iter
    (fun (b : Cbench.Suite.bench) ->
      let src = Cbench.Suite.source_of b in
      let prog = Driver.compile src in
      let run_once mode simplify =
        let t0 = Unix.gettimeofday () in
        let env, ifaces = Analysis.run ~simplify mode prog in
        let r = Report.measure env ifaces in
        (r, Unix.gettimeofday () -. t0)
      in
      let rp, tp = run_once Analysis.Poly false in
      let rr, tr = run_once Analysis.Polyrec false in
      let rs, ts = run_once Analysis.Poly true in
      assert (rs.Report.possible = rp.Report.possible);
      assert (rr.Report.possible >= rp.Report.possible);
      Fmt.pr "%-20s %6d %6d %8d %11.3f %11.3f %11.3f@." b.b_name
        rp.Report.possible rr.Report.possible rp.Report.total tp tr ts)
    Cbench.Suite.table1;
  Fmt.pr
    "@.(PolyRec >= Poly everywhere; simplification preserves all results \
     — both are asserted.)@."

(* ------------------------------------------------------------------ *)
(* Scale: the flat-arena core on a million-line multi-file project      *)
(* ------------------------------------------------------------------ *)

module RS = Typequal.Solver_ref

(* One deterministic constraint stream replayed against both solver cores.
   Ops: (1, a, b) edge a<=b; (2, a, _) lower bound top<=a; (3, a, _) upper
   bound a<=top; (4, _, _) incremental solve; (5, a, _) least-solution
   query. Edges are window-local, so the stream is duplicate- and
   cycle-rich — exactly the dedup- and propagation-bound shape that
   motivated the arena. *)
let ablation_ops ~nvars ~nops =
  let rng = Cbench.Rng.create 0xAB1E in
  Array.init nops (fun i ->
      (* a solve per ~200 constraints: the per-function cadence inference
         produces (generate a function's constraints, classify, move on) *)
      if i mod 200 = 199 then (4, 0, 0)
      else
        let r = Cbench.Rng.int rng 100 in
        if r < 55 then
          (* flow edges: mostly forward (calls into later prototypes),
             with a minority of back edges closing recursion cycles *)
          let a = Cbench.Rng.int rng nvars in
          let b =
            if Cbench.Rng.int rng 100 < 8 then a - 1 - Cbench.Rng.int rng 40
            else a + 1 + Cbench.Rng.int rng 200
          in
          (1, a, max 0 (min (nvars - 1) b))
        else if r < 70 then
          (* re-derived constraints: the dedup-table hot path *)
          let a = Cbench.Rng.int rng nvars in
          (1, a, min (nvars - 1) (a + 1 + Cbench.Rng.int rng 8))
        else if r < 82 then (2, Cbench.Rng.int rng nvars, 0)
        else if r < 94 then (3, Cbench.Rng.int rng nvars, 0)
        else (5, Cbench.Rng.int rng nvars, 0))

let replay_arena sp top ops nvars =
  let st = TS.create sp in
  let v = Array.init nvars (fun _ -> TS.fresh st) in
  Array.iter
    (fun (tag, a, b) ->
      match tag with
      | 1 -> TS.add_leq_vv st v.(a) v.(b)
      | 2 -> TS.add_leq_cv st top v.(a)
      | 3 -> TS.add_leq_vc st v.(a) top
      | 4 -> ignore (TS.solve st)
      | _ -> ignore (TS.least st v.(a)))
    ops;
  ignore (TS.solve st);
  (st, v)

let replay_ref sp top ops nvars =
  let st = RS.create sp in
  let v = Array.init nvars (fun _ -> RS.fresh st) in
  Array.iter
    (fun (tag, a, b) ->
      match tag with
      | 1 -> RS.add_leq_vv st v.(a) v.(b)
      | 2 -> RS.add_leq_cv st top v.(a)
      | 3 -> RS.add_leq_vc st v.(a) top
      | 4 -> ignore (RS.solve st)
      | _ -> ignore (RS.least st v.(a)))
    ops;
  ignore (RS.solve st);
  (st, v)

(* everything observable: structural counters plus sampled solutions *)
let arena_digest sp (st, v) =
  let s = TS.stats st in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "vars=%d unified=%d edges=%d deduped=%d cycles=%d \
                     incr=%d full=%d pops=%d\n"
       s.TS.vars_created s.TS.vars_unified s.TS.edges_added
       s.TS.edges_deduped s.TS.cycles_collapsed s.TS.incr_solves
       s.TS.full_solves s.TS.worklist_pops);
  let n = Array.length v in
  let step = max 1 (n / 64) in
  let i = ref 0 in
  while !i < n do
    Buffer.add_string b
      (Fmt.str "%d:%a/%a\n" !i
         (Typequal.Lattice.Elt.pp sp)
         (TS.least st v.(!i))
         (Typequal.Lattice.Elt.pp sp)
         (TS.greatest st v.(!i)));
    i := !i + step
  done;
  Buffer.contents b

let ref_digest sp (st, v) =
  let s = RS.stats st in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "vars=%d unified=%d edges=%d deduped=%d cycles=%d \
                     incr=%d full=%d pops=%d\n"
       s.RS.vars_created s.RS.vars_unified s.RS.edges_added
       s.RS.edges_deduped s.RS.cycles_collapsed s.RS.incr_solves
       s.RS.full_solves s.RS.worklist_pops);
  let n = Array.length v in
  let step = max 1 (n / 64) in
  let i = ref 0 in
  while !i < n do
    Buffer.add_string b
      (Fmt.str "%d:%a/%a\n" !i
         (Typequal.Lattice.Elt.pp sp)
         (RS.least st v.(!i))
         (Typequal.Lattice.Elt.pp sp)
         (RS.greatest st v.(!i)));
    i := !i + step
  done;
  Buffer.contents b

(* the user-visible report of a run, rendered to a string: identical
   across job counts AND across --no-compact (compaction/memoization are
   observationally invisible) *)
let report_digest (r : Report.results) =
  let b = Buffer.create 4096 in
  List.iter
    (fun pv -> Buffer.add_string b (Fmt.str "%a\n" Report.pp_position pv))
    r.Report.positions;
  Buffer.add_string b
    (Printf.sprintf "declared=%d possible=%d must=%d total=%d errors=%d\n"
       r.Report.declared r.Report.possible r.Report.must r.Report.total
       r.Report.type_errors);
  List.iter (fun w -> Buffer.add_string b ("warning " ^ w ^ "\n")) r.Report.warnings;
  Buffer.contents b

(* the report plus the structural solver counters (wall-clock and heap
   fields excluded): must be identical across job counts *)
let scale_digest (r : Report.results) (st : TS.stats) =
  let b = Buffer.create 4096 in
  Buffer.add_string b (report_digest r);
  Buffer.add_string b
    (Printf.sprintf "vars=%d unified=%d edges=%d deduped=%d cycles=%d pops=%d\n"
       st.TS.vars_created st.TS.vars_unified st.TS.edges_added
       st.TS.edges_deduped st.TS.cycles_collapsed st.TS.worklist_pops);
  Buffer.contents b

let scale () =
  Fmt.pr
    "@.=== Scale: flat-arena core, million-line multi-file project ===@.";
  let cores = Typequal.Pool.cores_available () in
  Fmt.pr "cores available: %d%s@." cores
    (if cores < 2 then
       " (single-core machine: jobs rows measure overhead, not speedup)"
     else "");

  (* ---- the corpus ---- *)
  let b = List.hd Cbench.Suite.scale in
  let target =
    match Sys.getenv_opt "TYPEQUAL_SCALE_LINES" with
    | Some v -> ( try int_of_string v with _ -> b.Cbench.Suite.b_lines)
    | None -> b.Cbench.Suite.b_lines
  in
  let t0 = Unix.gettimeofday () in
  let files =
    Cbench.Gen.generate_project ~seed:b.Cbench.Suite.b_seed
      ~target_lines:target ()
  in
  let gen_s = Unix.gettimeofday () -. t0 in
  let lines = Cbench.Gen.project_lines files in
  let src = Driver.concat_sources files in
  let t0 = Unix.gettimeofday () in
  let prog = Driver.compile src in
  let compile_s = Unix.gettimeofday () -. t0 in
  let nfun = List.length (Cfront.Cprog.functions prog) in
  let fdg = Fdg.build prog in
  Fmt.pr
    "corpus %s: %d files, %d lines, %d functions; %d sccs (largest %d), \
     wavefront width %d@."
    b.Cbench.Suite.b_name (List.length files) lines nfun
    (Fdg.scc_count fdg) (Fdg.largest_scc fdg) (Fdg.wavefront_width fdg);
  Fmt.pr "generate %.2fs, parse %.2fs@.@." gen_s compile_s;

  (* ---- jobs sweep: wall time, peak heap, counters, digest ---- *)
  Fmt.pr "%-5s %11s %9s %14s %12s %9s@." "jobs" "analyze(s)" "speedup"
    "top_heap(Mw)" "vars" "possible";
  let jrows = ref [] in
  let digests = ref [] in
  let base = ref nan in
  List.iter
    (fun jobs ->
      (* honesty: a jobs-N wall time on a host with fewer than N cores
         measures scheduler contention, not speedup — record the row as
         skipped with the reason instead of publishing a fake number *)
      let cores_ok = cores >= jobs in
      if (not cores_ok) && jobs > 1 then begin
        let reason =
          Printf.sprintf
            "host has %d core%s; a jobs-%d row would measure contention, \
             not speedup"
            cores
            (if cores = 1 then "" else "s")
            jobs
        in
        Fmt.pr "%-5d %11s  skipped: %s@." jobs "-" reason;
        jrows :=
          Jobj
            [
              ("jobs", ji jobs);
              ("cores_available", ji cores);
              ("cores_ok", jb false);
              ("skipped", jb true);
              ("reason", Jstr reason);
            ]
          :: !jrows
      end
      else begin
        let t0 = Unix.gettimeofday () in
        let env, ifaces = Analysis.run ~jobs Analysis.Poly prog in
        let r = Report.measure env ifaces in
        let analyze_s = Unix.gettimeofday () -. t0 in
        if jobs = 1 then base := analyze_s;
        let st = Analysis.stats env in
        digests := (jobs, scale_digest r st) :: !digests;
        Fmt.pr "%-5d %11.3f %8.2fx %14.1f %12d %9d@." jobs analyze_s
          (!base /. analyze_s)
          (float st.TS.top_heap_words /. 1e6)
          st.TS.vars_created r.Report.possible;
        jrows :=
          Jobj
            [
              ("jobs", ji jobs);
              ("cores_available", ji cores);
              ("cores_ok", jb cores_ok);
              ("skipped", jb false);
              ("analyze_s", jf analyze_s);
              ("speedup_vs_serial", jf (!base /. analyze_s));
              ("possible", ji r.Report.possible);
              ("type_errors", ji r.Report.type_errors);
              ("solver", jstats st);
            ]
          :: !jrows
      end)
    [ 1; 2; 4; 8 ];
  let ok = ref true in
  let check name cond detail =
    Fmt.pr "  [%s] %s%s@." (if cond then "ok" else "FAIL") name detail;
    if not cond then ok := false
  in
  let d1 = List.assoc 1 !digests in
  List.iter
    (fun (jobs, d) ->
      if jobs <> 1 then
        check
          (Printf.sprintf "report at jobs=%d byte-identical to serial" jobs)
          (d = d1) "")
    !digests;

  (* ---- ablation: arena core vs the pre-arena (PR 5) store ---- *)
  (* sized to the 32-kloc workloads of the parallel/compaction sections:
     a 32-kloc poly analysis creates ~1 qualifier variable per line *)
  Fmt.pr "@.--- ablation: flat arena vs pre-arena solver core ---@.";
  let sp = Analysis.const_space in
  let top = Typequal.Lattice.Elt.top sp in
  let nvars = 32_000 and nops = 320_000 in
  let ops = ablation_ops ~nvars ~nops in
  Fmt.pr "constraint stream: %d vars, %d ops (edges/bounds/solves)@." nvars
    nops;
  let arena_s = time_best 3 (fun () -> replay_arena sp top ops nvars) in
  let ref_s = time_best 3 (fun () -> replay_ref sp top ops nvars) in
  let da = arena_digest sp (replay_arena sp top ops nvars) in
  let dr = ref_digest sp (replay_ref sp top ops nvars) in
  Fmt.pr "arena %.4fs, pre-arena %.4fs: %.2fx@." arena_s ref_s
    (ref_s /. arena_s);
  check "ablation: counters and solutions byte-identical" (da = dr) "";
  check "ablation: arena >= 2x faster at jobs=1"
    (ref_s /. arena_s >= 2.)
    (Printf.sprintf " measured %.2fx" (ref_s /. arena_s));
  Fmt.pr "%s@."
    (if !ok then "ALL SCALE CHECKS PASSED" else "SCALE CHECKS FAILED");

  (* ---- BENCH_scale.json ---- *)
  let buf = Buffer.create 4096 in
  pp_json buf
    (Jobj
       [
         ("paper", Jstr "A Theory of Type Qualifiers (PLDI 1999)");
         ("env", jenv ());
         ("corpus", Jstr b.Cbench.Suite.b_name);
         ("files", ji (List.length files));
         ("lines", ji lines);
         ("functions", ji nfun);
         ("generate_s", jf gen_s);
         ("compile_s", jf compile_s);
         ("t_compile_s", jf compile_s);
         ("mode", Jstr "poly");
         ("runs", Jlist (List.rev !jrows));
         ("reports_identical_across_jobs", jb (List.for_all (fun (_, d) -> d = d1) !digests));
         ( "ablation",
           Jobj
             [
               ("workload_vars", ji nvars);
               ("workload_ops", ji nops);
               ("arena_s", jf arena_s);
               ("pre_arena_s", jf ref_s);
               ("speedup", jf (ref_s /. arena_s));
               ("identical", jb (da = dr));
             ] );
         ("all_checks_passed", jb !ok);
       ]);
  let oc = open_out "BENCH_scale.json" in
  output_string oc (Buffer.contents buf);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.wrote BENCH_scale.json@.";
  if not !ok then exit 1

(* ------------------------------------------------------------------ *)
(* Hot path: per-phase wall-time breakdown (congen / generalize /      *)
(* compact / instantiate / solve / absorb / report), the memo's hit    *)
(* and rejection counters, and the compact/no-compact and jobs-1/4     *)
(* parity checks — on the CI-sized multi-file corpus by default        *)
(* (TYPEQUAL_HOTPATH_CORPUS=mega for the million-line one,             *)
(* TYPEQUAL_HOTPATH_LINES=N to resize). Writes BENCH_hotpath.json.     *)
(* TYPEQUAL_HOTPATH_MAX_US_PER_LINE, when set (CI's perf-smoke soft    *)
(* ceiling), fails the section if the serial compact run exceeds it.   *)
(* ------------------------------------------------------------------ *)

let hotpath () =
  Fmt.pr "@.=== Hot path: phase breakdown, memo, splice merge ===@.";
  let b =
    match Sys.getenv_opt "TYPEQUAL_HOTPATH_CORPUS" with
    | Some "mega" -> List.hd Cbench.Suite.scale
    | _ -> List.hd Cbench.Suite.scale_smoke
  in
  let target =
    match Sys.getenv_opt "TYPEQUAL_HOTPATH_LINES" with
    | Some v -> ( try int_of_string v with _ -> b.Cbench.Suite.b_lines)
    | None -> b.Cbench.Suite.b_lines
  in
  let files =
    Cbench.Gen.generate_project ~seed:b.Cbench.Suite.b_seed
      ~target_lines:target ()
  in
  let lines = Cbench.Gen.project_lines files in
  let t0 = Unix.gettimeofday () in
  let prog = Driver.compile (Driver.concat_sources files) in
  let t_compile_s = Unix.gettimeofday () -. t0 in
  let nfun = List.length (Cfront.Cprog.functions prog) in
  Fmt.pr "corpus %s: %d lines, %d functions@.@." b.Cbench.Suite.b_name lines
    nfun;
  (* one measured analysis per configuration; Report.measure is timed
     into the Report phase the way the CLI driver does it (minus the
     nested solve) *)
  let run ~jobs ~compact =
    let t0 = Unix.gettimeofday () in
    let env, ifaces = Analysis.run ~jobs ~compact Analysis.Poly prog in
    let st = env.Analysis.store in
    let t1 = Unix.gettimeofday () in
    let solve0 = (TS.stats st).TS.solve_s in
    let r = Report.measure env ifaces in
    let t2 = Unix.gettimeofday () in
    let solve_d = (TS.stats st).TS.solve_s -. solve0 in
    TS.note_phase st TS.Report (Float.max 0. (t2 -. t1 -. solve_d));
    (t2 -. t0, r, Analysis.stats env)
  in
  let configs = [ (1, true); (4, true); (1, false); (4, false) ] in
  let results =
    List.map (fun (jobs, compact) -> ((jobs, compact), run ~jobs ~compact))
      configs
  in
  Fmt.pr "%-14s %10s %8s %7s %7s %7s %7s %7s %7s %7s@." "config"
    "analyze(s)" "us/line" "congen" "genrlz" "compct" "instnt" "solve"
    "absorb" "report";
  let rows = ref [] in
  List.iter
    (fun ((jobs, compact), (t, _, st)) ->
      let upl = t *. 1e6 /. float lines in
      Fmt.pr "jobs %d %-7s %10.3f %8.2f %7.2f %7.2f %7.2f %7.2f %7.2f %7.2f %7.2f@."
        jobs
        (if compact then "compact" else "nocmpct")
        t upl st.TS.congen_s st.TS.generalize_s st.TS.compact_s
        st.TS.instantiate_s st.TS.solve_s st.TS.absorb_s st.TS.report_s;
      rows :=
        Jobj
          [
            ("jobs", ji jobs);
            ("compact", jb compact);
            ("analyze_s", jf t);
            ("us_per_line", jf upl);
            ("solver", jstats st);
          ]
        :: !rows)
    results;
  let ok = ref true in
  let check name cond detail =
    Fmt.pr "  [%s] %s%s@." (if cond then "ok" else "FAIL") name detail;
    if not cond then ok := false
  in
  let t11, r11, s11 = List.assoc (1, true) results in
  let _, r41, s41 = List.assoc (4, true) results in
  let _, r10, _ = List.assoc (1, false) results in
  let _, r40, _ = List.assoc (4, false) results in
  Fmt.pr "@.";
  check "report+counters at jobs=4 identical to serial"
    (scale_digest r41 s41 = scale_digest r11 s11)
    "";
  check "--no-compact report identical (jobs 1)"
    (report_digest r10 = report_digest r11)
    "";
  check "--no-compact report identical (jobs 4)"
    (report_digest r40 = report_digest r11)
    "";
  check "instantiation memo fires at scale"
    (s11.TS.instantiations_memo_hits > 0)
    (Printf.sprintf " (%d hits / %d candidates)"
       s11.TS.instantiations_memo_hits s11.TS.memo_candidates);
  check "memo counters identical across jobs"
    ((s11.TS.instantiations_memo_hits, s11.TS.memo_candidates,
      s11.TS.memo_misses, s11.TS.memo_reject_nonflat_ret,
      s11.TS.memo_reject_may_violate)
    = (s41.TS.instantiations_memo_hits, s41.TS.memo_candidates,
       s41.TS.memo_misses, s41.TS.memo_reject_nonflat_ret,
       s41.TS.memo_reject_may_violate))
    "";
  let serial_upl = t11 *. 1e6 /. float lines in
  (match Sys.getenv_opt "TYPEQUAL_HOTPATH_MAX_US_PER_LINE" with
  | Some v -> (
      match float_of_string_opt v with
      | Some ceiling ->
          check "serial us/line under the perf-smoke ceiling"
            (serial_upl <= ceiling)
            (Printf.sprintf " (%.2f <= %.2f)" serial_upl ceiling)
      | None -> ())
  | None -> ());
  Fmt.pr "%s@."
    (if !ok then "ALL HOTPATH CHECKS PASSED" else "HOTPATH CHECKS FAILED");
  let buf = Buffer.create 4096 in
  pp_json buf
    (Jobj
       [
         ("paper", Jstr "A Theory of Type Qualifiers (PLDI 1999)");
         ("env", jenv ());
         ("corpus", Jstr b.Cbench.Suite.b_name);
         ("lines", ji lines);
         ("functions", ji nfun);
         ("mode", Jstr "poly");
         ("t_compile_s", jf t_compile_s);
         ("serial_us_per_line", jf serial_upl);
         ("runs", Jlist (List.rev !rows));
         ("all_checks_passed", jb !ok);
       ]);
  let oc = open_out "BENCH_hotpath.json" in
  output_string oc (Buffer.contents buf);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.wrote BENCH_hotpath.json@.";
  if not !ok then exit 1

(* ------------------------------------------------------------------ *)
(* Persistent scheme cache: cold vs warm-noop vs one-dirty-unit on the *)
(* CI smoke corpus, plus a fault-injection sweep asserting that every  *)
(* corruption mode is rejected and recomputed to a byte-identical      *)
(* report; writes BENCH_cache.json                                     *)
(* ------------------------------------------------------------------ *)

module Cache = Typequal.Cache

let cache_bench () =
  Fmt.pr "@.=== Persistent cache: cold / warm / dirty-unit / faults ===@.";
  let b = List.hd Cbench.Suite.scale_smoke in
  let target =
    match Sys.getenv_opt "TYPEQUAL_CACHE_LINES" with
    | Some v -> ( try int_of_string v with _ -> b.Cbench.Suite.b_lines)
    | None -> b.Cbench.Suite.b_lines
  in
  let files =
    Cbench.Gen.generate_project ~seed:b.Cbench.Suite.b_seed
      ~target_lines:target ()
  in
  Fmt.pr "corpus %s: %d files, %d lines@." b.Cbench.Suite.b_name
    (List.length files)
    (Cbench.Gen.project_lines files);
  let dir =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "typequal-cache-bench-%d" (Unix.getpid ()))
    in
    (try Sys.mkdir d 0o755 with Sys_error _ -> ());
    d
  in
  let open_cache () =
    match Driver.open_cache ~opts_id:"bench" dir with
    | Some cs -> cs
    | None -> failwith "cache bench: cannot open cache directory"
  in
  let digest (r : Driver.run) =
    scale_digest r.Driver.results r.Driver.solver_stats
  in
  let compile_s = ref 0. in
  let timed_run files =
    let cs = open_cache () in
    let t0 = Unix.gettimeofday () in
    let r = Driver.run_sources ~mode:Analysis.Poly ~cache:cs files in
    compile_s := r.Driver.timing.Driver.t_compile;
    (Unix.gettimeofday () -. t0, digest r, Cache.stats cs.Driver.cs_cache)
  in
  let ok = ref true in
  let check name cond detail =
    Fmt.pr "  [%s] %s%s@." (if cond then "ok" else "FAIL") name detail;
    if not cond then ok := false
  in
  cache_used := true;

  (* ---- cold populate, warm no-op ---- *)
  let t_cold, d_cold, st_cold = timed_run files in
  let t_compile_cold = !compile_s in
  Fmt.pr "cold  %.3fs (%d entries written)@." t_cold
    (List.length (Cache.entry_files (open_cache ()).Driver.cs_cache));
  let t_warm, d_warm, st_warm = timed_run files in
  Fmt.pr "warm  %.3fs: %.1fx (run-tier hits %d)@." t_warm (t_cold /. t_warm)
    st_warm.Cache.hits;
  check "cold run has no hits" (st_cold.Cache.hits = 0) "";
  check "warm report byte-identical to cold" (d_warm = d_cold) "";
  check "warm run is a whole-run hit"
    (match Hashtbl.find_opt st_warm.Cache.by_kind "run" with
    | Some (1, 0) -> true
    | _ -> false)
    "";
  check "warm no-op at least 5x faster than cold"
    (t_cold /. t_warm >= 5.)
    (Printf.sprintf " measured %.1fx" (t_cold /. t_warm));

  (* ---- fault injection: corrupt the warm state, demand a counted
     reject and a byte-identical recomputation. Runs before the
     dirty-unit measurement so the cache holds exactly one run and one
     ast entry. ---- *)
  let read_file path = In_channel.with_open_bin path In_channel.input_all in
  let write_file path s =
    Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)
  in
  let flip path off =
    let s = Bytes.of_string (read_file path) in
    Bytes.set s off (Char.chr (Char.code (Bytes.get s off) lxor 0xff));
    write_file path (Bytes.to_string s)
  in
  let entry_with prefix =
    List.find
      (fun p ->
        String.length (Filename.basename p) >= String.length prefix
        && String.sub (Filename.basename p) 0 (String.length prefix) = prefix)
      (Cache.entry_files (open_cache ()).Driver.cs_cache)
  in
  let jfaults = ref [] in
  let fault name cause corrupt =
    (* re-warm so every fault starts from a fully-populated cache *)
    let _ = timed_run files in
    corrupt ();
    let _, d, st = timed_run files in
    let rejected =
      match Hashtbl.find_opt st.Cache.rejects cause with
      | Some n -> n >= 1
      | None -> false
    in
    check
      (Printf.sprintf "fault %-12s rejected as %s, report identical" name
         cause)
      (rejected && d = d_cold) "";
    jfaults :=
      Jobj
        [
          ("fault", Jstr name);
          ("cause", Jstr cause);
          ("rejected", jb rejected);
          ("report_identical", jb (d = d_cold));
        ]
      :: !jfaults
  in
  fault "truncate" "truncated" (fun () ->
      let p = entry_with "run-" in
      let s = read_file p in
      write_file p (String.sub s 0 (String.length s / 2)));
  fault "bit-flip" "corrupt" (fun () ->
      let p = entry_with "run-" in
      flip p (String.length (read_file p) - 1));
  fault "bad-magic" "bad-magic" (fun () -> flip (entry_with "run-") Cache.off_magic);
  fault "version-skew" "bad-version" (fun () ->
      flip (entry_with "run-") (Cache.off_version + 1));
  fault "scc-bit-flip" "corrupt" (fun () ->
      (* kill the outer tiers (whole-run, and whichever AST tier the
         frontend wrote: per-unit "unit-" entries or the concat "ast-"
         entry) so the corrupted scc entry is actually read *)
      List.iter
        (fun p ->
          match Filename.basename p with
          | b
            when String.length b >= 4
                 && List.exists
                      (fun pre ->
                        String.length b >= String.length pre
                        && String.sub b 0 (String.length pre) = pre)
                      [ "run-"; "ast-"; "unit-" ] ->
              Sys.remove p
          | _ -> ())
        (Cache.entry_files (open_cache ()).Driver.cs_cache);
      let p = entry_with "scc-" in
      flip p (String.length (read_file p) - 1));

  (* ---- one dirty unit: touch the last file's content without changing
     any interface; only its SCCs may re-infer ---- *)
  let _ = timed_run files in
  let dirty =
    match List.rev files with
    | (name, src) :: rest -> List.rev ((name, src ^ "\n") :: rest)
    | [] -> assert false
  in
  let t_dirty, d_dirty, st_dirty = timed_run dirty in
  let scc_hits, scc_misses =
    match Hashtbl.find_opt st_dirty.Cache.by_kind "scc" with
    | Some hm -> hm
    | None -> (0, 0)
  in
  Fmt.pr "dirty %.3fs: %.1fx (dirty cone %d of %d sccs)@." t_dirty
    (t_cold /. t_dirty) scc_misses (scc_hits + scc_misses);
  check "dirty-unit report byte-identical to cold" (d_dirty = d_cold) "";
  check "dirty unit re-infers only part of the project"
    (scc_hits > 0 && scc_misses > 0 && scc_misses < scc_hits)
    (Printf.sprintf " %d/%d sccs re-inferred" scc_misses
       (scc_hits + scc_misses));
  Fmt.pr "%s@."
    (if !ok then "ALL CACHE CHECKS PASSED" else "CACHE CHECKS FAILED");

  (* ---- BENCH_cache.json ---- *)
  let buf = Buffer.create 4096 in
  pp_json buf
    (Jobj
       [
         ("paper", Jstr "A Theory of Type Qualifiers (PLDI 1999)");
         ("env", jenv ());
         ("corpus", Jstr b.Cbench.Suite.b_name);
         ("files", ji (List.length files));
         ("lines", ji (Cbench.Gen.project_lines files));
         ("mode", Jstr "poly");
         ("cold_s", jf t_cold);
         ("t_compile_s", jf t_compile_cold);
         ("warm_s", jf t_warm);
         ("warm_speedup", jf (t_cold /. t_warm));
         ("dirty_unit_s", jf t_dirty);
         ("dirty_speedup", jf (t_cold /. t_dirty));
         ("dirty_cone_sccs", ji scc_misses);
         ("total_sccs", ji (scc_hits + scc_misses));
         ("reports_identical", jb (d_warm = d_cold && d_dirty = d_cold));
         ("faults", Jlist (List.rev !jfaults));
         ("all_checks_passed", jb !ok);
       ]);
  let oc = open_out "BENCH_cache.json" in
  output_string oc (Buffer.contents buf);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.wrote BENCH_cache.json@.";
  cache_used := false;
  (* scratch cache cleanup *)
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir);
     Sys.rmdir dir
   with Sys_error _ -> ());
  if not !ok then exit 1

(* ------------------------------------------------------------------ *)
(* Frontend: per-unit parse+link vs megastring concat — compile-phase  *)
(* wall time and peak heap on the million-line corpus, byte-identical  *)
(* reports at jobs 1/4 under both frontends, zero link reparses on the *)
(* generated corpus, and the per-unit AST cache re-parsing exactly the *)
(* dirty unit; writes BENCH_frontend.json.                             *)
(* TYPEQUAL_FRONTEND_LINES overrides the line target.                  *)
(* ------------------------------------------------------------------ *)

let frontend_bench () =
  Fmt.pr "@.=== Frontend: per-unit parse+link vs megastring concat ===@.";
  let b = List.hd Cbench.Suite.scale in
  let target =
    match Sys.getenv_opt "TYPEQUAL_FRONTEND_LINES" with
    | Some v -> ( try int_of_string v with _ -> b.Cbench.Suite.b_lines)
    | None -> b.Cbench.Suite.b_lines
  in
  let files =
    Cbench.Gen.generate_project ~seed:b.Cbench.Suite.b_seed
      ~target_lines:target ()
  in
  let lines = Cbench.Gen.project_lines files in
  Fmt.pr "corpus %s: %d files, %d lines@.@." b.Cbench.Suite.b_name
    (List.length files) lines;
  let ok = ref true in
  let check name cond detail =
    Fmt.pr "  [%s] %s%s@." (if cond then "ok" else "FAIL") name detail;
    if not cond then ok := false
  in

  (* ---- compile phase: wall time and peak heap ---- *)
  (* top_heap_words is a process-lifetime peak, so the lean path must be
     measured FIRST: if the concat compile then pushes the peak higher,
     the excess is attributable to the megastring pipeline *)
  let co_pu = Driver.compile_sources ~frontend:Driver.Per_unit files in
  let heap_pu = (Gc.quick_stat ()).Gc.top_heap_words in
  let co_cc = Driver.compile_sources ~frontend:Driver.Concat files in
  let heap_cc = (Gc.quick_stat ()).Gc.top_heap_words in
  let t_pu = co_pu.Driver.co_t_compile in
  let t_cc = co_cc.Driver.co_t_compile in
  let fs =
    match co_pu.Driver.co_frontend with
    | Some fs -> fs
    | None -> assert false
  in
  Fmt.pr "%-10s %10s %14s@." "frontend" "compile(s)" "top_heap(Mw)";
  Fmt.pr "%-10s %10.3f %14.1f@." "per-unit" t_pu (float heap_pu /. 1e6);
  Fmt.pr "%-10s %10.3f %14.1f@." "concat" t_cc (float heap_cc /. 1e6);
  Fmt.pr
    "per-unit phases: %d units, %d reparsed, lex %.3fs, parse %.3fs, build \
     %.3fs, link %.3fs@."
    fs.Driver.fs_units fs.Driver.fs_reparsed fs.Driver.fs_lex_s
    fs.Driver.fs_parse_s fs.Driver.fs_build_s fs.Driver.fs_link_s;
  let co_pu4 = Driver.compile_sources ~frontend:Driver.Per_unit ~jobs:4 files in
  let t_pu4 = co_pu4.Driver.co_t_compile in
  Fmt.pr "per-unit at jobs 4: %.3fs (%.2fx vs serial per-unit)@.@." t_pu4
    (t_pu /. t_pu4);
  check "both frontends produce the same program"
    (List.length (Cfront.Cprog.functions co_pu.Driver.co_prog)
     = List.length (Cfront.Cprog.functions co_cc.Driver.co_prog)
    && List.length co_pu.Driver.co_diags
       = List.length co_cc.Driver.co_diags)
    "";
  check "no link reparses on the generated corpus"
    (fs.Driver.fs_reparsed = 0)
    (Printf.sprintf " (%d)" fs.Driver.fs_reparsed);
  check "per-unit serial compile >= 1.3x faster than concat"
    (t_cc /. t_pu >= 1.3)
    (Printf.sprintf " measured %.2fx" (t_cc /. t_pu));
  check "per-unit compile peak heap strictly below concat's"
    (heap_pu < heap_cc)
    (Printf.sprintf " (%.1f Mw vs %.1f Mw)" (float heap_pu /. 1e6)
       (float heap_cc /. 1e6));

  (* ---- parity: full runs, both frontends, serial and jobs 4 ---- *)
  (* the scale digest plus rendered diagnostics: everything a user sees *)
  let fdigest (r : Driver.run) =
    scale_digest r.Driver.results r.Driver.solver_stats
    ^ String.concat "\n"
        (List.map Cfront.Diag.to_string r.Driver.diagnostics)
  in
  let run frontend jobs =
    fdigest (Driver.run_sources ~frontend ~jobs ~mode:Analysis.Mono files)
  in
  let d_pu1 = run Driver.Per_unit 1 in
  let d_cc1 = run Driver.Concat 1 in
  let d_pu4 = run Driver.Per_unit 4 in
  let d_cc4 = run Driver.Concat 4 in
  check "report+diags byte-identical: per-unit vs concat (serial)"
    (d_pu1 = d_cc1) "";
  check "report+diags byte-identical: per-unit vs concat (jobs 4)"
    (d_pu4 = d_cc4) "";
  check "report+diags byte-identical across jobs (per-unit)"
    (d_pu1 = d_pu4) "";

  (* ---- per-unit AST cache: editing one file re-parses only that file ---- *)
  let bs = List.hd Cbench.Suite.scale_smoke in
  let sfiles =
    Cbench.Gen.generate_project ~seed:bs.Cbench.Suite.b_seed
      ~target_lines:bs.Cbench.Suite.b_lines ()
  in
  let nunits = List.length sfiles in
  let dir =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "typequal-frontend-bench-%d" (Unix.getpid ()))
    in
    (try Sys.mkdir d 0o755 with Sys_error _ -> ());
    d
  in
  cache_used := true;
  let cached_run files =
    match Driver.open_cache ~opts_id:"bench" dir with
    | None -> failwith "frontend bench: cannot open cache directory"
    | Some cs ->
        let r = Driver.run_sources ~mode:Analysis.Mono ~cache:cs files in
        (fdigest r, Cache.stats cs.Driver.cs_cache)
  in
  let unit_counts (st : Cache.stats) =
    match Hashtbl.find_opt st.Cache.by_kind "unit" with
    | Some hm -> hm
    | None -> (0, 0)
  in
  let d_cold, st_cold = cached_run sfiles in
  let cold_hits, cold_misses = unit_counts st_cold in
  check
    (Printf.sprintf "cold run parses all %d units fresh" nunits)
    ((cold_hits, cold_misses) = (0, nunits))
    (Printf.sprintf " (unit tier %d hits / %d misses)" cold_hits cold_misses);
  let dirty =
    match List.rev sfiles with
    | (name, src) :: rest -> List.rev ((name, src ^ "\n") :: rest)
    | [] -> assert false
  in
  let d_dirty, st_dirty = cached_run dirty in
  let dirty_hits, dirty_misses = unit_counts st_dirty in
  check "dirty unit re-parses exactly one unit"
    ((dirty_hits, dirty_misses) = (nunits - 1, 1))
    (Printf.sprintf " (unit tier %d hits / %d misses)" dirty_hits
       dirty_misses);
  check "dirty-unit report byte-identical to cold" (d_dirty = d_cold) "";
  cache_used := false;
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir);
     Sys.rmdir dir
   with Sys_error _ -> ());
  Fmt.pr "%s@."
    (if !ok then "ALL FRONTEND CHECKS PASSED" else "FRONTEND CHECKS FAILED");

  (* ---- BENCH_frontend.json ---- *)
  let buf = Buffer.create 4096 in
  pp_json buf
    (Jobj
       [
         ("paper", Jstr "A Theory of Type Qualifiers (PLDI 1999)");
         ("env", jenv ());
         ("corpus", Jstr b.Cbench.Suite.b_name);
         ("files", ji (List.length files));
         ("lines", ji lines);
         ( "per_unit",
           Jobj
             [
               ("t_compile_s", jf t_pu);
               ("top_heap_words", ji heap_pu);
               ("units", ji fs.Driver.fs_units);
               ("reparsed", ji fs.Driver.fs_reparsed);
               ("lex_s", jf fs.Driver.fs_lex_s);
               ("parse_s", jf fs.Driver.fs_parse_s);
               ("build_s", jf fs.Driver.fs_build_s);
               ("link_s", jf fs.Driver.fs_link_s);
             ] );
         ( "concat",
           Jobj
             [ ("t_compile_s", jf t_cc); ("top_heap_words", ji heap_cc) ] );
         ("compile_speedup_serial", jf (t_cc /. t_pu));
         ("per_unit_jobs4_t_compile_s", jf t_pu4);
         ( "reports_identical",
           jb (d_pu1 = d_cc1 && d_pu4 = d_cc4 && d_pu1 = d_pu4) );
         ( "dirty_unit",
           Jobj
             [
               ("units", ji nunits);
               ("unit_tier_hits", ji dirty_hits);
               ("unit_tier_misses", ji dirty_misses);
               ("report_identical", jb (d_dirty = d_cold));
             ] );
         ("all_checks_passed", jb !ok);
       ]);
  let oc = open_out "BENCH_frontend.json" in
  output_string oc (Buffer.contents buf);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.wrote BENCH_frontend.json@.";
  if not !ok then exit 1

(* ------------------------------------------------------------------ *)
(* Daemon: the persistent Session that typequald serves — cold         *)
(* analysis vs warm position queries vs single-unit edit + re-query on *)
(* the CI smoke corpus; writes BENCH_daemon.json.                      *)
(* TYPEQUAL_DAEMON_LINES overrides the line target.                    *)
(* ------------------------------------------------------------------ *)

let percentile sorted p =
  (* nearest-rank on an ascending float array *)
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (int_of_float (ceil (p /. 100. *. float n)) - 1))

let percentiles samples =
  let a = Array.of_list samples in
  Array.sort compare a;
  (percentile a 50., percentile a 90., percentile a 99.)

let daemon_bench () =
  Fmt.pr "@.=== Daemon: warm Session queries vs cold re-analysis ===@.";
  let b = List.hd Cbench.Suite.scale_smoke in
  let target =
    match Sys.getenv_opt "TYPEQUAL_DAEMON_LINES" with
    | Some v -> ( try int_of_string v with _ -> b.Cbench.Suite.b_lines)
    | None -> b.Cbench.Suite.b_lines
  in
  let files =
    Cbench.Gen.generate_project ~seed:b.Cbench.Suite.b_seed
      ~target_lines:target ()
  in
  let lines = Cbench.Gen.project_lines files in
  Fmt.pr "corpus %s: %d files, %d lines@.@." b.Cbench.Suite.b_name
    (List.length files) lines;
  let ok = ref true in
  let check name cond detail =
    Fmt.pr "  [%s] %s%s@." (if cond then "ok" else "FAIL") name detail;
    if not cond then ok := false
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in

  (* ---- cold: fresh session, full analysis (the daemon's startup) ---- *)
  let cold_runs = 3 in
  let cold_samples =
    List.init cold_runs (fun _ ->
        let t = Session.create files in
        snd (time (fun () -> Session.run t)))
  in
  let cold_p50, cold_p90, cold_p99 = percentiles cold_samples in
  Fmt.pr "cold analysis (%d runs): p50 %.3fs, p90 %.3fs, p99 %.3fs@."
    cold_runs cold_p50 cold_p90 cold_p99;

  (* ---- warm queries against a live session ---- *)
  let t = Session.create files in
  ignore (Session.run t);
  let keys =
    match Session.positions t with
    | [] -> failwith "daemon bench: no positions"
    | ps -> Array.of_list (List.map (fun (k, _, _) -> k) ps)
  in
  let nq = 200 in
  let query_samples =
    List.init nq (fun i ->
        let k = keys.(i mod Array.length keys) in
        let r, dt = time (fun () -> Session.classify t k) in
        if r = None then failwith ("daemon bench: unknown key " ^ k);
        dt)
  in
  let q_p50, q_p90, q_p99 = percentiles query_samples in
  Fmt.pr "warm query (%d samples): p50 %.3fms, p90 %.3fms, p99 %.3fms@." nq
    (q_p50 *. 1e3) (q_p90 *. 1e3) (q_p99 *. 1e3);

  (* ---- single-unit edit + re-query ---- *)
  (* alternate appending and restoring one unit's source so every step
     is a real digest change; each sample is the daemon's full
     edit-to-answer path: update, re-run, classify *)
  let edit_name, edit_src =
    match List.rev files with (n, s) :: _ -> (n, s) | [] -> assert false
  in
  let n_edits = 10 in
  let edit_samples =
    List.init n_edits (fun i ->
        let src = if i mod 2 = 0 then edit_src ^ "\n" else edit_src in
        snd
          (time (fun () ->
               (match Session.update_unit t edit_name src with
               | `Updated -> ()
               | `Added | `Unchanged ->
                   failwith "daemon bench: edit did not dirty the unit");
               ignore (Session.run t);
               ignore (Session.classify t keys.(0)))))
  in
  let e_p50, e_p90, e_p99 = percentiles edit_samples in
  let speedup = cold_p50 /. e_p50 in
  Fmt.pr
    "edit + re-query (%d samples): p50 %.3fs, p90 %.3fs, p99 %.3fs \
     (%.1fx vs cold p50)@."
    n_edits e_p50 e_p90 e_p99 speedup;
  let st = Session.stats t in
  Fmt.pr "scheme memo: %d hits, %d misses@." st.Session.ss_memo_hits
    st.Session.ss_memo_misses;

  (* the warm session after all those edits must still render exactly
     what a cold analysis of the same sources renders *)
  let warm_render = Session.render ~positions:true ~name:"daemon" t in
  let cold_render =
    Session.render ~positions:true ~name:"daemon" (Session.create files)
  in

  check "warm query p50 <= 10 ms" (q_p50 <= 0.010)
    (Printf.sprintf " measured %.3fms" (q_p50 *. 1e3));
  check "warm render byte-identical to cold" (warm_render = cold_render) "";
  check "edits replay clean SCCs from the memo"
    (st.Session.ss_memo_hits > 0)
    (Printf.sprintf " (%d hits)" st.Session.ss_memo_hits);
  (* Recorded, not enforced: the 10x edit-to-answer target. The scheme
     memo removes re-INFERENCE of clean SCCs, but the monotone flat-arena
     store cannot delete the edited unit's stale constraints, so every
     warm run still re-CONSTRUCTS the store (replay + splice) — a linear
     floor that caps the honest edit speedup well short of 10x on this
     corpus. See ROADMAP "sublinear warm rebuild". *)
  let meets_10x = speedup >= 10. in
  Fmt.pr "  [%s] edit + re-query >= 10x faster than cold measured %.1fx%s@."
    (if meets_10x then "ok" else "target unmet")
    speedup
    (if meets_10x then ""
     else " (linear store-rebuild floor; recorded honestly, not enforced)");
  Fmt.pr "%s@."
    (if !ok then "ALL DAEMON CHECKS PASSED" else "DAEMON CHECKS FAILED");

  (* ---- BENCH_daemon.json ---- *)
  let jp3 (p50, p90, p99) =
    [ ("p50_s", jf p50); ("p90_s", jf p90); ("p99_s", jf p99) ]
  in
  let buf = Buffer.create 4096 in
  pp_json buf
    (Jobj
       [
         ("paper", Jstr "A Theory of Type Qualifiers (PLDI 1999)");
         ("env", jenv ());
         ("corpus", Jstr b.Cbench.Suite.b_name);
         ("files", ji (List.length files));
         ("lines", ji lines);
         ("mode", Jstr "poly");
         ( "cold",
           Jobj (("runs", ji cold_runs) :: jp3 (cold_p50, cold_p90, cold_p99))
         );
         ( "warm_query",
           Jobj
             [
               ("samples", ji nq);
               ("p50_ms", jf (q_p50 *. 1e3));
               ("p90_ms", jf (q_p90 *. 1e3));
               ("p99_ms", jf (q_p99 *. 1e3));
             ] );
         ( "edit_requery",
           Jobj
             (("samples", ji n_edits)
             :: jp3 (e_p50, e_p90, e_p99)
             @ [
                 ("speedup_vs_cold_p50", jf speedup);
                 ("meets_10x_target", jb meets_10x);
                 ("memo_hits", ji st.Session.ss_memo_hits);
                 ("memo_misses", ji st.Session.ss_memo_misses);
               ]) );
         ("warm_render_identical_to_cold", jb (warm_render = cold_render));
         ("all_checks_passed", jb !ok);
       ]);
  let oc = open_out "BENCH_daemon.json" in
  output_string oc (Buffer.contents buf);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.wrote BENCH_daemon.json@.";
  if not !ok then exit 1

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let want s = args = [] || List.mem s args || List.mem "all" args in
  Fmt.pr "A Theory of Type Qualifiers (PLDI 1999) — experiment harness@.";
  (match Typequal.Gctune.setup () with
  | Ok d ->
      gc_profile := d;
      if d <> "off" then Fmt.pr "gc profile: %s@." d
  | Error m ->
      Fmt.epr "error: %s@." m;
      exit 2);
  if want "table1" then table1 ();
  if want "table2" || want "figure6" then begin
    let rows = table2_rows () in
    if want "table2" then table2 rows;
    if want "figure6" then figure6 rows
  end;
  if want "scaling" then scaling ();
  if want "parallel" then parallel ();
  if want "compaction" then compaction ();
  if want "lattice" then lattice ();
  if want "ablation" then ablation ();
  if want "ablation" || want "micro" || want "solver" then solver_ablation ();
  if want "extensions" then extensions ();
  if want "micro" then micro ();
  if want "cache" then cache_bench ();
  if want "hotpath" then hotpath ();
  (* scale and frontend only when asked for by name: the corpus is a
     million lines *)
  if List.mem "scale" args || List.mem "all" args then scale ();
  if List.mem "frontend" args || List.mem "all" args then frontend_bench ();
  if List.mem "daemon" args || List.mem "all" args then daemon_bench ();
  write_json ()
