(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 4.4) on the synthetic benchmark suite, plus the
   scaling/overhead claims of the text and the ablations of DESIGN.md.

   Sections (run all by default, or select: table1 table2 figure6 scaling
   ablation extensions micro):

     table1  — the benchmark suite (paper Table 1)
     table2  — compile/mono/poly times (avg of 5, like the paper) and
               Declared / Mono / Poly / Total-possible counts (Table 2)
     figure6 — stacked percentage bars of Declared / Mono-added /
               Poly-added / Other per benchmark (Figure 6), plus CSV
     scaling — inference time vs program size; checks "scales roughly
               linearly" and "polymorphic at most 3x monomorphic"
     ablation— (a) unsound covariant ref vs (SubRef); (b) struct field
               sharing off; (c) worklist vs naive solver
     extensions — polymorphic recursion (Section 4.3's wish) and scheme
               simplification (Section 6's open problem)
     micro   — Bechamel micro-benchmarks of the solver and both inference
               modes *)

open Cqual

let paper_table2 =
  (* the paper's reported numbers, for side-by-side shape comparison:
     name, (declared, mono, poly, total) *)
  [
    ("woman-3.0a-sim", (50, 67, 72, 95));
    ("patch-2.5-sim", (84, 99, 107, 148));
    ("m4-1.4-sim", (88, 249, 262, 370));
    ("diffutils-2.7-sim", (153, 209, 243, 372));
    ("ssh-1.2.26-sim", (147, 316, 347, 547));
    ("uucp-1.04-sim", (433, 1116, 1299, 1773));
  ]

let time_avg n f =
  (* the paper reports the average of five runs *)
  let ts =
    List.init n (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (f ());
        Unix.gettimeofday () -. t0)
  in
  List.fold_left ( +. ) 0. ts /. float n

(* ------------------------------------------------------------------ *)

let table1 () =
  Fmt.pr "@.=== Table 1: Benchmarks for const inference ===@.";
  Fmt.pr "(synthetic stand-ins regenerated deterministically at the paper's@.";
  Fmt.pr " line counts; see DESIGN.md 'Substitutions')@.@.";
  Fmt.pr "%-20s %8s  %s@." "Name" "Lines" "Description";
  List.iter
    (fun (b : Cbench.Suite.bench) ->
      Fmt.pr "%-20s %8d  %s@." b.b_name b.b_lines b.b_description)
    Cbench.Suite.table1

(* ------------------------------------------------------------------ *)

type t2row = {
  name : string;
  compile_s : float;
  mono_s : float;
  poly_s : float;
  declared : int;
  mono : int;
  poly : int;
  total : int;
  errors : int;
}

let table2_rows ?(runs = 5) () : t2row list =
  List.map
    (fun (b : Cbench.Suite.bench) ->
      let src = Cbench.Suite.source_of b in
      let compile_s = time_avg runs (fun () -> Driver.compile src) in
      let prog = Driver.compile src in
      let mono_s =
        time_avg runs (fun () ->
            let env, ifaces = Analysis.run Analysis.Mono prog in
            Report.measure env ifaces)
      in
      let poly_s =
        time_avg runs (fun () ->
            let env, ifaces = Analysis.run Analysis.Poly prog in
            Report.measure env ifaces)
      in
      let env_m, if_m = Analysis.run Analysis.Mono prog in
      let rm = Report.measure env_m if_m in
      let env_p, if_p = Analysis.run Analysis.Poly prog in
      let rp = Report.measure env_p if_p in
      {
        name = b.b_name;
        compile_s;
        mono_s;
        poly_s;
        declared = rm.Report.declared;
        mono = rm.Report.possible;
        poly = rp.Report.possible;
        total = rm.Report.total;
        errors = rm.Report.type_errors + rp.Report.type_errors;
      })
    Cbench.Suite.table1

let table2 rows =
  Fmt.pr
    "@.=== Table 2: Number of inferred possibly-const positions ===@.@.";
  Fmt.pr "%-20s %11s %11s %11s %9s %6s %6s %6s@." "Name" "Compile(s)"
    "Mono(s)" "Poly(s)" "Declared" "Mono" "Poly" "Total";
  List.iter
    (fun r ->
      Fmt.pr "%-20s %11.3f %11.3f %11.3f %9d %6d %6d %6d@." r.name
        r.compile_s r.mono_s r.poly_s r.declared r.mono r.poly r.total)
    rows;
  Fmt.pr "@.shape checks against the paper (absolute counts differ — the@.";
  Fmt.pr "substrate is synthetic — but each claimed relation must hold):@.";
  let ok = ref true in
  let check name cond detail =
    Fmt.pr "  [%s] %s%s@." (if cond then "ok" else "FAIL") name detail;
    if not cond then ok := false
  in
  List.iter
    (fun r ->
      let p = List.assoc_opt r.name paper_table2 in
      let paper_ratio =
        match p with
        | Some (_, m, pl, _) ->
            Printf.sprintf " (paper: %.2f)" (float pl /. float m)
        | None -> ""
      in
      check
        (Printf.sprintf "%s: declared <= mono <= poly <= total" r.name)
        (r.declared <= r.mono && r.mono <= r.poly && r.poly <= r.total)
        "";
      check
        (Printf.sprintf "%s: poly/mono in [1.0, 1.25]" r.name)
        (let ratio = float r.poly /. float r.mono in
         ratio >= 1.0 && ratio <= 1.25)
        (Printf.sprintf " measured %.2f%s" (float r.poly /. float r.mono)
           paper_ratio);
      check
        (Printf.sprintf "%s: poly time <= 3x mono time" r.name)
        (r.poly_s <= (3. *. r.mono_s) +. 0.005)
        (Printf.sprintf " measured %.2fx" (r.poly_s /. r.mono_s));
      check (Printf.sprintf "%s: no type errors" r.name) (r.errors = 0) "")
    rows;
  check "suite: more consts inferable than declared everywhere"
    (List.for_all (fun r -> r.mono > r.declared) rows)
    "";
  (* uucp headline: "more than 2.5 times more consts than are actually
     present" — we check the same direction at a conservative factor *)
  (let u = List.find (fun r -> r.name = "uucp-1.04-sim") rows in
   check "uucp: poly/declared >= 2"
     (float u.poly /. float u.declared >= 2.)
     (Printf.sprintf " measured %.2f (paper: %.2f)"
        (float u.poly /. float u.declared)
        (1299. /. 433.)));
  Fmt.pr "%s@."
    (if !ok then "ALL SHAPE CHECKS PASSED" else "SHAPE CHECKS FAILED")

(* ------------------------------------------------------------------ *)

let figure6 rows =
  Fmt.pr "@.=== Figure 6: Number of inferred consts for benchmarks ===@.";
  Fmt.pr "(stacked percentage of total possible positions)@.@.";
  let width = 50 in
  Fmt.pr "%-20s %s@." ""
    "0%        20%       40%       60%       80%      100%";
  Fmt.pr "%-20s |%s|@." "" (String.make (width - 2) '-');
  List.iter
    (fun r ->
      let pct x = float x /. float r.total in
      let chars f c = String.make (int_of_float ((f *. float width) +. 0.5)) c in
      let bar =
        chars (pct r.declared) 'D'
        ^ chars (pct (r.mono - r.declared)) 'M'
        ^ chars (pct (r.poly - r.mono)) 'P'
      in
      let bar =
        if String.length bar < width then
          bar ^ String.make (width - String.length bar) '.'
        else String.sub bar 0 width
      in
      Fmt.pr "%-20s %s@." r.name bar)
    rows;
  Fmt.pr
    "@.legend: D=Declared  M=Mono (additional)  P=Poly (additional)  \
     .=Other@.";
  Fmt.pr "@.CSV:@.";
  Fmt.pr "name,declared_pct,mono_added_pct,poly_added_pct,other_pct@.";
  List.iter
    (fun r ->
      let pct x = 100. *. float x /. float r.total in
      Fmt.pr "%s,%.1f,%.1f,%.1f,%.1f@." r.name (pct r.declared)
        (pct (r.mono - r.declared))
        (pct (r.poly - r.mono))
        (pct (r.total - r.poly)))
    rows

(* ------------------------------------------------------------------ *)

let scaling () =
  Fmt.pr "@.=== Scaling: inference time vs program size (Section 4.4) ===@.";
  Fmt.pr "\"the inference scales roughly linearly with the program size\"@.@.";
  Fmt.pr "%8s %8s %10s %10s %10s %13s@." "lines" "funcs" "mono(s)" "poly(s)"
    "poly/mono" "us/line(mono)";
  let sizes = [ 1000; 2000; 4000; 8000; 16000; 32000 ] in
  let per_line =
    List.map
      (fun n ->
        let src = Cbench.Gen.generate ~seed:(1000 + n) ~target_lines:n () in
        let prog = Driver.compile src in
        let nfun = List.length (Cfront.Cprog.functions prog) in
        let mono_s =
          time_avg 3 (fun () ->
              let env, ifaces = Analysis.run Analysis.Mono prog in
              Report.measure env ifaces)
        in
        let poly_s =
          time_avg 3 (fun () ->
              let env, ifaces = Analysis.run Analysis.Poly prog in
              Report.measure env ifaces)
        in
        Fmt.pr "%8d %8d %10.3f %10.3f %10.2f %13.2f@." n nfun mono_s poly_s
          (poly_s /. mono_s)
          (mono_s /. float n *. 1e6);
        (n, mono_s, poly_s))
      sizes
  in
  match (List.hd per_line, List.nth per_line (List.length per_line - 1)) with
  | (n0, m0, _), (n1, m1, _) ->
      let r0 = m0 /. float n0 and r1 = m1 /. float n1 in
      Fmt.pr
        "@.[%s] per-line cost ratio large/small = %.2f (roughly linear if \
         < 4)@."
        (if r1 /. r0 < 4. then "ok" else "FAIL")
        (r1 /. r0)

(* ------------------------------------------------------------------ *)

let ablation () =
  Fmt.pr "@.=== Ablations (DESIGN.md) ===@.";

  (* (a) unsound covariant ref rule vs the paper's invariant (SubRef) *)
  Fmt.pr
    "@.(a) ref subtyping: (SubRef) invariance vs the unsound covariant rule@.";
  let counterexample =
    "let x = ref (@[nonzero] 37) in\n\
     let clear = fun p -> p := @[~nonzero] 0 in\n\
     clear x;\n\
     (!x) |[nonzero]"
  in
  let open Qlambda in
  let space = Rules.cn_space in
  let ast = Parse.parse counterexample in
  let sound = Infer.typechecks ~hooks:Rules.cn_hooks space ast in
  let unsound =
    Infer.typechecks ~hooks:Rules.cn_hooks ~unsound_ref:true space ast
  in
  let stuck =
    match Eval.run space ast with Eval.Stuck_at _ -> true | _ -> false
  in
  Fmt.pr "    Section 2.4 counterexample: sound rule %s, unsound rule %s,@."
    (if sound then "ACCEPTS (bug!)" else "rejects")
    (if unsound then "accepts" else "REJECTS (unexpected)");
  Fmt.pr "    and the program indeed gets stuck at runtime: %b@." stuck;

  (* (b) struct field sharing off *)
  Fmt.pr "@.(b) struct field sharing (Section 4.2) on vs off@.";
  let shared_conflict =
    "struct buf { char *data; };\n\
     void f(struct buf *x, const char *s) { x->data = s; }\n\
     void g(struct buf *y) { *(y->data) = 'c'; }"
  in
  let with_sharing = Driver.run_source ~mode:Analysis.Mono shared_conflict in
  let without =
    Driver.run_source ~mode:Analysis.Mono ~field_sharing:false shared_conflict
  in
  Fmt.pr
    "    conflicting uses of one struct type: sharing detects %d error(s), \
     no-sharing misses it (%d errors)@."
    with_sharing.Driver.results.Report.type_errors
    without.Driver.results.Report.type_errors;
  let b = List.nth Cbench.Suite.table1 2 in
  let src = Cbench.Suite.source_of b in
  let on = Driver.run_source ~mode:Analysis.Mono src in
  let off = Driver.run_source ~mode:Analysis.Mono ~field_sharing:false src in
  Fmt.pr
    "    %s possible consts: sharing=%d, no-sharing=%d (no-sharing is \
     unsound, not more precise)@."
    b.b_name on.Driver.results.Report.possible
    off.Driver.results.Report.possible;

  (* (c) worklist vs naive solver *)
  Fmt.pr "@.(c) solver: worklist propagation vs naive round-robin@.";
  let module S = Typequal.Solver in
  let sp = Analysis.const_space in
  let st =
    let st = S.create sp in
    let n = 20000 in
    let vars = Array.init n (fun _ -> S.fresh st) in
    let rng = Cbench.Rng.create 7 in
    for i = 0 to n - 1 do
      S.add_leq_vv st vars.(i) vars.(Cbench.Rng.int rng n);
      if Cbench.Rng.int rng 100 < 3 then
        S.add_leq_cv st (Typequal.Lattice.Elt.top sp) vars.(i)
    done;
    st
  in
  let t_work = time_avg 3 (fun () -> S.solve_least st) in
  let t_naive = time_avg 3 (fun () -> S.solve_least_naive st) in
  Fmt.pr "    20k vars / 20k edges: worklist %.4fs, naive %.4fs (%.1fx)@."
    t_work t_naive (t_naive /. t_work)

(* ------------------------------------------------------------------ *)

let micro () =
  Fmt.pr "@.=== Bechamel micro-benchmarks ===@.";
  let open Bechamel in
  let open Toolkit in
  let src = Cbench.Gen.generate ~seed:99 ~target_lines:2000 () in
  let prog = Driver.compile src in
  let module S = Typequal.Solver in
  let sp = Analysis.const_space in
  let solver_input =
    let st = S.create sp in
    let n = 5000 in
    let vars = Array.init n (fun _ -> S.fresh st) in
    let rng = Cbench.Rng.create 11 in
    for i = 0 to n - 1 do
      S.add_leq_vv st vars.(i) vars.(Cbench.Rng.int rng n)
    done;
    S.add_leq_cv st (Typequal.Lattice.Elt.top sp) vars.(0);
    st
  in
  let tests =
    Test.make_grouped ~name:"typequal"
      [
        Test.make ~name:"solver-worklist-5k"
          (Staged.stage (fun () -> S.solve_least solver_input));
        Test.make ~name:"solver-naive-5k"
          (Staged.stage (fun () -> S.solve_least_naive solver_input));
        Test.make ~name:"parse-2kloc"
          (Staged.stage (fun () -> ignore (Driver.compile src)));
        Test.make ~name:"mono-infer-2kloc"
          (Staged.stage (fun () ->
               let env, ifaces = Analysis.run Analysis.Mono prog in
               ignore (Report.measure env ifaces)));
        Test.make ~name:"poly-infer-2kloc"
          (Staged.stage (fun () ->
               let env, ifaces = Analysis.run Analysis.Poly prog in
               ignore (Report.measure env ifaces)));
        Test.make ~name:"lambda-poly-infer"
          (Staged.stage (fun () ->
               let open Qlambda in
               ignore
                 (Infer.typechecks ~hooks:Rules.cn_hooks ~poly:true
                    Rules.cn_space
                    (Parse.parse
                       "let id = fun x -> x in let y = id (ref 1) in let z \
                        = id (@[const] ref 1) in !y"))));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let res = Analyze.all ols Instance.monotonic_clock raw in
  let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) res [] in
  Fmt.pr "%-40s %12s@." "benchmark" "time/run";
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ ns ] ->
          let pp ppf ns =
            if ns > 1e9 then Fmt.pf ppf "%9.3f s " (ns /. 1e9)
            else if ns > 1e6 then Fmt.pf ppf "%9.3f ms" (ns /. 1e6)
            else if ns > 1e3 then Fmt.pf ppf "%9.3f us" (ns /. 1e3)
            else Fmt.pf ppf "%9.1f ns" ns
          in
          Fmt.pr "%-40s %a@." name pp ns
      | _ -> Fmt.pr "%-40s (no estimate)@." name)
    (List.sort compare items)

(* ------------------------------------------------------------------ *)


(* ------------------------------------------------------------------ *)
(* Extensions beyond the paper's evaluation                            *)
(* ------------------------------------------------------------------ *)

let extensions () =
  Fmt.pr "@.=== Extensions: polymorphic recursion & scheme simplification ===@.";
  Fmt.pr "(Section 4.3 wished for polymorphic recursion; Section 6 poses@.";
  Fmt.pr " constraint simplification as an open problem)@.@.";
  Fmt.pr "%-20s %6s %6s %8s %11s %11s %11s@." "Name" "Poly" "PolyRec"
    "Total" "Poly(s)" "PolyRec(s)" "Simpl(s)";
  List.iter
    (fun (b : Cbench.Suite.bench) ->
      let src = Cbench.Suite.source_of b in
      let prog = Driver.compile src in
      let run_once mode simplify =
        let t0 = Unix.gettimeofday () in
        let env, ifaces = Analysis.run ~simplify mode prog in
        let r = Report.measure env ifaces in
        (r, Unix.gettimeofday () -. t0)
      in
      let rp, tp = run_once Analysis.Poly false in
      let rr, tr = run_once Analysis.Polyrec false in
      let rs, ts = run_once Analysis.Poly true in
      assert (rs.Report.possible = rp.Report.possible);
      assert (rr.Report.possible >= rp.Report.possible);
      Fmt.pr "%-20s %6d %6d %8d %11.3f %11.3f %11.3f@." b.b_name
        rp.Report.possible rr.Report.possible rp.Report.total tp tr ts)
    Cbench.Suite.table1;
  Fmt.pr
    "@.(PolyRec >= Poly everywhere; simplification preserves all results \
     — both are asserted.)@."

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let want s = args = [] || List.mem s args || List.mem "all" args in
  Fmt.pr "A Theory of Type Qualifiers (PLDI 1999) — experiment harness@.";
  if want "table1" then table1 ();
  if want "table2" || want "figure6" then begin
    let rows = table2_rows () in
    if want "table2" then table2 rows;
    if want "figure6" then figure6 rows
  end;
  if want "scaling" then scaling ();
  if want "ablation" then ablation ();
  if want "extensions" then extensions ();
  if want "micro" then micro ()
