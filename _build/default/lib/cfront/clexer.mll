(* Lexer for the mini-C language. Handles ANSI C tokens, both comment
   styles, character/string escapes, hex/octal integer literals, and the
   paper's Section 2.5 qualifier extension: identifiers prefixed with `$'
   lex as QUALNAME so user qualifiers never collide with C identifiers.
   Preprocessor lines (`#...') are skipped — benchmark inputs are assumed
   to be post-expansion, as with the paper's use of a real C front end. *)

{
open Ctoken

exception Lex_error of string * int  (* message, line *)

let line = ref 1

let keywords = Hashtbl.create 64
let () =
  List.iter (fun (k, t) -> Hashtbl.add keywords k t)
    [
      ("void", KW_VOID); ("char", KW_CHAR); ("short", KW_SHORT);
      ("int", KW_INT); ("long", KW_LONG); ("float", KW_FLOAT);
      ("double", KW_DOUBLE); ("signed", KW_SIGNED); ("unsigned", KW_UNSIGNED);
      ("const", KW_CONST); ("volatile", KW_VOLATILE); ("struct", KW_STRUCT);
      ("union", KW_UNION); ("enum", KW_ENUM); ("typedef", KW_TYPEDEF);
      ("static", KW_STATIC); ("extern", KW_EXTERN); ("register", KW_REGISTER);
      ("auto", KW_AUTO); ("if", KW_IF); ("else", KW_ELSE);
      ("while", KW_WHILE); ("do", KW_DO); ("for", KW_FOR);
      ("return", KW_RETURN); ("break", KW_BREAK); ("continue", KW_CONTINUE);
      ("switch", KW_SWITCH); ("case", KW_CASE); ("default", KW_DEFAULT);
      ("goto", KW_GOTO); ("sizeof", KW_SIZEOF);
    ]

let unescape = function
  | 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r' | '0' -> '\000'
  | 'b' -> '\b' | '\\' -> '\\' | '\'' -> '\'' | '"' -> '"'
  | c -> c
}

let digit = ['0'-'9']
let hex = ['0'-'9' 'a'-'f' 'A'-'F']
let alpha = ['a'-'z' 'A'-'Z' '_']
let alnum = ['a'-'z' 'A'-'Z' '_' '0'-'9']
let ws = [' ' '\t' '\r']

rule token = parse
  | ws+                    { token lexbuf }
  | '\n'                   { incr line; token lexbuf }
  | "/*"                   { block_comment lexbuf; token lexbuf }
  | "//" [^ '\n']*         { token lexbuf }
  | '#' [^ '\n']*          { token lexbuf }  (* preprocessor line: skipped *)
  | "0x" hex+ as s         { INT_LIT (int_of_string s) }
  | '0' ['0'-'7']+ as s    { INT_LIT (int_of_string ("0o" ^ String.sub s 1 (String.length s - 1))) }
  | digit+ '.' digit* (['e' 'E'] ['+' '-']? digit+)? as s
                           { FLOAT_LIT (float_of_string s) }
  | digit+ ['e' 'E'] ['+' '-']? digit+ as s
                           { FLOAT_LIT (float_of_string s) }
  | digit+ as s            { INT_LIT (int_of_string s) }
  | digit+ ['u' 'U' 'l' 'L']+ as s
                           { let i = ref 0 in
                             while !i < String.length s &&
                                   s.[!i] >= '0' && s.[!i] <= '9' do incr i done;
                             INT_LIT (int_of_string (String.sub s 0 !i)) }
  | '$' (alpha alnum* as s) { QUALNAME s }
  | alpha alnum* as s      { match Hashtbl.find_opt keywords s with
                             | Some t -> t
                             | None -> IDENT s }
  | '\'' '\\' (_ as c) '\'' { CHAR_LIT (unescape c) }
  | '\'' ([^ '\\' '\''] as c) '\'' { CHAR_LIT c }
  | '"'                    { STRING_LIT (string_lit (Buffer.create 16) lexbuf) }
  | "..."                  { ELLIPSIS }
  | "->"                   { ARROW }
  | "++"                   { PLUSPLUS }
  | "--"                   { MINUSMINUS }
  | "<<="                  { SHL_ASSIGN }
  | ">>="                  { SHR_ASSIGN }
  | "<<"                   { SHL }
  | ">>"                   { SHR }
  | "<="                   { LE }
  | ">="                   { GE }
  | "=="                   { EQEQ }
  | "!="                   { NE }
  | "&&"                   { AMPAMP }
  | "||"                   { BARBAR }
  | "+="                   { PLUS_ASSIGN }
  | "-="                   { MINUS_ASSIGN }
  | "*="                   { STAR_ASSIGN }
  | "/="                   { SLASH_ASSIGN }
  | "%="                   { PERCENT_ASSIGN }
  | "&="                   { AMP_ASSIGN }
  | "|="                   { BAR_ASSIGN }
  | "^="                   { CARET_ASSIGN }
  | '('                    { LPAREN }
  | ')'                    { RPAREN }
  | '{'                    { LBRACE }
  | '}'                    { RBRACE }
  | '['                    { LBRACKET }
  | ']'                    { RBRACKET }
  | ';'                    { SEMI }
  | ','                    { COMMA }
  | ':'                    { COLON }
  | '?'                    { QUESTION }
  | '.'                    { DOT }
  | '*'                    { STAR }
  | '/'                    { SLASH }
  | '%'                    { PERCENT }
  | '+'                    { PLUS }
  | '-'                    { MINUS }
  | '&'                    { AMP }
  | '|'                    { BAR }
  | '^'                    { CARET }
  | '~'                    { TILDE }
  | '!'                    { BANG }
  | '<'                    { LT }
  | '>'                    { GT }
  | '='                    { ASSIGN }
  | eof                    { EOF }
  | _ as c                 { raise (Lex_error (Printf.sprintf "unexpected character %C" c, !line)) }

and block_comment = parse
  | "*/"                   { () }
  | '\n'                   { incr line; block_comment lexbuf }
  | eof                    { raise (Lex_error ("unterminated comment", !line)) }
  | _                      { block_comment lexbuf }

and string_lit buf = parse
  | '"'                    { Buffer.contents buf }
  | '\\' (_ as c)          { Buffer.add_char buf (unescape c); string_lit buf lexbuf }
  | '\n'                   { incr line; Buffer.add_char buf '\n'; string_lit buf lexbuf }
  | eof                    { raise (Lex_error ("unterminated string", !line)) }
  | _ as c                 { Buffer.add_char buf c; string_lit buf lexbuf }

{
(** Tokenize a whole source string, pairing each token with its line. *)
let tokenize (src : string) : (Ctoken.t * int) list =
  line := 1;
  let lexbuf = Lexing.from_string src in
  let rec go acc =
    let ln = !line in
    match token lexbuf with
    | EOF -> List.rev ((EOF, ln) :: acc)
    | t -> go ((t, ln) :: acc)
  in
  go []
}
