(** Tokens of the mini-C language (Section 4's subject language).

    Besides ANSI C keywords, the lexer recognizes [$name] as a user type
    qualifier — exactly the "reserved symbol" extension the paper's
    Section 2.5 prototypes for its ANSI C front end. *)

type t =
  (* literals and names *)
  | INT_LIT of int
  | FLOAT_LIT of float
  | CHAR_LIT of char
  | STRING_LIT of string
  | IDENT of string
  | QUALNAME of string  (** [$tainted] etc. — Section 2.5 user qualifiers *)
  (* keywords *)
  | KW_VOID
  | KW_CHAR
  | KW_SHORT
  | KW_INT
  | KW_LONG
  | KW_FLOAT
  | KW_DOUBLE
  | KW_SIGNED
  | KW_UNSIGNED
  | KW_CONST
  | KW_VOLATILE
  | KW_STRUCT
  | KW_UNION
  | KW_ENUM
  | KW_TYPEDEF
  | KW_STATIC
  | KW_EXTERN
  | KW_REGISTER
  | KW_AUTO
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | KW_SWITCH
  | KW_CASE
  | KW_DEFAULT
  | KW_GOTO
  | KW_SIZEOF
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | COLON
  | QUESTION
  | ELLIPSIS
  | DOT
  | ARROW
  (* operators *)
  | STAR
  | SLASH
  | PERCENT
  | PLUS
  | MINUS
  | PLUSPLUS
  | MINUSMINUS
  | AMP
  | AMPAMP
  | BAR
  | BARBAR
  | CARET
  | TILDE
  | BANG
  | LT
  | GT
  | LE
  | GE
  | EQEQ
  | NE
  | SHL
  | SHR
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | PERCENT_ASSIGN
  | AMP_ASSIGN
  | BAR_ASSIGN
  | CARET_ASSIGN
  | SHL_ASSIGN
  | SHR_ASSIGN
  | EOF

let to_string = function
  | INT_LIT n -> string_of_int n
  | FLOAT_LIT f -> string_of_float f
  | CHAR_LIT c -> Printf.sprintf "%C" c
  | STRING_LIT s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | QUALNAME s -> "$" ^ s
  | KW_VOID -> "void"
  | KW_CHAR -> "char"
  | KW_SHORT -> "short"
  | KW_INT -> "int"
  | KW_LONG -> "long"
  | KW_FLOAT -> "float"
  | KW_DOUBLE -> "double"
  | KW_SIGNED -> "signed"
  | KW_UNSIGNED -> "unsigned"
  | KW_CONST -> "const"
  | KW_VOLATILE -> "volatile"
  | KW_STRUCT -> "struct"
  | KW_UNION -> "union"
  | KW_ENUM -> "enum"
  | KW_TYPEDEF -> "typedef"
  | KW_STATIC -> "static"
  | KW_EXTERN -> "extern"
  | KW_REGISTER -> "register"
  | KW_AUTO -> "auto"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_DO -> "do"
  | KW_FOR -> "for"
  | KW_RETURN -> "return"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | KW_SWITCH -> "switch"
  | KW_CASE -> "case"
  | KW_DEFAULT -> "default"
  | KW_GOTO -> "goto"
  | KW_SIZEOF -> "sizeof"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | COLON -> ":"
  | QUESTION -> "?"
  | ELLIPSIS -> "..."
  | DOT -> "."
  | ARROW -> "->"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | PLUS -> "+"
  | MINUS -> "-"
  | PLUSPLUS -> "++"
  | MINUSMINUS -> "--"
  | AMP -> "&"
  | AMPAMP -> "&&"
  | BAR -> "|"
  | BARBAR -> "||"
  | CARET -> "^"
  | TILDE -> "~"
  | BANG -> "!"
  | LT -> "<"
  | GT -> ">"
  | LE -> "<="
  | GE -> ">="
  | EQEQ -> "=="
  | NE -> "!="
  | SHL -> "<<"
  | SHR -> ">>"
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+="
  | MINUS_ASSIGN -> "-="
  | STAR_ASSIGN -> "*="
  | SLASH_ASSIGN -> "/="
  | PERCENT_ASSIGN -> "%="
  | AMP_ASSIGN -> "&="
  | BAR_ASSIGN -> "|="
  | CARET_ASSIGN -> "^="
  | SHL_ASSIGN -> "<<="
  | SHR_ASSIGN -> ">>="
  | EOF -> "<eof>"
