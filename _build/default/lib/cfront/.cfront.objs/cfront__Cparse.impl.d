lib/cfront/cparse.ml: Array Buffer Cast Clexer Ctoken Hashtbl List Printf String
