lib/cfront/ctoken.ml: Printf
