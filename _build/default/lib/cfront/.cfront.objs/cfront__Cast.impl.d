lib/cfront/cast.ml: Fmt List Option String
