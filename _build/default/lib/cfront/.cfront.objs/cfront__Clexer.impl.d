lib/cfront/clexer.ml: Buffer Ctoken Hashtbl Lexing List Printf String
