lib/cfront/cprog.ml: Cast Hashtbl List String
