(** Qualified types (Section 2.1): standard types in which every
    constructor carries a qualifier, here always a solver variable (ground
    qualifiers are expressed by pinning the variable with constant bounds).

    The type structure is shared/unified imperatively, mirroring the
    factorization the paper describes: the {e shapes} are solved by
    ordinary unification (the standard type system), while the qualifiers
    generate atomic lattice constraints solved separately by
    {!Typequal.Solver}. Qualifiers never influence which shapes unify
    (Observation 1). *)

module Solver = Typequal.Solver
module Elt = Typequal.Lattice.Elt

type t = { q : Solver.var; shape : shape }

and shape =
  | Var of tv
  | Int
  | Unit
  | Fun of t * t
  | Ref of t

and tv = { id : int; mutable link : shape option }

exception Type_error of string

let counter = ref 0

let fresh_tv () =
  incr counter;
  { id = !counter; link = None }

let rec repr = function
  | Var ({ link = Some s; _ } as v) ->
      let s' = repr s in
      v.link <- Some s';
      s'
  | s -> s

let make store ?(name = "q") shape = { q = Solver.fresh ~name store; shape }
let fresh store ?name () = make store ?name (Var (fresh_tv ()))

(** [sp store tau]: the spread operator of Section 3.1 — rewrite a standard
    type into a qualified type by decorating every constructor with a fresh
    qualifier variable. Standard type variables are rewritten consistently
    (the [V] map of the paper) via [tvmap]. *)
let sp store tau =
  let tvmap : (int, shape) Hashtbl.t = Hashtbl.create 8 in
  let rec go tau =
    match Stype.repr tau with
    | Stype.SVar v -> (
        match Hashtbl.find_opt tvmap v.Stype.id with
        | Some sh -> { q = Solver.fresh ~name:"sp" store; shape = sh }
        | None ->
            let sh = Var (fresh_tv ()) in
            Hashtbl.add tvmap v.Stype.id sh;
            { q = Solver.fresh ~name:"sp" store; shape = sh })
    | Stype.SInt -> make store ~name:"sp" Int
    | Stype.SUnit -> make store ~name:"sp" Unit
    | Stype.SFun (a, r) -> make store ~name:"sp" (Fun (go a, go r))
    | Stype.SRef c -> make store ~name:"sp" (Ref (go c))
  in
  go tau

(** [strip rho]: forget the qualifiers (Section 2.3). Unresolved shape
    variables become fresh standard type variables, consistently. *)
let strip rho =
  let tvmap : (int, Stype.t) Hashtbl.t = Hashtbl.create 8 in
  let rec go rho =
    match repr rho.shape with
    | Var v -> (
        match Hashtbl.find_opt tvmap v.id with
        | Some t -> t
        | None ->
            let t = Stype.fresh_var () in
            Hashtbl.add tvmap v.id t;
            t)
    | Int -> Stype.SInt
    | Unit -> Stype.SUnit
    | Fun (a, r) -> Stype.SFun (go a, go r)
    | Ref c -> Stype.SRef (go c)
  in
  go rho

let rec occurs v sh =
  match repr sh with
  | Var v' -> v == v'
  | Int | Unit -> false
  | Fun (a, r) -> occurs v a.shape || occurs v r.shape
  | Ref c -> occurs v c.shape

(* ------------------------------------------------------------------ *)
(* Subtyping constraint decomposition (Figure 4a)                      *)
(* ------------------------------------------------------------------ *)

(* When a shape variable meets a constructed shape we link them, sharing
   the constructed side's qualified subterms. Sharing makes the inner
   qualifiers of the two sides equal, which is a sound (conservative)
   strengthening of the co/contravariant rules; the top-level qualifiers
   are still related by the proper inequality. (The paper's own const
   system relies on equality under ref anyway — rule (SubRef).) *)
let link v sh =
  (match sh with
  | Var v' when v == v' -> ()
  | _ ->
      if occurs v sh then raise (Type_error "occurs check (recursive type)");
      v.link <- Some sh)

(* [sub store r1 r2] emits the atomic constraints for [r1 <= r2]:
   (SubInt)/(SubUnit): Q1 <= Q2; (SubFun): contravariant domain, covariant
   codomain; (SubRef): invariant contents (the sound rule of Section 2.4 —
   see the unsound covariant variant exercised in the ablation tests). *)
let rec sub ?reason store r1 r2 =
  Solver.add_leq_vv ?reason store r1.q r2.q;
  sub_shape ?reason store r1.shape r2.shape

and sub_shape ?reason store s1 s2 =
  match (repr s1, repr s2) with
  | Var v1, Var v2 when v1 == v2 -> ()
  | Var v, s | s, Var v -> link v s
  | Int, Int | Unit, Unit -> ()
  | Fun (a1, r1), Fun (a2, r2) ->
      sub ?reason store a2 a1;
      sub ?reason store r1 r2
  | Ref c1, Ref c2 -> eq ?reason store c1 c2
  | s1, s2 ->
      raise
        (Type_error
           (Fmt.str "cannot relate %a and %a" pp_shape_simple s1
              pp_shape_simple s2))

(* [eq store r1 r2]: rho1 = rho2, i.e. both inequalities (the paper
   abbreviates exactly so). *)
and eq ?reason store r1 r2 =
  Solver.add_eq_vv ?reason store r1.q r2.q;
  match (repr r1.shape, repr r2.shape) with
  | Var v1, Var v2 when v1 == v2 -> ()
  | Var v, s | s, Var v -> link v s
  | Int, Int | Unit, Unit -> ()
  | Fun (a1, b1), Fun (a2, b2) ->
      eq ?reason store a1 a2;
      eq ?reason store b1 b2
  | Ref c1, Ref c2 -> eq ?reason store c1 c2
  | s1, s2 ->
      raise
        (Type_error
           (Fmt.str "cannot equate %a and %a" pp_shape_simple s1
              pp_shape_simple s2))

and pp_shape_simple ppf = function
  | Var v -> Fmt.pf ppf "'s%d" v.id
  | Int -> Fmt.string ppf "int"
  | Unit -> Fmt.string ppf "unit"
  | Fun _ -> Fmt.string ppf "(_ -> _)"
  | Ref _ -> Fmt.string ppf "ref(_)"

(** The deliberately unsound covariant-ref decomposition from Section 2.4
    (rule (Unsound)), kept only so tests and the ablation bench can show it
    accepts the paper's counterexample. *)
let rec sub_unsound_ref ?reason store r1 r2 =
  Solver.add_leq_vv ?reason store r1.q r2.q;
  match (repr r1.shape, repr r2.shape) with
  | Var v1, Var v2 when v1 == v2 -> ()
  | Var v, s | s, Var v -> link v s
  | Int, Int | Unit, Unit -> ()
  | Fun (a1, b1), Fun (a2, b2) ->
      sub_unsound_ref ?reason store a2 a1;
      sub_unsound_ref ?reason store b1 b2
  | Ref c1, Ref c2 -> sub_unsound_ref ?reason store c1 c2 (* covariant! *)
  | s1, s2 ->
      raise
        (Type_error
           (Fmt.str "cannot relate %a and %a" pp_shape_simple s1
              pp_shape_simple s2))

(* ------------------------------------------------------------------ *)
(* Copying under a qualifier-variable renaming (scheme instantiation)  *)
(* ------------------------------------------------------------------ *)

(** [rename_copy rn rho]: structural copy of [rho] with every qualifier
    variable mapped through [rn]. Resolved shapes are copied; unresolved
    shape variables are {e shared} (types are monomorphic — only qualifiers
    are polymorphic, Section 3.2). *)
let rename_copy rn rho =
  let rec go rho =
    let q = rn rho.q in
    match repr rho.shape with
    | Var _ as sh -> { q; shape = sh }
    | Int -> { q; shape = Int }
    | Unit -> { q; shape = Unit }
    | Fun (a, r) -> { q; shape = Fun (go a, go r) }
    | Ref c -> { q; shape = Ref (go c) }
  in
  go rho

(** All qualifier variables reachable in a type (through resolved links). *)
let qvars rho =
  let acc = ref [] in
  let seen = Hashtbl.create 8 in
  let rec go rho =
    if not (Hashtbl.mem seen (Solver.var_id rho.q)) then begin
      Hashtbl.add seen (Solver.var_id rho.q) ();
      acc := rho.q :: !acc
    end;
    match repr rho.shape with
    | Var _ | Int | Unit -> ()
    | Fun (a, r) ->
        go a;
        go r
    | Ref c -> go c
  in
  go rho;
  !acc

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

(** Print a qualified type with each qualifier variable's {e least}
    solution (call after solving). *)
let pp_solved store ppf rho =
  let sp = Solver.space store in
  let pq ppf q = Elt.pp sp ppf (Solver.least store q) in
  let rec go ppf rho =
    match repr rho.shape with
    | Var v -> Fmt.pf ppf "%a 's%d" pq rho.q v.id
    | Int -> Fmt.pf ppf "%a int" pq rho.q
    | Unit -> Fmt.pf ppf "%a unit" pq rho.q
    | Fun (a, r) -> Fmt.pf ppf "%a (%a -> %a)" pq rho.q go a go r
    | Ref c -> Fmt.pf ppf "%a ref(%a)" pq rho.q go c
  in
  go ppf rho

(** Print with raw qualifier variables. *)
let pp_vars ppf rho =
  let rec go ppf rho =
    match repr rho.shape with
    | Var v -> Fmt.pf ppf "%a 's%d" Solver.pp_var rho.q v.id
    | Int -> Fmt.pf ppf "%a int" Solver.pp_var rho.q
    | Unit -> Fmt.pf ppf "%a unit" Solver.pp_var rho.q
    | Fun (a, r) -> Fmt.pf ppf "%a (%a -> %a)" Solver.pp_var rho.q go a go r
    | Ref c -> Fmt.pf ppf "%a ref(%a)" Solver.pp_var rho.q go c
  in
  go ppf rho
