(** Prebuilt qualifier spaces and the per-qualifier rule hooks used by the
    paper's running examples. Each bundle pairs a {!Typequal.Lattice.Space}
    with the {!Infer.hooks} that give its qualifiers their semantics —
    the user-supplied rules of Section 2.4. *)

module Q = Typequal.Qualifier
module Lattice = Typequal.Lattice
module Elt = Lattice.Elt
module Space = Lattice.Space
module Solver = Typequal.Solver

(** Compose two hook bundles (both run, first one first). *)
let combine (h1 : Infer.hooks) (h2 : Infer.hooks) : Infer.hooks =
  {
    on_assign =
      (fun s v ->
        h1.on_assign s v;
        h2.on_assign s v);
    on_deref =
      (fun s v ->
        h1.on_deref s v;
        h2.on_deref s v);
    on_app =
      (fun s v ->
        h1.on_app s v;
        h2.on_app s v);
    on_if_guard =
      (fun s v ->
        h1.on_if_guard s v;
        h2.on_if_guard s v);
    on_div =
      (fun s v ->
        h1.on_div s v;
        h2.on_div s v);
    on_int =
      (fun s n v ->
        h1.on_int s n v;
        h2.on_int s n v);
    on_binop =
      (fun s op l r res ->
        h1.on_binop s op l r res;
        h2.on_binop s op l r res);
    on_construct =
      (fun s t ->
        h1.on_construct s t;
        h2.on_construct s t);
  }

(* ------------------------------------------------------------------ *)
(* const (Section 2.4)                                                 *)
(* ------------------------------------------------------------------ *)

(** Rule (Assign'): the left-hand side of an assignment must be non-const.
    Requires ["const"] in the space. *)
let const_hooks : Infer.hooks =
  {
    Infer.no_hooks with
    on_assign =
      (fun store q ->
        let sp = Solver.space store in
        Solver.add_leq_vc
          ~reason:"assignment target must be non-const (Assign')" store q
          (Elt.not_name sp "const"));
  }

let const_space = Space.create [ Q.const ]

(* ------------------------------------------------------------------ *)
(* nonzero (Figure 2)                                                  *)
(* ------------------------------------------------------------------ *)

(** A divisor must be nonzero. Requires ["nonzero"] in the space. Note
    that, as in the paper, annotations asserting nonzero-ness are trusted
    (Section 2.3: "we do not attempt to verify that sorted is placed
    correctly — we simply assume it is"). *)
let nonzero_hooks : Infer.hooks =
  {
    Infer.no_hooks with
    on_div =
      (fun store q ->
        let sp = Solver.space store in
        Solver.add_leq_vc ~reason:"divisor must be nonzero" store q
          (Elt.not_name sp "nonzero"));
    on_int =
      (fun store n q ->
        (* Refine (Int): the literal 0 must not claim nonzero. A lower
           bound with the nonzero coordinate absent (its sub-lattice top)
           forces the absence into the least solution. *)
        if n = 0 then
          let sp = Solver.space store in
          let i = Space.find sp "nonzero" in
          let mask = Elt.singleton_mask sp i in
          Solver.add_leq_cv ~mask ~reason:"the literal 0 is not nonzero"
            store
            (Elt.clear sp i (Elt.bottom sp))
            q);
  }

let nonzero_space = Space.create [ Q.nonzero ]

(* ------------------------------------------------------------------ *)
(* binding time: static/dynamic (Sections 1, 2)                        *)
(* ------------------------------------------------------------------ *)

(** Well-formedness: nothing dynamic may appear within a static value —
    e.g. [static (dynamic a -> dynamic b)] is ill-formed. Expressed as a
    masked flow on the [dynamic] coordinate from each child of a
    constructed type to the constructor itself. Requires ["dynamic"]. *)
let binding_time_hooks : Infer.hooks =
  let flow store (child : Qtype.t) (parent : Qtype.t) =
    let sp = Solver.space store in
    let mask = Elt.mask_of_names sp [ "dynamic" ] in
    Solver.add_leq_vv ~mask
      ~reason:"nothing dynamic inside a static value (well-formedness)"
      store child.Qtype.q parent.Qtype.q
  in
  {
    Infer.no_hooks with
    on_construct =
      (fun store t ->
        match Qtype.repr t.Qtype.shape with
        | Qtype.Fun (a, r) ->
            flow store a t;
            flow store r t
        | Qtype.Ref c -> flow store c t
        | _ -> ());
  }

let binding_time_space = Space.create [ Q.dynamic ]

(* ------------------------------------------------------------------ *)
(* taint tracking (cf. Section 5's information-flow systems)           *)
(* ------------------------------------------------------------------ *)

let taint_space = Space.create [ Q.tainted ]

(** Taint propagates through arithmetic: the result of a binary operation
    carries the taint of both operands (a join, expressed as two flow
    edges). Without this, [x + 0] would launder taint. Sources annotate
    with [@[tainted]]; sinks assert [|[~tainted]]. *)
let taint_hooks : Infer.hooks =
  {
    Infer.no_hooks with
    on_binop =
      (fun store _op l r res ->
        Solver.add_leq_vv ~reason:"left operand taints result" store l res;
        Solver.add_leq_vv ~reason:"right operand taints result" store r res);
  }

(* ------------------------------------------------------------------ *)
(* The paper's Figure 2 lattice: const x dynamic x nonzero             *)
(* ------------------------------------------------------------------ *)

let fig2_space = Space.create [ Q.const; Q.dynamic; Q.nonzero ]

(** Hooks for the combined Figure 2 space: const assignment rule,
    binding-time well-formedness, nonzero division. *)
let fig2_hooks = combine const_hooks (combine binding_time_hooks nonzero_hooks)

(** The space used by most tests: const + nonzero, with their hooks. *)
let cn_space = Space.create [ Q.const; Q.nonzero ]
let cn_hooks = combine const_hooks nonzero_hooks

(* ------------------------------------------------------------------ *)
(* nonnull (lclint, Section 1)                                         *)
(* ------------------------------------------------------------------ *)

let nonnull_space = Space.create [ Q.nonnull ]

(** lclint's [nonnull] (Section 1): dereferencing requires the pointer to
    be non-null. [nonnull] is negative, so freshly created refs carry it
    (a [ref e] is never null); possibly-null values are introduced by
    annotation ([@[~nonnull]]), e.g. on a lookup function's result, and
    must be re-asserted (after a test) before dereference. *)
let nonnull_hooks : Infer.hooks =
  let check store q ~reason =
    let sp = Solver.space store in
    Solver.add_leq_vc ~reason store q (Elt.not_name sp "nonnull")
  in
  {
    Infer.no_hooks with
    on_deref =
      (fun store q -> check store q ~reason:"dereference requires nonnull");
    on_assign =
      (fun store q ->
        check store q ~reason:"assignment through a pointer requires nonnull");
  }
