(** Abstract syntax of the paper's example language (Figure 1, extended with
    updateable references and unit in Section 2.4, and with qualifier
    annotations [l e] and assertions [e|l] from Section 2.2).

    We additionally provide integer primitives (arithmetic, comparison,
    division) so that qualifiers like [nonzero] have an operation whose
    semantics they guard; the paper's language has no primitives, and these
    are a conservative extension (each is a delta-rule on integers). *)

type binop = Add | Sub | Mul | Div | Lt | Eq

(** A qualifier specification, as written in source: a list of
    [(name, present)] pairs. [(q, true)] is written [q]; [(q, false)] is
    written [~q]. Annotations interpret the spec {e upward from bottom}
    (listed coordinates overridden, others at their sub-lattice bottom);
    assertion bounds interpret it {e downward from top}. This follows the
    paper: an annotation constant is "at least" the listed qualifiers and an
    assertion bound pins only the qualifiers the programmer mentions. *)
type qspec = (string * bool) list

type expr =
  | Var of string
  | Int of int
  | Unit
  | Lam of string * expr
  | App of expr * expr
  | If of expr * expr * expr  (** 0 is false, non-zero true (C convention) *)
  | Let of string * expr * expr
  | Ref of expr
  | Deref of expr
  | Assign of expr * expr
  | Annot of qspec * expr  (** [l e]: raise the top-level qualifier to [l] *)
  | Assert of expr * qspec  (** [e|l]: check the top-level qualifier <= [l] *)
  | Binop of binop * expr * expr

(** [is_value e] per the paper's syntactic value class [v] (Figure 1):
    variables, integers, abstractions, unit — and, following the runtime
    value form of Figure 5, a qualifier-annotated value. Only syntactic
    values may be generalized by (Letv) (the value restriction,
    Section 3.2). *)
let rec is_value = function
  | Var _ | Int _ | Unit | Lam _ -> true
  | Annot (_, e) -> is_value e
  | _ -> false

let pp_binop ppf op =
  Fmt.string ppf
    (match op with
    | Add -> "+"
    | Sub -> "-"
    | Mul -> "*"
    | Div -> "/"
    | Lt -> "<"
    | Eq -> "==")

let pp_qspec ppf (spec : qspec) =
  let item ppf (n, b) = Fmt.pf ppf "%s%s" (if b then "" else "~") n in
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:sp item) spec

let rec pp ppf = function
  | Var x -> Fmt.string ppf x
  | Int n -> Fmt.int ppf n
  | Unit -> Fmt.string ppf "()"
  | Lam (x, e) -> Fmt.pf ppf "(fun %s -> %a)" x pp e
  | App (e1, e2) -> Fmt.pf ppf "(%a %a)" pp e1 pp e2
  | If (e1, e2, e3) ->
      Fmt.pf ppf "(if %a then %a else %a)" pp e1 pp e2 pp e3
  | Let (x, e1, e2) -> Fmt.pf ppf "(let %s = %a in %a)" x pp e1 pp e2
  | Ref e -> Fmt.pf ppf "(ref %a)" pp e
  | Deref e -> Fmt.pf ppf "(!%a)" pp e
  | Assign (e1, e2) -> Fmt.pf ppf "(%a := %a)" pp e1 pp e2
  | Annot (spec, e) -> Fmt.pf ppf "(@@%a %a)" pp_qspec spec pp e
  | Assert (e, spec) -> Fmt.pf ppf "(%a |%a)" pp e pp_qspec spec
  | Binop (op, e1, e2) ->
      Fmt.pf ppf "(%a %a %a)" pp e1 pp_binop op pp e2

let to_string e = Fmt.str "%a" pp e

(** [strip e]: remove every qualifier annotation and assertion, yielding a
    term of the unqualified language (the [strip] translation of
    Section 2.3, used by Observation 1). *)
let rec strip = function
  | (Var _ | Int _ | Unit) as e -> e
  | Lam (x, e) -> Lam (x, strip e)
  | App (e1, e2) -> App (strip e1, strip e2)
  | If (e1, e2, e3) -> If (strip e1, strip e2, strip e3)
  | Let (x, e1, e2) -> Let (x, strip e1, strip e2)
  | Ref e -> Ref (strip e)
  | Deref e -> Deref (strip e)
  | Assign (e1, e2) -> Assign (strip e1, strip e2)
  | Annot (_, e) -> strip e
  | Assert (e, _) -> strip e
  | Binop (op, e1, e2) -> Binop (op, strip e1, strip e2)

(** Size of a term (number of AST nodes), used by tests and benches. *)
let rec size = function
  | Var _ | Int _ | Unit -> 1
  | Lam (_, e) | Ref e | Deref e | Annot (_, e) | Assert (e, _) ->
      1 + size e
  | App (e1, e2) | Assign (e1, e2) | Binop (_, e1, e2) | Let (_, e1, e2) ->
      1 + size e1 + size e2
  | If (e1, e2, e3) -> 1 + size e1 + size e2 + size e3

(** Free program variables. *)
let free_vars e =
  let rec go bound acc = function
    | Var x -> if List.mem x bound then acc else x :: acc
    | Int _ | Unit -> acc
    | Lam (x, e) -> go (x :: bound) acc e
    | App (e1, e2) | Assign (e1, e2) | Binop (_, e1, e2) ->
        go bound (go bound acc e1) e2
    | If (e1, e2, e3) -> go bound (go bound (go bound acc e1) e2) e3
    | Let (x, e1, e2) -> go (x :: bound) (go bound acc e1) e2
    | Ref e | Deref e | Annot (_, e) | Assert (e, _) -> go bound acc e
  in
  List.sort_uniq String.compare (go [] [] e)
