(** Concrete syntax for the example language.

    The surface syntax follows the paper (Figure 1 plus the annotation and
    assertion forms of Section 2.2), with ML-flavoured keywords:

    {v
    let x = ref 1 in
    let y = @[const] ref 1 in      (* annotation: l e     *)
    (!x) |[nonzero];               (* assertion: e|l      *)
    x := !x + 1
    v}

    - [@[q1 q2 ~q3] e] annotates [e]: listed qualifiers are overridden on
      top of bottom ([~q] marks a qualifier as absent).
    - [e |[spec]] asserts that [e]'s top-level qualifier is below the bound
      built by overriding top with the spec; [e |[~const]] is the paper's
      [e|¬const], and [e |[nonzero]] requires nonzero.
    - The paper's closing keywords [fi] and [ni] are accepted and ignored,
      so examples can be transcribed verbatim.
    - [e1; e2] abbreviates [let _ = e1 in e2].
    - Comments are [(* ... *)]. *)

exception Parse_error of string

type token =
  | TLET
  | TIN
  | TFUN
  | TIF
  | TTHEN
  | TELSE
  | TREF
  | TINT of int
  | TIDENT of string
  | TARROW
  | TASSIGN
  | TEQ  (* = *)
  | TEQEQ  (* == *)
  | TLT
  | TPLUS
  | TMINUS
  | TSTAR
  | TSLASH
  | TLPAR
  | TRPAR
  | TBANG
  | TAT
  | TLBRACK
  | TRBRACK
  | TTILDE
  | TPIPE
  | TSEMI
  | TEOF

let pp_token ppf = function
  | TLET -> Fmt.string ppf "let"
  | TIN -> Fmt.string ppf "in"
  | TFUN -> Fmt.string ppf "fun"
  | TIF -> Fmt.string ppf "if"
  | TTHEN -> Fmt.string ppf "then"
  | TELSE -> Fmt.string ppf "else"
  | TREF -> Fmt.string ppf "ref"
  | TINT n -> Fmt.int ppf n
  | TIDENT x -> Fmt.string ppf x
  | TARROW -> Fmt.string ppf "->"
  | TASSIGN -> Fmt.string ppf ":="
  | TEQ -> Fmt.string ppf "="
  | TEQEQ -> Fmt.string ppf "=="
  | TLT -> Fmt.string ppf "<"
  | TPLUS -> Fmt.string ppf "+"
  | TMINUS -> Fmt.string ppf "-"
  | TSTAR -> Fmt.string ppf "*"
  | TSLASH -> Fmt.string ppf "/"
  | TLPAR -> Fmt.string ppf "("
  | TRPAR -> Fmt.string ppf ")"
  | TBANG -> Fmt.string ppf "!"
  | TAT -> Fmt.string ppf "@"
  | TLBRACK -> Fmt.string ppf "["
  | TRBRACK -> Fmt.string ppf "]"
  | TTILDE -> Fmt.string ppf "~"
  | TPIPE -> Fmt.string ppf "|"
  | TSEMI -> Fmt.string ppf ";"
  | TEOF -> Fmt.string ppf "<eof>"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let tokenize (s : string) : token list =
  let n = String.length s in
  let rec skip i =
    if i >= n then i
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> skip (i + 1)
      | '(' when i + 1 < n && s.[i + 1] = '*' -> skip_comment (i + 2) 1
      | _ -> i
  and skip_comment i depth =
    if i >= n then raise (Parse_error "unterminated comment")
    else if i + 1 < n && s.[i] = '(' && s.[i + 1] = '*' then
      skip_comment (i + 2) (depth + 1)
    else if i + 1 < n && s.[i] = '*' && s.[i + 1] = ')' then
      if depth = 1 then skip (i + 2) else skip_comment (i + 2) (depth - 1)
    else skip_comment (i + 1) depth
  in
  let rec go i acc =
    let i = skip i in
    if i >= n then List.rev (TEOF :: acc)
    else
      let c = s.[i] in
      if c >= '0' && c <= '9' then begin
        let j = ref i in
        while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
          incr j
        done;
        go !j (TINT (int_of_string (String.sub s i (!j - i))) :: acc)
      end
      else if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char s.[!j] do
          incr j
        done;
        let word = String.sub s i (!j - i) in
        let tok =
          match word with
          | "let" -> Some TLET
          | "in" -> Some TIN
          | "fun" -> Some TFUN
          | "if" -> Some TIF
          | "then" -> Some TTHEN
          | "else" -> Some TELSE
          | "ref" -> Some TREF
          | "fi" | "ni" -> None (* paper-style closers, ignored *)
          | w -> Some (TIDENT w)
        in
        go !j (match tok with Some t -> t :: acc | None -> acc)
      end
      else
        let two t j = go j (t :: acc) in
        match c with
        | '-' when i + 1 < n && s.[i + 1] = '>' -> two TARROW (i + 2)
        | ':' when i + 1 < n && s.[i + 1] = '=' -> two TASSIGN (i + 2)
        | '=' when i + 1 < n && s.[i + 1] = '=' -> two TEQEQ (i + 2)
        | '=' -> two TEQ (i + 1)
        | '<' -> two TLT (i + 1)
        | '+' -> two TPLUS (i + 1)
        | '-' -> two TMINUS (i + 1)
        | '*' -> two TSTAR (i + 1)
        | '/' -> two TSLASH (i + 1)
        | '(' -> two TLPAR (i + 1)
        | ')' -> two TRPAR (i + 1)
        | '!' -> two TBANG (i + 1)
        | '@' -> two TAT (i + 1)
        | '[' -> two TLBRACK (i + 1)
        | ']' -> two TRBRACK (i + 1)
        | '~' -> two TTILDE (i + 1)
        | '|' -> two TPIPE (i + 1)
        | ';' -> two TSEMI (i + 1)
        | c -> raise (Parse_error (Fmt.str "unexpected character %C" c))
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Recursive-descent parser                                            *)
(* ------------------------------------------------------------------ *)

type stream = { mutable toks : token list }

let peek st = match st.toks with [] -> TEOF | t :: _ -> t

let next st =
  match st.toks with
  | [] -> TEOF
  | t :: rest ->
      st.toks <- rest;
      t

let expect st t =
  let got = next st in
  if got <> t then
    raise (Parse_error (Fmt.str "expected %a, got %a" pp_token t pp_token got))

let ident st =
  match next st with
  | TIDENT x -> x
  | t -> raise (Parse_error (Fmt.str "expected identifier, got %a" pp_token t))

(* spec := (name | ~name)* *)
let parse_spec st : Ast.qspec =
  let rec go acc =
    match peek st with
    | TIDENT x ->
        ignore (next st);
        go ((x, true) :: acc)
    | TTILDE ->
        ignore (next st);
        let x = ident st in
        go ((x, false) :: acc)
    | _ -> List.rev acc
  in
  go []

let rec parse_seq st : Ast.expr =
  let e = parse_stmt st in
  match peek st with
  | TSEMI ->
      ignore (next st);
      let rest = parse_seq st in
      Let ("_", e, rest)
  | _ -> e

and parse_stmt st : Ast.expr =
  match peek st with
  | TLET ->
      ignore (next st);
      let x = ident st in
      expect st TEQ;
      let e1 = parse_stmt st in
      expect st TIN;
      let e2 = parse_seq st in
      Let (x, e1, e2)
  | TFUN ->
      ignore (next st);
      let x = ident st in
      expect st TARROW;
      let e = parse_seq st in
      Lam (x, e)
  | TIF ->
      ignore (next st);
      let g = parse_stmt st in
      expect st TTHEN;
      let e2 = parse_stmt st in
      expect st TELSE;
      let e3 = parse_stmt st in
      If (g, e2, e3)
  | _ -> parse_assign st

and parse_assign st =
  let lhs = parse_cmp st in
  match peek st with
  | TASSIGN ->
      ignore (next st);
      let rhs = parse_assign st in
      Assign (lhs, rhs)
  | _ -> lhs

and parse_cmp st =
  let e = parse_add st in
  match peek st with
  | TLT ->
      ignore (next st);
      Binop (Lt, e, parse_add st)
  | TEQEQ ->
      ignore (next st);
      Binop (Eq, e, parse_add st)
  | _ -> e

and parse_add st =
  let rec go acc =
    match peek st with
    | TPLUS ->
        ignore (next st);
        go (Ast.Binop (Add, acc, parse_mul st))
    | TMINUS ->
        ignore (next st);
        go (Ast.Binop (Sub, acc, parse_mul st))
    | _ -> acc
  in
  go (parse_mul st)

and parse_mul st =
  let rec go acc =
    match peek st with
    | TSTAR ->
        ignore (next st);
        go (Ast.Binop (Mul, acc, parse_annot st))
    | TSLASH ->
        ignore (next st);
        go (Ast.Binop (Div, acc, parse_annot st))
    | _ -> acc
  in
  go (parse_annot st)

and parse_annot st =
  match peek st with
  | TAT ->
      ignore (next st);
      expect st TLBRACK;
      let spec = parse_spec st in
      expect st TRBRACK;
      Annot (spec, parse_annot st)
  | _ -> parse_app st

and parse_app st =
  let head = parse_unary st in
  let rec args acc =
    match peek st with
    | TINT _ | TIDENT _ | TLPAR | TBANG | TREF ->
        let a = parse_unary st in
        args (Ast.App (acc, a))
    | _ -> acc
  in
  let e = args head in
  (* postfix assertions bind to the whole application *)
  let rec asserts acc =
    match st.toks with
    | TPIPE :: TLBRACK :: rest ->
        st.toks <- rest;
        let spec = parse_spec st in
        expect st TRBRACK;
        asserts (Ast.Assert (acc, spec))
    | _ -> acc
  in
  asserts e

and parse_unary st =
  match peek st with
  | TBANG ->
      ignore (next st);
      Deref (parse_unary st)
  | TREF ->
      ignore (next st);
      Ref (parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  match next st with
  | TINT n -> Int n
  | TMINUS -> (
      match next st with
      | TINT n -> Int (-n)
      | t ->
          raise (Parse_error (Fmt.str "expected integer after -, got %a" pp_token t)))
  | TIDENT x -> Var x
  | TLPAR -> (
      match peek st with
      | TRPAR ->
          ignore (next st);
          Unit
      | _ ->
          let e = parse_seq st in
          expect st TRPAR;
          e)
  | t -> raise (Parse_error (Fmt.str "unexpected token %a" pp_token t))

(** Parse a complete program. *)
let parse (s : string) : Ast.expr =
  let st = { toks = tokenize s } in
  let e = parse_seq st in
  expect st TEOF;
  e

let parse_result s =
  match parse s with e -> Ok e | exception Parse_error m -> Error m
