(** Small-step operational semantics of the example language (Figure 5).

    The semantics assumes all values are qualified: a semantic value is a
    ground qualifier constant paired with a syntactic value [(l v)]. A
    source program is compiled to this form by inserting bottom annotations
    around every syntactic value ("a program can always be rewritten in
    this form", Section 3.3). Qualifier annotations and assertions are
    checked {e dynamically} here: [(l2 v)|l1 -> l2 v] only when [l2 <= l1],
    and likewise for annotation collapse. A well-typed program never gets
    stuck on these checks — the subject-reduction property the tests
    exercise. *)

module Elt = Typequal.Lattice.Elt
module Space = Typequal.Lattice.Space

type loc = int

(** Runtime expressions: source expressions with elaborated (ground)
    qualifier constants and store locations. *)
type rexpr =
  | RVar of string
  | RInt of int
  | RUnit
  | RLam of string * rexpr
  | RLoc of loc
  | RApp of rexpr * rexpr
  | RIf of rexpr * rexpr * rexpr
  | RLet of string * rexpr * rexpr
  | RRef of rexpr
  | RDeref of rexpr
  | RAssign of rexpr * rexpr
  | RAnnot of Elt.t * rexpr  (** [l e] *)
  | RAssert of rexpr * Elt.t  (** [e|l] *)
  | RBinop of Ast.binop * rexpr * rexpr

type store = (loc, rexpr) Hashtbl.t
(** maps locations to semantic values (always [RAnnot (l, v)]) *)

type stuck_reason =
  | Assertion_failure of Elt.t * Elt.t  (** value qualifier, bound *)
  | Annotation_failure of Elt.t * Elt.t
  | Division_by_zero
  | Ill_formed of string  (** e.g. applying a non-function *)

exception Stuck of stuck_reason

let pp_stuck sp ppf = function
  | Assertion_failure (l2, l1) ->
      Fmt.pf ppf "assertion failed: %a is not <= %a" (Elt.pp_full sp) l2
        (Elt.pp_full sp) l1
  | Annotation_failure (l2, l1) ->
      Fmt.pf ppf "annotation failed: %a is not <= %a" (Elt.pp_full sp) l2
        (Elt.pp_full sp) l1
  | Division_by_zero -> Fmt.string ppf "division by zero"
  | Ill_formed msg -> Fmt.pf ppf "stuck: %s" msg

(* ------------------------------------------------------------------ *)
(* Compilation: elaborate qualifier specs, bottom-annotate values      *)
(* ------------------------------------------------------------------ *)

let rec compile sp (e : Ast.expr) : rexpr =
  let bot = Elt.bottom sp in
  match e with
  | Var x -> RVar x (* variables are replaced by annotated values *)
  | Int n -> RAnnot (bot, RInt n)
  | Unit -> RAnnot (bot, RUnit)
  | Lam (x, e) -> RAnnot (bot, RLam (x, compile sp e))
  | App (e1, e2) -> RApp (compile sp e1, compile sp e2)
  | If (e1, e2, e3) -> RIf (compile sp e1, compile sp e2, compile sp e3)
  | Let (x, e1, e2) -> RLet (x, compile sp e1, compile sp e2)
  | Ref e -> RAnnot (bot, RRef (compile sp e))
  | Deref e -> RDeref (compile sp e)
  | Assign (e1, e2) -> RAssign (compile sp e1, compile sp e2)
  | Annot (spec, e) -> RAnnot (Infer.annot_elt sp spec, compile sp e)
  | Assert (e, spec) -> RAssert (compile sp e, Infer.assert_elt sp spec)
  | Binop (op, e1, e2) -> RBinop (op, compile sp e1, compile sp e2)

(* A semantic value is an annotated syntactic value. *)
let is_syntactic_value = function
  | RInt _ | RUnit | RLam _ | RLoc _ -> true
  | _ -> false

let is_value = function
  | RAnnot (_, v) -> is_syntactic_value v
  | _ -> false

(* Capture-avoiding substitution is unnecessary: substituted values are
   closed (we evaluate closed programs, and the reduction strategy only
   substitutes values that are themselves closed at substitution time);
   we still rename nothing and rely on shadowing semantics matching the
   paper's implicit convention. *)
let rec subst x v e =
  match e with
  | RVar y -> if String.equal x y then v else e
  | RInt _ | RUnit | RLoc _ -> e
  | RLam (y, body) -> if String.equal x y then e else RLam (y, subst x v body)
  | RApp (e1, e2) -> RApp (subst x v e1, subst x v e2)
  | RIf (e1, e2, e3) -> RIf (subst x v e1, subst x v e2, subst x v e3)
  | RLet (y, e1, e2) ->
      RLet (y, subst x v e1, if String.equal x y then e2 else subst x v e2)
  | RRef e -> RRef (subst x v e)
  | RDeref e -> RDeref (subst x v e)
  | RAssign (e1, e2) -> RAssign (subst x v e1, subst x v e2)
  | RAnnot (l, e) -> RAnnot (l, subst x v e)
  | RAssert (e, l) -> RAssert (subst x v e, l)
  | RBinop (op, e1, e2) -> RBinop (op, subst x v e1, subst x v e2)

(* ------------------------------------------------------------------ *)
(* One-step reduction (Figure 5, with contexts folded in recursively)  *)
(* ------------------------------------------------------------------ *)

type state = { sp : Space.t; store : store; mutable next_loc : loc }

let alloc st v =
  let a = st.next_loc in
  st.next_loc <- a + 1;
  Hashtbl.replace st.store a v;
  RLoc a

let delta op n1 n2 =
  match op with
  | Ast.Add -> n1 + n2
  | Ast.Sub -> n1 - n2
  | Ast.Mul -> n1 * n2
  | Ast.Div -> if n2 = 0 then raise (Stuck Division_by_zero) else n1 / n2
  | Ast.Lt -> if n1 < n2 then 1 else 0
  | Ast.Eq -> if n1 = n2 then 1 else 0

(** One reduction step. Raises {!Stuck} when no rule applies and the
    expression is not a value. *)
let rec step st (e : rexpr) : rexpr =
  let sp = st.sp in
  match e with
  | RAnnot (l1, RAnnot (l2, v)) when is_syntactic_value v ->
      (* annotation collapse: l1 (l2 v) -> l1 v when l2 <= l1 *)
      if Elt.leq sp l2 l1 then RAnnot (l1, v)
      else raise (Stuck (Annotation_failure (l2, l1)))
  | RAnnot (l, RRef e) ->
      (* context Q ref R, then l ref v -> store alloc, l a *)
      if is_value e then RAnnot (l, alloc st e) else RAnnot (l, RRef (step st e))
  | RAnnot (l, e) when not (is_syntactic_value e) -> RAnnot (l, step st e)
  | RAssert (RAnnot (l2, v), l1) when is_syntactic_value v ->
      if Elt.leq sp l2 l1 then RAnnot (l2, v)
      else raise (Stuck (Assertion_failure (l2, l1)))
  | RAssert (e, l1) -> RAssert (step st e, l1)
  | RApp (f, arg) when is_value f -> (
      if not (is_value arg) then RApp (f, step st arg)
      else
        match f with
        | RAnnot (_, RLam (x, body)) -> subst x arg body
        | _ -> raise (Stuck (Ill_formed "application of a non-function")))
  | RApp (f, arg) -> RApp (step st f, arg)
  | RIf (g, e2, e3) when is_value g -> (
      match g with
      | RAnnot (_, RInt n) -> if n <> 0 then e2 else e3
      | _ -> raise (Stuck (Ill_formed "if guard is not an integer")))
  | RIf (g, e2, e3) -> RIf (step st g, e2, e3)
  | RLet (x, e1, e2) when is_value e1 -> subst x e1 e2
  | RLet (x, e1, e2) -> RLet (x, step st e1, e2)
  | RDeref v when is_value v -> (
      match v with
      | RAnnot (_, RLoc a) -> (
          match Hashtbl.find_opt st.store a with
          | Some sv -> sv
          | None -> raise (Stuck (Ill_formed "dangling location")))
      | _ -> raise (Stuck (Ill_formed "dereference of a non-location")))
  | RDeref e -> RDeref (step st e)
  | RAssign (lhs, rhs) when is_value lhs -> (
      if not (is_value rhs) then RAssign (lhs, step st rhs)
      else
        match lhs with
        | RAnnot (_, RLoc a) ->
            if not (Hashtbl.mem st.store a) then
              raise (Stuck (Ill_formed "dangling location"))
            else begin
              Hashtbl.replace st.store a rhs;
              RAnnot (Elt.bottom sp, RUnit)
            end
        | _ -> raise (Stuck (Ill_formed "assignment to a non-location")))
  | RAssign (lhs, rhs) -> RAssign (step st lhs, rhs)
  | RBinop (op, e1, e2) when is_value e1 -> (
      if not (is_value e2) then RBinop (op, e1, step st e2)
      else
        match (e1, e2) with
        | RAnnot (_, RInt n1), RAnnot (_, RInt n2) ->
            RAnnot (Elt.bottom sp, RInt (delta op n1 n2))
        | _ -> raise (Stuck (Ill_formed "arithmetic on non-integers")))
  | RBinop (op, e1, e2) -> RBinop (op, step st e1, e2)
  | RVar x -> raise (Stuck (Ill_formed ("unbound variable " ^ x)))
  | RAnnot _ -> raise (Stuck (Ill_formed "value does not reduce"))
  | RInt _ | RUnit | RLam _ | RLoc _ | RRef _ ->
      (* compile always wraps values and ref in an annotation *)
      raise (Stuck (Ill_formed "unannotated value (internal)"))

type outcome =
  | Value of Elt.t * rexpr  (** final qualifier constant and syntactic value *)
  | Stuck_at of stuck_reason
  | Out_of_fuel

(** Run to completion (or until [fuel] steps have been taken). *)
let run ?(fuel = 100_000) sp (e : Ast.expr) : outcome =
  let st = { sp; store = Hashtbl.create 16; next_loc = 0 } in
  let rec loop fuel e =
    if is_value e then
      match e with
      | RAnnot (l, v) -> Value (l, v)
      | _ -> assert false
    else if fuel = 0 then Out_of_fuel
    else
      match step st e with
      | e' -> loop (fuel - 1) e'
      | exception Stuck r -> Stuck_at r
  in
  loop fuel (compile sp e)

(** Run with access to the whole trace, for subject-reduction tests. *)
let trace ?(fuel = 10_000) sp (e : Ast.expr) : rexpr list * outcome =
  let st = { sp; store = Hashtbl.create 16; next_loc = 0 } in
  let acc = ref [] in
  let rec loop fuel e =
    acc := e :: !acc;
    if is_value e then
      match e with RAnnot (l, v) -> Value (l, v) | _ -> assert false
    else if fuel = 0 then Out_of_fuel
    else
      match step st e with
      | e' -> loop (fuel - 1) e'
      | exception Stuck r -> Stuck_at r
  in
  let out = loop fuel (compile sp e) in
  (List.rev !acc, out)

let pp_outcome sp ppf = function
  | Value (l, RInt n) -> Fmt.pf ppf "%a %d" (Elt.pp sp) l n
  | Value (l, RUnit) -> Fmt.pf ppf "%a ()" (Elt.pp sp) l
  | Value (l, RLam _) -> Fmt.pf ppf "%a <fun>" (Elt.pp sp) l
  | Value (l, RLoc a) -> Fmt.pf ppf "%a <loc %d>" (Elt.pp sp) l a
  | Value _ -> Fmt.string ppf "<value>"
  | Stuck_at r -> pp_stuck sp ppf r
  | Out_of_fuel -> Fmt.string ppf "<out of fuel>"
