(** Standard (unqualified) types and the standard type system of the
    example language: the simply-typed lambda calculus with integers, unit
    and ML-style references. This is the system the qualified system of
    {!Infer} refines; Observation 1 of the paper relates the two, and the
    property tests check it. *)

type t =
  | SVar of tv
  | SInt
  | SUnit
  | SFun of t * t
  | SRef of t

and tv = { id : int; mutable link : t option }

let counter = ref 0

let fresh_var () =
  incr counter;
  SVar { id = !counter; link = None }

let rec repr = function
  | SVar ({ link = Some t; _ } as v) ->
      let t' = repr t in
      v.link <- Some t';
      t'
  | t -> t

exception Type_error of string

let rec occurs v t =
  match repr t with
  | SVar v' -> v == v'
  | SInt | SUnit -> false
  | SFun (a, b) -> occurs v a || occurs v b
  | SRef a -> occurs v a

let rec unify t1 t2 =
  let t1 = repr t1 and t2 = repr t2 in
  match (t1, t2) with
  | SVar v1, SVar v2 when v1 == v2 -> ()
  | SVar v, t | t, SVar v ->
      if occurs v t then raise (Type_error "occurs check (recursive type)");
      v.link <- Some t
  | SInt, SInt | SUnit, SUnit -> ()
  | SFun (a1, r1), SFun (a2, r2) ->
      unify a1 a2;
      unify r1 r2
  | SRef a1, SRef a2 -> unify a1 a2
  | _ ->
      raise
        (Type_error
           (Fmt.str "cannot unify %a with %a" pp_hum t1 pp_hum t2))

and pp_hum ppf t =
  match repr t with
  | SVar v -> Fmt.pf ppf "'a%d" v.id
  | SInt -> Fmt.string ppf "int"
  | SUnit -> Fmt.string ppf "unit"
  | SFun (a, b) -> Fmt.pf ppf "(%a -> %a)" pp_hum a pp_hum b
  | SRef a -> Fmt.pf ppf "ref(%a)" pp_hum a

let pp = pp_hum

(** Structural equality up to resolved links (variables by identity). *)
let rec equal t1 t2 =
  match (repr t1, repr t2) with
  | SVar v1, SVar v2 -> v1 == v2
  | SInt, SInt | SUnit, SUnit -> true
  | SFun (a1, r1), SFun (a2, r2) -> equal a1 a2 && equal r1 r2
  | SRef a1, SRef a2 -> equal a1 a2
  | _ -> false

(** Standard type inference for the simply-typed system. Qualifier
    annotations and assertions are transparent (typing [e] is typing
    [strip e]). Raises {!Type_error} on failure. *)
let rec infer env (e : Ast.expr) : t =
  match e with
  | Var x -> (
      match List.assoc_opt x env with
      | Some t -> t
      | None -> raise (Type_error ("unbound variable " ^ x)))
  | Int _ -> SInt
  | Unit -> SUnit
  | Lam (x, body) ->
      let a = fresh_var () in
      let r = infer ((x, a) :: env) body in
      SFun (a, r)
  | App (e1, e2) ->
      let t1 = infer env e1 in
      let t2 = infer env e2 in
      let r = fresh_var () in
      unify t1 (SFun (t2, r));
      r
  | If (e1, e2, e3) ->
      unify (infer env e1) SInt;
      let t2 = infer env e2 in
      let t3 = infer env e3 in
      unify t2 t3;
      t2
  | Let (x, e1, e2) ->
      let t1 = infer env e1 in
      infer ((x, t1) :: env) e2
  | Ref e ->
      let t = infer env e in
      SRef t
  | Deref e ->
      let t = infer env e in
      let c = fresh_var () in
      unify t (SRef c);
      c
  | Assign (e1, e2) ->
      let t1 = infer env e1 in
      let c = fresh_var () in
      unify t1 (SRef c);
      unify (infer env e2) c;
      SUnit
  | Annot (_, e) | Assert (e, _) -> infer env e
  | Binop (op, e1, e2) ->
      unify (infer env e1) SInt;
      unify (infer env e2) SInt;
      ignore op;
      SInt

let infer_top e = infer [] e

let typable e =
  match infer_top e with _ -> true | exception Type_error _ -> false
