lib/lambda/qtype.ml: Fmt Hashtbl Stype Typequal
