lib/lambda/rules.ml: Infer Qtype Typequal
