lib/lambda/parse.ml: Ast Fmt List String
