lib/lambda/ast.ml: Fmt List String
