lib/lambda/stype.ml: Ast Fmt List
