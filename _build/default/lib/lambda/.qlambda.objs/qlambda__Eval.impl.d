lib/lambda/eval.ml: Ast Fmt Hashtbl Infer List String Typequal
