lib/lambda/infer.ml: Ast Hashtbl List Qtype Stype Typequal
