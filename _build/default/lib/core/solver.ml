(** Atomic qualifier-constraint solver (Sections 3.1–3.2 of the paper).

    After decomposing subtype constraints on qualified types structurally,
    qualifier inference is left with {e atomic} constraints over the
    qualifier lattice [L]:

    - [kappa <= L] and [L <= kappa] (variable/constant bounds),
    - [kappa1 <= kappa2] (variable/variable edges),
    - [L1 <= L2] (ground, checked immediately).

    This is an atomic subtyping system, solvable in linear time for a fixed
    set of qualifiers (Henglein–Rehof); we use worklist-based join
    propagation for the least solution and meet propagation over reversed
    edges for the greatest solution. The solver also supports {e masked}
    constraints that relate only a subset of the lattice coordinates; these
    express per-qualifier side conditions such as the binding-time
    well-formedness rule ("nothing dynamic inside a static value") without
    touching the other qualifiers.

    The pair (least, greatest) solution classifies every variable per
    Section 4.4: a coordinate is {e forced up} (e.g. must-const) when the
    least solution already has it, {e forced down} (must-not-const) when
    even the greatest solution lacks it, and {e unconstrained} otherwise.

    Polymorphism support: constraint sets can be captured while they are
    generated ({!recording}) and later re-instantiated under a renaming of
    their local variables ({!instantiate}), implementing the constrained
    type schemes [forall k. rho \ C] of Section 3.2 (with the existential
    binding of purely-local variables realized by renaming {e all} scheme
    locals at each instantiation). *)

module Elt = Lattice.Elt
module Space = Lattice.Space

type reason = string option

type var = {
  id : int;
  vname : string;
  mutable lo_bound : Elt.t;  (* join of constant lower bounds (embedded) *)
  mutable hi_bound : Elt.t;  (* meet of constant upper bounds (embedded) *)
  mutable lo : Elt.t;        (* least solution, valid after [solve] *)
  mutable hi : Elt.t;        (* greatest solution, valid after [solve] *)
  mutable succs : (var * int * reason) list;  (* v <= succ on mask *)
  mutable preds : (var * int * reason) list;
  mutable lo_reasons : (Elt.t * int * reason) list;  (* provenance *)
  mutable hi_reasons : (Elt.t * int * reason) list;
}

type atom =
  | Avc of var * Elt.t * int * reason  (* var <= const on mask *)
  | Acv of Elt.t * var * int * reason  (* const <= var on mask *)
  | Avv of var * var * int * reason    (* var <= var on mask *)

type error = {
  err_var : var option;
  err_msg : string;
}

type t = {
  space : Space.t;
  mutable vars : var list;  (* in reverse creation order *)
  mutable nvars : int;
  mutable ground_errors : error list;
  mutable recorders : atom list ref list;
  mutable solved : bool;
}

let create space =
  {
    space;
    vars = [];
    nvars = 0;
    ground_errors = [];
    recorders = [];
    solved = false;
  }

let space t = t.space
let num_vars t = t.nvars

let fresh ?(name = "q") t =
  let sp = t.space in
  let v =
    {
      id = t.nvars;
      vname = name;
      lo_bound = Elt.bottom sp;
      hi_bound = Elt.top sp;
      lo = Elt.bottom sp;
      hi = Elt.top sp;
      succs = [];
      preds = [];
      lo_reasons = [];
      hi_reasons = [];
    }
  in
  t.nvars <- t.nvars + 1;
  t.vars <- v :: t.vars;
  t.solved <- false;
  v

let var_id v = v.id
let var_name v = v.vname
let pp_var ppf v = Fmt.pf ppf "%s#%d" v.vname v.id

let record t atom = List.iter (fun r -> r := atom :: !r) t.recorders

(* var <= const, restricted to the coordinates in [mask]. *)
let add_leq_vc ?reason ?mask t v c =
  let mask = Option.value mask ~default:(Elt.full_mask t.space) in
  t.solved <- false;
  record t (Avc (v, c, mask, reason));
  v.hi_bound <- Elt.meet t.space v.hi_bound (Elt.embed_top t.space ~mask c);
  v.hi_reasons <- (c, mask, reason) :: v.hi_reasons

(* const <= var, restricted to [mask]. *)
let add_leq_cv ?reason ?mask t c v =
  let mask = Option.value mask ~default:(Elt.full_mask t.space) in
  t.solved <- false;
  record t (Acv (c, v, mask, reason));
  v.lo_bound <- Elt.join t.space v.lo_bound (Elt.embed_bottom t.space ~mask c);
  v.lo_reasons <- (c, mask, reason) :: v.lo_reasons

(* var <= var, restricted to [mask]. *)
let add_leq_vv ?reason ?mask t a b =
  if a != b then begin
    let mask = Option.value mask ~default:(Elt.full_mask t.space) in
    t.solved <- false;
    record t (Avv (a, b, mask, reason));
    a.succs <- (b, mask, reason) :: a.succs;
    b.preds <- (a, mask, reason) :: b.preds
  end

(* Ground constraint const <= const: checked immediately (mask-restricted). *)
let add_leq_cc ?reason ?mask t c1 c2 =
  let mask = Option.value mask ~default:(Elt.full_mask t.space) in
  if not (Elt.leq_masked t.space ~mask c1 c2) then
    t.ground_errors <-
      {
        err_var = None;
        err_msg =
          Fmt.str "unsatisfiable ground constraint %a <= %a%a"
            (Elt.pp_full t.space) c1 (Elt.pp_full t.space) c2
            Fmt.(option (any " (" ++ string ++ any ")"))
            reason;
      }
      :: t.ground_errors

let add_eq_vv ?reason ?mask t a b =
  add_leq_vv ?reason ?mask t a b;
  add_leq_vv ?reason ?mask t b a

(* Pin a variable to exactly [c] (used by annotations, whose rule types the
   result as exactly [l tau]). *)
let add_eq_vc ?reason ?mask t v c =
  add_leq_vc ?reason ?mask t v c;
  add_leq_cv ?reason ?mask t c v

(* ------------------------------------------------------------------ *)
(* Solving                                                             *)
(* ------------------------------------------------------------------ *)

(* Least solution: start every variable at the join of its constant lower
   bounds and propagate joins along forward edges until fixpoint. *)
let solve_least t =
  let sp = t.space in
  List.iter (fun v -> v.lo <- v.lo_bound) t.vars;
  let queue = Queue.create () in
  let inq = Hashtbl.create 64 in
  let push v =
    if not (Hashtbl.mem inq v.id) then begin
      Hashtbl.add inq v.id ();
      Queue.push v queue
    end
  in
  List.iter push t.vars;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Hashtbl.remove inq v.id;
    List.iter
      (fun (s, mask, _) ->
        let contrib = Elt.embed_bottom sp ~mask v.lo in
        let lo' = Elt.join sp s.lo contrib in
        if not (Elt.equal lo' s.lo) then begin
          s.lo <- lo';
          push s
        end)
      v.succs
  done

(* Greatest solution: dual — meets along reversed edges. *)
let solve_greatest t =
  let sp = t.space in
  List.iter (fun v -> v.hi <- v.hi_bound) t.vars;
  let queue = Queue.create () in
  let inq = Hashtbl.create 64 in
  let push v =
    if not (Hashtbl.mem inq v.id) then begin
      Hashtbl.add inq v.id ();
      Queue.push v queue
    end
  in
  List.iter push t.vars;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Hashtbl.remove inq v.id;
    List.iter
      (fun (p, mask, _) ->
        let contrib = Elt.embed_top sp ~mask v.hi in
        let hi' = Elt.meet sp p.hi contrib in
        if not (Elt.equal hi' p.hi) then begin
          p.hi <- hi';
          push p
        end)
      v.preds
  done

(* Explain why [v]'s least solution violates its upper bound: find the
   offending coordinate, then walk backwards to a constant lower bound that
   raised it. *)
let explain t v =
  let sp = t.space in
  let bad = ref None in
  for i = 0 to Space.size sp - 1 do
    if !bad = None then begin
      let mask = Elt.singleton_mask sp i in
      if not (Elt.leq_masked sp ~mask v.lo v.hi_bound) then bad := Some i
    end
  done;
  match !bad with
  | None -> Fmt.str "%a: bound violation" pp_var v
  | Some i ->
      let q = Space.qual sp i in
      let mask = Elt.singleton_mask sp i in
      (* the value of coordinate i that lo carries *)
      let coord_of x = x land mask in
      let target = coord_of v.lo in
      (* BFS backwards for a var whose own constant lower bounds produce
         [target] on coordinate i. *)
      let seen = Hashtbl.create 16 in
      let rec search frontier =
        match frontier with
        | [] -> None
        | u :: rest ->
            if Hashtbl.mem seen u.id then search rest
            else begin
              Hashtbl.add seen u.id ();
              if coord_of u.lo_bound = target && coord_of u.lo = target then
                let reason =
                  List.find_map
                    (fun (c, m, r) ->
                      if m land mask <> 0 && coord_of c = target then
                        Some (Option.value r ~default:"constant bound")
                      else None)
                    u.lo_reasons
                in
                Some (u, Option.value reason ~default:"constant bound")
              else
                let preds =
                  List.filter_map
                    (fun (p, m, _) ->
                      if m land mask <> 0 && coord_of p.lo = target then Some p
                      else None)
                    u.preds
                in
                search (rest @ preds)
            end
      in
      let origin =
        match search [ v ] with
        | Some (u, r) -> Fmt.str "; forced at %a (%s)" pp_var u r
        | None -> ""
      in
      let bound_reason =
        List.find_map
          (fun (_, m, r) ->
            if m land mask <> 0 && not (Elt.leq_masked sp ~mask v.lo v.hi_bound)
            then r
            else None)
          v.hi_reasons
      in
      Fmt.str "qualifier %a of %a violates an upper bound%a%s" Qualifier.pp q
        pp_var v
        Fmt.(option (any " (" ++ string ++ any ")"))
        bound_reason origin

(* Solve and report unsatisfiability. Computes both the least and greatest
   solutions; satisfiability is equivalent to the least solution meeting
   every constant upper bound. *)
let solve t =
  solve_least t;
  solve_greatest t;
  t.solved <- true;
  let errs =
    List.filter_map
      (fun v ->
        if Elt.leq t.space v.lo v.hi_bound then None
        else Some { err_var = Some v; err_msg = explain t v })
      t.vars
  in
  let errs = List.rev_append t.ground_errors errs in
  if errs = [] then Ok () else Error errs

let least t v =
  if not t.solved then ignore (solve t);
  v.lo

let greatest t v =
  if not t.solved then ignore (solve t);
  v.hi

(* Classification of one coordinate of a variable, per Section 4.4. *)
type verdict =
  | Forced_up    (* least solution already has the qualifier: "must be const" *)
  | Forced_down  (* greatest solution lacks it: "must not be const" *)
  | Free         (* could be either *)

let classify t v i =
  if not t.solved then ignore (solve t);
  let present x = Elt.has t.space i x in
  let q = Space.qual t.space i in
  (* "up" means toward the top of the coordinate's two-point lattice *)
  let up_present = Qualifier.is_positive q in
  let lo_up = present v.lo = up_present in
  let hi_up = present v.hi = up_present in
  if lo_up then Forced_up
  else if not hi_up then Forced_down
  else Free

let classify_name t v name = classify t v (Space.find t.space name)

let pp_verdict ppf = function
  | Forced_up -> Fmt.string ppf "forced-up"
  | Forced_down -> Fmt.string ppf "forced-down"
  | Free -> Fmt.string ppf "free"

(* ------------------------------------------------------------------ *)
(* Recording and schemes (Section 3.2)                                 *)
(* ------------------------------------------------------------------ *)

(* Run [f], capturing every atom added during its execution (including
   atoms emitted by nested instantiations). Recorders nest. *)
let recording t f =
  let r = ref [] in
  t.recorders <- r :: t.recorders;
  Fun.protect
    ~finally:(fun () ->
      t.recorders <- List.filter (fun r' -> r' != r) t.recorders)
    (fun () ->
      let x = f () in
      (x, List.rev !r))

type scheme = {
  locals : var list;
  (* every variable local to the scheme: the generalized interface
     variables plus the existentially bound internals; all are renamed at
     instantiation so instances cannot interfere (Section 3.2) *)
  atoms : atom list;
}

let make_scheme ~locals ~atoms = { locals; atoms }
let scheme_locals s = s.locals
let scheme_atoms s = s.atoms

(* Re-emit the scheme's constraints under a fresh renaming of its locals.
   Returns the renaming so callers can rebuild the instantiated type. *)
let instantiate t s =
  let map = Hashtbl.create (List.length s.locals) in
  List.iter
    (fun v -> Hashtbl.replace map v.id (fresh ~name:v.vname t))
    s.locals;
  let rn v = match Hashtbl.find_opt map v.id with Some v' -> v' | None -> v in
  List.iter
    (function
      | Avc (v, c, mask, reason) -> add_leq_vc ?reason ~mask t (rn v) c
      | Acv (c, v, mask, reason) -> add_leq_cv ?reason ~mask t c (rn v)
      | Avv (a, b, mask, reason) -> add_leq_vv ?reason ~mask t (rn a) (rn b))
    s.atoms;
  rn

let pp_atom sp ppf = function
  | Avc (v, c, _, _) -> Fmt.pf ppf "%a <= %a" pp_var v (Elt.pp_full sp) c
  | Acv (c, v, _, _) -> Fmt.pf ppf "%a <= %a" (Elt.pp_full sp) c pp_var v
  | Avv (a, b, _, _) -> Fmt.pf ppf "%a <= %a" pp_var a pp_var b

let pp_error ppf e = Fmt.string ppf e.err_msg
let error_message e = e.err_msg

(* ------------------------------------------------------------------ *)
(* Naive baseline solver (ablation; see DESIGN.md)                     *)
(* ------------------------------------------------------------------ *)

(* Same least solution computed by round-robin iteration to fixpoint, with
   no worklist. Kept as the ablation baseline for the micro-benchmarks. *)
let solve_least_naive t =
  let sp = t.space in
  List.iter (fun v -> v.lo <- v.lo_bound) t.vars;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun v ->
        List.iter
          (fun (s, mask, _) ->
            let contrib = Elt.embed_bottom sp ~mask v.lo in
            let lo' = Elt.join sp s.lo contrib in
            if not (Elt.equal lo' s.lo) then begin
              s.lo <- lo';
              changed := true
            end)
          v.succs)
      t.vars
  done

(* ------------------------------------------------------------------ *)
(* Scheme simplification (the open problem of Section 6, basic form)   *)
(* ------------------------------------------------------------------ *)

(* A scheme's meaning is the projection of its solution set onto the
   observable variables (the interface variables of the generalized type
   plus any free variables); the existentially bound internals can be
   eliminated whenever elimination is exact. Over a lattice, a variable v
   with full-mask constraints {a_i <= v, L_i <= v, v <= b_j, v <= U_j} can
   be replaced by the pairwise compositions (take v = the join of its
   lower bounds), which is exact. We apply three passes to a fixed point:

   1. duplicate atoms are dropped;
   2. a non-observable local with no upper (resp. no lower) atoms is
      dropped together with its atoms — they are vacuous;
   3. a non-observable local whose in-degree or out-degree is at most 1
      (so composition does not grow the system) is eliminated by pairwise
      composition.

   Masked atoms (per-coordinate well-formedness conditions) are treated
   conservatively: a variable with any non-full-mask atom is kept. *)

let simplify_scheme t ~(interface : var list) (s : scheme) : scheme =
  let full = Lattice.Elt.full_mask t.space in
  let sp = t.space in
  let local_ids = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace local_ids v.id ()) s.locals;
  let observable = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace observable v.id ()) interface;
  (* free variables of the scheme are observable too *)
  List.iter
    (fun a ->
      let mark v =
        if not (Hashtbl.mem local_ids v.id) then
          Hashtbl.replace observable v.id ()
      in
      match a with
      | Avc (v, _, _, _) | Acv (_, v, _, _) -> mark v
      | Avv (x, y, _, _) ->
          mark x;
          mark y)
    s.atoms;
  (* dedup *)
  let key = function
    | Avc (v, c, m, _) -> (0, v.id, -1, c, m)
    | Acv (c, v, m, _) -> (1, v.id, -1, c, m)
    | Avv (x, y, m, _) -> (2, x.id, y.id, 0, m)
  in
  let seen = Hashtbl.create 128 in
  let atoms =
    ref
      (List.filter
         (fun a ->
           let k = key a in
           if Hashtbl.mem seen k then false
           else begin
             Hashtbl.add seen k ();
             (* drop trivially vacuous atoms *)
             match a with
             | Avc (_, c, m, _) ->
                 not (Lattice.Elt.leq_masked sp ~mask:m (Lattice.Elt.top sp) c)
             | Acv (c, _, m, _) ->
                 not
                   (Lattice.Elt.leq_masked sp ~mask:m c (Lattice.Elt.bottom sp))
             | Avv (x, y, _, _) -> x.id <> y.id
           end)
         s.atoms)
  in
  let eliminated = Hashtbl.create 32 in
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !passes < 20 do
    changed := false;
    incr passes;
    (* index: per variable, lower-side atoms (x <= v) and upper-side *)
    let lowers = Hashtbl.create 64 and uppers = Hashtbl.create 64 in
    let masked_ok = Hashtbl.create 64 in
    let add tbl id a = Hashtbl.replace tbl id (a :: try Hashtbl.find tbl id with Not_found -> []) in
    List.iter
      (fun a ->
        match a with
        | Avc (v, _, m, _) ->
            add uppers v.id a;
            if m <> full then Hashtbl.replace masked_ok v.id ()
        | Acv (_, v, m, _) ->
            add lowers v.id a;
            if m <> full then Hashtbl.replace masked_ok v.id ()
        | Avv (x, y, m, _) ->
            add uppers x.id a;
            add lowers y.id a;
            if m <> full then begin
              Hashtbl.replace masked_ok x.id ();
              Hashtbl.replace masked_ok y.id ()
            end)
      !atoms;
    let eliminable v =
      Hashtbl.mem local_ids v.id
      && (not (Hashtbl.mem observable v.id))
      && (not (Hashtbl.mem masked_ok v.id))
      && not (Hashtbl.mem eliminated v.id)
    in
    let kill = Hashtbl.create 16 in
    let extra = ref [] in
    List.iter
      (fun v ->
        if eliminable v && not (Hashtbl.mem kill v.id) then begin
          let lo = try Hashtbl.find lowers v.id with Not_found -> [] in
          let up = try Hashtbl.find uppers v.id with Not_found -> [] in
          let nlo = List.length lo and nup = List.length up in
          (* never touch a neighbour killed this pass: a freshly composed
             atom may reference this variable, and deleting or composing
             against the stale pass-start index would resurrect dead
             variables; the next pass sees the rebuilt index *)
          let neighbour_killed =
            List.exists
              (fun a ->
                match a with
                | Avc (v', _, _, _) | Acv (_, v', _, _) ->
                    Hashtbl.mem kill v'.id
                | Avv (x, y, _, _) ->
                    Hashtbl.mem kill x.id || Hashtbl.mem kill y.id)
              (lo @ up)
          in
          if neighbour_killed then ()
          else if nlo = 0 || nup = 0 then begin
            (* vacuous: delete the variable and its atoms *)
            Hashtbl.replace kill v.id ();
            Hashtbl.replace eliminated v.id ();
            changed := true
          end
          else if nlo <= 1 || nup <= 1 then begin
            (* exact pairwise composition *)
            let ok = ref true in
            let comps = ref [] in
            List.iter
              (fun la ->
                List.iter
                  (fun ua ->
                    match (la, ua) with
                    | Acv (c, _, _, r), Avc (_, c', _, r') ->
                        if Lattice.Elt.leq sp c c' then ()
                        else (
                          ignore (r, r');
                          ok := false)
                    | Acv (c, _, _, r), Avv (_, y, _, _) ->
                        comps := Acv (c, y, full, r) :: !comps
                    | Avv (x, _, _, r), Avc (_, c', _, _) ->
                        comps := Avc (x, c', full, r) :: !comps
                    | Avv (x, _, _, r), Avv (_, y, _, _) ->
                        if x.id <> y.id then comps := Avv (x, y, full, r) :: !comps
                    | _ -> ok := false)
                  up)
              lo;
            if !ok then begin
              Hashtbl.replace kill v.id ();
              Hashtbl.replace eliminated v.id ();
              extra := !comps @ !extra;
              changed := true
            end
          end
        end)
      s.locals;
    if !changed then begin
      let touches id = Hashtbl.mem kill id in
      atoms :=
        List.filter
          (fun a ->
            match a with
            | Avc (v, _, _, _) | Acv (_, v, _, _) -> not (touches v.id)
            | Avv (x, y, _, _) -> not (touches x.id || touches y.id))
          !atoms
        @ !extra
    end
  done;
  let locals =
    List.filter (fun v -> not (Hashtbl.mem eliminated v.id)) s.locals
  in
  { locals; atoms = !atoms }

let scheme_size s = List.length s.atoms

(* ------------------------------------------------------------------ *)
(* Standalone evaluation of an atom list                               *)
(* ------------------------------------------------------------------ *)

(* Least/greatest solutions of a bare atom list, computed with local
   tables and without touching any store or variable record. Variables not
   mentioned default to (bottom, top). Used to summarize schemes in
   isolation (polymorphic recursion's convergence test). *)
let solve_atoms sp (atoms : atom list) : int -> Elt.t * Elt.t =
  let lo = Hashtbl.create 64 and hi = Hashtbl.create 64 in
  let get tbl dflt id = try Hashtbl.find tbl id with Not_found -> dflt in
  let bot = Elt.bottom sp and top = Elt.top sp in
  let edges = ref [] in
  List.iter
    (function
      | Acv (c, v, m, _) ->
          Hashtbl.replace lo v.id
            (Elt.join sp (get lo bot v.id) (Elt.embed_bottom sp ~mask:m c))
      | Avc (v, c, m, _) ->
          Hashtbl.replace hi v.id
            (Elt.meet sp (get hi top v.id) (Elt.embed_top sp ~mask:m c))
      | Avv (x, y, m, _) -> edges := (x.id, y.id, m) :: !edges)
    atoms;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (x, y, m) ->
        (* forward: lo flows x -> y *)
        let contrib = Elt.embed_bottom sp ~mask:m (get lo bot x) in
        let lo' = Elt.join sp (get lo bot y) contrib in
        if not (Elt.equal lo' (get lo bot y)) then begin
          Hashtbl.replace lo y lo';
          changed := true
        end;
        (* backward: hi flows y -> x *)
        let contrib = Elt.embed_top sp ~mask:m (get hi top y) in
        let hi' = Elt.meet sp (get hi top x) contrib in
        if not (Elt.equal hi' (get hi top x)) then begin
          Hashtbl.replace hi x hi';
          changed := true
        end)
      !edges
  done;
  fun id -> (get lo bot id, get hi top id)

(* Present a scheme as a constrained type qualifier prefix — the notation
   question raised in Section 6 ("we currently do not have a notation for
   specifying constraints in the source language"). Combine with
   [simplify_scheme] for readable output. *)
let pp_scheme space ppf (s : scheme) =
  Fmt.pf ppf "∀%a. {%a}"
    (Fmt.list ~sep:(Fmt.any " ") pp_var)
    s.locals
    (Fmt.list ~sep:(Fmt.any ", ") (pp_atom space))
    s.atoms
