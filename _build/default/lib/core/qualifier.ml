(** Type qualifiers (Definition 1 of the paper).

    A qualifier [q] is {e positive} when [tau <= q tau] for every standard
    type [tau] (e.g. [const]: adding it moves {e up} the subtype order), and
    {e negative} when [q tau <= tau] (e.g. [nonzero]: removing it moves up).
    Positive and negative qualifiers are dual; we support both directly, as
    the paper does, because analyses are more natural to state with a mix. *)

type polarity =
  | Positive  (** [tau <= q tau]; absence is the bottom of the 2-point lattice *)
  | Negative  (** [q tau <= tau]; presence is the bottom of the 2-point lattice *)

type t = {
  name : string;      (** Source-level name, e.g. ["const"]. Unique in a space. *)
  polarity : polarity;
}

let make ?(polarity = Positive) name =
  if name = "" then invalid_arg "Qualifier.make: empty name";
  { name; polarity }

let positive name = make ~polarity:Positive name
let negative name = make ~polarity:Negative name

let name q = q.name
let polarity q = q.polarity
let is_positive q = q.polarity = Positive
let is_negative q = q.polarity = Negative

let equal a b = String.equal a.name b.name && a.polarity = b.polarity
let compare a b =
  match String.compare a.name b.name with
  | 0 -> compare a.polarity b.polarity
  | c -> c

let pp ppf q = Fmt.string ppf q.name

let pp_full ppf q =
  Fmt.pf ppf "%s%s" (match q.polarity with Positive -> "+" | Negative -> "-")
    q.name

(* The qualifiers used throughout the paper and this reproduction. *)

(** ANSI C [const]: an l-value that may be initialized but not updated
    (Section 2.4, Section 4). Positive: [tau <= const tau]. *)
let const = positive "const"

(** Binding-time [dynamic] (partial evaluation, Section 1): a value possibly
    unknown until run time. Positive; [static] is its absence. *)
let dynamic = positive "dynamic"

(** [nonzero] (Figure 2): an integer known not to be zero. Negative:
    [nonzero tau <= tau]. *)
let nonzero = negative "nonzero"

(** lclint-style [nonnull] (Section 1): a pointer that is not null.
    Negative: the non-null pointers are a subset of all pointers. *)
let nonnull = negative "nonnull"

(** [sorted] (Section 2.3): a list known to be sorted. Negative. *)
let sorted = negative "sorted"

(** Security [tainted] (cf. the information-flow systems of Section 5):
    data influenced by an untrusted source. Positive: untainted data can be
    used where tainted data is expected. *)
let tainted = positive "tainted"
