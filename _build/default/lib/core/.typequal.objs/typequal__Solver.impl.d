lib/core/solver.ml: Fmt Fun Hashtbl Lattice List Option Qualifier Queue
