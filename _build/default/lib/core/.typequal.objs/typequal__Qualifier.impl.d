lib/core/qualifier.ml: Fmt String
