lib/core/solver.mli: Fmt Lattice
