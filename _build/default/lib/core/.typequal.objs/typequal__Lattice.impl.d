lib/core/lattice.ml: Array Fmt Hashtbl List Printf Qualifier
