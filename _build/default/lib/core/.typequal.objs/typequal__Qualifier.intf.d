lib/core/qualifier.mli: Fmt
