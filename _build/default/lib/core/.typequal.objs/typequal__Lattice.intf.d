lib/core/lattice.mli: Fmt Qualifier
