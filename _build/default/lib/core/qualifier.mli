(** Type qualifiers (Definition 1 of the paper).

    A qualifier [q] is {e positive} when [tau <= q tau] for every standard
    type [tau] (e.g. [const]: adding it moves up the subtype order), and
    {e negative} when [q tau <= tau] (e.g. [nonzero]: removing it moves
    up). Positive and negative qualifiers are dual; both are supported
    directly, as in the paper, because analyses are more natural to state
    with a mix. *)

type polarity =
  | Positive  (** [tau <= q tau]; absence is the bottom of the 2-point lattice *)
  | Negative  (** [q tau <= tau]; presence is the bottom of the 2-point lattice *)

type t = {
  name : string;  (** source-level name, unique within a space *)
  polarity : polarity;
}

val make : ?polarity:polarity -> string -> t
(** [make name] is a qualifier (positive by default). Raises
    [Invalid_argument] on an empty name. *)

val positive : string -> t
val negative : string -> t

val name : t -> string
val polarity : t -> polarity
val is_positive : t -> bool
val is_negative : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : t Fmt.t
(** prints the bare name *)

val pp_full : t Fmt.t
(** prints the name with a +/- polarity marker *)

(** {1 The qualifiers used in the paper and this reproduction} *)

val const : t
(** ANSI C [const] (Sections 2.4, 4). Positive. *)

val dynamic : t
(** binding-time [dynamic] (Section 1); [static] is its absence. Positive. *)

val nonzero : t
(** an integer known not to be zero (Figure 2). Negative. *)

val nonnull : t
(** lclint-style non-null pointer (Section 1). Negative. *)

val sorted : t
(** a list known to be sorted (Section 2.3). Negative. *)

val tainted : t
(** security taint (cf. the information-flow systems of Section 5).
    Positive. *)
