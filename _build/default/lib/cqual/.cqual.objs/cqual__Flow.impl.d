lib/cqual/flow.ml: Cast Cfront Cparse Cprog Hashtbl List Option Printf Typequal
