lib/cqual/qtypes.ml: Cast Cfront Cprog Fmt Hashtbl List Typequal
