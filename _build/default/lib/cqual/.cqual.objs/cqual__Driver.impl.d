lib/cqual/driver.ml: Analysis Cfront List Report Typequal Unix
