lib/cqual/fdg.ml: Cast Cfront Cprog Hashtbl List String
