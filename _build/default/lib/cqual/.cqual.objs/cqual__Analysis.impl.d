lib/cqual/analysis.ml: Cast Cfront Cprog Fdg Hashtbl List Option Qtypes Typequal
