lib/cqual/report.ml: Analysis Cast Cfront Cprog Fmt List Qtypes Typequal
