lib/cbench/gen.ml: Buffer List Option Printf Rng String
