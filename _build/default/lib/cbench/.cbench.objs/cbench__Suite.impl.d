lib/cbench/suite.ml: Gen
