lib/cbench/programs.ml:
