lib/cbench/rng.ml: Array Int64 List
