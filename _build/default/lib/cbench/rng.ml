(** Tiny deterministic PRNG (splitmix64-style) so benchmark programs are
    reproducible across runs and platforms — the generator must emit the
    same program for the same seed or the experiment tables would not be
    stable. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next t =
  (* splitmix64 *)
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** uniform int in [0, n). *)
let int t n =
  if n <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int n))

(** true with probability [p] (percent, 0-100). *)
let percent t p = int t 100 < p

let pick t arr = arr.(int t (Array.length arr))

let pick_list t l = List.nth l (int t (List.length l))
