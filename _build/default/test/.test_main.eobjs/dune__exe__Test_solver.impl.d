test/test_solver.ml: Alcotest Array Cbench Cqual Fmt Lattice List Printf Qualifier Result Solver String Typequal
