test/test_cfront.ml: Alcotest Cast Cfront Clexer Cparse Cprog Ctoken Hashtbl List
