test/test_props.ml: Array Ast Eval Fun Infer Lattice List Parse Printf QCheck2 QCheck_alcotest Qlambda Qtype Qualifier Result Rules Solver Stype Typequal
