test/test_flow.ml: Alcotest Cqual Flow List
