test/test_lattice.ml: Alcotest Lattice List Printf Qualifier Typequal
