test/test_main.ml: Alcotest Test_cfront Test_cqual Test_eval Test_flow Test_lambda Test_lattice Test_props Test_solver
