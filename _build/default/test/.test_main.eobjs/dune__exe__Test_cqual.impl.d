test/test_cqual.ml: Alcotest Analysis Cbench Cqual Driver Fdg Fmt List Printf Report
