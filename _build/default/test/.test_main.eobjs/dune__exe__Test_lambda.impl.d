test/test_lambda.ml: Alcotest Ast Eval Fmt Infer Lattice List Parse Printf Qlambda Qtype Rules Solver String Stype Typequal
