test/test_eval.ml: Alcotest Eval Infer List Parse Printf Qlambda Rules Typequal
