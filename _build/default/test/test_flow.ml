(* Tests for flow-sensitive qualifiers (Section 6, Future Work): strong
   updates, joins, loop back edges, weak updates for address-taken locals,
   and the comparison against the flow-insensitive baseline. *)

open Cqual

let prelude =
  "$tainted int read_input(void);\n\
   void use($untainted int x);\n"

let analyze ?mode body =
  match Flow.analyze_source ?mode (prelude ^ body) with
  | Ok r -> r
  | Error m -> Alcotest.failf "parse error: %s" m

let flags ?mode body = (analyze ?mode body).Flow.errors <> []

let check_safe ?mode body =
  let r = analyze ?mode body in
  if r.Flow.errors <> [] then
    Alcotest.failf "expected safe, got: %s" (List.hd r.Flow.errors)

let check_flagged ?mode body =
  if not (flags ?mode body) then Alcotest.failf "expected flagged:\n%s" body

let test_direct_flow () =
  check_flagged "void f(void) { int a = read_input(); use(a); }";
  check_safe "void f(void) { int a = 5; use(a); }"

let test_strong_update () =
  (* the motivating case: a is overwritten with a clean value before the
     sink — flow-sensitive accepts, flow-insensitive flags *)
  let body =
    "void f(void) { int a = read_input(); a = 7; use(a); }"
  in
  check_safe ~mode:Flow.Sensitive body;
  check_flagged ~mode:Flow.Insensitive body

let test_update_other_direction () =
  (* overwriting with taint after the sink is fine in order, flagged when
     the order is reversed *)
  check_safe "void f(void) { int a = 1; use(a); a = read_input(); }";
  check_flagged "void f(void) { int a = 1; a = read_input(); use(a); }"

let test_if_join () =
  check_flagged
    "void f(int c) { int a = 0; if (c) { a = read_input(); } use(a); }";
  check_safe
    "void f(int c) { int a = 0; if (c) { a = read_input(); } a = 1; use(a); }";
  (* both branches clean *)
  check_safe
    "void f(int c) { int a = read_input(); if (c) { a = 1; } else { a = 2; } use(a); }"

let test_loop_back_edge () =
  (* taint enters on the second iteration through the back edge *)
  check_flagged
    "void f(int n) { int a = 0; while (n) { use(a); a = read_input(); n--; } }";
  (* cleaned at the top of every iteration *)
  check_safe
    "void f(int n) { int a = read_input(); while (n) { a = 1; use(a); n--; } }";
  (* after the loop the head state holds *)
  check_flagged
    "void f(int n) { int a = 0; while (n) { a = read_input(); n--; } use(a); }"

let test_for_loop () =
  check_safe
    "void f(int n) { int i; int a = read_input(); for (i = 0; i < n; i++) { a = i; use(a); } }";
  check_flagged
    "void f(int n) { int i; int a = 0; for (i = 0; i < n; i++) { use(a); a = read_input(); } }"

let test_break_states_join_exit () =
  (* a breaks out while tainted; the exit join must include it *)
  check_flagged
    "void f(int n) {\n\
     int a = 0;\n\
     while (1) { if (n) { a = read_input(); break; } a = 1; n--; }\n\
     use(a);\n\
     }"

let test_do_while () =
  check_flagged
    "void f(int n) { int a = 0; do { use(a); a = read_input(); } while (n--); }"

let test_address_taken_weak () =
  (* &a escapes: assignments to a are weak, so the overwrite does not
     launder *)
  check_flagged
    "void g(int *p);\n\
     void f(void) { int a = read_input(); g(&a); a = 7; use(a); }"

let test_switch_join () =
  check_flagged
    "void f(int c) {\n\
     int a = 0;\n\
     switch (c) { case 1: a = read_input(); break; case 2: a = 1; break; }\n\
     use(a);\n\
     }"

let test_goto_fallback () =
  (* goto forces the function to flow-insensitive mode: the strong update
     no longer launders, and the fallback is reported *)
  let body =
    "void f(int c) {\n\
     int a = read_input();\n\
     if (c) goto out;\n\
     a = 7;\n\
     out:\n\
     use(a);\n\
     }"
  in
  check_flagged ~mode:Flow.Sensitive body;
  let r = analyze ~mode:Flow.Sensitive body in
  Alcotest.(check bool) "fallback reported" true
    (List.exists (fun fr -> fr.Flow.fr_fell_back) r.Flow.functions)

let test_param_annotations () =
  check_flagged "void f($tainted int x) { use(x); }";
  check_safe "void f(int x) { use(x); }";
  (* an $untainted parameter is a sink declaration on the callee side *)
  check_flagged "void g($untainted int y) { } void f(void) { g(read_input()); }"

let test_expression_taint () =
  check_flagged "void f(void) { use(read_input() + 1); }";
  check_flagged "void f(int c) { use(c ? read_input() : 0); }";
  check_safe "void f(int c) { int t = read_input(); use(c ? 1 : 0); }";
  check_flagged "void f(void) { int a = 1; a += read_input(); use(a); }"

let test_sensitive_never_worse () =
  (* anything safe flow-insensitively is safe flow-sensitively *)
  List.iter
    (fun body ->
      if not (flags ~mode:Flow.Insensitive body) then
        Alcotest.(check bool) body false (flags ~mode:Flow.Sensitive body))
    [
      "void f(void) { int a = 5; use(a); }";
      "void f(int n) { int a = 0; while (n--) { a = a + 1; } use(a); }";
      "void f(void) { int t = read_input(); int u = t + 1; use(3); }";
    ]

let tests =
  [
    Alcotest.test_case "direct source-to-sink" `Quick test_direct_flow;
    Alcotest.test_case "strong update launders" `Quick test_strong_update;
    Alcotest.test_case "statement order matters" `Quick
      test_update_other_direction;
    Alcotest.test_case "if joins" `Quick test_if_join;
    Alcotest.test_case "loop back edges" `Quick test_loop_back_edge;
    Alcotest.test_case "for loops" `Quick test_for_loop;
    Alcotest.test_case "break states join the exit" `Quick
      test_break_states_join_exit;
    Alcotest.test_case "do-while" `Quick test_do_while;
    Alcotest.test_case "address-taken locals are weak" `Quick
      test_address_taken_weak;
    Alcotest.test_case "switch joins" `Quick test_switch_join;
    Alcotest.test_case "goto falls back, reported" `Quick test_goto_fallback;
    Alcotest.test_case "parameter annotations" `Quick test_param_annotations;
    Alcotest.test_case "expression taint" `Quick test_expression_taint;
    Alcotest.test_case "sensitive never worse than insensitive" `Quick
      test_sensitive_never_worse;
  ]
