(* Tests for the operational semantics (Figure 5): reduction rules,
   qualifier checks at annotations/assertions, store behaviour, and the
   connection to the type system (well-typed programs don't get stuck). *)

open Qlambda
module E = Typequal.Lattice.Elt

let cn = Rules.cn_space

let parse s =
  match Parse.parse_result s with
  | Ok e -> e
  | Error m -> Alcotest.failf "parse: %s" m

let run src = Eval.run cn (parse src)

let expect_int src n =
  match run src with
  | Eval.Value (_, Eval.RInt m) when m = n -> ()
  | o -> Alcotest.failf "%s: expected %d, got %a" src n (Eval.pp_outcome cn) o

let expect_stuck src pred =
  match run src with
  | Eval.Stuck_at r when pred r -> ()
  | o -> Alcotest.failf "%s: expected stuck, got %a" src (Eval.pp_outcome cn) o

let test_arith () =
  expect_int "1 + 2 * 3" 7;
  expect_int "10 - 4 - 3" 3;
  expect_int "7 / 2" 3;
  expect_int "(1 < 2) + (2 == 2)" 2;
  expect_int "-5 + 3" (-2)

let test_if () =
  (* C convention: 0 false, non-zero true *)
  expect_int "if 1 then 10 else 20" 10;
  expect_int "if 0 then 10 else 20" 20;
  expect_int "if 42 then 10 else 20" 10

let test_let_and_lambda () =
  expect_int "let x = 3 in x + x" 6;
  expect_int "(fun x -> x * x) 5" 25;
  expect_int "let compose = fun f -> fun g -> fun x -> f (g x) in\n\
              compose (fun a -> a + 1) (fun b -> b * 2) 10" 21

let test_refs () =
  expect_int "let r = ref 5 in !r" 5;
  expect_int "let r = ref 5 in r := 7; !r" 7;
  expect_int "let r = ref 0 in let s = r in s := 9; !r" 9;
  (* assignment evaluates to unit *)
  (match run "let r = ref 1 in r := 2" with
  | Eval.Value (_, Eval.RUnit) -> ()
  | o -> Alcotest.failf "unit expected: %a" (Eval.pp_outcome cn) o)

let test_shadowing () =
  expect_int "let x = 1 in let x = 2 in x" 2;
  expect_int "let x = 1 in (fun x -> x + 1) 10 + x" 12

let test_annotation_collapse () =
  (* l1 (l2 v) -> l1 v requires l2 <= l1 *)
  match run "@[const] (@[] 5)" with
  | Eval.Value (l, Eval.RInt 5) ->
      Alcotest.(check bool) "const in final annot" true
        (E.has_name cn "const" l)
  | o -> Alcotest.failf "collapse: %a" (Eval.pp_outcome cn) o

let test_annotation_failure () =
  (* demoting a const value with a lower annotation is stuck (and also
     ill-typed — the checker would reject it) *)
  expect_stuck "@[] (@[const] 5)" (function
    | Eval.Annotation_failure _ -> true
    | _ -> false)

let test_assertion_pass_and_fail () =
  expect_int "(@[nonzero] 5) |[nonzero]" 5;
  expect_stuck "(@[~nonzero] 0) |[nonzero]" (function
    | Eval.Assertion_failure _ -> true
    | _ -> false)

let test_div_by_zero () =
  expect_stuck "1 / 0" (function Eval.Division_by_zero -> true | _ -> false)

let test_ill_formed_stuck () =
  expect_stuck "1 2" (function Eval.Ill_formed _ -> true | _ -> false);
  expect_stuck "!3" (function Eval.Ill_formed _ -> true | _ -> false);
  expect_stuck "4 := 5" (function Eval.Ill_formed _ -> true | _ -> false);
  expect_stuck "if (fun x -> x) then 1 else 2" (function
    | Eval.Ill_formed _ -> true
    | _ -> false)

let test_out_of_fuel () =
  let loop = "let f = ref (fun x -> x) in f := (fun x -> !f x); !f 1" in
  match Eval.run ~fuel:1000 cn (parse loop) with
  | Eval.Out_of_fuel -> ()
  | o -> Alcotest.failf "expected divergence, got %a" (Eval.pp_outcome cn) o

let test_eval_order () =
  (* left-to-right: the function is evaluated before the argument *)
  expect_int
    "let r = ref 0 in\n\
     let f = (r := 1; fun x -> !r) in\n\
     f (r := 2; 0)" 2

let test_store_isolation () =
  expect_int
    "let a = ref 1 in let b = ref 2 in a := 10; !a + !b" 12

let test_trace () =
  let steps, out = Eval.trace cn (parse "1 + 2") in
  Alcotest.(check bool) "multiple steps" true (List.length steps >= 2);
  match out with
  | Eval.Value (_, Eval.RInt 3) -> ()
  | _ -> Alcotest.fail "trace outcome"

(* Well-typed programs never get stuck (soundness, Corollary 1), on a
   corpus of hand-picked programs that exercise every construct. *)
let test_welltyped_dont_get_stuck () =
  let programs =
    [
      "let x = ref 1 in x := !x + 1; !x";
      "let f = fun g -> g 1 in f (fun y -> y + 1)";
      "let r = ref (fun x -> x + 1) in (!r) 5";
      "let x = @[const] ref 10 in !x";
      "(@[nonzero] 3) |[nonzero] + 1";
      "let apply = fun f -> fun x -> f x in apply (fun v -> v) (ref 0) := 4";
      "if 1 - 1 then 1 / 1 else 0";
      "let swapin = fun r -> fun v -> r := v in\n\
       let c = ref 0 in swapin c 3; !c";
    ]
  in
  List.iter
    (fun src ->
      let ast = parse src in
      Alcotest.(check bool)
        (Printf.sprintf "typechecks: %s" src)
        true
        (Infer.typechecks ~hooks:Rules.cn_hooks ~poly:true cn ast);
      match Eval.run cn ast with
      | Eval.Value _ -> ()
      | o ->
          Alcotest.failf "%s: well-typed program got %a" src
            (Eval.pp_outcome cn) o)
    programs

let tests =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "if (C convention)" `Quick test_if;
    Alcotest.test_case "let and lambda" `Quick test_let_and_lambda;
    Alcotest.test_case "references" `Quick test_refs;
    Alcotest.test_case "shadowing" `Quick test_shadowing;
    Alcotest.test_case "annotation collapse" `Quick test_annotation_collapse;
    Alcotest.test_case "annotation failure" `Quick test_annotation_failure;
    Alcotest.test_case "assertions pass/fail" `Quick
      test_assertion_pass_and_fail;
    Alcotest.test_case "division by zero" `Quick test_div_by_zero;
    Alcotest.test_case "ill-formed redexes are stuck" `Quick
      test_ill_formed_stuck;
    Alcotest.test_case "divergence runs out of fuel" `Quick test_out_of_fuel;
    Alcotest.test_case "left-to-right evaluation" `Quick test_eval_order;
    Alcotest.test_case "store isolation" `Quick test_store_isolation;
    Alcotest.test_case "trace" `Quick test_trace;
    Alcotest.test_case "well-typed programs don't get stuck" `Quick
      test_welltyped_dont_get_stuck;
  ]
