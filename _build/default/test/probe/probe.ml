(* ad-hoc coverage probe for the random term generator (not a test) *)
open Qlambda

let term_gen : Ast.expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  let specs =
    [ []; [ ("const", true) ]; [ ("nonzero", true) ]; [ ("nonzero", false) ];
      [ ("const", true); ("nonzero", true) ] ]
  in
  let spec = oneofl specs in
  let bound_specs = [ [ ("const", false) ]; [ ("nonzero", true) ]; [] ] in
  let bspec = oneofl bound_specs in
  let var_of env =
    if env = [] then map (fun n -> Ast.Int n) (int_bound 9)
    else map (fun x -> Ast.Var x) (oneofl env)
  in
  let fresh_name env = Printf.sprintf "x%d" (List.length env) in
  fix
    (fun self (size, env) ->
      if size <= 0 then
        oneof [ map (fun n -> Ast.Int n) (int_bound 9); return Ast.Unit; var_of env ]
      else
        let sub = self (size / 2, env) in
        oneof
          [ var_of env;
            map (fun n -> Ast.Int n) (int_bound 9);
            map2 (fun a b -> Ast.App (a, b)) sub sub;
            (let x = fresh_name env in
             map (fun b -> Ast.Lam (x, b)) (self (size - 1, x :: env)));
            (let x = fresh_name env in
             map2 (fun e b -> Ast.Let (x, e, b)) sub (self (size / 2, x :: env)));
            map3 (fun a b c -> Ast.If (a, b, c)) sub sub sub;
            map (fun e -> Ast.Ref e) sub;
            map (fun e -> Ast.Deref e) sub;
            map2 (fun a b -> Ast.Assign (a, b)) sub sub;
            map2 (fun s e -> Ast.Annot (s, e)) spec sub;
            map2 (fun e s -> Ast.Assert (e, s)) sub bspec;
            map3 (fun op a b -> Ast.Binop (op, a, b))
              (oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Lt; Ast.Eq ]) sub sub ])
    (8, [])

let () =
  let gen = QCheck2.Gen.generate ~n:5000 term_gen in
  let ok = ref 0 and stuck = ref 0 and values = ref 0 in
  List.iter
    (fun e ->
      if Infer.typechecks ~hooks:Rules.cn_hooks ~poly:true Rules.cn_space e then begin
        incr ok;
        match Eval.run ~fuel:2000 Rules.cn_space e with
        | Eval.Stuck_at Eval.Division_by_zero -> ()
        | Eval.Stuck_at r ->
            incr stuck;
            Fmt.pr "STUCK: %s@.  %a@." (Ast.to_string e)
              (Eval.pp_stuck Rules.cn_space) r
        | Eval.Value _ -> incr values
        | Eval.Out_of_fuel -> ()
      end)
    gen;
  Printf.printf "total=5000 typechecked=%d values=%d stuck=%d\n" !ok !values !stuck
