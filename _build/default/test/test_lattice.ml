(* Tests for the qualifier lattice (Definitions 1-2, Figure 2). *)

open Typequal
module Sp = Lattice.Space
module E = Lattice.Elt

let q_const = Qualifier.const
let q_dynamic = Qualifier.dynamic
let q_nonzero = Qualifier.nonzero

(* The Figure 2 lattice: const x dynamic x nonzero. *)
let fig2 = Sp.create [ q_const; q_dynamic; q_nonzero ]

let test_space_basics () =
  Alcotest.(check int) "size" 3 (Sp.size fig2);
  Alcotest.(check string) "qual 0" "const" (Qualifier.name (Sp.qual fig2 0));
  Alcotest.(check bool) "mem const" true (Sp.mem fig2 "const");
  Alcotest.(check bool) "mem bogus" false (Sp.mem fig2 "bogus");
  Alcotest.(check int) "find nonzero" 2 (Sp.find fig2 "nonzero")

let test_space_dup () =
  Alcotest.check_raises "duplicate name rejected"
    (Invalid_argument "Lattice.Space.create: duplicate qualifier \"const\"")
    (fun () -> ignore (Sp.create [ q_const; Qualifier.positive "const" ]))

let test_space_unknown () =
  Alcotest.check_raises "unknown qualifier"
    (Lattice.Unknown_qualifier "frob") (fun () ->
      ignore (Sp.find fig2 "frob"))

let test_bottom_top () =
  let bot = E.bottom fig2 and top = E.top fig2 in
  (* bottom: positives absent, negatives present *)
  Alcotest.(check bool) "bot has const" false (E.has_name fig2 "const" bot);
  Alcotest.(check bool) "bot has dynamic" false (E.has_name fig2 "dynamic" bot);
  Alcotest.(check bool) "bot has nonzero" true (E.has_name fig2 "nonzero" bot);
  (* top: positives present, negatives absent *)
  Alcotest.(check bool) "top has const" true (E.has_name fig2 "const" top);
  Alcotest.(check bool) "top has dynamic" true (E.has_name fig2 "dynamic" top);
  Alcotest.(check bool) "top has nonzero" false (E.has_name fig2 "nonzero" top);
  Alcotest.(check bool) "bot <= top" true (E.leq fig2 bot top);
  Alcotest.(check bool) "top <= bot implies trivial lattice" false
    (E.leq fig2 top bot)

(* Figure 2 spot checks: "moving up the lattice adds positive qualifiers or
   removes negative qualifiers". *)
let test_fig2_order () =
  let nz = E.of_names_up fig2 [ "nonzero" ] in
  (* nonzero (and nothing else positive) — this is the bottom *)
  Alcotest.(check bool) "nonzero = bottom" true (E.equal nz (E.bottom fig2));
  let const_nz = E.of_names_up fig2 [ "const"; "nonzero" ] in
  let const_ = E.clear fig2 (Sp.find fig2 "nonzero") const_nz in
  let dyn_nz = E.of_names_up fig2 [ "dynamic"; "nonzero" ] in
  Alcotest.(check bool) "const nonzero <= const" true (E.leq fig2 const_nz const_);
  Alcotest.(check bool) "const </= const nonzero" false (E.leq fig2 const_ const_nz);
  Alcotest.(check bool) "nonzero <= const nonzero" true (E.leq fig2 nz const_nz);
  Alcotest.(check bool) "const nonzero vs dynamic nonzero incomparable" false
    (E.leq fig2 const_nz dyn_nz || E.leq fig2 dyn_nz const_nz)

let test_not () =
  (* not const: top with const pinned absent *)
  let nc = E.not_name fig2 "const" in
  Alcotest.(check bool) "¬const lacks const" false (E.has_name fig2 "const" nc);
  Alcotest.(check bool) "¬const keeps dynamic" true (E.has_name fig2 "dynamic" nc);
  Alcotest.(check bool) "¬const keeps ¬nonzero" false
    (E.has_name fig2 "nonzero" nc);
  (* not nonzero (negative): top with nonzero pinned *present* — asserting
     below it REQUIRES nonzero *)
  let nnz = E.not_name fig2 "nonzero" in
  Alcotest.(check bool) "¬?nonzero has nonzero" true
    (E.has_name fig2 "nonzero" nnz);
  Alcotest.(check bool) "bottom <= ¬const" true (E.leq fig2 (E.bottom fig2) nc);
  Alcotest.(check bool) "top </= ¬const" false (E.leq fig2 (E.top fig2) nc)

(* Exhaustive lattice laws over all 8 elements of the Figure 2 lattice. *)
let test_lattice_laws () =
  let all = E.all fig2 in
  List.iter
    (fun a ->
      Alcotest.(check bool) "refl" true (E.leq fig2 a a);
      Alcotest.(check bool) "bot <= a" true (E.leq fig2 (E.bottom fig2) a);
      Alcotest.(check bool) "a <= top" true (E.leq fig2 a (E.top fig2)))
    all;
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let j = E.join fig2 a b and m = E.meet fig2 a b in
          Alcotest.(check bool) "a <= a|b" true (E.leq fig2 a j);
          Alcotest.(check bool) "b <= a|b" true (E.leq fig2 b j);
          Alcotest.(check bool) "a&b <= a" true (E.leq fig2 m a);
          Alcotest.(check bool) "a&b <= b" true (E.leq fig2 m b);
          Alcotest.(check bool) "join comm" true
            (E.equal j (E.join fig2 b a));
          Alcotest.(check bool) "meet comm" true
            (E.equal m (E.meet fig2 b a));
          (* antisymmetry *)
          if E.leq fig2 a b && E.leq fig2 b a then
            Alcotest.(check bool) "antisym" true (E.equal a b);
          (* leq iff join = b iff meet = a *)
          Alcotest.(check bool) "leq <-> join" (E.leq fig2 a b)
            (E.equal j b);
          Alcotest.(check bool) "leq <-> meet" (E.leq fig2 a b)
            (E.equal m a);
          List.iter
            (fun c ->
              if E.leq fig2 a b && E.leq fig2 b c then
                Alcotest.(check bool) "trans" true (E.leq fig2 a c);
              (* join/meet are least/greatest bounds *)
              if E.leq fig2 a c && E.leq fig2 b c then
                Alcotest.(check bool) "join least" true (E.leq fig2 j c);
              if E.leq fig2 c a && E.leq fig2 c b then
                Alcotest.(check bool) "meet greatest" true (E.leq fig2 c m))
            all)
        all)
    all

let test_masked () =
  let i_const = Sp.find fig2 "const" in
  let mask = E.singleton_mask fig2 i_const in
  let top = E.top fig2 and bot = E.bottom fig2 in
  (* on the const coordinate alone, bottom <= top and not conversely *)
  Alcotest.(check bool) "masked leq" true (E.leq_masked fig2 ~mask bot top);
  Alcotest.(check bool) "masked gt" false (E.leq_masked fig2 ~mask top bot);
  (* differing only outside the mask compares equal under the mask *)
  let dyn = E.of_names_up fig2 [ "dynamic" ] in
  Alcotest.(check bool) "outside mask ignored" true
    (E.leq_masked fig2 ~mask dyn bot && E.leq_masked fig2 ~mask bot dyn)

let test_embed () =
  let i = Sp.find fig2 "const" in
  let mask = E.singleton_mask fig2 i in
  let top = E.top fig2 in
  let e = E.embed_bottom fig2 ~mask top in
  (* const coordinate from top (present), everything else at bottom *)
  Alcotest.(check bool) "const kept" true (E.has fig2 i e);
  Alcotest.(check bool) "dynamic dropped" false (E.has_name fig2 "dynamic" e);
  Alcotest.(check bool) "nonzero at bottom (present)" true
    (E.has_name fig2 "nonzero" e);
  let e' = E.embed_top fig2 ~mask (E.bottom fig2) in
  Alcotest.(check bool) "const absent kept" false (E.has fig2 i e');
  Alcotest.(check bool) "dynamic at top" true (E.has_name fig2 "dynamic" e')

let test_annot_assert_builders () =
  (* annotation: built up from bottom *)
  let a = E.of_names_up fig2 [ "const" ] in
  Alcotest.(check bool) "annot const" true (E.has_name fig2 "const" a);
  Alcotest.(check bool) "annot keeps nonzero (bottom)" true
    (E.has_name fig2 "nonzero" a);
  (* assertion bound: built down from top *)
  let b = E.of_names_bound fig2 [ "const" ] in
  Alcotest.(check bool) "bound forbids const" false (E.has_name fig2 "const" b);
  Alcotest.(check bool) "bound keeps dynamic" true (E.has_name fig2 "dynamic" b)

let test_max_size () =
  let quals = List.init 61 (fun i -> Qualifier.positive (Printf.sprintf "q%d" i)) in
  Alcotest.check_raises "too many qualifiers"
    (Invalid_argument "Lattice.Space.create: at most 60 qualifiers")
    (fun () -> ignore (Sp.create quals));
  (* exactly 60 is fine *)
  let sp = Sp.create (List.filteri (fun i _ -> i < 60) quals) in
  Alcotest.(check int) "60 ok" 60 (Sp.size sp)

let tests =
  [
    Alcotest.test_case "space basics" `Quick test_space_basics;
    Alcotest.test_case "duplicate qualifier rejected" `Quick test_space_dup;
    Alcotest.test_case "unknown qualifier raises" `Quick test_space_unknown;
    Alcotest.test_case "bottom and top" `Quick test_bottom_top;
    Alcotest.test_case "figure 2 ordering" `Quick test_fig2_order;
    Alcotest.test_case "not_ (the paper's ¬q)" `Quick test_not;
    Alcotest.test_case "lattice laws (exhaustive)" `Quick test_lattice_laws;
    Alcotest.test_case "masked comparison" `Quick test_masked;
    Alcotest.test_case "embeddings" `Quick test_embed;
    Alcotest.test_case "annotation/assertion builders" `Quick
      test_annot_assert_builders;
    Alcotest.test_case "space size limit" `Quick test_max_size;
  ]
