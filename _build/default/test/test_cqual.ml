(* Tests for const inference over C (Section 4): the ℓ translation,
   (Assign') through pointers, struct field sharing, typedef independence,
   library conservatism, casts, and the mono/poly difference. *)

open Cqual

let run ?(mode = Analysis.Mono) ?rules src =
  try Driver.run_source ~mode ?rules src
  with Driver.Error m -> Alcotest.failf "driver error: %s\nin:\n%s" m src

let results ?mode src = (run ?mode src).Driver.results

(* find the verdict of a specific position *)
let verdict_of ?mode src fname where level =
  let r = results ?mode src in
  match
    List.find_opt
      (fun ((p : Report.position), _) ->
        p.p_fun = fname && p.p_level = level
        &&
        match (p.p_where, where) with
        | Report.Param (i, _), `Param j -> i = j
        | Report.Ret, `Ret -> true
        | _ -> false)
      r.Report.positions
  with
  | Some (_, v) -> v
  | None ->
      Alcotest.failf "no position %s/%s/level %d" fname
        (match where with `Param i -> string_of_int i | `Ret -> "ret")
        level

let check_verdict ?mode src fname where level expected =
  let v = verdict_of ?mode src fname where level in
  Alcotest.(check string)
    (Printf.sprintf "%s %s" fname
       (match where with `Param i -> Printf.sprintf "param%d" i | `Ret -> "ret"))
    (Fmt.str "%a" Report.pp_verdict expected)
    (Fmt.str "%a" Report.pp_verdict v)

(* ---------------- the paper's Section 4.1 examples ---------------- *)

let test_const_int_assign () =
  (* int x; const int y; x = y;  — y's constness does not affect x *)
  let r = results "void f(void) { int x; const int y = 1; x = y; }" in
  Alcotest.(check int) "no type errors" 0 r.Report.type_errors

let test_ptr_to_const_promotion () =
  (* int *x; const int *y; y = x;  — standard subtyping after ℓ *)
  let r = results "void f(void) { int *x; const int *y; y = x; }" in
  Alcotest.(check int) "no type errors" 0 r.Report.type_errors

let test_write_through_const_rejected () =
  let r = results "void f(const int *p) { *p = 1; }" in
  Alcotest.(check bool) "type error" true (r.Report.type_errors > 0)

let test_assign_const_var_rejected () =
  let r = results "void f(void) { const int y = 1; y = 2; }" in
  Alcotest.(check bool) "type error" true (r.Report.type_errors > 0)

let test_const_flow_caught () =
  (* storing a pointer-to-const into a pointer that is written through *)
  let src =
    "void f(const char *s) { char *p; p = s; *p = 'x'; }"
  in
  let r = results src in
  Alcotest.(check bool) "type error" true (r.Report.type_errors > 0)

(* ---------------- classification ---------------- *)

let test_writer_param_nonconst () =
  check_verdict "void f(int *p) { *p = 1; }" "f" (`Param 0) 1
    Report.Must_not_const

let test_reader_param_either () =
  check_verdict "int f(int *p) { return *p; }" "f" (`Param 0) 1 Report.Either

let test_declared_const_must () =
  check_verdict "int f(const int *p) { return *p; }" "f" (`Param 0) 1
    Report.Must_const

let test_declared_counted () =
  let r =
    results
      "int f(const char *a, char *b, int c) { return *a + *b + c; }"
  in
  Alcotest.(check int) "total" 2 r.Report.total;
  Alcotest.(check int) "declared" 1 r.Report.declared;
  Alcotest.(check int) "possible" 2 r.Report.possible

let test_two_level_positions () =
  let r = results "void f(char **v) { }" in
  Alcotest.(check int) "two levels" 2 r.Report.total

let test_return_position () =
  let r = results "char *f(char *p) { return p; }" in
  (* one param level + one return level *)
  Alcotest.(check int) "total" 2 r.Report.total

let test_flow_through_call () =
  (* g writes through its parameter; f passes its own parameter down, so
     f's parameter must also be non-const *)
  let src = "void g(int *q) { *q = 1; } void f(int *p) { g(p); }" in
  check_verdict src "f" (`Param 0) 1 Report.Must_not_const

let test_address_of_write () =
  let src = "void f(int *p) { int **pp = &p; **pp = 3; }" in
  check_verdict src "f" (`Param 0) 1 Report.Must_not_const

(* ---------------- struct sharing (Section 4.2) ---------------- *)

let test_struct_field_shared () =
  (* all variables of one struct type share the field qualifiers
     (Section 4.2): a const flowing into x->data's target meets the write
     through y->data's target — distinct variables, same shared field *)
  let shared =
    "struct buf { char *data; };\n\
     void f(struct buf *x, const char *s) { x->data = s; }\n\
     void g(struct buf *y) { *(y->data) = 'c'; }"
  in
  Alcotest.(check bool) "sharing detected" true
    ((results shared).Report.type_errors > 0);
  (* sanity: with two separate struct types there is no conflict *)
  let separate =
    "struct buf1 { char *data; };\n\
     struct buf2 { char *data; };\n\
     void f(struct buf1 *x, const char *s) { x->data = s; }\n\
     void g(struct buf2 *y) { *(y->data) = 'c'; }"
  in
  Alcotest.(check int) "no conflict across types" 0
    (results separate).Report.type_errors;
  (* and a declared-const field rejects writes through any instance *)
  let declared =
    "struct rec { const char *name; };\n\
     void w(struct rec *r) { *(r->name) = 'x'; }"
  in
  Alcotest.(check bool) "declared const field enforced" true
    ((results declared).Report.type_errors > 0)

let test_struct_toplevel_independent () =
  (* writing b itself (whole-struct assignment) does not force a *)
  let src =
    "struct st { int x; };\n\
     void f(struct st *pa, struct st *pb) { *pb = *pa; }"
  in
  check_verdict src "f" (`Param 0) 1 Report.Either;
  check_verdict src "f" (`Param 1) 1 Report.Must_not_const

let test_member_write_through_const_struct () =
  let src = "struct st { int x; }; void f(const struct st *p) { p->x = 1; }" in
  let r = results src in
  Alcotest.(check bool) "type error" true (r.Report.type_errors > 0)

let test_typedef_no_sharing () =
  (* typedefs are macro-expanded: c and d share no qualifiers *)
  let src =
    "typedef int *ip;\n\
     void f(ip c, ip d) { *c = 1; }"
  in
  check_verdict src "f" (`Param 0) 1 Report.Must_not_const;
  check_verdict src "f" (`Param 1) 1 Report.Either

(* ---------------- library functions (Section 4.2) ---------------- *)

let test_library_const_param_safe () =
  let src =
    "int strlen(const char *s);\n\
     int f(char *p) { return strlen(p); }"
  in
  check_verdict src "f" (`Param 0) 1 Report.Either

let test_library_nonconst_param_forces () =
  let src =
    "char *gets(char *buf);\n\
     void f(char *p) { gets(p); }"
  in
  check_verdict src "f" (`Param 0) 1 Report.Must_not_const

let test_undeclared_function_forces () =
  let src = "void f(char *p) { mystery(p); }" in
  check_verdict src "f" (`Param 0) 1 Report.Must_not_const

let test_varargs_extra_args_ignored () =
  (* Section 4.2: "we simply ignore extra arguments" — so printing a
     const string through printf's ... is fine, and the pointer can still
     be const *)
  let src =
    "int printf(const char *fmt, ...);\n\
     void f(char *p) { printf(\"%s\", p); }"
  in
  check_verdict src "f" (`Param 0) 1 Report.Either;
  let r =
    results
      "int printf(const char *fmt, ...);\n\
       const char *version(void) { return \"1.0\"; }\n\
       void show(void) { printf(\"%s\", version()); }"
  in
  Alcotest.(check int) "const through varargs is legal" 0 r.Report.type_errors

let test_library_result_fresh_per_call () =
  (* two calls to the same library function must not alias their results *)
  let src =
    "char *strchr(const char *s, int c);\n\
     void f(char *a, const char *b) {\n\
     char *x = strchr(a, 1); *x = 'y';\n\
     const char *y = strchr(b, 2);\n\
     }"
  in
  let r = results src in
  Alcotest.(check int) "no type errors" 0 r.Report.type_errors

(* ---------------- casts (Section 4.2) ---------------- *)

let test_cast_loses_association () =
  (* the classic strchr trick: cast away const; no type error, and the
     caller's const pointer is unaffected by the write *)
  let src =
    "void f(const char *s) { char *p = (char *)s; *p = 'x'; }"
  in
  let r = results src in
  Alcotest.(check int) "no type errors" 0 r.Report.type_errors;
  check_verdict src "f" (`Param 0) 1 Report.Must_const

let test_void_star_erases () =
  let src =
    "void *memset(void *dst, int c, int n);\n\
     void f(int *p) { memset(p, 0, 4); }"
  in
  (* memset's dst is not declared const: p forced non-const *)
  check_verdict src "f" (`Param 0) 1 Report.Must_not_const

(* ---------------- mono vs poly (Sections 4.3-4.4) ---------------- *)

let poly_wins_src =
  "char *first(char *s) { return s; }\n\
   void writer(void) { char buf[4]; char *p; p = first(buf); *p = 'x'; }\n\
   void reader(char *msg) { char *q; q = first(msg); }"

let test_mono_conflates () =
  (* monomorphically, writer's use forces first's parameter non-const,
     which poisons reader's msg *)
  check_verdict ~mode:Analysis.Mono poly_wins_src "reader" (`Param 0) 1
    Report.Must_not_const

let test_poly_separates () =
  check_verdict ~mode:Analysis.Poly poly_wins_src "reader" (`Param 0) 1
    Report.Either

let test_poly_counts_more () =
  let mono = results ~mode:Analysis.Mono poly_wins_src in
  let poly = results ~mode:Analysis.Poly poly_wins_src in
  Alcotest.(check bool) "poly > mono"
    true
    (poly.Report.possible > mono.Report.possible);
  Alcotest.(check int) "same total" mono.Report.total poly.Report.total;
  Alcotest.(check int) "no errors mono" 0 mono.Report.type_errors;
  Alcotest.(check int) "no errors poly" 0 poly.Report.type_errors

let test_poly_still_sound () =
  (* polymorphism must not lose the flow inside one instantiation *)
  let src =
    "char *first(char *s) { return s; }\n\
     void w(char *msg) { char *p; p = first(msg); *p = 'x'; }"
  in
  check_verdict ~mode:Analysis.Poly src "w" (`Param 0) 1 Report.Must_not_const

let test_mutual_recursion () =
  let src =
    "int odd(int n);\n\
     int even(int n) { if (n == 0) return 1; return odd(n - 1); }\n\
     int odd(int n) { if (n == 0) return 0; return even(n - 1); }\n\
     void use(char *p) { even(3); }"
  in
  let mono = results ~mode:Analysis.Mono src in
  let poly = results ~mode:Analysis.Poly src in
  Alcotest.(check int) "no errors mono" 0 mono.Report.type_errors;
  Alcotest.(check int) "no errors poly" 0 poly.Report.type_errors

let test_recursive_poly () =
  (* a directly recursive function is its own SCC and stays monomorphic
     within itself, but is polymorphic across callers *)
  let src =
    "char *skip(char *s, int n) { if (n == 0) return s; return skip(s + 1, n - 1); }\n\
     void writer(void) { char b[4]; char *p; p = skip(b, 1); *p = 'x'; }\n\
     void reader(char *m) { skip(m, 2); }"
  in
  check_verdict ~mode:Analysis.Poly src "reader" (`Param 0) 1 Report.Either;
  check_verdict ~mode:Analysis.Mono src "reader" (`Param 0) 1
    Report.Must_not_const

let test_globals_monomorphic () =
  (* flows through a global variable are monomorphic even in poly mode *)
  let src =
    "char *stash;\n\
     char *id(char *p) { stash = p; return stash; }\n\
     void writer(void) { char b[4]; char *q; q = id(b); *q = 'x'; }\n\
     void reader(char *m) { id(m); }"
  in
  (* the global conflates the instances: reader's m reaches stash, stash is
     written through by writer's q *)
  check_verdict ~mode:Analysis.Poly src "reader" (`Param 0) 1
    Report.Must_not_const

(* ---------------- FDG (Definition 4) ---------------- *)

let test_fdg_order () =
  let src =
    "int c(void) { return 1; }\n\
     int b(void) { return c(); }\n\
     int a(void) { return b(); }"
  in
  let prog = Driver.compile src in
  let fdg = Fdg.build prog in
  Alcotest.(check int) "3 sccs" 3 (Fdg.scc_count fdg);
  (* reverse topological: callee first *)
  Alcotest.(check (list (list string)))
    "order" [ [ "c" ]; [ "b" ]; [ "a" ] ] fdg.Fdg.sccs

let test_fdg_scc () =
  let src =
    "int odd(int n);\n\
     int even(int n) { return odd(n); }\n\
     int odd(int n) { return even(n); }\n\
     int main(void) { return even(2); }"
  in
  let prog = Driver.compile src in
  let fdg = Fdg.build prog in
  Alcotest.(check int) "2 sccs" 2 (Fdg.scc_count fdg);
  Alcotest.(check int) "largest = 2" 2 (Fdg.largest_scc fdg);
  (match fdg.Fdg.sccs with
  | [ scc1; [ "main" ] ] ->
      Alcotest.(check (list string))
        "mutual pair" [ "even"; "odd" ]
        (List.sort compare scc1)
  | _ -> Alcotest.fail "scc shape")

let test_fdg_function_pointer_mention () =
  (* taking a function's address is an occurrence (Definition 4) *)
  let src =
    "int cb(int x) { return x; }\n\
     void install(void) { int (*f)(int) = cb; }"
  in
  let prog = Driver.compile src in
  let fdg = Fdg.build prog in
  match fdg.Fdg.sccs with
  | [ [ "cb" ]; [ "install" ] ] -> ()
  | sccs ->
      Alcotest.failf "unexpected sccs: %a"
        Fmt.(list (list string)) sccs

(* ---------------- misc robustness ---------------- *)

let test_function_pointer_call () =
  let src =
    "void wr(char *p) { *p = 1; }\n\
     void f(char *q) { void (*fp)(char *) = wr; fp(q); }"
  in
  check_verdict src "f" (`Param 0) 1 Report.Must_not_const

let test_global_init_flow () =
  let src =
    "const char *version = \"1.0\";\n\
     void f(void) { const char *v = version; }"
  in
  let r = results src in
  Alcotest.(check int) "no errors" 0 r.Report.type_errors

let test_no_positions_for_library () =
  (* only defined functions contribute positions *)
  let src = "int strlen(const char *s); int f(int x) { return x; }" in
  let r = results src in
  Alcotest.(check int) "no interesting positions" 0 r.Report.total

let test_array_param_decays () =
  let src = "void f(char buf[10]) { buf[0] = 'x'; }" in
  check_verdict src "f" (`Param 0) 1 Report.Must_not_const

let test_string_into_const () =
  let src = "void f(void) { const char *s = \"hi\"; }" in
  Alcotest.(check int) "ok" 0 (results src).Report.type_errors

let tests =
  [
    Alcotest.test_case "4.1: x = y with const y" `Quick test_const_int_assign;
    Alcotest.test_case "4.1: y = x pointer promotion" `Quick
      test_ptr_to_const_promotion;
    Alcotest.test_case "write through const rejected" `Quick
      test_write_through_const_rejected;
    Alcotest.test_case "assign to const var rejected" `Quick
      test_assign_const_var_rejected;
    Alcotest.test_case "const flow through alias caught" `Quick
      test_const_flow_caught;
    Alcotest.test_case "writer param is non-const" `Quick
      test_writer_param_nonconst;
    Alcotest.test_case "reader param could be const" `Quick
      test_reader_param_either;
    Alcotest.test_case "declared const is must-const" `Quick
      test_declared_const_must;
    Alcotest.test_case "declared/possible counting" `Quick
      test_declared_counted;
    Alcotest.test_case "char** has two positions" `Quick
      test_two_level_positions;
    Alcotest.test_case "return positions counted" `Quick test_return_position;
    Alcotest.test_case "flow through a call" `Quick test_flow_through_call;
    Alcotest.test_case "write through address-of" `Quick
      test_address_of_write;
    Alcotest.test_case "4.2: struct fields shared" `Quick
      test_struct_field_shared;
    Alcotest.test_case "4.2: struct top-level independent" `Quick
      test_struct_toplevel_independent;
    Alcotest.test_case "member write through const struct" `Quick
      test_member_write_through_const_struct;
    Alcotest.test_case "4.2: typedefs share nothing" `Quick
      test_typedef_no_sharing;
    Alcotest.test_case "4.2: library const param safe" `Quick
      test_library_const_param_safe;
    Alcotest.test_case "4.2: library non-const param forces" `Quick
      test_library_nonconst_param_forces;
    Alcotest.test_case "undeclared function forces" `Quick
      test_undeclared_function_forces;
    Alcotest.test_case "4.2: varargs extras ignored" `Quick
      test_varargs_extra_args_ignored;
    Alcotest.test_case "library results fresh per call" `Quick
      test_library_result_fresh_per_call;
    Alcotest.test_case "4.2: casts lose the association" `Quick
      test_cast_loses_association;
    Alcotest.test_case "void* erases structure" `Quick test_void_star_erases;
    Alcotest.test_case "mono conflates call sites" `Quick test_mono_conflates;
    Alcotest.test_case "4.3: poly separates call sites" `Quick
      test_poly_separates;
    Alcotest.test_case "4.4: poly counts more consts" `Quick
      test_poly_counts_more;
    Alcotest.test_case "poly still catches per-instance flows" `Quick
      test_poly_still_sound;
    Alcotest.test_case "mutual recursion analyzed" `Quick
      test_mutual_recursion;
    Alcotest.test_case "recursion mono inside, poly outside" `Quick
      test_recursive_poly;
    Alcotest.test_case "4.3: globals stay monomorphic" `Quick
      test_globals_monomorphic;
    Alcotest.test_case "FDG reverse topological order" `Quick test_fdg_order;
    Alcotest.test_case "FDG SCCs (Definition 4)" `Quick test_fdg_scc;
    Alcotest.test_case "FDG counts function-pointer mentions" `Quick
      test_fdg_function_pointer_mention;
    Alcotest.test_case "call through function pointer" `Quick
      test_function_pointer_call;
    Alcotest.test_case "global initializer flow" `Quick test_global_init_flow;
    Alcotest.test_case "library functions contribute no positions" `Quick
      test_no_positions_for_library;
    Alcotest.test_case "array parameters decay" `Quick test_array_param_decays;
    Alcotest.test_case "string literal into const char*" `Quick
      test_string_into_const;
  ]

(* ---------------- polymorphic recursion (extension) ---------------- *)

(* m1 and m2 are mutually recursive; m1 writes through the result of its
   in-SCC call to m2. Per-SCC let-polymorphism (plain Poly) is monomorphic
   *inside* the SCC, so the write poisons m2's parameter in the scheme and
   every external caller inherits it. Polymorphic recursion instantiates
   even the in-SCC call, so only m1's instance is poisoned. *)
let polyrec_src =
  "char *m2(char *s, int n);\n\
   int m1(char *q, int n) {\n\
   char buf[4];\n\
   char *p;\n\
   p = m2(buf, n);\n\
   *p = 'x';\n\
   if (n) return m1(q, n - 1);\n\
   return 0;\n\
   }\n\
   char *m2(char *s, int n) { if (n > 5) m1(s, 0); return s; }\n\
   int reader(char *msg) { char *t; t = m2(msg, 0); return *t; }"

let test_polyrec_beats_poly () =
  check_verdict ~mode:Analysis.Poly polyrec_src "reader" (`Param 0) 1
    Report.Must_not_const;
  check_verdict ~mode:Analysis.Polyrec polyrec_src "reader" (`Param 0) 1
    Report.Either;
  (* and it is still sound: the buffer m1 writes through stays poisoned *)
  check_verdict ~mode:Analysis.Polyrec polyrec_src "m2" (`Param 0) 1
    Report.Either

let test_polyrec_sound_on_self_recursion () =
  let src =
    "char *skip(char *s, int n) { if (n == 0) return s; return skip(s + 1, n - 1); }\n\
     void writer(void) { char b[4]; char *p; p = skip(b, 1); *p = 'x'; }\n\
     int reader(char *m) { return *(skip(m, 2)); }"
  in
  check_verdict ~mode:Analysis.Polyrec src "reader" (`Param 0) 1 Report.Either;
  (* per-instance flows still caught *)
  let bad =
    "char *skip(char *s, int n) { if (n == 0) return s; return skip(s + 1, n - 1); }\n\
     void w(char *msg) { char *p; p = skip(msg, 1); *p = 'x'; }"
  in
  check_verdict ~mode:Analysis.Polyrec bad "w" (`Param 0) 1
    Report.Must_not_const

let test_polyrec_at_least_poly () =
  (* polymorphic recursion never allows fewer consts than let-polymorphism *)
  List.iter
    (fun (_, src) ->
      let p = results ~mode:Analysis.Poly src in
      let pr = results ~mode:Analysis.Polyrec src in
      Alcotest.(check int) "no new errors" p.Report.type_errors
        pr.Report.type_errors;
      Alcotest.(check bool) "polyrec >= poly" true
        (pr.Report.possible >= p.Report.possible);
      Alcotest.(check int) "same total" p.Report.total pr.Report.total)
    Cbench.Programs.all

let test_polyrec_converges_on_suite () =
  let src = Cbench.Gen.generate ~seed:5 ~target_lines:800 () in
  let p = results ~mode:Analysis.Poly src in
  let pr = results ~mode:Analysis.Polyrec src in
  Alcotest.(check int) "no errors" 0 pr.Report.type_errors;
  Alcotest.(check bool) "polyrec >= poly" true
    (pr.Report.possible >= p.Report.possible)

let polyrec_tests =
  [
    Alcotest.test_case "polyrec separates in-SCC call sites" `Quick
      test_polyrec_beats_poly;
    Alcotest.test_case "polyrec sound on self recursion" `Quick
      test_polyrec_sound_on_self_recursion;
    Alcotest.test_case "polyrec >= poly on embedded programs" `Quick
      test_polyrec_at_least_poly;
    Alcotest.test_case "polyrec converges on generated code" `Quick
      test_polyrec_converges_on_suite;
  ]

let tests = tests @ polyrec_tests

(* ---------------- C taint analysis ($-qualifiers, Section 2.5) ------- *)

let taint ?(mode = Analysis.Mono) src =
  (run ~mode ~rules:Analysis.taint_rules src).Driver.results

let run_taint ?(mode = Analysis.Mono) src =
  try
    (Driver.run_source ~mode ~rules:Analysis.taint_rules src).Driver.results
  with Driver.Error m -> Alcotest.failf "driver error: %s" m

let test_taint_source_to_sink () =
  (* format-string-bug shape: network data reaches a trusted sink *)
  let bad =
    "$tainted char *read_net(char *buf);\n\
     int run_cmd($untainted const char *cmd);\n\
     void handler(char *b) { char *s; s = read_net(b); run_cmd(s); }"
  in
  Alcotest.(check bool) "flagged" true
    ((run_taint bad).Report.type_errors > 0);
  let good =
    "$tainted char *read_net(char *buf);\n\
     int run_cmd($untainted const char *cmd);\n\
     void handler(char *b) { char *s; s = read_net(b); run_cmd(\"ls\"); }"
  in
  Alcotest.(check int) "clean program passes" 0
    (run_taint good).Report.type_errors

let test_taint_through_defined_functions () =
  (* taint tracked through ordinary code, including a logging helper *)
  let bad =
    "$tainted char *read_net(char *buf);\n\
     int run_cmd($untainted const char *cmd);\n\
     char *pick(char *a) { return a; }\n\
     void handler(char *b) { char *s; s = pick(read_net(b)); run_cmd(s); }"
  in
  Alcotest.(check bool) "flow through helper flagged" true
    ((run_taint bad).Report.type_errors > 0)

let test_taint_defined_sink () =
  let bad =
    "$tainted char *read_net(char *buf);\n\
     void exec_trusted($untainted char *cmd) { }\n\
     void handler(char *b) { exec_trusted(read_net(b)); }"
  in
  Alcotest.(check bool) "defined sink flagged" true
    ((run_taint bad).Report.type_errors > 0)

let test_taint_poly_separates () =
  (* one helper used with both tainted and untainted data: poly keeps the
     trusted path clean, mono poisons it *)
  let src =
    "$tainted char *read_net(char *buf);\n\
     int run_cmd($untainted const char *cmd);\n\
     char *pick(char *a) { return a; }\n\
     void audit(char *b) { char *t; t = pick(read_net(b)); }\n\
     void act(char *safe) { run_cmd(pick(safe)); }"
  in
  Alcotest.(check bool) "mono conflates" true
    ((taint ~mode:Analysis.Mono src).Report.type_errors > 0);
  Alcotest.(check int) "poly separates" 0
    (taint ~mode:Analysis.Poly src).Report.type_errors

let test_taint_report_counts () =
  let src =
    "$tainted char *read_net(char *buf);\n\
     int handle(char *input) { char *s; s = read_net(input); return *s; }"
  in
  let r = run_taint src in
  (* handle's parameter could be tainted or not: Either on 'tainted' *)
  Alcotest.(check int) "no errors" 0 r.Report.type_errors;
  Alcotest.(check bool) "positions reported" true (r.Report.total >= 1)

let taint_tests =
  [
    Alcotest.test_case "taint: source to sink flagged" `Quick
      test_taint_source_to_sink;
    Alcotest.test_case "taint: flows through defined code" `Quick
      test_taint_through_defined_functions;
    Alcotest.test_case "taint: defined sinks" `Quick test_taint_defined_sink;
    Alcotest.test_case "taint: polymorphism separates helpers" `Quick
      test_taint_poly_separates;
    Alcotest.test_case "taint: reporting" `Quick test_taint_report_counts;
  ]

let tests = tests @ taint_tests

(* ---------------- robustness over generated benchmarks --------------- *)

let test_generated_seeds_clean () =
  (* the generator must emit parseable, type-correct C across seeds, and
     every mode must agree on totals with no type errors *)
  List.iter
    (fun seed ->
      let src = Cbench.Gen.generate ~seed ~target_lines:350 () in
      let m = results ~mode:Analysis.Mono src in
      let p = results ~mode:Analysis.Poly src in
      let pr = results ~mode:Analysis.Polyrec src in
      Alcotest.(check int) (Printf.sprintf "seed %d mono errors" seed) 0
        m.Report.type_errors;
      Alcotest.(check int) (Printf.sprintf "seed %d poly errors" seed) 0
        p.Report.type_errors;
      Alcotest.(check int) (Printf.sprintf "seed %d polyrec errors" seed) 0
        pr.Report.type_errors;
      Alcotest.(check int) "totals agree (m=p)" m.Report.total p.Report.total;
      Alcotest.(check int) "totals agree (p=pr)" p.Report.total
        pr.Report.total;
      Alcotest.(check bool) "ordering" true
        (m.Report.declared <= m.Report.possible
        && m.Report.possible <= p.Report.possible
        && p.Report.possible <= pr.Report.possible
        && pr.Report.possible <= pr.Report.total))
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

(* ---------------- more C patterns ---------------- *)

let test_deep_pointer_const () =
  (* three levels; middle level declared const *)
  let src = "int f(int * const **ppp) { return ***ppp; }" in
  let r = results src in
  Alcotest.(check int) "three positions" 3 r.Report.total;
  (* declared const at level 2 (the target of the level-1 ref is an
     int * const) *)
  Alcotest.(check int) "one declared" 1 r.Report.declared

let test_callback_table () =
  (* a struct of function pointers: calls through fields link correctly *)
  let src =
    "struct ops { void (*write)(char *dst); int (*read)(const char *src); };\n\
     void dispatch(struct ops *o, char *buf) {\n\
     o->write(buf);\n\
     o->read(buf);\n\
     }\n\
     void wr(char *d) { *d = 'x'; }\n\
     void install(struct ops *o) { o->write = wr; }"
  in
  (* buf is passed to the write callback whose canonical implementation
     writes: through the shared field signature, buf must be non-const *)
  check_verdict src "dispatch" (`Param 1) 1 Report.Must_not_const

let test_cond_pointer_merge () =
  let src =
    "char *sel(int c, char *a, char *b) { return c ? a : b; }\n\
     void w(char *x, char *y) { char *p; p = sel(1, x, y); *p = 'q'; }"
  in
  (* the write through the merged pointer reaches both inputs *)
  check_verdict src "w" (`Param 0) 1 Report.Must_not_const;
  check_verdict src "w" (`Param 1) 1 Report.Must_not_const

let test_global_array_of_structs () =
  let src =
    "struct e { char *name; };\n\
     struct e table[4];\n\
     void init(char *n) { table[0].name = n; *(table[1].name) = 'x'; }"
  in
  (* writing through entry 1's name forces the shared field target, which
     n flows into via entry 0 *)
  check_verdict src "init" (`Param 0) 1 Report.Must_not_const

let test_self_assign_and_arith () =
  let src = "void f(char *p, int n) { p = p + n; p++; *p = 1; }" in
  let r = results src in
  Alcotest.(check int) "no errors" 0 r.Report.type_errors;
  check_verdict src "f" (`Param 0) 1 Report.Must_not_const

let test_string_literal_write () =
  (* C89 string literals are plain char[]; writing through is accepted by
     the type system (it is a runtime error, not a type error) *)
  let src = "void f(void) { char *s = \"hi\"; *s = 'H'; }" in
  Alcotest.(check int) "accepted" 0 (results src).Report.type_errors

let test_void_function_pointer_roundtrip () =
  let src =
    "void *stash;\n\
     void put(char *p) { stash = p; }\n\
     char *get(void) { return (char *)stash; }\n\
     void use(void) { char *q = get(); *q = 'x'; }"
  in
  (* the void* laundering loses the flow — documented information loss *)
  Alcotest.(check int) "no errors" 0 (results src).Report.type_errors

let more_cqual_tests =
  [
    Alcotest.test_case "generated benchmarks clean across seeds" `Slow
      test_generated_seeds_clean;
    Alcotest.test_case "deep pointer const levels" `Quick
      test_deep_pointer_const;
    Alcotest.test_case "callback tables" `Quick test_callback_table;
    Alcotest.test_case "?: pointer merge" `Quick test_cond_pointer_merge;
    Alcotest.test_case "global array of structs" `Quick
      test_global_array_of_structs;
    Alcotest.test_case "pointer arithmetic and self-assignment" `Quick
      test_self_assign_and_arith;
    Alcotest.test_case "string literal writes (C89)" `Quick
      test_string_literal_write;
    Alcotest.test_case "void* roundtrip loses flow" `Quick
      test_void_function_pointer_roundtrip;
  ]

let tests = tests @ more_cqual_tests

(* ---------------- embedded program corpus ---------------- *)

let test_embedded_programs_clean () =
  (* every embedded program is correct C: no type errors in any mode, and
     the invariant chain declared <= mono <= poly <= polyrec <= total *)
  List.iter
    (fun (name, src) ->
      let m = results ~mode:Analysis.Mono src in
      let p = results ~mode:Analysis.Poly src in
      let pr = results ~mode:Analysis.Polyrec src in
      Alcotest.(check int) (name ^ " mono errors") 0 m.Report.type_errors;
      Alcotest.(check int) (name ^ " poly errors") 0 p.Report.type_errors;
      Alcotest.(check int) (name ^ " polyrec errors") 0 pr.Report.type_errors;
      Alcotest.(check bool) (name ^ " ordering") true
        (m.Report.declared <= m.Report.possible
        && m.Report.possible <= p.Report.possible
        && p.Report.possible <= pr.Report.possible
        && pr.Report.possible <= m.Report.total))
    Cbench.Programs.all

let test_minilist_verdicts () =
  let src = List.assoc "minilist" Cbench.Programs.all in
  (* insert_sorted rewires tails: its list parameters can never be const *)
  check_verdict src "insert_sorted" (`Param 0) 1 Report.Must_not_const;
  check_verdict src "insert_sorted" (`Param 1) 1 Report.Must_not_const;
  (* sum only reads, but the shared 'tail' field aliasing in mono poisons
     nothing: its parameter stays possible under poly *)
  let v = verdict_of ~mode:Analysis.Poly src "sum" (`Param 0) 1 in
  Alcotest.(check bool) "sum readable" true (v <> Report.Must_not_const)

let test_miniconf_verdicts () =
  let src = List.assoc "miniconf" Cbench.Programs.all in
  check_verdict src "skip_ws" (`Param 0) 1 Report.Must_const;
  check_verdict src "copy_until" (`Param 0) 1 Report.Must_not_const;
  check_verdict src "copy_until" (`Param 1) 1 Report.Must_const

let embedded_tests =
  [
    Alcotest.test_case "embedded corpus clean in all modes" `Quick
      test_embedded_programs_clean;
    Alcotest.test_case "minilist verdicts" `Quick test_minilist_verdicts;
    Alcotest.test_case "miniconf verdicts" `Quick test_miniconf_verdicts;
  ]

let tests = tests @ embedded_tests
