(* Tests for the example language: parsing, qualified checking (Fig. 4),
   the const rules (Section 2.4), and polymorphism (Section 3.2). *)

open Typequal
module E = Lattice.Elt
module S = Solver
open Qlambda

let parse s =
  match Parse.parse_result s with
  | Ok e -> e
  | Error m -> Alcotest.failf "parse error: %s in %S" m s

let cn = Rules.cn_space
let cn_hooks = Rules.cn_hooks

let checks ?poly ?unsound_ref src =
  Infer.typechecks ~hooks:cn_hooks ?poly ?unsound_ref cn (parse src)

let check_ok ?poly ?unsound_ref src =
  match Infer.check ~hooks:cn_hooks ?poly ?unsound_ref cn (parse src) with
  | Ok r -> r
  | Error msgs ->
      Alcotest.failf "expected %S to typecheck; got: %s" src
        (String.concat "; " msgs)

let check_err ?poly ?unsound_ref src =
  if checks ?poly ?unsound_ref src then
    Alcotest.failf "expected %S to be rejected" src

(* ---------------- parsing ---------------- *)

let test_parse_basic () =
  let e = parse "let x = ref 1 in x := !x + 2" in
  Alcotest.(check string)
    "shape" "(let x = (ref 1) in (x := ((!x) + 2)))" (Ast.to_string e)

let test_parse_annot_assert () =
  let e = parse "let y = @[const] ref 1 in (!y)|[nonzero]" in
  match e with
  | Ast.Let (_, Annot ([ ("const", true) ], Ref _), Assert (Deref _, [ ("nonzero", true) ]))
    -> ()
  | _ -> Alcotest.failf "unexpected parse: %s" (Ast.to_string e)

let test_parse_paper_closers () =
  (* the paper's fi/ni closers are accepted and ignored *)
  let a = parse "let x = 1 in if x then 2 else 3 fi ni" in
  let b = parse "let x = 1 in if x then 2 else 3" in
  Alcotest.(check string) "same" (Ast.to_string b) (Ast.to_string a)

let test_parse_seq_sugar () =
  match parse "x := 1; 2" with
  | Ast.Let ("_", Assign _, Int 2) -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.to_string e)

let test_parse_errors () =
  List.iter
    (fun src ->
      match Parse.parse_result src with
      | Error _ -> ()
      | Ok e -> Alcotest.failf "expected parse error for %S, got %s" src
                  (Ast.to_string e))
    [ "let x = in 1"; "(1"; "fun -> x"; "@const 1"; "1 ? 2"; "if 1 then 2" ]

let test_parse_tilde () =
  match parse "@[~nonzero] 0" with
  | Ast.Annot ([ ("nonzero", false) ], Int 0) -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.to_string e)

(* ---------------- basic qualified typing ---------------- *)

let test_plain_program () = ignore (check_ok "let x = ref 1 in x := 2")

let test_const_assign_rejected () =
  (* Assign': the LHS of an assignment must be non-const *)
  check_err "let x = @[const] ref 1 in x := 2"

let test_const_read_ok () =
  ignore (check_ok "let x = @[const] ref 41 in !x + 1")

let test_assert_nonconst () =
  (* the explicit assertion form of the const rule: e|¬const *)
  check_err "let x = @[const] ref 1 in (x |[~const]) := 2";
  ignore (check_ok "let x = ref 1 in (x |[~const]) := 2")

let test_unbound () = check_err "x := 1"

let test_shape_errors () =
  check_err "1 2";
  check_err "!3";
  check_err "4 := 5";
  check_err "if (fun x -> x) then 1 else 2";
  check_err "(fun x -> x x)" (* occurs check *)

let test_annotation_premise () =
  (* (Annot) requires Q <= l: annotating a const value below const fails *)
  check_err "let x = @[const] ref 1 in let y = @[] x in ()";
  ignore (check_ok "let x = @[const] ref 1 in let y = @[const] x in ()")

let test_assert_nonzero () =
  ignore (check_ok "let n = @[nonzero] 5 in (n |[nonzero])");
  (* a plain literal flows at bottom, which contains nonzero... but 0 is
     pinned not-nonzero by the literal rule *)
  check_err "(0 |[nonzero])";
  ignore (check_ok "(1 |[nonzero])")

let test_division_rule () =
  ignore (check_ok "10 / 2");
  check_err "10 / 0";
  (* a value that may be zero (joined from both branches) cannot divide *)
  check_err "let b = 1 in 10 / (if b then 0 else 2)";
  ignore (check_ok "let b = 1 in 10 / (if b then 3 else 2)")

(* ---------------- the paper's Section 2.4 counterexample ---------------- *)

(* With the sound invariant (SubRef) rule, storing a maybe-zero value into a
   cell whose contents are pinned nonzero is rejected; the unsound covariant
   rule accepts it. *)
let counterexample =
  "let x = ref (@[nonzero] 37) in\n\
   let clear = fun p -> p := @[~nonzero] 0 in\n\
   clear x;\n\
   (!x) |[nonzero]"

let test_subref_sound () = check_err counterexample

let test_subref_unsound_accepts () =
  Alcotest.(check bool) "unsound rule accepts the bad program" true
    (checks ~unsound_ref:true counterexample)

let test_unsound_program_gets_stuck () =
  (* ... and running it gets stuck on the assertion: exactly the soundness
     gap the paper describes. *)
  match Eval.run cn (parse counterexample) with
  | Eval.Stuck_at (Eval.Assertion_failure _) -> ()
  | o -> Alcotest.failf "expected assertion failure, got %a"
           (Eval.pp_outcome cn) o

(* ---------------- polymorphism (Section 3.2) ---------------- *)

(* The paper's id example: one identity function used at const and
   non-const types. *)
let id_example =
  "let id = fun x -> x in\n\
   let y = id (ref 1) in\n\
   let z = id (@[const] ref 1) in\n\
   y := 5"

let test_id_mono_fails () = check_err ~poly:false id_example
let test_id_poly_succeeds () = ignore (check_ok ~poly:true id_example)

let test_poly_instances_fresh () =
  (* two instantiations get distinct qualifier variables *)
  let r = check_ok ~poly:true id_example in
  ignore r

let test_value_restriction () =
  (* a non-value binding is not generalized even under ~poly *)
  let src =
    "let mk = fun u -> ref 1 in\n\
     let c = mk () in\n\
     let d = @[const] c in\n\
     c := 2"
  in
  (* c is bound to an application -> monomorphic; annotating an alias const
     pins... the annotation only checks c's top qualifier <= {const,...},
     and the annotation premise forces nothing on c itself here, so this
     should still typecheck *)
  ignore (check_ok ~poly:true src);
  (* but via a function that writes through its argument after the alias is
     annotated const... use the classic: a cell used at two qualifiers
     through a *non-generalized* binding must be rejected *)
  let src2 =
    "let f = (fun x -> x) (fun x -> x) in\n\
     let y = f (ref 1) in\n\
     let z = f (@[const] ref 1) in\n\
     y := 5"
  in
  (* f is an application, hence monomorphic even in the poly system *)
  check_err ~poly:true src2

let test_poly_shared_cell_still_caught () =
  (* polymorphism must not hide real flows: the same cell used const and
     written through another name *)
  let src =
    "let x = ref 1 in\n\
     let setter = fun v -> x := v in\n\
     let y = @[const] x in\n\
     setter 3"
  in
  (* x itself is written, so x can't be annotated const: the annotation
     premise requires x's qualifier <= {const...}, which is fine (it's an
     upper bound on the *value* read)... but Assign' pins x below ¬const
     only at the assignment's LHS occurrence; annotating the value read
     from x is allowed. This program is fine. *)
  ignore (check_ok ~poly:true src)

let test_nested_lets_poly () =
  let src =
    "let outer = fun u ->\n\
       let inner = fun x -> x in\n\
       inner (inner u)\n\
     in\n\
     let a = outer (ref 1) in\n\
     let b = outer (@[const] ref 2) in\n\
     a := 9"
  in
  ignore (check_ok ~poly:true src)

let test_poly_function_result_const () =
  (* strchr-style: result qualifier tracks argument qualifier per instance *)
  let src =
    "let first = fun p -> p in\n\
     let s = ref 65 in\n\
     let t = @[const] ref 66 in\n\
     let r1 = first s in\n\
     let r2 = first t in\n\
     r1 := 70"
  in
  ignore (check_ok ~poly:true src);
  (* writing through the const instance's result is rejected even with
     polymorphism *)
  let bad =
    "let first = fun p -> p in\n\
     let t = @[const] ref 66 in\n\
     let r2 = first t in\n\
     r2 := 70"
  in
  check_err ~poly:true bad

(* ---------------- strip / Observation 1 ---------------- *)

let test_strip_removes_all () =
  let e = parse "let y = @[const] ref 1 in (!y)|[nonzero]" in
  let s = Ast.strip e in
  let rec clean = function
    | Ast.Annot _ | Ast.Assert _ -> false
    | Ast.Var _ | Int _ | Unit -> true
    | Lam (_, e) | Ref e | Deref e -> clean e
    | App (a, b) | Assign (a, b) | Binop (_, a, b) | Let (_, a, b) ->
        clean a && clean b
    | If (a, b, c) -> clean a && clean b && clean c
  in
  Alcotest.(check bool) "no annotations left" true (clean s)

let test_observation1_examples () =
  (* qualified typability (no hooks, no annotations) coincides with
     standard typability *)
  List.iter
    (fun src ->
      let e = parse src in
      let std = Stype.typable (Ast.strip e) in
      let qual = Infer.typechecks cn e in
      Alcotest.(check bool) (Printf.sprintf "agree on %s" src) std qual)
    [
      "let x = ref 1 in x := 2";
      "fun x -> x x";
      "(fun f -> fun x -> f (f x)) (fun y -> y + 1) 3";
      "if 1 then ref 2 else ref 3";
      "if 1 then ref 2 else 3";
      "let id = fun x -> x in id id";
      "!(ref (fun x -> x)) 4";
    ]

(* ---------------- qualified types of results ---------------- *)

let test_inferred_shape () =
  let r = check_ok "fun x -> !x + 1" in
  let str = Fmt.str "%a" (Qtype.pp_solved r.Infer.store) r.Infer.qtyp in
  (* shape must be a function from ref(int) to int *)
  Alcotest.(check bool)
    (Printf.sprintf "type shape: %s" str)
    true
    (let stripped = Qtype.strip r.Infer.qtyp in
     match Stype.repr stripped with
     | Stype.SFun (a, b) -> (
         match (Stype.repr a, Stype.repr b) with
         | Stype.SRef i, Stype.SInt -> Stype.repr i = Stype.SInt
         | _ -> false)
     | _ -> false)

let test_annot_pins_exactly () =
  let r = check_ok "@[const] ref 1" in
  let q = r.Infer.qtyp.Qtype.q in
  let lo = S.least r.Infer.store q and hi = S.greatest r.Infer.store q in
  Alcotest.(check bool) "lo has const" true (E.has_name cn "const" lo);
  Alcotest.(check bool) "hi has const" true (E.has_name cn "const" hi);
  Alcotest.(check bool) "pinned" true (E.equal lo hi)

let tests =
  [
    Alcotest.test_case "parse basic" `Quick test_parse_basic;
    Alcotest.test_case "parse annot/assert" `Quick test_parse_annot_assert;
    Alcotest.test_case "parse fi/ni closers" `Quick test_parse_paper_closers;
    Alcotest.test_case "parse ; sugar" `Quick test_parse_seq_sugar;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse ~qual" `Quick test_parse_tilde;
    Alcotest.test_case "plain program" `Quick test_plain_program;
    Alcotest.test_case "const assignment rejected (Assign')" `Quick
      test_const_assign_rejected;
    Alcotest.test_case "const read ok" `Quick test_const_read_ok;
    Alcotest.test_case "assertion form of ¬const" `Quick test_assert_nonconst;
    Alcotest.test_case "unbound variable" `Quick test_unbound;
    Alcotest.test_case "shape errors" `Quick test_shape_errors;
    Alcotest.test_case "annotation premise Q <= l" `Quick
      test_annotation_premise;
    Alcotest.test_case "nonzero assertions" `Quick test_assert_nonzero;
    Alcotest.test_case "division requires nonzero" `Quick test_division_rule;
    Alcotest.test_case "SubRef sound: counterexample rejected" `Quick
      test_subref_sound;
    Alcotest.test_case "unsound covariant ref accepts it" `Quick
      test_subref_unsound_accepts;
    Alcotest.test_case "...and the program gets stuck at runtime" `Quick
      test_unsound_program_gets_stuck;
    Alcotest.test_case "id example: mono fails" `Quick test_id_mono_fails;
    Alcotest.test_case "id example: poly succeeds" `Quick
      test_id_poly_succeeds;
    Alcotest.test_case "poly instances independent" `Quick
      test_poly_instances_fresh;
    Alcotest.test_case "value restriction" `Quick test_value_restriction;
    Alcotest.test_case "poly does not hide aliasing" `Quick
      test_poly_shared_cell_still_caught;
    Alcotest.test_case "nested poly lets" `Quick test_nested_lets_poly;
    Alcotest.test_case "poly results track instances" `Quick
      test_poly_function_result_const;
    Alcotest.test_case "strip removes annotations" `Quick
      test_strip_removes_all;
    Alcotest.test_case "Observation 1 on examples" `Quick
      test_observation1_examples;
    Alcotest.test_case "inferred shape" `Quick test_inferred_shape;
    Alcotest.test_case "annotation pins qualifier" `Quick
      test_annot_pins_exactly;
  ]

(* ---------------- nonnull (lclint, Section 1) ---------------- *)

let nn = Rules.nonnull_space
let nn_hooks = Rules.nonnull_hooks

let nn_checks src = Infer.typechecks ~hooks:nn_hooks ~poly:true nn (parse src)

let test_nonnull () =
  (* fresh refs are nonnull: ordinary code is untouched *)
  Alcotest.(check bool) "plain deref fine" true
    (nn_checks "let r = ref 1 in !r + (r := 2; 0)");
  (* a lookup that may return null: its result cannot be dereferenced *)
  Alcotest.(check bool) "nullable deref rejected" false
    (nn_checks
       "let find = fun k -> @[~nonnull] ref 0 in\n\
        !(find 3)");
  (* after re-asserting (modelling a null test), deref is accepted *)
  Alcotest.(check bool) "checked deref ok" true
    (nn_checks
       "let find = fun k -> @[~nonnull] ref 0 in\n\
        let checked = fun p -> (p |[nonnull]) in\n\
        1");
  (* the assertion itself is how lclint-style checks surface: asserting
     nonnull on a maybe-null value is a static error *)
  Alcotest.(check bool) "assert maybe-null rejected" false
    (nn_checks
       "let find = fun k -> @[~nonnull] ref 0 in\n\
        ((find 3) |[nonnull]) := 1")

let nonnull_tests =
  [ Alcotest.test_case "nonnull (lclint)" `Quick test_nonnull ]

let tests = tests @ nonnull_tests
