(* Taint tracking as type qualifiers (the information-flow lineage the
   paper's Section 5 cites: Volpano-Smith security types, the lclint
   annotations, and what later became CQual's format-string-bug detector).

   [tainted] is positive: untainted tau <= tainted tau — untrusted data
   can flow anywhere tainted data is expected, but a value that may be
   tainted must never reach a trusted sink. Sources annotate their results
   [@[tainted]]; sinks assert [|[~tainted]].

   Run with: dune exec examples/taint_tracking.exe *)

open Qlambda
module Space = Typequal.Lattice.Space

let space = Rules.taint_space
let hooks = Rules.taint_hooks

let show src =
  Fmt.pr "@.%s@." src;
  match Infer.check ~hooks ~poly:true space (Parse.parse src) with
  | Ok _ -> Fmt.pr "  => SAFE (typechecks)@."
  | Error (m :: _) -> Fmt.pr "  => FLAGGED: %s@." m
  | Error [] -> ()

let () =
  Fmt.pr "== taint tracking with type qualifiers ==@.";
  Fmt.pr "sources are annotated @[[tainted]]; sinks assert |[[~tainted]]@.";

  (* direct flow from source to sink is caught *)
  show
    "let read_net = fun u -> @[tainted] 42 in\n\
     let exec = fun cmd -> (cmd |[~tainted]) in\n\
     exec (read_net ())";

  (* a sanitizer that returns a genuinely fresh value launders the taint *)
  show
    "let read_net = fun u -> @[tainted] 42 in\n\
     let sanitize = fun x -> if x == 0 then 0 else if x == 1 then 1 else 2 in\n\
     let exec = fun cmd -> (cmd |[~tainted]) in\n\
     exec (sanitize (read_net ()))";

  (* ...but merely clamping does NOT: the clamped branch returns x itself,
     and x + 0 does not launder either (the on_binop rule joins taints) *)
  show
    "let read_net = fun u -> @[tainted] 42 in\n\
     let clamp = fun x -> if 1000 < x then 1000 else x in\n\
     let exec = fun cmd -> (cmd |[~tainted]) in\n\
     exec (clamp (read_net ()) + 0)";

  (* flow through the store is tracked: a tainted value parked in a ref *)
  show
    "let read_net = fun u -> @[tainted] 42 in\n\
     let exec = fun cmd -> (cmd |[~tainted]) in\n\
     let cell = ref 0 in\n\
     cell := read_net ();\n\
     exec (!cell)";

  (* trusted computation on trusted data is fine *)
  show
    "let exec = fun cmd -> (cmd |[~tainted]) in\n\
     let build = fun n -> n * 2 + 1 in\n\
     exec (build 20)";

  (* polymorphism: one logging helper used with both tainted and trusted
     data without poisoning the trusted path *)
  show
    "let log = fun x -> x in\n\
     let read_net = fun u -> @[tainted] 42 in\n\
     let exec = fun cmd -> (cmd |[~tainted]) in\n\
     let t = log (read_net ()) in\n\
     exec (log 7)";

  Fmt.pr
    "@.(note: 'sanitize' launders by construction — every branch returns a \
     fresh literal. A production system would instead TRUST designated \
     sanitizers via annotation, exactly like the paper's sorted example in \
     Section 2.3.)@."
