(* Quickstart: the qualifier framework end to end.

   Run with: dune exec examples/quickstart.exe

   1. define qualifiers and a lattice space;
   2. write a program in the example language with annotations/assertions;
   3. run qualified type inference (monomorphic and polymorphic);
   4. evaluate under the checked operational semantics (Figure 5). *)

open Qlambda
module Q = Typequal.Qualifier
module Space = Typequal.Lattice.Space
module Elt = Typequal.Lattice.Elt
module Solver = Typequal.Solver

let section title = Fmt.pr "@.== %s ==@." title

let () =
  (* ---------------------------------------------------------------- *)
  section "1. Qualifiers and the lattice (Definitions 1-2)";
  (* const is positive (tau <= const tau); nonzero is negative. *)
  let space = Space.create [ Q.const; Q.nonzero ] in
  Fmt.pr "space: %a@."
    Fmt.(list ~sep:comma Typequal.Qualifier.pp_full)
    (Space.quals space);
  Fmt.pr "bottom = %a, top = %a@."
    (Elt.pp_full space) (Elt.bottom space)
    (Elt.pp_full space) (Elt.top space);
  Fmt.pr "the paper's ¬const = %a@." (Elt.pp_full space)
    (Elt.not_name space "const");

  (* ---------------------------------------------------------------- *)
  section "2. Inference with the const rule (Assign')";
  let check ?(poly = false) src =
    let ast = Parse.parse src in
    match Infer.check ~hooks:Rules.cn_hooks ~poly space ast with
    | Ok r ->
        Fmt.pr "OK    %s@.      : %a@." src
          (Qtype.pp_solved r.Infer.store) r.Infer.qtyp
    | Error (m :: _) -> Fmt.pr "FAIL  %s@.      %s@." src m
    | Error [] -> assert false
  in
  check "let x = ref 1 in x := !x + 1; !x";
  (* annotating the cell const makes the update a type error *)
  check "let x = @[const] ref 1 in x := !x + 1; !x";
  (* reading a const cell is fine *)
  check "let x = @[const] ref 41 in !x + 1";

  (* ---------------------------------------------------------------- *)
  section "3. Qualifier polymorphism (Section 3.2)";
  let id_example =
    "let id = fun x -> x in\n\
     let y = id (ref 1) in\n\
     let z = id (@[const] ref 1) in\n\
     y := 5"
  in
  Fmt.pr "the paper's id example:@.%s@." id_example;
  Fmt.pr "- monomorphic: ";
  (match Infer.check ~hooks:Rules.cn_hooks ~poly:false space (Parse.parse id_example) with
  | Ok _ -> Fmt.pr "accepted (unexpected!)@."
  | Error (m :: _) -> Fmt.pr "rejected — %s@." m
  | Error [] -> ());
  Fmt.pr "- polymorphic: ";
  (match Infer.check ~hooks:Rules.cn_hooks ~poly:true space (Parse.parse id_example) with
  | Ok _ -> Fmt.pr "accepted — each use instantiates fresh qualifiers@."
  | Error _ -> Fmt.pr "rejected (unexpected!)@.");

  (* ---------------------------------------------------------------- *)
  section "4. Running programs (Figure 5 semantics)";
  let run src =
    let ast = Parse.parse src in
    Fmt.pr "%s@.  ~> %a@." src (Eval.pp_outcome space) (Eval.run space ast)
  in
  run "let x = ref (@[nonzero] 37) in 100 / !x";
  (* an ill-annotated program gets stuck at the assertion: the type system
     exists exactly to rule this out statically *)
  run "let x = ref (@[~nonzero] 0) in (!x)|[nonzero]";

  (* ---------------------------------------------------------------- *)
  section "5. The solver view";
  let ast = Parse.parse "fun p -> (p := 1; p)" in
  (match Infer.check ~hooks:Rules.cn_hooks space ast with
  | Ok r ->
      Fmt.pr "inferred: %a@." (Qtype.pp_solved r.Infer.store) r.Infer.qtyp;
      Fmt.pr
        "(the parameter's ref is forced non-const by the write, visible in \
         its solved bounds)@."
  | Error _ -> assert false);
  Fmt.pr "@.Done. See examples/binding_time.ml, examples/taint_tracking.ml, \
          examples/const_c.ml for domain-specific uses.@."
