(* Const inference for C (Section 4), on the embedded mini string library.

   This reproduces the paper's introduction story: the standard library's
   strchr takes `const char *s` but returns `char *` pointing into s —
   monomorphic C forces a choice between dropping const and casting, while
   qualifier polymorphism lets one function serve both usages.

   Run with: dune exec examples/const_c.exe *)

open Cqual

let banner title = Fmt.pr "@.== %s ==@." title

let show_run name mode src =
  let r = Driver.run_source ~mode src in
  let res = r.Driver.results in
  Fmt.pr "@.[%s — %s]@." name
    (match mode with
    | Analysis.Mono -> "monomorphic"
    | Poly -> "polymorphic"
    | Polyrec -> "polymorphic-recursive");
  Fmt.pr "  %d interesting positions: %d declared const, %d possible, %d must-not@."
    res.Report.total res.Report.declared res.Report.possible
    (res.Report.total - res.Report.possible);
  List.iter (fun pv -> Fmt.pr "  %a@." Report.pp_position pv) res.Report.positions;
  res

let () =
  banner "1. The paper's introduction example: two identity functions";
  let id2 =
    "typedef const int ci;\n\
     int *id1(int *x) { return x; }\n\
     ci *id2(ci *x) { return x; }\n"
  in
  let r = Driver.run_source ~mode:Analysis.Mono id2 in
  Fmt.pr
    "C needs both id1 and id2 (%d const positions, %d declared).@."
    r.Driver.results.Report.total r.Driver.results.Report.declared;
  let poly_id =
    "char *id(char *x) { return x; }\n\
     void use_writable(void) { char b[8]; char *p; p = id(b); *p = 'x'; }\n\
     int use_const(const char *s) { char *q = (char *)s; return *(id(q)); }\n"
  in
  Fmt.pr
    "with qualifier polymorphism ONE id serves both (see the verdicts):@.";
  ignore (show_run "single id" Analysis.Poly poly_id);

  banner "2. The mini string library, mono vs poly";
  let src = Cbench.Programs.string_lib in
  let mono = show_run "string-lib" Analysis.Mono src in
  let poly = show_run "string-lib" Analysis.Poly src in
  Fmt.pr
    "@.monomorphic inference allows %d consts; polymorphic allows %d — the \
     difference is my_strchr, whose result is written through by one caller \
     (main) but whose other uses are read-only.@."
    mono.Report.possible poly.Report.possible;

  banner "3. Incorrect const usage is a type error";
  let bad = "void f(const char *s) { char *p; p = s; *p = 'x'; }" in
  let r = Driver.run_source ~mode:Analysis.Mono bad in
  Fmt.pr "program:@.%s@." bad;
  Fmt.pr "type errors: %d (writing through an alias of a const pointer)@."
    r.Driver.results.Report.type_errors;

  banner "4. The whole embedded suite";
  List.iter
    (fun (name, src) ->
      let row = Driver.table2_row ~name src in
      Fmt.pr "  %-12s lines=%4d declared=%3d mono=%3d poly=%3d total=%3d@."
        name row.Driver.r_lines row.Driver.declared row.Driver.mono
        row.Driver.poly row.Driver.total)
    Cbench.Programs.all
