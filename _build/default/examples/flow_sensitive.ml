(* Flow-sensitive qualifiers (Section 6, "Future Work") on mini-C.

   The paper's framework keeps one type per location; its future-work
   section sketches flow-sensitivity: one qualifier variable per location
   per program point, with subtyping constraints along control flow and
   NO constraint across strong updates. This example contrasts the two on
   a taint-tracking workload.

   Run with: dune exec examples/flow_sensitive.exe *)

open Cqual

let show title src =
  Fmt.pr "@.== %s ==@.%s@." title src;
  let run mode =
    match Flow.analyze_source ~mode src with
    | Ok r -> r.Flow.errors
    | Error m -> [ "parse error: " ^ m ]
  in
  let sens = run Flow.Sensitive and insens = run Flow.Insensitive in
  Fmt.pr "  flow-insensitive: %s@."
    (match insens with [] -> "safe" | e :: _ -> "FLAGGED — " ^ e);
  Fmt.pr "  flow-sensitive:   %s@."
    (match sens with [] -> "safe" | e :: _ -> "FLAGGED — " ^ e)

let prelude =
  "$tainted int read_input(void);\nvoid run_query($untainted int q);\n"

let () =
  Fmt.pr "flow-sensitive type qualifiers (Section 6 extension)@.";
  Fmt.pr
    "sources: $tainted prototypes; sinks: $untainted parameters (the@.\
     Section 2.5 $-qualifier syntax)@.";

  show "a strong update launders the past"
    (prelude
   ^ "void f(void) {\n\
     \  int q = read_input();   /* q tainted */\n\
     \  q = 42;                 /* strong update: severed from the past */\n\
     \  run_query(q);           /* fine — but flow-INSENSITIVE flags it */\n\
      }");

  show "a real bug is flagged by both"
    (prelude
   ^ "void g(void) {\n\
     \  int q = read_input();\n\
     \  run_query(q);\n\
      }");

  show "joins: one tainted branch taints the merge"
    (prelude
   ^ "void h(int c) {\n\
     \  int q = 0;\n\
     \  if (c) { q = read_input(); }\n\
     \  run_query(q);\n\
      }");

  show "loops: taint arrives via the back edge"
    (prelude
   ^ "void k(int n) {\n\
     \  int q = 0;\n\
     \  while (n--) {\n\
     \    run_query(q);          /* tainted from the 2nd iteration on */\n\
     \    q = read_input();\n\
     \  }\n\
      }");

  show "address-taken locals only get weak updates"
    (prelude
   ^ "void scan(int *p);\n\
      void m(void) {\n\
     \  int q = read_input();\n\
     \  scan(&q);               /* q's address escapes */\n\
     \  q = 1;                  /* weak: cannot launder */\n\
     \  run_query(q);\n\
      }");

  Fmt.pr
    "@.(loops need no fixpoint iteration here: the back edge is just one \
     more constraint, and the solver already computes fixed points over \
     cyclic constraint graphs.)@."
