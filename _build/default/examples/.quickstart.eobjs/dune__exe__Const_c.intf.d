examples/const_c.mli:
