examples/taint_tracking.ml: Fmt Infer Parse Qlambda Rules Typequal
