examples/quickstart.ml: Eval Fmt Infer Parse Qlambda Qtype Rules Typequal
