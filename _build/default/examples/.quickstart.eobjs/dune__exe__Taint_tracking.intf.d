examples/taint_tracking.mli:
