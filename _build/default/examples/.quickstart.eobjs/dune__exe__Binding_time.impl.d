examples/binding_time.ml: Fmt Infer Parse Qlambda Qtype Rules Typequal
