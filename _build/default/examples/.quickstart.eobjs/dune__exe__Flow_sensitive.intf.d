examples/flow_sensitive.mli:
