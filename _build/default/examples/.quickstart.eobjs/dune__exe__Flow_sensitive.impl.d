examples/flow_sensitive.ml: Cqual Flow Fmt
