examples/const_c.ml: Analysis Cbench Cqual Driver Fmt List Report
