examples/binding_time.mli:
