examples/quickstart.mli:
