(* Binding-time analysis as type qualifiers (Sections 1 and 2 of the
   paper): [static] values are known at specialization time, [dynamic]
   values only at run time. dynamic is positive (static tau <= dynamic tau,
   with static = absence of dynamic), and the qualifier comes with a
   well-formedness condition: nothing dynamic may appear inside a static
   value — e.g. static (dynamic a -> dynamic b) is ill-formed.

   Run with: dune exec examples/binding_time.exe *)

open Qlambda
module Space = Typequal.Lattice.Space
module Elt = Typequal.Lattice.Elt
module Solver = Typequal.Solver

let space = Rules.binding_time_space
let hooks = Rules.binding_time_hooks

let show src =
  Fmt.pr "@.program: %s@." src;
  match Infer.check ~hooks space (Parse.parse src) with
  | Ok r ->
      Fmt.pr "  : %a@." (Qtype.pp_solved r.Infer.store) r.Infer.qtyp
  | Error (m :: _) -> Fmt.pr "  ill-formed: %s@." m
  | Error [] -> ()

let () =
  Fmt.pr "== binding-time qualifiers ==@.";
  Fmt.pr
    "static = absence of the positive qualifier 'dynamic'; values move@.\
     monotonically from static to dynamic, never back.@.";

  (* an input read at run time is dynamic *)
  show "let input = @[dynamic] 3 in input + 1";

  (* a compile-time constant stays static (no dynamic in its type) *)
  show "let k = 6 in k * 7";

  (* mixing: static promotes to dynamic where needed (subsumption) *)
  show "let input = @[dynamic] 3 in let k = 39 in input + k";

  (* the binding-time assertion: a specializer can check that a value it
     wants to precompute is NOT dynamic *)
  show "let k = 6 in (k * 7) |[~dynamic]";
  show "let input = @[dynamic] 3 in (input + 1) |[~dynamic]";

  (* well-formedness: a static closure capturing nothing dynamic is fine;
     annotating a function that takes dynamic data as itself static is
     rejected by the 'nothing dynamic inside static' rule *)
  show "let f = fun x -> x + 1 in (f |[~dynamic]) 2";
  show
    "let f = fun x -> x + 1 in\n\
     let g = (f |[~dynamic]) in\n\
     g (@[dynamic] 3)";
  Fmt.pr
    "@.(the last program is rejected: f's argument is dynamic, so f cannot \
     be asserted fully static — the masked flow dynamic(child) <= \
     dynamic(parent) added by the well-formedness hook forbids it)@."
