(* Scheme compaction (Solver.compact): observational equivalence on the
   interface, error preservation, and the memo-eligibility predicate.

   The property tests build random masked constraint systems over a
   scratch store, designate a subset of the variables as scheme locals and
   a subset of those as the interface, compact, and then compare the
   original and compacted systems as constraint sets: least/greatest
   solutions must agree exactly on every observable variable (interface
   members and free variables), and the set of bound-violating variables
   must be preserved exactly. A second pass replays both systems through
   real stores (exercising dedup, cycle collapse and propagation) and
   compares store solutions. *)

open Typequal
module Sp = Lattice.Space
module E = Lattice.Elt
module S = Solver

let space () = Sp.create [ Qualifier.const; Qualifier.nonzero ]
let const_elt sp = E.of_names_up sp [ "const" ]

(* ------------------------------------------------------------------ *)
(* Deterministic units                                                 *)
(* ------------------------------------------------------------------ *)

(* const <= a <= b <= c with b internal: b disappears, the flow a -> c
   survives as a composed edge, and solutions on a, c are unchanged. *)
let test_chain_elimination () =
  let sp = space () in
  let st = S.create sp in
  let a = S.fresh ~name:"a" st
  and b = S.fresh ~name:"b" st
  and c = S.fresh ~name:"c" st in
  let atoms =
    [
      S.Acv (const_elt sp, a, E.full_mask sp, None);
      S.Avv (a, b, E.full_mask sp, None);
      S.Avv (b, c, E.full_mask sp, None);
    ]
  in
  let s = S.make_scheme ~locals:[ a; b; c ] ~atoms in
  let s' = S.compact st ~interface:[ a; c ] s in
  Alcotest.(check int) "internal eliminated" 2
    (List.length (S.scheme_locals s'));
  let f = S.solve_atoms sp (S.scheme_atoms s') in
  let fo = S.solve_atoms sp atoms in
  List.iter
    (fun v ->
      let lo, hi = f (S.var_id v) and lo', hi' = fo (S.var_id v) in
      Alcotest.(check bool) "lo preserved" true (E.equal lo lo');
      Alcotest.(check bool) "hi preserved" true (E.equal hi hi'))
    [ a; c ]

(* An internal variable with inconsistent constant bounds carries the
   scheme's error: it must survive compaction, and instantiating the
   compacted scheme must still fail. *)
let test_inconsistent_internal_kept () =
  let sp = space () in
  let st = S.create sp in
  let a = S.fresh ~name:"a" st and v = S.fresh ~name:"v" st in
  let atoms =
    [
      S.Acv (const_elt sp, v, E.full_mask sp, None);
      S.Avc (v, E.not_name sp "const", E.full_mask sp, None);
    ]
  in
  let s = S.make_scheme ~locals:[ a; v ] ~atoms in
  let s' = S.compact st ~interface:[ a ] s in
  let st2 = S.create sp in
  let (_rn : S.var -> S.var) = S.instantiate st2 s' in
  Alcotest.(check bool) "instance still unsat" true
    (Result.is_error (S.solve st2))

(* Interface variables survive even when unconstrained: they occur in the
   generalized type and must freshen per instance. *)
let test_interface_kept_unconstrained () =
  let sp = space () in
  let st = S.create sp in
  let a = S.fresh ~name:"a" st and b = S.fresh ~name:"b" st in
  let s = S.make_scheme ~locals:[ a; b ] ~atoms:[] in
  let s' = S.compact st ~interface:[ a ] s in
  Alcotest.(check int) "interface local kept" 1
    (List.length (S.scheme_locals s'));
  Alcotest.(check int) "unconstrained internal dropped" 0
    (List.length (S.scheme_atoms s'))

(* Masked atoms compose exactly: a <= v on {const}, v <= b on {nonzero}
   relates no coordinate end-to-end, while a <= v on m, v <= b on m
   composes to a <= b on m. *)
let test_masked_composition () =
  let sp = space () in
  let mc = E.mask_of_names sp [ "const" ] in
  let mn = E.mask_of_names sp [ "nonzero" ] in
  List.iter
    (fun (m1, m2) ->
      let st = S.create sp in
      let a = S.fresh st and v = S.fresh st and b = S.fresh st in
      let atoms =
        [
          S.Acv (const_elt sp, a, E.full_mask sp, None);
          S.Avv (a, v, m1, None);
          S.Avv (v, b, m2, None);
        ]
      in
      let s = S.make_scheme ~locals:[ a; v; b ] ~atoms in
      let s' = S.compact st ~interface:[ a; b ] s in
      let f = S.solve_atoms sp (S.scheme_atoms s') in
      let fo = S.solve_atoms sp atoms in
      List.iter
        (fun x ->
          let lo, hi = f (S.var_id x) and lo', hi' = fo (S.var_id x) in
          Alcotest.(check bool) "masked lo preserved" true (E.equal lo lo');
          Alcotest.(check bool) "masked hi preserved" true (E.equal hi hi'))
        [ a; b ])
    [ (mc, mn); (mc, mc); (mn, mn); (E.full_mask sp, mc) ]

(* ------------------------------------------------------------------ *)
(* Random masked systems                                               *)
(* ------------------------------------------------------------------ *)

type cgen = {
  g_nvars : int;
  g_nlocals : int;  (* vars [0, g_nlocals) are scheme locals *)
  g_niface : int;  (* vars [0, g_niface) are the interface *)
  g_atoms : (int * int * int * int * int) list;
      (* kind mod 3, var a, var b, raw elt bits, raw mask bits *)
}

let cgen_gen : cgen QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* g_nvars = int_range 2 10 in
  let* g_nlocals = int_range 1 g_nvars in
  let* g_niface = int_range 0 g_nlocals in
  let v = int_bound (g_nvars - 1) in
  let* g_atoms =
    list_size (int_bound 30)
      (let* k = int_bound 2 in
       let* a = v in
       let* b = v in
       let* e = int_bound 255 in
       let* m = int_bound 255 in
       return (k, a, b, e, m))
  in
  return { g_nvars; g_nlocals; g_niface; g_atoms }

let build sp (g : cgen) =
  let st = S.create sp in
  let vars = Array.init g.g_nvars (fun i -> S.fresh ~name:(Printf.sprintf "v%d" i) st) in
  let full = E.full_mask sp in
  let atoms =
    List.map
      (fun (k, a, b, e, m) ->
        let e = e land full and m = m land full in
        match k mod 3 with
        | 0 -> S.Avc (vars.(a), e, m, None)
        | 1 -> S.Acv (e, vars.(a), m, None)
        | _ -> S.Avv (vars.(a), vars.(b), m, None))
      g.g_atoms
  in
  let locals = Array.to_list (Array.sub vars 0 g.g_nlocals) in
  let interface = Array.to_list (Array.sub vars 0 g.g_niface) in
  (st, vars, atoms, locals, interface)

(* vars observable from outside the scheme: interface members plus free
   variables *)
let observables (g : cgen) vars =
  Array.to_list (Array.sub vars 0 g.g_niface)
  @ Array.to_list
      (Array.sub vars g.g_nlocals (g.g_nvars - g.g_nlocals))

(* per-variable constant upper bound of an atom list *)
let hi_bound_of sp atoms id =
  List.fold_left
    (fun acc a ->
      match a with
      | S.Avc (v, c, m, _) when S.var_id v = id ->
          E.meet sp acc (E.embed_top sp ~mask:m c)
      | _ -> acc)
    (E.top sp) atoms

let violating sp atoms n =
  let f = S.solve_atoms sp atoms in
  List.filter
    (fun id ->
      let lo, _ = f id in
      not (E.leq sp lo (hi_bound_of sp atoms id)))
    (List.init n Fun.id)

let prop_compact_exact =
  QCheck2.Test.make ~count:1000
    ~name:"compact: exact lo/hi on observables + exact violation set"
    (QCheck2.Gen.pair Test_props.space_gen cgen_gen)
    (fun (sp, g) ->
      let st, vars, atoms, locals, interface = build sp g in
      let s = S.make_scheme ~locals ~atoms in
      let s' = S.compact st ~interface s in
      let fo = S.solve_atoms sp atoms in
      let fc = S.solve_atoms sp (S.scheme_atoms s') in
      let obs_ok =
        List.for_all
          (fun v ->
            let lo, hi = fo (S.var_id v) and lo', hi' = fc (S.var_id v) in
            E.equal lo lo' && E.equal hi hi')
          (observables g vars)
      in
      (* the violating-variable set is preserved exactly: eliminated
         internals can never violate, kept variables keep their bounds *)
      let viol_ok =
        violating sp atoms g.g_nvars
        = violating sp (S.scheme_atoms s') g.g_nvars
      in
      obs_ok && viol_ok)

(* Same comparison through real stores: replay both systems through the
   normal add_leq_* entry points (dedup, online cycle collapse,
   incremental propagation all active) and compare store solutions. *)
let prop_compact_exact_in_store =
  QCheck2.Test.make ~count:500
    ~name:"compact: store replay agrees on observables and satisfiability"
    (QCheck2.Gen.pair Test_props.space_gen cgen_gen)
    (fun (sp, g) ->
      let st, vars, atoms, locals, interface = build sp g in
      let s = S.make_scheme ~locals ~atoms in
      let s' = S.compact st ~interface s in
      let replay atoms =
        let st2 = S.create sp in
        let copies = Array.map (fun _ -> S.fresh st2) vars in
        (* scratch-store ids are dense from 0, so they index [copies] *)
        let rn v = copies.(S.var_id v) in
        List.iter
          (function
            | S.Avc (v, c, m, _) -> S.add_leq_vc ~mask:m st2 (rn v) c
            | S.Acv (c, v, m, _) -> S.add_leq_cv ~mask:m st2 c (rn v)
            | S.Avv (a, b, m, _) -> S.add_leq_vv ~mask:m st2 (rn a) (rn b))
          atoms;
        let sat = Result.is_ok (S.solve st2) in
        (st2, copies, sat)
      in
      let sto, co, sato = replay atoms in
      let stc, cc, satc = replay (S.scheme_atoms s') in
      ignore vars;
      sato = satc
      && List.for_all
           (fun v ->
             let i = S.var_id v in
             E.equal (S.least sto co.(i)) (S.least stc cc.(i))
             && E.equal (S.greatest sto co.(i)) (S.greatest stc cc.(i)))
           (observables g vars))

(* compact must be idempotent-safe to chain after simplify_scheme (the
   production pipeline runs both) *)
let prop_compact_after_simplify =
  QCheck2.Test.make ~count:500
    ~name:"compact after simplify_scheme: still exact on observables"
    (QCheck2.Gen.pair Test_props.space_gen cgen_gen)
    (fun (sp, g) ->
      let st, vars, atoms, locals, interface = build sp g in
      let s = S.make_scheme ~locals ~atoms in
      let s' =
        S.compact st ~interface (S.simplify_scheme st ~interface s)
      in
      let fo = S.solve_atoms sp atoms in
      let fc = S.solve_atoms sp (S.scheme_atoms s') in
      List.for_all
        (fun v ->
          let lo, hi = fo (S.var_id v) and lo', hi' = fc (S.var_id v) in
          E.equal lo lo' && E.equal hi hi')
        (observables g vars))

(* atoms_never_violate is a sound license for sharing: when it says yes,
   no assignment of the pinned variables (here: all pinned to top, the
   worst case it reasons about) makes any local violate its bounds. *)
let prop_never_violate_sound =
  QCheck2.Test.make ~count:800
    ~name:"atoms_never_violate: pessimistic yes is really a yes"
    (QCheck2.Gen.pair Test_props.space_gen cgen_gen)
    (fun (sp, g) ->
      let _st, vars, atoms, locals, _ = build sp g in
      let exposed = Array.to_list (Array.sub vars 0 g.g_niface) in
      if not (S.atoms_never_violate sp ~locals ~exposed atoms) then true
      else begin
        (* pin every exposed local and every free variable to top and
           check no local violates *)
        let local_ids =
          List.map S.var_id locals |> List.sort_uniq compare
        in
        let pinned =
          List.filter
            (fun v ->
              List.mem (S.var_id v) (List.map S.var_id exposed)
              || not (List.mem (S.var_id v) local_ids))
            (Array.to_list vars)
        in
        let augmented =
          atoms
          @ List.map
              (fun v -> S.Acv (E.top sp, v, E.full_mask sp, None))
              pinned
        in
        let f = S.solve_atoms sp augmented in
        List.for_all
          (fun id ->
            let lo, _ = f id in
            E.leq sp lo (hi_bound_of sp atoms id))
          local_ids
      end)

(* ------------------------------------------------------------------ *)
(* End-to-end: compaction + memoization are observationally invisible   *)
(* ------------------------------------------------------------------ *)

(* Everything a user can observe from a C analysis run, EXCLUDING the
   solver's size counters (compaction exists precisely to change those):
   per-position verdicts, counts, warnings, outcomes, and the least
   solution of every named global variable. *)
let observable_digest (res : Cqual.Report.results)
    (least : (string * string) list) : string =
  let open Cqual in
  let b = Buffer.create 1024 in
  List.iter
    (fun pv -> Buffer.add_string b (Fmt.str "%a\n" Report.pp_position pv))
    res.Report.positions;
  Buffer.add_string b
    (Printf.sprintf "declared=%d possible=%d must=%d total=%d errors=%d\n"
       res.Report.declared res.Report.possible res.Report.must
       res.Report.total res.Report.type_errors);
  List.iter
    (fun w -> Buffer.add_string b ("warning " ^ w ^ "\n"))
    res.Report.warnings;
  List.iter
    (fun (f, o) ->
      Buffer.add_string b
        (match o with
        | Analysis.Analyzed -> "analyzed " ^ f ^ "\n"
        | Analysis.Degraded why -> "degraded " ^ f ^ ": " ^ why ^ "\n"))
    res.Report.outcomes;
  List.iter
    (fun (name, lo) -> Buffer.add_string b (name ^ " lo=" ^ lo ^ "\n"))
    least;
  Buffer.contents b

(* least solutions of the named program (global) variables, by name — the
   variables themselves differ between two independent runs *)
let global_leasts (env : Cqual.Analysis.env) : (string * string) list =
  let store = env.Cqual.Analysis.store in
  let sp = S.space store in
  Hashtbl.fold
    (fun name (c : Cqual.Qtypes.cell) acc ->
      (name, Fmt.str "%a" (E.pp sp) (S.least store c.Cqual.Qtypes.q)) :: acc)
    env.Cqual.Analysis.globals []
  |> List.sort compare

let run_digest ~compact ~jobs mode prog =
  let open Cqual in
  let env, ifaces = Analysis.run ~compact ~jobs mode prog in
  let results = Report.measure env ifaces in
  observable_digest results (global_leasts env)

let prop_end_to_end_invisible =
  QCheck2.Test.make ~count:12
    ~name:
      "end-to-end: --no-compact vs default observably identical (3 modes, \
       jobs 1 and 4)"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let src = Cbench.Gen.generate ~seed ~target_lines:300 () in
      let prog = Cqual.Driver.compile src in
      List.for_all
        (fun mode ->
          List.for_all
            (fun jobs ->
              let on = run_digest ~compact:true ~jobs mode prog in
              let off = run_digest ~compact:false ~jobs mode prog in
              if on <> off then
                QCheck2.Test.fail_reportf "seed %d jobs %d:@.%s@.vs@.%s" seed
                  jobs on off
              else true)
            [ 1; 4 ])
        [ Cqual.Analysis.Mono; Cqual.Analysis.Poly; Cqual.Analysis.Polyrec ])

let prop_end_to_end_chains =
  QCheck2.Test.make ~count:6
    ~name:"end-to-end: chains workload identical and actually compacted"
    QCheck2.Gen.(int_range 0 1_000)
    (fun seed ->
      let src =
        Cbench.Gen.generate_chains ~depth:8 ~seed ~target_lines:250 ()
      in
      let open Cqual in
      let prog = Driver.compile src in
      List.for_all
        (fun jobs ->
          let on = run_digest ~compact:true ~jobs Analysis.Poly prog in
          let off = run_digest ~compact:false ~jobs Analysis.Poly prog in
          let env_on, _ = Analysis.run ~compact:true ~jobs Analysis.Poly prog in
          let env_off, _ =
            Analysis.run ~compact:false ~jobs Analysis.Poly prog
          in
          let von = (Analysis.stats env_on).S.vars_created in
          let voff = (Analysis.stats env_off).S.vars_created in
          if on <> off then
            QCheck2.Test.fail_reportf "chains seed %d jobs %d reports differ"
              seed jobs
          else if von >= voff then
            QCheck2.Test.fail_reportf
              "chains seed %d jobs %d: no variable reduction (%d vs %d)" seed
              jobs von voff
          else true)
        [ 1; 4 ])

(* ------------------------------------------------------------------ *)
(* The instantiation memo: it must actually fire, and every rejected    *)
(* candidate must land in exactly one named rejection counter.          *)
(* ------------------------------------------------------------------ *)

let memo_stats src =
  let open Cqual in
  let prog = Driver.compile src in
  let env, ifaces = Analysis.run ~compact:true Analysis.Poly prog in
  ignore (Report.measure env ifaces);
  Analysis.stats env

(* the poly_chains workload is the memo's reason to exist: deep helper
   chains re-called with identical arguments. A zero here is the PR 8
   regression this test pins down. *)
let test_memo_fires_on_chains () =
  let src = Cbench.Gen.generate_chains ~depth:8 ~seed:7 ~target_lines:400 () in
  let st = memo_stats src in
  Alcotest.(check bool) "memo hits > 0" true (st.S.instantiations_memo_hits > 0);
  Alcotest.(check int) "every candidate is accounted for"
    st.S.memo_candidates
    (st.S.instantiations_memo_hits + st.S.memo_misses
   + st.S.memo_reject_nonflat_ret + st.S.memo_reject_may_violate)

(* a flat-signature callee (base-typed params and result, no violating
   atoms) is the cross-session tier: every occurrence after the first is
   a hit with no instantiation at all *)
let test_memo_flat_tier () =
  let st =
    memo_stats
      "int id(int x) { return x; }\n\
       int use(void) { return id(1) + id(2) + id(3); }\n"
  in
  Alcotest.(check bool) "flat-signature calls hit"
    true
    (st.S.instantiations_memo_hits >= 2);
  Alcotest.(check int) "no rejections" 0
    (st.S.memo_reject_nonflat_ret + st.S.memo_reject_may_violate)

(* a pointer result makes the consumer emit structural constraints
   against the instance: rejected, and counted as nonflat-ret *)
let test_memo_reject_nonflat_ret () =
  let st =
    memo_stats
      "int g;\n\
       int *addr(void) { return &g; }\n\
       int use(void) { return *addr() + *addr(); }\n"
  in
  Alcotest.(check bool) "nonflat-ret counted" true
    (st.S.memo_reject_nonflat_ret >= 2);
  Alcotest.(check int) "and not misclassified as may-violate" 0
    st.S.memo_reject_may_violate

(* writing through a parameter pointer puts an upper bound on call-site
   inflow: the scheme's atoms can violate on their own, so sharing an
   instance could drop errors — rejected, counted as may-violate *)
let test_memo_reject_may_violate () =
  let st =
    memo_stats
      "void set(int *p) { *p = 1; }\n\
       int use(int a) { set(&a); set(&a); return a; }\n"
  in
  Alcotest.(check bool) "may-violate counted" true
    (st.S.memo_reject_may_violate >= 2);
  Alcotest.(check int) "and not misclassified as nonflat-ret" 0
    st.S.memo_reject_nonflat_ret

(* a read-only pointer consumer is session-tier: flat result, never
   violating, keyed by argument shape — the second identical call hits,
   the first is a counted miss *)
let test_memo_session_tier () =
  let st =
    memo_stats
      "int deref(int *p) { return *p; }\n\
       int use(int *q) { return deref(q) + deref(q); }\n"
  in
  Alcotest.(check bool) "first occurrence misses" true (st.S.memo_misses >= 1);
  Alcotest.(check bool) "second occurrence hits" true
    (st.S.instantiations_memo_hits >= 1)

(* ------------------------------------------------------------------ *)
(* Phase timers: disjoint accounting must not exceed the wall clock     *)
(* ------------------------------------------------------------------ *)

let test_phase_timers_sane () =
  let open Cqual in
  let t0 = Unix.gettimeofday () in
  let r =
    Driver.run_sources ~mode:Analysis.Poly ~jobs:1 Cbench.Programs.miniproject
  in
  let wall = Unix.gettimeofday () -. t0 in
  let st = r.Driver.solver_stats in
  let phases =
    [
      ("congen", st.S.congen_s);
      ("generalize", st.S.generalize_s);
      ("compact", st.S.compact_s);
      ("instantiate", st.S.instantiate_s);
      ("report", st.S.report_s);
      ("solve", st.S.solve_s);
      ("absorb", st.S.absorb_s);
    ]
  in
  List.iter
    (fun (n, v) ->
      Alcotest.(check bool) (n ^ " non-negative") true (v >= 0.))
    phases;
  let sum = List.fold_left (fun a (_, v) -> a +. v) 0. phases in
  (* serial phases are disjoint windows inside the run: their sum cannot
     exceed the enclosing wall time (slack for timer granularity) *)
  Alcotest.(check bool)
    (Printf.sprintf "phase sum %.3fs within wall %.3fs" sum wall)
    true
    (sum <= wall +. 0.05)

let tests =
  [
    Alcotest.test_case "chain internal eliminated" `Quick
      test_chain_elimination;
    Alcotest.test_case "memo fires on poly chains" `Quick
      test_memo_fires_on_chains;
    Alcotest.test_case "memo: flat-signature tier hits" `Quick
      test_memo_flat_tier;
    Alcotest.test_case "memo: nonflat-ret rejection counted" `Quick
      test_memo_reject_nonflat_ret;
    Alcotest.test_case "memo: may-violate rejection counted" `Quick
      test_memo_reject_may_violate;
    Alcotest.test_case "memo: session tier miss-then-hit" `Quick
      test_memo_session_tier;
    Alcotest.test_case "phase timers disjoint and sane" `Quick
      test_phase_timers_sane;
    Alcotest.test_case "inconsistent internal kept" `Quick
      test_inconsistent_internal_kept;
    Alcotest.test_case "unconstrained interface kept" `Quick
      test_interface_kept_unconstrained;
    Alcotest.test_case "masked composition exact" `Quick
      test_masked_composition;
    QCheck_alcotest.to_alcotest prop_compact_exact;
    QCheck_alcotest.to_alcotest prop_compact_exact_in_store;
    QCheck_alcotest.to_alcotest prop_compact_after_simplify;
    QCheck_alcotest.to_alcotest prop_never_violate_sound;
    QCheck_alcotest.to_alcotest prop_end_to_end_invisible;
    QCheck_alcotest.to_alcotest prop_end_to_end_chains;
  ]
