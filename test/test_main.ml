let () =
  Alcotest.run "typequal"
    [
      ("lattice", Test_lattice.tests);
      ("solver", Test_solver.tests);
      ("arena", Test_arena.tests);
      ("lambda", Test_lambda.tests);
      ("cfront", Test_cfront.tests);
      ("resilience", Test_resilience.tests);
      ("cqual", Test_cqual.tests);
      ("parallel", Test_parallel.tests);
      ("frontend", Test_frontend.tests);
      ("cache", Test_cache.tests);
      ("session", Test_session.tests);
      ("compact", Test_compact.tests);
      ("eval", Test_eval.tests);
      ("flow", Test_flow.tests);
      ("properties", Test_props.tests);
    ]
