(* The persistent analysis cache (Typequal.Cache + the Driver tiers):
   envelope verification per fault cause, the lock protocol, resilience on
   unusable directories, and the contract the fault-injection harness
   enforces — every corruption mode yields a report byte-identical to a
   cold run, with the reject counted and the bad entry evicted. *)

module Cache = Typequal.Cache
open Cqual

(* ---------------- scratch plumbing ---------------- *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tqcache-test-%d-%d" (Unix.getpid ()) !n)
    in
    (try Sys.mkdir d 0o755 with Sys_error _ -> ());
    d

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let flip_byte path off =
  let s = Bytes.of_string (read_file path) in
  Bytes.set s off (Char.chr (Char.code (Bytes.get s off) lxor 0xff));
  write_file path (Bytes.to_string s)

let truncate_to path len = write_file path (String.sub (read_file path) 0 len)

(* ---------------- envelope verification, cause by cause ---------------- *)

let ctx = Digest.string "test-ctx"
let key = Digest.string "unit-a"
let dep = Digest.string "iface-1"
let payload = String.init 300 (fun i -> Char.chr (i mod 251))

let open_exn ?warn ?(ctx = ctx) dir =
  match Cache.open_dir ?warn ~ctx dir with
  | Some t -> t
  | None -> Alcotest.fail "open_dir refused a fresh directory"

(* store one entry, hand its file path back for corruption *)
let populate dir =
  let t = open_exn dir in
  Cache.store t ~kind:"k" ~key ~deps:[ dep ] payload;
  Cache.entry_path t ~kind:"k" ~key

let reject_count t cause =
  match Hashtbl.find_opt (Cache.stats t).Cache.rejects cause with
  | Some n -> n
  | None -> 0

(* reload through a fresh handle and demand a rejection with this cause,
   the entry evicted, and nothing else counted as rejected *)
let check_rejected name ?(deps = [ dep ]) ?ctx cause dir =
  let t = open_exn ?ctx dir in
  (match Cache.load t ~kind:"k" ~key ~deps with
  | Some _ -> Alcotest.fail (name ^ ": corrupt entry was served")
  | None -> ());
  let st = Cache.stats t in
  Alcotest.(check int) (name ^ ": cause counted") 1 (reject_count t cause);
  Alcotest.(check int)
    (name ^ ": only this cause")
    1
    (Hashtbl.fold (fun _ n acc -> n + acc) st.Cache.rejects 0);
  Alcotest.(check int) (name ^ ": entry evicted") 1 st.Cache.evictions;
  Alcotest.(check (list string)) (name ^ ": file gone") [] (Cache.entry_files t)

let test_roundtrip () =
  let dir = fresh_dir () in
  let t = open_exn dir in
  Cache.store t ~kind:"k" ~key ~deps:[ dep ] payload;
  Alcotest.(check (option string))
    "payload back" (Some payload)
    (Cache.load t ~kind:"k" ~key ~deps:[ dep ]);
  let st = Cache.stats t in
  Alcotest.(check int) "one hit" 1 st.Cache.hits;
  Alcotest.(check bool) "bytes read" true (st.Cache.bytes_read > 0);
  Alcotest.(check bool) "bytes written" true (st.Cache.bytes_written > 0);
  Alcotest.(check (option (pair int int)))
    "per-kind hit" (Some (1, 0))
    (Hashtbl.find_opt st.Cache.by_kind "k")

let test_missing_entry_is_a_miss () =
  let dir = fresh_dir () in
  let path = populate dir in
  Sys.remove path;
  let t = open_exn dir in
  Alcotest.(check (option string))
    "miss" None
    (Cache.load t ~kind:"k" ~key ~deps:[ dep ]);
  let st = Cache.stats t in
  Alcotest.(check int) "counted as miss" 1 st.Cache.misses;
  Alcotest.(check int) "not a reject" 0
    (Hashtbl.fold (fun _ n acc -> n + acc) st.Cache.rejects 0)

let test_truncated_header () =
  let dir = fresh_dir () in
  let path = populate dir in
  truncate_to path (Cache.off_key + 3);
  check_rejected "truncated header" "truncated" dir

let test_truncated_payload () =
  let dir = fresh_dir () in
  let path = populate dir in
  let full = String.length (read_file path) in
  truncate_to path (full - 7);
  check_rejected "truncated payload" "truncated" dir

let test_bad_magic () =
  let dir = fresh_dir () in
  let path = populate dir in
  flip_byte path Cache.off_magic;
  check_rejected "bad magic" "bad-magic" dir

let test_bad_version () =
  let dir = fresh_dir () in
  let path = populate dir in
  flip_byte path (Cache.off_version + 1);
  check_rejected "version skew" "bad-version" dir

let test_context_mismatch () =
  (* a foreign lattice: same file, different space fingerprint *)
  let dir = fresh_dir () in
  let _ = populate dir in
  check_rejected "foreign lattice" ~ctx:(Digest.string "other-ctx")
    "lattice-mismatch" dir

let test_key_mismatch () =
  let dir = fresh_dir () in
  let path = populate dir in
  flip_byte path Cache.off_key;
  check_rejected "key mismatch" "key-mismatch" dir

let test_stale_dep () =
  let dir = fresh_dir () in
  let _ = populate dir in
  check_rejected "dep digest changed"
    ~deps:[ Digest.string "iface-2" ]
    "stale-dep" dir

let test_dep_count_mismatch () =
  let dir = fresh_dir () in
  let _ = populate dir in
  check_rejected "dep added"
    ~deps:[ dep; Digest.string "iface-2" ]
    "stale-dep" dir

let test_corrupt_payload () =
  let dir = fresh_dir () in
  let path = populate dir in
  flip_byte path (String.length (read_file path) - 1);
  check_rejected "payload bit flip" "corrupt" dir

let test_reject_undecodable () =
  let dir = fresh_dir () in
  let _ = populate dir in
  let t = open_exn dir in
  Cache.reject_undecodable t ~kind:"k" ~key;
  Alcotest.(check int) "counted" 1 (reject_count t "undecodable");
  Alcotest.(check (list string)) "evicted" [] (Cache.entry_files t)

(* ---------------- lock protocol ---------------- *)

let test_lock_roundtrip () =
  let dir = fresh_dir () in
  let t = open_exn dir in
  let ran = ref false in
  Alcotest.(check bool) "lock taken" true
    (Cache.with_lock t (fun () -> ran := true));
  Alcotest.(check bool) "body ran" true !ran;
  Alcotest.(check bool) "lock released" false
    (Sys.file_exists (Filename.concat dir ".lock"))

let test_lock_held_by_live_process () =
  let dir = fresh_dir () in
  let t = open_exn dir in
  (* a live owner (ourselves): the lock must not be broken, and a store
     under contention skips rather than waits *)
  write_file (Filename.concat dir ".lock") (string_of_int (Unix.getpid ()));
  Alcotest.(check bool) "lock refused" false (Cache.with_lock t (fun () -> ()));
  Cache.store t ~kind:"k" ~key ~deps:[] payload;
  let st = Cache.stats t in
  Alcotest.(check bool) "store skipped" true (st.Cache.write_skips >= 1);
  Alcotest.(check (list string)) "nothing written" [] (Cache.entry_files t);
  Sys.remove (Filename.concat dir ".lock")

let test_stale_lock_broken () =
  let dir = fresh_dir () in
  let t = open_exn dir in
  (* a pid that cannot be alive: the crashed-writer case *)
  write_file (Filename.concat dir ".lock") "99999999";
  Alcotest.(check bool) "stale lock broken" true
    (Cache.with_lock t (fun () -> ()));
  Cache.store t ~kind:"k" ~key ~deps:[] payload;
  Alcotest.(check int) "store went through" 1
    (List.length (Cache.entry_files t))

(* ---------------- domain safety ---------------- *)

(* the stats counters are mutex-guarded: concurrent loads and stores from
   pool domains must not lose updates — every operation is counted exactly
   once *)
let test_concurrent_stats () =
  let dir = fresh_dir () in
  let t = open_exn dir in
  let present =
    List.init 8 (fun i -> Digest.string (Printf.sprintf "present-%d" i))
  in
  List.iter (fun k -> Cache.store t ~kind:"k" ~key:k ~deps:[] payload) present;
  let ndom = 4 in
  let worker d () =
    List.iter
      (fun k ->
        match Cache.load t ~kind:"k" ~key:k ~deps:[] with
        | Some p -> assert (p = payload)
        | None -> failwith "present entry missed")
      present;
    for i = 0 to 7 do
      ignore
        (Cache.load t ~kind:"k"
           ~key:(Digest.string (Printf.sprintf "absent-%d-%d" d i))
           ~deps:[])
    done;
    for i = 0 to 3 do
      Cache.store t ~kind:"k"
        ~key:(Digest.string (Printf.sprintf "new-%d-%d" d i))
        ~deps:[] payload
    done
  in
  let doms = List.init ndom (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join doms;
  let st = Cache.stats t in
  Alcotest.(check int) "hits exact" (ndom * 8) st.Cache.hits;
  Alcotest.(check int) "misses exact" (ndom * 8) st.Cache.misses;
  let hm =
    match Hashtbl.find_opt st.Cache.by_kind "k" with
    | Some hm -> hm
    | None -> (0, 0)
  in
  Alcotest.(check (pair int int)) "by-kind exact" (ndom * 8, ndom * 8) hm;
  (* every concurrent store either landed as a distinct file or was
     counted as skipped (lock contention) — none may vanish uncounted *)
  Alcotest.(check int) "stores accounted"
    (8 + (ndom * 4))
    (List.length (Cache.entry_files t) + st.Cache.write_skips)

(* ---------------- resilience: unusable cache paths ---------------- *)

let test_open_on_file_path () =
  let dir = fresh_dir () in
  let file = Filename.concat dir "plain-file" in
  write_file file "not a directory";
  let warned = ref [] in
  (match Cache.open_dir ~warn:(fun m -> warned := m :: !warned) ~ctx file with
  | Some _ -> Alcotest.fail "opened a regular file as a cache"
  | None -> ());
  Alcotest.(check bool) "warned once" true (List.length !warned = 1);
  (* the Driver wrapper degrades the same way: the run proceeds cold *)
  (match Driver.open_cache ~warn:(fun _ -> ()) ~opts_id:"t" file with
  | Some _ -> Alcotest.fail "Driver.open_cache accepted a file"
  | None -> ());
  let r = Driver.run_source ~mode:Analysis.Poly "int f(int *p) { return *p; }" in
  Alcotest.(check int) "analysis unaffected" 1 r.Driver.n_functions

(* ---------------- Driver tiers: cold == warm == post-corruption -------- *)

let open_cache_exn dir =
  match Driver.open_cache ~opts_id:"test" dir with
  | Some cs -> cs
  | None -> Alcotest.fail "Driver.open_cache refused a fresh directory"

let cache_stats (cs : Driver.cache_spec) = Cache.stats cs.Driver.cs_cache

let kind_counts cs kind =
  match Hashtbl.find_opt (cache_stats cs).Cache.by_kind kind with
  | Some hm -> hm
  | None -> (0, 0)

let run_entry_file (cs : Driver.cache_spec) =
  match
    List.filter
      (fun p -> String.length (Filename.basename p) >= 4
                && String.sub (Filename.basename p) 0 4 = "run-")
      (Cache.entry_files cs.Driver.cs_cache)
  with
  | [ p ] -> p
  | l -> Alcotest.fail (Printf.sprintf "expected 1 run entry, found %d" (List.length l))

let test_driver_cold_warm_corrupt () =
  let files = Cbench.Gen.generate_project ~seed:0x51 ~target_lines:2_500 () in
  let mode = Analysis.Poly in
  let base = Test_parallel.digest (Driver.run_sources ~mode files) in
  let dir = fresh_dir () in
  (* cold: populates, changes nothing observable *)
  let cs = open_cache_exn dir in
  let cold = Driver.run_sources ~mode ~cache:cs files in
  Alcotest.(check string) "cold = uncached" base (Test_parallel.digest cold);
  Alcotest.(check int) "no hits cold" 0 (cache_stats cs).Cache.hits;
  (* warm no-op: whole-run tier serves it *)
  let cs = open_cache_exn dir in
  let warm = Driver.run_sources ~mode ~cache:cs files in
  Alcotest.(check string) "warm = cold" base (Test_parallel.digest warm);
  Alcotest.(check (pair int int)) "run-tier hit" (1, 0) (kind_counts cs "run");
  (* flip a payload byte in the run entry: reject, recompute, identical *)
  let path = run_entry_file cs in
  flip_byte path (String.length (read_file path) - 1);
  let cs = open_cache_exn dir in
  let recovered = Driver.run_sources ~mode ~cache:cs files in
  Alcotest.(check string) "post-corruption = cold" base
    (Test_parallel.digest recovered);
  Alcotest.(check bool) "reject counted" true
    (Hashtbl.fold (fun _ n acc -> n + acc) (cache_stats cs).Cache.rejects 0 >= 1);
  (* parallel warm run: same report under jobs:4 *)
  let cs = open_cache_exn dir in
  let par = Driver.run_sources ~mode ~jobs:4 ~cache:cs files in
  Alcotest.(check string) "warm jobs 4 = cold" base (Test_parallel.digest par)

(* satellite 6: unit identity is the per-file content hash, so renaming a
   file invalidates exactly that unit's SCCs; dependents stay warm through
   the interface digests *)
let proj rename edit =
  [
    ((if rename then "a2.c" else "a.c"), "int f(int *p) { return *p; }\n");
    ( "b.c",
      "int f(int *p);\nint g(int *q) { return f(q) + "
      ^ (if edit then "2" else "1")
      ^ "; }\n" );
    ("main.c", "int g(int *q);\nint main(void) { int x; return g(&x); }\n");
  ]

let test_rename_invalidates_one_unit () =
  let mode = Analysis.Poly in
  let dir = fresh_dir () in
  let cs = open_cache_exn dir in
  let cold = Driver.run_sources ~mode ~cache:cs (proj false false) in
  Alcotest.(check (pair int int)) "cold: all SCCs missed" (0, 3)
    (kind_counts cs "scc");
  (* rename a.c -> a2.c: f's SCC re-infers, g and main stay warm *)
  let cs = open_cache_exn dir in
  let renamed = Driver.run_sources ~mode ~cache:cs (proj true false) in
  Alcotest.(check string) "rename: report unchanged"
    (Test_parallel.digest cold) (Test_parallel.digest renamed);
  Alcotest.(check (pair int int)) "rename: exactly one SCC missed" (2, 1)
    (kind_counts cs "scc")

let test_edit_dirty_cone () =
  let mode = Analysis.Poly in
  let dir = fresh_dir () in
  let cs = open_cache_exn dir in
  let _ = Driver.run_sources ~mode ~cache:cs (proj false false) in
  (* edit g's body: only its SCC re-infers; f and main hit *)
  let cs = open_cache_exn dir in
  let edited = Driver.run_sources ~mode ~cache:cs (proj false true) in
  Alcotest.(check (pair int int)) "edit: dirty cone is one SCC" (2, 1)
    (kind_counts cs "scc");
  let fresh = Driver.run_sources ~mode (proj false true) in
  Alcotest.(check string) "edited warm = edited cold"
    (Test_parallel.digest fresh) (Test_parallel.digest edited)

(* ---------------- property: the 4-run identity, serial and jobs:4 ------ *)

let prop_cache_identity =
  QCheck2.Test.make ~count:6
    ~name:"cache: cold/warm/corrupt-one-entry runs byte-identical"
    QCheck2.Gen.(pair (int_bound 10_000) (oneofl [ 1; 4 ]))
    (fun (seed, jobs) ->
      let files = Cbench.Gen.generate_project ~seed ~target_lines:1_200 () in
      let mode = Analysis.Poly in
      let base = Test_parallel.digest (Driver.run_sources ~mode ~jobs files) in
      let dir = fresh_dir () in
      let run () =
        let cs = open_cache_exn dir in
        (Test_parallel.digest (Driver.run_sources ~mode ~jobs ~cache:cs files), cs)
      in
      let cold, _ = run () in
      let warm, cs = run () in
      (* corrupt one entry chosen by the seed, then run again *)
      (match Cache.entry_files cs.Driver.cs_cache with
      | [] -> ()
      | l ->
          let path = List.nth l (seed mod List.length l) in
          flip_byte path (String.length (read_file path) - 1));
      let recovered, _ = run () in
      cold = base && warm = base && recovered = base)

let tests =
  [
    Alcotest.test_case "envelope roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "missing entry is a miss" `Quick
      test_missing_entry_is_a_miss;
    Alcotest.test_case "truncated header rejected" `Quick test_truncated_header;
    Alcotest.test_case "truncated payload rejected" `Quick
      test_truncated_payload;
    Alcotest.test_case "bad magic rejected" `Quick test_bad_magic;
    Alcotest.test_case "version skew rejected" `Quick test_bad_version;
    Alcotest.test_case "foreign lattice rejected" `Quick test_context_mismatch;
    Alcotest.test_case "key mismatch rejected" `Quick test_key_mismatch;
    Alcotest.test_case "stale dependency rejected" `Quick test_stale_dep;
    Alcotest.test_case "dependency count change rejected" `Quick
      test_dep_count_mismatch;
    Alcotest.test_case "payload corruption rejected" `Quick
      test_corrupt_payload;
    Alcotest.test_case "undecodable payload evicted" `Quick
      test_reject_undecodable;
    Alcotest.test_case "lock roundtrip" `Quick test_lock_roundtrip;
    Alcotest.test_case "live lock respected" `Quick
      test_lock_held_by_live_process;
    Alcotest.test_case "stale lock broken" `Quick test_stale_lock_broken;
    Alcotest.test_case "concurrent domains: stats counted exactly" `Quick
      test_concurrent_stats;
    Alcotest.test_case "unusable cache path runs cold" `Quick
      test_open_on_file_path;
    Alcotest.test_case "driver: cold/warm/corrupt identity" `Slow
      test_driver_cold_warm_corrupt;
    Alcotest.test_case "rename invalidates exactly one unit" `Quick
      test_rename_invalidates_one_unit;
    Alcotest.test_case "edit re-infers only the dirty cone" `Quick
      test_edit_dirty_cone;
    QCheck_alcotest.to_alcotest ~long:false prop_cache_identity;
  ]
