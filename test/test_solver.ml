(* Tests for the atomic qualifier-constraint solver (Section 3.1). *)

open Typequal
module Sp = Lattice.Space
module E = Lattice.Elt
module S = Solver

let space () = Sp.create [ Qualifier.const; Qualifier.nonzero ]

let const_elt sp = E.of_names_up sp [ "const" ]

let test_unconstrained () =
  let sp = space () in
  let st = S.create sp in
  let v = S.fresh st in
  (match S.solve st with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "unconstrained system must be satisfiable");
  Alcotest.(check bool) "least = bottom" true
    (E.equal (S.least st v) (E.bottom sp));
  Alcotest.(check bool) "greatest = top" true
    (E.equal (S.greatest st v) (E.top sp));
  Alcotest.(check bool) "free verdict" true
    (S.classify_name st v "const" = S.Free)

let test_lower_bound_propagates () =
  let sp = space () in
  let st = S.create sp in
  let a = S.fresh st and b = S.fresh st and c = S.fresh st in
  S.add_leq_cv st (const_elt sp) a;
  S.add_leq_vv st a b;
  S.add_leq_vv st b c;
  Alcotest.(check bool) "solve ok" true (Result.is_ok (S.solve st));
  Alcotest.(check bool) "const reaches c" true
    (E.has_name sp "const" (S.least st c));
  Alcotest.(check bool) "c forced up" true
    (S.classify_name st c "const" = S.Forced_up)

let test_upper_bound_propagates () =
  let sp = space () in
  let st = S.create sp in
  let a = S.fresh st and b = S.fresh st in
  S.add_leq_vv st a b;
  S.add_leq_vc st b (E.not_name sp "const");
  Alcotest.(check bool) "solve ok" true (Result.is_ok (S.solve st));
  (* greatest solution of a lacks const: a can never be const *)
  Alcotest.(check bool) "a must not be const" true
    (S.classify_name st a "const" = S.Forced_down)

let test_unsat () =
  let sp = space () in
  let st = S.create sp in
  let a = S.fresh st and b = S.fresh st in
  S.add_leq_cv ~reason:"a starts const" st (const_elt sp) a;
  S.add_leq_vv ~reason:"a flows to b" st a b;
  S.add_leq_vc ~reason:"b is assigned" st b (E.not_name sp "const");
  match S.solve st with
  | Ok () -> Alcotest.fail "expected unsat"
  | Error errs ->
      Alcotest.(check bool) "one error" true (List.length errs >= 1);
      let msg = S.error_message (List.hd errs) in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error mentions const: %s" msg)
        true (contains msg "const")

let test_ground_unsat () =
  let sp = space () in
  let st = S.create sp in
  S.add_leq_cc st (E.top sp) (E.bottom sp);
  Alcotest.(check bool) "ground failure detected" true
    (Result.is_error (S.solve st))

let test_ground_sat () =
  let sp = space () in
  let st = S.create sp in
  S.add_leq_cc st (E.bottom sp) (E.top sp);
  S.add_leq_cc st (E.bottom sp) (E.bottom sp);
  Alcotest.(check bool) "trivial ground constraints fine" true
    (Result.is_ok (S.solve st))

let test_cycle () =
  let sp = space () in
  let st = S.create sp in
  let a = S.fresh st and b = S.fresh st and c = S.fresh st in
  S.add_leq_vv st a b;
  S.add_leq_vv st b c;
  S.add_leq_vv st c a;
  S.add_leq_cv st (const_elt sp) b;
  Alcotest.(check bool) "cycles converge" true (Result.is_ok (S.solve st));
  List.iter
    (fun v ->
      Alcotest.(check bool) "whole cycle const" true
        (E.has_name sp "const" (S.least st v)))
    [ a; b; c ]

let test_negative_coordinate () =
  let sp = space () in
  let st = S.create sp in
  let a = S.fresh st in
  (* force nonzero ABSENT via a lower bound (absence is the negative
     coordinate's top, so it propagates upward) *)
  let i = Sp.find sp "nonzero" in
  S.add_leq_cv ~mask:(E.singleton_mask sp i) st
    (E.clear sp i (E.bottom sp))
    a;
  (* and require nonzero present via an upper bound *)
  S.add_leq_vc st a (E.not_name sp "nonzero");
  Alcotest.(check bool) "absent vs required nonzero unsat" true
    (Result.is_error (S.solve st))

let test_masked_independence () =
  let sp = space () in
  let st = S.create sp in
  let a = S.fresh st and b = S.fresh st in
  let i_const = Sp.find sp "const" in
  (* flow only the const coordinate from a to b *)
  S.add_leq_vv ~mask:(E.singleton_mask sp i_const) st a b;
  S.add_leq_cv st (E.top sp) a;
  Alcotest.(check bool) "solve" true (Result.is_ok (S.solve st));
  Alcotest.(check bool) "const flowed" true
    (E.has_name sp "const" (S.least st b));
  (* the nonzero coordinate did NOT flow: b's nonzero stays at its bottom
     (present) even though a's is absent (top) *)
  Alcotest.(check bool) "nonzero not flowed" true
    (E.has_name sp "nonzero" (S.least st b))

let test_eq_vc () =
  let sp = space () in
  let st = S.create sp in
  let a = S.fresh st in
  S.add_eq_vc st a (const_elt sp);
  Alcotest.(check bool) "solve" true (Result.is_ok (S.solve st));
  Alcotest.(check bool) "pinned lo" true (E.equal (S.least st a) (const_elt sp));
  Alcotest.(check bool) "pinned hi" true
    (E.equal (S.greatest st a) (const_elt sp))

let test_resolve_incremental () =
  (* adding constraints after a solve invalidates and re-solves *)
  let sp = space () in
  let st = S.create sp in
  let a = S.fresh st in
  Alcotest.(check bool) "initially free" true
    (S.classify_name st a "const" = S.Free);
  S.add_leq_cv st (const_elt sp) a;
  Alcotest.(check bool) "now forced up" true
    (S.classify_name st a "const" = S.Forced_up)

let test_recording_and_instantiation () =
  let sp = space () in
  let st = S.create sp in
  let shared = S.fresh ~name:"shared" st in
  let (g, local), atoms =
    S.recording st (fun () ->
        let g = S.fresh ~name:"g" st in
        let local = S.fresh ~name:"local" st in
        S.add_leq_vv st g local;
        S.add_leq_vv st local shared;
        (g, local))
  in
  Alcotest.(check int) "two atoms captured" 2 (List.length atoms);
  let sch = S.make_scheme ~locals:[ g; local ] ~atoms in
  (* two instances; constrain one instance's g below ¬const, make the other
     const: must NOT interfere *)
  let rn1 = S.instantiate st sch in
  let rn2 = S.instantiate st sch in
  let g1 = rn1 g and g2 = rn2 g in
  Alcotest.(check bool) "renamed apart" true (S.var_id g1 <> S.var_id g2);
  S.add_leq_vc st g1 (E.not_name sp "const");
  S.add_leq_cv st (const_elt sp) g2;
  Alcotest.(check bool) "instances independent" true
    (Result.is_ok (S.solve st));
  (* but both instances still flow into the shared (non-local) variable *)
  Alcotest.(check bool) "shared receives const from instance 2" true
    (E.has_name sp "const" (S.least st shared))

let test_scheme_cross_talk_via_local () =
  (* The existential binding matters: a scheme-internal chain g <= local <=
     g' must not leak between instances. *)
  let sp = space () in
  let st = S.create sp in
  let (g, g'), atoms =
    S.recording st (fun () ->
        let g = S.fresh st and local = S.fresh st and g' = S.fresh st in
        S.add_leq_vv st g local;
        S.add_leq_vv st local g';
        (g, g'))
  in
  (* find the local var: it's mentioned in atoms but we didn't keep it;
     rebuild the locals list from the atoms *)
  let locals =
    List.concat_map
      (function
        | S.Avv (a, b, _, _) -> [ a; b ]
        | S.Avc (v, _, _, _) | S.Acv (_, v, _, _) -> [ v ])
      atoms
    |> List.sort_uniq (fun a b -> compare (S.var_id a) (S.var_id b))
  in
  let sch = S.make_scheme ~locals ~atoms in
  let rn1 = S.instantiate st sch in
  let rn2 = S.instantiate st sch in
  S.add_leq_cv st (const_elt sp) (rn1 g);
  S.add_leq_vc st (rn2 g') (E.not_name sp "const");
  Alcotest.(check bool) "no cross-instance leak" true
    (Result.is_ok (S.solve st))

let test_naive_agrees () =
  (* the naive baseline solver computes the same least solution *)
  let sp = space () in
  let st = S.create sp in
  let vars = Array.init 50 (fun _ -> S.fresh st) in
  (* a little random-ish DAG plus a cycle *)
  for i = 0 to 48 do
    S.add_leq_vv st vars.(i) vars.((i * 7 + 3) mod 50)
  done;
  S.add_leq_cv st (const_elt sp) vars.(0);
  S.add_leq_cv st (E.top sp) vars.(13);
  ignore (S.solve st);
  let expected = Array.map (fun v -> S.least st v) vars in
  S.solve_least_naive st;
  Array.iteri
    (fun i v ->
      Alcotest.(check bool)
        (Printf.sprintf "var %d agrees" i)
        true
        (E.equal expected.(i) (S.least st v)))
    vars

let tests =
  [
    Alcotest.test_case "unconstrained variable" `Quick test_unconstrained;
    Alcotest.test_case "lower bounds propagate" `Quick
      test_lower_bound_propagates;
    Alcotest.test_case "upper bounds propagate backwards" `Quick
      test_upper_bound_propagates;
    Alcotest.test_case "unsatisfiable flow" `Quick test_unsat;
    Alcotest.test_case "ground unsat" `Quick test_ground_unsat;
    Alcotest.test_case "ground sat" `Quick test_ground_sat;
    Alcotest.test_case "cycles converge" `Quick test_cycle;
    Alcotest.test_case "negative coordinate" `Quick test_negative_coordinate;
    Alcotest.test_case "masked constraints are independent" `Quick
      test_masked_independence;
    Alcotest.test_case "pinning (eq) bounds" `Quick test_eq_vc;
    Alcotest.test_case "incremental re-solve" `Quick test_resolve_incremental;
    Alcotest.test_case "recording and instantiation" `Quick
      test_recording_and_instantiation;
    Alcotest.test_case "no cross-talk through scheme locals" `Quick
      test_scheme_cross_talk_via_local;
    Alcotest.test_case "naive solver agrees" `Quick test_naive_agrees;
  ]

(* ---------------- scheme simplification (Section 6 extension) -------- *)

let test_simplify_chain () =
  let sp = space () in
  let st = S.create sp in
  (* interface g --> l1 --> l2 --> g' with an upper bound on g' *)
  let (g, g'), atoms =
    S.recording st (fun () ->
        let g = S.fresh ~name:"g" st in
        let l1 = S.fresh ~name:"l1" st in
        let l2 = S.fresh ~name:"l2" st in
        let g' = S.fresh ~name:"g'" st in
        S.add_leq_vv st g l1;
        S.add_leq_vv st l1 l2;
        S.add_leq_vv st l2 g';
        S.add_leq_vc st g' (E.not_name sp "const");
        (g, g'))
  in
  let locals =
    List.sort_uniq compare
      (List.concat_map
         (function
           | S.Avv (a, b, _, _) -> [ a; b ]
           | S.Avc (v, _, _, _) | S.Acv (_, v, _, _) -> [ v ])
         atoms)
  in
  let sch = S.make_scheme ~locals ~atoms in
  let sch' = S.simplify_scheme st ~interface:[ g; g' ] sch in
  (* the two internal hops collapse: expect g <= g' and g' <= ¬const *)
  Alcotest.(check int) "atoms shrink to 2" 2 (S.scheme_size sch');
  (* behaviour is unchanged: instantiating and pushing const into g still
     violates g's path to ¬const *)
  let rn = S.instantiate st sch' in
  S.add_leq_cv st (const_elt sp) (rn g);
  Alcotest.(check bool) "still propagates" true (Result.is_error (S.solve st))

let test_simplify_vacuous () =
  let sp = space () in
  let st = S.create sp in
  let g, atoms =
    S.recording st (fun () ->
        let g = S.fresh st in
        let dead = S.fresh st in
        let dead2 = S.fresh st in
        (* dead has only lower bounds: vacuous; dead2 only uppers *)
        S.add_leq_vv st g dead;
        S.add_leq_cv st (const_elt sp) dead;
        S.add_leq_vc st dead2 (E.not_name sp "const");
        g)
  in
  let locals =
    List.sort_uniq compare
      (List.concat_map
         (function
           | S.Avv (a, b, _, _) -> [ a; b ]
           | S.Avc (v, _, _, _) | S.Acv (_, v, _, _) -> [ v ])
         atoms)
  in
  let sch = S.make_scheme ~locals ~atoms in
  let sch' = S.simplify_scheme st ~interface:[ g ] sch in
  Alcotest.(check int) "all atoms vacuous" 0 (S.scheme_size sch')

let test_simplify_preserves_results () =
  (* end to end: poly const inference with and without simplification must
     classify every position identically on the embedded programs and a
     generated benchmark *)
  let sources =
    List.map snd Cbench.Programs.all
    @ [ Cbench.Gen.generate ~seed:17 ~target_lines:600 () ]
  in
  List.iter
    (fun src ->
      let prog = Cqual.Driver.compile src in
      let e1, i1 = Cqual.Analysis.run ~simplify:false Cqual.Analysis.Poly prog in
      let r1 = Cqual.Report.measure e1 i1 in
      let e2, i2 = Cqual.Analysis.run ~simplify:true Cqual.Analysis.Poly prog in
      let r2 = Cqual.Report.measure e2 i2 in
      Alcotest.(check int) "errors equal" r1.Cqual.Report.type_errors
        r2.Cqual.Report.type_errors;
      Alcotest.(check int) "declared equal" r1.Cqual.Report.declared
        r2.Cqual.Report.declared;
      Alcotest.(check int) "possible equal" r1.Cqual.Report.possible
        r2.Cqual.Report.possible;
      Alcotest.(check int) "must equal" r1.Cqual.Report.must
        r2.Cqual.Report.must;
      Alcotest.(check int) "total equal" r1.Cqual.Report.total
        r2.Cqual.Report.total;
      Alcotest.(check
                  (list (pair string string)))
        "verdicts equal"
        (List.map
           (fun (p, v) ->
             (Fmt.str "%s/%a/%d" p.Cqual.Report.p_fun Cqual.Report.pp_where
                p.Cqual.Report.p_where p.Cqual.Report.p_level,
              Fmt.str "%a" Cqual.Report.pp_verdict v))
           r1.Cqual.Report.positions)
        (List.map
           (fun (p, v) ->
             (Fmt.str "%s/%a/%d" p.Cqual.Report.p_fun Cqual.Report.pp_where
                p.Cqual.Report.p_where p.Cqual.Report.p_level,
              Fmt.str "%a" Cqual.Report.pp_verdict v))
           r2.Cqual.Report.positions))
    sources

let simplify_tests =
  [
    Alcotest.test_case "simplify: chain collapse" `Quick test_simplify_chain;
    Alcotest.test_case "simplify: vacuous internals dropped" `Quick
      test_simplify_vacuous;
    Alcotest.test_case "simplify: classifications preserved end-to-end"
      `Quick test_simplify_preserves_results;
  ]

let tests = tests @ simplify_tests

let test_pp_scheme () =
  let sp = space () in
  let st = S.create sp in
  let g, atoms =
    S.recording st (fun () ->
        let g = S.fresh ~name:"g" st in
        S.add_leq_vc st g (E.not_name sp "const");
        g)
  in
  let sch = S.make_scheme ~locals:[ g ] ~atoms in
  let str = Fmt.str "%a" (S.pp_scheme sp) sch in
  Alcotest.(check bool)
    (Printf.sprintf "rendered: %s" str)
    true
    (String.length str > 4 && String.sub str 0 4 = "\xe2\x88\x80g")

let tests = tests @ [ Alcotest.test_case "pp_scheme" `Quick test_pp_scheme ]

(* ------------- union-find / cycle elimination / incremental ---------- *)

let test_last_errors () =
  let sp = space () in
  let st = S.create sp in
  let a = S.fresh st and b = S.fresh st in
  S.add_leq_vv st a b;
  ignore (S.least st a);
  Alcotest.(check int) "no errors yet" 0 (List.length (S.last_errors st));
  S.add_leq_cv st (const_elt sp) a;
  S.add_leq_vc st b (E.not_name sp "const");
  (* regression: a bare query solves silently; last_errors must expose that
     the values come from an unsatisfiable system *)
  ignore (S.least st b);
  Alcotest.(check bool) "errors visible after silent query" true
    (S.last_errors st <> []);
  let n = List.length (S.last_errors st) in
  ignore (S.greatest st a);
  ignore (S.classify_name st a "const");
  Alcotest.(check int) "stable across further queries" n
    (List.length (S.last_errors st))

let test_cycle_collapse () =
  let sp = space () in
  let st = S.create sp in
  let a = S.fresh st and b = S.fresh st and c = S.fresh st in
  let ids = List.map S.var_id [ a; b; c ] in
  S.add_leq_vv st a b;
  S.add_leq_vv st b c;
  S.add_leq_vv st c a;
  let s = S.stats st in
  Alcotest.(check bool) "a cycle collapsed" true (s.S.cycles_collapsed >= 1);
  Alcotest.(check int) "two vars absorbed" 2 s.S.vars_unified;
  Alcotest.(check bool) "one representative" true
    (S.var_id (S.repr a) = S.var_id (S.repr b)
    && S.var_id (S.repr b) = S.var_id (S.repr c));
  Alcotest.(check (list int)) "var ids stay stable" ids
    (List.map S.var_id [ a; b; c ]);
  S.add_leq_cv st (const_elt sp) b;
  Alcotest.(check bool) "still satisfiable" true (Result.is_ok (S.solve st));
  List.iter
    (fun v ->
      Alcotest.(check bool) "whole SCC const" true
        (E.has_name sp "const" (S.least st v)))
    [ a; b; c ]

let test_edge_dedup () =
  let sp = space () in
  let st = S.create sp in
  let a = S.fresh st and b = S.fresh st in
  for _ = 1 to 50 do
    S.add_leq_vv st a b
  done;
  let s = S.stats st in
  Alcotest.(check int) "one edge kept" 1 s.S.edges_added;
  Alcotest.(check int) "rest deduped" 49 s.S.edges_deduped;
  (* a different mask is a different edge *)
  let i = Sp.find sp "const" in
  S.add_leq_vv ~mask:(E.singleton_mask sp i) st a b;
  Alcotest.(check int) "masked edge is distinct" 2 (S.stats st).S.edges_added

let test_bound_dedup () =
  (* constant bounds dedup like edges: same var, constant and mask *)
  let sp = space () in
  let st = S.create sp in
  let a = S.fresh st in
  for _ = 1 to 50 do
    S.add_leq_vc st a (E.not_name sp "const")
  done;
  Alcotest.(check int) "repeat bounds deduped" 49 (S.stats st).S.edges_deduped;
  (* a different mask is a different bound *)
  let i = Sp.find sp "const" in
  S.add_leq_vc ~mask:(E.singleton_mask sp i) st a (E.not_name sp "const");
  Alcotest.(check int) "masked bound is distinct" 49
    (S.stats st).S.edges_deduped

let test_instantiate_bound_dedup () =
  (* regression: instantiation used to re-add identical constant bounds on
     the scheme's free variables every time, bypassing dedup — visible as
     [edges_deduped: 0] on polymorphic runs while provenance lists grew
     with every call site *)
  let sp = space () in
  let st = S.create sp in
  let g = S.fresh ~name:"global" st in
  let local, atoms =
    S.recording st (fun () ->
        let l = S.fresh st in
        S.add_leq_vv st l g;
        S.add_leq_vc st g (E.not_name sp "const");
        l)
  in
  let sch = S.make_scheme ~locals:[ local ] ~atoms in
  let before = (S.stats st).S.edges_deduped in
  for _ = 1 to 10 do
    ignore (S.instantiate st sch : S.var -> S.var)
  done;
  (* each instance freshens [l] (new edge, not a duplicate) but re-emits
     the same bound on the shared [g]: all ten dedup *)
  Alcotest.(check int) "shared bound deduped per instance" (before + 10)
    (S.stats st).S.edges_deduped;
  Alcotest.(check bool) "system stays satisfiable" true
    (match S.solve st with Ok () -> true | Error _ -> false)

let test_masked_cycle_not_unified () =
  let sp = space () in
  let st = S.create sp in
  let a = S.fresh st and b = S.fresh st in
  let mc = E.singleton_mask sp (Sp.find sp "const") in
  (* a two-cycle on the const coordinate only: the variables may still
     differ on nonzero, so unification would be unsound *)
  S.add_leq_vv ~mask:mc st a b;
  S.add_leq_vv ~mask:mc st b a;
  Alcotest.(check int) "masked cycles never unify" 0
    (S.stats st).S.vars_unified;
  Alcotest.(check bool) "distinct representatives" true
    (S.var_id (S.repr a) <> S.var_id (S.repr b));
  (* a full-mask edge one way + masked back edge is not a collapsible
     cycle either *)
  S.add_leq_vv st a b;
  Alcotest.(check int) "still not unified" 0 (S.stats st).S.vars_unified;
  S.add_leq_cv st (E.top sp) a;
  ignore (S.solve st);
  Alcotest.(check bool) "const flowed" true
    (E.has_name sp "const" (S.least st b))

let test_incremental_matches_scratch () =
  let sp = space () in
  let st = S.create sp in
  let vars = Array.init 40 (fun _ -> S.fresh st) in
  for i = 0 to 38 do
    S.add_leq_vv st vars.(i) vars.((i * 11 + 5) mod 40)
  done;
  S.add_leq_cv st (const_elt sp) vars.(3);
  ignore (S.solve st);
  (* grow after the first solve, querying between additions so the
     incremental path is exercised repeatedly *)
  for i = 0 to 9 do
    S.add_leq_vv st vars.(i) vars.(39 - i);
    ignore (S.least st vars.(39 - i))
  done;
  S.add_leq_vc st vars.(7) (E.not_name sp "const");
  ignore (S.solve st);
  let lo = Array.map (S.least st) vars in
  let hi = Array.map (S.greatest st) vars in
  (* the fixpoint is unique: a from-scratch solve must agree *)
  ignore (S.solve_from_scratch st);
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) (Printf.sprintf "lo %d" i) true
        (E.equal lo.(i) (S.least st v));
      Alcotest.(check bool) (Printf.sprintf "hi %d" i) true
        (E.equal hi.(i) (S.greatest st v)))
    vars;
  (* and the constraint-log replay oracle agrees, by original var id *)
  let nb = S.naive_bounds st in
  Array.iteri
    (fun i v ->
      let l, h = nb (S.var_id v) in
      Alcotest.(check bool) (Printf.sprintf "oracle lo %d" i) true
        (E.equal l lo.(i));
      Alcotest.(check bool) (Printf.sprintf "oracle hi %d" i) true
        (E.equal h hi.(i)))
    vars

let tests =
  tests
  @ [
      Alcotest.test_case "last_errors after silent queries" `Quick
        test_last_errors;
      Alcotest.test_case "online cycle collapse" `Quick test_cycle_collapse;
      Alcotest.test_case "edge dedup on insertion" `Quick test_edge_dedup;
      Alcotest.test_case "bound dedup on insertion" `Quick test_bound_dedup;
      Alcotest.test_case "instantiation dedups shared bounds" `Quick
        test_instantiate_bound_dedup;
      Alcotest.test_case "masked cycles stay apart" `Quick
        test_masked_cycle_not_unified;
      Alcotest.test_case "incremental = from-scratch = oracle" `Quick
        test_incremental_matches_scratch;
    ]
