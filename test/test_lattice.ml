(* Tests for the qualifier lattice (Definitions 1-2, Figure 2). *)

open Typequal
module Sp = Lattice.Space
module E = Lattice.Elt

let q_const = Qualifier.const
let q_dynamic = Qualifier.dynamic
let q_nonzero = Qualifier.nonzero

(* The Figure 2 lattice: const x dynamic x nonzero. *)
let fig2 = Sp.create [ q_const; q_dynamic; q_nonzero ]

let test_space_basics () =
  Alcotest.(check int) "size" 3 (Sp.size fig2);
  Alcotest.(check string) "qual 0" "const" (Qualifier.name (Sp.qual fig2 0));
  Alcotest.(check bool) "mem const" true (Sp.mem fig2 "const");
  Alcotest.(check bool) "mem bogus" false (Sp.mem fig2 "bogus");
  Alcotest.(check int) "find nonzero" 2 (Sp.find fig2 "nonzero")

(* Expect a structured [Space_error] with the given stable code. *)
let expect_space_error code f =
  match f () with
  | _ -> Alcotest.failf "expected Space_error %s, got a value" code
  | exception Lattice.Space_error e ->
      Alcotest.(check string) "error code" code e.Lattice.code;
      Alcotest.(check bool) "message non-empty" true
        (String.length e.Lattice.message > 0)

let test_space_dup () =
  expect_space_error "L001" (fun () ->
      Sp.create [ q_const; Qualifier.positive "const" ])

let test_space_unknown () =
  Alcotest.check_raises "unknown qualifier"
    (Lattice.Unknown_qualifier "frob") (fun () ->
      ignore (Sp.find fig2 "frob"))

let test_bottom_top () =
  let bot = E.bottom fig2 and top = E.top fig2 in
  (* bottom: positives absent, negatives present *)
  Alcotest.(check bool) "bot has const" false (E.has_name fig2 "const" bot);
  Alcotest.(check bool) "bot has dynamic" false (E.has_name fig2 "dynamic" bot);
  Alcotest.(check bool) "bot has nonzero" true (E.has_name fig2 "nonzero" bot);
  (* top: positives present, negatives absent *)
  Alcotest.(check bool) "top has const" true (E.has_name fig2 "const" top);
  Alcotest.(check bool) "top has dynamic" true (E.has_name fig2 "dynamic" top);
  Alcotest.(check bool) "top has nonzero" false (E.has_name fig2 "nonzero" top);
  Alcotest.(check bool) "bot <= top" true (E.leq fig2 bot top);
  Alcotest.(check bool) "top <= bot implies trivial lattice" false
    (E.leq fig2 top bot)

(* Figure 2 spot checks: "moving up the lattice adds positive qualifiers or
   removes negative qualifiers". *)
let test_fig2_order () =
  let nz = E.of_names_up fig2 [ "nonzero" ] in
  (* nonzero (and nothing else positive) — this is the bottom *)
  Alcotest.(check bool) "nonzero = bottom" true (E.equal nz (E.bottom fig2));
  let const_nz = E.of_names_up fig2 [ "const"; "nonzero" ] in
  let const_ = E.clear fig2 (Sp.find fig2 "nonzero") const_nz in
  let dyn_nz = E.of_names_up fig2 [ "dynamic"; "nonzero" ] in
  Alcotest.(check bool) "const nonzero <= const" true (E.leq fig2 const_nz const_);
  Alcotest.(check bool) "const </= const nonzero" false (E.leq fig2 const_ const_nz);
  Alcotest.(check bool) "nonzero <= const nonzero" true (E.leq fig2 nz const_nz);
  Alcotest.(check bool) "const nonzero vs dynamic nonzero incomparable" false
    (E.leq fig2 const_nz dyn_nz || E.leq fig2 dyn_nz const_nz)

let test_not () =
  (* not const: top with const pinned absent *)
  let nc = E.not_name fig2 "const" in
  Alcotest.(check bool) "¬const lacks const" false (E.has_name fig2 "const" nc);
  Alcotest.(check bool) "¬const keeps dynamic" true (E.has_name fig2 "dynamic" nc);
  Alcotest.(check bool) "¬const keeps ¬nonzero" false
    (E.has_name fig2 "nonzero" nc);
  (* not nonzero (negative): top with nonzero pinned *present* — asserting
     below it REQUIRES nonzero *)
  let nnz = E.not_name fig2 "nonzero" in
  Alcotest.(check bool) "¬?nonzero has nonzero" true
    (E.has_name fig2 "nonzero" nnz);
  Alcotest.(check bool) "bottom <= ¬const" true (E.leq fig2 (E.bottom fig2) nc);
  Alcotest.(check bool) "top </= ¬const" false (E.leq fig2 (E.top fig2) nc)

(* Exhaustive lattice laws over all 8 elements of the Figure 2 lattice. *)
let test_lattice_laws () =
  let all = E.all fig2 in
  List.iter
    (fun a ->
      Alcotest.(check bool) "refl" true (E.leq fig2 a a);
      Alcotest.(check bool) "bot <= a" true (E.leq fig2 (E.bottom fig2) a);
      Alcotest.(check bool) "a <= top" true (E.leq fig2 a (E.top fig2)))
    all;
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let j = E.join fig2 a b and m = E.meet fig2 a b in
          Alcotest.(check bool) "a <= a|b" true (E.leq fig2 a j);
          Alcotest.(check bool) "b <= a|b" true (E.leq fig2 b j);
          Alcotest.(check bool) "a&b <= a" true (E.leq fig2 m a);
          Alcotest.(check bool) "a&b <= b" true (E.leq fig2 m b);
          Alcotest.(check bool) "join comm" true
            (E.equal j (E.join fig2 b a));
          Alcotest.(check bool) "meet comm" true
            (E.equal m (E.meet fig2 b a));
          (* antisymmetry *)
          if E.leq fig2 a b && E.leq fig2 b a then
            Alcotest.(check bool) "antisym" true (E.equal a b);
          (* leq iff join = b iff meet = a *)
          Alcotest.(check bool) "leq <-> join" (E.leq fig2 a b)
            (E.equal j b);
          Alcotest.(check bool) "leq <-> meet" (E.leq fig2 a b)
            (E.equal m a);
          List.iter
            (fun c ->
              if E.leq fig2 a b && E.leq fig2 b c then
                Alcotest.(check bool) "trans" true (E.leq fig2 a c);
              (* join/meet are least/greatest bounds *)
              if E.leq fig2 a c && E.leq fig2 b c then
                Alcotest.(check bool) "join least" true (E.leq fig2 j c);
              if E.leq fig2 c a && E.leq fig2 c b then
                Alcotest.(check bool) "meet greatest" true (E.leq fig2 c m))
            all)
        all)
    all

let test_masked () =
  let i_const = Sp.find fig2 "const" in
  let mask = E.singleton_mask fig2 i_const in
  let top = E.top fig2 and bot = E.bottom fig2 in
  (* on the const coordinate alone, bottom <= top and not conversely *)
  Alcotest.(check bool) "masked leq" true (E.leq_masked fig2 ~mask bot top);
  Alcotest.(check bool) "masked gt" false (E.leq_masked fig2 ~mask top bot);
  (* differing only outside the mask compares equal under the mask *)
  let dyn = E.of_names_up fig2 [ "dynamic" ] in
  Alcotest.(check bool) "outside mask ignored" true
    (E.leq_masked fig2 ~mask dyn bot && E.leq_masked fig2 ~mask bot dyn)

let test_embed () =
  let i = Sp.find fig2 "const" in
  let mask = E.singleton_mask fig2 i in
  let top = E.top fig2 in
  let e = E.embed_bottom fig2 ~mask top in
  (* const coordinate from top (present), everything else at bottom *)
  Alcotest.(check bool) "const kept" true (E.has fig2 i e);
  Alcotest.(check bool) "dynamic dropped" false (E.has_name fig2 "dynamic" e);
  Alcotest.(check bool) "nonzero at bottom (present)" true
    (E.has_name fig2 "nonzero" e);
  let e' = E.embed_top fig2 ~mask (E.bottom fig2) in
  Alcotest.(check bool) "const absent kept" false (E.has fig2 i e');
  Alcotest.(check bool) "dynamic at top" true (E.has_name fig2 "dynamic" e')

let test_annot_assert_builders () =
  (* annotation: built up from bottom *)
  let a = E.of_names_up fig2 [ "const" ] in
  Alcotest.(check bool) "annot const" true (E.has_name fig2 "const" a);
  Alcotest.(check bool) "annot keeps nonzero (bottom)" true
    (E.has_name fig2 "nonzero" a);
  (* assertion bound: built down from top *)
  let b = E.of_names_bound fig2 [ "const" ] in
  Alcotest.(check bool) "bound forbids const" false (E.has_name fig2 "const" b);
  Alcotest.(check bool) "bound keeps dynamic" true (E.has_name fig2 "dynamic" b)

let test_max_size () =
  (* Total bit width is capped at 62 so every mask fits a non-negative
     OCaml int; exceeding it is a structured diagnostic, not a silent
     overflow (the old code relied on [1 lsl size] wrapping). *)
  let quals =
    List.init 63 (fun i -> Qualifier.positive (Printf.sprintf "q%d" i))
  in
  expect_space_error "L002" (fun () -> Sp.create quals);
  (* exactly 62 one-bit coordinates is fine *)
  let sp = Sp.create (List.filteri (fun i _ -> i < 62) quals) in
  Alcotest.(check int) "62 ok" 62 (Sp.size sp);
  Alcotest.(check int) "62 bits" 62 (Sp.total_bits sp);
  (* the cap counts bits, not qualifiers: a wide ordered coordinate can
     blow the budget with far fewer than 62 qualifiers *)
  let chain9 =
    Qualifier.ordered "lvl"
      (Qualifier.Order.chain_exn (List.init 9 (Printf.sprintf "l%d")))
  in
  let classics =
    List.init 55 (fun i -> Qualifier.positive (Printf.sprintf "c%d" i))
  in
  expect_space_error "L002" (fun () -> Sp.create (chain9 :: classics))

(* ---- user-defined orders: construction and validation ---- *)

module O = Qualifier.Order

let lv o name =
  match O.find_level o name with
  | Some i -> i
  | None -> Alcotest.failf "level %s not found" name

let chk_err name pred = function
  | Ok _ -> Alcotest.failf "%s: expected an error" name
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: diagnostic mentions cause (%s)" name msg)
        true (pred msg)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_order_construction () =
  (* a chain *)
  let c = O.chain_exn [ "low"; "mid"; "high" ] in
  Alcotest.(check int) "chain size" 3 (O.size c);
  Alcotest.(check int) "chain bits" 2 (O.bits c);
  Alcotest.(check bool) "low <= high" true
    (O.leq c (lv c "low") (lv c "high"));
  Alcotest.(check bool) "high </= mid" false
    (O.leq c (lv c "high") (lv c "mid"));
  (* a diamond: bot < l, r < top — a lattice, 3 join-irreducibles? no:
     l, r, and top = l|r, so irreducibles are l and r only -> 2 bits *)
  let d =
    O.of_levels
      ~levels:[ "bot"; "l"; "r"; "top" ]
      ~order:[ ("bot", "l"); ("bot", "r"); ("l", "top"); ("r", "top") ]
  in
  match d with
  | Error e -> Alcotest.failf "diamond should build: %s" e
  | Ok d ->
      Alcotest.(check int) "diamond bits" 2 (O.bits d);
      let l = lv d "l" and r = lv d "r" in
      Alcotest.(check bool) "l vs r incomparable" false
        (O.leq d l r || O.leq d r l);
      Alcotest.(check int) "l|r = top" (lv d "top") (O.join d l r);
      Alcotest.(check int) "l&r = bot" (lv d "bot") (O.meet d l r)

let test_order_rejects () =
  (* cycle: antisymmetry violated *)
  chk_err "cycle"
    (fun m -> contains m "cycle" || contains m "antisym")
    (O.of_levels ~levels:[ "a"; "b" ] ~order:[ ("a", "b"); ("b", "a") ]);
  (* two maximal elements: no lub for the pair *)
  chk_err "no lub"
    (fun m -> contains m "lub" || contains m "upper bound")
    (O.of_levels ~levels:[ "bot"; "x"; "y" ]
       ~order:[ ("bot", "x"); ("bot", "y") ]);
  (* M3: a lattice, but not distributive — Birkhoff bits would make
     join inexact, so it must be rejected with a diagnostic naming the
     offending triple *)
  chk_err "M3 non-distributive"
    (fun m -> contains m "distribut")
    (O.of_levels
       ~levels:[ "bot"; "a"; "b"; "c"; "top" ]
       ~order:
         [
           ("bot", "a"); ("bot", "b"); ("bot", "c");
           ("a", "top"); ("b", "top"); ("c", "top");
         ]);
  (* duplicate level name *)
  chk_err "dup level"
    (fun m -> contains m "duplicate")
    (O.of_levels ~levels:[ "a"; "a" ] ~order:[])

let test_order_encoding () =
  (* encodings are upsets of join-irreducibles: leq = subset, join = or,
     meet = and, checked against the order relation itself *)
  let d =
    match
      O.of_levels
        ~levels:[ "bot"; "l"; "r"; "top" ]
        ~order:[ ("bot", "l"); ("bot", "r"); ("l", "top"); ("r", "top") ]
    with
    | Ok d -> d
    | Error e -> Alcotest.failf "diamond: %s" e
  in
  let n = O.size d in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      let ea = O.encode d a and eb = O.encode d b in
      Alcotest.(check bool)
        (Printf.sprintf "leq %d %d = subset" a b)
        (O.leq d a b)
        (ea land lnot eb = 0);
      Alcotest.(check int)
        (Printf.sprintf "join %d %d = or" a b)
        (O.encode d (O.join d a b))
        (ea lor eb);
      Alcotest.(check int)
        (Printf.sprintf "meet %d %d = and" a b)
        (O.encode d (O.meet d a b))
        (ea land eb)
    done
  done

(* a mixed space: classic two-point coordinates + a three-level chain *)
let taint3 =
  Qualifier.ordered "taint"
    (O.chain_exn [ "untainted"; "maybe_tainted"; "tainted" ])

let mixed = Sp.create [ q_const; taint3; q_nonzero ]

let test_mixed_space () =
  Alcotest.(check int) "3 coordinates" 3 (Sp.size mixed);
  Alcotest.(check int) "4 bits total" 4 (Sp.total_bits mixed);
  Alcotest.(check int) "taint is 2 bits wide" 2 (Sp.width mixed 1);
  (* level names resolve to their coordinate *)
  (match Sp.resolve mixed "maybe_tainted" with
  | Some (`Level (1, _)) -> ()
  | _ -> Alcotest.fail "maybe_tainted should resolve to coordinate 1");
  (match Sp.resolve mixed "const" with
  | Some (`Qual 0) -> ()
  | _ -> Alcotest.fail "const should resolve as a qualifier");
  (* level round-trip through elements *)
  let i = Sp.find mixed "taint" in
  let taint_order =
    match Sp.order mixed i with
    | Some o -> o
    | None -> Alcotest.fail "taint should be ordered"
  in
  let x =
    E.with_level mixed i
      (lv taint_order "maybe_tainted")
      (E.bottom mixed)
  in
  Alcotest.(check string) "level name" "maybe_tainted"
    (E.level_name mixed i x);
  (* of_names_up with a level name raises that coordinate *)
  let y = E.of_names_up mixed [ "const"; "maybe_tainted" ] in
  Alcotest.(check bool) "const present" true (E.has_name mixed "const" y);
  Alcotest.(check string) "level raised" "maybe_tainted"
    (E.level_name mixed i y);
  (* of_names_bound with a level name caps that coordinate *)
  let b = E.of_names_bound mixed [ "maybe_tainted" ] in
  Alcotest.(check string) "level capped" "maybe_tainted"
    (E.level_name mixed i b);
  Alcotest.(check bool) "other coords at top" true
    (E.has_name mixed "const" b);
  (* masks cover whole coordinate ranges *)
  let m = E.singleton_mask mixed i in
  Alcotest.(check bool) "range mask atomic" true
    (m = E.mask_of_names mixed [ "tainted" ]
    && m = E.mask_of_names mixed [ "taint" ])

(* exhaustive lattice laws again, now on the mixed space (12 elements) *)
let test_mixed_laws () =
  let all = E.all mixed in
  Alcotest.(check int) "12 elements" 12 (List.length all);
  List.iter
    (fun a ->
      Alcotest.(check bool) "refl" true (E.leq mixed a a);
      Alcotest.(check bool) "bot <= a" true (E.leq mixed (E.bottom mixed) a);
      Alcotest.(check bool) "a <= top" true (E.leq mixed a (E.top mixed));
      List.iter
        (fun b ->
          let j = E.join mixed a b and m = E.meet mixed a b in
          Alcotest.(check bool) "a <= a|b" true (E.leq mixed a j);
          Alcotest.(check bool) "a&b <= a" true (E.leq mixed m a);
          Alcotest.(check bool) "leq <-> join" (E.leq mixed a b) (E.equal j b);
          List.iter
            (fun c ->
              if E.leq mixed a c && E.leq mixed b c then
                Alcotest.(check bool) "join least" true (E.leq mixed j c);
              if E.leq mixed c a && E.leq mixed c b then
                Alcotest.(check bool) "meet greatest" true (E.leq mixed c m))
            all)
        all)
    all

let test_config_parse () =
  let src =
    "# three-level taint\n\
     qualifier taint {\n\
    \  levels untainted maybe_tainted tainted\n\
    \  order untainted < maybe_tainted < tainted\n\
     }\n\
     qualifier const positive\n\
     qualifier nonnull negative\n"
  in
  match Qualifier.Config.parse src with
  | Error e -> Alcotest.failf "config should parse: %s" e
  | Ok quals ->
      Alcotest.(check int) "3 qualifiers" 3 (List.length quals);
      let sp = Sp.create quals in
      Alcotest.(check int) "4 bits" 4 (Sp.total_bits sp);
      Alcotest.(check bool) "taint ordered" true (Sp.order sp 0 <> None);
      (match Qualifier.polarity (Sp.qual sp 2) with
      | Qualifier.Negative -> ()
      | Qualifier.Positive -> Alcotest.fail "nonnull should be negative");
      (* bad input carries a line number *)
      (match
         Qualifier.Config.parse
           "qualifier taint {\n  order a < b\n  order b < a\n}\n"
       with
      | Ok _ -> Alcotest.fail "cycle should be rejected"
      | Error m ->
          Alcotest.(check bool) ("mentions line: " ^ m) true
            (contains m "line"))

let tests =
  [
    Alcotest.test_case "space basics" `Quick test_space_basics;
    Alcotest.test_case "duplicate qualifier rejected" `Quick test_space_dup;
    Alcotest.test_case "unknown qualifier raises" `Quick test_space_unknown;
    Alcotest.test_case "bottom and top" `Quick test_bottom_top;
    Alcotest.test_case "figure 2 ordering" `Quick test_fig2_order;
    Alcotest.test_case "not_ (the paper's ¬q)" `Quick test_not;
    Alcotest.test_case "lattice laws (exhaustive)" `Quick test_lattice_laws;
    Alcotest.test_case "masked comparison" `Quick test_masked;
    Alcotest.test_case "embeddings" `Quick test_embed;
    Alcotest.test_case "annotation/assertion builders" `Quick
      test_annot_assert_builders;
    Alcotest.test_case "space size limit" `Quick test_max_size;
    Alcotest.test_case "order construction (chain, diamond)" `Quick
      test_order_construction;
    Alcotest.test_case "order validation rejects bad posets" `Quick
      test_order_rejects;
    Alcotest.test_case "upset encoding is exact" `Quick test_order_encoding;
    Alcotest.test_case "mixed classic/ordered space" `Quick test_mixed_space;
    Alcotest.test_case "lattice laws on mixed space" `Quick test_mixed_laws;
    Alcotest.test_case "lattice config files parse" `Quick test_config_parse;
  ]
