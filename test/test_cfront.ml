(* Tests for the mini-C frontend: lexer, declarators, statements,
   expressions, typedef expansion, struct tables. *)

open Cfront
open Cast

let parse src =
  match Cparse.parse_program_result src with
  | Ok p -> p
  | Error m -> Alcotest.failf "C parse error: %s\nin:\n%s" m src

let parse_err src =
  match Cparse.parse_program_result src with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "expected C parse error for:\n%s" src

let first_var src =
  match List.find_opt (function GVar _ -> true | _ -> false) (parse src) with
  | Some (GVar d) -> d
  | _ -> Alcotest.fail "no variable parsed"

let type_str src = ctype_to_string (first_var src).d_type

let test_lexer () =
  let toks = Clexer.tokenize "int x = 0x1f + 017; /* c */ // line\n\"a\\nb\" 'c' $tainted" in
  let tts = List.map fst toks in
  Alcotest.(check bool) "has hex" true (List.mem (Ctoken.INT_LIT 31) tts);
  Alcotest.(check bool) "has octal" true (List.mem (Ctoken.INT_LIT 15) tts);
  Alcotest.(check bool) "has string" true
    (List.mem (Ctoken.STRING_LIT "a\nb") tts);
  Alcotest.(check bool) "has char" true (List.mem (Ctoken.CHAR_LIT 'c') tts);
  Alcotest.(check bool) "has qualname" true
    (List.mem (Ctoken.QUALNAME "tainted") tts)

let test_simple_decls () =
  Alcotest.(check string) "int" "int" (type_str "int x;");
  Alcotest.(check string) "const int" "const int" (type_str "const int x;");
  Alcotest.(check string) "int const (postfix)" "const int"
    (type_str "int const x;");
  Alcotest.(check string) "unsigned" "unsigned int" (type_str "unsigned x;");
  Alcotest.(check string) "implicit-sign char" "char" (type_str "char x;")

let test_pointer_decls () =
  (match (first_var "int *p;").d_type with
  | TPtr (TInt (IInt, []), []) -> ()
  | t -> Alcotest.failf "int*: %s" (ctype_to_string t));
  (* const int *p : pointer to const int *)
  (match (first_var "const int *p;").d_type with
  | TPtr (TInt (IInt, [ "const" ]), []) -> ()
  | t -> Alcotest.failf "const int*: %s" (ctype_to_string t));
  (* int * const p : const pointer to int *)
  (match (first_var "int * const p;").d_type with
  | TPtr (TInt (IInt, []), [ "const" ]) -> ()
  | t -> Alcotest.failf "int* const: %s" (ctype_to_string t));
  (* int * const * p : pointer to const pointer to int *)
  match (first_var "int * const * p;").d_type with
  | TPtr (TPtr (TInt (IInt, []), [ "const" ]), []) -> ()
  | t -> Alcotest.failf "int*const*: %s" (ctype_to_string t)

let test_array_and_funptr () =
  (match (first_var "int a[10];").d_type with
  | TArray (TInt _, Some 10, _) -> ()
  | t -> Alcotest.failf "array: %s" (ctype_to_string t));
  (match (first_var "int a[2][3];").d_type with
  | TArray (TArray (TInt _, Some 3, _), Some 2, _) -> ()
  | t -> Alcotest.failf "2d array: %s" (ctype_to_string t));
  (match (first_var "int *a[4];").d_type with
  | TArray (TPtr (TInt _, _), Some 4, _) -> ()
  | t -> Alcotest.failf "array of ptr: %s" (ctype_to_string t));
  (match (first_var "int (*a)[4];").d_type with
  | TPtr (TArray (TInt _, Some 4, _), _) -> ()
  | t -> Alcotest.failf "ptr to array: %s" (ctype_to_string t));
  (* function pointer *)
  match (first_var "int (*f)(int, char *);").d_type with
  | TPtr (TFun (TInt _, [ (_, TInt _); (_, TPtr (TInt (IChar, _), _)) ], false), _)
    -> ()
  | t -> Alcotest.failf "funptr: %s" (ctype_to_string t)

let test_fundef () =
  let p = parse "int add(int a, int b) { return a + b; }" in
  match p with
  | [ GFun f ] ->
      Alcotest.(check string) "name" "add" f.f_name;
      Alcotest.(check int) "params" 2 (List.length f.f_params);
      Alcotest.(check bool) "not varargs" false f.f_varargs;
      (match f.f_body with
      | [ SReturn (Some (EBinop (Add, EVar "a", EVar "b"))) ] -> ()
      | _ -> Alcotest.fail "body shape")
  | _ -> Alcotest.fail "expected one function"

let test_varargs_proto () =
  let p = parse "int printf(const char *fmt, ...);" in
  match p with
  | [ GProto ("printf", TFun (TInt _, [ _ ], true), _) ] -> ()
  | _ -> Alcotest.fail "printf proto"

let test_struct_def () =
  let p = parse "struct st { int x; char *name; } a, b;" in
  let comps = List.filter_map (function GComp (t, u, fs, _) -> Some (t, u, fs) | _ -> None) p in
  (match comps with
  | [ ("st", false, [ ("x", TInt _); ("name", TPtr (TInt (IChar, _), _)) ]) ] -> ()
  | _ -> Alcotest.fail "struct fields");
  let vars = List.filter_map (function GVar d -> Some d.d_name | _ -> None) p in
  Alcotest.(check (list string)) "two vars" [ "a"; "b" ] vars

let test_typedef () =
  let p = parse "typedef int *ip; ip c, d;" in
  let prog = Cprog.build p in
  let c = Hashtbl.find prog.Cprog.globals "c" in
  match Cprog.expand prog c.d_type with
  | TPtr (TInt _, _) -> ()
  | t -> Alcotest.failf "typedef expansion: %s" (ctype_to_string t)

let test_typedef_quals_merge () =
  let p = parse "typedef char *str; const str s;" in
  let prog = Cprog.build p in
  let s = Hashtbl.find prog.Cprog.globals "s" in
  (* const str = char * const (const applies to the pointer) *)
  match Cprog.expand prog s.d_type with
  | TPtr (TInt (IChar, _), q) -> Alcotest.(check bool) "const on ptr" true (is_const q)
  | t -> Alcotest.failf "const typedef: %s" (ctype_to_string t)

let test_expr_precedence () =
  let p = parse "int f(void) { return 1 + 2 * 3 < 4 && 5 || 6; }" in
  match p with
  | [ GFun { f_body = [ SReturn (Some e) ]; _ } ] -> (
      match e with
      | EBinop (LOr, EBinop (LAnd, EBinop (Lt, EBinop (Add, EInt 1, EBinop (Mul, EInt 2, EInt 3)), EInt 4), EInt 5), EInt 6)
        -> ()
      | _ -> Alcotest.fail "precedence shape")
  | _ -> Alcotest.fail "no function"

let test_cast_vs_paren () =
  let body src =
    match parse src with
    | [ GFun { f_body = [ SReturn (Some e) ]; _ } ] -> e
    | [ _; GFun { f_body = [ SReturn (Some e) ]; _ } ] -> e
    | _ -> Alcotest.fail "no function"
  in
  (match body "int f(int x) { return (int)x; }" with
  | ECast (TInt _, EVar "x") -> ()
  | _ -> Alcotest.fail "cast");
  (match body "int f(int x) { return (x); }" with
  | EVar "x" -> ()
  | _ -> Alcotest.fail "paren");
  (* typedef name makes it a cast *)
  match body "typedef int T; int f(int x) { return (T)x; }" with
  | ECast (TNamed ("T", _), EVar "x") -> ()
  | _ -> Alcotest.fail "typedef cast"

let test_statements () =
  let src =
    "int f(int n) {\n\
     int i, s = 0;\n\
     for (i = 0; i < n; i++) { s += i; }\n\
     while (s > 100) s--;\n\
     do { s++; } while (s < 10);\n\
     switch (n) { case 1: s = 1; break; default: s = 2; }\n\
     if (s) return s; else return -s;\n\
     }"
  in
  match parse src with
  | [ GFun f ] -> Alcotest.(check int) "stmt count" 6 (List.length f.f_body)
  | _ -> Alcotest.fail "statements"

let test_member_access () =
  let src =
    "struct p { int x; struct p *next; };\n\
     int f(struct p *l) { return l->next->x + (*l).x; }"
  in
  match parse src with
  | [ GComp _; GFun { f_body = [ SReturn (Some e) ]; _ } ] -> (
      match e with
      | EBinop (Add, EArrow (EArrow (EVar "l", "next"), "x"), EMember (EDeref (EVar "l"), "x"))
        -> ()
      | _ -> Alcotest.fail "member shape")
  | _ -> Alcotest.fail "member parse"

let test_enum () =
  let p = parse "enum color { RED, GREEN = 5, BLUE }; int f(void) { return BLUE; }" in
  (* enum constants substitute as integers *)
  match p with
  | [ GEnum ("color", items, _); GFun { f_body = [ SReturn (Some (EInt 6)) ]; _ } ]
    ->
      Alcotest.(check (list (pair string int)))
        "items"
        [ ("RED", 0); ("GREEN", 5); ("BLUE", 6) ]
        items
  | _ -> Alcotest.fail "enum"

let test_string_concat_and_escape () =
  let p = parse "char *s = \"ab\" \"cd\";" in
  match p with
  | [ GVar { d_init = Some (EString "abcd"); _ } ] -> ()
  | _ -> Alcotest.fail "string concat"

let test_init_list () =
  let p = parse "int a[3] = {1, 2, 3}; struct s { int x; int y; } v = { .x = 1, .y = 2 };" in
  let inits =
    List.filter_map (function GVar { d_init = Some i; _ } -> Some i | _ -> None) p
  in
  match inits with
  | [ EInitList [ EInt 1; EInt 2; EInt 3 ]; EInitList [ EInt 1; EInt 2 ] ] -> ()
  | _ -> Alcotest.fail "init lists"

let test_user_qualifier () =
  (* Section 2.5: $-prefixed user qualifiers in declarations *)
  let d = first_var "$tainted char *input;" in
  match d.d_type with
  | TPtr (TInt (IChar, q), _) ->
      Alcotest.(check bool) "tainted recorded" true (has_qual "tainted" q)
  | t -> Alcotest.failf "user qual: %s" (ctype_to_string t)

let test_preprocessor_skipped () =
  let p = parse "#include <stdio.h>\n#define X 3\nint x;" in
  Alcotest.(check int) "one global" 1 (List.length p)

let test_parse_errors () =
  parse_err "int x";
  parse_err "int f( {";
  parse_err "struct { int; } x;";
  parse_err "int 3x;"

let test_bitfields_and_unions () =
  let p = parse "union u { int flags : 4; char c; }; union u v;" in
  match p with
  | [ GComp ("u", true, fields, _); GVar _ ] ->
      Alcotest.(check int) "fields" 2 (List.length fields)
  | _ -> Alcotest.fail "union/bitfield"

let test_static_and_extern () =
  let p = parse "static int hidden(void) { return 1; } extern int g;" in
  match p with
  | [ GFun f; GVar _ ] -> Alcotest.(check bool) "static" true f.f_static
  | _ -> Alcotest.fail "static/extern"

let test_comma_and_ternary () =
  match parse "int f(int a) { return a ? 1 : (a = 2, 3); }" with
  | [ GFun { f_body = [ SReturn (Some (ECond (EVar "a", EInt 1, EComma (EAssign _, EInt 3)))) ]; _ } ]
    -> ()
  | _ -> Alcotest.fail "comma/ternary"

let test_sizeof () =
  match parse "int f(int *p) { return sizeof(int) + sizeof p; }" with
  | [ GFun { f_body = [ SReturn (Some (EBinop (Add, ESizeofT (TInt _), ESizeofE (EVar "p")))) ]; _ } ]
    -> ()
  | _ -> Alcotest.fail "sizeof"

let tests =
  [
    Alcotest.test_case "lexer" `Quick test_lexer;
    Alcotest.test_case "simple declarations" `Quick test_simple_decls;
    Alcotest.test_case "pointer declarators with const" `Quick
      test_pointer_decls;
    Alcotest.test_case "arrays and function pointers" `Quick
      test_array_and_funptr;
    Alcotest.test_case "function definition" `Quick test_fundef;
    Alcotest.test_case "varargs prototype" `Quick test_varargs_proto;
    Alcotest.test_case "struct definition" `Quick test_struct_def;
    Alcotest.test_case "typedef expansion" `Quick test_typedef;
    Alcotest.test_case "typedef qualifier merge" `Quick
      test_typedef_quals_merge;
    Alcotest.test_case "expression precedence" `Quick test_expr_precedence;
    Alcotest.test_case "cast vs parenthesis" `Quick test_cast_vs_paren;
    Alcotest.test_case "statements" `Quick test_statements;
    Alcotest.test_case "member access" `Quick test_member_access;
    Alcotest.test_case "enums substitute" `Quick test_enum;
    Alcotest.test_case "string concat/escapes" `Quick
      test_string_concat_and_escape;
    Alcotest.test_case "initializer lists" `Quick test_init_list;
    Alcotest.test_case "$user qualifiers" `Quick test_user_qualifier;
    Alcotest.test_case "preprocessor lines skipped" `Quick
      test_preprocessor_skipped;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "unions and bitfields" `Quick
      test_bitfields_and_unions;
    Alcotest.test_case "static and extern" `Quick test_static_and_extern;
    Alcotest.test_case "comma and ternary" `Quick test_comma_and_ternary;
    Alcotest.test_case "sizeof" `Quick test_sizeof;
  ]

(* ---------------- additional robustness ---------------- *)

let test_comma_decls () =
  let p = parse "int a = 1, *b, c[3];" in
  let names = List.filter_map (function GVar d -> Some d.d_name | _ -> None) p in
  Alcotest.(check (list string)) "names" [ "a"; "b"; "c" ] names;
  match p with
  | [ GVar { d_init = Some (EInt 1); _ }; GVar { d_type = TPtr _; _ };
      GVar { d_type = TArray (_, Some 3, _); _ } ] -> ()
  | _ -> Alcotest.fail "comma decl shapes"

let test_nested_struct () =
  let p =
    parse
      "struct inner { int x; };\n\
       struct outer { struct inner i; struct inner *pi; };\n\
       int f(struct outer *o) { return o->i.x + o->pi->x; }"
  in
  Alcotest.(check int) "globals" 3 (List.length p)

let test_array_of_funptr () =
  match (first_var "int (*handlers[4])(char *);").d_type with
  | TArray (TPtr (TFun (TInt _, [ _ ], false), _), Some 4, _) -> ()
  | t -> Alcotest.failf "array of funptr: %s" (ctype_to_string t)

let test_funptr_returning_funptr () =
  (* "int ( *f(void) )(int)": function returning pointer to function *)
  match parse "int (*f(void))(int);" with
  | [ GProto ("f", TFun (TPtr (TFun (TInt _, [ _ ], false), _), [], false), _) ]
    -> ()
  | _ -> Alcotest.fail "function returning function pointer"

let test_shift_and_mod_precedence () =
  let body src =
    match parse src with
    | [ GFun { f_body = [ SReturn (Some e) ]; _ } ] -> e
    | _ -> Alcotest.fail "no function"
  in
  (match body "int f(int a) { return a << 2 + 1; }" with
  | EBinop (Shl, EVar "a", EBinop (Add, EInt 2, EInt 1)) -> ()
  | _ -> Alcotest.fail "shift binds looser than +");
  match body "int f(int a) { return a % 3 * 2; }" with
  | EBinop (Mul, EBinop (Mod, EVar "a", EInt 3), EInt 2) -> ()
  | _ -> Alcotest.fail "% and * same level, left assoc"

let test_unary_chain () =
  match parse "int f(int *p) { return -*p + !*p + ~*p; }" with
  | [ GFun _ ] -> ()
  | _ -> Alcotest.fail "unary chain"

let test_assignment_ops () =
  let src =
    "void f(int x) { x += 1; x -= 2; x *= 3; x /= 4; x %= 5; x &= 6; x |= 7; x ^= 8; x <<= 1; x >>= 1; }"
  in
  match parse src with
  | [ GFun { f_body; _ } ] -> Alcotest.(check int) "10 stmts" 10 (List.length f_body)
  | _ -> Alcotest.fail "assign ops"

let test_char_escapes () =
  let toks = Clexer.tokenize {|'\n' '\t' '\\' '\'' '\0'|} in
  let cs = List.filter_map (function Ctoken.CHAR_LIT c, _ -> Some c | _ -> None) toks in
  Alcotest.(check (list char)) "escapes" [ '\n'; '\t'; '\\'; '\''; '\000' ] cs

let test_hex_and_suffixes () =
  let toks = Clexer.tokenize "0xFF 10L 20UL 077" in
  let ns = List.filter_map (function Ctoken.INT_LIT n, _ -> Some n | _ -> None) toks in
  Alcotest.(check (list int)) "values" [ 255; 10; 20; 63 ] ns

let test_empty_function_and_void () =
  match parse "void f(void) { }" with
  | [ GFun { f_params = []; f_body = []; _ } ] -> ()
  | _ -> Alcotest.fail "empty fn"

let test_lines_counted () =
  Alcotest.(check int) "lines" 3 (Cprog.count_lines "a\nb\nc")

let test_const_in_cast () =
  match parse "char *f(const char *s) { return (char *)s; }" with
  | [ GFun { f_body = [ SReturn (Some (ECast (TPtr (TInt (IChar, []), []), EVar "s"))) ]; _ } ]
    -> ()
  | _ -> Alcotest.fail "cast type"

let test_forward_struct_ref () =
  (* a struct can reference itself and a not-yet-defined struct through a
     pointer *)
  let p =
    parse
      "struct a;\n\
       struct b { struct a *pa; struct b *next; };\n\
       struct a { struct b inner; };\n\
       int f(struct b *x) { return 0; }"
  in
  Alcotest.(check bool) "parsed" true (List.length p >= 3)

let extra_tests =
  [
    Alcotest.test_case "comma declarations" `Quick test_comma_decls;
    Alcotest.test_case "nested structs" `Quick test_nested_struct;
    Alcotest.test_case "array of function pointers" `Quick
      test_array_of_funptr;
    Alcotest.test_case "function returning function pointer" `Quick
      test_funptr_returning_funptr;
    Alcotest.test_case "shift/mod precedence" `Quick
      test_shift_and_mod_precedence;
    Alcotest.test_case "unary chains" `Quick test_unary_chain;
    Alcotest.test_case "compound assignment operators" `Quick
      test_assignment_ops;
    Alcotest.test_case "char escapes" `Quick test_char_escapes;
    Alcotest.test_case "hex/octal/suffixed literals" `Quick
      test_hex_and_suffixes;
    Alcotest.test_case "empty void function" `Quick
      test_empty_function_and_void;
    Alcotest.test_case "line counting" `Quick test_lines_counted;
    Alcotest.test_case "const in cast" `Quick test_const_in_cast;
    Alcotest.test_case "forward struct references" `Quick
      test_forward_struct_ref;
  ]

(* ---------------- flat token buffer vs legacy list lexer ------------- *)

(* tokenize_buf is the per-unit frontend's allocation-lean lexer; it must
   agree with tokenize_partial token-for-token, span-for-span, and
   diagnostic-for-diagnostic — on clean sources and on every recovery
   path (bad characters, unterminated constructs, the error cap) *)
let check_tokbuf_parity label ?max_errors src =
  let toks_l, diags_l = Clexer.tokenize_partial ?max_errors src in
  let tb, diags_b = Clexer.tokenize_buf ?max_errors src in
  Alcotest.(check int)
    (label ^ ": token count")
    (List.length toks_l) (Tokbuf.length tb);
  List.iteri
    (fun i (tk, sp) ->
      if Tokbuf.tok tb i <> tk then
        Alcotest.failf "%s: token %d differs" label i;
      if Tokbuf.span tb i <> sp then
        Alcotest.failf "%s: span %d differs (%d:%d-%d:%d vs %d:%d-%d:%d)"
          label i sp.Diag.sl sp.Diag.sc sp.Diag.el sp.Diag.ec
          (Tokbuf.span tb i).Diag.sl (Tokbuf.span tb i).Diag.sc
          (Tokbuf.span tb i).Diag.el (Tokbuf.span tb i).Diag.ec)
    toks_l;
  Alcotest.(check (list string))
    (label ^ ": diagnostics")
    (List.map Diag.to_string diags_l)
    (List.map Diag.to_string diags_b)

let test_tokbuf_parity () =
  List.iter
    (fun (name, src) -> check_tokbuf_parity name src)
    Cbench.Programs.all;
  List.iter
    (fun (name, src) -> check_tokbuf_parity ("mini/" ^ name) src)
    Cbench.Programs.miniproject;
  List.iter
    (fun seed ->
      check_tokbuf_parity
        (Printf.sprintf "gen seed %d" seed)
        (Cbench.Gen.generate ~seed ~target_lines:500 ()))
    [ 41; 42 ]

let test_tokbuf_parity_on_errors () =
  List.iter
    (fun (label, src) -> check_tokbuf_parity label src)
    [
      ("stray chars", "int a;\n@\nint b;\n`\nint c;\n");
      ("unterminated string", "int a;\nchar *s = \"oops;\nint b;\n");
      ("unterminated comment", "int a;\n/* never closed\nint b;\n");
      ("string with escapes", "char *s = \"a\\t\\\"b\\n\";\nint x;\n");
    ];
  (* the lex-error cap: both lexers must stop at the same point *)
  let flood = String.concat "" (List.init 40 (fun _ -> "@\n")) in
  check_tokbuf_parity "error cap" ~max_errors:5 flood;
  check_tokbuf_parity "error cap default" flood

let test_tokbuf_interns () =
  let tb, _ = Clexer.tokenize_buf "int foo; int bar; foo_t baz;\n" in
  Alcotest.(check bool) "mentions foo" true (Tokbuf.mentions tb "foo");
  Alcotest.(check bool) "mentions foo_t" true (Tokbuf.mentions tb "foo_t");
  Alcotest.(check bool) "keyword not an ident" false (Tokbuf.mentions tb "int");
  Alcotest.(check bool) "absent name" false (Tokbuf.mentions tb "quux");
  let names = List.sort String.compare (Tokbuf.ident_names tb) in
  Alcotest.(check (list string)) "ident set" [ "bar"; "baz"; "foo"; "foo_t" ]
    names

let tokbuf_tests =
  [
    Alcotest.test_case "tokenize_buf = tokenize_partial (clean)" `Quick
      test_tokbuf_parity;
    Alcotest.test_case "tokenize_buf = tokenize_partial (errors)" `Quick
      test_tokbuf_parity_on_errors;
    Alcotest.test_case "token buffer intern table" `Quick test_tokbuf_interns;
  ]

let tests = tests @ extra_tests @ tokbuf_tests
