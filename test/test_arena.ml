(* Parity of the flat-arena solver core against the pre-arena reference
   store (Solver_ref, the PR 5 implementation kept verbatim): identical
   op sequences must produce byte-identical counters, solutions, and
   error messages — serially and through the export/absorb batch path
   the parallel engine uses. Plus determinism of the multi-file cbench
   corpora and the multi-file driver entry point. *)

open Typequal
module Sp = Lattice.Space
module E = Lattice.Elt

(* ------------------------------------------------------------------ *)
(* A common signature both cores satisfy, so one driver replays the
   same op sequence through either. *)
(* ------------------------------------------------------------------ *)

module type CORE = sig
  type t
  type var
  type error
  type batch

  type stats = {
    vars_created : int;
    vars_unified : int;
    edges_added : int;
    edges_deduped : int;
    cycles_collapsed : int;
    incr_solves : int;
    full_solves : int;
    worklist_pops : int;
    solve_s : float;
    absorb_s : float;
    congen_s : float;
    generalize_s : float;
    compact_s : float;
    instantiate_s : float;
    report_s : float;
    scheme_vars_before : int;
    scheme_vars_after : int;
    scheme_edges_before : int;
    scheme_edges_after : int;
    instantiations_memo_hits : int;
    memo_candidates : int;
    memo_reject_nonflat_ret : int;
    memo_reject_may_violate : int;
    memo_misses : int;
    empty_batches_skipped : int;
    heap_words : int;
    top_heap_words : int;
    cores_available : int;
  }

  val create : ?cycle_elim:bool -> Sp.t -> t
  val fresh : ?name:string -> t -> var
  val add_leq_vc : ?reason:string -> ?mask:int -> t -> var -> E.t -> unit
  val add_leq_cv : ?reason:string -> ?mask:int -> t -> E.t -> var -> unit
  val add_leq_vv : ?reason:string -> ?mask:int -> t -> var -> var -> unit
  val add_leq_cc : ?reason:string -> ?mask:int -> t -> E.t -> E.t -> unit
  val add_eq_vv : ?reason:string -> ?mask:int -> t -> var -> var -> unit
  val add_eq_vc : ?reason:string -> ?mask:int -> t -> var -> E.t -> unit
  val solve : t -> (unit, error list) result
  val solve_from_scratch : t -> (unit, error list) result
  val last_errors : t -> error list
  val error_message : error -> string
  val least : t -> var -> E.t
  val greatest : t -> var -> E.t
  val stats : t -> stats
  val export : t -> batch
  val absorb : t -> ?bind:(var -> var option) -> batch -> var -> var option

  val absorb_replay :
    t -> ?bind:(var -> var option) -> batch -> var -> var option
end

module Arena : CORE = Typequal.Solver
module Ref : CORE = Typequal.Solver_ref

(* ------------------------------------------------------------------ *)
(* Random op sequences                                                 *)
(* ------------------------------------------------------------------ *)

type op =
  | Edge of int * int * int          (* a <= b under mask *)
  | Lower of E.t * int * int         (* c <= a under mask *)
  | Upper of int * E.t * int         (* a <= c under mask *)
  | Eqvv of int * int * int
  | Eqvc of int * E.t * int
  | Ground of E.t * E.t * int        (* c1 <= c2: ground check *)
  | Solve
  | Full

let space_gen : Sp.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* n = int_range 1 6 in
  let* pols = list_repeat n bool in
  return
    (Sp.create
       (List.mapi
          (fun i pos ->
            if pos then Qualifier.positive (Printf.sprintf "p%d" i)
            else Qualifier.negative (Printf.sprintf "n%d" i))
          pols))

let elt_gen sp : E.t QCheck2.Gen.t =
  QCheck2.Gen.map
    (fun bits -> bits land E.full_mask sp)
    QCheck2.Gen.(int_bound (E.full_mask sp))

let scenario_gen : (Sp.t * int * op list) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* sp = space_gen in
  let* n = int_range 2 20 in
  let full = E.full_mask sp in
  let var = int_bound (n - 1) in
  let mask = frequency [ (3, return full); (2, int_bound full) ] in
  let op =
    frequency
      [
        ( 5,
          let* a = var and* b = var and* m = mask in
          return (Edge (a, b, m)) );
        ( 2,
          let* c = elt_gen sp and* a = var and* m = mask in
          return (Lower (c, a, m)) );
        ( 2,
          let* a = var and* c = elt_gen sp and* m = mask in
          return (Upper (a, c, m)) );
        ( 1,
          let* a = var and* b = var and* m = mask in
          return (Eqvv (a, b, m)) );
        ( 1,
          let* a = var and* c = elt_gen sp and* m = mask in
          return (Eqvc (a, c, m)) );
        ( 1,
          let* c1 = elt_gen sp and* c2 = elt_gen sp and* m = mask in
          return (Ground (c1, c2, m)) );
        (1, return Solve);
        (1, return Full);
      ]
  in
  let* ops = list_size (int_range 5 80) op in
  return (sp, n, ops)

(* ------------------------------------------------------------------ *)
(* Replaying through a core and rendering everything observable        *)
(* ------------------------------------------------------------------ *)

module Drive (C : CORE) = struct
  let apply st v = function
    | Edge (a, b, m) -> C.add_leq_vv ~mask:m st v.(a) v.(b)
    | Lower (c, a, m) -> C.add_leq_cv ~mask:m st c v.(a)
    | Upper (a, c, m) -> C.add_leq_vc ~mask:m st v.(a) c
    | Eqvv (a, b, m) -> C.add_eq_vv ~mask:m st v.(a) v.(b)
    | Eqvc (a, c, m) -> C.add_eq_vc ~mask:m st v.(a) c
    | Ground (c1, c2, m) -> C.add_leq_cc ~mask:m st c1 c2
    | Solve -> ignore (C.solve st)
    | Full -> ignore (C.solve_from_scratch st)

  (* per-variable solutions: the semantic observables the splice
     invariant promises to preserve *)
  let solutions sp st vars =
    let b = Buffer.create 512 in
    Array.iteri
      (fun i v ->
        Buffer.add_string b
          (Fmt.str "%d: %a / %a\n" i (E.pp sp) (C.least st v) (E.pp sp)
             (C.greatest st v)))
      vars;
    Buffer.contents b

  (* counters (wall-clock and machine fields excluded), per-variable
     solutions, and error messages — the full observable state *)
  let digest sp st vars =
    let b = Buffer.create 512 in
    let s = C.stats st in
    Buffer.add_string b
      (Printf.sprintf
         "vars=%d unified=%d edges=%d deduped=%d cycles=%d incr=%d \
          full=%d pops=%d\n"
         s.C.vars_created s.C.vars_unified s.C.edges_added s.C.edges_deduped
         s.C.cycles_collapsed s.C.incr_solves s.C.full_solves
         s.C.worklist_pops);
    Array.iteri
      (fun i v ->
        Buffer.add_string b
          (Fmt.str "%d: %a / %a\n" i (E.pp sp) (C.least st v) (E.pp sp)
             (C.greatest st v)))
      vars;
    List.iter
      (fun e -> Buffer.add_string b ("error " ^ C.error_message e ^ "\n"))
      (C.last_errors st);
    Buffer.contents b

  let run_serial ?(observe = digest) sp n ops =
    let st = C.create sp in
    let v = Array.init n (fun _ -> C.fresh st) in
    List.iter (apply st v) ops;
    ignore (C.solve st);
    observe sp st v

  (* the parallel engine's path: build in a worker store, export the
     batch, splice it into a fresh main store, then observe through the
     returned renaming *)
  let run_batched ?(observe = digest) sp n ops =
    let w = C.create sp in
    let v = Array.init n (fun _ -> C.fresh w) in
    List.iter (apply w v) ops;
    let batch = C.export w in
    let main = C.create sp in
    let look = C.absorb main batch in
    ignore (C.solve main);
    let v' = Array.map (fun x -> Option.get (look x)) v in
    observe sp main v'

  (* splice-fast absorb vs the Hashtbl-replay oracle, including bound
     (mirror) variables: the first [n/3] batch variables resolve to
     pre-existing variables of the main store, exactly as worker mirrors
     of shared globals do in the parallel engine *)
  let run_merge ~replay ?(observe = digest) sp n ops =
    let w = C.create sp in
    let v = Array.init n (fun _ -> C.fresh w) in
    List.iter (apply w v) ops;
    let batch = C.export w in
    let main = C.create sp in
    let k = n / 3 in
    let pre = Array.init k (fun _ -> C.fresh main) in
    let bind x =
      let r = ref None in
      Array.iteri (fun i y -> if i < k && x == y then r := Some pre.(i)) v;
      !r
    in
    let look =
      (if replay then C.absorb_replay else C.absorb) main ~bind batch
    in
    ignore (C.solve main);
    let v' = Array.map (fun x -> Option.get (look x)) v in
    observe sp main v'
end

module DA = Drive (Arena)
module DR = Drive (Ref)

let prop_serial_parity =
  QCheck2.Test.make ~count:300
    ~name:"arena = pre-arena store: counters, solutions, errors (serial)"
    scenario_gen
    (fun (sp, n, ops) -> DA.run_serial sp n ops = DR.run_serial sp n ops)

let prop_batch_parity =
  QCheck2.Test.make ~count:200
    ~name:"arena = pre-arena store through export/absorb (batch splice)"
    scenario_gen
    (fun (sp, n, ops) -> DA.run_batched sp n ops = DR.run_batched sp n ops)

let prop_absorb_fast_eq_replay =
  (* the PR 8 splice-fast absorb must be observationally identical to the
     retained Hashtbl-replay path: counters, solutions and errors, with
     mirror bindings in play *)
  QCheck2.Test.make ~count:200
    ~name:"arena: splice-fast absorb = replay absorb (counters, bindings)"
    scenario_gen
    (fun (sp, n, ops) ->
      DA.run_merge ~replay:false sp n ops
      = DA.run_merge ~replay:true sp n ops)

let prop_serial_eq_batch =
  (* absorbing a whole store into an empty one renames but must not
     change any solution (the splice invariant DESIGN.md states).
     Counters are excluded: Solve ops in the sequence run in the worker
     store, so the main store's solve cadence legitimately differs. *)
  QCheck2.Test.make ~count:200
    ~name:"arena: batch splice preserves the serial solutions"
    scenario_gen
    (fun (sp, n, ops) ->
      DA.run_serial ~observe:DA.solutions sp n ops
      = DA.run_batched ~observe:DA.solutions sp n ops)

(* ------------------------------------------------------------------ *)
(* Multi-file corpora: determinism and the driver entry point          *)
(* ------------------------------------------------------------------ *)

let test_project_deterministic () =
  let gen () =
    Cbench.Gen.generate_project ~seed:0xC0DE ~target_lines:12_000 ()
  in
  let a = gen () and b = gen () in
  Alcotest.(check int) "same file count" (List.length a) (List.length b);
  List.iter2
    (fun (na, ca) (nb, cb) ->
      Alcotest.(check string) "same file name" na nb;
      Alcotest.(check string) ("same content for " ^ na) ca cb)
    a b;
  let c = Cbench.Gen.generate_project ~seed:0xBEEF ~target_lines:12_000 () in
  Alcotest.(check bool) "different seed differs" true
    (List.map snd a <> List.map snd c)

let test_project_shape () =
  let files = Cbench.Gen.generate_project ~seed:7 ~target_lines:20_000 () in
  let lines = Cbench.Gen.project_lines files in
  Alcotest.(check bool) "reaches the line target" true (lines >= 20_000);
  Alcotest.(check bool) "multiple translation units" true
    (List.length files >= 3);
  (* every unit must parse as part of the whole program *)
  let r = Cqual.Driver.run_sources ~mode:Cqual.Analysis.Poly files in
  Alcotest.(check bool) "functions analyzed" true (r.Cqual.Driver.n_functions > 0)

let test_multifile_driver_parity () =
  let files = Cbench.Programs.miniproject in
  let serial = Cqual.Driver.run_sources ~mode:Cqual.Analysis.Poly ~jobs:1 files in
  let par = Cqual.Driver.run_sources ~mode:Cqual.Analysis.Poly ~jobs:4 files in
  Alcotest.(check string) "miniproject: jobs 4 = jobs 1"
    (Test_parallel.digest serial) (Test_parallel.digest par);
  Alcotest.(check int) "no degradations" 0
    (List.length
       (List.filter
          (fun (_, o) ->
            match o with Cqual.Analysis.Degraded _ -> true | _ -> false)
          serial.Cqual.Driver.results.Cqual.Report.outcomes))

let test_scale_corpus_parity () =
  (* a small instance of the scale corpus end-to-end: serial and jobs-4
     reports identical, as CI diffs on the big one *)
  let files = Cbench.Gen.generate_project ~seed:0xA12 ~target_lines:6_000 () in
  let serial = Cqual.Driver.run_sources ~mode:Cqual.Analysis.Poly ~jobs:1 files in
  let par = Cqual.Driver.run_sources ~mode:Cqual.Analysis.Poly ~jobs:4 files in
  Alcotest.(check string) "scale corpus: jobs 4 = jobs 1"
    (Test_parallel.digest serial) (Test_parallel.digest par)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_serial_parity;
    QCheck_alcotest.to_alcotest prop_batch_parity;
    QCheck_alcotest.to_alcotest prop_absorb_fast_eq_replay;
    QCheck_alcotest.to_alcotest prop_serial_eq_batch;
    Alcotest.test_case "multi-file project generation deterministic" `Quick
      test_project_deterministic;
    Alcotest.test_case "multi-file project shape and analyzability" `Slow
      test_project_shape;
    Alcotest.test_case "multi-file driver: jobs 4 = jobs 1" `Quick
      test_multifile_driver_parity;
    Alcotest.test_case "scale corpus (small): jobs 4 = jobs 1" `Slow
      test_scale_corpus_parity;
  ]
