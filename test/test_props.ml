(* Property-based tests (qcheck): lattice laws over random spaces, solver
   solution properties, Observation 1, and subject reduction / soundness
   of the qualified type system on random terms. *)

open Typequal
module Sp = Lattice.Space
module E = Lattice.Elt
module S = Solver
open Qlambda

(* ------------------------------------------------------------------ *)
(* Random qualifier spaces and elements                                *)
(* ------------------------------------------------------------------ *)

let space_gen : Sp.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* n = int_range 1 8 in
  let* pols = list_repeat n bool in
  return
    (Sp.create
       (List.mapi
          (fun i pos ->
            if pos then Qualifier.positive (Printf.sprintf "p%d" i)
            else Qualifier.negative (Printf.sprintf "n%d" i))
          pols))

let elt_gen sp : E.t QCheck2.Gen.t =
  QCheck2.Gen.map
    (fun bits -> bits land E.full_mask sp)
    QCheck2.Gen.(int_bound (E.full_mask sp))

let space_and_elts_gen k =
  let open QCheck2.Gen in
  let* sp = space_gen in
  let* es = list_repeat k (elt_gen sp) in
  return (sp, es)

let prop_lattice_laws =
  QCheck2.Test.make ~count:500 ~name:"lattice: partial order + lub/glb"
    (space_and_elts_gen 3)
    (fun (sp, es) ->
      match es with
      | [ a; b; c ] ->
          let leq = E.leq sp and join = E.join sp and meet = E.meet sp in
          leq a a
          && leq (E.bottom sp) a
          && leq a (E.top sp)
          && leq a (join a b)
          && leq b (join a b)
          && leq (meet a b) a
          && leq (meet a b) b
          && E.equal (join a b) (join b a)
          && E.equal (meet a b) (meet b a)
          && E.equal (join a (join b c)) (join (join a b) c)
          && E.equal (meet a (meet b c)) (meet (meet a b) c)
          && E.equal (join a (meet a b)) a (* absorption *)
          && E.equal (meet a (join a b)) a
          && (leq a b = E.equal (join a b) b)
          && (leq a b = E.equal (meet a b) a)
          && ((not (leq a b && leq b c)) || leq a c)
      | _ -> false)

let prop_not_pins =
  QCheck2.Test.make ~count:300 ~name:"lattice: x <= ¬q iff coordinate at bottom"
    (QCheck2.Gen.pair space_gen (QCheck2.Gen.int_bound 1000))
    (fun (sp, seed) ->
      let x = seed land E.full_mask sp in
      List.for_all
        (fun i ->
          let nq = E.not_ sp i in
          let q = Sp.qual sp i in
          let coord_bottom =
            if Qualifier.is_positive q then not (E.has sp i x)
            else E.has sp i x
          in
          E.leq sp x nq = coord_bottom)
        (List.init (Sp.size sp) Fun.id))

(* ------------------------------------------------------------------ *)
(* Solver: the least solution is a solution, and lo <= hi when sat     *)
(* ------------------------------------------------------------------ *)

type cgen = {
  g_nvars : int;
  g_edges : (int * int) list;
  g_lowers : (int * int) list;  (* var, raw elt bits *)
  g_uppers : (int * int) list;
}

let cgen_gen : cgen QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* g_nvars = int_range 1 20 in
  let v = int_bound (g_nvars - 1) in
  let* g_edges = list_size (int_bound 40) (pair v v) in
  let* g_lowers = list_size (int_bound 10) (pair v (int_bound 255)) in
  let* g_uppers = list_size (int_bound 10) (pair v (int_bound 255)) in
  return { g_nvars; g_edges; g_lowers; g_uppers }

let build_system sp (g : cgen) =
  let st = S.create sp in
  let mask = E.full_mask sp in
  let vars = Array.init g.g_nvars (fun _ -> S.fresh st) in
  List.iter (fun (a, b) -> S.add_leq_vv st vars.(a) vars.(b)) g.g_edges;
  List.iter (fun (v, e) -> S.add_leq_cv st (e land mask) vars.(v)) g.g_lowers;
  List.iter (fun (v, e) -> S.add_leq_vc st vars.(v) (e land mask)) g.g_uppers;
  (st, vars)

let prop_least_solution_is_solution =
  QCheck2.Test.make ~count:500
    ~name:"solver: when satisfiable, lo satisfies every constraint"
    (QCheck2.Gen.pair space_gen cgen_gen)
    (fun (sp, g) ->
      let st, vars = build_system sp g in
      match S.solve st with
      | Error _ -> true (* checked by the dual property below *)
      | Ok () ->
          let mask = E.full_mask sp in
          List.for_all
            (fun (a, b) -> E.leq sp (S.least st vars.(a)) (S.least st vars.(b)))
            g.g_edges
          && List.for_all
               (fun (v, e) -> E.leq sp (e land mask) (S.least st vars.(v)))
               g.g_lowers
          && List.for_all
               (fun (v, e) -> E.leq sp (S.least st vars.(v)) (e land mask))
               g.g_uppers
          && Array.for_all
               (fun v -> E.leq sp (S.least st v) (S.greatest st v))
               vars)

let prop_unsat_is_real =
  QCheck2.Test.make ~count:500
    ~name:"solver: when unsat, no assignment satisfies (spot check on lo/hi)"
    (QCheck2.Gen.pair space_gen cgen_gen)
    (fun (sp, g) ->
      let st, vars = build_system sp g in
      match S.solve st with
      | Ok () -> true
      | Error _ ->
          (* if the system were satisfiable, the least solution of the
             lower half would satisfy the uppers; verify it does not *)
          let mask = E.full_mask sp in
          not
            (List.for_all
               (fun (v, e) -> E.leq sp (S.least st vars.(v)) (e land mask))
               g.g_uppers))

let prop_monotone =
  QCheck2.Test.make ~count:300
    ~name:"solver: adding a lower bound only raises least solutions"
    (QCheck2.Gen.triple space_gen cgen_gen (QCheck2.Gen.int_bound 255))
    (fun (sp, g, extra) ->
      let st, vars = build_system sp g in
      ignore (S.solve st);
      let before = Array.map (fun v -> S.least st v) vars in
      S.add_leq_cv st (extra land E.full_mask sp) vars.(0);
      ignore (S.solve st);
      Array.for_all2
        (fun old v -> E.leq sp old (S.least st v))
        before vars)

(* ------------------------------------------------------------------ *)
(* Random terms of the example language                                *)
(* ------------------------------------------------------------------ *)

(* well-scoped random terms; biased toward typeable shapes but freely
   mixing annotations and assertions over const+nonzero *)
let term_gen : Ast.expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  let specs =
    [
      [];
      [ ("const", true) ];
      [ ("nonzero", true) ];
      [ ("nonzero", false) ];
      [ ("const", true); ("nonzero", true) ];
    ]
  in
  let spec = oneofl specs in
  let bound_specs =
    [ [ ("const", false) ]; [ ("nonzero", true) ]; [] ]
  in
  let bspec = oneofl bound_specs in
  let var_of env = if env = [] then map (fun n -> Ast.Int n) (int_bound 9)
    else map (fun x -> Ast.Var x) (oneofl env) in
  let fresh_name env = Printf.sprintf "x%d" (List.length env) in
  fix
    (fun self (size, env) ->
      if size <= 0 then
        oneof
          [ map (fun n -> Ast.Int n) (int_bound 9); return Ast.Unit; var_of env ]
      else
        let sub = self (size / 2, env) in
        oneof
          [
            var_of env;
            map (fun n -> Ast.Int n) (int_bound 9);
            map2 (fun a b -> Ast.App (a, b)) sub sub;
            (let x = fresh_name env in
             map
               (fun b -> Ast.Lam (x, b))
               (self (size - 1, x :: env)));
            (let x = fresh_name env in
             map2
               (fun e b -> Ast.Let (x, e, b))
               sub
               (self (size / 2, x :: env)));
            map3 (fun a b c -> Ast.If (a, b, c)) sub sub sub;
            map (fun e -> Ast.Ref e) sub;
            map (fun e -> Ast.Deref e) sub;
            map2 (fun a b -> Ast.Assign (a, b)) sub sub;
            map2 (fun s e -> Ast.Annot (s, e)) spec sub;
            map2 (fun e s -> Ast.Assert (e, s)) sub bspec;
            map3
              (fun op a b -> Ast.Binop (op, a, b))
              (oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Lt; Ast.Eq ])
              sub sub;
          ])
    (8, [])

let cn = Rules.cn_space

(* Observation 1: with no qualifier-specific rules and no annotations, the
   qualified system types exactly the standard system's programs. *)
let prop_observation1 =
  QCheck2.Test.make ~count:1000 ~name:"Observation 1 on random terms"
    ~print:(fun e -> Ast.to_string (Ast.strip e))
    term_gen
    (fun e ->
      let e = Ast.strip e in
      let std = Stype.typable e in
      let qual = Infer.typechecks cn e in
      std = qual)

(* strip of the inferred qualified type unifies with the standard type *)
let prop_strip_shape =
  QCheck2.Test.make ~count:500 ~name:"strip(inferred) unifies with standard"
    ~print:(fun e -> Ast.to_string (Ast.strip e))
    term_gen
    (fun e ->
      let e = Ast.strip e in
      match (Infer.infer cn e, Stype.infer_top e) with
      | Ok r, std ->
          (try
             Stype.unify (Qtype.strip r.Infer.qtyp) std;
             true
           with Stype.Type_error _ -> false)
      | Error _, _ -> true
      | exception Stype.Type_error _ -> true)

(* Type safety (Corollary 1): a program accepted by the checker (with the
   const+nonzero rules) never gets stuck — it reaches a value or runs out
   of fuel (diverges). This exercises subject reduction across the whole
   reduction sequence, including the qualifier checks of Figure 5. *)
let prop_soundness =
  QCheck2.Test.make ~count:2000 ~name:"well-typed terms don't get stuck"
    ~print:Ast.to_string term_gen
    (fun e ->
      (* exclude Div from the property: the nonzero rule makes most random
         divisions untypeable anyway, and delta-stuckness on 1/0 is the
         qualifier's *point* (tested separately in test_lambda) *)
      QCheck2.assume (Infer.typechecks ~hooks:Rules.cn_hooks ~poly:true cn e);
      match Eval.run ~fuel:2000 cn e with
      | Eval.Value _ | Eval.Out_of_fuel -> true
      | Eval.Stuck_at (Eval.Division_by_zero) -> true (* no nonzero hook on
                                                         random literals *)
      | Eval.Stuck_at _ -> false)

(* Monomorphic acceptance implies polymorphic acceptance. *)
let prop_poly_extends_mono =
  QCheck2.Test.make ~count:800 ~name:"mono-typeable => poly-typeable"
    ~print:Ast.to_string term_gen
    (fun e ->
      (not (Infer.typechecks ~hooks:Rules.cn_hooks ~poly:false cn e))
      || Infer.typechecks ~hooks:Rules.cn_hooks ~poly:true cn e)

(* The parser round-trips the printer on random terms. *)
let prop_parse_print_roundtrip =
  QCheck2.Test.make ~count:800 ~name:"parse (print e) = e"
    ~print:Ast.to_string term_gen
    (fun e ->
      match Parse.parse_result (Ast.to_string e) with
      | Ok e' -> Ast.to_string e' = Ast.to_string e
      | Error _ -> false)

let tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_lattice_laws;
      prop_not_pins;
      prop_least_solution_is_solution;
      prop_unsat_is_real;
      prop_monotone;
      prop_observation1;
      prop_strip_shape;
      prop_soundness;
      prop_poly_extends_mono;
      prop_parse_print_roundtrip;
    ]

(* Scheme simplification (Section 6 extension) is semantics-preserving:
   instantiating the original and the simplified scheme under identical
   extra constraints yields the same satisfiability and the same bounds on
   every interface variable. *)
let prop_simplify_equiv =
  QCheck2.Test.make ~count:500 ~name:"simplify_scheme preserves projections"
    (QCheck2.Gen.triple space_gen cgen_gen cgen_gen)
    (fun (sp, g, extra) ->
      let st = S.create sp in
      let vars, atoms =
        S.recording st (fun () ->
            let mask = E.full_mask sp in
            let vars = Array.init g.g_nvars (fun _ -> S.fresh st) in
            List.iter (fun (a, b) -> S.add_leq_vv st vars.(a) vars.(b)) g.g_edges;
            List.iter
              (fun (v, e) -> S.add_leq_cv st (e land mask) vars.(v))
              g.g_lowers;
            List.iter
              (fun (v, e) -> S.add_leq_vc st vars.(v) (e land mask))
              g.g_uppers;
            vars)
      in
      (* interface: every 3rd variable *)
      let interface =
        Array.to_list vars |> List.filteri (fun i _ -> i mod 3 = 0)
      in
      let locals = Array.to_list vars in
      let sch = S.make_scheme ~locals ~atoms in
      let sch' = S.simplify_scheme st ~interface sch in
      (* instantiate both into one store, apply the same extra constraints
         to the interface images, compare *)
      let apply sch =
        let st2 = S.create sp in
        let rn = S.instantiate st2 sch in
        let imgs = List.map rn interface in
        let arr = Array.of_list imgs in
        let mask = E.full_mask sp in
        if Array.length arr > 0 then begin
          List.iter
            (fun (a, b) ->
              S.add_leq_vv st2
                arr.(a mod Array.length arr)
                arr.(b mod Array.length arr))
            extra.g_edges;
          List.iter
            (fun (v, e) ->
              S.add_leq_cv st2 (e land mask) arr.(v mod Array.length arr))
            extra.g_lowers;
          List.iter
            (fun (v, e) ->
              S.add_leq_vc st2 arr.(v mod Array.length arr) (e land mask))
            extra.g_uppers
        end;
        let sat = Result.is_ok (S.solve st2) in
        (sat, List.map (fun v -> (S.least st2 v, S.greatest st2 v)) imgs)
      in
      let sat1, bounds1 = apply sch in
      let sat2, bounds2 = apply sch' in
      sat1 = sat2 && ((not sat1) || bounds1 = bounds2))

let tests =
  tests @ [ QCheck_alcotest.to_alcotest prop_simplify_equiv ]

(* ------------------------------------------------------------------ *)
(* Optimized solver (cycle elimination + incremental) equivalence      *)
(* ------------------------------------------------------------------ *)

(* Random interleaved add/query sequences, masked constraints included.
   The optimized store (cycle elimination on, queries forcing incremental
   re-solves mid-stream) must agree with (1) a cycle-elimination-off store
   solved from scratch at the end, (2) the constraint-log replay oracle,
   and (3) the round-robin naive least-solution pass — on satisfiability
   and on the least/greatest solution of every variable. *)

type op =
  | OEdge of int * int * int  (* a <= b on a mask *)
  | OLower of int * int * int  (* elt <= v on a mask *)
  | OUpper of int * int * int  (* v <= elt on a mask *)
  | OQuery of int

let ops_gen : (int * op list) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* nvars = int_range 1 15 in
  let v = int_bound (nvars - 1) in
  let* ops =
    list_size (int_bound 60)
      (oneof
         [
           map3 (fun a b m -> OEdge (a, b, m)) v v (int_bound 255);
           map3 (fun x e m -> OLower (x, e, m)) v (int_bound 255) (int_bound 255);
           map3 (fun x e m -> OUpper (x, e, m)) v (int_bound 255) (int_bound 255);
           map (fun x -> OQuery x) v;
         ])
  in
  return (nvars, ops)

let prop_optimized_equals_naive =
  QCheck2.Test.make ~count:600
    ~name:"optimized solver = naive baselines on random op sequences"
    (QCheck2.Gen.pair space_gen ops_gen)
    (fun (sp, (nvars, ops)) ->
      let full = E.full_mask sp in
      (* a mix of full masks (cycle-elimination eligible) and partial ones *)
      let mask_of raw = if raw mod 3 = 0 then full else raw land full in
      let opt = S.create ~cycle_elim:true sp in
      let base = S.create ~cycle_elim:false sp in
      let vo = Array.init nvars (fun _ -> S.fresh opt) in
      let vb = Array.init nvars (fun _ -> S.fresh base) in
      List.iter
        (fun o ->
          match o with
          | OEdge (a, b, m) ->
              let mask = mask_of m in
              S.add_leq_vv ~mask opt vo.(a) vo.(b);
              S.add_leq_vv ~mask base vb.(a) vb.(b)
          | OLower (x, e, m) ->
              let mask = mask_of m and e = e land full in
              S.add_leq_cv ~mask opt e vo.(x);
              S.add_leq_cv ~mask base e vb.(x)
          | OUpper (x, e, m) ->
              let mask = mask_of m and e = e land full in
              S.add_leq_vc ~mask opt vo.(x) e;
              S.add_leq_vc ~mask base vb.(x) e
          | OQuery x ->
              (* forces an incremental solve mid-stream in [opt] only *)
              ignore (S.least opt vo.(x));
              ignore (S.greatest opt vo.(x)))
        ops;
      let sat_opt = Result.is_ok (S.solve opt) in
      let sat_base = Result.is_ok (S.solve_from_scratch base) in
      let nb = S.naive_bounds opt in
      let ok = ref (sat_opt = sat_base) in
      Array.iteri
        (fun i v ->
          let l = S.least opt v and h = S.greatest opt v in
          let bl = S.least base vb.(i) and bh = S.greatest base vb.(i) in
          let ol, oh = nb (S.var_id v) in
          if
            not
              (E.equal l bl && E.equal h bh && E.equal l ol && E.equal h oh)
          then ok := false)
        vo;
      (* the round-robin pass recomputes the same least solution in place *)
      S.solve_least_naive opt;
      Array.iteri
        (fun i v ->
          if not (E.equal (S.least opt v) (S.least base vb.(i))) then
            ok := false)
        vo;
      !ok)

let tests = tests @ [ QCheck_alcotest.to_alcotest prop_optimized_equals_naive ]

(* ------------------------------------------------------------------ *)
(* User-defined lattices (PR 5): random distributive lattices          *)
(* ------------------------------------------------------------------ *)

module O = Qualifier.Order

(* A random poset on [n] points. Edges only go from lower to higher
   index, so acyclicity is free; [rp_leq] is the reflexive-transitive
   closure and serves as the oracle order on join-irreducibles. *)
type rposet = { rp_n : int; rp_leq : bool array array }

let rposet_gen : rposet QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* n = int_range 1 4 in
  let* edges = list_repeat (n * n) bool in
  let e = Array.of_list edges in
  let leq =
    Array.init n (fun i ->
        Array.init n (fun j -> i = j || (i < j && e.((i * n) + j))))
  in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if leq.(i).(k) && leq.(k).(j) then leq.(i).(j) <- true
      done
    done
  done;
  return { rp_n = n; rp_leq = leq }

(* The downsets of a poset, each as a bitmask over the points. By
   Birkhoff's theorem they form a distributive lattice under inclusion,
   with union as lub and intersection as glb — the oracle for every
   lattice operation. *)
let downsets { rp_n = n; rp_leq = leq } =
  let is_downset s =
    let ok = ref true in
    for j = 0 to n - 1 do
      if s land (1 lsl j) <> 0 then
        for i = 0 to n - 1 do
          if leq.(i).(j) && s land (1 lsl i) = 0 then ok := false
        done
    done;
    !ok
  in
  List.filter is_downset (List.init (1 lsl n) Fun.id)

(* Build an Order.t from the downsets; must always succeed. *)
let order_of_poset p =
  let downs = downsets p in
  let name s = Printf.sprintf "d%d" s in
  let levels = List.map name downs in
  let order =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if a <> b && a land lnot b = 0 then Some (name a, name b)
            else None)
          downs)
      downs
  in
  match O.of_levels ~levels ~order with
  | Ok o -> (o, Array.of_list downs)
  | Error e ->
      QCheck2.Test.fail_reportf
        "downset lattice rejected (should be distributive): %s" e

let prop_random_lattice_laws =
  QCheck2.Test.make ~count:300 ~name:"random distributive lattices: ops match the downset oracle"
    rposet_gen
    (fun p ->
      let o, downs = order_of_poset p in
      let n = O.size o in
      n = Array.length downs
      && List.for_all
           (fun a ->
             List.for_all
               (fun b ->
                 let da = downs.(a) and db = downs.(b) in
                 let subset x y = x land lnot y = 0 in
                 let j = O.join o a b and m = O.meet o a b in
                 (* order, lub, glb against the oracle *)
                 O.leq o a b = subset da db
                 && downs.(j) = da lor db
                 && downs.(m) = da land db
                 (* encoding soundness: leq = subset, join = or,
                    meet = and on the upset bit encodings *)
                 && O.leq o a b = subset (O.encode o a) (O.encode o b)
                 && O.encode o j = O.encode o a lor O.encode o b
                 && O.encode o m = O.encode o a land O.encode o b)
               (List.init n Fun.id))
           (List.init n Fun.id))

(* The same laws through the Space/Elt layer: an ordered coordinate next
   to classic ones behaves like the oracle under masked comparison, and
   levels round-trip. *)
let prop_mixed_space_oracle =
  QCheck2.Test.make ~count:200 ~name:"ordered coordinate in a mixed space matches the oracle"
    rposet_gen
    (fun p ->
      let o, downs = order_of_poset p in
      let sp =
        Sp.create
          [ Qualifier.const; Qualifier.ordered "q" o; Qualifier.nonzero ]
      in
      let i = Sp.find sp "q" in
      let mask = E.singleton_mask sp i in
      let n = O.size o in
      List.for_all
        (fun a ->
          let xa = E.with_level sp i a (E.bottom sp) in
          E.level sp i xa = a
          && List.for_all
               (fun b ->
                 let xb = E.with_level sp i b (E.top sp) in
                 (* masked comparison sees only the ordered coordinate *)
                 E.leq_masked sp ~mask xa xb
                 = (downs.(a) land lnot downs.(b) = 0)
                 && E.level sp i (E.join sp xa (E.with_level sp i b (E.bottom sp)))
                    = O.join o a b)
               (List.init n Fun.id))
        (List.init n Fun.id))

(* End-to-end default-space parity: analyzing generated C under the
   standard two-point const rules and under the same rules hosted in a
   wider space (extra three-level coordinate, unconstrained) yields
   identical reports. *)
let wide_const_rules =
  Cqual.Analysis.const_rules_in
    (Sp.create
       [
         Qualifier.const;
         Qualifier.ordered "trust" (O.chain_exn [ "low"; "mid"; "high" ]);
       ])

let prop_wider_space_parity =
  QCheck2.Test.make ~count:12 ~name:"const analysis unchanged in a wider space"
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let src = Cbench.Gen.generate ~seed ~target_lines:60 () in
      let run rules =
        (Cqual.Driver.run_source ~mode:Cqual.Analysis.Mono ~rules src)
          .Cqual.Driver.results
      in
      let a = run Cqual.Analysis.const_rules and b = run wide_const_rules in
      a.Cqual.Report.total = b.Cqual.Report.total
      && a.Cqual.Report.declared = b.Cqual.Report.declared
      && a.Cqual.Report.possible = b.Cqual.Report.possible
      && a.Cqual.Report.must = b.Cqual.Report.must
      && a.Cqual.Report.type_errors = b.Cqual.Report.type_errors)

let tests =
  tests
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_random_lattice_laws;
        prop_mixed_space_oracle;
        prop_wider_space_parity;
      ]
