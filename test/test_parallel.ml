(* The multicore analysis engine (Pool + the wavefront/map-reduce drivers
   in Analysis): determinism against the serial path, fault funneling, and
   graceful budget degradation under parallelism. *)

module Pool = Typequal.Pool
module Budget = Typequal.Budget
module Solver = Typequal.Solver
open Cqual

(* ---------------- the domain pool itself ---------------- *)

let test_pool_runs_everything () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let n = Atomic.make 0 in
      for _ = 1 to 200 do
        Pool.submit pool (fun () -> Atomic.incr n)
      done;
      Pool.wait pool;
      Alcotest.(check int) "all tasks ran" 200 (Atomic.get n))

let test_pool_nested_submit () =
  (* tasks submitting tasks (the wavefront release pattern): wait drains
     transitively *)
  Pool.with_pool ~jobs:3 (fun pool ->
      let n = Atomic.make 0 in
      for _ = 1 to 10 do
        Pool.submit pool (fun () ->
            Atomic.incr n;
            Pool.submit pool (fun () -> Atomic.incr n))
      done;
      Pool.wait pool;
      Alcotest.(check int) "children too" 20 (Atomic.get n))

let test_pool_funnels_exceptions () =
  match
    Pool.with_pool ~jobs:2 (fun pool ->
        Pool.submit pool (fun () -> failwith "boom");
        Pool.wait pool)
  with
  | () -> Alcotest.fail "expected the funneled exception"
  | exception Failure m -> Alcotest.(check string) "first exception" "boom" m

let test_pool_serial_inline () =
  (* jobs <= 1: no domains, tasks run inline in submission order *)
  Pool.with_pool ~jobs:1 (fun pool ->
      let order = ref [] in
      List.iter
        (fun i -> Pool.submit pool (fun () -> order := i :: !order))
        [ 1; 2; 3 ];
      Pool.wait pool;
      Alcotest.(check (list int)) "submission order" [ 1; 2; 3 ]
        (List.rev !order))

(* ---------------- determinism: jobs=4 == jobs=1 ---------------- *)

(* Everything observable from a run, rendered to a string: per-position
   verdicts, counts, warnings, per-function outcomes, and the solver's
   structural counters. Wall-clock fields are excluded; all else must be
   identical across job counts. *)
let digest (r : Driver.run) : string =
  let b = Buffer.create 1024 in
  let res = r.Driver.results in
  List.iter
    (fun pv -> Buffer.add_string b (Fmt.str "%a\n" Report.pp_position pv))
    res.Report.positions;
  Buffer.add_string b
    (Printf.sprintf "declared=%d possible=%d must=%d total=%d errors=%d\n"
       res.Report.declared res.Report.possible res.Report.must
       res.Report.total res.Report.type_errors);
  List.iter (fun w -> Buffer.add_string b ("warning " ^ w ^ "\n")) res.Report.warnings;
  List.iter
    (fun (f, o) ->
      Buffer.add_string b
        (match o with
        | Analysis.Analyzed -> "analyzed " ^ f ^ "\n"
        | Analysis.Degraded why -> "degraded " ^ f ^ ": " ^ why ^ "\n"))
    res.Report.outcomes;
  let st = r.Driver.solver_stats in
  Buffer.add_string b
    (Printf.sprintf "vars=%d unified=%d edges=%d deduped=%d cycles=%d pops=%d\n"
       st.Solver.vars_created st.Solver.vars_unified st.Solver.edges_added
       st.Solver.edges_deduped st.Solver.cycles_collapsed
       st.Solver.worklist_pops);
  Buffer.contents b

let modes =
  [ ("mono", Analysis.Mono); ("poly", Analysis.Poly); ("polyrec", Analysis.Polyrec) ]

let test_parallel_deterministic () =
  (* random programs, every mode: a 4-domain run must be observably
     identical to the serial run, down to the solver counters *)
  List.iter
    (fun seed ->
      let src = Cbench.Gen.generate ~seed ~target_lines:400 () in
      List.iter
        (fun (mname, mode) ->
          let serial = Driver.run_source ~mode ~jobs:1 src in
          let par = Driver.run_source ~mode ~jobs:4 src in
          Alcotest.(check string)
            (Printf.sprintf "seed %d %s: jobs 4 = jobs 1" seed mname)
            (digest serial) (digest par))
        modes)
    [ 11; 12; 13 ]

let test_parallel_deterministic_taint () =
  let src = Cbench.Gen.generate ~seed:14 ~target_lines:300 () in
  let rules = Analysis.taint_rules in
  List.iter
    (fun (mname, mode) ->
      let serial = Driver.run_source ~rules ~mode ~jobs:1 src in
      let par = Driver.run_source ~rules ~mode ~jobs:2 src in
      Alcotest.(check string)
        (Printf.sprintf "taint %s: jobs 2 = jobs 1" mname)
        (digest serial) (digest par))
    modes

let test_parallel_repeatable () =
  (* the same parallel run twice: scheduling nondeterminism must not leak *)
  let src = Cbench.Gen.generate ~seed:15 ~target_lines:400 () in
  let a = Driver.run_source ~mode:Analysis.Poly ~jobs:4 src in
  let b = Driver.run_source ~mode:Analysis.Poly ~jobs:4 src in
  Alcotest.(check string) "two jobs-4 runs agree" (digest a) (digest b)

(* ---------------- degradation under parallelism ---------------- *)

let test_budget_exhaustion_parallel () =
  (* a budget that trips mid-run: the parallel engine must degrade —
     every function still gets an outcome, nothing crashes, and the
     report is produced (the CLI exits 0 on this path) *)
  let src = Cbench.Gen.generate ~seed:16 ~target_lines:600 () in
  List.iter
    (fun (mname, mode) ->
      let budget = Budget.create ~max_vars:60 ~clock:Unix.gettimeofday () in
      let r = Driver.run_source ~mode ~budget ~jobs:4 src in
      let res = r.Driver.results in
      let degraded =
        List.filter
          (fun (_, o) -> match o with Analysis.Degraded _ -> true | _ -> false)
          res.Report.outcomes
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: budget tripped somewhere" mname)
        true
        (List.length degraded > 0);
      Alcotest.(check bool)
        (Printf.sprintf "%s: every function has an outcome" mname)
        true
        (List.length res.Report.outcomes >= r.Driver.n_functions))
    modes

let test_faulting_scc_isolated () =
  (* [use] faults during analysis (its typedef was lost to parser
     recovery, so interface construction raises): with jobs=4 the fault
     degrades that function only, as in the serial engine *)
  let src =
    "typedef int T, 5;\n\
     int use(T *p) { return *p; }\n\
     int ok(int *q) { return *q; }\n\
     int caller(int *r) { return use(r) + ok(r); }\n"
  in
  List.iter
    (fun jobs ->
      let r = Driver.run_source ~mode:Analysis.Poly ~jobs src in
      let outcome f = List.assoc f r.Driver.results.Report.outcomes in
      (match outcome "ok" with
      | Analysis.Analyzed -> ()
      | Analysis.Degraded why -> Alcotest.failf "ok degraded: %s" why);
      match outcome "use" with
      | Analysis.Degraded _ -> ()
      | Analysis.Analyzed -> Alcotest.fail "use should degrade")
    [ 1; 4 ];
  (* and the two engines agree on the whole report *)
  let serial = Driver.run_source ~mode:Analysis.Poly ~jobs:1 src in
  let par = Driver.run_source ~mode:Analysis.Poly ~jobs:4 src in
  Alcotest.(check string) "fault parity" (digest serial) (digest par)

let tests =
  [
    Alcotest.test_case "pool: runs every task" `Quick test_pool_runs_everything;
    Alcotest.test_case "pool: nested submit" `Quick test_pool_nested_submit;
    Alcotest.test_case "pool: funnels exceptions" `Quick
      test_pool_funnels_exceptions;
    Alcotest.test_case "pool: jobs=1 is inline and ordered" `Quick
      test_pool_serial_inline;
    Alcotest.test_case "jobs 4 = jobs 1 (const, all modes)" `Slow
      test_parallel_deterministic;
    Alcotest.test_case "jobs 2 = jobs 1 (taint, all modes)" `Slow
      test_parallel_deterministic_taint;
    Alcotest.test_case "parallel runs repeatable" `Quick
      test_parallel_repeatable;
    Alcotest.test_case "budget exhaustion degrades gracefully" `Slow
      test_budget_exhaustion_parallel;
    Alcotest.test_case "faulting function isolated under parallelism" `Quick
      test_faulting_scc_isolated;
  ]
