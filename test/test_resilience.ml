(* Tests for the resilient pipeline: structured diagnostics, panic-mode
   parser recovery, fault-isolated degraded analysis, resource budgets,
   and a fault-injection property over generated programs. *)

open Cqual
module Diag = Cfront.Diag
module Cparse = Cfront.Cparse
module Cast = Cfront.Cast
module Cprog = Cfront.Cprog
module Budget = Typequal.Budget

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let outcomes (r : Driver.run) = r.Driver.results.Report.outcomes

let outcome_of r name =
  match List.assoc_opt name (outcomes r) with
  | Some o -> o
  | None -> Alcotest.failf "no outcome recorded for %s" name

let check_analyzed r name =
  match outcome_of r name with
  | Analysis.Analyzed -> ()
  | Analysis.Degraded reason ->
      Alcotest.failf "%s unexpectedly degraded: %s" name reason

let check_degraded r name =
  match outcome_of r name with
  | Analysis.Degraded reason -> reason
  | Analysis.Analyzed -> Alcotest.failf "%s unexpectedly analyzed" name

let degraded_of r =
  List.filter_map
    (fun (n, o) ->
      match o with Analysis.Degraded _ -> Some n | Analysis.Analyzed -> None)
    (outcomes r)

(* ------------------------------------------------------------------ *)
(* Parser recovery                                                     *)
(* ------------------------------------------------------------------ *)

let bad3 =
  "int good1(int *p) { return *p; }\n\
   int = 3;\n\
   int good2(const int *q) { return *q; }\n\
   int broken(int *r) { return * ; }\n\
   int 5bad;\n\
   int good3(int *s) { return *s; }\n"

let test_recovery_three_errors () =
  let pr = Cparse.parse_program_partial bad3 in
  let errs = List.filter Diag.is_error pr.Cparse.pr_diags in
  Alcotest.(check int) "three diagnostics" 3 (List.length errs);
  (match errs with
  | [ d1; d2; d3 ] ->
      Alcotest.(check string) "code 1" "E0201" d1.Diag.d_code;
      Alcotest.(check int) "line 1" 2 d1.Diag.d_span.Diag.sl;
      Alcotest.(check int) "col 1" 5 d1.Diag.d_span.Diag.sc;
      Alcotest.(check string) "code 2" "E0202" d2.Diag.d_code;
      Alcotest.(check int) "line 2" 4 d2.Diag.d_span.Diag.sl;
      Alcotest.(check int) "col 2" 31 d2.Diag.d_span.Diag.sc;
      Alcotest.(check string) "code 3" "E0201" d3.Diag.d_code;
      Alcotest.(check int) "line 3" 5 d3.Diag.d_span.Diag.sl
  | _ -> Alcotest.fail "expected exactly three errors");
  let r = Driver.run_source ~mode:Analysis.Mono bad3 in
  check_analyzed r "good1";
  check_analyzed r "good2";
  check_analyzed r "good3";
  let reason = check_degraded r "broken" in
  Alcotest.(check bool)
    "demotion reason" true
    (contains ~sub:"failed to parse" reason);
  (* the good functions still get position verdicts *)
  let pos_funs =
    List.sort_uniq String.compare
      (List.map
         (fun ((p : Report.position), _) -> p.Report.p_fun)
         r.Driver.results.Report.positions)
  in
  Alcotest.(check (list string))
    "positions" [ "good1"; "good2"; "good3" ] pos_funs

let test_body_demotion_isolates_caller () =
  let src =
    "int broken(int *p) { return * ; }\n\
     int caller(int *q) { return broken(q); }\n"
  in
  let r = Driver.run_source ~mode:Analysis.Mono src in
  check_analyzed r "caller";
  let reason = check_degraded r "broken" in
  Alcotest.(check bool)
    "parse reason" true
    (contains ~sub:"failed to parse" reason);
  (* the demoted callee is treated like a declared-but-undefined library
     function: a pointer escaping into it is conservatively non-const
     (the callee may write through it), exactly as for library calls *)
  match r.Driver.results.Report.positions with
  | [ (p, v) ] ->
      Alcotest.(check string) "position owner" "caller" p.Report.p_fun;
      Alcotest.(check bool) "escape is conservative" true
        (v = Report.Must_not_const)
  | ps -> Alcotest.failf "expected one position, got %d" (List.length ps)

let test_lex_recovery () =
  let src =
    "int f(int *p) { return *p; }\n@\nint g(int *q) { return *q; }\n"
  in
  let r = Driver.run_source ~mode:Analysis.Mono src in
  (match r.Driver.diagnostics with
  | [ d ] ->
      Alcotest.(check string) "code" "E0101" d.Diag.d_code;
      Alcotest.(check int) "line" 2 d.Diag.d_span.Diag.sl;
      Alcotest.(check int) "col" 1 d.Diag.d_span.Diag.sc
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds));
  check_analyzed r "f";
  check_analyzed r "g"

let test_unterminated_comment () =
  let src = "int f(int *p) { return *p; }\n/* never closed" in
  let r = Driver.run_source ~mode:Analysis.Mono src in
  Alcotest.(check bool)
    "E0103 reported" true
    (List.exists (fun d -> d.Diag.d_code = "E0103") r.Driver.diagnostics);
  check_analyzed r "f"

let test_unterminated_string () =
  let src = "int f(int *p) { return *p; }\nchar *s = \"oops\n" in
  let r = Driver.run_source ~mode:Analysis.Mono src in
  Alcotest.(check bool)
    "E0102 reported" true
    (List.exists (fun d -> d.Diag.d_code = "E0102") r.Driver.diagnostics);
  check_analyzed r "f"

let test_max_errors_cap () =
  let src =
    String.concat "" (List.init 10 (fun _ -> "int = 1;\n"))
    ^ "int ok(int *p) { return *p; }\n"
  in
  let pr = Cparse.parse_program_partial ~max_errors:3 src in
  let errs = List.filter Diag.is_error pr.Cparse.pr_diags in
  Alcotest.(check int) "capped" 3 (List.length errs);
  let last = List.nth pr.Cparse.pr_diags (List.length pr.Cparse.pr_diags - 1) in
  Alcotest.(check string) "gave up note" "E0299" last.Diag.d_code;
  Alcotest.(check bool) "note severity" true (last.Diag.d_severity = Diag.Note)

let test_unknown_typedef_degrades () =
  (* the first declarator registers T in the parser's typedef set, then
     the second one fails, so the whole GTypedef is lost to recovery:
     [use] parses against a typedef the program tables never see *)
  let src =
    "typedef int T, 5;\n\
     int use(T *p) { return *p; }\n\
     int ok(int *q) { return *q; }\n"
  in
  let r = Driver.run_source ~mode:Analysis.Mono src in
  check_analyzed r "ok";
  let reason = check_degraded r "use" in
  Alcotest.(check bool)
    "typedef reason" true
    (contains ~sub:"unknown typedef" reason)

(* ------------------------------------------------------------------ *)
(* Budgets                                                             *)
(* ------------------------------------------------------------------ *)

let check_all_budget_degraded r =
  Alcotest.(check bool) "has functions" true (outcomes r <> []);
  List.iter
    (fun (n, o) ->
      match o with
      | Analysis.Degraded reason when contains ~sub:"budget exhausted" reason
        ->
          ()
      | Analysis.Degraded reason ->
          Alcotest.failf "%s degraded for the wrong reason: %s" n reason
      | Analysis.Analyzed -> Alcotest.failf "%s not degraded" n)
    (outcomes r);
  List.iter
    (fun (_, v) ->
      Alcotest.(check bool) "verdict Either" true (v = Report.Either))
    r.Driver.results.Report.positions

let test_budget_pops () =
  let src = Cbench.Gen.generate ~seed:7 ~target_lines:120 () in
  let budget = Budget.create ~max_pops:20 () in
  let r = Driver.run_source ~mode:Analysis.Mono ~budget src in
  Alcotest.(check bool) "tripped" true (Budget.is_exhausted budget);
  check_all_budget_degraded r

let test_budget_vars () =
  let src = Cbench.Gen.generate ~seed:11 ~target_lines:120 () in
  let budget = Budget.create ~max_vars:5 () in
  let r = Driver.run_source ~mode:Analysis.Poly ~budget src in
  Alcotest.(check bool) "tripped" true (Budget.is_exhausted budget);
  check_all_budget_degraded r

let test_budget_deadline () =
  (* a fake clock that jumps an hour per poll: the deadline trips at the
     first check, deterministically, and the run must still terminate *)
  let t = ref 0.0 in
  let clock () =
    t := !t +. 3600.0;
    !t
  in
  let src = Cbench.Gen.generate ~seed:3 ~target_lines:200 () in
  let budget = Budget.create ~deadline_s:1.0 ~clock () in
  let r = Driver.run_source ~mode:Analysis.Mono ~budget src in
  Alcotest.(check bool) "tripped" true (Budget.is_exhausted budget);
  check_all_budget_degraded r

let test_budget_untripped_is_clean () =
  let src = "int f(const int *p) { return *p; }\n" in
  let budget = Budget.create ~max_vars:1000 ~max_pops:100000 () in
  let r = Driver.run_source ~mode:Analysis.Mono ~budget src in
  Alcotest.(check bool) "not tripped" false (Budget.is_exhausted budget);
  check_analyzed r "f";
  match r.Driver.results.Report.positions with
  | [ (_, v) ] ->
      Alcotest.(check bool) "still precise" true (v = Report.Must_const)
  | _ -> Alcotest.fail "expected one position"

(* ------------------------------------------------------------------ *)
(* Fault-injection property                                            *)
(* ------------------------------------------------------------------ *)

module SS = Set.Make (String)

(* Struct tags reachable from a (typedef-expanded) type: functions using
   the same tag share the per-tag field table, so they are coupled. *)
let rec tags_of_ctype acc (t : Cast.ctype) =
  let open Cast in
  match t with
  | TStruct (tag, _) -> SS.add tag acc
  | TNamed (n, _) -> SS.add ("typedef:" ^ n) acc
  | TPtr (t, _) | TArray (t, _, _) -> tags_of_ctype acc t
  | TFun (r, ps, _) ->
      List.fold_left
        (fun acc (_, t) -> tags_of_ctype acc t)
        (tags_of_ctype acc r) ps
  | TVoid _ | TInt _ | TFloat _ -> acc

let rec expr_ctypes acc (e : Cast.expr) =
  let open Cast in
  match e with
  | ECast (t, e) -> expr_ctypes (t :: acc) e
  | ESizeofT t -> t :: acc
  | EInt _ | EFloat _ | EChar _ | EString _ | EVar _ -> acc
  | EUnop (_, e)
  | EIncDec (_, _, e)
  | EMember (e, _)
  | EArrow (e, _)
  | ESizeofE e
  | EAddr e
  | EDeref e ->
      expr_ctypes acc e
  | EBinop (_, a, b)
  | EAssign (a, b)
  | EAssignOp (_, a, b)
  | EComma (a, b)
  | EIndex (a, b) ->
      expr_ctypes (expr_ctypes acc a) b
  | ECond (a, b, c) -> expr_ctypes (expr_ctypes (expr_ctypes acc a) b) c
  | ECall (f, args) -> List.fold_left expr_ctypes (expr_ctypes acc f) args
  | EInitList es -> List.fold_left expr_ctypes acc es

let decl_ctypes acc (d : Cast.decl) =
  let acc = d.Cast.d_type :: acc in
  match d.Cast.d_init with Some e -> expr_ctypes acc e | None -> acc

let rec stmt_ctypes acc (s : Cast.stmt) =
  let open Cast in
  match s with
  | SExpr e -> expr_ctypes acc e
  | SDecl ds -> List.fold_left decl_ctypes acc ds
  | SBlock ss -> List.fold_left stmt_ctypes acc ss
  | SIf (e, s1, s2) ->
      let acc = stmt_ctypes (expr_ctypes acc e) s1 in
      Option.fold ~none:acc ~some:(stmt_ctypes acc) s2
  | SWhile (e, s) -> stmt_ctypes (expr_ctypes acc e) s
  | SDoWhile (s, e) -> expr_ctypes (stmt_ctypes acc s) e
  | SFor (i, c, st, b) ->
      let acc = Option.fold ~none:acc ~some:(stmt_ctypes acc) i in
      let acc = Option.fold ~none:acc ~some:(expr_ctypes acc) c in
      let acc = Option.fold ~none:acc ~some:(expr_ctypes acc) st in
      stmt_ctypes acc b
  | SReturn (Some e) -> expr_ctypes acc e
  | SReturn None | SBreak | SContinue | SGoto _ | SNull -> acc
  | SSwitch (e, s) | SCase (e, s) -> stmt_ctypes (expr_ctypes acc e) s
  | SDefault s | SLabel (_, s) -> stmt_ctypes acc s

let all_tags prog =
  Hashtbl.fold (fun k _ acc -> SS.add k acc) prog.Cprog.comps SS.empty

(* Everything a function's constraints can touch outside itself: the
   identifiers it mentions (globals, callees, library functions — plus
   its own name, so callers connect to it) and the struct tags of every
   type it uses. If typedef expansion fails the tag set is unknowable, so
   it conservatively couples to every tag in the program. *)
let fun_vocab prog (f : Cast.fundef) : SS.t =
  let idents = SS.of_list (f.Cast.f_name :: Fdg.mentions f) in
  let ctypes =
    (f.Cast.f_ret :: List.map snd f.Cast.f_params)
    @ List.fold_left stmt_ctypes [] f.Cast.f_body
  in
  let tags =
    try
      List.fold_left
        (fun acc t -> tags_of_ctype acc (Cprog.expand prog t))
        SS.empty ctypes
    with Cprog.Frontend_error _ -> all_tags prog
  in
  SS.union idents tags

(* Global variables couple every function that mentions them; their
   initializers and types are analyzed once, as a single pseudo-node. *)
let globals_vocab prog (gs : Cast.global list) : SS.t =
  List.fold_left
    (fun acc g ->
      match g with
      | Cast.GVar d ->
          let acc = SS.add d.Cast.d_name acc in
          let acc =
            match d.Cast.d_init with
            | Some e -> SS.union acc (SS.of_list (Cast.expr_idents [] e))
            | None -> acc
          in
          let ctypes = decl_ctypes [] d in
          (try
             List.fold_left
               (fun acc t -> tags_of_ctype acc (Cprog.expand prog t))
               acc ctypes
           with Cprog.Frontend_error _ -> SS.union acc (all_tags prog))
      | _ -> acc)
    SS.empty gs

let pseudo = "\x00globals"

(* Undirected closure: a function is affected if its vocabulary meets an
   affected node's. Over-approximates constraint-graph connectivity. *)
let closure (nodes : (string * SS.t) list) (seeds : string list) : SS.t =
  let affected = ref (SS.of_list seeds) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (n, voc) ->
        if
          (not (SS.mem n !affected))
          && List.exists
               (fun (m, voc') ->
                 SS.mem m !affected
                 && not (SS.is_empty (SS.inter voc voc')))
               nodes
        then begin
          affected := SS.add n !affected;
          changed := true
        end)
      nodes
  done;
  !affected

let verdicts_of (r : Driver.run) name =
  List.filter_map
    (fun ((p : Report.position), v) ->
      if p.Report.p_fun = name then Some (p.Report.p_where, p.Report.p_level, v)
      else None)
    r.Driver.results.Report.positions

(* Newline-preserving mutations, so surviving functions keep their line
   numbers (truncation only perturbs the tail). *)
let mutate kind a b src =
  let n = String.length src in
  if n = 0 then src
  else
    match kind with
    | 0 ->
        let i = a mod n in
        if src.[i] = '\n' then src
        else
          let junk = "@;)}({=*&x3\"'" in
          let c = junk.[b mod String.length junk] in
          String.mapi (fun j ch -> if j = i then c else ch) src
    | 1 ->
        let i = a mod n in
        let len = 1 + (b mod 8) in
        String.mapi
          (fun j ch -> if j >= i && j < i + len && ch <> '\n' then ' ' else ch)
          src
    | _ -> String.sub src 0 (a mod n)

let funs_of p =
  List.filter_map
    (function Cast.GFun f -> Some (f.Cast.f_name, f) | _ -> None)
    p.Cparse.pr_prog

let nonfuns_of p =
  List.filter (function Cast.GFun _ -> false | _ -> true) p.Cparse.pr_prog

let prop_fault_injection =
  QCheck2.Test.make ~count:300
    ~name:"fault injection: no crash, diagnosed, isolated"
    QCheck2.Gen.(
      quad (int_bound 9999) (int_bound 2) (int_bound 99999) (int_bound 99999))
    (fun (pseed, kind, a, b) ->
      let src0 = Cbench.Gen.generate ~seed:pseed ~target_lines:50 () in
      let src1 = mutate kind a b src0 in
      let r1 =
        try Driver.run_source ~mode:Analysis.Mono src1
        with e ->
          QCheck2.Test.fail_reportf "Driver.run_source raised %s on:\n%s"
            (Printexc.to_string e) src1
      in
      (* a source the strict parser rejects must carry a diagnostic *)
      (match Cparse.parse_program_result src1 with
      | Error _ when r1.Driver.diagnostics = [] ->
          QCheck2.Test.fail_reportf "rejected source has no diagnostics:\n%s"
            src1
      | _ -> ());
      let p0 = Cparse.parse_program_partial src0 in
      let p1 = Cparse.parse_program_partial src1 in
      let f0 = funs_of p0 and f1 = funs_of p1 in
      let dup l =
        let names = List.map fst l in
        List.length (List.sort_uniq String.compare names)
        <> List.length names
      in
      (* skip the isolation check when the non-function scaffolding
         (structs, typedefs, globals) changed, or names got duplicated:
         every function is potentially affected then *)
      if nonfuns_of p0 <> nonfuns_of p1 || dup f0 || dup f1 then true
      else begin
        let r0 = Driver.run_source ~mode:Analysis.Mono src0 in
        let prog0 = Cprog.build p0.Cparse.pr_prog in
        let prog1 = Cprog.build p1.Cparse.pr_prog in
        let changed =
          List.filter_map
            (fun (n, f) ->
              match List.assoc_opt n f1 with
              | Some f' when f' = f -> None
              | _ -> Some n)
            f0
          @ List.filter_map
              (fun (n, _) -> if List.mem_assoc n f0 then None else Some n)
              f1
          @ degraded_of r0 @ degraded_of r1
        in
        let names =
          List.sort_uniq String.compare (List.map fst f0 @ List.map fst f1)
        in
        let nodes =
          (pseudo, globals_vocab prog0 (nonfuns_of p0))
          :: List.map
               (fun n ->
                 let v0 =
                   Option.map (fun_vocab prog0) (List.assoc_opt n f0)
                 in
                 let v1 =
                   Option.map (fun_vocab prog1) (List.assoc_opt n f1)
                 in
                 let join a b =
                   match (a, b) with
                   | Some x, Some y -> SS.union x y
                   | Some x, None | None, Some x -> x
                   | None, None -> SS.empty
                 in
                 (n, join v0 v1))
               names
        in
        let affected = closure nodes changed in
        List.iter
          (fun (n, _) ->
            if
              (not (SS.mem n affected))
              && List.mem_assoc n f1
              && verdicts_of r0 n <> verdicts_of r1 n
            then
              QCheck2.Test.fail_reportf
                "verdicts of untouched %s changed after mutation \
                 (kind=%d a=%d b=%d):\n%s"
                n kind a b src1)
          f0;
        true
      end)

(* ------------------------------------------------------------------ *)

let tests =
  [
    Alcotest.test_case "recovery: three errors" `Quick
      test_recovery_three_errors;
    Alcotest.test_case "recovery: demoted body isolates caller" `Quick
      test_body_demotion_isolates_caller;
    Alcotest.test_case "recovery: lexer bad char" `Quick test_lex_recovery;
    Alcotest.test_case "recovery: unterminated comment" `Quick
      test_unterminated_comment;
    Alcotest.test_case "recovery: unterminated string" `Quick
      test_unterminated_string;
    Alcotest.test_case "recovery: --max-errors cap" `Quick test_max_errors_cap;
    Alcotest.test_case "degrade: unknown typedef" `Quick
      test_unknown_typedef_degrades;
    Alcotest.test_case "budget: worklist pops" `Quick test_budget_pops;
    Alcotest.test_case "budget: variable cap" `Quick test_budget_vars;
    Alcotest.test_case "budget: deadline" `Quick test_budget_deadline;
    Alcotest.test_case "budget: untripped stays precise" `Quick
      test_budget_untripped_is_clean;
    QCheck_alcotest.to_alcotest prop_fault_injection;
  ]
