(* The per-unit frontend: parity with the concat oracle (reports,
   diagnostics, counters), unit-boundary diagnostic positions, cross-unit
   parser-environment threading (typedef / enum-constant / anonymous-tag
   reparses), the diagnostic budget crossing unit boundaries, the
   per-unit AST cache tier, and the outcome-list construction on
   many-degraded programs. *)

open Cqual
module Diag = Cfront.Diag
module Solver = Typequal.Solver

(* everything observable from a run: the test_parallel digest plus the
   rendered diagnostics (unit prefix and all) *)
let digest (r : Driver.run) : string =
  let b = Buffer.create 1024 in
  let res = r.Driver.results in
  List.iter
    (fun d -> Buffer.add_string b (Diag.to_string d ^ "\n"))
    r.Driver.diagnostics;
  List.iter
    (fun pv -> Buffer.add_string b (Fmt.str "%a\n" Report.pp_position pv))
    res.Report.positions;
  Buffer.add_string b
    (Printf.sprintf "lines=%d declared=%d possible=%d must=%d total=%d \
                     errors=%d\n"
       r.Driver.lines res.Report.declared res.Report.possible res.Report.must
       res.Report.total res.Report.type_errors);
  List.iter
    (fun w -> Buffer.add_string b ("warning " ^ w ^ "\n"))
    res.Report.warnings;
  List.iter
    (fun (f, o) ->
      Buffer.add_string b
        (match o with
        | Analysis.Analyzed -> "analyzed " ^ f ^ "\n"
        | Analysis.Degraded why -> "degraded " ^ f ^ ": " ^ why ^ "\n"))
    res.Report.outcomes;
  let st = r.Driver.solver_stats in
  Buffer.add_string b
    (Printf.sprintf "vars=%d unified=%d edges=%d deduped=%d cycles=%d pops=%d\n"
       st.Solver.vars_created st.Solver.vars_unified st.Solver.edges_added
       st.Solver.edges_deduped st.Solver.cycles_collapsed
       st.Solver.worklist_pops);
  Buffer.contents b

let run ?mode ?jobs ?max_errors frontend files =
  Driver.run_sources ~frontend ?mode ?jobs ?max_errors files

(* both frontends, serial and jobs 4, must agree observably *)
let check_parity ?mode ?max_errors what files =
  let d0 = digest (run ?mode ?max_errors ~jobs:1 Driver.Per_unit files) in
  List.iter
    (fun (label, frontend, jobs) ->
      Alcotest.(check string)
        (Printf.sprintf "%s: %s" what label)
        d0
        (digest (run ?mode ?max_errors ~jobs frontend files)))
    [
      ("concat serial", Driver.Concat, 1);
      ("per-unit jobs 4", Driver.Per_unit, 4);
      ("concat jobs 4", Driver.Concat, 4);
    ];
  d0

(* ---------------- parity on generated projects ---------------- *)

let test_parity_generated () =
  List.iter
    (fun seed ->
      let files =
        Cbench.Gen.generate_project ~seed ~target_lines:2000 ()
      in
      List.iter
        (fun (mname, mode) ->
          ignore
            (check_parity ~mode
               (Printf.sprintf "seed %d %s" seed mname)
               files))
        [ ("mono", Analysis.Mono); ("poly", Analysis.Poly) ])
    [ 21; 22 ]

(* ---------------- unit-boundary diagnostics ---------------- *)

let test_unit_boundary_positions () =
  (* a parse error on line 1 of the third file must be reported as
     third-file line 1, not as an offset into a concatenated program *)
  let files =
    [
      ("a.c", "int f(int x) { return x; }\n");
      ("b.c", "int g(int y) { return y; }\n");
      ("c.c", "int 5broken;\nint h(int z) { return z; }\n");
    ]
  in
  let check_diags label r =
    match r.Driver.diagnostics with
    | [ d ] ->
        Alcotest.(check string) (label ^ ": unit") "c.c"
          (Option.value d.Diag.d_unit ~default:"<none>");
        Alcotest.(check int) (label ^ ": line") 1 d.Diag.d_span.Diag.sl
    | ds -> Alcotest.failf "%s: expected 1 diagnostic, got %d" label
              (List.length ds)
  in
  check_diags "per-unit" (run ~mode:Analysis.Mono Driver.Per_unit files);
  check_diags "concat" (run ~mode:Analysis.Mono Driver.Concat files);
  ignore (check_parity ~mode:Analysis.Mono "boundary diag" files)

(* ---------------- cross-unit environment threading ---------------- *)

let frontend_stats (r : Driver.run) =
  match r.Driver.frontend with
  | Some fs -> fs
  | None -> Alcotest.fail "expected per-unit frontend stats"

let test_typedef_threading () =
  (* unit 2 uses a typedef exported by unit 1: its speculative parse
     (which reads [myint x;] as two declarations) must be discarded and
     redone with the linked environment *)
  let files =
    [
      ("header.c", "typedef int myint;\n");
      ("use.c", "myint global_x;\nint f(myint m) { return m; }\n");
    ]
  in
  let r = run ~mode:Analysis.Mono Driver.Per_unit files in
  Alcotest.(check bool) "use.c reparsed" true
    ((frontend_stats r).Driver.fs_reparsed >= 1);
  Alcotest.(check (list string)) "no diagnostics" []
    (List.map Diag.to_string r.Driver.diagnostics);
  ignore (check_parity ~mode:Analysis.Mono "typedef threading" files)

let test_enum_threading () =
  let files =
    [
      ("header.c", "enum color { RED, GREEN = 5, BLUE };\n");
      ("use.c", "int f(void) { return GREEN + BLUE; }\n");
    ]
  in
  let r = run ~mode:Analysis.Mono Driver.Per_unit files in
  Alcotest.(check bool) "use.c reparsed" true
    ((frontend_stats r).Driver.fs_reparsed >= 1);
  ignore (check_parity ~mode:Analysis.Mono "enum threading" files)

let test_anon_tag_threading () =
  (* anonymous struct tags are numbered program-wide in the concat
     pipeline; a later unit with its own anonymous tag must be re-parsed
     with the running counter so the generated tags match *)
  let files =
    [
      ("a.c", "struct { int x; } g_a;\n");
      ("b.c", "struct { int y; } g_b;\nint f(void) { return g_b.y; }\n");
    ]
  in
  let r = run ~mode:Analysis.Mono Driver.Per_unit files in
  Alcotest.(check bool) "b.c reparsed" true
    ((frontend_stats r).Driver.fs_reparsed >= 1);
  ignore (check_parity ~mode:Analysis.Mono "anon tags" files)

let test_independent_units_not_reparsed () =
  let files =
    [
      ("a.c", "int f(int x) { return x; }\n");
      ("b.c", "int g(int y) { return y; }\n");
    ]
  in
  let r = run ~mode:Analysis.Mono Driver.Per_unit files in
  Alcotest.(check int) "no reparses" 0
    (frontend_stats r).Driver.fs_reparsed;
  Alcotest.(check int) "two units" 2 (frontend_stats r).Driver.fs_units

(* ---------------- diagnostic budget across units ---------------- *)

let bad_decls n = String.concat "" (List.init n (fun _ -> "int 5;\n"))

let test_budget_crosses_boundary () =
  (* 3 parse errors in unit 1, budget 5: unit 2's errors must keep
     counting from 3, so the cap (and its E0299 note) fires inside
     unit 2 — identically under both frontends *)
  let files =
    [
      ("a.c", bad_decls 3 ^ "int f(int x) { return x; }\n");
      ("b.c", bad_decls 4 ^ "int g(int y) { return y; }\n");
    ]
  in
  let d = check_parity ~mode:Analysis.Mono ~max_errors:5 "budget" files in
  Alcotest.(check bool) "cap fired in b.c" true
    (let r = run ~mode:Analysis.Mono ~max_errors:5 Driver.Per_unit files in
     List.exists
       (fun dg ->
         dg.Diag.d_code = "E0299" && dg.Diag.d_unit = Some "b.c")
       r.Driver.diagnostics);
  Alcotest.(check bool) "digest mentions the cap" true
    (let sub = "E0299" in
     let n = String.length d and m = String.length sub in
     let rec go i = i + m <= n && (String.sub d i m = sub || go (i + 1)) in
     go 0)

let test_budget_exact_boundary () =
  (* the budget runs out exactly at the unit boundary: a whole-program
     parse gives up at the next unit's first token, so the per-unit link
     must synthesize the E0299 note there without parsing the unit *)
  let files =
    [
      ("a.c", bad_decls 2);
      ("b.c", "int g(int y) { return y; }\n");
    ]
  in
  ignore (check_parity ~mode:Analysis.Mono ~max_errors:2 "exact boundary" files);
  let r = run ~mode:Analysis.Mono ~max_errors:2 Driver.Per_unit files in
  (match List.rev r.Driver.diagnostics with
  | last :: _ ->
      Alcotest.(check string) "E0299 last" "E0299" last.Diag.d_code;
      Alcotest.(check string) "in b.c" "b.c"
        (Option.value last.Diag.d_unit ~default:"<none>")
  | [] -> Alcotest.fail "expected diagnostics");
  (* b.c was never parsed: g contributes no outcome *)
  Alcotest.(check bool) "g not parsed" true
    (not (List.mem_assoc "g" r.Driver.results.Report.outcomes))

(* ---------------- many degraded functions (outcome construction) ----- *)

let test_many_degraded_outcomes () =
  (* thousands of demoted bodies: the outcome list must come back
     complete and in program order (and its construction must not be
     quadratic in the degraded count) *)
  let n = 2000 in
  let src =
    String.concat ""
      (List.init n (fun i ->
           Printf.sprintf "int f%04d(int *p) { return * ; }\n" i))
  in
  let r =
    Driver.run_source ~mode:Analysis.Mono ~max_errors:(n + 1) src
  in
  let outs = r.Driver.results.Report.outcomes in
  Alcotest.(check int) "all functions have outcomes" n (List.length outs);
  List.iteri
    (fun i (name, o) ->
      if name <> Printf.sprintf "f%04d" i then
        Alcotest.failf "outcome %d out of order: %s" i name;
      match o with
      | Analysis.Degraded _ -> ()
      | Analysis.Analyzed -> Alcotest.failf "%s unexpectedly analyzed" name)
    outs

(* ---------------- per-unit AST cache ---------------- *)

let with_cache_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "typequal-test-frontend-%d-%d" (Unix.getpid ())
         (Hashtbl.hash f))
  in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  Fun.protect
    ~finally:(fun () ->
      try
        Array.iter
          (fun x -> try Sys.remove (Filename.concat dir x) with Sys_error _ -> ())
          (Sys.readdir dir);
        Sys.rmdir dir
      with Sys_error _ -> ())
    (fun () -> f dir)

let unit_counts (cs : Driver.cache_spec) =
  match
    Hashtbl.find_opt (Typequal.Cache.stats cs.Driver.cs_cache).Typequal.Cache.by_kind
      "unit"
  with
  | Some hm -> hm
  | None -> (0, 0)

let test_dirty_unit_reparses_one () =
  with_cache_dir (fun dir ->
      let files = Cbench.Gen.generate_project ~seed:31 ~target_lines:1500 () in
      let nunits = List.length files in
      Alcotest.(check bool) "project has several units" true (nunits > 1);
      let open_cs () =
        match Driver.open_cache ~opts_id:"test" dir with
        | Some cs -> cs
        | None -> Alcotest.fail "cannot open cache"
      in
      let cs = open_cs () in
      let r_cold = Driver.run_sources ~mode:Analysis.Mono ~cache:cs files in
      Alcotest.(check (pair int int)) "cold: all units miss" (0, nunits)
        (unit_counts cs);
      let dirty =
        match List.rev files with
        | (name, src) :: rest ->
            List.rev ((name, src ^ "/* touched */\n") :: rest)
        | [] -> assert false
      in
      let cs2 = open_cs () in
      let r_dirty = Driver.run_sources ~mode:Analysis.Mono ~cache:cs2 dirty in
      Alcotest.(check (pair int int)) "dirty: one unit re-parses"
        (nunits - 1, 1) (unit_counts cs2);
      (* the touched comment changes no report content except the line
         count *)
      Alcotest.(check int) "same verdicts"
        r_cold.Driver.results.Report.possible
        r_dirty.Driver.results.Report.possible)

(* ---------------- oversubscription warning predicate ---------------- *)

let test_oversubscription () =
  let cores = Typequal.Pool.cores_available () in
  Alcotest.(check (option int)) "jobs=1 never oversubscribes" None
    (Driver.oversubscription ~jobs:1);
  Alcotest.(check (option int)) "cores+1 oversubscribes" (Some cores)
    (Driver.oversubscription ~jobs:(cores + 1));
  Alcotest.(check (option int)) "jobs=cores fits" None
    (Driver.oversubscription ~jobs:cores)

let tests =
  [
    Alcotest.test_case "parity on generated projects" `Quick
      test_parity_generated;
    Alcotest.test_case "unit-boundary diagnostic positions" `Quick
      test_unit_boundary_positions;
    Alcotest.test_case "typedef threading forces reparse" `Quick
      test_typedef_threading;
    Alcotest.test_case "enum-constant threading forces reparse" `Quick
      test_enum_threading;
    Alcotest.test_case "anonymous-tag numbering forces reparse" `Quick
      test_anon_tag_threading;
    Alcotest.test_case "independent units parse speculatively" `Quick
      test_independent_units_not_reparsed;
    Alcotest.test_case "diagnostic budget crosses unit boundary" `Quick
      test_budget_crosses_boundary;
    Alcotest.test_case "budget exhausted exactly at a boundary" `Quick
      test_budget_exact_boundary;
    Alcotest.test_case "many degraded functions: outcomes complete" `Quick
      test_many_degraded_outcomes;
    Alcotest.test_case "dirty unit re-parses exactly one unit" `Quick
      test_dirty_unit_reparses_one;
    Alcotest.test_case "oversubscription predicate" `Quick
      test_oversubscription;
  ]
