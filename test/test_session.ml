(* The edit-script replay harness for the persistent Session, plus the
   daemon's wire format.

   The core property: a warm session that has lived through a sequence
   of edits renders byte-identically to a cold session built fresh over
   the same sources — at every step, for clean and for broken corpora,
   and regardless of the warm session's job count (the cold oracle always
   runs serial). Scripts end by restoring the original sources, so the
   final render must equal the very first. *)

open Cqual

(* ---------------- corpora ---------------- *)

let clean_units = Cbench.Programs.miniproject

(* a parse-error unit (recovered) next to a const violation: the replay
   must stay byte-identical even when the report has TYPE ERRORS and the
   frontend emits diagnostics *)
let viol_src = "void vf(const char *s) { char *p; p = s; *p = 'x'; }\n"
let viol_fixed = "void vf(const char *s) { const char *p; p = s; (void)*p; }\n"

let bad_src =
  "int good(void) { return 1; }\n@ $$$ garbage @@@\nint tail(void) { return 2; }\n"

let bad_fixed = "int good(void) { return 1; }\nint tail(void) { return 2; }\n"
let broken_units = [ ("viol.c", viol_src); ("bad.c", bad_src) ]

(* ---------------- the replay harness ---------------- *)

let render_diags ds =
  String.concat "" (List.map (fun d -> Fmt.str "%a@." Cfront.Diag.pp d) ds)

(* assoc-replace keeping link order, appending unknown names *)
let update_assoc units name src =
  if List.mem_assoc name units then
    List.map (fun (n, s) -> if n = name then (n, src) else (n, s)) units
  else units @ [ (name, src) ]

let snapshot t =
  ( Session.render ~positions:true ~name:"replay" t,
    render_diags (Session.diagnostics t) )

(* cold oracle: a fresh serial session over the same sources *)
let cold_snapshot units = snapshot (Session.create ~jobs:1 units)

(* Apply [script] (a list of (unit, new-source) edits) to a warm session
   at [jobs], checking warm = cold after every step. The script must end
   with the units back at their original sources. *)
let replay ~jobs units script =
  let t = Session.create ~jobs units in
  let check step units =
    let warm_r, warm_d = snapshot t in
    let cold_r, cold_d = cold_snapshot units in
    Alcotest.(check string) (step ^ ": render") cold_r warm_r;
    Alcotest.(check string) (step ^ ": diagnostics") cold_d warm_d
  in
  check "initial" units;
  let initial, _ = snapshot t in
  let cur = ref units in
  List.iteri
    (fun i (name, src) ->
      ignore (Session.update_unit t name src);
      cur := update_assoc !cur name src;
      check (Printf.sprintf "step %d (%s)" i name) !cur)
    script;
  let final, _ = snapshot t in
  Alcotest.(check string) "script restores the initial render" initial final

let clean_script () =
  let a0 = List.assoc "proj_a.c" clean_units in
  let b0 = List.assoc "proj_b.c" clean_units in
  [
    (* grow a.c with an independent function *)
    ("proj_a.c", a0 ^ "int proj_a_extra(int x) { return x + 1; }\n");
    (* then touch b.c too *)
    ("proj_b.c", b0 ^ "int proj_b_extra(int x) { return x - 1; }\n");
    ("proj_a.c", a0);
    ("proj_b.c", b0);
  ]

let broken_script () =
  [
    ("bad.c", bad_fixed);
    ("viol.c", viol_fixed);
    ("bad.c", bad_src);
    ("viol.c", viol_src);
  ]

let test_replay_clean_serial () = replay ~jobs:1 clean_units (clean_script ())
let test_replay_clean_par () = replay ~jobs:4 clean_units (clean_script ())

let test_replay_broken_serial () =
  replay ~jobs:1 broken_units (broken_script ())

let test_replay_broken_par () = replay ~jobs:4 broken_units (broken_script ())

(* ---------------- invalidation granularity ---------------- *)

let test_unchanged_is_noop () =
  let t = Session.create clean_units in
  let r1 = Session.run t in
  let status =
    Session.update_unit t "proj_a.c" (List.assoc "proj_a.c" clean_units)
  in
  Alcotest.(check bool)
    "same content reports `Unchanged" true
    (status = `Unchanged);
  let r2 = Session.run t in
  Alcotest.(check bool) "run is not recomputed (physically equal)" true
    (r1 == r2)

let test_memo_survives_edit () =
  let t = Session.create clean_units in
  ignore (Session.run t);
  let a0 = List.assoc "proj_a.c" clean_units in
  ignore
    (Session.update_unit t "proj_a.c"
       (a0 ^ "int proj_a_extra(int x) { return x + 1; }\n"));
  ignore (Session.run t);
  let s = Session.stats t in
  Alcotest.(check bool)
    "clean SCCs replay from the scheme memo" true
    (s.Session.ss_memo_hits > 0)

let test_remove_unit () =
  let t = Session.create clean_units in
  ignore (Session.run t);
  Alcotest.(check bool) "known unit removed" true
    (Session.remove_unit t "proj_a.c");
  Alcotest.(check bool) "unknown unit refused" false
    (Session.remove_unit t "proj_a.c");
  Alcotest.(check (list string))
    "link order preserved" [ "proj_h.c"; "proj_b.c" ] (Session.units t)

(* ---------------- position keys ---------------- *)

let test_position_key_aliases () =
  let t = Session.create clean_units in
  let ps = Session.positions t in
  Alcotest.(check bool) "some positions" true (ps <> []);
  let anchored =
    List.filter (fun (_, p, _) -> p.Report.p_line > 0 && p.Report.p_col > 0) ps
  in
  Alcotest.(check bool) "canonical anchors exist" true (anchored <> []);
  List.iter
    (fun (key, p, v) ->
      Alcotest.(check string) "key is canonical" (Report.position_key p) key;
      (match Session.classify t key with
      | Some (_, v') ->
          Alcotest.(check bool) "canonical key resolves" true (v = v')
      | None -> Alcotest.fail ("canonical key unknown: " ^ key));
      match Session.classify t (Report.structural_key p) with
      | Some (_, v') ->
          Alcotest.(check bool) "structural alias agrees" true (v = v')
      | None ->
          Alcotest.fail ("structural alias unknown: " ^ Report.structural_key p))
    anchored

let test_explain_contract () =
  let t = Session.create clean_units in
  (match Session.positions t with
  | (key, _, _) :: _ -> (
      match Session.explain t key with
      | Ok (p, _, _) ->
          Alcotest.(check string)
            "explains the queried position" key (Report.position_key p)
      | Error e -> Alcotest.fail ("explain failed on known key: " ^ e))
  | [] -> Alcotest.fail "no positions");
  match Session.explain t "nope.c:1:1@1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown key must be an Error"

(* ---------------- whatif: concurrent thunks = inline ---------------- *)

let test_whatif_concurrent_matches_inline () =
  let t = Session.create clean_units in
  let keys =
    List.filteri (fun i _ -> i < 6) (Session.positions t)
    |> List.map (fun (k, _, _) -> k)
  in
  Alcotest.(check bool) "have keys" true (keys <> []);
  let inline =
    List.map
      (fun k ->
        match Session.whatif t ~qual:"const" k with
        | Ok r -> r
        | Error e -> Alcotest.fail ("inline whatif failed: " ^ e))
      keys
  in
  (* prepare serially, evaluate the thunks concurrently on the pool *)
  let thunks =
    List.map
      (fun k ->
        match Session.whatif_task t ~qual:"const" k with
        | Ok f -> f
        | Error e -> Alcotest.fail ("whatif_task failed: " ^ e))
      keys
  in
  let out = Array.make (List.length thunks) None in
  Typequal.Pool.with_pool ~jobs:4 (fun pool ->
      List.iteri
        (fun i f ->
          Typequal.Pool.submit pool (fun () -> out.(i) <- Some (f ())))
        thunks;
      Typequal.Pool.wait pool);
  List.iteri
    (fun i expect ->
      match out.(i) with
      | None -> Alcotest.fail "thunk did not run"
      | Some got ->
          Alcotest.(check bool)
            (Printf.sprintf "pooled whatif %d matches inline" i)
            true (got = expect))
    inline

(* ---------------- the oversubscription notice ---------------- *)

let test_oversubscription_notice () =
  (match Session.oversubscription_notice ~jobs:1 with
  | None -> ()
  | Some _ -> Alcotest.fail "jobs:1 must not warn");
  match Session.oversubscription_notice ~jobs:9999 with
  | None -> Alcotest.fail "jobs:9999 must warn"
  | Some d ->
      Alcotest.(check bool)
        "is a Notice" true
        (d.Cfront.Diag.d_severity = Cfront.Diag.Notice);
      Alcotest.(check string) "stable code" "N0901" d.Cfront.Diag.d_code;
      Alcotest.(check string)
        "severity renders as notice" "notice"
        (Fmt.str "%a" Cfront.Diag.pp_severity d.Cfront.Diag.d_severity);
      Alcotest.(check bool)
        "legacy message text" true
        (String.length d.Cfront.Diag.d_message > 0
        && String.sub d.Cfront.Diag.d_message 0 12 = "--jobs 9999 ")

(* ---------------- the wire format ---------------- *)

let roundtrip j =
  match Wire.of_string (Wire.to_string j) with
  | Ok j' -> Alcotest.(check bool) ("roundtrip " ^ Wire.to_string j) true (j = j')
  | Error e -> Alcotest.fail ("reparse failed: " ^ e)

let test_wire_roundtrip () =
  roundtrip Wire.Null;
  roundtrip (Wire.Bool true);
  roundtrip (Wire.num_int 42);
  roundtrip (Wire.num_int (-7));
  roundtrip (Wire.Num 2.5);
  roundtrip (Wire.Str "");
  roundtrip (Wire.Str "hello");
  roundtrip (Wire.Str "quote\" back\\ slash/ nl\n tab\t ctl\x01\x1f");
  roundtrip
    (Wire.Obj
       [
         ("id", Wire.num_int 3);
         ("arr", Wire.Arr [ Wire.Null; Wire.Bool false; Wire.Str "x" ]);
         ("nest", Wire.Obj [ ("k", Wire.Str "v") ]);
       ]);
  (* integer-valued floats print without a fraction *)
  Alcotest.(check string) "int float" "42" (Wire.to_string (Wire.num_int 42))

let test_wire_unicode () =
  (* \uXXXX escapes, including a surrogate pair, decode to UTF-8 *)
  match Wire.of_string {|"\u0041\u00e9\ud83d\ude00"|} with
  | Ok (Wire.Str s) ->
      Alcotest.(check string) "utf-8 bytes" "A\xc3\xa9\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.fail ("unicode parse failed: " ^ e)

let test_wire_errors () =
  (match Wire.of_string "{\"a\":1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated object must fail");
  match Wire.of_string "1 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing input must fail"

let test_parse_request () =
  (match
     Wire.parse_request {|{"id":7,"method":"run","params":{"mode":"poly"}}|}
   with
  | Ok rq ->
      Alcotest.(check string) "method" "run" rq.Wire.rq_method;
      Alcotest.(check bool) "id" true (rq.Wire.rq_id = Wire.num_int 7);
      Alcotest.(check bool)
        "params" true
        (Wire.mem_string "mode" rq.Wire.rq_params = Some "poly")
  | Error e -> Alcotest.fail ("parse_request failed: " ^ e));
  (match Wire.parse_request {|{"id":1}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing method must fail");
  (* responses are themselves valid single-line JSON *)
  let ok = Wire.response_ok ~id:(Wire.num_int 7) (Wire.Str "done") in
  let err = Wire.response_error ~id:Wire.Null "boom" in
  List.iter
    (fun line ->
      Alcotest.(check bool) "single line" false (String.contains line '\n');
      match Wire.of_string line with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("response not JSON: " ^ e))
    [ ok; err ]

let tests =
  [
    Alcotest.test_case "replay: clean corpus, serial" `Quick
      test_replay_clean_serial;
    Alcotest.test_case "replay: clean corpus, jobs 4" `Quick
      test_replay_clean_par;
    Alcotest.test_case "replay: broken corpus, serial" `Quick
      test_replay_broken_serial;
    Alcotest.test_case "replay: broken corpus, jobs 4" `Quick
      test_replay_broken_par;
    Alcotest.test_case "unchanged update invalidates nothing" `Quick
      test_unchanged_is_noop;
    Alcotest.test_case "scheme memo survives an edit" `Quick
      test_memo_survives_edit;
    Alcotest.test_case "remove_unit keeps link order" `Quick test_remove_unit;
    Alcotest.test_case "canonical and structural keys agree" `Quick
      test_position_key_aliases;
    Alcotest.test_case "explain: Ok on known, Error on unknown" `Quick
      test_explain_contract;
    Alcotest.test_case "whatif: pooled thunks match inline" `Quick
      test_whatif_concurrent_matches_inline;
    Alcotest.test_case "oversubscription is a structured notice" `Quick
      test_oversubscription_notice;
    Alcotest.test_case "wire: roundtrip" `Quick test_wire_roundtrip;
    Alcotest.test_case "wire: unicode escapes" `Quick test_wire_unicode;
    Alcotest.test_case "wire: malformed input" `Quick test_wire_errors;
    Alcotest.test_case "wire: request/response framing" `Quick
      test_parse_request;
  ]
