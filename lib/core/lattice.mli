(** The qualifier lattice (Definition 2 of the paper), generalized: the
    product of one finite lattice per qualifier in a fixed {e space} —
    the classic two-point lattice of a polarized qualifier, or a
    user-defined lattice of named levels ({!Qualifier.Order}).

    Elements are machine ints under the {e upset (Birkhoff) encoding}:
    each coordinate owns a contiguous bit range, one bit per
    join-irreducible level, storing the set of irreducibles below the
    coordinate's level. Order is bitwise subset, meet is AND, join is OR.
    Two-point qualifiers are the 1-bit special case; for a positive
    qualifier bit set = syntactically present (the historical
    representation), for a negative one the sense is inverted and the
    presence accessors compensate. *)

exception Unknown_qualifier of string

type space_error = { code : string; message : string }
(** structured space-construction diagnostic. Stable codes:
    [L001] duplicate qualifier/level name, [L002] total bit width over
    {!Space.max_bits}. *)

exception Space_error of space_error

val pp_space_error : space_error Fmt.t

(** A qualifier space: the ordered universe of qualifiers an analysis
    uses, fixed for the lifetime of the analysis. *)
module Space : sig
  type t

  val max_bits : int
  (** maximum total encoding width (62: machine-int representation) *)

  val max_size : int
  (** historical alias of {!max_bits} *)

  val create : Qualifier.t list -> t
  (** Raises {!Space_error} on duplicate qualifier/level names ([L001]) or
      total bit width over {!max_bits} ([L002]). *)

  val size : t -> int
  (** number of coordinates (qualifiers) *)

  val qual : t -> int -> Qualifier.t
  val quals : t -> Qualifier.t list
  val find_opt : t -> string -> int option

  val find : t -> string -> int
  (** Raises {!Unknown_qualifier}. *)

  val mem : t -> string -> bool

  val order : t -> int -> Qualifier.Order.t option
  (** the coordinate's level lattice ([None] = classic two-point) *)

  val width : t -> int -> int
  (** bits of the coordinate's range (its join-irreducible count) *)

  val shift : t -> int -> int
  (** first bit of the coordinate's range *)

  val total_bits : t -> int

  val resolve : t -> string -> [ `Qual of int | `Level of int * int ] option
  (** resolve a name against the space: a qualifier name, or a level name
      of an ordered coordinate (qualifier names win) *)

  val pp_dump : t Fmt.t
  (** debugging dump: every coordinate with its levels, order and bit
      layout (the [--dump-lattice] output) *)
end

(** Elements of the product lattice, relative to a {!Space.t}. *)
module Elt : sig
  type t = int
  (** upset encoding; see the module header *)

  val full_mask : Space.t -> int

  val is_full_mask : Space.t -> int -> bool
  (** does the mask cover every coordinate of the space? (full-mask
      [var <= var] edges are the ones eligible for cycle collapse) *)

  val bottom : Space.t -> t
  (** every coordinate at its sub-lattice bottom (= 0) *)

  val top : Space.t -> t

  val equal : t -> t -> bool
  val compare : t -> t -> int

  val leq : Space.t -> t -> t -> bool
  (** the lattice order: bitwise subset *)

  val leq_masked : Space.t -> mask:int -> t -> t -> bool
  (** comparison restricted to the coordinates selected by [mask], which
      must be a union of whole coordinate ranges ({!singleton_mask} /
      {!mask_of_names}) — a partial range would split a coordinate's
      lattice *)

  val join : Space.t -> t -> t -> t
  val meet : Space.t -> t -> t -> t

  val embed_bottom : Space.t -> mask:int -> t -> t
  (** the masked coordinates of the argument, bottom elsewhere — the
      neutral extension for joins, used by masked constraint propagation *)

  val embed_top : Space.t -> mask:int -> t -> t
  (** dual: neutral extension for meets *)

  val has : Space.t -> int -> t -> bool
  (** syntactic presence of qualifier [i], polarity-aware: a negative
      qualifier is present exactly when its coordinate is at the
      sub-lattice bottom. Ordered coordinates count as present when above
      their bottom. *)

  val has_name : Space.t -> string -> t -> bool

  val set : Space.t -> int -> t -> t
  (** make qualifier [i] syntactically present (ordered coordinates: raise
      to top) *)

  val clear : Space.t -> int -> t -> t
  (** make qualifier [i] syntactically absent (ordered coordinates: drop
      to bottom) *)

  val not_ : Space.t -> int -> t
  (** the paper's [¬q]: top with coordinate [q] pinned to the {e bottom}
      of its sub-lattice. Asserting [Q <= not_ q] means "must not have q"
      for positive [q] (e.g. ¬const = assignable) and "must have q" for
      negative [q] (e.g. must be nonzero). *)

  val not_name : Space.t -> string -> t

  val level : Space.t -> int -> t -> int
  (** the level of coordinate [i] (classic coordinates: 0 = sub-lattice
      bottom, 1 = top); arbitrary bit patterns round up to the least
      covering level *)

  val level_name : Space.t -> int -> t -> string
  (** the level's name; classic coordinates print the qualifier name, with
      a [~] prefix when at the sub-lattice bottom *)

  val with_level : Space.t -> int -> int -> t -> t
  (** coordinate [i] set to exactly the given level *)

  val of_names_up : Space.t -> string list -> t
  (** annotation constants, built up from bottom by raising the listed
      coordinates: qualifier names become syntactically present (accepting
      the paper's [nonzero 37] style spelling), level names raise their
      coordinate to at least that level *)

  val of_names_bound : Space.t -> string list -> t
  (** assertion bounds, built down from top: a qualifier name pins its
      coordinate to the sub-lattice bottom (meet with [¬q]), a level name
      bounds its coordinate by that level *)

  val singleton_mask : Space.t -> int -> int
  (** the whole bit range of coordinate [i] — the smallest maskable unit
      (solver masks must never split a coordinate's range) *)

  val mask_of_names : Space.t -> string list -> int
  (** ranges of the named qualifiers (level names select their
      coordinate) *)

  val pp : Space.t -> t Fmt.t
  (** set notation: present classic qualifiers plus the level names of
      ordered coordinates above bottom *)

  val pp_full : Space.t -> t Fmt.t
  (** exhaustive: every coordinate; absent classic qualifiers marked ¬,
      ordered ones as [qual=level] *)

  val all : Space.t -> t list
  (** every element, for exhaustive tests on small spaces *)
end
