(** The qualifier lattice (Definition 2 of the paper): the product of one
    two-point lattice per qualifier in a fixed {e space}. Elements are
    bitsets (bit [i] set = qualifier [i] syntactically present); each
    coordinate's polarity is folded into the ordering, so for a positive
    qualifier absence <= presence and for a negative one presence <=
    absence ("moving up the lattice adds positive qualifiers or removes
    negative qualifiers", Figure 2). *)

exception Unknown_qualifier of string

(** A qualifier space: the ordered universe of qualifiers an analysis
    uses, fixed for the lifetime of the analysis. *)
module Space : sig
  type t

  val max_size : int
  (** maximum number of qualifiers per space (bitset representation) *)

  val create : Qualifier.t list -> t
  (** Raises [Invalid_argument] on duplicate names or too many
      qualifiers. *)

  val size : t -> int
  val qual : t -> int -> Qualifier.t
  val quals : t -> Qualifier.t list
  val find_opt : t -> string -> int option

  val find : t -> string -> int
  (** Raises {!Unknown_qualifier}. *)

  val mem : t -> string -> bool

  val pos_mask : t -> int
  (** bit mask of the positive qualifiers *)

  val neg_mask : t -> int
end

(** Elements of the product lattice, relative to a {!Space.t}. *)
module Elt : sig
  type t = int
  (** bit [i] set iff qualifier [i] is syntactically present *)

  val full_mask : Space.t -> int

  val is_full_mask : Space.t -> int -> bool
  (** does the mask cover every coordinate of the space? (full-mask
      [var <= var] edges are the ones eligible for cycle collapse) *)

  val bottom : Space.t -> t
  (** every positive qualifier absent, every negative present *)

  val top : Space.t -> t

  val equal : t -> t -> bool
  val compare : t -> t -> int

  val leq : Space.t -> t -> t -> bool
  (** the lattice order: coordinatewise, per polarity *)

  val leq_masked : Space.t -> mask:int -> t -> t -> bool
  (** comparison restricted to the coordinates selected by [mask] *)

  val join : Space.t -> t -> t -> t
  val meet : Space.t -> t -> t -> t

  val embed_bottom : Space.t -> mask:int -> t -> t
  (** the masked coordinates of the argument, bottom elsewhere — the
      neutral extension for joins, used by masked constraint propagation *)

  val embed_top : Space.t -> mask:int -> t -> t
  (** dual: neutral extension for meets *)

  val has : Space.t -> int -> t -> bool
  val has_name : Space.t -> string -> t -> bool
  val set : Space.t -> int -> t -> t
  val clear : Space.t -> int -> t -> t

  val not_ : Space.t -> int -> t
  (** the paper's [¬q]: top with coordinate [q] pinned to the {e bottom}
      of its two-point sub-lattice. Asserting [Q <= not_ q] means "must
      not have q" for positive [q] (e.g. ¬const = assignable) and "must
      have q" for negative [q] (e.g. must be nonzero). *)

  val not_name : Space.t -> string -> t

  val of_names_up : Space.t -> string list -> t
  (** annotation constants, built up from bottom by raising the listed
      coordinates (accepts the paper's [nonzero 37] style spelling) *)

  val of_names_bound : Space.t -> string list -> t
  (** assertion bounds, built down from top by pinning the listed
      coordinates to their bottoms (meet with [¬q]) *)

  val singleton_mask : Space.t -> int -> int
  val mask_of_names : Space.t -> string list -> int

  val pp : Space.t -> t Fmt.t
  (** set notation of the present qualifiers *)

  val pp_full : Space.t -> t Fmt.t
  (** exhaustive: every coordinate, absent ones marked ¬ *)

  val all : Space.t -> t list
  (** every element, for exhaustive tests on small spaces *)
end
