(** Type qualifiers (Definitions 1 and 2 of the paper).

    A qualifier names one coordinate of the qualifier lattice. The classic
    form is a two-point qualifier with a polarity: [q] is {e positive}
    when [tau <= q tau] for every standard type [tau] (e.g. [const]:
    adding it moves up the subtype order), and {e negative} when
    [q tau <= tau] (e.g. [nonzero]: removing it moves up).

    The general form — the paper's "user-defined partial order of
    qualifiers" — attaches an arbitrary finite (distributive) lattice of
    named {e levels} to the coordinate ({!Order}), e.g.
    [untainted <= maybe_tainted <= tainted]. *)

type polarity =
  | Positive  (** [tau <= q tau]; absence is the bottom of the 2-point lattice *)
  | Negative  (** [q tau <= tau]; presence is the bottom of the 2-point lattice *)

(** A validated finite {e distributive} lattice of named levels, with its
    Birkhoff (join-irreducible upset) bit encoding precomputed. Join is
    bitwise OR of encodings, meet is AND, and the order is subset — exact
    precisely because the lattice is distributive; non-distributive
    lattices (M3, N5) are rejected at construction. *)
module Order : sig
  type t

  val of_levels :
    levels:string list -> order:(string * string) list -> (t, string) result
  (** [of_levels ~levels ~order] builds a lattice from level names and
      [a <= b] pairs. The relation is closed reflexively and transitively;
      validation rejects duplicate/empty/unknown names, cycles
      (antisymmetry), missing or non-unique pairwise lub/glb (lattice-ness)
      and non-distributivity, each with a diagnostic naming the offending
      levels. *)

  val chain : string list -> (t, string) result
  (** a total order, bottom first *)

  val chain_exn : string list -> t
  (** {!chain}, raising [Invalid_argument] — for statically known chains *)

  val size : t -> int
  (** number of levels *)

  val bits : t -> int
  (** number of join-irreducible levels = bits of the encoding *)

  val level_names : t -> string array
  val level_name : t -> int -> string
  val find_level : t -> string -> int option
  val bottom : t -> int
  val top : t -> int
  val leq : t -> int -> int -> bool
  val join : t -> int -> int -> int
  val meet : t -> int -> int -> int

  val irreducibles : t -> int array
  (** the join-irreducible level ids, in ascending id order; bit [k] of an
      encoding corresponds to [.(k)] *)

  val encode : t -> int -> int
  (** the upset encoding of a level: bit [k] set iff irreducible [k] is
      below it *)

  val decode : t -> int -> int
  (** least level whose encoding contains every set bit (exact on masks
      produced by the lattice operations) *)

  val covers : t -> (int * int) list
  (** the Hasse diagram: [a < b] with nothing strictly between *)

  val pp : t Fmt.t
  (** the covers, e.g. "untainted < maybe_tainted, maybe_tainted < tainted" *)
end

type t = {
  name : string;  (** source-level name, unique within a space *)
  polarity : polarity;
  order : Order.t option;
      (** [None]: the classic two-point lattice given by [polarity];
          [Some o]: a user-defined lattice of named levels *)
}

val make : ?polarity:polarity -> string -> t
(** [make name] is a classic two-point qualifier (positive by default).
    Raises [Invalid_argument] on an empty name. *)

val positive : string -> t
val negative : string -> t

val ordered : string -> Order.t -> t
(** a qualifier carrying a user-defined lattice of levels *)

val name : t -> string
val polarity : t -> polarity
val order : t -> Order.t option
val is_positive : t -> bool
val is_negative : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : t Fmt.t
(** prints the bare name *)

val pp_full : t Fmt.t
(** prints the name with a +/- polarity marker (classic) or a level count
    (ordered) *)

(** Parser for CQual-style lattice configuration files (see the README for
    the grammar):

    {v
    # three-level taint
    qualifier taint {
      levels untainted maybe_tainted tainted
      order untainted < maybe_tainted < tainted
    }
    qualifier const            # classic positive two-point
    qualifier nonzero negative
    v} *)
module Config : sig
  val parse : string -> (t list, string) result
  (** parse a config file's contents; errors carry the line number *)
end

(** {1 The qualifiers used in the paper and this reproduction} *)

val const : t
(** ANSI C [const] (Sections 2.4, 4). Positive. *)

val dynamic : t
(** binding-time [dynamic] (Section 1); [static] is its absence. Positive. *)

val nonzero : t
(** an integer known not to be zero (Figure 2). Negative. *)

val nonnull : t
(** lclint-style non-null pointer (Section 1). Negative. *)

val sorted : t
(** a list known to be sorted (Section 2.3). Negative. *)

val tainted : t
(** security taint (cf. the information-flow systems of Section 5).
    Positive. *)
