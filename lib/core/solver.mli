(** Atomic qualifier-constraint solver (Sections 3.1–3.2 of the paper).

    After subtype constraints on qualified types are decomposed
    structurally, qualifier inference is left with atomic constraints over
    the qualifier lattice: [kappa <= L], [L <= kappa], [kappa1 <= kappa2]
    and ground [L1 <= L2]. This is the atomic subtyping system that is
    solvable in linear time for a fixed set of qualifiers (Henglein–Rehof,
    cited in Section 3.1); the solver computes least and greatest
    solutions by worklist join/meet propagation.

    Constraints may be {e masked} to a subset of lattice coordinates,
    expressing per-qualifier side conditions (e.g. binding-time's "nothing
    dynamic inside a static value") without coupling the other qualifiers.

    Constrained type schemes (Section 3.2) are supported by {!recording}
    the atoms generated while inferring a binding and {!instantiate}-ing
    them later under a fresh renaming of the scheme-local variables.

    The implementation is a {e flat arena}: variable state lives in dense
    int columns indexed by creation-order id, adjacency is a linked edge
    arena, dedup tables are open-addressing int-keyed hash sets and the
    propagation worklist is an int ring buffer (see DESIGN.md,
    "Flat-arena solver"). {!Solver_ref} is the pre-arena records +
    [Hashtbl] implementation, kept as the ablation baseline; both expose
    this same interface and are byte-for-byte observationally
    equivalent (property-tested). *)

module Elt = Lattice.Elt
module Space = Lattice.Space

type reason = string option
(** human-readable provenance attached to constraints, used in error
    explanations *)

type var
(** a qualifier variable (the paper's kappa) *)

(** a recorded constraint *)
type atom =
  | Avc of var * Elt.t * int * reason  (** var <= const, on a mask *)
  | Acv of Elt.t * var * int * reason  (** const <= var, on a mask *)
  | Avv of var * var * int * reason  (** var <= var, on a mask *)

type error

type t
(** a constraint store over one qualifier space *)

val create : ?cycle_elim:bool -> Space.t -> t
(** [cycle_elim] (default [true]) enables online cycle elimination:
    whenever a full-mask [var <= var] edge closes a cycle, the whole
    strongly-connected component is unified into one union-find
    representative. Disable it to get the plain worklist solver (the
    ablation baseline). *)

val space : t -> Space.t

val num_vars : t -> int
(** number of variables created so far (also a size proxy) *)

val set_budget : t -> Budget.t option -> unit
(** Attach (or detach) a resource budget. Variable creation counts toward
    [max_vars]; every worklist pop counts toward [max_pops] and polls the
    deadline. Once the budget trips, propagation stops early and the
    least/greatest solutions may be {e partial} — callers must check
    {!Budget.exhausted} and report results from a tripped store as
    degraded rather than trusting classifications. *)

val fresh : ?name:string -> t -> var

val var_id : var -> int
(** stable creation-order id; unaffected by unification. Unique within one
    store only — use {!var_uid} when variables of two stores can mix. *)

val var_uid : var -> int
(** globally unique id (across stores); stable under unification *)

val var_name : var -> string

val repr : var -> var
(** the variable's current union-find representative (itself unless a
    cycle collapse merged it); solution queries resolve this internally *)

val pp_var : var Fmt.t

(** {1 Adding constraints}

    All take an optional [mask] restricting the affected coordinates
    (default: all) and an optional human-readable [reason]. Edges and
    constant bounds are deduplicated on insertion (per representative), so
    repeated scheme instantiations against the same variables stop growing
    edge and provenance lists. *)

val add_leq_vc : ?reason:string -> ?mask:int -> t -> var -> Elt.t -> unit
val add_leq_cv : ?reason:string -> ?mask:int -> t -> Elt.t -> var -> unit
val add_leq_vv : ?reason:string -> ?mask:int -> t -> var -> var -> unit

val add_leq_cc : ?reason:string -> ?mask:int -> t -> Elt.t -> Elt.t -> unit
(** ground constraint, checked immediately; a violation is reported by
    the next {!solve} *)

val add_eq_vv : ?reason:string -> ?mask:int -> t -> var -> var -> unit

val add_eq_vc : ?reason:string -> ?mask:int -> t -> var -> Elt.t -> unit
(** pin a variable to exactly a constant (used by annotations, whose rule
    types the result as exactly [l tau]) *)

(** {1 Solving} *)

val solve : t -> (unit, error list) result
(** compute the least and greatest solutions; [Ok] iff satisfiable.
    Solving is idempotent and re-runs automatically after new constraints
    are added. Re-solving is {e incremental}: the worklists seed from the
    variables whose bounds or edges changed since the last solve, and
    [lo]/[hi] are updated monotonically. *)

val solve_from_scratch : t -> (unit, error list) result
(** reset every representative to its constant bounds and solve the whole
    system; same fixpoint as {!solve} (it is unique), kept as the
    incremental-solving ablation baseline *)

val last_errors : t -> error list
(** the errors known from solving so far, without forcing a re-solve:
    ground violations plus every bound violation detected by past
    {!solve}s (violations are monotone — constraints are only ever added —
    so this is also the error set of the current system whenever the store
    is solved). Lets callers of {!least}/{!greatest}/{!classify} tell
    whether the values they read come from an unsatisfiable system. *)

val explain_var : t -> var -> string option
(** after a {!solve}: why this variable's least solution violates its
    upper bound — the same bound-violation walk (offending coordinate,
    then backwards to the constant bound that forced it) that builds
    {!last_errors} messages, run on demand for one variable. [None] when
    the variable is within bounds. The query surface the store-resident
    daemon serves "explain this violation path" from, without rescanning
    the whole error set. *)

val least : t -> var -> Elt.t
val greatest : t -> var -> Elt.t

(** classification of one coordinate of a variable (Section 4.4) *)
type verdict =
  | Forced_up  (** the least solution has it: e.g. "must be const" *)
  | Forced_down  (** the greatest lacks it: "must not be const" *)
  | Free  (** could be either *)

val classify : t -> var -> int -> verdict
val classify_name : t -> var -> string -> verdict
val pp_verdict : verdict Fmt.t

val error_message : error -> string
val pp_error : error Fmt.t

(** {1 Recording and schemes (Section 3.2)} *)

val recording : t -> (unit -> 'a) -> 'a * atom list
(** run the function, capturing every atom added during its execution
    (including atoms emitted by nested instantiations); recorders nest *)

type scheme
(** a constrained type scheme [forall kappas. C]: a set of local variables
    (both the generalized interface variables and the existentially bound
    internals) together with the captured atoms *)

val make_scheme : locals:var list -> atoms:atom list -> scheme
val scheme_locals : scheme -> var list
val scheme_atoms : scheme -> atom list

val scheme_id : scheme -> int
(** unique identity of this scheme value (globally unique, assigned at
    {!make_scheme}); instantiation-memo keys hang off it *)

val scheme_size : scheme -> int
(** number of atoms *)

val instantiate : ?bind:(var -> var option) -> t -> scheme -> var -> var
(** Re-emit the scheme's constraints under a fresh renaming of all its
    locals (so instances cannot interfere — the existential binding of
    Section 3.2); returns the renaming, the identity on non-locals.

    [?bind] resolves a scheme variable (local or free) to an existing
    variable of [t] instead of freshening it. The parallel analysis uses
    it to instantiate a scheme recorded in another store: scheme-local
    variables still freshen, but the scheme's free variables — which name
    the {e other} store's globals — are redirected to this store's mirrors
    rather than used as-is. *)

(** {1 Batched constraint merge (parallel map-reduce)} *)

type batch
(** the complete ordered content of a store: every variable in creation
    order, every atom in insertion order *)

val export : t -> batch

val batch_vars : batch -> int
val batch_atoms : batch -> int

val batch_content : batch -> var array * atom array
(** the batch's variables (creation order) and atoms (insertion order),
    as stored — do not mutate. Used by the parity harnesses to replay an
    exported constraint stream through an independent store. *)

val absorb : t -> ?bind:(var -> var option) -> batch -> var -> var option
(** Replay a batch (typically exported from a worker's private store) into
    [t]: batch variables resolved by [?bind] map to existing variables of
    [t] (the worker's mirrors of shared globals) and are {e not}
    re-created; every other batch variable is created fresh in the batch's
    creation order; then every atom is re-added through the normal
    [add_leq_*] entry points, so edge/bound dedup and online cycle
    elimination apply exactly as if the constraints had been generated
    serially. Returns the realized renaming ([None] for batch variables
    the batch did not contain).

    This is the splice-fast path: because {!export} cuts the variable
    segment straight out of the source arena, a batch variable's creation
    id is its index in the segment, and the renaming is a flat array
    lookup instead of a uid-keyed hash table. Semantics are identical to
    {!absorb_replay}. *)

val absorb_replay :
  t -> ?bind:(var -> var option) -> batch -> var -> var option
(** The pre-splice merge: same contract as {!absorb}, renaming through a
    uid-keyed hash table. Kept as the independent parity oracle the
    property tests compare the fast path against. *)

val batch_skippable : bind:(var -> var option) -> batch -> bool
(** [true] iff absorbing the batch would be a literal no-op: it carries no
    atoms and every variable is already resolved by [bind] (so no fresh
    variables would be created). The parallel merge skips such batches
    (common for leaf-function tasks) without perturbing variable-creation
    parity with a serial run. *)

val simplify_scheme : t -> interface:var list -> scheme -> scheme
(** Simplify a scheme (a basic answer to the open problem of Section 6):
    duplicate and vacuous atoms are dropped, and existentially bound
    internal variables are eliminated by exact pairwise composition when
    that does not grow the system. The projection of the solution set
    onto [interface] and the scheme's free variables is preserved
    (property-tested). Variables carrying masked atoms are kept
    conservatively. *)

val compact : ?count:bool -> t -> interface:var list -> scheme -> scheme
(** Compact a scheme by exact projection onto its observable variables:
    the [interface] list (qualifier variables reachable from the
    generalized qualified type) plus every free variable. Collapses and
    shortcuts through purely internal variables (composing masked atoms
    exactly), drops unconstrained/unreachable internals and duplicate or
    vacuous atoms. Observational equivalence, not a heuristic:
    instantiating the compacted scheme produces the same least/greatest
    solutions on interface and free variables and the same bound
    violations as the original. Internals whose constant bounds are
    inconsistent are kept, preserving error reports. Deterministic:
    output order depends only on the input scheme, never on store state.
    Accumulates the [scheme_vars_*]/[scheme_edges_*] counters of
    {!stats} unless [count] is [false] — derived compactions (e.g.
    re-projecting a multi-member SCC scheme onto one member's interface)
    pass [~count:false] so the counters keep describing the primary
    generalizations. *)

val atoms_never_violate :
  Space.t -> locals:var list -> exposed:var list -> atom list -> bool
(** [true] iff the atom list alone can never produce a bound violation in
    an instance, under the most pessimistic assumption about external
    inflow: free variables and [exposed] locals (interface variables,
    which receive call-site constraints not part of the scheme) are pinned
    to top, least solutions propagate over the scheme's edges, and every
    local must still satisfy its constant upper bounds. Licenses sharing
    one instantiation between call sites (the memoized copy can never
    under-report errors, because it can produce none). *)

val pp_atom : Space.t -> atom Fmt.t

(** {1 Baseline (ablation)} *)

val solve_least : t -> unit
(** worklist least-solution pass only (used by benchmarks) *)

val solve_least_naive : t -> unit
(** round-robin iteration baseline; computes the same least solution *)

val solve_atoms : Space.t -> atom list -> int -> Lattice.Elt.t * Lattice.Elt.t
(** least/greatest solutions of a bare atom list, computed locally without
    touching any store (unmentioned variables default to (bottom, top));
    used to summarize schemes in isolation *)

val naive_bounds : t -> int -> Lattice.Elt.t * Lattice.Elt.t
(** replay the store's full constraint log through {!solve_atoms}: an
    independent oracle for the optimized solver, keyed by original
    (stable) {!var_id}s; used by the equivalence property tests *)

(** {1 Statistics} *)

(** counters accumulated over the store's lifetime *)
type stats = {
  vars_created : int;
  vars_unified : int;  (** absorbed into another representative *)
  edges_added : int;
  edges_deduped : int;  (** duplicate insertions skipped *)
  cycles_collapsed : int;  (** cycles detected and unified online *)
  incr_solves : int;  (** incremental {!solve} runs *)
  full_solves : int;  (** {!solve_from_scratch} runs *)
  worklist_pops : int;  (** total propagation steps across all solves *)
  solve_s : float;  (** wall seconds inside {!solve}/{!solve_from_scratch} *)
  absorb_s : float;  (** wall seconds inside {!absorb} *)
  congen_s : float;
      (** wall seconds generating constraints (body traversal), excluding
          the nested instantiate time; noted by the client *)
  generalize_s : float;  (** wall seconds generalizing schemes *)
  compact_s : float;  (** wall seconds inside {!compact} *)
  instantiate_s : float;  (** wall seconds inside {!instantiate} *)
  report_s : float;
      (** wall seconds measuring/classifying results, excluding the nested
          solve time; noted by the client *)
  scheme_vars_before : int;
      (** scheme locals entering {!compact}, summed over all compactions *)
  scheme_vars_after : int;  (** scheme locals surviving {!compact} *)
  scheme_edges_before : int;  (** constraint atoms entering {!compact} *)
  scheme_edges_after : int;  (** constraint atoms surviving {!compact} *)
  instantiations_memo_hits : int;
      (** instantiations served from the per-scope memo table or the
          flat-signature summary fast path *)
  memo_candidates : int;
      (** calls to polymorphic callees that consulted memo eligibility *)
  memo_reject_nonflat_ret : int;
      (** candidates rejected because the callee's return type is not flat
          (using the result emits structural constraints) *)
  memo_reject_may_violate : int;
      (** candidates rejected because the scheme's atoms could produce a
          bound violation on their own ({!atoms_never_violate} said no) *)
  memo_misses : int;
      (** eligible candidates whose key was not yet in the session memo
          (each miss performed a real instantiation) *)
  empty_batches_skipped : int;
      (** worker batches whose absorb was skipped as a no-op *)
  heap_words : int;
      (** live major-heap words at sampling time ([Gc.quick_stat]) *)
  top_heap_words : int;  (** peak major-heap size over the process life *)
  cores_available : int;  (** [Domain.recommended_domain_count] *)
}

val stats : t -> stats
val pp_stats : stats Fmt.t

val note_memo_hit : t -> unit
(** count one memoized instantiation (the memo table lives in the client) *)

val note_memo_candidate : t -> unit
(** count one call that consulted instantiation-memo eligibility *)

val note_memo_reject_nonflat_ret : t -> unit
(** count one candidate rejected for a non-flat return type *)

val note_memo_reject_may_violate : t -> unit
(** count one candidate rejected because its scheme atoms may violate *)

val note_memo_miss : t -> unit
(** count one eligible candidate that still had to instantiate *)

val note_skipped_batch : t -> unit
(** count one skipped empty batch *)

type phase = Congen | Generalize | Compact | Instantiate | Report

val note_phase : t -> phase -> float -> unit
(** credit [dt] wall seconds to a phase column. [Compact] and
    [Instantiate] are credited internally by {!compact}/{!instantiate};
    the analysis client notes the other phases around its own windows. *)

val phase_seconds : t -> phase -> float
(** current accumulated seconds of a phase — lets a client time an
    enclosing window and subtract the nested phases for disjoint columns *)

val merge_aux_stats : t -> stats -> unit
(** fold the compaction/memo counters and per-phase times of a worker
    store's stats into this store, so parallel runs report totals (phase
    times sum CPU seconds across domains); the structural counters (vars,
    edges, solve times) are not touched — they flow through {!absorb} *)

val pp_scheme : Space.t -> scheme Fmt.t
(** render a constrained scheme (Section 6's presentation concern);
    combine with {!simplify_scheme} for readable output *)
