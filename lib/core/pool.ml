(** Fixed-size domain pool: see the interface for semantics. *)

type task = unit -> unit

type t = {
  jobs : int;
  m : Mutex.t;
  work : Condition.t;  (* signalled when a task is queued or on shutdown *)
  idle : Condition.t;  (* broadcast when [pending] drops to zero *)
  q : task Queue.t;
  mutable pending : int;  (* tasks queued or running *)
  mutable stop : bool;
  mutable funnel : (exn * Printexc.raw_backtrace) option;
      (* first exception raised by any task; re-raised by [wait] *)
  mutable domains : unit Domain.t list;
}

let jobs t = t.jobs

let cores_available () = Domain.recommended_domain_count ()

let default_jobs () =
  match Sys.getenv_opt "TYPEQUAL_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)
  | None -> 1

let funnel_exn t e bt =
  Mutex.lock t.m;
  if t.funnel = None then t.funnel <- Some (e, bt);
  Mutex.unlock t.m

let run_task t task =
  match task () with
  | () -> ()
  | exception ((Out_of_memory | Sys.Break) as e) ->
      (* never swallow resource exhaustion or interrupts entirely, but the
         worker domain must not die either: funnel, then keep serving *)
      funnel_exn t e (Printexc.get_raw_backtrace ())
  | exception e -> funnel_exn t e (Printexc.get_raw_backtrace ())

let worker t () =
  Mutex.lock t.m;
  let rec loop () =
    match Queue.take_opt t.q with
    | Some task ->
        Mutex.unlock t.m;
        run_task t task;
        Mutex.lock t.m;
        t.pending <- t.pending - 1;
        if t.pending = 0 then Condition.broadcast t.idle;
        loop ()
    | None ->
        if t.stop then Mutex.unlock t.m
        else begin
          Condition.wait t.work t.m;
          loop ()
        end
  in
  loop ()

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      m = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      q = Queue.create ();
      pending = 0;
      stop = false;
      funnel = None;
      domains = [];
    }
  in
  if jobs > 1 then
    t.domains <- List.init jobs (fun _ -> Domain.spawn (worker t));
  t

let submit t task =
  if t.jobs <= 1 then begin
    (* serial pool: run inline, in submission order — the exact code path
       a worker would take, minus the queue *)
    t.pending <- t.pending + 1;
    run_task t task;
    t.pending <- t.pending - 1
  end
  else begin
    Mutex.lock t.m;
    if t.stop then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    t.pending <- t.pending + 1;
    Queue.push task t.q;
    Condition.signal t.work;
    Mutex.unlock t.m
  end

let wait t =
  if t.jobs > 1 then begin
    Mutex.lock t.m;
    while t.pending > 0 do
      Condition.wait t.idle t.m
    done;
    Mutex.unlock t.m
  end;
  (* drain semantics: every task ran (each failure degraded locally);
     [wait] then reports the first funneled failure to the caller *)
  Mutex.lock t.m;
  let f = t.funnel in
  t.funnel <- None;
  Mutex.unlock t.m;
  match f with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
