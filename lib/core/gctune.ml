(** Garbage-collector tuning for batch analysis runs.

    The analyzer's allocation profile is bursty: constraint generation
    allocates short-lived cells, tuples and closure records at a high
    rate (nearly all dead by the next statement), while the arena columns
    are long-lived flat arrays the GC never needs to walk. The stock
    runtime defaults (256 kwords of minor heap, space_overhead 120) make
    the minor collector run thousands of times per megaline and promote
    live-at-the-wrong-moment temporaries into the major heap, where
    compaction churn pays for them again.

    The [Batch] profile numbers come from a sweep on the 400-kloc
    project corpus (see EXPERIMENTS.md). The surprise: enlarging the
    minor heap does NOT pay — 4 Mwords and up measurably regressed
    serial analysis (a 32 Mword nursery is a 256 MB working set, which
    evicts the arena columns from cache), and 64 Mwords was 6x slower.
    What held up: [space_overhead = 200] (fewer major slices, neutral
    peak heap because the arena dominates it anyway) and a modest
    4x-default nursery of 1 Mword, which cuts minor-collection count
    for worker domains at [jobs > 1] while staying cache-resident.

    Selection: an explicit [--gc] CLI flag wins; otherwise the
    [TYPEQUAL_GC] environment variable; otherwise [Off] (don't touch the
    runtime). Settings:
    - ["off"] (or empty): leave the runtime alone;
    - ["batch"]: the tuned batch profile;
    - a comma-separated [k=v] list, e.g.
      ["minor_heap_size=8388608,space_overhead=200"], for experiments —
      unknown keys are an [Error], not silently ignored. *)

type t =
  | Off
  | Batch
  | Custom of (string * int) list

let batch_minor_words = 1024 * 1024
let batch_space_overhead = 200

let known_keys =
  [ "minor_heap_size"; "major_heap_increment"; "space_overhead";
    "max_overhead"; "allocation_policy" ]

let parse (s : string) : (t, string) result =
  match String.lowercase_ascii (String.trim s) with
  | "" | "off" | "default" -> Ok Off
  | "batch" -> Ok Batch
  | spec -> (
      let parts = String.split_on_char ',' spec in
      let rec go acc = function
        | [] -> Ok (Custom (List.rev acc))
        | p :: tl -> (
            match String.index_opt p '=' with
            | None -> Error (Printf.sprintf "gc setting %S is not k=v" p)
            | Some i -> (
                let k = String.trim (String.sub p 0 i) in
                let v =
                  String.trim
                    (String.sub p (i + 1) (String.length p - i - 1))
                in
                if not (List.mem k known_keys) then
                  Error
                    (Printf.sprintf "unknown gc key %S (known: %s)" k
                       (String.concat ", " known_keys))
                else
                  match int_of_string_opt v with
                  | None -> Error (Printf.sprintf "gc value %S not an int" v)
                  | Some n -> go ((k, n) :: acc) tl))
      in
      go [] parts)

let apply (t : t) : unit =
  match t with
  | Off -> ()
  | Batch ->
      Gc.set
        {
          (Gc.get ()) with
          minor_heap_size = batch_minor_words;
          space_overhead = batch_space_overhead;
        }
  | Custom kvs ->
      let c = Gc.get () in
      let c =
        List.fold_left
          (fun c (k, v) ->
            match k with
            | "minor_heap_size" -> { c with Gc.minor_heap_size = v }
            | "major_heap_increment" -> { c with Gc.major_heap_increment = v }
            | "space_overhead" -> { c with Gc.space_overhead = v }
            | "max_overhead" -> { c with Gc.max_overhead = v }
            | "allocation_policy" -> { c with Gc.allocation_policy = v }
            | _ -> c (* unreachable: [parse] rejected it *))
          c kvs
      in
      Gc.set c

(** Resolve and apply the setting: [flag] (when [Some] and non-empty)
    wins over [TYPEQUAL_GC]; absent both, the runtime is left alone.
    Returns the human-readable description of what was applied, or
    [Error] on a malformed spec (the caller decides whether that is
    fatal). *)
let setup ?flag () : (string, string) result =
  let spec =
    match flag with
    | Some f when String.trim f <> "" -> Some f
    | _ -> Sys.getenv_opt "TYPEQUAL_GC"
  in
  match spec with
  | None -> Ok "off"
  | Some s -> (
      match parse s with
      | Error _ as e -> e
      | Ok t ->
          apply t;
          Ok
            (match t with
            | Off -> "off"
            | Batch ->
                Printf.sprintf "batch (minor_heap_size=%d, space_overhead=%d)"
                  batch_minor_words batch_space_overhead
            | Custom kvs ->
                String.concat ","
                  (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) kvs)))
