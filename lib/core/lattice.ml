(** The qualifier lattice (Definition 2 of the paper), generalized to
    arbitrary finite (distributive) lattices per coordinate.

    The lattice [L] is the product [Lq1 * ... * Lqn] over a fixed,
    user-chosen set of qualifiers — a {e space}. Each coordinate is either
    the classic two-point lattice of a polarized qualifier or a
    user-defined lattice of named levels ({!Qualifier.Order}).

    Elements are machine ints under the {e upset (Birkhoff) encoding}:
    each coordinate owns a contiguous range of bits, one per
    join-irreducible level of its lattice, and an element stores, per
    coordinate, the set of join-irreducibles below its level. This makes
    the product order bitwise subset, meet bitwise AND and join bitwise
    OR — single machine operations regardless of the lattices involved —
    with bottom = 0 and top = all range bits set.

    Two-point qualifiers are the 1-bit special case. For a {e positive}
    qualifier the single irreducible is "present", so bit set =
    syntactically present, exactly the historical representation. For a
    {e negative} qualifier the irreducible is "absent" (presence is the
    coordinate's bottom), so the bit sense is inverted; the presence
    accessors ({!Elt.has}/[set]/[clear]) are polarity-aware so callers
    still speak in terms of syntactic presence. *)

exception Unknown_qualifier of string

type space_error = { code : string; message : string }
(** structured construction diagnostic; [code] is stable (L0xx) *)

exception Space_error of space_error

let pp_space_error ppf e = Fmt.pf ppf "%s: %s" e.code e.message

let space_error code fmt =
  Fmt.kstr (fun message -> raise (Space_error { code; message })) fmt

(** A qualifier space: the (ordered) universe of qualifiers an analysis
    uses. Spaces are small (total encoding width at most
    {!Space.max_bits}) and fixed for the lifetime of an analysis. *)
module Space = struct
  type coord = {
    c_qual : Qualifier.t;
    c_order : Qualifier.Order.t option;  (* None = classic two-point *)
    c_shift : int;  (* first bit of this coordinate's range *)
    c_width : int;  (* number of join-irreducibles (1 for classic) *)
    c_mask : int;  (* the whole contiguous bit range *)
  }

  type t = {
    coords : coord array;
    index : (string, int) Hashtbl.t;  (* qualifier name -> coordinate *)
    level_index : (string, int * int) Hashtbl.t;
        (* level name -> (coordinate, level id), for annotation resolution *)
    full : int;  (* every coordinate's range: the encoding of top *)
  }

  (* An OCaml int has 63 bits; 62 leaves the masks non-negative, so the
     historical [1 lsl size] idiom can never silently overflow. *)
  let max_bits = 62

  (* Historical alias (spaces used to be limited by qualifier count, which
     for all-two-point spaces equals the bit width). *)
  let max_size = max_bits

  let create quals =
    let quals = Array.of_list quals in
    let index = Hashtbl.create 16 in
    let level_index = Hashtbl.create 16 in
    (* validate names and the total width before computing any mask *)
    let total =
      Array.fold_left
        (fun acc q ->
          let name = Qualifier.name q in
          if Hashtbl.mem index name || Hashtbl.mem level_index name then
            space_error "L001" "Lattice.Space.create: duplicate name %S" name;
          Hashtbl.add index name (Hashtbl.length index);
          (match Qualifier.order q with
          | None -> ()
          | Some o ->
              Array.iteri
                (fun l ln ->
                  if Hashtbl.mem index ln || Hashtbl.mem level_index ln then
                    space_error "L001"
                      "Lattice.Space.create: level %S of qualifier %S \
                       duplicates another qualifier or level name"
                      ln name;
                  Hashtbl.add level_index ln (Hashtbl.find index name, l))
                (Qualifier.Order.level_names o));
          acc + (match Qualifier.order q with
                | None -> 1
                | Some o -> Qualifier.Order.bits o))
        0 quals
    in
    if total > max_bits then
      space_error "L002"
        "Lattice.Space.create: total bit width %d exceeds %d (the machine-int \
         fast path); use fewer qualifiers or lattices with fewer \
         join-irreducible levels"
        total max_bits;
    let shift = ref 0 in
    let coords =
      Array.map
        (fun q ->
          let o = Qualifier.order q in
          let width =
            match o with None -> 1 | Some o -> Qualifier.Order.bits o
          in
          let c =
            {
              c_qual = q;
              c_order = o;
              c_shift = !shift;
              c_width = width;
              c_mask = ((1 lsl width) - 1) lsl !shift;
            }
          in
          shift := !shift + width;
          c)
        quals
    in
    { coords; index; level_index; full = (if total = 0 then 0 else ((1 lsl total) - 1)) }

  let size sp = Array.length sp.coords
  let qual sp i = sp.coords.(i).c_qual
  let quals sp = Array.to_list (Array.map (fun c -> c.c_qual) sp.coords)

  let find_opt sp name = Hashtbl.find_opt sp.index name

  let find sp name =
    match find_opt sp name with
    | Some i -> i
    | None -> raise (Unknown_qualifier name)

  let mem sp name = Hashtbl.mem sp.index name

  let order sp i = sp.coords.(i).c_order
  let width sp i = sp.coords.(i).c_width
  let shift sp i = sp.coords.(i).c_shift
  let total_bits sp = Array.fold_left (fun a c -> a + c.c_width) 0 sp.coords

  let resolve sp name =
    match Hashtbl.find_opt sp.index name with
    | Some i -> Some (`Qual i)
    | None ->
        Option.map
          (fun (i, l) -> `Level (i, l))
          (Hashtbl.find_opt sp.level_index name)

  (* Debug dump of the active space: qualifiers, levels, order, bit
     layout (the --dump-lattice output). *)
  let pp_dump ppf sp =
    Fmt.pf ppf "qualifier space: %d coordinate%s, %d bit%s (max %d)@."
      (size sp)
      (if size sp = 1 then "" else "s")
      (total_bits sp)
      (if total_bits sp = 1 then "" else "s")
      max_bits;
    Array.iteri
      (fun i c ->
        let bits =
          if c.c_width = 1 then Fmt.str "bit %d" c.c_shift
          else Fmt.str "bits %d..%d" c.c_shift (c.c_shift + c.c_width - 1)
        in
        match c.c_order with
        | None ->
            Fmt.pf ppf "  [%d] %s: two-point %s (%s), %s@." i
              (Qualifier.name c.c_qual)
              (if Qualifier.is_positive c.c_qual then "positive" else "negative")
              (if Qualifier.is_positive c.c_qual then
                 Fmt.str "absent < %s" (Qualifier.name c.c_qual)
               else Fmt.str "%s < absent" (Qualifier.name c.c_qual))
              bits
        | Some o ->
            Fmt.pf ppf "  [%d] %s: %d levels, %s (%d join-irreducible)@." i
              (Qualifier.name c.c_qual)
              (Qualifier.Order.size o)
              bits (Qualifier.Order.bits o);
            Fmt.pf ppf "      order: %a@." Qualifier.Order.pp o;
            Fmt.pf ppf "      encoding:";
            Array.iteri
              (fun l ln ->
                let e = Qualifier.Order.encode o l in
                let s =
                  String.init c.c_width (fun k ->
                      if e land (1 lsl (c.c_width - 1 - k)) <> 0 then '1'
                      else '0')
                in
                ignore ln;
                Fmt.pf ppf " %s=%s" (Qualifier.Order.level_name o l) s)
              (Qualifier.Order.level_names o);
            Fmt.pf ppf "@.")
      sp.coords
end

(** Elements of the product lattice [L], relative to a {!Space.t}. *)
module Elt = struct
  type t = int
  (** Upset encoding: per coordinate, the set of join-irreducible levels
      below the coordinate's level. For a classic positive qualifier the
      single bit means "syntactically present"; for a classic negative one
      it means "syntactically absent" (presence is the coordinate's
      bottom). Use {!has}/{!set}/{!clear} to speak in terms of syntactic
      presence without caring about the encoding. *)

  let full_mask sp = sp.Space.full

  (* Does [mask] cover every coordinate of the space? Full-mask relations
     equate variables when they form a cycle; masked ones never do. *)
  let is_full_mask sp mask =
    let full = full_mask sp in
    mask land full = full

  (* Bottom of L: every coordinate at its lattice bottom — no
     join-irreducibles below it, i.e. no bits. *)
  let bottom _sp = 0

  (* Top of L: every join-irreducible of every coordinate. *)
  let top sp = sp.Space.full

  let equal (a : t) (b : t) = a = b
  let compare (a : t) (b : t) = compare a b

  (* a <= b iff a's irreducibles are a subset of b's: x = join of the
     irreducibles below it, so subset inclusion is exactly the product
     order. *)
  let leq _sp a b = a land lnot b = 0

  (* Restricted comparison: only the coordinates selected by [mask] are
     compared. Used by masked (per-coordinate) constraints. [mask] must be
     a union of whole coordinate ranges ({!singleton_mask}/
     {!mask_of_names}); a partial range would split a coordinate's lattice,
     which is meaningless. *)
  let leq_masked _sp ~mask a b = a land mask land lnot b = 0

  let join _sp a b = a lor b
  let meet _sp a b = a land b

  (* [embed_bottom sp mask x]: x on the [mask] coordinates, bottom
     elsewhere — the neutral extension for joins. *)
  let embed_bottom _sp ~mask x = x land mask

  (* [embed_top sp mask x]: x on the [mask] coordinates, top elsewhere —
     the neutral extension for meets. *)
  let embed_top sp ~mask x = (x land mask) lor (top sp land lnot mask)

  let coord sp i = sp.Space.coords.(i)

  (* Syntactic presence of qualifier [i], polarity-aware for classic
     coordinates: a negative qualifier is present exactly when its
     coordinate is at the sub-lattice bottom (bit clear). An ordered
     coordinate counts as "present" when above its bottom. *)
  let has sp i (x : t) =
    let c = coord sp i in
    match c.Space.c_order with
    | None ->
        if Qualifier.is_positive c.Space.c_qual then x land c.Space.c_mask <> 0
        else x land c.Space.c_mask = 0
    | Some _ -> x land c.Space.c_mask <> 0

  let has_name sp name x = has sp (Space.find sp name) x

  (* Make qualifier [i] syntactically present (classic) / raise an ordered
     coordinate to its top. *)
  let set sp i (x : t) =
    let c = coord sp i in
    match c.Space.c_order with
    | None ->
        if Qualifier.is_positive c.Space.c_qual then x lor c.Space.c_mask
        else x land lnot c.Space.c_mask
    | Some _ -> x lor c.Space.c_mask

  (* Make qualifier [i] syntactically absent (classic) / drop an ordered
     coordinate to its bottom. *)
  let clear sp i (x : t) =
    let c = coord sp i in
    match c.Space.c_order with
    | None ->
        if Qualifier.is_positive c.Space.c_qual then x land lnot c.Space.c_mask
        else x lor c.Space.c_mask
    | Some _ -> x land lnot c.Space.c_mask

  (* not_ sp i: the paper's [¬qi] — top of L with coordinate i replaced by
     the *bottom* of its sub-lattice. Asserting [Q <= not_ q] pins
     coordinate q to its bottom and leaves the rest unconstrained: for
     positive q this means "must not have q" (e.g. ¬const = assignable);
     for negative q it means "must have q" (e.g. ¬?nonzero = nonzero).
     Uniform in the upset encoding: clear the coordinate's whole range. *)
  let not_ sp i = top sp land lnot (coord sp i).Space.c_mask
  let not_name sp name = not_ sp (Space.find sp name)

  (* ---------------- named levels of ordered coordinates ------------- *)

  (* The level of coordinate [i] in [x]: decode the coordinate's bit range
     (rounding up to the least level covering stray bits — masks produced
     by the lattice operations decode exactly). Classic coordinates report
     level 0/1 = bottom/top of the two-point lattice. *)
  let level sp i (x : t) =
    let c = coord sp i in
    let local = (x land c.Space.c_mask) lsr c.Space.c_shift in
    match c.Space.c_order with
    | Some o -> Qualifier.Order.decode o local
    | None -> local

  let level_name sp i (x : t) =
    let c = coord sp i in
    match c.Space.c_order with
    | Some o -> Qualifier.Order.level_name o (level sp i x)
    | None ->
        let name = Qualifier.name c.Space.c_qual in
        let up = level sp i x = 1 in
        (* coordinate top is presence for positive, absence for negative *)
        if up = Qualifier.is_positive c.Space.c_qual then name else "~" ^ name

  (* [with_level sp i l x]: x with coordinate [i] set to exactly level [l]
     of its order (classic coordinates: 0 = sub-lattice bottom, 1 = top). *)
  let with_level sp i l (x : t) =
    let c = coord sp i in
    let local =
      match c.Space.c_order with
      | Some o -> Qualifier.Order.encode o l
      | None -> if l = 0 then 0 else 1
    in
    (x land lnot c.Space.c_mask) lor (local lsl c.Space.c_shift)

  (* Annotation constants are built bottom-up: start at bottom and raise
     the listed coordinates. Names may be qualifier names (classic
     presence; a listed negative qualifier is *kept* present — it already
     is at bottom — so writing e.g. [nonzero 37] as the paper does is
     accepted) or level names of ordered coordinates (raise the coordinate
     to at least that level). *)
  let raise_name sp acc name =
    match Space.resolve sp name with
    | Some (`Qual i) -> set sp i acc
    | Some (`Level (i, l)) -> join sp acc (with_level sp i l (bottom sp))
    | None -> raise (Unknown_qualifier name)

  let of_names_up sp names = List.fold_left (raise_name sp) (bottom sp) names

  (* Assertion bounds are built top-down: start at top and pin the listed
     coordinates — a qualifier name to its sub-lattice bottom (meet with
     ¬q), a level name to at most that level. *)
  let of_names_bound sp names =
    List.fold_left
      (fun acc name ->
        match Space.resolve sp name with
        | Some (`Qual i) -> meet sp acc (not_ sp i)
        | Some (`Level (i, l)) -> meet sp acc (with_level sp i l (top sp))
        | None -> raise (Unknown_qualifier name))
      (top sp) names

  (* The whole bit range of coordinate [i]. (Historically a single bit —
     the name survives; a coordinate is still the smallest maskable
     unit, the solver's masks must never split a range.) *)
  let singleton_mask sp i = (coord sp i).Space.c_mask

  let mask_of_names sp names =
    List.fold_left
      (fun m n ->
        match Space.resolve sp n with
        | Some (`Qual i) | Some (`Level (i, _)) -> m lor singleton_mask sp i
        | None -> raise (Unknown_qualifier n))
      0 names

  (* Pretty-print as the set of "interesting" annotations: classically
     present qualifiers (what the programmer would write), plus the level
     name of every ordered coordinate that sits above its bottom. *)
  let pp sp ppf (x : t) =
    let names =
      List.concat
        (List.mapi
           (fun i c ->
             match c.Space.c_order with
             | None ->
                 if has sp i x then [ Qualifier.name c.Space.c_qual ] else []
             | Some o ->
                 let l = level sp i x in
                 if l = Qualifier.Order.bottom o then []
                 else [ Qualifier.Order.level_name o l ])
           (Array.to_list sp.Space.coords))
    in
    match names with
    | [] -> Fmt.string ppf "∅"
    | names -> Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") string) names

  (* Exhaustive form: every coordinate, with ¬ marking absence of a
     positive / presence-complement of a negative, and [qual=level] for
     ordered coordinates. *)
  let pp_full sp ppf (x : t) =
    let coord_s i c =
      match c.Space.c_order with
      | None ->
          let name = Qualifier.name c.Space.c_qual in
          if has sp i x then name else "¬" ^ name
      | Some o ->
          Fmt.str "%s=%s"
            (Qualifier.name c.Space.c_qual)
            (Qualifier.Order.level_name o (level sp i x))
    in
    Fmt.pf ppf "(%a)"
      Fmt.(list ~sep:(any ",") string)
      (List.mapi coord_s (Array.to_list sp.Space.coords))

  (* All elements of the lattice — the product of every coordinate's
     valid level encodings — for exhaustive property tests on small
     spaces. *)
  let all sp =
    Array.fold_left
      (fun acc (c : Space.coord) ->
        let locals =
          match c.Space.c_order with
          | None -> [ 0; 1 ]
          | Some o ->
              List.init (Qualifier.Order.size o) (fun l ->
                  Qualifier.Order.encode o l)
              |> List.sort_uniq compare
        in
        List.concat_map
          (fun x -> List.map (fun l -> x lor (l lsl c.Space.c_shift)) locals)
          acc)
      [ 0 ] sp.Space.coords
end
