(** The qualifier lattice (Definition 2 of the paper).

    Each positive qualifier [q] defines a two-point lattice
    [absent <= present]; each negative qualifier defines
    [present <= absent]. The qualifier lattice [L] is the product
    [Lq1 * ... * Lqn] over a fixed, user-chosen set of qualifiers — a
    {e space}. Lattice elements are represented as bitsets over the space
    (bit [i] set = qualifier [i] syntactically present), which makes
    [<=], meet and join single machine operations; the polarity of each
    coordinate is folded into the comparison, not the representation. *)

exception Unknown_qualifier of string

(** A qualifier space: the (ordered) universe of qualifiers an analysis
    uses. Spaces are small (at most {!Space.max_size} qualifiers) and
    fixed for the lifetime of an analysis. *)
module Space = struct
  type t = {
    quals : Qualifier.t array;
    index : (string, int) Hashtbl.t;
    pos_mask : int;  (* bits of positive qualifiers *)
    neg_mask : int;  (* bits of negative qualifiers *)
  }

  let max_size = 60

  let create quals =
    let quals = Array.of_list quals in
    let n = Array.length quals in
    if n > max_size then
      invalid_arg
        (Printf.sprintf "Lattice.Space.create: at most %d qualifiers" max_size);
    let index = Hashtbl.create 16 in
    let pos_mask = ref 0 and neg_mask = ref 0 in
    Array.iteri
      (fun i q ->
        let name = Qualifier.name q in
        if Hashtbl.mem index name then
          invalid_arg
            (Printf.sprintf "Lattice.Space.create: duplicate qualifier %S" name);
        Hashtbl.add index name i;
        if Qualifier.is_positive q then pos_mask := !pos_mask lor (1 lsl i)
        else neg_mask := !neg_mask lor (1 lsl i))
      quals;
    { quals; index; pos_mask = !pos_mask; neg_mask = !neg_mask }

  let size sp = Array.length sp.quals
  let qual sp i = sp.quals.(i)
  let quals sp = Array.to_list sp.quals

  let find_opt sp name = Hashtbl.find_opt sp.index name

  let find sp name =
    match find_opt sp name with
    | Some i -> i
    | None -> raise (Unknown_qualifier name)

  let mem sp name = Hashtbl.mem sp.index name
  let pos_mask sp = sp.pos_mask
  let neg_mask sp = sp.neg_mask
end

(** Elements of the product lattice [L], relative to a {!Space.t}. *)
module Elt = struct
  type t = int
  (** Bit [i] set iff qualifier [i] is (syntactically) present. Ordering,
      meet and join reinterpret the bits per coordinate polarity. *)

  let full_mask sp = (1 lsl Space.size sp) - 1

  (* Does [mask] cover every coordinate of the space? Full-mask relations
     equate variables when they form a cycle; masked ones never do. *)
  let is_full_mask sp mask =
    let full = full_mask sp in
    mask land full = full

  (* Bottom of L: every positive qualifier absent, every negative present
     (moving up the lattice adds positive or removes negative, Fig. 2). *)
  let bottom sp = sp.Space.neg_mask

  (* Top of L: every positive present, every negative absent. *)
  let top sp = sp.Space.pos_mask

  let equal (a : t) (b : t) = a = b
  let compare (a : t) (b : t) = compare a b

  (* a <= b iff, coordinatewise: positive bits of a included in b's, and
     negative bits of b included in a's. *)
  let leq sp a b =
    let pos = sp.Space.pos_mask and neg = sp.Space.neg_mask in
    a land pos land lnot b = 0 && b land neg land lnot a = 0

  (* Restricted comparison: only the coordinates selected by [mask] are
     compared. Used by masked (single-coordinate) constraints. *)
  let leq_masked sp ~mask a b =
    let pos = sp.Space.pos_mask land mask and neg = sp.Space.neg_mask land mask in
    a land pos land lnot b = 0 && b land neg land lnot a = 0

  let join sp a b =
    let pos = sp.Space.pos_mask and neg = sp.Space.neg_mask in
    ((a lor b) land pos) lor ((a land b) land neg)

  let meet sp a b =
    let pos = sp.Space.pos_mask and neg = sp.Space.neg_mask in
    ((a land b) land pos) lor ((a lor b) land neg)

  (* [embed_bottom sp mask x]: x on the [mask] coordinates, bottom
     elsewhere — the neutral extension for joins. *)
  let embed_bottom sp ~mask x = (x land mask) lor (bottom sp land lnot mask)

  (* [embed_top sp mask x]: x on the [mask] coordinates, top elsewhere —
     the neutral extension for meets. *)
  let embed_top sp ~mask x = (x land mask) lor (top sp land lnot mask)

  let has _sp i (x : t) = x land (1 lsl i) <> 0
  let has_name sp name x = has sp (Space.find sp name) x
  let set _sp i (x : t) = x lor (1 lsl i)
  let clear _sp i (x : t) = x land lnot (1 lsl i)

  (* not_ sp i: the paper's [¬qi] — top of L with coordinate i replaced by
     the *bottom* of its two-point lattice. Asserting [Q <= not_ q] pins
     coordinate q to its bottom and leaves the rest unconstrained: for
     positive q this means "must not have q" (e.g. ¬const = assignable);
     for negative q it means "must have q" (e.g. ¬?nonzero = nonzero). *)
  let not_ sp i =
    let t = top sp in
    if Qualifier.is_positive (Space.qual sp i) then clear sp i t
    else set sp i t

  let not_name sp name = not_ sp (Space.find sp name)

  (* Annotation constants are built bottom-up: start at bottom and raise the
     listed coordinates. A listed positive qualifier becomes present; a
     listed negative qualifier is *kept* present (it already is at bottom),
     so writing e.g. [nonzero 37] as the paper does is accepted. *)
  let of_names_up sp names =
    List.fold_left
      (fun acc name ->
        let i = Space.find sp name in
        set sp i acc)
      (bottom sp) names

  (* Assertion bounds are built top-down: start at top and pin the listed
     coordinates to their bottoms (meet with ¬q). *)
  let of_names_bound sp names =
    List.fold_left (fun acc name -> meet sp acc (not_name sp name)) (top sp)
      names

  let singleton_mask _sp i = 1 lsl i
  let mask_of_names sp names =
    List.fold_left (fun m n -> m lor (1 lsl Space.find sp n)) 0 names

  (* Pretty-print as the set of "interesting" annotations: positive
     qualifiers that are present plus negative qualifiers that are present
     (both are what the programmer would write). *)
  let pp sp ppf (x : t) =
    let names =
      List.filteri (fun i _ -> has sp i x) (Space.quals sp)
      |> List.map Qualifier.name
    in
    match names with
    | [] -> Fmt.string ppf "∅"
    | names -> Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") string) names

  (* Exhaustive form: every coordinate, with ¬ marking absence of a
     positive / presence-complement of a negative. *)
  let pp_full sp ppf (x : t) =
    let coord i q =
      let present = has sp i x in
      let name = Qualifier.name q in
      if present then name else "¬" ^ name
    in
    Fmt.pf ppf "(%a)"
      Fmt.(list ~sep:(any ",") string)
      (List.mapi coord (Space.quals sp))

  (* All elements of the lattice, for exhaustive property tests on small
     spaces. *)
  let all sp =
    let n = Space.size sp in
    List.init (1 lsl n) (fun i -> i)
end
