(** Resource budgets: see the interface for semantics. Trip-style (no
    exceptions): limits latch a reason string; consumers poll.

    All counters are {!Atomic.t} so one budget can be shared by every
    worker domain of a parallel run: each private constraint store charges
    the same counters, so [--budget] bounds the whole run, and a trip in
    any domain is observed by all of them. *)

type t = {
  max_vars : int option;
  max_pops : int option;
  deadline : float option;  (* absolute, in [clock] units *)
  clock : unit -> float;
  n_vars : int Atomic.t;
  n_pops : int Atomic.t;
  n_ticks : int Atomic.t;
  tripped : string option Atomic.t;
}

(* Poll the clock only every [poll_interval] events: reading time is far
   more expensive than an increment, and a deadline does not need
   single-event precision. Power of two so the check is a mask; small
   enough that even modest workloads (a few hundred events) poll. *)
let poll_interval = 32

let create ?max_vars ?max_pops ?deadline_s ?(clock = Sys.time) () =
  {
    max_vars;
    max_pops;
    deadline = Option.map (fun d -> clock () +. d) deadline_s;
    clock;
    n_vars = Atomic.make 0;
    n_pops = Atomic.make 0;
    n_ticks = Atomic.make 0;
    tripped = Atomic.make None;
  }

(* First trip wins; losing the race just means another domain latched a
   reason a moment earlier, which is equally valid. *)
let trip b reason =
  ignore (Atomic.compare_and_set b.tripped None (Some reason) : bool)

let exhausted b = Atomic.get b.tripped
let is_exhausted b = Atomic.get b.tripped <> None
let pops b = Atomic.get b.n_pops

let check_time b =
  match b.deadline with
  | Some d when b.clock () > d -> trip b "wall-clock deadline exceeded"
  | _ -> ()

let tick b =
  let n = Atomic.fetch_and_add b.n_ticks 1 in
  if (n + 1) land (poll_interval - 1) = 0 then check_time b

let note_var b =
  let n = Atomic.fetch_and_add b.n_vars 1 + 1 in
  (match b.max_vars with
  | Some m when n > m ->
      trip b
        (Printf.sprintf "constraint-variable budget exceeded (%d > %d)" n m)
  | _ -> ());
  tick b

let vars b = Atomic.get b.n_vars

let note_pop b =
  let n = Atomic.fetch_and_add b.n_pops 1 + 1 in
  (match b.max_pops with
  | Some m when n > m ->
      trip b
        (Printf.sprintf "solver worklist budget exceeded (%d > %d pops)" n m)
  | _ -> ());
  (* pops share the tick counter so deadline polling sees every kind of
     work the analysis does, not just variable creation *)
  tick b

let pp ppf b =
  let lim ppf = function
    | Some n -> Fmt.int ppf n
    | None -> Fmt.string ppf "unlimited"
  in
  Fmt.pf ppf "vars<=%a pops<=%a deadline=%a%a" lim b.max_vars lim b.max_pops
    Fmt.(option ~none:(any "none") float)
    b.deadline
    Fmt.(option (any " [tripped: " ++ string ++ any "]"))
    (Atomic.get b.tripped)
