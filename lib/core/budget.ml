(** Resource budgets: see the interface for semantics. Trip-style (no
    exceptions): limits latch a reason string; consumers poll. *)

type t = {
  max_vars : int option;
  max_pops : int option;
  deadline : float option;  (* absolute, in [clock] units *)
  clock : unit -> float;
  mutable n_pops : int;
  mutable n_ticks : int;
  mutable tripped : string option;
}

(* Poll the clock only every [poll_interval] events: reading time is far
   more expensive than an increment, and a deadline does not need
   single-event precision. Power of two so the check is a mask; small
   enough that even modest workloads (a few hundred events) poll. *)
let poll_interval = 32

let create ?max_vars ?max_pops ?deadline_s ?(clock = Sys.time) () =
  {
    max_vars;
    max_pops;
    deadline = Option.map (fun d -> clock () +. d) deadline_s;
    clock;
    n_pops = 0;
    n_ticks = 0;
    tripped = None;
  }

let trip b reason = if b.tripped = None then b.tripped <- Some reason

let exhausted b = b.tripped
let is_exhausted b = b.tripped <> None
let pops b = b.n_pops

let check_time b =
  match b.deadline with
  | Some d when b.clock () > d -> trip b "wall-clock deadline exceeded"
  | _ -> ()

let tick b =
  b.n_ticks <- b.n_ticks + 1;
  if b.n_ticks land (poll_interval - 1) = 0 then check_time b

let note_vars b n =
  (match b.max_vars with
  | Some m when n > m ->
      trip b
        (Printf.sprintf "constraint-variable budget exceeded (%d > %d)" n m)
  | _ -> ());
  tick b

let note_pop b =
  b.n_pops <- b.n_pops + 1;
  (match b.max_pops with
  | Some m when b.n_pops > m ->
      trip b
        (Printf.sprintf "solver worklist budget exceeded (%d > %d pops)"
           b.n_pops m)
  | _ -> ());
  (* pops share the tick counter so deadline polling sees every kind of
     work the analysis does, not just variable creation *)
  tick b

let pp ppf b =
  let lim ppf = function
    | Some n -> Fmt.int ppf n
    | None -> Fmt.string ppf "unlimited"
  in
  Fmt.pf ppf "vars<=%a pops<=%a deadline=%a%a" lim b.max_vars lim b.max_pops
    Fmt.(option ~none:(any "none") float)
    b.deadline
    Fmt.(option (any " [tripped: " ++ string ++ any "]"))
    b.tripped
