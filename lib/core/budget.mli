(** Resource budgets for constraint generation and solving.

    A budget converts runaway analysis into a reported, degraded outcome
    instead of a hang or an OOM kill. It tracks three optional limits:

    - [max_vars]: constraint variables created, {e summed across every
      store charged against this budget} (parallel runs use one private
      store per worker domain);
    - [max_pops]: solver worklist pops (propagation steps);
    - [deadline_s]: wall-clock seconds, checked via a poll counter so the
      clock is read only every few dozen events.

    Budgets {e trip} rather than raise: once a limit is exceeded,
    {!exhausted} returns the reason and stays set. Consumers (the solver's
    propagation loop, {!Cqual.Analysis}) poll the flag and stop early;
    the run is then reported as degraded. Exception-free tripping keeps
    every store invariant intact no matter where exhaustion is noticed.

    Every counter is an {!Atomic.t}, so a single budget may be shared by
    all worker domains of a parallel analysis: the limits bound the whole
    run, and a trip in one domain is promptly observed by the others. *)

type t

val create :
  ?max_vars:int ->
  ?max_pops:int ->
  ?deadline_s:float ->
  ?clock:(unit -> float) ->
  unit ->
  t
(** [clock] defaults to [Sys.time] (portable; the core library does not
    depend on Unix for budgets). Callers with access to a monotonic or
    wall clock can pass their own. The deadline is [clock () + deadline_s]
    at creation. *)

val exhausted : t -> string option
(** [Some reason] once any limit has been exceeded; never resets. *)

val is_exhausted : t -> bool

val note_var : t -> unit
(** count one constraint-variable creation (in any store sharing this
    budget) *)

val note_pop : t -> unit
(** count one worklist pop; also counts as a tick, so pops and variable
    creation share one deadline-polling counter *)

val tick : t -> unit
(** count one generic unit of work; polls the clock every few dozen
    ticks *)

val pops : t -> int
(** pops observed so far (for reporting) *)

val vars : t -> int
(** variable creations observed so far, across all charged stores *)

val pp : t Fmt.t
