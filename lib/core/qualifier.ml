(** Type qualifiers (Definitions 1 and 2 of the paper).

    A qualifier names one coordinate of the qualifier lattice. The classic
    form is a {e two-point} qualifier with a polarity: [q] is {e positive}
    when [tau <= q tau] for every standard type [tau] (e.g. [const]:
    adding it moves {e up} the subtype order), and {e negative} when
    [q tau <= tau] (e.g. [nonzero]: removing it moves up).

    The general form — the paper's "user-defined partial order of
    qualifiers" — attaches an arbitrary finite lattice of named {e levels}
    to the coordinate ({!Order}), e.g.
    [untainted <= maybe_tainted <= tainted]. Two-point qualifiers are the
    special case of a 2-level chain whose levels are "absent"/"present"
    (polarity decides which is bottom). *)

type polarity =
  | Positive  (** [tau <= q tau]; absence is the bottom of the 2-point lattice *)
  | Negative  (** [q tau <= tau]; presence is the bottom of the 2-point lattice *)

(* ------------------------------------------------------------------ *)
(* Finite lattices of named levels                                     *)
(* ------------------------------------------------------------------ *)

(** A validated finite {e distributive} lattice of named levels, with its
    Birkhoff (join-irreducible upset) bit encoding precomputed.

    Distributivity is required because the encoding represents an element
    as the set of join-irreducibles below it and implements join as
    bitwise OR — exact precisely for distributive lattices (Birkhoff's
    representation theorem). Every lattice a qualifier system plausibly
    wants (chains, powersets, products of chains) is distributive; the
    two smallest non-distributive lattices (M3, N5) are rejected with a
    diagnostic naming the offending triple. *)
module Order = struct
  type t = {
    o_levels : string array;  (** level names; index = level id *)
    o_leq : bool array;  (** [n*n] closed relation, row-major: [a*n + b] *)
    o_bottom : int;
    o_top : int;
    o_join : int array;  (** [n*n] lub table *)
    o_meet : int array;  (** [n*n] glb table *)
    o_irr : int array;  (** join-irreducible level ids, ascending *)
    o_encode : int array;  (** level id -> bitmask over positions of o_irr *)
  }

  let size o = Array.length o.o_levels
  let bits o = Array.length o.o_irr
  let level_names o = Array.copy o.o_levels
  let level_name o l = o.o_levels.(l)
  let bottom o = o.o_bottom
  let top o = o.o_top
  let leq o a b = o.o_leq.((a * size o) + b)
  let join o a b = o.o_join.((a * size o) + b)
  let meet o a b = o.o_meet.((a * size o) + b)
  let irreducibles o = Array.copy o.o_irr
  let encode o l = o.o_encode.(l)

  let find_level o name =
    let n = size o in
    let rec go i =
      if i >= n then None
      else if String.equal o.o_levels.(i) name then Some i
      else go (i + 1)
    in
    go 0

  (* Decode a bitmask (over the irreducible positions) back to a level: the
     least level whose encoding contains every set bit. For masks produced
     by the lattice operations this is exact; arbitrary masks round up. *)
  let decode o m =
    let l = ref o.o_bottom in
    Array.iteri
      (fun k j -> if m land (1 lsl k) <> 0 then l := join o !l j)
      o.o_irr;
    !l

  let ( let* ) = Result.bind

  (** Build and validate a lattice from level names and a list of
      [a <= b] pairs. Validation: distinct nonempty names, known names in
      the order, antisymmetry after reflexive-transitive closure
      (i.e. acyclicity), existence and uniqueness of pairwise lub/glb
      (lattice-ness), and distributivity. *)
  let of_levels ~levels ~order : (t, string) result =
    let lv = Array.of_list levels in
    let n = Array.length lv in
    let* () = if n = 0 then Error "a qualifier needs at least one level" else Ok () in
    let* () =
      Array.fold_left
        (fun acc name ->
          let* () = acc in
          if name = "" then Error "empty level name"
          else if Array.fold_left (fun k x -> if x = name then k + 1 else k) 0 lv > 1
          then Error (Printf.sprintf "duplicate level %S" name)
          else Ok ())
        (Ok ()) lv
    in
    let idx name =
      let rec go i =
        if i >= n then Error (Printf.sprintf "unknown level %S in order declaration" name)
        else if lv.(i) = name then Ok i
        else go (i + 1)
      in
      go 0
    in
    let leq = Array.make (n * n) false in
    for i = 0 to n - 1 do
      leq.((i * n) + i) <- true
    done;
    let* () =
      List.fold_left
        (fun acc (a, b) ->
          let* () = acc in
          let* ia = idx a in
          let* ib = idx b in
          leq.((ia * n) + ib) <- true;
          Ok ())
        (Ok ()) order
    in
    (* reflexive-transitive closure (Warshall) *)
    for k = 0 to n - 1 do
      for i = 0 to n - 1 do
        if leq.((i * n) + k) then
          for j = 0 to n - 1 do
            if leq.((k * n) + j) then leq.((i * n) + j) <- true
          done
      done
    done;
    (* antisymmetry = acyclicity of the declared order *)
    let cycle = ref None in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        if leq.((a * n) + b) && leq.((b * n) + a) then
          if !cycle = None then cycle := Some (a, b)
      done
    done;
    let* () =
      match !cycle with
      | Some (a, b) ->
          Error
            (Printf.sprintf "levels %S and %S are in a cycle (%s <= %s <= %s)"
               lv.(a) lv.(b) lv.(a) lv.(b) lv.(a))
      | None -> Ok ()
    in
    (* pairwise lub/glb: existence and uniqueness (lattice-ness) *)
    let join = Array.make (n * n) 0 and meet = Array.make (n * n) 0 in
    let bound ~dir a b =
      (* candidates above (dir = `Up) or below both a and b *)
      let le x y = if dir = `Up then leq.((x * n) + y) else leq.((y * n) + x) in
      let cands = List.filter (fun u -> le a u && le b u) (List.init n Fun.id) in
      match cands with
      | [] ->
          Error
            (Printf.sprintf "levels %S and %S have no common %s bound" lv.(a)
               lv.(b)
               (if dir = `Up then "upper" else "lower"))
      | _ -> (
          match List.find_opt (fun u -> List.for_all (le u) cands) cands with
          | Some u -> Ok u
          | None ->
              Error
                (Printf.sprintf
                   "not a lattice: levels %S and %S have no %s (candidates: %s)"
                   lv.(a) lv.(b)
                   (if dir = `Up then "least upper bound"
                    else "greatest lower bound")
                   (String.concat ", "
                      (List.map (fun u -> lv.(u)) cands))))
    in
    let* () =
      let acc = ref (Ok ()) in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          match !acc with
          | Error _ -> ()
          | Ok () -> (
              match bound ~dir:`Up a b with
              | Error e -> acc := Error e
              | Ok u -> (
                  join.((a * n) + b) <- u;
                  match bound ~dir:`Down a b with
                  | Error e -> acc := Error e
                  | Ok l -> meet.((a * n) + b) <- l))
        done
      done;
      !acc
    in
    let bottom = ref 0 and top = ref 0 in
    for i = 1 to n - 1 do
      bottom := meet.((!bottom * n) + i);
      top := join.((!top * n) + i)
    done;
    (* distributivity: a /\ (b \/ c) = (a /\ b) \/ (a /\ c) *)
    let distrib = ref None in
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        for c = 0 to n - 1 do
          let lhs = meet.((a * n) + join.((b * n) + c)) in
          let rhs = join.((meet.((a * n) + b) * n) + meet.((a * n) + c)) in
          if lhs <> rhs && !distrib = None then distrib := Some (a, b, c)
        done
      done
    done;
    let* () =
      match !distrib with
      | Some (a, b, c) ->
          Error
            (Printf.sprintf
               "not distributive: %s /\\ (%s \\/ %s) differs from (%s /\\ %s) \
                \\/ (%s /\\ %s); the bit encoding requires a distributive \
                lattice"
               lv.(a) lv.(b) lv.(c) lv.(a) lv.(b) lv.(a) lv.(c))
      | None -> Ok ()
    in
    (* join-irreducibles: l is irreducible iff l > join of everything
       strictly below it (the empty join being bottom) *)
    let irr =
      List.filter
        (fun l ->
          let below = ref !bottom in
          for m = 0 to n - 1 do
            if m <> l && leq.((m * n) + l) then below := join.((!below * n) + m)
          done;
          !below <> l)
        (List.init n Fun.id)
      |> Array.of_list
    in
    let encode =
      Array.init n (fun l ->
          let m = ref 0 in
          Array.iteri
            (fun k j -> if leq.((j * n) + l) then m := !m lor (1 lsl k))
            irr;
          !m)
    in
    Ok
      {
        o_levels = lv;
        o_leq = leq;
        o_bottom = !bottom;
        o_top = !top;
        o_join = join;
        o_meet = meet;
        o_irr = irr;
        o_encode = encode;
      }

  (** A total order [l0 <= l1 <= ...] — the most common custom lattice. *)
  let chain levels =
    let rec pairs = function
      | a :: (b :: _ as rest) -> (a, b) :: pairs rest
      | _ -> []
    in
    of_levels ~levels ~order:(pairs levels)

  let chain_exn levels =
    match chain levels with
    | Ok o -> o
    | Error e -> invalid_arg ("Qualifier.Order.chain: " ^ e)

  (* Hasse covers, for dumps: a < b with nothing strictly between. *)
  let covers o =
    let n = size o in
    let lt a b = a <> b && leq o a b in
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if
              lt a b
              && not
                   (List.exists
                      (fun c -> lt a c && lt c b)
                      (List.init n Fun.id))
            then Some (a, b)
            else None)
          (List.init n Fun.id))
      (List.init n Fun.id)

  let pp ppf o =
    match covers o with
    | [] -> Fmt.pf ppf "%s" o.o_levels.(o.o_bottom)
    | cs ->
        Fmt.(list ~sep:(any ", ") (fun ppf (a, b) ->
            Fmt.pf ppf "%s < %s" o.o_levels.(a) o.o_levels.(b)))
          ppf cs
end

type t = {
  name : string;      (** Source-level name, e.g. ["const"]. Unique in a space. *)
  polarity : polarity;
  order : Order.t option;
      (** [None]: the classic two-point lattice given by [polarity].
          [Some o]: a user-defined lattice of named levels. *)
}

let make ?(polarity = Positive) name =
  if name = "" then invalid_arg "Qualifier.make: empty name";
  { name; polarity; order = None }

let positive name = make ~polarity:Positive name
let negative name = make ~polarity:Negative name

let ordered name order =
  if name = "" then invalid_arg "Qualifier.ordered: empty name";
  { name; polarity = Positive; order = Some order }

let name q = q.name
let polarity q = q.polarity
let order q = q.order
let is_positive q = q.polarity = Positive
let is_negative q = q.polarity = Negative

let equal a b = String.equal a.name b.name && a.polarity = b.polarity
let compare a b =
  match String.compare a.name b.name with
  | 0 -> compare a.polarity b.polarity
  | c -> c

let pp ppf q = Fmt.string ppf q.name

let pp_full ppf q =
  match q.order with
  | Some o -> Fmt.pf ppf "%s[%d]" q.name (Order.size o)
  | None ->
      Fmt.pf ppf "%s%s"
        (match q.polarity with Positive -> "+" | Negative -> "-")
        q.name

(* ------------------------------------------------------------------ *)
(* CQual-style lattice configuration files                             *)
(* ------------------------------------------------------------------ *)

(** Parser for lattice config files (the format CQual shipped, modernized;
    see the README for the grammar):

    {v
    # three-level taint
    qualifier taint {
      levels untainted maybe_tainted tainted
      order untainted < maybe_tainted < tainted
    }
    qualifier const            # classic positive two-point
    qualifier nonzero negative
    v} *)
module Config = struct
  let ( let* ) = Result.bind

  type line = { lno : int; words : string list }

  let lines_of src =
    String.split_on_char '\n' src
    |> List.mapi (fun i l ->
           let l =
             match String.index_opt l '#' with
             | Some j -> String.sub l 0 j
             | None -> l
           in
           {
             lno = i + 1;
             words =
               String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) l)
               |> List.filter (fun w -> w <> "");
           })
    |> List.filter (fun l -> l.words <> [])

  let err lno fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lno m)) fmt

  (* [order a < b < c] declares a <= b and b <= c. *)
  let parse_order_chain lno words =
    let rec go acc = function
      | a :: "<" :: (b :: _ as rest) -> go ((a, b) :: acc) rest
      | [ _ ] -> Ok (List.rev acc)
      | _ -> err lno "malformed order (want: order a < b [< c ...])"
    in
    match words with
    | [] -> err lno "empty order declaration"
    | ws -> go [] ws

  let parse_block name lno body =
    let* levels, order =
      List.fold_left
        (fun acc l ->
          let* lvs, ord = acc in
          match l.words with
          | "levels" :: ls when ls <> [] -> Ok (lvs @ ls, ord)
          | "levels" :: _ -> err l.lno "levels wants at least one name"
          | "order" :: ws ->
              let* pairs = parse_order_chain l.lno ws in
              Ok (lvs, ord @ pairs)
          | w :: _ -> err l.lno "unknown directive %S (want levels or order)" w
          | [] -> acc)
        (Ok ([], [])) body
    in
    (* levels may also be introduced implicitly by order lines *)
    let levels =
      List.fold_left
        (fun acc (a, b) ->
          let add x acc = if List.mem x acc then acc else acc @ [ x ] in
          add b (add a acc))
        levels order
    in
    match Order.of_levels ~levels ~order with
    | Ok o -> Ok (ordered name o)
    | Error e -> err lno "qualifier %S: %s" name e

  let parse src : (t list, string) result =
    let lines = lines_of src in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | { lno = _; words = [ "qualifier"; name ] } :: rest ->
          go (positive name :: acc) rest
      | { lno = _; words = [ "qualifier"; name; "positive" ] } :: rest ->
          go (positive name :: acc) rest
      | { lno = _; words = [ "qualifier"; name; "negative" ] } :: rest ->
          go (negative name :: acc) rest
      | { lno; words = [ "qualifier"; name; "{" ] } :: rest ->
          let rec split body = function
            | [] -> err lno "qualifier %S: missing closing }" name
            | { words = [ "}" ]; _ } :: rest -> Ok (List.rev body, rest)
            | l :: rest -> split (l :: body) rest
          in
          let* body, rest = split [] rest in
          let* q = parse_block name lno body in
          go (q :: acc) rest
      | { lno; words = "qualifier" :: _ } :: _ ->
          err lno
            "malformed qualifier (want: qualifier NAME [positive|negative] \
             or qualifier NAME { ... })"
      | { lno; words = w :: _ } :: _ -> err lno "unknown directive %S" w
      | { words = []; _ } :: rest -> go acc rest
    in
    let* quals = go [] lines in
    if quals = [] then Error "no qualifiers declared" else Ok quals
end

(* The qualifiers used throughout the paper and this reproduction. *)

(** ANSI C [const]: an l-value that may be initialized but not updated
    (Section 2.4, Section 4). Positive: [tau <= const tau]. *)
let const = positive "const"

(** Binding-time [dynamic] (partial evaluation, Section 1): a value possibly
    unknown until run time. Positive; [static] is its absence. *)
let dynamic = positive "dynamic"

(** [nonzero] (Figure 2): an integer known not to be zero. Negative:
    [nonzero tau <= tau]. *)
let nonzero = negative "nonzero"

(** lclint-style [nonnull] (Section 1): a pointer that is not null.
    Negative: the non-null pointers are a subset of all pointers. *)
let nonnull = negative "nonnull"

(** [sorted] (Section 2.3): a list known to be sorted. Negative. *)
let sorted = negative "sorted"

(** Security [tainted] (cf. the information-flow systems of Section 5):
    data influenced by an untrusted source. Positive: untainted data can be
    used where tainted data is expected. *)
let tainted = positive "tainted"
