(* Persistent analysis cache: versioned self-checking envelopes, atomic
   writes, lock-file protocol. See cache.mli for the format. *)

let magic = "TQCACHE1"
let format_version = 1
let off_magic = 0
let off_version = 8
let off_ctx = 10
let off_key = 26
let off_ndeps = 42
let off_deps = 44

type reject =
  | Io_error
  | Truncated
  | Bad_magic
  | Bad_version
  | Context_mismatch
  | Key_mismatch
  | Stale_dep
  | Corrupt
  | Undecodable

let reject_name = function
  | Io_error -> "io-error"
  | Truncated -> "truncated"
  | Bad_magic -> "bad-magic"
  | Bad_version -> "bad-version"
  | Context_mismatch -> "lattice-mismatch"
  | Key_mismatch -> "key-mismatch"
  | Stale_dep -> "stale-dep"
  | Corrupt -> "corrupt"
  | Undecodable -> "undecodable"

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable evictions : int;
  mutable write_skips : int;
  rejects : (string, int) Hashtbl.t;
  by_kind : (string, int * int) Hashtbl.t;
}

type t = {
  dir : string;
  ctx : Digest.t;
  warn : string -> unit;
  mutable writes_ok : bool;  (* first write failure warns and latches off *)
  mutable warned_write : bool;
  st : stats;
  mutable tmp_seq : int;  (* per-process temp-name uniquifier *)
  mu : Mutex.t;  (* guards st, writes_ok, warned_write, tmp_seq: load and
                    store run concurrently from pool domains *)
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let next_seq t =
  locked t (fun () ->
      t.tmp_seq <- t.tmp_seq + 1;
      t.tmp_seq)

let stats t = t.st

let fresh_stats () =
  {
    hits = 0;
    misses = 0;
    bytes_read = 0;
    bytes_written = 0;
    evictions = 0;
    write_skips = 0;
    rejects = Hashtbl.create 8;
    by_kind = Hashtbl.create 4;
  }

let open_dir ?(warn = fun _ -> ()) ~ctx dir =
  match
    if Sys.file_exists dir then
      if Sys.is_directory dir then Ok () else Error (dir ^ " is not a directory")
    else
      try
        Unix.mkdir dir 0o755;
        Ok ()
      with
      | Unix.Unix_error (Unix.EEXIST, _, _) -> Ok ()
      | Unix.Unix_error (e, _, _) ->
          Error (dir ^ ": " ^ Unix.error_message e)
      | Sys_error m -> Error m
  with
  | Ok () ->
      Some
        {
          dir;
          ctx;
          warn;
          writes_ok = true;
          warned_write = false;
          st = fresh_stats ();
          tmp_seq = 0;
          mu = Mutex.create ();
        }
  | Error m ->
      warn ("cache disabled: " ^ m);
      None
  | exception _ ->
      warn ("cache disabled: cannot open " ^ dir);
      None

let entry_path t ~kind ~key =
  Filename.concat t.dir (kind ^ "-" ^ Digest.to_hex key ^ ".tqc")

let entry_files t =
  match Sys.readdir t.dir with
  | names ->
      Array.to_list names
      |> List.filter (fun n -> Filename.check_suffix n ".tqc")
      |> List.sort String.compare
      |> List.map (Filename.concat t.dir)
  | exception _ -> []

(* ------------------------------------------------------------------ *)
(* Counters (the [_u] helpers require [t.mu] held)                     *)
(* ------------------------------------------------------------------ *)

let bump_kind_u t kind ~hit =
  let h, m = try Hashtbl.find t.st.by_kind kind with Not_found -> (0, 0) in
  Hashtbl.replace t.st.by_kind kind
    (if hit then (h + 1, m) else (h, m + 1))

let evict_u t path =
  (try Sys.remove path with _ -> ());
  t.st.evictions <- t.st.evictions + 1

let rejected_u t ~kind ~path cause =
  let name = reject_name cause in
  let n = try Hashtbl.find t.st.rejects name with Not_found -> 0 in
  Hashtbl.replace t.st.rejects name (n + 1);
  bump_kind_u t kind ~hit:false;
  evict_u t path

let reject_undecodable t ~kind ~key =
  locked t (fun () ->
      (* the load already counted a hit for this entry; re-book it as a
         miss *)
      t.st.hits <- t.st.hits - 1;
      t.st.misses <- t.st.misses + 1;
      let h, m =
        try Hashtbl.find t.st.by_kind kind with Not_found -> (1, 0)
      in
      Hashtbl.replace t.st.by_kind kind (h - 1, m);
      rejected_u t ~kind ~path:(entry_path t ~kind ~key) Undecodable)

(* ------------------------------------------------------------------ *)
(* Envelope encode/decode                                              *)
(* ------------------------------------------------------------------ *)

let put_u16 b v =
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let put_u64 b v =
  for i = 7 downto 0 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let get_u16 s off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]

let get_u64 s off =
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

let encode ~ctx ~key ~deps payload =
  let b = Buffer.create (256 + String.length payload) in
  Buffer.add_string b magic;
  put_u16 b format_version;
  Buffer.add_string b ctx;
  Buffer.add_string b key;
  put_u16 b (List.length deps);
  List.iter (Buffer.add_string b) deps;
  put_u64 b (String.length payload);
  Buffer.add_string b (Digest.string payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* Verify the chain front to back against what the caller expects NOW.
   The order matters: each check only reads bytes the previous checks
   proved present, so a truncated file is always [Truncated], never an
   out-of-bounds read. *)
let verify ~ctx ~key ~deps (s : string) : (string, reject) result =
  let len = String.length s in
  let have n = len >= n in
  if not (have off_version) then Error Truncated
  else if String.sub s off_magic 8 <> magic then Error Bad_magic
  else if not (have off_ctx) then Error Truncated
  else if get_u16 s off_version <> format_version then Error Bad_version
  else if not (have off_deps) then Error Truncated
  else if String.sub s off_ctx 16 <> ctx then Error Context_mismatch
  else if String.sub s off_key 16 <> key then Error Key_mismatch
  else begin
    let ndeps = get_u16 s off_ndeps in
    if ndeps <> List.length deps then Error Stale_dep
    else if not (have (off_deps + (16 * ndeps) + 24)) then Error Truncated
    else begin
      let deps_ok =
        List.for_all2
          (fun i d -> String.sub s (off_deps + (16 * i)) 16 = d)
          (List.init ndeps Fun.id)
          deps
      in
      if not deps_ok then Error Stale_dep
      else begin
        let plen_off = off_deps + (16 * ndeps) in
        let plen = get_u64 s plen_off in
        let poff = plen_off + 24 in
        if len - poff <> plen then Error Truncated
        else
          let payload = String.sub s poff plen in
          if Digest.string payload <> String.sub s (plen_off + 8) 16 then
            Error Corrupt
          else Ok payload
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Load                                                                *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load t ~kind ~key ~deps =
  let path = entry_path t ~kind ~key in
  if not (Sys.file_exists path) then begin
    locked t (fun () ->
        t.st.misses <- t.st.misses + 1;
        bump_kind_u t kind ~hit:false);
    None
  end
  else
    match read_file path with
    | exception _ ->
        locked t (fun () ->
            t.st.misses <- t.st.misses + 1;
            rejected_u t ~kind ~path Io_error);
        None
    | raw -> (
        match verify ~ctx:t.ctx ~key ~deps raw with
        | Ok payload ->
            locked t (fun () ->
                t.st.hits <- t.st.hits + 1;
                t.st.bytes_read <- t.st.bytes_read + String.length raw;
                bump_kind_u t kind ~hit:true);
            Some payload
        | Error cause ->
            locked t (fun () ->
                t.st.misses <- t.st.misses + 1;
                rejected_u t ~kind ~path cause);
            None)

(* ------------------------------------------------------------------ *)
(* Lock-file protocol                                                  *)
(* ------------------------------------------------------------------ *)

let lock_path t = Filename.concat t.dir ".lock"

let pid_alive pid =
  if pid <= 0 then false
  else
    match Unix.kill pid 0 with
    | () -> true
    | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
    | exception _ -> true (* EPERM: someone owns it; treat as alive *)

let try_take_lock t =
  let path = lock_path t in
  match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644 with
  | fd ->
      let pid = string_of_int (Unix.getpid ()) in
      (try ignore (Unix.write_substring fd pid 0 (String.length pid)) with _ -> ());
      (try Unix.close fd with _ -> ());
      true
  | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
      (* Stale-lock detection: break locks whose recorded owner is gone
         (or whose content is unreadable garbage). Breaking is
         rename-then-remove, not a bare unlink: [rename] to a unique
         name atomically elects exactly one breaker, and the renamed
         file's content is re-checked so that a fresh lock that replaced
         the stale one between our read and our rename is restored
         instead of deleted — a bare unlink could delete another
         process's live lock and let two writers in. *)
      (match read_file path with
      | exception _ -> ()
      | s ->
          let stale =
            match int_of_string_opt (String.trim s) with
            | Some pid -> not (pid_alive pid)
            | None -> true
          in
          if stale then begin
            let victim =
              Filename.concat t.dir
                (Printf.sprintf ".lock.stale.%d.%d" (Unix.getpid ())
                   (next_seq t))
            in
            match Unix.rename path victim with
            | exception _ -> () (* another breaker won; retry the loop *)
            | () ->
                let unchanged =
                  match read_file victim with
                  | s' -> s' = s
                  | exception _ -> false
                in
                if unchanged then (try Sys.remove victim with _ -> ())
                else
                  (* we grabbed a lock re-created after our read: put it
                     back and let its owner finish *)
                  (try Unix.rename victim path with _ -> ())
          end);
      false
  | exception _ -> false

let release_lock t = try Sys.remove (lock_path t) with _ -> ()

let with_lock t f =
  let rec attempt n =
    if try_take_lock t then begin
      Fun.protect ~finally:(fun () -> release_lock t) f;
      true
    end
    else if n = 0 then false
    else begin
      (* brief bounded wait: the critical section is one rename *)
      (try Unix.sleepf 0.005 with _ -> ());
      attempt (n - 1)
    end
  in
  attempt 40

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let disable_writes t msg =
  let warn_now =
    locked t (fun () ->
        t.writes_ok <- false;
        if t.warned_write then false
        else begin
          t.warned_write <- true;
          true
        end)
  in
  if warn_now then t.warn ("cache writes disabled: " ^ msg)

let write_atomic t ~path blob =
  let tmp =
    Filename.concat t.dir
      (Printf.sprintf ".tmp.%d.%d" (Unix.getpid ()) (next_seq t))
  in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  match
    let len = String.length blob in
    let pos = ref 0 in
    while !pos < len do
      pos := !pos + Unix.write_substring fd blob !pos (len - !pos)
    done;
    Unix.fsync fd
  with
  | () ->
      Unix.close fd;
      Unix.rename tmp path
  | exception e ->
      (try Unix.close fd with _ -> ());
      (try Sys.remove tmp with _ -> ());
      raise e

let store t ~kind ~key ~deps payload =
  if not (locked t (fun () -> t.writes_ok)) then
    locked t (fun () -> t.st.write_skips <- t.st.write_skips + 1)
  else
    let path = entry_path t ~kind ~key in
    let blob = encode ~ctx:t.ctx ~key ~deps payload in
    let wrote =
      try
        with_lock t (fun () ->
            write_atomic t ~path blob;
            locked t (fun () ->
                t.st.bytes_written <-
                  t.st.bytes_written + String.length blob))
      with
      | Unix.Unix_error (e, _, _) ->
          disable_writes t (Unix.error_message e);
          false
      | Sys_error m ->
          disable_writes t m;
          false
      | _ ->
          disable_writes t "write failed";
          false
    in
    if not wrote then
      locked t (fun () -> t.st.write_skips <- t.st.write_skips + 1)

(* ------------------------------------------------------------------ *)
(* Stats rendering                                                     *)
(* ------------------------------------------------------------------ *)

let pp_stats ppf (s : stats) =
  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let kinds =
    sorted s.by_kind
    |> List.map (fun (k, (h, m)) -> Printf.sprintf "%s %d/%d" k h (h + m))
  in
  let rejects =
    sorted s.rejects |> List.map (fun (k, n) -> Printf.sprintf "%s %d" k n)
  in
  Fmt.pf ppf
    "hits %d, misses %d, rejects [%s], read %d B, wrote %d B, evicted %d, \
     skipped writes %d, per-kind hits [%s]"
    s.hits s.misses
    (String.concat ", " rejects)
    s.bytes_read s.bytes_written s.evictions s.write_skips
    (String.concat ", " kinds)
