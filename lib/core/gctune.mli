(** Garbage-collector tuning for batch analysis runs: a small,
    deterministic knob over [Gc.set]. See the implementation header for
    the rationale and the benchmarked [Batch] numbers. *)

type t =
  | Off  (** leave the runtime untouched *)
  | Batch  (** the tuned batch-analysis profile *)
  | Custom of (string * int) list
      (** explicit control-field assignments, validated by {!parse} *)

val batch_minor_words : int
(** the [Batch] profile's minor heap size, in words *)

val batch_space_overhead : int
(** the [Batch] profile's [space_overhead] *)

val parse : string -> (t, string) result
(** ["off"]/[""] → [Off]; ["batch"] → [Batch]; a comma-separated [k=v]
    list → [Custom]. Unknown keys and non-integer values are [Error]. *)

val apply : t -> unit
(** apply via [Gc.set]; [Off] is a no-op *)

val setup : ?flag:string -> unit -> (string, string) result
(** resolve [?flag] (wins when non-empty) against the [TYPEQUAL_GC]
    environment variable and apply; returns a description of the applied
    setting or the parse error *)
