(** Atomic qualifier-constraint solver (Sections 3.1–3.2 of the paper) —
    flat-arena implementation.

    The constraint system and algorithms are exactly those of the PR 5
    solver (kept verbatim as {!Solver_ref}): masked atomic constraints
    over a Birkhoff-encoded lattice, union-find with partial online cycle
    elimination, insertion-time edge/bound dedup, incremental worklist
    solving with a monotone error table, recorded constraint schemes with
    renaming instantiation, and batched absorb for the parallel engine.

    What changed is the {e representation} (DESIGN.md, "Flat-arena
    solver"):

    - Variable state (union-find parent/rank, constant bounds, current
      least/greatest solution, adjacency heads) lives in dense [int]
      columns indexed by the creation-order id. A [var] handle is a tiny
      immutable record — id, name, uid, store back-pointer — shared with
      atoms, schemes and error values, so the public interface is
      unchanged.
    - Adjacency is a linked {e edge arena}: per logical edge one succ cell
      and one pred cell in the packed [ecells] arena, chained by the
      cell's next slot with
      prepend-to-head insertion, so enumeration order matches the old
      list-prepend order cell for cell. Cycle collapse relinks cells
      between chains without allocating.
    - The [(src, dst, mask)] edge-dedup and [(rep, const, mask, side)]
      bound-dedup tables are open-addressing int-keyed hash sets
      ([Iset]) — no tuple allocation, no polymorphic hashing.
    - The propagation worklist is an int ring buffer with a byte-array
      in-queue mark; the dirty set is an insertion-ordered int stack with
      a byte-array membership mark.
    - [absorb] bulk-creates the batch's fresh variables in one tight loop
      over the exported arena segment and replays atoms through the normal
      entry points, so dedup and cycle collapse apply exactly as in a
      serial run.

    Counter-for-counter and byte-for-byte, the observable behaviour
    (solutions, error messages, {!stats}) matches {!Solver_ref}; the
    parity property tests drive both stores through identical operation
    sequences and diff everything. *)

module Elt = Lattice.Elt
module Space = Lattice.Space

type reason = string option

(* ------------------------------------------------------------------ *)
(* Open-addressing int-keyed hash set (4-int keys)                     *)
(* ------------------------------------------------------------------ *)

(* The dedup tables: linear probing over a power-of-two table, keys
   stored inline in a flat [int array] (4 slots per entry), occupancy in
   a byte array. Deterministic by construction (the hash mixes the key
   ints only), so dedup decisions — which feed the [edges_deduped]
   counter — are reproducible across runs and across solver cores. *)
module Iset = struct
  type t = {
    mutable keys : int array;  (* 4 * cap *)
    mutable state : Bytes.t;   (* cap bytes; '\001' = occupied *)
    mutable cap : int;         (* power of two *)
    mutable count : int;
  }

  let create ?(cap = 64) () =
    { keys = Array.make (4 * cap) 0; state = Bytes.make cap '\000'; cap;
      count = 0 }

  let hash a b c d =
    ((a * 0x9E3779B1) lxor (b * 0x85EBCA77) lxor (c * 0xC2B2AE35)
     lxor (d * 0x27D4EB2F))
    land max_int

  (* membership test that inserts on miss; returns [true] iff the key was
     already present *)
  let rec mem_add s a b c d =
    if 2 * s.count >= s.cap then grow s;
    let m = s.cap - 1 in
    let i = ref (hash a b c d land m) in
    let r = ref (-1) in
    while !r < 0 do
      let j = !i in
      if Bytes.unsafe_get s.state j = '\000' then begin
        Bytes.unsafe_set s.state j '\001';
        let k = 4 * j in
        Array.unsafe_set s.keys k a;
        Array.unsafe_set s.keys (k + 1) b;
        Array.unsafe_set s.keys (k + 2) c;
        Array.unsafe_set s.keys (k + 3) d;
        s.count <- s.count + 1;
        r := 0
      end
      else begin
        let k = 4 * j in
        if
          Array.unsafe_get s.keys k = a
          && Array.unsafe_get s.keys (k + 1) = b
          && Array.unsafe_get s.keys (k + 2) = c
          && Array.unsafe_get s.keys (k + 3) = d
        then r := 1
        else i := (j + 1) land m
      end
    done;
    !r = 1

  and grow s =
    let ocap = s.cap and okeys = s.keys and ostate = s.state in
    s.cap <- s.cap * 2;
    s.keys <- Array.make (4 * s.cap) 0;
    s.state <- Bytes.make s.cap '\000';
    s.count <- 0;
    for j = 0 to ocap - 1 do
      if Bytes.unsafe_get ostate j = '\001' then begin
        let k = 4 * j in
        ignore
          (mem_add s okeys.(k) okeys.(k + 1) okeys.(k + 2) okeys.(k + 3))
      end
    done
end

(* ------------------------------------------------------------------ *)
(* Store layout                                                        *)
(* ------------------------------------------------------------------ *)

type var = {
  id : int;  (* stable creation-order id; the arena index *)
  vname : string;
  uid : int;
      (* globally unique across stores (atomic counter); renaming maps
         that can mix variables of two stores key on it *)
  store : t;  (* back-pointer: lets [repr] resolve without a store arg *)
}

and t = {
  sp : Space.t;
  mutable nvars : int;
  (* variable columns, indexed by id; grown together *)
  mutable objs : var array;  (* id -> the (unique) handle *)
  mutable parent : int array;  (* union-find: self iff representative *)
  mutable rank : int array;
  mutable lo_bound : int array;  (* join of constant lower bounds *)
  mutable hi_bound : int array;  (* meet of constant upper bounds *)
  mutable lo : int array;  (* least solution, valid after [solve] *)
  mutable hi : int array;  (* greatest solution *)
  mutable succ_head : int array;  (* head cell of the succ chain, -1 end *)
  mutable pred_head : int array;
  mutable lo_reasons : (Elt.t * int * reason) list array;  (* provenance *)
  mutable hi_reasons : (Elt.t * int * reason) list array;
  (* edge arena: one cell per chain entry (two per logical edge) *)
  mutable ecells : int array;
      (* 3 ints per cell, adjacent: dst, mask, next — one cache line per
         traversal step, the reason the chains beat pointer-chased lists *)
  mutable e_reason : reason array;
  mutable necells : int;
  (* the atom log, insertion order *)
  mutable log : atom array;
  mutable nlog : int;
  mutable ground_errors : error list;
  errors : (int, error) Hashtbl.t;
      (* persistent bound-violation table, keyed by the representative id
         at detection time; monotone since constraints are only added *)
  mutable recorders : atom list ref list;
  mutable solved : bool;
  (* dirty set: insertion-ordered stack + membership mark. Removal clears
     the mark and leaves a stale stack entry; re-marking pushes again —
     seeding filters on the mark, so semantics match a Hashtbl dirty set
     with a separate insertion-order list. *)
  mutable dirty_stack : int array;
  mutable ndirty : int;
  mutable dirty_mark : Bytes.t;
  (* propagation worklist: int ring buffer with monotonic head/tail over
     a power-of-two array, plus an in-queue byte mark *)
  mutable wl : int array;
  mutable wl_head : int;
  mutable wl_tail : int;
  mutable inq : Bytes.t;
  (* representatives popped by the last propagate, in pop order *)
  mutable touched : int array;
  mutable ntouched : int;
  mutable fp_stamp : int array;
      (* generation-stamped seen-set for the cycle-detection DFS: a slot
         equal to [fp_gen] means visited this call — no per-call allocation *)
  mutable fp_gen : int;
  edge_seen : Iset.t;  (* (src, dst, mask, 0) *)
  bound_seen : Iset.t;
      (* ((rep << 1) | is_upper, const, mask, 0): constant bounds already
         applied to a representative *)
  cycle_elim : bool;
  mutable budget : Budget.t option;
  mutable s_unified : int;
  mutable s_edges : int;
  mutable s_dedup : int;
  mutable s_cycles : int;
  mutable s_incr : int;
  mutable s_full : int;
  mutable s_pops : int;
  mutable s_solve_s : float;
  mutable s_absorb_s : float;
  (* per-phase wall time, accumulated here so one record travels with the
     store: compact/instantiate are credited by this module, the analysis
     phases (congen/generalize/report) by the client via [note_phase] *)
  mutable s_congen_s : float;
  mutable s_generalize_s : float;
  mutable s_compact_s : float;
  mutable s_instantiate_s : float;
  mutable s_report_s : float;
  mutable s_sv_before : int;
  mutable s_sv_after : int;
  mutable s_se_before : int;
  mutable s_se_after : int;
  mutable s_memo_hits : int;
  (* why instantiation-memo candidates were rejected (or missed): the
     counters that keep the memo from silently going dead again *)
  mutable s_memo_cands : int;
  mutable s_memo_nonflat : int;
  mutable s_memo_violate : int;
  mutable s_memo_misses : int;
  mutable s_skipped_batches : int;
}

and atom =
  | Avc of var * Elt.t * int * reason  (* var <= const on mask *)
  | Acv of Elt.t * var * int * reason  (* const <= var on mask *)
  | Avv of var * var * int * reason    (* var <= var on mask *)

and error = {
  err_var : var option;
  err_msg : string;
}

type stats = {
  vars_created : int;
  vars_unified : int;
  edges_added : int;
  edges_deduped : int;
  cycles_collapsed : int;
  incr_solves : int;
  full_solves : int;
  worklist_pops : int;
  solve_s : float;
  absorb_s : float;
  congen_s : float;
  generalize_s : float;
  compact_s : float;
  instantiate_s : float;
  report_s : float;
  scheme_vars_before : int;
  scheme_vars_after : int;
  scheme_edges_before : int;
  scheme_edges_after : int;
  instantiations_memo_hits : int;
  memo_candidates : int;
  memo_reject_nonflat_ret : int;
  memo_reject_may_violate : int;
  memo_misses : int;
  empty_batches_skipped : int;
  heap_words : int;
  top_heap_words : int;
  cores_available : int;
}

let create ?(cycle_elim = true) space =
  {
    sp = space;
    nvars = 0;
    objs = [||];
    parent = [||];
    rank = [||];
    lo_bound = [||];
    hi_bound = [||];
    lo = [||];
    hi = [||];
    succ_head = [||];
    pred_head = [||];
    lo_reasons = [||];
    hi_reasons = [||];
    ecells = [||];
    e_reason = [||];
    necells = 0;
    log = [||];
    nlog = 0;
    ground_errors = [];
    errors = Hashtbl.create 16;
    recorders = [];
    solved = false;
    dirty_stack = Array.make 64 0;
    ndirty = 0;
    dirty_mark = Bytes.create 0;
    wl = Array.make 64 0;
    wl_head = 0;
    wl_tail = 0;
    inq = Bytes.create 0;
    touched = Array.make 64 0;
    fp_stamp = [||];
    fp_gen = 0;
    ntouched = 0;
    edge_seen = Iset.create ~cap:256 ();
    bound_seen = Iset.create ~cap:256 ();
    cycle_elim;
    budget = None;
    s_unified = 0;
    s_edges = 0;
    s_dedup = 0;
    s_cycles = 0;
    s_incr = 0;
    s_full = 0;
    s_pops = 0;
    s_solve_s = 0.;
    s_absorb_s = 0.;
    s_congen_s = 0.;
    s_generalize_s = 0.;
    s_compact_s = 0.;
    s_instantiate_s = 0.;
    s_report_s = 0.;
    s_sv_before = 0;
    s_sv_after = 0;
    s_se_before = 0;
    s_se_after = 0;
    s_memo_hits = 0;
    s_memo_cands = 0;
    s_memo_nonflat = 0;
    s_memo_violate = 0;
    s_memo_misses = 0;
    s_skipped_batches = 0;
  }

let space t = t.sp
let num_vars t = t.nvars
let set_budget t b = t.budget <- b

let budget_tripped t =
  match t.budget with Some b -> Budget.is_exhausted b | None -> false

let stats t =
  {
    vars_created = t.nvars;
    vars_unified = t.s_unified;
    edges_added = t.s_edges;
    edges_deduped = t.s_dedup;
    cycles_collapsed = t.s_cycles;
    incr_solves = t.s_incr;
    full_solves = t.s_full;
    worklist_pops = t.s_pops;
    solve_s = t.s_solve_s;
    absorb_s = t.s_absorb_s;
    congen_s = t.s_congen_s;
    generalize_s = t.s_generalize_s;
    compact_s = t.s_compact_s;
    instantiate_s = t.s_instantiate_s;
    report_s = t.s_report_s;
    scheme_vars_before = t.s_sv_before;
    scheme_vars_after = t.s_sv_after;
    scheme_edges_before = t.s_se_before;
    scheme_edges_after = t.s_se_after;
    instantiations_memo_hits = t.s_memo_hits;
    memo_candidates = t.s_memo_cands;
    memo_reject_nonflat_ret = t.s_memo_nonflat;
    memo_reject_may_violate = t.s_memo_violate;
    memo_misses = t.s_memo_misses;
    empty_batches_skipped = t.s_skipped_batches;
    heap_words = (Gc.quick_stat ()).Gc.heap_words;
    top_heap_words = (Gc.quick_stat ()).Gc.top_heap_words;
    cores_available = Domain.recommended_domain_count ();
  }

let merge_aux_stats t (s : stats) =
  t.s_sv_before <- t.s_sv_before + s.scheme_vars_before;
  t.s_sv_after <- t.s_sv_after + s.scheme_vars_after;
  t.s_se_before <- t.s_se_before + s.scheme_edges_before;
  t.s_se_after <- t.s_se_after + s.scheme_edges_after;
  t.s_memo_hits <- t.s_memo_hits + s.instantiations_memo_hits;
  t.s_memo_cands <- t.s_memo_cands + s.memo_candidates;
  t.s_memo_nonflat <- t.s_memo_nonflat + s.memo_reject_nonflat_ret;
  t.s_memo_violate <- t.s_memo_violate + s.memo_reject_may_violate;
  t.s_memo_misses <- t.s_memo_misses + s.memo_misses;
  (* phase times from worker stores fold in as CPU seconds: in a parallel
     run the per-phase columns sum work across domains (wall time is what
     analyze_s reports); solve/absorb stay shared-store-side as before *)
  t.s_congen_s <- t.s_congen_s +. s.congen_s;
  t.s_generalize_s <- t.s_generalize_s +. s.generalize_s;
  t.s_compact_s <- t.s_compact_s +. s.compact_s;
  t.s_instantiate_s <- t.s_instantiate_s +. s.instantiate_s;
  t.s_skipped_batches <- t.s_skipped_batches + s.empty_batches_skipped

let note_memo_hit t = t.s_memo_hits <- t.s_memo_hits + 1
let note_memo_candidate t = t.s_memo_cands <- t.s_memo_cands + 1
let note_memo_reject_nonflat_ret t = t.s_memo_nonflat <- t.s_memo_nonflat + 1

let note_memo_reject_may_violate t =
  t.s_memo_violate <- t.s_memo_violate + 1

let note_memo_miss t = t.s_memo_misses <- t.s_memo_misses + 1
let note_skipped_batch t = t.s_skipped_batches <- t.s_skipped_batches + 1

type phase = Congen | Generalize | Compact | Instantiate | Report

let note_phase t p dt =
  match p with
  | Congen -> t.s_congen_s <- t.s_congen_s +. dt
  | Generalize -> t.s_generalize_s <- t.s_generalize_s +. dt
  | Compact -> t.s_compact_s <- t.s_compact_s +. dt
  | Instantiate -> t.s_instantiate_s <- t.s_instantiate_s +. dt
  | Report -> t.s_report_s <- t.s_report_s +. dt

let phase_seconds t = function
  | Congen -> t.s_congen_s
  | Generalize -> t.s_generalize_s
  | Compact -> t.s_compact_s
  | Instantiate -> t.s_instantiate_s
  | Report -> t.s_report_s

let pp_stats ppf s =
  Fmt.pf ppf
    "vars %d (%d unified), edges %d (%d deduped), cycles %d, solves %d incr + \
     %d full, %d worklist pops, %.3fs solving, %.3fs absorbing; compaction: \
     scheme vars %d -> %d, scheme atoms %d -> %d, %d memoized \
     instantiations, %d empty batches skipped"
    s.vars_created s.vars_unified s.edges_added s.edges_deduped
    s.cycles_collapsed s.incr_solves s.full_solves s.worklist_pops s.solve_s
    s.absorb_s s.scheme_vars_before s.scheme_vars_after s.scheme_edges_before
    s.scheme_edges_after s.instantiations_memo_hits s.empty_batches_skipped;
  Fmt.pf ppf
    "; memo: %d candidates, %d misses, %d nonflat-ret, %d may-violate"
    s.memo_candidates s.memo_misses s.memo_reject_nonflat_ret
    s.memo_reject_may_violate;
  Fmt.pf ppf
    "; phases: congen %.3fs generalize %.3fs compact %.3fs instantiate \
     %.3fs report %.3fs"
    s.congen_s s.generalize_s s.compact_s s.instantiate_s s.report_s;
  Fmt.pf ppf "; heap %d words (peak %d), %d cores" s.heap_words
    s.top_heap_words s.cores_available

(* ------------------------------------------------------------------ *)
(* Arena growth and variable creation                                  *)
(* ------------------------------------------------------------------ *)

let grow_int a cap' =
  let b = Array.make cap' 0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_bytes a cap' =
  let b = Bytes.make cap' '\000' in
  Bytes.blit a 0 b 0 (Bytes.length a);
  b

(* grow every per-variable column to hold id [t.nvars]; [v] supplies the
   fill value for [objs] (an empty store has no var to fabricate one) *)
let ensure_var_capacity t v =
  let cap = Array.length t.parent in
  if t.nvars >= cap then begin
    let cap' = if cap = 0 then 64 else cap * 2 in
    t.parent <- grow_int t.parent cap';
    t.rank <- grow_int t.rank cap';
    t.lo_bound <- grow_int t.lo_bound cap';
    t.hi_bound <- grow_int t.hi_bound cap';
    t.lo <- grow_int t.lo cap';
    t.hi <- grow_int t.hi cap';
    t.succ_head <- grow_int t.succ_head cap';
    t.pred_head <- grow_int t.pred_head cap';
    (let b = Array.make cap' v in
     Array.blit t.objs 0 b 0 cap;
     t.objs <- b);
    (let b = Array.make cap' [] in
     Array.blit t.lo_reasons 0 b 0 cap;
     t.lo_reasons <- b);
    (let b = Array.make cap' [] in
     Array.blit t.hi_reasons 0 b 0 cap;
     t.hi_reasons <- b);
    t.dirty_mark <- grow_bytes t.dirty_mark cap';
    t.inq <- grow_bytes t.inq cap';
    t.fp_stamp <- grow_int t.fp_stamp cap'
  end

let ensure_edge_capacity t =
  let cap = Array.length t.e_reason in
  if t.necells >= cap then begin
    let cap' = if cap = 0 then 256 else cap * 2 in
    t.ecells <- grow_int t.ecells (3 * cap');
    let b = Array.make cap' None in
    Array.blit t.e_reason 0 b 0 cap;
    t.e_reason <- b
  end

let uid_counter = Atomic.make 0

let fresh ?(name = "q") t =
  let id = t.nvars in
  let v =
    { id; vname = name; uid = Atomic.fetch_and_add uid_counter 1; store = t }
  in
  ensure_var_capacity t v;
  t.objs.(id) <- v;
  t.parent.(id) <- id;
  t.rank.(id) <- 0;
  t.lo_bound.(id) <- Elt.bottom t.sp;
  t.hi_bound.(id) <- Elt.top t.sp;
  t.lo.(id) <- Elt.bottom t.sp;
  t.hi.(id) <- Elt.top t.sp;
  t.succ_head.(id) <- -1;
  t.pred_head.(id) <- -1;
  t.lo_reasons.(id) <- [];
  t.hi_reasons.(id) <- [];
  t.nvars <- id + 1;
  Option.iter Budget.note_var t.budget;
  (* a fresh variable has no constraints: its current (lo, hi) is already
     its solution, so [solved] and the dirty set are untouched *)
  v

let var_id v = v.id
let var_uid v = v.uid
let var_name v = v.vname
let pp_var ppf v = Fmt.pf ppf "%s#%d" v.vname v.id

(* union-find over the parent column, with path compression *)
let rec find_id t i =
  let p = Array.unsafe_get t.parent i in
  if p = i then i
  else begin
    let r = find_id t p in
    Array.unsafe_set t.parent i r;
    r
  end

let repr v =
  let t = v.store in
  t.objs.(find_id t v.id)

let record t atom = List.iter (fun r -> r := atom :: !r) t.recorders

let log_atom t atom =
  record t atom;
  let cap = Array.length t.log in
  if t.nlog >= cap then begin
    let cap' = if cap = 0 then 256 else cap * 2 in
    let b = Array.make cap' atom in
    Array.blit t.log 0 b 0 cap;
    t.log <- b
  end;
  t.log.(t.nlog) <- atom;
  t.nlog <- t.nlog + 1

let mark_dirty t i =
  if Bytes.unsafe_get t.dirty_mark i = '\000' then begin
    Bytes.unsafe_set t.dirty_mark i '\001';
    let cap = Array.length t.dirty_stack in
    if t.ndirty >= cap then t.dirty_stack <- grow_int t.dirty_stack (cap * 2);
    t.dirty_stack.(t.ndirty) <- i;
    t.ndirty <- t.ndirty + 1
  end

let dirty_remove t i = Bytes.unsafe_set t.dirty_mark i '\000'

let dirty_reset t =
  for k = 0 to t.ndirty - 1 do
    Bytes.unsafe_set t.dirty_mark t.dirty_stack.(k) '\000'
  done;
  t.ndirty <- 0

(* ------------------------------------------------------------------ *)
(* Adding constraints                                                  *)
(* ------------------------------------------------------------------ *)

let new_cell t dst mask reason next =
  ensure_edge_capacity t;
  let e = t.necells in
  let b = 3 * e in
  t.ecells.(b) <- dst;
  t.ecells.(b + 1) <- mask;
  t.ecells.(b + 2) <- next;
  t.e_reason.(e) <- reason;
  t.necells <- e + 1;
  e

(* var <= const, restricted to the coordinates in [mask]. Constant bounds
   are deduplicated on insertion like edges: a repeated instantiation that
   re-derives an identical bound on the same representative is counted as
   deduped and adds nothing — in particular no provenance entry, so
   [hi_reasons] stops growing with the instantiation count. The dedup key
   packs the side flag into the representative id's low bit. *)
let add_leq_vc ?reason ?mask t v c =
  let mask = Option.value mask ~default:(Elt.full_mask t.sp) in
  log_atom t (Avc (v, c, mask, reason));
  let r = find_id t v.id in
  if Iset.mem_add t.bound_seen ((r lsl 1) lor 1) c mask 0 then
    t.s_dedup <- t.s_dedup + 1
  else begin
    t.hi_reasons.(r) <- (c, mask, reason) :: t.hi_reasons.(r);
    let hb' = Elt.meet t.sp t.hi_bound.(r) (Elt.embed_top t.sp ~mask c) in
    if hb' <> t.hi_bound.(r) then begin
      t.hi_bound.(r) <- hb';
      t.hi.(r) <- Elt.meet t.sp t.hi.(r) hb';
      t.solved <- false;
      mark_dirty t r
    end
  end

(* const <= var, restricted to [mask]. Dual of [add_leq_vc]. *)
let add_leq_cv ?reason ?mask t c v =
  let mask = Option.value mask ~default:(Elt.full_mask t.sp) in
  log_atom t (Acv (c, v, mask, reason));
  let r = find_id t v.id in
  if Iset.mem_add t.bound_seen ((r lsl 1) lor 0) c mask 0 then
    t.s_dedup <- t.s_dedup + 1
  else begin
    t.lo_reasons.(r) <- (c, mask, reason) :: t.lo_reasons.(r);
    let lb' = Elt.join t.sp t.lo_bound.(r) (Elt.embed_bottom t.sp ~mask c) in
    if lb' <> t.lo_bound.(r) then begin
      t.lo_bound.(r) <- lb';
      t.lo.(r) <- Elt.join t.sp t.lo.(r) lb';
      t.solved <- false;
      mark_dirty t r
    end
  end

(* Merge representative [o] into representative [r] (rank order decided by
   the caller): bounds join/meet, provenance concatenates, and [o]'s edge
   cells are {e relinked} into [r]'s chains — no allocation — with
   self-loops dropped and duplicates skipped. Cells left behind (dropped
   self-loops/duplicates) simply go dead in the arena. Stale cells naming
   [o] as a destination in other chains stay; traversal resolves every
   endpoint through [find_id]. *)
let absorb_id t r o =
  let sp = t.sp in
  t.parent.(o) <- r;
  t.lo_bound.(r) <- Elt.join sp t.lo_bound.(r) t.lo_bound.(o);
  t.hi_bound.(r) <- Elt.meet sp t.hi_bound.(r) t.hi_bound.(o);
  t.lo.(r) <- Elt.join sp t.lo.(r) t.lo.(o);
  t.hi.(r) <- Elt.meet sp t.hi.(r) t.hi.(o);
  t.lo_reasons.(r) <- List.rev_append t.lo_reasons.(o) t.lo_reasons.(r);
  t.hi_reasons.(r) <- List.rev_append t.hi_reasons.(o) t.hi_reasons.(r);
  t.lo_reasons.(o) <- [];
  t.hi_reasons.(o) <- [];
  let e = ref t.succ_head.(o) in
  t.succ_head.(o) <- -1;
  while !e >= 0 do
    let cell = !e in
    let b = 3 * cell in
    e := t.ecells.(b + 2);
    let s = find_id t t.ecells.(b) in
    if s <> r then begin
      if Iset.mem_add t.edge_seen r s t.ecells.(b + 1) 0 then
        t.s_dedup <- t.s_dedup + 1
      else begin
        t.ecells.(b) <- s;
        t.ecells.(b + 2) <- t.succ_head.(r);
        t.succ_head.(r) <- cell
      end
    end
  done;
  let e = ref t.pred_head.(o) in
  t.pred_head.(o) <- -1;
  while !e >= 0 do
    let cell = !e in
    let b = 3 * cell in
    e := t.ecells.(b + 2);
    let p = find_id t t.ecells.(b) in
    if p <> r then begin
      if Iset.mem_add t.edge_seen p r t.ecells.(b + 1) 0 then
        t.s_dedup <- t.s_dedup + 1
      else begin
        t.ecells.(b) <- p;
        t.ecells.(b + 2) <- t.pred_head.(r);
        t.pred_head.(r) <- cell
      end
    end
  done;
  t.s_unified <- t.s_unified + 1;
  dirty_remove t o;
  mark_dirty t r

let union_id t a b =
  let a = find_id t a and b = find_id t b in
  if a = b then a
  else begin
    let r, o = if t.rank.(a) >= t.rank.(b) then (a, b) else (b, a) in
    if t.rank.(r) = t.rank.(o) then t.rank.(r) <- t.rank.(r) + 1;
    absorb_id t r o;
    r
  end

(* Bounded DFS over full-mask edges from [src] looking for [dst]; returns
   the path of representative ids (src first, dst last). The budget bounds
   total edge traversals, keeping cycle detection cheap on large graphs —
   partial online cycle elimination: missing a long cycle only costs
   propagation work, never soundness. *)
let cycle_budget = 64

let find_path t src dst =
  let full = Elt.full_mask t.sp in
  t.fp_gen <- t.fp_gen + 1;
  let gen = t.fp_gen in
  let steps = ref 0 in
  let rec go v =
    let v = find_id t v in
    if v = dst then Some [ v ]
    else if Array.unsafe_get t.fp_stamp v = gen || !steps >= cycle_budget
    then None
    else begin
      Array.unsafe_set t.fp_stamp v gen;
      let rec try_edges e =
        if e < 0 then None
        else begin
          incr steps;
          let b = 3 * e in
          if Array.unsafe_get t.ecells (b + 1) land full = full then (
            match go (Array.unsafe_get t.ecells b) with
            | Some p -> Some (v :: p)
            | None -> try_edges (Array.unsafe_get t.ecells (b + 2)))
          else try_edges (Array.unsafe_get t.ecells (b + 2))
        end
      in
      try_edges t.succ_head.(v)
    end
  in
  go src

(* The edge [ra <= rb] was just inserted; a path [rb ~> ra] over full-mask
   edges closes a cycle, and every variable on it takes the same value in
   any solution — unify the lot. *)
let try_collapse t ra rb =
  match find_path t rb ra with
  | None | Some [] -> ()
  | Some (first :: rest) ->
      t.s_cycles <- t.s_cycles + 1;
      ignore (List.fold_left (fun acc v -> union_id t acc v) first rest)

(* var <= var, restricted to [mask]. *)
let add_leq_vv ?reason ?mask t a b =
  if a != b then begin
    let mask = Option.value mask ~default:(Elt.full_mask t.sp) in
    log_atom t (Avv (a, b, mask, reason));
    let ra = find_id t a.id and rb = find_id t b.id in
    if ra <> rb then begin
      if Iset.mem_add t.edge_seen ra rb mask 0 then
        t.s_dedup <- t.s_dedup + 1
        (* the identical edge already exists between these representatives:
           the system is unchanged, [solved] stays valid *)
      else begin
        t.s_edges <- t.s_edges + 1;
        t.succ_head.(ra) <- new_cell t rb mask reason t.succ_head.(ra);
        t.pred_head.(rb) <- new_cell t ra mask reason t.pred_head.(rb);
        t.solved <- false;
        mark_dirty t ra;
        mark_dirty t rb;
        if t.cycle_elim && Elt.is_full_mask t.sp mask then
          try_collapse t ra rb
      end
    end
  end

(* Ground constraint const <= const: checked immediately (mask-restricted). *)
let add_leq_cc ?reason ?mask t c1 c2 =
  let mask = Option.value mask ~default:(Elt.full_mask t.sp) in
  if not (Elt.leq_masked t.sp ~mask c1 c2) then
    t.ground_errors <-
      {
        err_var = None;
        err_msg =
          Fmt.str "unsatisfiable ground constraint %a <= %a%a"
            (Elt.pp_full t.sp) c1 (Elt.pp_full t.sp) c2
            Fmt.(option (any " (" ++ string ++ any ")"))
            reason;
      }
      :: t.ground_errors

let add_eq_vv ?reason ?mask t a b =
  add_leq_vv ?reason ?mask t a b;
  add_leq_vv ?reason ?mask t b a

(* Pin a variable to exactly [c] (used by annotations, whose rule types the
   result as exactly [l tau]). *)
let add_eq_vc ?reason ?mask t v c =
  add_leq_vc ?reason ?mask t v c;
  add_leq_cv ?reason ?mask t c v

(* ------------------------------------------------------------------ *)
(* Solving                                                             *)
(* ------------------------------------------------------------------ *)

(* ring-buffer worklist: head/tail are monotonic, indices wrap with a
   power-of-two mask; the [inq] byte per variable dedups pushes *)
let wl_push t i =
  if Bytes.unsafe_get t.inq i = '\000' then begin
    Bytes.unsafe_set t.inq i '\001';
    let cap = Array.length t.wl in
    if t.wl_tail - t.wl_head = cap then begin
      (* full: double, copying the live region in queue order *)
      let cap' = cap * 2 in
      let w = Array.make cap' 0 in
      for k = 0 to cap - 1 do
        w.(k) <- t.wl.((t.wl_head + k) land (cap - 1))
      done;
      t.wl <- w;
      t.wl_head <- 0;
      t.wl_tail <- cap
    end;
    Array.unsafe_set t.wl (t.wl_tail land (Array.length t.wl - 1)) i;
    t.wl_tail <- t.wl_tail + 1
  end

let wl_pop t =
  let i = Array.unsafe_get t.wl (t.wl_head land (Array.length t.wl - 1)) in
  t.wl_head <- t.wl_head + 1;
  Bytes.unsafe_set t.inq i '\000';
  i

(* drain without processing, clearing the in-queue marks (a tripped budget
   leaves entries behind; the marks are persistent state and must not leak
   into the next pass) *)
let wl_reset t =
  let m = Array.length t.wl - 1 in
  for k = t.wl_head to t.wl_tail - 1 do
    Bytes.unsafe_set t.inq t.wl.(k land m) '\000'
  done;
  t.wl_head <- 0;
  t.wl_tail <- 0

let touched_push t i =
  let cap = Array.length t.touched in
  if t.ntouched >= cap then t.touched <- grow_int t.touched (cap * 2);
  Array.unsafe_set t.touched t.ntouched i;
  t.ntouched <- t.ntouched + 1

(* One worklist pass. [seed] supplies the initial frontier; propagation
   pushes [lo] joins along forward edges and [hi] meets along reversed
   edges. The lattice operations are inlined bit operations (join = lor,
   meet = land, embed_bottom = mask off, embed_top = mask off + fill the
   complement with top): this loop is the hot core of the solver and must
   not allocate. Every popped representative is appended to [touched] so
   the caller can re-check bound violations on exactly the affected
   region. *)
let propagate t ~seed =
  let top = Elt.top t.sp in
  t.ntouched <- 0;
  let push i = wl_push t (find_id t i) in
  (* A tripped budget drains the worklists without propagating: (lo, hi)
     are left partial, which is why budgeted runs are reported degraded
     and classified conservatively by the caller. *)
  (* least pass *)
  seed push;
  while t.wl_head < t.wl_tail && not (budget_tripped t) do
    let v = wl_pop t in
    t.s_pops <- t.s_pops + 1;
    Option.iter Budget.note_pop t.budget;
    touched_push t v;
    let lov = Array.unsafe_get t.lo v in
    let e = ref (Array.unsafe_get t.succ_head v) in
    while !e >= 0 do
      let b = 3 * !e in
      e := Array.unsafe_get t.ecells (b + 2);
      let d = Array.unsafe_get t.ecells b in
      let s = if Array.unsafe_get t.parent d = d then d else find_id t d in
      if s <> v then begin
        let los = Array.unsafe_get t.lo s in
        let lo' = los lor (lov land Array.unsafe_get t.ecells (b + 1)) in
        if lo' <> los then begin
          Array.unsafe_set t.lo s lo';
          wl_push t s
        end
      end
    done
  done;
  wl_reset t;
  (* greatest pass: dual, meets along reversed edges *)
  seed push;
  while t.wl_head < t.wl_tail && not (budget_tripped t) do
    let v = wl_pop t in
    t.s_pops <- t.s_pops + 1;
    Option.iter Budget.note_pop t.budget;
    touched_push t v;
    let hiv = Array.unsafe_get t.hi v in
    let e = ref (Array.unsafe_get t.pred_head v) in
    while !e >= 0 do
      let b = 3 * !e in
      e := Array.unsafe_get t.ecells (b + 2);
      let d = Array.unsafe_get t.ecells b in
      let p = if Array.unsafe_get t.parent d = d then d else find_id t d in
      if p <> v then begin
        let m = Array.unsafe_get t.ecells (b + 1) in
        let hip = Array.unsafe_get t.hi p in
        let hi' = hip land ((hiv land m) lor (top land lnot m)) in
        if hi' <> hip then begin
          Array.unsafe_set t.hi p hi';
          wl_push t p
        end
      end
    done
  done;
  wl_reset t

(* Explain why [v]'s least solution violates its upper bound: find the
   offending coordinate, then walk backwards (BFS over a queue) to a
   constant lower bound that raised it. *)
let explain t v =
  let vi = find_id t v.id in
  let sp = t.sp in
  let bad = ref None in
  for i = 0 to Space.size sp - 1 do
    if !bad = None then begin
      let mask = Elt.singleton_mask sp i in
      if not (Elt.leq_masked sp ~mask t.lo.(vi) t.hi_bound.(vi)) then
        bad := Some i
    end
  done;
  match !bad with
  | None -> Fmt.str "%a: bound violation" pp_var t.objs.(vi)
  | Some i ->
      let q = Space.qual sp i in
      let mask = Elt.singleton_mask sp i in
      (* the value of coordinate i that lo carries *)
      let coord_of x = x land mask in
      let target = coord_of t.lo.(vi) in
      (* BFS backwards for a var whose own constant lower bounds produce
         [target] on coordinate i *)
      let seen = Hashtbl.create 16 in
      let frontier = Queue.create () in
      Queue.push vi frontier;
      let found = ref None in
      while Option.is_none !found && not (Queue.is_empty frontier) do
        let u = Queue.pop frontier in
        if not (Hashtbl.mem seen u) then begin
          Hashtbl.add seen u ();
          if coord_of t.lo_bound.(u) = target && coord_of t.lo.(u) = target
          then
            let reason =
              List.find_map
                (fun (c, m, r) ->
                  if m land mask <> 0 && coord_of c = target then
                    Some (Option.value r ~default:"constant bound")
                  else None)
                t.lo_reasons.(u)
            in
            found :=
              Some (u, Option.value reason ~default:"constant bound")
          else begin
            let e = ref t.pred_head.(u) in
            while !e >= 0 do
              let cell = !e in
              let b = 3 * cell in
              e := t.ecells.(b + 2);
              let p = find_id t t.ecells.(b) in
              if t.ecells.(b + 1) land mask <> 0 && coord_of t.lo.(p) = target
              then Queue.push p frontier
            done
          end
        end
      done;
      let origin =
        match !found with
        | Some (u, r) -> Fmt.str "; forced at %a (%s)" pp_var t.objs.(u) r
        | None -> ""
      in
      let bound_reason =
        List.find_map
          (fun (_, m, r) ->
            if
              m land mask <> 0
              && not (Elt.leq_masked sp ~mask t.lo.(vi) t.hi_bound.(vi))
            then r
            else None)
          t.hi_reasons.(vi)
      in
      (* Ordered coordinates name the violating levels; classic two-point
         coordinates keep the historical message byte-for-byte. *)
      let levels =
        match Space.order sp i with
        | None -> ""
        | Some _ ->
            Fmt.str ": level %s exceeds bound %s"
              (Elt.level_name sp i t.lo.(vi))
              (Elt.level_name sp i t.hi_bound.(vi))
      in
      Fmt.str "qualifier %a of %a violates an upper bound%s%a%s" Qualifier.pp
        q pp_var t.objs.(vi) levels
        Fmt.(option (any " (" ++ string ++ any ")"))
        bound_reason origin

(* Public query surface for store-resident clients (the analysis daemon):
   explain one variable on demand instead of scanning [last_errors]. *)
let explain_var t v =
  let vi = find_id t v.id in
  if Elt.leq t.sp t.lo.(vi) t.hi_bound.(vi) then None else Some (explain t v)

let last_errors t =
  let var_errs = Hashtbl.fold (fun _ e acc -> e :: acc) t.errors [] in
  let var_errs =
    List.sort
      (fun a b ->
        let id e = match e.err_var with Some v -> v.id | None -> -1 in
        compare (id a) (id b))
      var_errs
  in
  List.rev_append t.ground_errors var_errs

(* Record a violation for every representative popped by the last
   propagate whose least solution escapes its constant upper bound.
   Violations are monotone (constraints are only added; [lo] only rises,
   [hi_bound] only falls), so entries never need revisiting. [explain]
   runs only here, after propagation has reached fixpoint, so it sees
   final [lo] values. Iterates in reverse pop order, matching the
   reference solver's touched-list order. *)
let check_violations t =
  for k = t.ntouched - 1 downto 0 do
    let i = t.touched.(k) in
    if
      (not (Hashtbl.mem t.errors i))
      && not (Elt.leq t.sp t.lo.(i) t.hi_bound.(i))
    then
      Hashtbl.add t.errors i
        { err_var = Some t.objs.(i); err_msg = explain t t.objs.(i) }
  done

let result_of_errors t =
  match last_errors t with [] -> Ok () | es -> Error es

(* Incremental solve: seed the worklists from the dirty set only. [lo] and
   [hi] already reflect every bound added since the last solve (the add_*
   functions fold new bounds in eagerly), so propagating from the dirty
   region reaches exactly the variables whose solution can have changed.
   Seeds go in dirty-set insertion order — deterministic and matched by
   the reference solver, so [worklist_pops] is comparable across cores. *)
let solve t =
  if not t.solved then begin
    let t0 = Unix.gettimeofday () in
    propagate t ~seed:(fun push ->
        for k = 0 to t.ndirty - 1 do
          let i = t.dirty_stack.(k) in
          if Bytes.unsafe_get t.dirty_mark i = '\001' then push i
        done);
    check_violations t;
    dirty_reset t;
    t.solved <- true;
    t.s_incr <- t.s_incr + 1;
    t.s_solve_s <- t.s_solve_s +. (Unix.gettimeofday () -. t0)
  end;
  result_of_errors t

(* Full solve: reset every representative to its bounds and propagate from
   everywhere (in reverse creation order, matching the reference solver's
   variable-list order). The ablation baseline for incremental solving,
   and a self-check hook (the fixpoint is unique, so the results must
   agree). *)
let solve_from_scratch t =
  let t0 = Unix.gettimeofday () in
  for i = t.nvars - 1 downto 0 do
    if t.parent.(i) = i then begin
      t.lo.(i) <- t.lo_bound.(i);
      t.hi.(i) <- t.hi_bound.(i)
    end
  done;
  propagate t ~seed:(fun push ->
      for i = t.nvars - 1 downto 0 do
        if t.parent.(i) = i then push i
      done);
  Hashtbl.reset t.errors;
  for i = t.nvars - 1 downto 0 do
    if
      t.parent.(i) = i
      && (not (Hashtbl.mem t.errors i))
      && not (Elt.leq t.sp t.lo.(i) t.hi_bound.(i))
    then
      Hashtbl.add t.errors i
        { err_var = Some t.objs.(i); err_msg = explain t t.objs.(i) }
  done;
  dirty_reset t;
  t.solved <- true;
  t.s_full <- t.s_full + 1;
  t.s_solve_s <- t.s_solve_s +. (Unix.gettimeofday () -. t0);
  result_of_errors t

let least t v =
  if not t.solved then ignore (solve t);
  t.lo.(find_id t v.id)

let greatest t v =
  if not t.solved then ignore (solve t);
  t.hi.(find_id t v.id)

(* Classification of one coordinate of a variable, per Section 4.4. *)
type verdict =
  | Forced_up    (* least solution already at the coordinate's top: "must be const" *)
  | Forced_down  (* greatest solution at its bottom: "must not be const" *)
  | Free         (* anything in between *)

let classify t v i =
  if not t.solved then ignore (solve t);
  let r = find_id t v.id in
  (* In the upset encoding a coordinate is at its sub-lattice top when its
     whole bit range is set and at its bottom when the range is clear; for
     a classic two-point qualifier "top" is presence (positive) or absence
     (negative), exactly the historical verdicts. *)
  let m = Elt.singleton_mask t.sp i in
  if t.lo.(r) land m = m then Forced_up
  else if t.hi.(r) land m = 0 then Forced_down
  else Free

let classify_name t v name = classify t v (Space.find t.sp name)

let pp_verdict ppf = function
  | Forced_up -> Fmt.string ppf "forced-up"
  | Forced_down -> Fmt.string ppf "forced-down"
  | Free -> Fmt.string ppf "free"

(* ------------------------------------------------------------------ *)
(* Recording and schemes (Section 3.2)                                 *)
(* ------------------------------------------------------------------ *)

(* Run [f], capturing every atom added during its execution (including
   atoms emitted by nested instantiations). Recorders nest. *)
let recording t f =
  let r = ref [] in
  t.recorders <- r :: t.recorders;
  Fun.protect
    ~finally:(fun () ->
      t.recorders <- List.filter (fun r' -> r' != r) t.recorders)
    (fun () ->
      let x = f () in
      (x, List.rev !r))

type scheme = {
  sid : int;
      (* unique scheme identity (atomic counter, globally unique across
         stores); instantiation-memo keys hang off it *)
  locals : var list;
  (* every variable local to the scheme: the generalized interface
     variables plus the existentially bound internals; all are renamed at
     instantiation so instances cannot interfere (Section 3.2) *)
  atoms : atom list;
}

let scheme_counter = Atomic.make 0

let make_scheme ~locals ~atoms =
  { sid = Atomic.fetch_and_add scheme_counter 1; locals; atoms }

let scheme_id s = s.sid
let scheme_locals s = s.locals
let scheme_atoms s = s.atoms

(* Re-emit the scheme's constraints under a fresh renaming of its locals.
   Returns the renaming so callers can rebuild the instantiated type.
   Atoms name original variables, so each instance re-derives its own
   edges (and hence its own unifications) among the fresh copies.

   [?bind] lets a caller resolve some scheme variables to existing
   variables of [t] instead of freshening them: the parallel analysis uses
   it to instantiate a scheme recorded in one store into another, mapping
   the first store's variables to their mirrors without materializing any
   extra copies (which would perturb variable-creation parity with the
   serial run). A bound variable is never freshened; a free variable that
   [bind] does not resolve is used as-is, exactly as before. *)
let instantiate ?bind t s =
  let t0 = Unix.gettimeofday () in
  let bound v = match bind with Some f -> f v | None -> None in
  let map = Hashtbl.create (List.length s.locals) in
  List.iter
    (fun v ->
      match bound v with
      | Some v' -> Hashtbl.replace map v.uid v'
      | None -> Hashtbl.replace map v.uid (fresh ~name:v.vname t))
    s.locals;
  let rn v =
    match Hashtbl.find_opt map v.uid with
    | Some v' -> v'
    | None -> ( match bound v with Some v' -> v' | None -> v)
  in
  List.iter
    (function
      | Avc (v, c, mask, reason) -> add_leq_vc ?reason ~mask t (rn v) c
      | Acv (c, v, mask, reason) -> add_leq_cv ?reason ~mask t c (rn v)
      | Avv (a, b, mask, reason) -> add_leq_vv ?reason ~mask t (rn a) (rn b))
    s.atoms;
  t.s_instantiate_s <- t.s_instantiate_s +. (Unix.gettimeofday () -. t0);
  rn

(* ------------------------------------------------------------------ *)
(* Batched constraint merge (parallel map-reduce support)              *)
(* ------------------------------------------------------------------ *)

(* A batch is the complete, ordered content of a store, exported as two
   array slices of the arena: every variable in creation order (= id
   order) and every atom in insertion order. Exporting a private worker
   store and absorbing it into the shared store replays exactly the
   operations the serial analysis would have performed, so dedup, cycle
   collapse and the final solution are identical. *)
type batch = {
  b_vars : var array;  (* creation order *)
  b_atoms : atom array;  (* insertion order *)
}

let export t =
  {
    b_vars = Array.sub t.objs 0 t.nvars;
    b_atoms = Array.sub t.log 0 t.nlog;
  }

let batch_vars b = Array.length b.b_vars
let batch_atoms b = Array.length b.b_atoms
let batch_content b = (b.b_vars, b.b_atoms)

(* Replay [b] into [t]. [?bind] resolves batch variables that must map to
   pre-existing variables of [t] (the worker's mirrors of shared globals);
   every other batch variable is re-created fresh, {e in the batch's
   creation order} (one tight ascending loop over the exported arena
   segment), so the absorbing store allocates the same number of variables
   in the same sequence as a serial run that had generated the batch's
   constraints directly. Returns the realized renaming.

   Splice-fast path: [export] cuts [b_vars] straight out of the source
   arena's object column, so a batch variable's [id] {e is} its index in
   [b_vars] (checked by identity below — a foreign or out-of-segment
   variable simply maps to itself, like the Hashtbl miss it replaces).
   The renaming is therefore a flat array indexed by creation id — no
   per-variable hashing, no boxed key allocation — while every atom still
   replays through the normal [add_leq_*] entry points so dedup and
   online cycle elimination fire exactly as in a serial run (counter
   parity with {!absorb_replay} is property-tested). *)
let absorb t ?bind (b : batch) =
  let t0 = Unix.gettimeofday () in
  let bound v = match bind with Some f -> f v | None -> None in
  let n = Array.length b.b_vars in
  if n = 0 then begin
    t.s_absorb_s <- t.s_absorb_s +. (Unix.gettimeofday () -. t0);
    fun _ -> None
  end
  else begin
    let ren = Array.make n b.b_vars.(0) in
    for i = 0 to n - 1 do
      let v = b.b_vars.(i) in
      ren.(i) <-
        (match bound v with
        | Some g -> g
        | None -> fresh ~name:v.vname t)
    done;
    let in_seg v = v.id >= 0 && v.id < n && b.b_vars.(v.id) == v in
    let rn v = if in_seg v then Array.unsafe_get ren v.id else v in
    for i = 0 to Array.length b.b_atoms - 1 do
      match b.b_atoms.(i) with
      | Avc (v, c, mask, reason) -> add_leq_vc ?reason ~mask t (rn v) c
      | Acv (c, v, mask, reason) -> add_leq_cv ?reason ~mask t c (rn v)
      | Avv (x, y, mask, reason) -> add_leq_vv ?reason ~mask t (rn x) (rn y)
    done;
    t.s_absorb_s <- t.s_absorb_s +. (Unix.gettimeofday () -. t0);
    fun v -> if in_seg v then Some ren.(v.id) else None
  end

(* The pre-splice merge: identical semantics through a uid-keyed Hashtbl
   renaming. Kept as the parity oracle for the fast path above. *)
let absorb_replay t ?bind (b : batch) =
  let t0 = Unix.gettimeofday () in
  let bound v = match bind with Some f -> f v | None -> None in
  let n = Array.length b.b_vars in
  let map = Hashtbl.create (max 16 n) in
  for i = 0 to n - 1 do
    let v = b.b_vars.(i) in
    match bound v with
    | Some g -> Hashtbl.replace map v.uid g
    | None -> Hashtbl.replace map v.uid (fresh ~name:v.vname t)
  done;
  let rn v =
    match Hashtbl.find_opt map v.uid with Some v' -> v' | None -> v
  in
  for i = 0 to Array.length b.b_atoms - 1 do
    match b.b_atoms.(i) with
    | Avc (v, c, mask, reason) -> add_leq_vc ?reason ~mask t (rn v) c
    | Acv (c, v, mask, reason) -> add_leq_cv ?reason ~mask t c (rn v)
    | Avv (x, y, mask, reason) -> add_leq_vv ?reason ~mask t (rn x) (rn y)
  done;
  t.s_absorb_s <- t.s_absorb_s +. (Unix.gettimeofday () -. t0);
  fun v -> Hashtbl.find_opt map v.uid

(* A batch whose absorb would be a literal no-op: no atoms to replay and
   every variable already bound to a shared-store variable (so no fresh
   variables would be created either). The parallel merge skips these —
   common for leaf-function tasks that touched only pre-mirrored globals —
   without perturbing variable-creation parity with a serial run. *)
let batch_skippable ~bind (b : batch) =
  Array.length b.b_atoms = 0
  && Array.for_all (fun v -> Option.is_some (bind v)) b.b_vars

let pp_atom sp ppf = function
  | Avc (v, c, _, _) -> Fmt.pf ppf "%a <= %a" pp_var v (Elt.pp_full sp) c
  | Acv (c, v, _, _) -> Fmt.pf ppf "%a <= %a" (Elt.pp_full sp) c pp_var v
  | Avv (a, b, _, _) -> Fmt.pf ppf "%a <= %a" pp_var a pp_var b

let pp_error ppf e = Fmt.string ppf e.err_msg
let error_message e = e.err_msg

(* ------------------------------------------------------------------ *)
(* Baseline solvers (ablation; see DESIGN.md)                          *)
(* ------------------------------------------------------------------ *)

(* Forced full worklist least-solution pass (no incrementality), over
   representatives. Kept as a benchmark arm. *)
let solve_least t =
  for i = t.nvars - 1 downto 0 do
    if t.parent.(i) = i then begin
      t.lo.(i) <- t.lo_bound.(i);
      wl_push t i
    end
  done;
  while t.wl_head < t.wl_tail do
    let v = wl_pop t in
    t.s_pops <- t.s_pops + 1;
    let lov = Array.unsafe_get t.lo v in
    let e = ref (Array.unsafe_get t.succ_head v) in
    while !e >= 0 do
      let b = 3 * !e in
      e := Array.unsafe_get t.ecells (b + 2);
      let d = Array.unsafe_get t.ecells b in
      let s = if Array.unsafe_get t.parent d = d then d else find_id t d in
      if s <> v then begin
        let los = Array.unsafe_get t.lo s in
        let lo' = los lor (lov land Array.unsafe_get t.ecells (b + 1)) in
        if lo' <> los then begin
          Array.unsafe_set t.lo s lo';
          wl_push t s
        end
      end
    done
  done;
  wl_reset t

(* Same least solution computed by round-robin iteration to fixpoint, with
   no worklist. Kept as the ablation baseline for the micro-benchmarks. *)
let solve_least_naive t =
  for i = t.nvars - 1 downto 0 do
    if t.parent.(i) = i then t.lo.(i) <- t.lo_bound.(i)
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = t.nvars - 1 downto 0 do
      if t.parent.(i) = i then begin
        let e = ref t.succ_head.(i) in
        while !e >= 0 do
          let cell = !e in
          let b = 3 * cell in
          e := t.ecells.(b + 2);
          let s = find_id t t.ecells.(b) in
          if s <> i then begin
            let lo' = t.lo.(s) lor (t.lo.(i) land t.ecells.(b + 1)) in
            if lo' <> t.lo.(s) then begin
              t.lo.(s) <- lo';
              changed := true
            end
          end
        done
      end
    done
  done

(* ------------------------------------------------------------------ *)
(* Scheme simplification (the open problem of Section 6, basic form)   *)
(* ------------------------------------------------------------------ *)

(* A scheme's meaning is the projection of its solution set onto the
   observable variables (the interface variables of the generalized type
   plus any free variables); the existentially bound internals can be
   eliminated whenever elimination is exact. Over a lattice, a variable v
   with full-mask constraints {a_i <= v, L_i <= v, v <= b_j, v <= U_j} can
   be replaced by the pairwise compositions (take v = the join of its
   lower bounds), which is exact. We apply three passes to a fixed point:

   1. duplicate atoms are dropped;
   2. a non-observable local with no upper (resp. no lower) atoms is
      dropped together with its atoms — they are vacuous;
   3. a non-observable local whose in-degree or out-degree is at most 1
      (so composition does not grow the system) is eliminated by pairwise
      composition.

   Masked atoms (per-coordinate well-formedness conditions) are treated
   conservatively: a variable with any non-full-mask atom is kept.

   Atom dedup packs the (tag, var ids, const, mask) key into int-keyed
   [Iset] entries — the tag rides in the low bits of the first id — so no
   tuple is allocated and no polymorphic hashing runs. *)

let simplify_scheme t ~(interface : var list) (s : scheme) : scheme =
  let full = Lattice.Elt.full_mask t.sp in
  let sp = t.sp in
  let local_ids = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace local_ids v.id ()) s.locals;
  let observable = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace observable v.id ()) interface;
  (* free variables of the scheme are observable too *)
  List.iter
    (fun a ->
      let mark v =
        if not (Hashtbl.mem local_ids v.id) then
          Hashtbl.replace observable v.id ()
      in
      match a with
      | Avc (v, _, _, _) | Acv (_, v, _, _) -> mark v
      | Avv (x, y, _, _) ->
          mark x;
          mark y)
    s.atoms;
  (* dedup: key = (tag in low bits of id1, id2, const, mask) *)
  let seen = Iset.create ~cap:128 () in
  let seen_before = function
    | Avc (v, c, m, _) -> Iset.mem_add seen ((v.id lsl 2) lor 0) (-1) c m
    | Acv (c, v, m, _) -> Iset.mem_add seen ((v.id lsl 2) lor 1) (-1) c m
    | Avv (x, y, m, _) -> Iset.mem_add seen ((x.id lsl 2) lor 2) y.id 0 m
  in
  let atoms =
    ref
      (List.filter
         (fun a ->
           if seen_before a then false
           else begin
             (* drop trivially vacuous atoms *)
             match a with
             | Avc (_, c, m, _) ->
                 not (Lattice.Elt.leq_masked sp ~mask:m (Lattice.Elt.top sp) c)
             | Acv (c, _, m, _) ->
                 not
                   (Lattice.Elt.leq_masked sp ~mask:m c (Lattice.Elt.bottom sp))
             | Avv (x, y, _, _) -> x.id <> y.id
           end)
         s.atoms)
  in
  let eliminated = Hashtbl.create 32 in
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !passes < 20 do
    changed := false;
    incr passes;
    (* index: per variable, lower-side atoms (x <= v) and upper-side *)
    let lowers = Hashtbl.create 64 and uppers = Hashtbl.create 64 in
    let masked_ok = Hashtbl.create 64 in
    let add tbl id a = Hashtbl.replace tbl id (a :: try Hashtbl.find tbl id with Not_found -> []) in
    List.iter
      (fun a ->
        match a with
        | Avc (v, _, m, _) ->
            add uppers v.id a;
            if m <> full then Hashtbl.replace masked_ok v.id ()
        | Acv (_, v, m, _) ->
            add lowers v.id a;
            if m <> full then Hashtbl.replace masked_ok v.id ()
        | Avv (x, y, m, _) ->
            add uppers x.id a;
            add lowers y.id a;
            if m <> full then begin
              Hashtbl.replace masked_ok x.id ();
              Hashtbl.replace masked_ok y.id ()
            end)
      !atoms;
    let eliminable v =
      Hashtbl.mem local_ids v.id
      && (not (Hashtbl.mem observable v.id))
      && (not (Hashtbl.mem masked_ok v.id))
      && not (Hashtbl.mem eliminated v.id)
    in
    let kill = Hashtbl.create 16 in
    let extra = ref [] in
    List.iter
      (fun v ->
        if eliminable v && not (Hashtbl.mem kill v.id) then begin
          let lo = try Hashtbl.find lowers v.id with Not_found -> [] in
          let up = try Hashtbl.find uppers v.id with Not_found -> [] in
          let nlo = List.length lo and nup = List.length up in
          (* never touch a neighbour killed this pass: a freshly composed
             atom may reference this variable, and deleting or composing
             against the stale pass-start index would resurrect dead
             variables; the next pass sees the rebuilt index *)
          let neighbour_killed =
            List.exists
              (fun a ->
                match a with
                | Avc (v', _, _, _) | Acv (_, v', _, _) ->
                    Hashtbl.mem kill v'.id
                | Avv (x, y, _, _) ->
                    Hashtbl.mem kill x.id || Hashtbl.mem kill y.id)
              (lo @ up)
          in
          if neighbour_killed then ()
          else if nlo = 0 || nup = 0 then begin
            (* vacuous: delete the variable and its atoms *)
            Hashtbl.replace kill v.id ();
            Hashtbl.replace eliminated v.id ();
            changed := true
          end
          else if nlo <= 1 || nup <= 1 then begin
            (* exact pairwise composition *)
            let ok = ref true in
            let comps = ref [] in
            List.iter
              (fun la ->
                List.iter
                  (fun ua ->
                    match (la, ua) with
                    | Acv (c, _, _, r), Avc (_, c', _, r') ->
                        if Lattice.Elt.leq sp c c' then ()
                        else (
                          ignore (r, r');
                          ok := false)
                    | Acv (c, _, _, r), Avv (_, y, _, _) ->
                        comps := Acv (c, y, full, r) :: !comps
                    | Avv (x, _, _, r), Avc (_, c', _, _) ->
                        comps := Avc (x, c', full, r) :: !comps
                    | Avv (x, _, _, r), Avv (_, y, _, _) ->
                        if x.id <> y.id then comps := Avv (x, y, full, r) :: !comps
                    | _ -> ok := false)
                  up)
              lo;
            if !ok then begin
              Hashtbl.replace kill v.id ();
              Hashtbl.replace eliminated v.id ();
              extra := !comps @ !extra;
              changed := true
            end
          end
        end)
      s.locals;
    if !changed then begin
      let touches id = Hashtbl.mem kill id in
      atoms :=
        List.filter
          (fun a ->
            match a with
            | Avc (v, _, _, _) | Acv (_, v, _, _) -> not (touches v.id)
            | Avv (x, y, _, _) -> not (touches x.id || touches y.id))
          !atoms
        @ !extra
    end
  done;
  let locals =
    List.filter (fun v -> not (Hashtbl.mem eliminated v.id)) s.locals
  in
  make_scheme ~locals ~atoms:!atoms

let scheme_size s = List.length s.atoms

(* ------------------------------------------------------------------ *)
(* Scheme compaction (exact projection onto the interface)             *)
(* ------------------------------------------------------------------ *)

(* [compact t ~interface s] projects the scheme's constraint set onto its
   observable variables: the [interface] list (the qualifier variables
   reachable from the generalized qualified type) plus every free variable
   mentioned by an atom. The result is observationally equivalent — not a
   heuristic: instantiating the compacted scheme yields exactly the same
   least and greatest solutions on the interface and free variables, and
   the same bound violations, as instantiating the original.

   The pass (iterated to a fixed point):

   - duplicate and vacuous atoms are dropped (a self-edge [v <= v on m]
     contributes [embed_bottom m lo(v) <= lo(v)] and dually — a no-op);
   - a purely internal variable [v] is eliminated by composing each of its
     lower atoms with each of its upper edges. Masked atoms compose
     exactly: [embed_bottom m2 (embed_bottom m1 x) = embed_bottom (m1&m2) x]
     (dually for [embed_top]), so [c <= v on mc, v <= s on ms] becomes
     [embed_bottom mc c <= s on ms] and [p <= v on mp, v <= s on ms]
     becomes [p <= s on mp&ms];
   - elimination requires that dropping [v]'s own constant upper bounds
     cannot hide a violation: [v] must have no upper-bound atoms at all,
     or no predecessor edges and constant bounds that already satisfy
     [join(lowers) <= meet(uppers)] (its least solution is then exactly
     the join of its constant lower bounds, so the check is decided at
     compaction time once and for all instances). Inconsistently bounded
     internals are kept, preserving the error report;
   - a growth cap keeps composition from densifying the graph: [v] is
     eliminated only if the composed atoms do not outnumber the removed
     ones (plus slack 2); iteration can unlock such variables later.

   Unification with (or among) interface variables needs no special case:
   full-mask cycles survive as composed edge chains, which the store
   re-collapses at instantiation.

   Determinism matters downstream (parallel workers must publish the same
   scheme the serial run builds): the pass never consults representatives
   ([find_id]) or iterates a hashtable for output; surviving atoms keep
   their original order, composed atoms append in generation order, and
   the local list keeps its original order filtered to interface members
   and variables still mentioned. The atom-dedup keys are packed into
   int-keyed [Iset] entries exactly as in {!simplify_scheme}, but over
   [uid]s (compaction runs where variables of two stores can mix). *)
let compact ?(count = true) t ~(interface : var list) (s : scheme) : scheme =
  let c0 = Unix.gettimeofday () in
  let sp = t.sp in
  let nl = List.length s.locals and na = List.length s.atoms in
  if count then begin
    t.s_sv_before <- t.s_sv_before + nl;
    t.s_se_before <- t.s_se_before + na
  end;
  (* scratch tables sized to the scheme: most schemes are a handful of
     locals and atoms, and this runs once per SCC — fixed 64-bucket
     tables dominated the pass's allocation at scale *)
  let local_uids = Hashtbl.create (max 8 nl) in
  List.iter (fun v -> Hashtbl.replace local_uids v.uid ()) s.locals;
  let iface = Hashtbl.create (max 8 (List.length interface)) in
  List.iter (fun v -> Hashtbl.replace iface v.uid ()) interface;
  (* dedup + vacuous-drop filter; [seen] persists across passes: a key can
     only name a removed atom if one of its endpoints was eliminated, and
     composition never reproduces atoms on eliminated endpoints *)
  let seen =
    (* Iset caps are powers of two (the probe mask requires it) *)
    let rec pow2 c = if c >= na || c >= 128 then c else pow2 (2 * c) in
    Iset.create ~cap:(pow2 16) ()
  in
  let vacuous = function
    | Avc (_, c, m, _) -> Elt.leq_masked sp ~mask:m (Elt.top sp) c
    | Acv (c, _, m, _) -> Elt.leq_masked sp ~mask:m c (Elt.bottom sp)
    | Avv (x, y, m, _) -> x.uid = y.uid || m land Elt.full_mask sp = 0
  in
  let seen_before = function
    | Avc (v, c, m, _) -> Iset.mem_add seen ((v.uid lsl 2) lor 0) (-1) c m
    | Acv (c, v, m, _) -> Iset.mem_add seen ((v.uid lsl 2) lor 1) (-1) c m
    | Avv (x, y, m, _) -> Iset.mem_add seen ((x.uid lsl 2) lor 2) y.uid 0 m
  in
  let fresh_atom a = (not (vacuous a)) && not (seen_before a) in
  let atoms = ref (List.filter fresh_atom s.atoms) in
  let eliminated = Hashtbl.create (max 8 nl) in
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !passes < 64 do
    changed := false;
    incr passes;
    let lowers = Hashtbl.create (max 8 nl)
    and uppers = Hashtbl.create (max 8 nl) in
    let add tbl uid a =
      Hashtbl.replace tbl uid
        (a :: (try Hashtbl.find tbl uid with Not_found -> []))
    in
    List.iter
      (fun a ->
        match a with
        | Avc (v, _, _, _) -> add uppers v.uid a
        | Acv (_, v, _, _) -> add lowers v.uid a
        | Avv (x, y, _, _) ->
            add uppers x.uid a;
            add lowers y.uid a)
      !atoms;
    let kill = Hashtbl.create 16 in
    let extra = ref [] in
    List.iter
      (fun v ->
        if
          Hashtbl.mem local_uids v.uid
          && (not (Hashtbl.mem iface v.uid))
          && (not (Hashtbl.mem eliminated v.uid))
          && not (Hashtbl.mem kill v.uid)
        then begin
          let lo = try Hashtbl.find lowers v.uid with Not_found -> [] in
          let up = try Hashtbl.find uppers v.uid with Not_found -> [] in
          (* never compose against a neighbour killed this pass: the
             pass-start index would resurrect its atoms; the next pass
             sees the rebuilt index *)
          let neighbour_killed =
            List.exists
              (fun a ->
                match a with
                | Avc (x, _, _, _) | Acv (_, x, _, _) -> Hashtbl.mem kill x.uid
                | Avv (x, y, _, _) ->
                    Hashtbl.mem kill x.uid || Hashtbl.mem kill y.uid)
              (lo @ up)
          in
          if not neighbour_killed then begin
            let acvs =
              List.filter_map
                (function Acv (c, _, m, r) -> Some (c, m, r) | _ -> None)
                lo
            in
            let preds =
              List.filter_map
                (function Avv (p, _, m, r) -> Some (p, m, r) | _ -> None)
                lo
            in
            let avcs =
              List.filter_map
                (function Avc (_, c, m, r) -> Some (c, m, r) | _ -> None)
                up
            in
            let succs =
              List.filter_map
                (function Avv (_, s, m, r) -> Some (s, m, r) | _ -> None)
                up
            in
            let eliminable =
              match avcs with
              | [] -> true
              | _ :: _ ->
                  preds = []
                  &&
                  let lo_const =
                    List.fold_left
                      (fun acc (c, m, _) ->
                        Elt.join sp acc (Elt.embed_bottom sp ~mask:m c))
                      (Elt.bottom sp) acvs
                  in
                  let hi_const =
                    List.fold_left
                      (fun acc (c, m, _) ->
                        Elt.meet sp acc (Elt.embed_top sp ~mask:m c))
                      (Elt.top sp) avcs
                  in
                  Elt.leq sp lo_const hi_const
            in
            let nlo = List.length acvs + List.length preds in
            let nup = List.length avcs + List.length succs in
            let ncomposed = nlo * List.length succs in
            if eliminable && ncomposed <= nlo + nup + 2 then begin
              Hashtbl.replace kill v.uid ();
              Hashtbl.replace eliminated v.uid ();
              changed := true;
              List.iter
                (fun (sv, ms, rs) ->
                  List.iter
                    (fun (c, mc, _) ->
                      extra :=
                        Acv (Elt.embed_bottom sp ~mask:mc c, sv, ms, rs)
                        :: !extra)
                    acvs;
                  List.iter
                    (fun (p, mp, _) ->
                      extra := Avv (p, sv, mp land ms, rs) :: !extra)
                    preds)
                succs
            end
          end
        end)
      s.locals;
    if !changed then begin
      let touches uid = Hashtbl.mem kill uid in
      let kept =
        List.filter
          (fun a ->
            match a with
            | Avc (v, _, _, _) | Acv (_, v, _, _) -> not (touches v.uid)
            | Avv (x, y, _, _) -> not (touches x.uid || touches y.uid))
          !atoms
      in
      atoms := kept @ List.filter fresh_atom (List.rev !extra)
    end
  done;
  let mentioned = Hashtbl.create (max 8 nl) in
  List.iter
    (fun a ->
      let mark v = Hashtbl.replace mentioned v.uid () in
      match a with
      | Avc (v, _, _, _) | Acv (_, v, _, _) -> mark v
      | Avv (x, y, _, _) ->
          mark x;
          mark y)
    !atoms;
  (* interface variables stay local even when unconstrained: they occur in
     the generalized type and must still be freshened per instance *)
  let locals =
    List.filter
      (fun v -> Hashtbl.mem iface v.uid || Hashtbl.mem mentioned v.uid)
      s.locals
  in
  if count then begin
    t.s_sv_after <- t.s_sv_after + List.length locals;
    t.s_se_after <- t.s_se_after + List.length !atoms
  end;
  t.s_compact_s <- t.s_compact_s +. (Unix.gettimeofday () -. c0);
  make_scheme ~locals ~atoms:!atoms

(* Can this scheme's constraints, alone, ever produce a bound violation in
   an instance — under the most pessimistic assumption about inflow from
   the outside? Free variables and [exposed] locals (the interface, which
   receives call-site inflow not part of the scheme) are pinned to top;
   least solutions propagate from there over the scheme's edges; every
   local must still satisfy its own constant upper bounds. A [true] answer
   licenses sharing one instantiation between call sites: the shared copy
   cannot under-report errors, because it can produce none. *)
let atoms_never_violate sp ~(locals : var list) ~(exposed : var list)
    (atoms : atom list) : bool =
  let local_uids = Hashtbl.create 32 in
  List.iter (fun v -> Hashtbl.replace local_uids v.uid ()) locals;
  let pinned = Hashtbl.create 32 in
  List.iter (fun v -> Hashtbl.replace pinned v.uid ()) exposed;
  let is_pinned v =
    (not (Hashtbl.mem local_uids v.uid)) || Hashtbl.mem pinned v.uid
  in
  let bot = Elt.bottom sp and top = Elt.top sp in
  let lo = Hashtbl.create 32 and hib = Hashtbl.create 32 in
  let get tbl dflt uid = try Hashtbl.find tbl uid with Not_found -> dflt in
  let lo_of v = if is_pinned v then top else get lo bot v.uid in
  let edges = ref [] in
  List.iter
    (function
      | Acv (c, v, m, _) ->
          if not (is_pinned v) then
            Hashtbl.replace lo v.uid
              (Elt.join sp (get lo bot v.uid) (Elt.embed_bottom sp ~mask:m c))
      | Avc (v, c, m, _) ->
          if Hashtbl.mem local_uids v.uid then
            Hashtbl.replace hib v.uid
              (Elt.meet sp (get hib top v.uid) (Elt.embed_top sp ~mask:m c))
      | Avv (x, y, m, _) -> edges := (x, y, m) :: !edges)
    atoms;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (x, y, m) ->
        if not (is_pinned y) then begin
          let contrib = Elt.embed_bottom sp ~mask:m (lo_of x) in
          let lo' = Elt.join sp (get lo bot y.uid) contrib in
          if not (Elt.equal lo' (get lo bot y.uid)) then begin
            Hashtbl.replace lo y.uid lo';
            changed := true
          end
        end)
      !edges
  done;
  List.for_all (fun v -> Elt.leq sp (lo_of v) (get hib top v.uid)) locals

(* ------------------------------------------------------------------ *)
(* Standalone evaluation of an atom list                               *)
(* ------------------------------------------------------------------ *)

(* Least/greatest solutions of a bare atom list, computed with local
   tables and without touching any store or variable record. Variables not
   mentioned default to (bottom, top). Used to summarize schemes in
   isolation (polymorphic recursion's convergence test). *)
let solve_atoms sp (atoms : atom list) : int -> Elt.t * Elt.t =
  let lo = Hashtbl.create 64 and hi = Hashtbl.create 64 in
  let get tbl dflt id = try Hashtbl.find tbl id with Not_found -> dflt in
  let bot = Elt.bottom sp and top = Elt.top sp in
  let edges = ref [] in
  List.iter
    (function
      | Acv (c, v, m, _) ->
          Hashtbl.replace lo v.id
            (Elt.join sp (get lo bot v.id) (Elt.embed_bottom sp ~mask:m c))
      | Avc (v, c, m, _) ->
          Hashtbl.replace hi v.id
            (Elt.meet sp (get hi top v.id) (Elt.embed_top sp ~mask:m c))
      | Avv (x, y, m, _) -> edges := (x.id, y.id, m) :: !edges)
    atoms;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (x, y, m) ->
        (* forward: lo flows x -> y *)
        let contrib = Elt.embed_bottom sp ~mask:m (get lo bot x) in
        let lo' = Elt.join sp (get lo bot y) contrib in
        if not (Elt.equal lo' (get lo bot y)) then begin
          Hashtbl.replace lo y lo';
          changed := true
        end;
        (* backward: hi flows y -> x *)
        let contrib = Elt.embed_top sp ~mask:m (get hi top y) in
        let hi' = Elt.meet sp (get hi top x) contrib in
        if not (Elt.equal hi' (get hi top x)) then begin
          Hashtbl.replace hi x hi';
          changed := true
        end)
      !edges
  done;
  fun id -> (get lo bot id, get hi top id)

(* Replay the full constraint log through the store-free evaluator: an
   independent oracle for the optimized solver, keyed by original (stable)
   variable ids. Used by the equivalence property tests. *)
let naive_bounds t =
  solve_atoms t.sp (Array.to_list (Array.sub t.log 0 t.nlog))

(* Present a scheme as a constrained type qualifier prefix — the notation
   question raised in Section 6 ("we currently do not have a notation for
   specifying constraints in the source language"). Combine with
   [simplify_scheme] for readable output. *)
let pp_scheme space ppf (s : scheme) =
  Fmt.pf ppf "∀%a. {%a}"
    (Fmt.list ~sep:(Fmt.any " ") pp_var)
    s.locals
    (Fmt.list ~sep:(Fmt.any ", ") (pp_atom space))
    s.atoms
