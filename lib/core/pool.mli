(** A reusable fixed-size pool of worker domains (OCaml 5 [Domain]s).

    The pool serves the multicore analysis engine: tasks are closures
    pushed onto a shared queue; [jobs] worker domains pop and run them.
    Tasks may themselves submit further tasks (the wavefront scheduler
    releases an SCC's dependents from the completion of the SCC itself),
    and {!wait} blocks until the pool is fully drained.

    Exceptions are {e funneled}, not lost and not fatal: a task that
    raises records the first exception (with its backtrace) and the worker
    keeps serving; {!wait} re-raises it after the queue drains. Callers
    that want per-task fault isolation catch inside the task — the funnel
    is the backstop for scheduler bugs, mirroring the per-SCC [guarded]
    degradation of the analysis.

    With [jobs <= 1] no domain is spawned and {!submit} runs the task
    inline, immediately, in submission order — the exact serial path. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [max 1 jobs] workers ([jobs <= 1] spawns none
    and runs tasks inline). *)

val jobs : t -> int

val cores_available : unit -> int
(** [Domain.recommended_domain_count ()]: the parallelism the host can
    actually deliver — recorded by the benchmarks next to per-job-count
    timings so speedups are interpretable across machines *)

val default_jobs : unit -> int
(** the [TYPEQUAL_JOBS] environment variable if set to a positive
    integer, else [1] (parallelism is opt-in; serial stays the default) *)

val submit : t -> (unit -> unit) -> unit
(** queue a task; safe to call from inside a running task *)

val wait : t -> unit
(** block until every submitted task has finished, then re-raise the
    first funneled exception, if any *)

val shutdown : t -> unit
(** stop accepting work and join the worker domains; queued tasks are
    drained first *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run, then {!shutdown} (also on exception) *)
