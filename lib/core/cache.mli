(** Persistent analysis cache with a versioned, self-checking envelope.

    Every entry is one file under the cache directory, wrapped in a binary
    envelope that chains every assumption the payload depends on:

    {v
    offset size  field
         0    8  magic            "TQCACHE1"
         8    2  format version   (big-endian)
        10   16  context digest   (qualifier-space fingerprint)
        26   16  key digest       (content hash of the cached unit)
        42    2  dependency count (big-endian)
        44  16n  dependency digests (interface hashes, caller-ordered)
         .    8  payload length   (big-endian)
         .   16  payload digest   (MD5)
         .    .  payload bytes
    v}

    {!load} verifies the whole chain front to back and returns the payload
    only when every field matches what the caller expects {e now}; any
    mismatch — truncation, flipped byte, version skew, foreign lattice,
    wrong key, stale dependency — rejects the entry, counts the cause, and
    evicts the file. A rejected or missing entry is indistinguishable from
    a cold cache: the caller recomputes. The cache never repairs an entry
    and never raises; I/O failures disable the affected side (reads or
    writes) and are reported through [warn] once.

    Writes are crash-safe: payloads go to a temporary file, are fsynced,
    and enter the directory by atomic [rename] while holding a pid-stamped
    lock file ([.lock], created with [O_CREAT|O_EXCL]). Locks whose
    recorded owner is dead are broken by rename-then-remove: the breaker
    atomically renames the stale lock to a unique name (so at most one
    breaker wins) and re-checks its content before deleting, restoring any
    lock that was re-created in the window. A writer that cannot take the
    lock skips the write — caching is an optimization, never a wait.

    All operations are thread- and domain-safe: the statistics counters
    are guarded by an internal mutex, so [load]/[store]/
    [reject_undecodable] may be called concurrently from pool domains. *)

type t

(** why a load rejected an entry (the [--stats] reject causes) *)
type reject =
  | Io_error  (** the file could not be read *)
  | Truncated  (** shorter than its own header or declared payload *)
  | Bad_magic
  | Bad_version
  | Context_mismatch  (** wrong qualifier-space fingerprint *)
  | Key_mismatch  (** envelope was written for a different content hash *)
  | Stale_dep  (** dependency interface digests differ *)
  | Corrupt  (** payload bytes do not match their digest *)
  | Undecodable  (** envelope verified but the client could not decode *)

val reject_name : reject -> string

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable evictions : int;  (** rejected entries unlinked *)
  mutable write_skips : int;  (** stores skipped (lock contention / disabled) *)
  rejects : (string, int) Hashtbl.t;  (** reject cause -> count *)
  by_kind : (string, int * int) Hashtbl.t;  (** kind -> (hits, misses) *)
}

val open_dir : ?warn:(string -> unit) -> ctx:Digest.t -> string -> t option
(** Open (creating if needed) a cache directory. [ctx] is the context
    fingerprint stamped into and checked against every envelope (the
    qualifier-space fingerprint). Returns [None] — after calling [warn] —
    when the path cannot be used as a directory at all; the caller then
    runs cold. Never raises. *)

val load :
  t -> kind:string -> key:Digest.t -> deps:Digest.t list -> string option
(** Look up the entry for [kind]/[key]; verify magic, version, context,
    key, the dependency digests (count and content, in order) and the
    payload checksum. [Some payload] only if the whole chain holds.
    Rejections are counted by cause and the bad file evicted. Never
    raises. *)

val store : t -> kind:string -> key:Digest.t -> deps:Digest.t list -> string -> unit
(** Write an entry via temp file + fsync + atomic rename, under the lock.
    Skips silently (counted in [write_skips]) on lock contention; a
    filesystem error warns once and disables further writes. Never
    raises. *)

val reject_undecodable : t -> kind:string -> key:Digest.t -> unit
(** Record a client-side decode failure for an entry whose envelope
    verified (e.g. the payload unmarshals to an impossible value): counts
    an [Undecodable] reject and evicts the file. *)

val entry_path : t -> kind:string -> key:Digest.t -> string
(** the file an entry of this kind/key lives at (for tests and tools) *)

val entry_files : t -> string list
(** every entry file currently in the directory (absolute paths, sorted);
    excludes lock and temporary files *)

val stats : t -> stats
val pp_stats : stats Fmt.t

val format_version : int
(** bump when the envelope layout or any payload format changes *)

(** byte offsets of the envelope header fields, for fault-injection
    harnesses that corrupt specific fields *)

val off_magic : int

val off_version : int
val off_ctx : int
val off_key : int
val off_ndeps : int
val off_deps : int

(** {1 Lock protocol} (exposed for tests) *)

val with_lock : t -> (unit -> unit) -> bool
(** run [f] holding the directory lock; [false] if the lock could not be
    taken (f not run). Breaks locks whose recorded pid is dead, via
    rename-then-remove so concurrent breakers cannot delete a live
    lock. *)
