(** Pre-arena reference solver: the records + [Hashtbl] implementation the
    flat-arena {!Solver} replaced, kept in-tree verbatim as

    - the apples-to-apples ablation baseline for the [scale] benchmark
      (same host, same op stream, both cores driven through the identical
      public API), and
    - the oracle for the arena parity property tests: both stores are
      driven through identical operation sequences and must agree on every
      counter, every solution bound and every error message, byte for
      byte.

    The only intended difference from the historical implementation is
    that the dirty set remembers {e insertion order} and seeds the solve
    worklists in that order (the historical code iterated a [Hashtbl],
    whose bucket order is an implementation accident). The fixpoint,
    the touched set and the error reports are seed-order independent; only
    the [worklist_pops] counter is sensitive to it, and pinning the order
    makes that counter comparable across solver implementations.

    Everything below this header is the PR 5 solver. See {!Solver} for the
    arena core and DESIGN.md ("Flat-arena solver") for the comparison.

    ------------------------------------------------------------------

    Atomic qualifier-constraint solver (Sections 3.1–3.2 of the paper).

    After decomposing subtype constraints on qualified types structurally,
    qualifier inference is left with {e atomic} constraints over the
    qualifier lattice [L]:

    - [kappa <= L] and [L <= kappa] (variable/constant bounds),
    - [kappa1 <= kappa2] (variable/variable edges),
    - [L1 <= L2] (ground, checked immediately).

    This is an atomic subtyping system, solvable in linear time for a fixed
    set of qualifiers (Henglein–Rehof); we use worklist-based join
    propagation for the least solution and meet propagation over reversed
    edges for the greatest solution. The solver also supports {e masked}
    constraints that relate only a subset of the lattice coordinates; these
    express per-qualifier side conditions such as the binding-time
    well-formedness rule ("nothing dynamic inside a static value") without
    touching the other qualifiers.

    The pair (least, greatest) solution classifies every variable per
    Section 4.4: a coordinate is {e forced up} (e.g. must-const) when the
    least solution already has it, {e forced down} (must-not-const) when
    even the greatest solution lacks it, and {e unconstrained} otherwise.

    Performance architecture (see DESIGN.md, "Solver architecture"):

    - Variables are union-find nodes. When [add_leq_vv] closes a cycle of
      full-mask edges — detected online by a bounded path search, in the
      style of partial online cycle elimination for inclusion constraints —
      the strongly-connected component is unified into one representative,
      merging bounds, edges and provenance. All members of an SCC share one
      solution, so this is exact. Masked edges never trigger unification
      (two variables related on a strict subset of coordinates may differ
      on the rest).
    - Edges are deduplicated on insertion, hash-keyed by
      [(source, target, mask)] over representatives, so repeated scheme
      instantiations against the same variables stop growing edge lists.
    - Solving is incremental: a dirty set tracks representatives whose
      bounds or incident edges changed since the last [solve]; worklists
      seed from the dirty set, and [lo]/[hi] are updated monotonically
      ([lo] only rises, [hi] only falls — sound because constraints are
      only ever added). Violations are likewise monotone and accumulate in
      a persistent error table exposed via {!last_errors}.

    Polymorphism support: constraint sets can be captured while they are
    generated ({!recording}) and later re-instantiated under a renaming of
    their local variables ({!instantiate}), implementing the constrained
    type schemes [forall k. rho \ C] of Section 3.2 (with the existential
    binding of purely-local variables realized by renaming {e all} scheme
    locals at each instantiation). Atoms store the original variables, not
    representatives, so instantiation re-derives any unifications for the
    fresh copies. *)

module Elt = Lattice.Elt
module Space = Lattice.Space

type reason = string option

type var = {
  id : int;
      (* stable creation-order id; kept as the first field so structural
         compare decides on it before reaching the cyclic [parent] *)
  vname : string;
  uid : int;
      (* globally unique across stores (atomic counter). Renaming maps that
         can mix variables of two stores — [instantiate] on an imported
         scheme whose free variables were resolved to local mirrors — must
         key on [uid]: per-store [id]s both count from 0 and collide. *)
  mutable parent : var;  (* union-find: self iff representative *)
  mutable rank : int;
  mutable lo_bound : Elt.t;  (* join of constant lower bounds (embedded) *)
  mutable hi_bound : Elt.t;  (* meet of constant upper bounds (embedded) *)
  mutable lo : Elt.t;        (* least solution, valid after [solve] *)
  mutable hi : Elt.t;        (* greatest solution, valid after [solve] *)
  mutable succs : (var * int * reason) list;  (* v <= succ on mask *)
  mutable preds : (var * int * reason) list;
  mutable lo_reasons : (Elt.t * int * reason) list;  (* provenance *)
  mutable hi_reasons : (Elt.t * int * reason) list;
}

let rec find v =
  if v.parent == v then v
  else begin
    let r = find v.parent in
    v.parent <- r;
    r
  end

let repr = find

type atom =
  | Avc of var * Elt.t * int * reason  (* var <= const on mask *)
  | Acv of Elt.t * var * int * reason  (* const <= var on mask *)
  | Avv of var * var * int * reason    (* var <= var on mask *)

type error = {
  err_var : var option;
  err_msg : string;
}

type stats = {
  vars_created : int;
  vars_unified : int;
  edges_added : int;
  edges_deduped : int;
  cycles_collapsed : int;
  incr_solves : int;
  full_solves : int;
  worklist_pops : int;
  solve_s : float;
  absorb_s : float;
  congen_s : float;  (* phase timers: always 0 here; see Solver *)
  generalize_s : float;
  compact_s : float;
  instantiate_s : float;
  report_s : float;
  scheme_vars_before : int;  (* locals entering [compact], summed *)
  scheme_vars_after : int;
  scheme_edges_before : int;  (* constraint atoms entering [compact], summed *)
  scheme_edges_after : int;
  instantiations_memo_hits : int;
  memo_candidates : int;  (* memo-rejection breakdown: always 0 here *)
  memo_reject_nonflat_ret : int;
  memo_reject_may_violate : int;
  memo_misses : int;
  empty_batches_skipped : int;
  heap_words : int;
  top_heap_words : int;
  cores_available : int;
}

type t = {
  space : Space.t;
  mutable vars : var list;  (* in reverse creation order, absorbed included *)
  mutable nvars : int;
  mutable ground_errors : error list;
  errors : (int, error) Hashtbl.t;
      (* persistent bound-violation table, keyed by the id of the
         representative at detection time; monotone since constraints are
         only ever added *)
  mutable recorders : atom list ref list;
  mutable log : atom list;
      (* every atom ever added, original variables — replayed by
         [naive_bounds] as an independent oracle *)
  mutable solved : bool;
  dirty : (int, var) Hashtbl.t;
  mutable dirty_order : var list;
      (* reverse insertion order of the dirty set (first marking only; an
         entry removed and re-marked appears twice, with membership decided
         by [dirty]) — seeds the solve worklists deterministically *)
  edge_seen : (int * int * int, unit) Hashtbl.t;  (* (src, dst, mask) *)
  bound_seen : (int * int * int * bool, unit) Hashtbl.t;
      (* (rep, const, mask, is_upper): constant bounds already applied to a
         representative, so repeated scheme instantiation against shared
         variables stops growing provenance lists — the bound-side twin of
         [edge_seen] *)
  cycle_elim : bool;
  mutable budget : Budget.t option;
      (* optional resource guard: propagation stops early once it trips,
         leaving partial (lo, hi) — callers must check Budget.exhausted
         and treat classifications as degraded *)
  mutable s_unified : int;
  mutable s_edges : int;
  mutable s_dedup : int;
  mutable s_cycles : int;
  mutable s_incr : int;
  mutable s_full : int;
  mutable s_pops : int;
  mutable s_solve_s : float;
  mutable s_absorb_s : float;
  mutable s_sv_before : int;
  mutable s_sv_after : int;
  mutable s_se_before : int;
  mutable s_se_after : int;
  mutable s_memo_hits : int;
  mutable s_skipped_batches : int;
}

let create ?(cycle_elim = true) space =
  {
    space;
    vars = [];
    nvars = 0;
    ground_errors = [];
    errors = Hashtbl.create 16;
    recorders = [];
    log = [];
    solved = false;
    dirty = Hashtbl.create 64;
    dirty_order = [];
    edge_seen = Hashtbl.create 256;
    bound_seen = Hashtbl.create 256;
    cycle_elim;
    budget = None;
    s_unified = 0;
    s_edges = 0;
    s_dedup = 0;
    s_cycles = 0;
    s_incr = 0;
    s_full = 0;
    s_pops = 0;
    s_solve_s = 0.;
    s_absorb_s = 0.;
    s_sv_before = 0;
    s_sv_after = 0;
    s_se_before = 0;
    s_se_after = 0;
    s_memo_hits = 0;
    s_skipped_batches = 0;
  }

let space t = t.space
let num_vars t = t.nvars
let set_budget t b = t.budget <- b

let budget_tripped t =
  match t.budget with Some b -> Budget.is_exhausted b | None -> false

let stats t =
  {
    vars_created = t.nvars;
    vars_unified = t.s_unified;
    edges_added = t.s_edges;
    edges_deduped = t.s_dedup;
    cycles_collapsed = t.s_cycles;
    incr_solves = t.s_incr;
    full_solves = t.s_full;
    worklist_pops = t.s_pops;
    solve_s = t.s_solve_s;
    absorb_s = t.s_absorb_s;
    congen_s = 0.;
    generalize_s = 0.;
    compact_s = 0.;
    instantiate_s = 0.;
    report_s = 0.;
    scheme_vars_before = t.s_sv_before;
    scheme_vars_after = t.s_sv_after;
    scheme_edges_before = t.s_se_before;
    scheme_edges_after = t.s_se_after;
    instantiations_memo_hits = t.s_memo_hits;
    memo_candidates = 0;
    memo_reject_nonflat_ret = 0;
    memo_reject_may_violate = 0;
    memo_misses = 0;
    empty_batches_skipped = t.s_skipped_batches;
    heap_words = (Gc.quick_stat ()).Gc.heap_words;
    top_heap_words = (Gc.quick_stat ()).Gc.top_heap_words;
    cores_available = Domain.recommended_domain_count ();
  }

(* Fold compaction/memo counters accrued in a worker-private store into the
   shared store, so `--stats` totals cover parallel runs. Only the additive
   bookkeeping counters transfer; everything else (vars, edges, solve
   times) already flows through the batch absorb path. *)
let merge_aux_stats t (s : stats) =
  t.s_sv_before <- t.s_sv_before + s.scheme_vars_before;
  t.s_sv_after <- t.s_sv_after + s.scheme_vars_after;
  t.s_se_before <- t.s_se_before + s.scheme_edges_before;
  t.s_se_after <- t.s_se_after + s.scheme_edges_after;
  t.s_memo_hits <- t.s_memo_hits + s.instantiations_memo_hits;
  t.s_skipped_batches <- t.s_skipped_batches + s.empty_batches_skipped

let note_memo_hit t = t.s_memo_hits <- t.s_memo_hits + 1
let note_skipped_batch t = t.s_skipped_batches <- t.s_skipped_batches + 1

let pp_stats ppf s =
  Fmt.pf ppf
    "vars %d (%d unified), edges %d (%d deduped), cycles %d, solves %d incr + \
     %d full, %d worklist pops, %.3fs solving, %.3fs absorbing; compaction: \
     scheme vars %d -> %d, scheme atoms %d -> %d, %d memoized \
     instantiations, %d empty batches skipped"
    s.vars_created s.vars_unified s.edges_added s.edges_deduped
    s.cycles_collapsed s.incr_solves s.full_solves s.worklist_pops s.solve_s
    s.absorb_s s.scheme_vars_before s.scheme_vars_after s.scheme_edges_before
    s.scheme_edges_after s.instantiations_memo_hits s.empty_batches_skipped;
  Fmt.pf ppf "; heap %d words (peak %d), %d cores" s.heap_words
    s.top_heap_words s.cores_available

let uid_counter = Atomic.make 0

let fresh ?(name = "q") t =
  let sp = t.space in
  let rec v =
    {
      id = t.nvars;
      vname = name;
      uid = Atomic.fetch_and_add uid_counter 1;
      parent = v;
      rank = 0;
      lo_bound = Elt.bottom sp;
      hi_bound = Elt.top sp;
      lo = Elt.bottom sp;
      hi = Elt.top sp;
      succs = [];
      preds = [];
      lo_reasons = [];
      hi_reasons = [];
    }
  in
  t.nvars <- t.nvars + 1;
  t.vars <- v :: t.vars;
  Option.iter Budget.note_var t.budget;
  (* a fresh variable has no constraints: its current (lo, hi) is already
     its solution, so [solved] and the dirty set are untouched *)
  v

let var_id v = v.id
let var_uid v = v.uid
let var_name v = v.vname
let pp_var ppf v = Fmt.pf ppf "%s#%d" v.vname v.id

let record t atom = List.iter (fun r -> r := atom :: !r) t.recorders

let log_atom t atom =
  record t atom;
  t.log <- atom :: t.log

let mark_dirty t v =
  if not (Hashtbl.mem t.dirty v.id) then t.dirty_order <- v :: t.dirty_order;
  Hashtbl.replace t.dirty v.id v

(* var <= const, restricted to the coordinates in [mask]. Constant bounds
   are deduplicated on insertion like edges: a repeated instantiation that
   re-derives an identical bound on the same representative is counted as
   deduped and adds nothing — in particular no provenance entry, so
   [hi_reasons] stops growing with the instantiation count. *)
let add_leq_vc ?reason ?mask t v c =
  let mask = Option.value mask ~default:(Elt.full_mask t.space) in
  log_atom t (Avc (v, c, mask, reason));
  let r = find v in
  let k = (r.id, (c : Elt.t), mask, true) in
  if Hashtbl.mem t.bound_seen k then t.s_dedup <- t.s_dedup + 1
  else begin
    Hashtbl.add t.bound_seen k ();
    r.hi_reasons <- (c, mask, reason) :: r.hi_reasons;
    let hb' = Elt.meet t.space r.hi_bound (Elt.embed_top t.space ~mask c) in
    if not (Elt.equal hb' r.hi_bound) then begin
      r.hi_bound <- hb';
      r.hi <- Elt.meet t.space r.hi hb';
      t.solved <- false;
      mark_dirty t r
    end
  end

(* const <= var, restricted to [mask]. Dual of [add_leq_vc], including the
   bound dedup. *)
let add_leq_cv ?reason ?mask t c v =
  let mask = Option.value mask ~default:(Elt.full_mask t.space) in
  log_atom t (Acv (c, v, mask, reason));
  let r = find v in
  let k = (r.id, (c : Elt.t), mask, false) in
  if Hashtbl.mem t.bound_seen k then t.s_dedup <- t.s_dedup + 1
  else begin
    Hashtbl.add t.bound_seen k ();
    r.lo_reasons <- (c, mask, reason) :: r.lo_reasons;
    let lb' = Elt.join t.space r.lo_bound (Elt.embed_bottom t.space ~mask c) in
    if not (Elt.equal lb' r.lo_bound) then begin
      r.lo_bound <- lb';
      r.lo <- Elt.join t.space r.lo lb';
      t.solved <- false;
      mark_dirty t r
    end
  end

(* Merge representative [o] into representative [r] (rank order decided by
   the caller): bounds join/meet, provenance concatenates, and [o]'s edges
   migrate to [r] with self-loops dropped and duplicates skipped. Stale
   entries naming [o] in {e other} variables' lists are left in place —
   propagation resolves every edge endpoint through [find]. *)
let absorb_var t r o =
  let sp = t.space in
  o.parent <- r;
  r.lo_bound <- Elt.join sp r.lo_bound o.lo_bound;
  r.hi_bound <- Elt.meet sp r.hi_bound o.hi_bound;
  r.lo <- Elt.join sp r.lo o.lo;
  r.hi <- Elt.meet sp r.hi o.hi;
  r.lo_reasons <- List.rev_append o.lo_reasons r.lo_reasons;
  r.hi_reasons <- List.rev_append o.hi_reasons r.hi_reasons;
  List.iter
    (fun (s, m, reason) ->
      let s = find s in
      if s != r then begin
        let k = (r.id, s.id, m) in
        if Hashtbl.mem t.edge_seen k then t.s_dedup <- t.s_dedup + 1
        else begin
          Hashtbl.add t.edge_seen k ();
          r.succs <- (s, m, reason) :: r.succs
        end
      end)
    o.succs;
  List.iter
    (fun (p, m, reason) ->
      let p = find p in
      if p != r then begin
        let k = (p.id, r.id, m) in
        if Hashtbl.mem t.edge_seen k then t.s_dedup <- t.s_dedup + 1
        else begin
          Hashtbl.add t.edge_seen k ();
          r.preds <- (p, m, reason) :: r.preds
        end
      end)
    o.preds;
  o.succs <- [];
  o.preds <- [];
  t.s_unified <- t.s_unified + 1;
  Hashtbl.remove t.dirty o.id;
  mark_dirty t r

let union t a b =
  let a = find a and b = find b in
  if a == b then a
  else begin
    let r, o = if a.rank >= b.rank then (a, b) else (b, a) in
    if r.rank = o.rank then r.rank <- r.rank + 1;
    absorb_var t r o;
    r
  end

(* Bounded DFS over full-mask edges from [src] looking for [dst]; returns
   the path of representatives (src first, dst last). The budget bounds
   total edge traversals, keeping cycle detection cheap on large graphs —
   partial online cycle elimination: missing a long cycle only costs
   propagation work, never soundness. *)
let cycle_budget = 64

let find_path t src dst =
  let full = Elt.full_mask t.space in
  let seen = Hashtbl.create 16 in
  let steps = ref 0 in
  let rec go v =
    let v = find v in
    if v == dst then Some [ v ]
    else if Hashtbl.mem seen v.id || !steps >= cycle_budget then None
    else begin
      Hashtbl.add seen v.id ();
      let rec try_edges = function
        | [] -> None
        | (s, m, _) :: rest ->
            incr steps;
            if m land full = full then (
              match go s with
              | Some p -> Some (v :: p)
              | None -> try_edges rest)
            else try_edges rest
      in
      try_edges v.succs
    end
  in
  go src

(* The edge [ra <= rb] was just inserted; a path [rb ~> ra] over full-mask
   edges closes a cycle, and every variable on it takes the same value in
   any solution — unify the lot. *)
let try_collapse t ra rb =
  match find_path t rb ra with
  | None | Some [] -> ()
  | Some (first :: rest) ->
      t.s_cycles <- t.s_cycles + 1;
      ignore (List.fold_left (fun acc v -> union t acc v) first rest)

(* var <= var, restricted to [mask]. *)
let add_leq_vv ?reason ?mask t a b =
  if a != b then begin
    let mask = Option.value mask ~default:(Elt.full_mask t.space) in
    log_atom t (Avv (a, b, mask, reason));
    let ra = find a and rb = find b in
    if ra != rb then begin
      let k = (ra.id, rb.id, mask) in
      if Hashtbl.mem t.edge_seen k then t.s_dedup <- t.s_dedup + 1
        (* the identical edge already exists between these representatives:
           the system is unchanged, [solved] stays valid *)
      else begin
        Hashtbl.add t.edge_seen k ();
        t.s_edges <- t.s_edges + 1;
        ra.succs <- (rb, mask, reason) :: ra.succs;
        rb.preds <- (ra, mask, reason) :: rb.preds;
        t.solved <- false;
        mark_dirty t ra;
        mark_dirty t rb;
        if t.cycle_elim && Elt.is_full_mask t.space mask then
          try_collapse t ra rb
      end
    end
  end

(* Ground constraint const <= const: checked immediately (mask-restricted). *)
let add_leq_cc ?reason ?mask t c1 c2 =
  let mask = Option.value mask ~default:(Elt.full_mask t.space) in
  if not (Elt.leq_masked t.space ~mask c1 c2) then
    t.ground_errors <-
      {
        err_var = None;
        err_msg =
          Fmt.str "unsatisfiable ground constraint %a <= %a%a"
            (Elt.pp_full t.space) c1 (Elt.pp_full t.space) c2
            Fmt.(option (any " (" ++ string ++ any ")"))
            reason;
      }
      :: t.ground_errors

let add_eq_vv ?reason ?mask t a b =
  add_leq_vv ?reason ?mask t a b;
  add_leq_vv ?reason ?mask t b a

(* Pin a variable to exactly [c] (used by annotations, whose rule types the
   result as exactly [l tau]). *)
let add_eq_vc ?reason ?mask t v c =
  add_leq_vc ?reason ?mask t v c;
  add_leq_cv ?reason ?mask t c v

(* ------------------------------------------------------------------ *)
(* Solving                                                             *)
(* ------------------------------------------------------------------ *)

(* One worklist pass. [seed] supplies the initial frontier; propagation
   pushes [lo] joins along forward edges and [hi] meets along reversed
   edges. Every popped representative is appended to [touched] so the
   caller can re-check bound violations on exactly the affected region. *)
let propagate t ~seed ~touched =
  let sp = t.space in
  let queue = Queue.create () in
  let inq = Hashtbl.create 64 in
  let push v =
    let v = find v in
    if not (Hashtbl.mem inq v.id) then begin
      Hashtbl.add inq v.id ();
      Queue.push v queue
    end
  in
  (* A tripped budget drains the worklists without propagating: (lo, hi)
     are left partial, which is why budgeted runs are reported degraded
     and classified conservatively by the caller. *)
  (* least pass *)
  seed push;
  while (not (Queue.is_empty queue)) && not (budget_tripped t) do
    let v = Queue.pop queue in
    Hashtbl.remove inq v.id;
    t.s_pops <- t.s_pops + 1;
    Option.iter Budget.note_pop t.budget;
    touched := v :: !touched;
    List.iter
      (fun (s, mask, _) ->
        let s = find s in
        if s != v then begin
          let contrib = Elt.embed_bottom sp ~mask v.lo in
          let lo' = Elt.join sp s.lo contrib in
          if not (Elt.equal lo' s.lo) then begin
            s.lo <- lo';
            push s
          end
        end)
      v.succs
  done;
  Queue.clear queue;
  Hashtbl.reset inq;
  (* greatest pass: dual, meets along reversed edges *)
  seed push;
  while (not (Queue.is_empty queue)) && not (budget_tripped t) do
    let v = Queue.pop queue in
    Hashtbl.remove inq v.id;
    t.s_pops <- t.s_pops + 1;
    Option.iter Budget.note_pop t.budget;
    touched := v :: !touched;
    List.iter
      (fun (p, mask, _) ->
        let p = find p in
        if p != v then begin
          let contrib = Elt.embed_top sp ~mask v.hi in
          let hi' = Elt.meet sp p.hi contrib in
          if not (Elt.equal hi' p.hi) then begin
            p.hi <- hi';
            push p
          end
        end)
      v.preds
  done

(* Explain why [v]'s least solution violates its upper bound: find the
   offending coordinate, then walk backwards (BFS over a queue) to a
   constant lower bound that raised it. *)
let explain t v =
  let v = find v in
  let sp = t.space in
  let bad = ref None in
  for i = 0 to Space.size sp - 1 do
    if !bad = None then begin
      let mask = Elt.singleton_mask sp i in
      if not (Elt.leq_masked sp ~mask v.lo v.hi_bound) then bad := Some i
    end
  done;
  match !bad with
  | None -> Fmt.str "%a: bound violation" pp_var v
  | Some i ->
      let q = Space.qual sp i in
      let mask = Elt.singleton_mask sp i in
      (* the value of coordinate i that lo carries *)
      let coord_of x = x land mask in
      let target = coord_of v.lo in
      (* BFS backwards for a var whose own constant lower bounds produce
         [target] on coordinate i *)
      let seen = Hashtbl.create 16 in
      let frontier = Queue.create () in
      Queue.push v frontier;
      let found = ref None in
      while Option.is_none !found && not (Queue.is_empty frontier) do
        let u = Queue.pop frontier in
        if not (Hashtbl.mem seen u.id) then begin
          Hashtbl.add seen u.id ();
          if coord_of u.lo_bound = target && coord_of u.lo = target then
            let reason =
              List.find_map
                (fun (c, m, r) ->
                  if m land mask <> 0 && coord_of c = target then
                    Some (Option.value r ~default:"constant bound")
                  else None)
                u.lo_reasons
            in
            found := Some (u, Option.value reason ~default:"constant bound")
          else
            List.iter
              (fun (p, m, _) ->
                let p = find p in
                if m land mask <> 0 && coord_of p.lo = target then
                  Queue.push p frontier)
              u.preds
        end
      done;
      let origin =
        match !found with
        | Some (u, r) -> Fmt.str "; forced at %a (%s)" pp_var u r
        | None -> ""
      in
      let bound_reason =
        List.find_map
          (fun (_, m, r) ->
            if m land mask <> 0 && not (Elt.leq_masked sp ~mask v.lo v.hi_bound)
            then r
            else None)
          v.hi_reasons
      in
      (* Ordered coordinates name the violating levels; classic two-point
         coordinates keep the historical message byte-for-byte. *)
      let levels =
        match Space.order sp i with
        | None -> ""
        | Some _ ->
            Fmt.str ": level %s exceeds bound %s"
              (Elt.level_name sp i v.lo)
              (Elt.level_name sp i v.hi_bound)
      in
      Fmt.str "qualifier %a of %a violates an upper bound%s%a%s" Qualifier.pp q
        pp_var v levels
        Fmt.(option (any " (" ++ string ++ any ")"))
        bound_reason origin

let last_errors t =
  let var_errs = Hashtbl.fold (fun _ e acc -> e :: acc) t.errors [] in
  let var_errs =
    List.sort
      (fun a b ->
        let id e = match e.err_var with Some v -> v.id | None -> -1 in
        compare (id a) (id b))
      var_errs
  in
  List.rev_append t.ground_errors var_errs

(* Record a violation for every representative in [touched] whose least
   solution escapes its constant upper bound. Violations are monotone
   (constraints are only added; [lo] only rises, [hi_bound] only falls),
   so entries never need revisiting. [explain] runs only here, after
   propagation has reached fixpoint, so it sees final [lo] values. *)
let check_violations t touched =
  List.iter
    (fun v ->
      if
        (not (Hashtbl.mem t.errors v.id))
        && not (Elt.leq t.space v.lo v.hi_bound)
      then Hashtbl.add t.errors v.id { err_var = Some v; err_msg = explain t v })
    touched

let result_of_errors t =
  match last_errors t with [] -> Ok () | es -> Error es

(* Incremental solve: seed the worklists from the dirty set only. [lo] and
   [hi] already reflect every bound added since the last solve (the add_*
   functions fold new bounds in eagerly), so propagating from the dirty
   region reaches exactly the variables whose solution can have changed. *)
let solve t =
  if not t.solved then begin
    let t0 = Unix.gettimeofday () in
    let touched = ref [] in
    (* seed in dirty-set insertion order: deterministic and matched by the
       arena solver, so [worklist_pops] is comparable across cores *)
    let seeds = List.rev t.dirty_order in
    propagate t
      ~seed:(fun push ->
        List.iter (fun v -> if Hashtbl.mem t.dirty v.id then push v) seeds)
      ~touched;
    check_violations t !touched;
    Hashtbl.reset t.dirty;
    t.dirty_order <- [];
    t.solved <- true;
    t.s_incr <- t.s_incr + 1;
    t.s_solve_s <- t.s_solve_s +. (Unix.gettimeofday () -. t0)
  end;
  result_of_errors t

(* Full solve: reset every representative to its bounds and propagate from
   everywhere. The ablation baseline for incremental solving, and a
   self-check hook (the fixpoint is unique, so the results must agree). *)
let solve_from_scratch t =
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun v ->
      if v.parent == v then begin
        v.lo <- v.lo_bound;
        v.hi <- v.hi_bound
      end)
    t.vars;
  let touched = ref [] in
  propagate t
    ~seed:(fun push -> List.iter (fun v -> if v.parent == v then push v) t.vars)
    ~touched;
  Hashtbl.reset t.errors;
  List.iter
    (fun v ->
      if
        v.parent == v
        && (not (Hashtbl.mem t.errors v.id))
        && not (Elt.leq t.space v.lo v.hi_bound)
      then Hashtbl.add t.errors v.id { err_var = Some v; err_msg = explain t v })
    t.vars;
  Hashtbl.reset t.dirty;
  t.dirty_order <- [];
  t.solved <- true;
  t.s_full <- t.s_full + 1;
  t.s_solve_s <- t.s_solve_s +. (Unix.gettimeofday () -. t0);
  result_of_errors t

let least t v =
  if not t.solved then ignore (solve t);
  (find v).lo

let greatest t v =
  if not t.solved then ignore (solve t);
  (find v).hi

(* Classification of one coordinate of a variable, per Section 4.4. *)
type verdict =
  | Forced_up    (* least solution already at the coordinate's top: "must be const" *)
  | Forced_down  (* greatest solution at its bottom: "must not be const" *)
  | Free         (* anything in between *)

let classify t v i =
  if not t.solved then ignore (solve t);
  let v = find v in
  (* In the upset encoding a coordinate is at its sub-lattice top when its
     whole bit range is set and at its bottom when the range is clear; for
     a classic two-point qualifier "top" is presence (positive) or absence
     (negative), exactly the historical verdicts. *)
  let m = Elt.singleton_mask t.space i in
  if v.lo land m = m then Forced_up
  else if v.hi land m = 0 then Forced_down
  else Free

let classify_name t v name = classify t v (Space.find t.space name)

let pp_verdict ppf = function
  | Forced_up -> Fmt.string ppf "forced-up"
  | Forced_down -> Fmt.string ppf "forced-down"
  | Free -> Fmt.string ppf "free"

(* ------------------------------------------------------------------ *)
(* Recording and schemes (Section 3.2)                                 *)
(* ------------------------------------------------------------------ *)

(* Run [f], capturing every atom added during its execution (including
   atoms emitted by nested instantiations). Recorders nest. *)
let recording t f =
  let r = ref [] in
  t.recorders <- r :: t.recorders;
  Fun.protect
    ~finally:(fun () ->
      t.recorders <- List.filter (fun r' -> r' != r) t.recorders)
    (fun () ->
      let x = f () in
      (x, List.rev !r))

type scheme = {
  sid : int;
      (* unique scheme identity (atomic counter, globally unique across
         stores); instantiation-memo keys hang off it *)
  locals : var list;
  (* every variable local to the scheme: the generalized interface
     variables plus the existentially bound internals; all are renamed at
     instantiation so instances cannot interfere (Section 3.2) *)
  atoms : atom list;
}

let scheme_counter = Atomic.make 0

let make_scheme ~locals ~atoms =
  { sid = Atomic.fetch_and_add scheme_counter 1; locals; atoms }

let scheme_id s = s.sid
let scheme_locals s = s.locals
let scheme_atoms s = s.atoms

(* Re-emit the scheme's constraints under a fresh renaming of its locals.
   Returns the renaming so callers can rebuild the instantiated type.
   Atoms name original variables, so each instance re-derives its own
   edges (and hence its own unifications) among the fresh copies.

   [?bind] lets a caller resolve some scheme variables to existing
   variables of [t] instead of freshening them: the parallel analysis uses
   it to instantiate a scheme recorded in one store into another, mapping
   the first store's variables to their mirrors without materializing any
   extra copies (which would perturb variable-creation parity with the
   serial run). A bound variable is never freshened; a free variable that
   [bind] does not resolve is used as-is, exactly as before. *)
let instantiate ?bind t s =
  let bound v = match bind with Some f -> f v | None -> None in
  let map = Hashtbl.create (List.length s.locals) in
  List.iter
    (fun v ->
      match bound v with
      | Some v' -> Hashtbl.replace map v.uid v'
      | None -> Hashtbl.replace map v.uid (fresh ~name:v.vname t))
    s.locals;
  let rn v =
    match Hashtbl.find_opt map v.uid with
    | Some v' -> v'
    | None -> ( match bound v with Some v' -> v' | None -> v)
  in
  List.iter
    (function
      | Avc (v, c, mask, reason) -> add_leq_vc ?reason ~mask t (rn v) c
      | Acv (c, v, mask, reason) -> add_leq_cv ?reason ~mask t c (rn v)
      | Avv (a, b, mask, reason) -> add_leq_vv ?reason ~mask t (rn a) (rn b))
    s.atoms;
  rn

(* ------------------------------------------------------------------ *)
(* Batched constraint merge (parallel map-reduce support)              *)
(* ------------------------------------------------------------------ *)

(* A batch is the complete, ordered content of a store: every variable in
   creation order and every atom in insertion order. Exporting a private
   worker store and absorbing it into the shared store replays exactly the
   operations the serial analysis would have performed, so dedup, cycle
   collapse and the final solution are identical. *)
type batch = {
  b_vars : var list;  (* creation order *)
  b_atoms : atom list;  (* insertion order *)
}

let export t = { b_vars = List.rev t.vars; b_atoms = List.rev t.log }

let batch_vars b = List.length b.b_vars
let batch_atoms b = List.length b.b_atoms

(* Replay [b] into [t]. [?bind] resolves batch variables that must map to
   pre-existing variables of [t] (the worker's mirrors of shared globals);
   every other batch variable is re-created fresh, {e in the batch's
   creation order}, so the absorbing store allocates the same number of
   variables in the same sequence as a serial run that had generated the
   batch's constraints directly. Returns the realized renaming. *)
let absorb t ?bind (b : batch) =
  let t0 = Unix.gettimeofday () in
  let bound v = match bind with Some f -> f v | None -> None in
  let map = Hashtbl.create (List.length b.b_vars) in
  List.iter
    (fun v ->
      match bound v with
      | Some g -> Hashtbl.replace map v.uid g
      | None -> Hashtbl.replace map v.uid (fresh ~name:v.vname t))
    b.b_vars;
  let rn v = match Hashtbl.find_opt map v.uid with Some v' -> v' | None -> v in
  List.iter
    (function
      | Avc (v, c, mask, reason) -> add_leq_vc ?reason ~mask t (rn v) c
      | Acv (c, v, mask, reason) -> add_leq_cv ?reason ~mask t c (rn v)
      | Avv (x, y, mask, reason) -> add_leq_vv ?reason ~mask t (rn x) (rn y))
    b.b_atoms;
  t.s_absorb_s <- t.s_absorb_s +. (Unix.gettimeofday () -. t0);
  fun v -> Hashtbl.find_opt map v.uid

(* the reference store has no splice-fast path: both names are the same
   Hashtbl replay (present so the cores share a signature) *)
let absorb_replay = absorb

(* A batch whose absorb would be a literal no-op: no atoms to replay and
   every variable already bound to a shared-store variable (so no fresh
   variables would be created either). The parallel merge skips these —
   common for leaf-function tasks that touched only pre-mirrored globals —
   without perturbing variable-creation parity with a serial run. *)
let batch_skippable ~bind (b : batch) =
  b.b_atoms = []
  && List.for_all (fun v -> Option.is_some (bind v)) b.b_vars

let pp_atom sp ppf = function
  | Avc (v, c, _, _) -> Fmt.pf ppf "%a <= %a" pp_var v (Elt.pp_full sp) c
  | Acv (c, v, _, _) -> Fmt.pf ppf "%a <= %a" (Elt.pp_full sp) c pp_var v
  | Avv (a, b, _, _) -> Fmt.pf ppf "%a <= %a" pp_var a pp_var b

let pp_error ppf e = Fmt.string ppf e.err_msg
let error_message e = e.err_msg

(* ------------------------------------------------------------------ *)
(* Baseline solvers (ablation; see DESIGN.md)                          *)
(* ------------------------------------------------------------------ *)

(* Forced full worklist least-solution pass (no incrementality), over
   representatives. Kept as a benchmark arm. *)
let solve_least t =
  let sp = t.space in
  let queue = Queue.create () in
  let inq = Hashtbl.create 64 in
  let push v =
    if not (Hashtbl.mem inq v.id) then begin
      Hashtbl.add inq v.id ();
      Queue.push v queue
    end
  in
  List.iter
    (fun v ->
      if v.parent == v then begin
        v.lo <- v.lo_bound;
        push v
      end)
    t.vars;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Hashtbl.remove inq v.id;
    t.s_pops <- t.s_pops + 1;
    List.iter
      (fun (s, mask, _) ->
        let s = find s in
        if s != v then begin
          let contrib = Elt.embed_bottom sp ~mask v.lo in
          let lo' = Elt.join sp s.lo contrib in
          if not (Elt.equal lo' s.lo) then begin
            s.lo <- lo';
            push s
          end
        end)
      v.succs
  done

(* Same least solution computed by round-robin iteration to fixpoint, with
   no worklist. Kept as the ablation baseline for the micro-benchmarks. *)
let solve_least_naive t =
  let sp = t.space in
  List.iter (fun v -> if v.parent == v then v.lo <- v.lo_bound) t.vars;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun v ->
        if v.parent == v then
          List.iter
            (fun (s, mask, _) ->
              let s = find s in
              if s != v then begin
                let contrib = Elt.embed_bottom sp ~mask v.lo in
                let lo' = Elt.join sp s.lo contrib in
                if not (Elt.equal lo' s.lo) then begin
                  s.lo <- lo';
                  changed := true
                end
              end)
            v.succs)
      t.vars
  done

(* ------------------------------------------------------------------ *)
(* Scheme simplification (the open problem of Section 6, basic form)   *)
(* ------------------------------------------------------------------ *)

(* A scheme's meaning is the projection of its solution set onto the
   observable variables (the interface variables of the generalized type
   plus any free variables); the existentially bound internals can be
   eliminated whenever elimination is exact. Over a lattice, a variable v
   with full-mask constraints {a_i <= v, L_i <= v, v <= b_j, v <= U_j} can
   be replaced by the pairwise compositions (take v = the join of its
   lower bounds), which is exact. We apply three passes to a fixed point:

   1. duplicate atoms are dropped;
   2. a non-observable local with no upper (resp. no lower) atoms is
      dropped together with its atoms — they are vacuous;
   3. a non-observable local whose in-degree or out-degree is at most 1
      (so composition does not grow the system) is eliminated by pairwise
      composition.

   Masked atoms (per-coordinate well-formedness conditions) are treated
   conservatively: a variable with any non-full-mask atom is kept. *)

let simplify_scheme t ~(interface : var list) (s : scheme) : scheme =
  let full = Lattice.Elt.full_mask t.space in
  let sp = t.space in
  let local_ids = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace local_ids v.id ()) s.locals;
  let observable = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace observable v.id ()) interface;
  (* free variables of the scheme are observable too *)
  List.iter
    (fun a ->
      let mark v =
        if not (Hashtbl.mem local_ids v.id) then
          Hashtbl.replace observable v.id ()
      in
      match a with
      | Avc (v, _, _, _) | Acv (_, v, _, _) -> mark v
      | Avv (x, y, _, _) ->
          mark x;
          mark y)
    s.atoms;
  (* dedup *)
  let key = function
    | Avc (v, c, m, _) -> (0, v.id, -1, c, m)
    | Acv (c, v, m, _) -> (1, v.id, -1, c, m)
    | Avv (x, y, m, _) -> (2, x.id, y.id, 0, m)
  in
  let seen = Hashtbl.create 128 in
  let atoms =
    ref
      (List.filter
         (fun a ->
           let k = key a in
           if Hashtbl.mem seen k then false
           else begin
             Hashtbl.add seen k ();
             (* drop trivially vacuous atoms *)
             match a with
             | Avc (_, c, m, _) ->
                 not (Lattice.Elt.leq_masked sp ~mask:m (Lattice.Elt.top sp) c)
             | Acv (c, _, m, _) ->
                 not
                   (Lattice.Elt.leq_masked sp ~mask:m c (Lattice.Elt.bottom sp))
             | Avv (x, y, _, _) -> x.id <> y.id
           end)
         s.atoms)
  in
  let eliminated = Hashtbl.create 32 in
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !passes < 20 do
    changed := false;
    incr passes;
    (* index: per variable, lower-side atoms (x <= v) and upper-side *)
    let lowers = Hashtbl.create 64 and uppers = Hashtbl.create 64 in
    let masked_ok = Hashtbl.create 64 in
    let add tbl id a = Hashtbl.replace tbl id (a :: try Hashtbl.find tbl id with Not_found -> []) in
    List.iter
      (fun a ->
        match a with
        | Avc (v, _, m, _) ->
            add uppers v.id a;
            if m <> full then Hashtbl.replace masked_ok v.id ()
        | Acv (_, v, m, _) ->
            add lowers v.id a;
            if m <> full then Hashtbl.replace masked_ok v.id ()
        | Avv (x, y, m, _) ->
            add uppers x.id a;
            add lowers y.id a;
            if m <> full then begin
              Hashtbl.replace masked_ok x.id ();
              Hashtbl.replace masked_ok y.id ()
            end)
      !atoms;
    let eliminable v =
      Hashtbl.mem local_ids v.id
      && (not (Hashtbl.mem observable v.id))
      && (not (Hashtbl.mem masked_ok v.id))
      && not (Hashtbl.mem eliminated v.id)
    in
    let kill = Hashtbl.create 16 in
    let extra = ref [] in
    List.iter
      (fun v ->
        if eliminable v && not (Hashtbl.mem kill v.id) then begin
          let lo = try Hashtbl.find lowers v.id with Not_found -> [] in
          let up = try Hashtbl.find uppers v.id with Not_found -> [] in
          let nlo = List.length lo and nup = List.length up in
          (* never touch a neighbour killed this pass: a freshly composed
             atom may reference this variable, and deleting or composing
             against the stale pass-start index would resurrect dead
             variables; the next pass sees the rebuilt index *)
          let neighbour_killed =
            List.exists
              (fun a ->
                match a with
                | Avc (v', _, _, _) | Acv (_, v', _, _) ->
                    Hashtbl.mem kill v'.id
                | Avv (x, y, _, _) ->
                    Hashtbl.mem kill x.id || Hashtbl.mem kill y.id)
              (lo @ up)
          in
          if neighbour_killed then ()
          else if nlo = 0 || nup = 0 then begin
            (* vacuous: delete the variable and its atoms *)
            Hashtbl.replace kill v.id ();
            Hashtbl.replace eliminated v.id ();
            changed := true
          end
          else if nlo <= 1 || nup <= 1 then begin
            (* exact pairwise composition *)
            let ok = ref true in
            let comps = ref [] in
            List.iter
              (fun la ->
                List.iter
                  (fun ua ->
                    match (la, ua) with
                    | Acv (c, _, _, r), Avc (_, c', _, r') ->
                        if Lattice.Elt.leq sp c c' then ()
                        else (
                          ignore (r, r');
                          ok := false)
                    | Acv (c, _, _, r), Avv (_, y, _, _) ->
                        comps := Acv (c, y, full, r) :: !comps
                    | Avv (x, _, _, r), Avc (_, c', _, _) ->
                        comps := Avc (x, c', full, r) :: !comps
                    | Avv (x, _, _, r), Avv (_, y, _, _) ->
                        if x.id <> y.id then comps := Avv (x, y, full, r) :: !comps
                    | _ -> ok := false)
                  up)
              lo;
            if !ok then begin
              Hashtbl.replace kill v.id ();
              Hashtbl.replace eliminated v.id ();
              extra := !comps @ !extra;
              changed := true
            end
          end
        end)
      s.locals;
    if !changed then begin
      let touches id = Hashtbl.mem kill id in
      atoms :=
        List.filter
          (fun a ->
            match a with
            | Avc (v, _, _, _) | Acv (_, v, _, _) -> not (touches v.id)
            | Avv (x, y, _, _) -> not (touches x.id || touches y.id))
          !atoms
        @ !extra
    end
  done;
  let locals =
    List.filter (fun v -> not (Hashtbl.mem eliminated v.id)) s.locals
  in
  make_scheme ~locals ~atoms:!atoms

let scheme_size s = List.length s.atoms

(* ------------------------------------------------------------------ *)
(* Scheme compaction (exact projection onto the interface)             *)
(* ------------------------------------------------------------------ *)

(* [compact t ~interface s] projects the scheme's constraint set onto its
   observable variables: the [interface] list (the qualifier variables
   reachable from the generalized qualified type) plus every free variable
   mentioned by an atom. The result is observationally equivalent — not a
   heuristic: instantiating the compacted scheme yields exactly the same
   least and greatest solutions on the interface and free variables, and
   the same bound violations, as instantiating the original.

   The pass (iterated to a fixed point):

   - duplicate and vacuous atoms are dropped (a self-edge [v <= v on m]
     contributes [embed_bottom m lo(v) <= lo(v)] and dually — a no-op);
   - a purely internal variable [v] is eliminated by composing each of its
     lower atoms with each of its upper edges. Masked atoms compose
     exactly: [embed_bottom m2 (embed_bottom m1 x) = embed_bottom (m1&m2) x]
     (dually for [embed_top]), so [c <= v on mc, v <= s on ms] becomes
     [embed_bottom mc c <= s on ms] and [p <= v on mp, v <= s on ms]
     becomes [p <= s on mp&ms];
   - elimination requires that dropping [v]'s own constant upper bounds
     cannot hide a violation: [v] must have no upper-bound atoms at all,
     or no predecessor edges and constant bounds that already satisfy
     [join(lowers) <= meet(uppers)] (its least solution is then exactly
     the join of its constant lower bounds, so the check is decided at
     compaction time once and for all instances). Inconsistently bounded
     internals are kept, preserving the error report;
   - a growth cap keeps composition from densifying the graph: [v] is
     eliminated only if the composed atoms do not outnumber the removed
     ones (plus slack 2); iteration can unlock such variables later.

   Unification with (or among) interface variables needs no special case:
   full-mask cycles survive as composed edge chains, which the store
   re-collapses at instantiation.

   Determinism matters downstream (parallel workers must publish the same
   scheme the serial run builds): the pass never consults representatives
   ([find]) or iterates a hashtable for output; surviving atoms keep their
   original order, composed atoms append in generation order, and the
   local list keeps its original order filtered to interface members and
   variables still mentioned. *)
let compact t ~(interface : var list) (s : scheme) : scheme =
  let sp = t.space in
  t.s_sv_before <- t.s_sv_before + List.length s.locals;
  t.s_se_before <- t.s_se_before + List.length s.atoms;
  let local_uids = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace local_uids v.uid ()) s.locals;
  let iface = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace iface v.uid ()) interface;
  (* dedup + vacuous-drop filter; [seen] persists across passes: a key can
     only name a removed atom if one of its endpoints was eliminated, and
     composition never reproduces atoms on eliminated endpoints *)
  let seen = Hashtbl.create 128 in
  let vacuous = function
    | Avc (_, c, m, _) -> Elt.leq_masked sp ~mask:m (Elt.top sp) c
    | Acv (c, _, m, _) -> Elt.leq_masked sp ~mask:m c (Elt.bottom sp)
    | Avv (x, y, m, _) -> x.uid = y.uid || m land Elt.full_mask sp = 0
  in
  let key = function
    | Avc (v, c, m, _) -> (0, v.uid, -1, (c : Elt.t), m)
    | Acv (c, v, m, _) -> (1, v.uid, -1, c, m)
    | Avv (x, y, m, _) -> (2, x.uid, y.uid, 0, m)
  in
  let fresh_atom a =
    (not (vacuous a))
    &&
    let k = key a in
    if Hashtbl.mem seen k then false
    else begin
      Hashtbl.add seen k ();
      true
    end
  in
  let atoms = ref (List.filter fresh_atom s.atoms) in
  let eliminated = Hashtbl.create 32 in
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !passes < 64 do
    changed := false;
    incr passes;
    let lowers = Hashtbl.create 64 and uppers = Hashtbl.create 64 in
    let add tbl uid a =
      Hashtbl.replace tbl uid
        (a :: (try Hashtbl.find tbl uid with Not_found -> []))
    in
    List.iter
      (fun a ->
        match a with
        | Avc (v, _, _, _) -> add uppers v.uid a
        | Acv (_, v, _, _) -> add lowers v.uid a
        | Avv (x, y, _, _) ->
            add uppers x.uid a;
            add lowers y.uid a)
      !atoms;
    let kill = Hashtbl.create 16 in
    let extra = ref [] in
    List.iter
      (fun v ->
        if
          Hashtbl.mem local_uids v.uid
          && (not (Hashtbl.mem iface v.uid))
          && (not (Hashtbl.mem eliminated v.uid))
          && not (Hashtbl.mem kill v.uid)
        then begin
          let lo = try Hashtbl.find lowers v.uid with Not_found -> [] in
          let up = try Hashtbl.find uppers v.uid with Not_found -> [] in
          (* never compose against a neighbour killed this pass: the
             pass-start index would resurrect its atoms; the next pass
             sees the rebuilt index *)
          let neighbour_killed =
            List.exists
              (fun a ->
                match a with
                | Avc (x, _, _, _) | Acv (_, x, _, _) -> Hashtbl.mem kill x.uid
                | Avv (x, y, _, _) ->
                    Hashtbl.mem kill x.uid || Hashtbl.mem kill y.uid)
              (lo @ up)
          in
          if not neighbour_killed then begin
            let acvs =
              List.filter_map
                (function Acv (c, _, m, r) -> Some (c, m, r) | _ -> None)
                lo
            in
            let preds =
              List.filter_map
                (function Avv (p, _, m, r) -> Some (p, m, r) | _ -> None)
                lo
            in
            let avcs =
              List.filter_map
                (function Avc (_, c, m, r) -> Some (c, m, r) | _ -> None)
                up
            in
            let succs =
              List.filter_map
                (function Avv (_, s, m, r) -> Some (s, m, r) | _ -> None)
                up
            in
            let eliminable =
              match avcs with
              | [] -> true
              | _ :: _ ->
                  preds = []
                  &&
                  let lo_const =
                    List.fold_left
                      (fun acc (c, m, _) ->
                        Elt.join sp acc (Elt.embed_bottom sp ~mask:m c))
                      (Elt.bottom sp) acvs
                  in
                  let hi_const =
                    List.fold_left
                      (fun acc (c, m, _) ->
                        Elt.meet sp acc (Elt.embed_top sp ~mask:m c))
                      (Elt.top sp) avcs
                  in
                  Elt.leq sp lo_const hi_const
            in
            let nlo = List.length acvs + List.length preds in
            let nup = List.length avcs + List.length succs in
            let ncomposed = nlo * List.length succs in
            if eliminable && ncomposed <= nlo + nup + 2 then begin
              Hashtbl.replace kill v.uid ();
              Hashtbl.replace eliminated v.uid ();
              changed := true;
              List.iter
                (fun (sv, ms, rs) ->
                  List.iter
                    (fun (c, mc, _) ->
                      extra :=
                        Acv (Elt.embed_bottom sp ~mask:mc c, sv, ms, rs)
                        :: !extra)
                    acvs;
                  List.iter
                    (fun (p, mp, _) ->
                      extra := Avv (p, sv, mp land ms, rs) :: !extra)
                    preds)
                succs
            end
          end
        end)
      s.locals;
    if !changed then begin
      let touches uid = Hashtbl.mem kill uid in
      let kept =
        List.filter
          (fun a ->
            match a with
            | Avc (v, _, _, _) | Acv (_, v, _, _) -> not (touches v.uid)
            | Avv (x, y, _, _) -> not (touches x.uid || touches y.uid))
          !atoms
      in
      atoms := kept @ List.filter fresh_atom (List.rev !extra)
    end
  done;
  let mentioned = Hashtbl.create 64 in
  List.iter
    (fun a ->
      let mark v = Hashtbl.replace mentioned v.uid () in
      match a with
      | Avc (v, _, _, _) | Acv (_, v, _, _) -> mark v
      | Avv (x, y, _, _) ->
          mark x;
          mark y)
    !atoms;
  (* interface variables stay local even when unconstrained: they occur in
     the generalized type and must still be freshened per instance *)
  let locals =
    List.filter
      (fun v -> Hashtbl.mem iface v.uid || Hashtbl.mem mentioned v.uid)
      s.locals
  in
  t.s_sv_after <- t.s_sv_after + List.length locals;
  t.s_se_after <- t.s_se_after + List.length !atoms;
  make_scheme ~locals ~atoms:!atoms

(* Can this scheme's constraints, alone, ever produce a bound violation in
   an instance — under the most pessimistic assumption about inflow from
   the outside? Free variables and [exposed] locals (the interface, which
   receives call-site inflow not part of the scheme) are pinned to top;
   least solutions propagate from there over the scheme's edges; every
   local must still satisfy its own constant upper bounds. A [true] answer
   licenses sharing one instantiation between call sites: the shared copy
   cannot under-report errors, because it can produce none. *)
let atoms_never_violate sp ~(locals : var list) ~(exposed : var list)
    (atoms : atom list) : bool =
  let local_uids = Hashtbl.create 32 in
  List.iter (fun v -> Hashtbl.replace local_uids v.uid ()) locals;
  let pinned = Hashtbl.create 32 in
  List.iter (fun v -> Hashtbl.replace pinned v.uid ()) exposed;
  let is_pinned v =
    (not (Hashtbl.mem local_uids v.uid)) || Hashtbl.mem pinned v.uid
  in
  let bot = Elt.bottom sp and top = Elt.top sp in
  let lo = Hashtbl.create 32 and hib = Hashtbl.create 32 in
  let get tbl dflt uid = try Hashtbl.find tbl uid with Not_found -> dflt in
  let lo_of v = if is_pinned v then top else get lo bot v.uid in
  let edges = ref [] in
  List.iter
    (function
      | Acv (c, v, m, _) ->
          if not (is_pinned v) then
            Hashtbl.replace lo v.uid
              (Elt.join sp (get lo bot v.uid) (Elt.embed_bottom sp ~mask:m c))
      | Avc (v, c, m, _) ->
          if Hashtbl.mem local_uids v.uid then
            Hashtbl.replace hib v.uid
              (Elt.meet sp (get hib top v.uid) (Elt.embed_top sp ~mask:m c))
      | Avv (x, y, m, _) -> edges := (x, y, m) :: !edges)
    atoms;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (x, y, m) ->
        if not (is_pinned y) then begin
          let contrib = Elt.embed_bottom sp ~mask:m (lo_of x) in
          let lo' = Elt.join sp (get lo bot y.uid) contrib in
          if not (Elt.equal lo' (get lo bot y.uid)) then begin
            Hashtbl.replace lo y.uid lo';
            changed := true
          end
        end)
      !edges
  done;
  List.for_all (fun v -> Elt.leq sp (lo_of v) (get hib top v.uid)) locals

(* ------------------------------------------------------------------ *)
(* Standalone evaluation of an atom list                               *)
(* ------------------------------------------------------------------ *)

(* Least/greatest solutions of a bare atom list, computed with local
   tables and without touching any store or variable record. Variables not
   mentioned default to (bottom, top). Used to summarize schemes in
   isolation (polymorphic recursion's convergence test). *)
let solve_atoms sp (atoms : atom list) : int -> Elt.t * Elt.t =
  let lo = Hashtbl.create 64 and hi = Hashtbl.create 64 in
  let get tbl dflt id = try Hashtbl.find tbl id with Not_found -> dflt in
  let bot = Elt.bottom sp and top = Elt.top sp in
  let edges = ref [] in
  List.iter
    (function
      | Acv (c, v, m, _) ->
          Hashtbl.replace lo v.id
            (Elt.join sp (get lo bot v.id) (Elt.embed_bottom sp ~mask:m c))
      | Avc (v, c, m, _) ->
          Hashtbl.replace hi v.id
            (Elt.meet sp (get hi top v.id) (Elt.embed_top sp ~mask:m c))
      | Avv (x, y, m, _) -> edges := (x.id, y.id, m) :: !edges)
    atoms;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (x, y, m) ->
        (* forward: lo flows x -> y *)
        let contrib = Elt.embed_bottom sp ~mask:m (get lo bot x) in
        let lo' = Elt.join sp (get lo bot y) contrib in
        if not (Elt.equal lo' (get lo bot y)) then begin
          Hashtbl.replace lo y lo';
          changed := true
        end;
        (* backward: hi flows y -> x *)
        let contrib = Elt.embed_top sp ~mask:m (get hi top y) in
        let hi' = Elt.meet sp (get hi top x) contrib in
        if not (Elt.equal hi' (get hi top x)) then begin
          Hashtbl.replace hi x hi';
          changed := true
        end)
      !edges
  done;
  fun id -> (get lo bot id, get hi top id)

(* Replay the full constraint log through the store-free evaluator: an
   independent oracle for the optimized solver, keyed by original (stable)
   variable ids. Used by the equivalence property tests. *)
let naive_bounds t = solve_atoms t.space (List.rev t.log)

(* Present a scheme as a constrained type qualifier prefix — the notation
   question raised in Section 6 ("we currently do not have a notation for
   specifying constraints in the source language"). Combine with
   [simplify_scheme] for readable output. *)
let pp_scheme space ppf (s : scheme) =
  Fmt.pf ppf "∀%a. {%a}"
    (Fmt.list ~sep:(Fmt.any " ") pp_var)
    s.locals
    (Fmt.list ~sep:(Fmt.any ", ") (pp_atom space))
    s.atoms
