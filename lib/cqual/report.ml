(** Measurement of const-inference results (Section 4.4).

    "Interesting" const positions are the pointer levels of the arguments
    and results of {e defined} functions: [int foo(int x, int *y)] has one
    interesting location — the contents of [y], which is itself a ref. For
    every interesting position the analysis decides that the ref (1) must
    be const, (2) must not be const, or (3) could be either; the number of
    {e possible} consts is (1) + (3), which is what the Mono and Poly
    columns of Table 2 count. Removing a source const merely moves a
    position from (1) to (3), so the possible count does not depend on the
    source annotations. *)

module Solver = Typequal.Solver
open Cfront
open Qtypes

type where = Param of int * string | Ret

(* Positions are plain data (no solver-variable back-pointers): the whole
   {!results} record must survive [Marshal] for the persistent run cache.
   The [p_unit]/[p_line]/[p_col] anchor gives every position a stable
   source address, so a marshaled result can still be queried by
   [file:line:col] even though the solver variable is gone. *)
type position = {
  p_fun : string;
  p_where : where;
  p_level : int;  (** 1 = contents of the pointer itself *)
  p_declared : bool;  (** const written in the source at this level *)
  p_levels : (string * string) option;
      (** inferred [least, greatest] level names when the measured
          qualifier is an ordered (multi-level) coordinate; [None] for
          classic two-point qualifiers *)
  p_unit : string;  (** source unit the anchor refers to; "" if unknown *)
  p_line : int;  (** 1-based line of the declaring name; 0 if unknown *)
  p_col : int;  (** 1-based column of the declaring name; 0 if unknown *)
}

(** Canonical stable address of a position: [unit:line:col@level] when
    the anchor carries column precision, otherwise the structural
    fallback [unit:fun:pN@level] / [unit:fun:ret@level]. Both forms are
    registered in the {!measure_indexed} index, so clients may query by
    either. *)
let structural_key (p : position) =
  let w =
    match p.p_where with
    | Param (i, _) -> Printf.sprintf "p%d" i
    | Ret -> "ret"
  in
  Printf.sprintf "%s:%s:%s@%d" p.p_unit p.p_fun w p.p_level

let position_key (p : position) =
  if p.p_line > 0 && p.p_col > 0 then
    Printf.sprintf "%s:%d:%d@%d" p.p_unit p.p_line p.p_col p.p_level
  else structural_key p

type verdict = Must_const | Must_not_const | Either

type results = {
  positions : (position * verdict) list;
  declared : int;  (** the "Declared" column *)
  possible : int;  (** the "Mono"/"Poly" column: (1) + (3) *)
  must : int;  (** class (1) *)
  total : int;  (** the "Total possible" column *)
  type_errors : int;  (** unsatisfiable constraints (0 for correct C) *)
  warnings : string list;
  outcomes : (string * Analysis.outcome) list;
      (** per-function fate, in source order; degraded functions have no
          positions and their callers see unconstrained summaries *)
}

(* Walk the declared C type and the translated r-type in parallel,
   collecting one position per pointer level. The qualifier variable rides
   alongside each position internally; {!measure} classifies through it
   and drops it before publishing. *)
let positions_of_rt ?(qual = "const") ?(loc = ("", 0, 0)) ~fname ~where prog
    (decl_ty : Cast.ctype) (r : rt) : (position * Solver.var) list =
  let p_unit, p_line, p_col = loc in
  let rec go level decl_ty r acc =
    match (decl_ty, r) with
    | (Cast.TPtr (target, _) | Cast.TArray (target, _, _)), RPtr c ->
        let pos =
          {
            p_fun = fname;
            p_where = where;
            p_level = level;
            p_declared = Cast.has_qual qual (Cast.quals_of target);
            p_levels = None;
            p_unit;
            p_line;
            p_col;
          }
        in
        go (level + 1) target c.contents ((pos, c.q) :: acc)
    | _ -> List.rev acc
  in
  go 1 (Cprog.decay (Cprog.expand prog decl_ty)) r []

(* [locate fname line] resolves an AST line to its (unit, local line)
   pair: per-unit sessions map through the member's home unit, concat
   mode through the span table. The default leaves lines untouched with
   an anonymous unit, preserving historical output for batch callers. *)
let positions_of_fun ?qual ?(locate = fun _fname line -> ("", line)) prog
    (f : Cast.fundef) (iface : fsig) : (position * Solver.var) list =
  let anchor (line, col) =
    if line <= 0 then ("", 0, 0)
    else
      let u, l = locate f.f_name line in
      (u, l, col)
  in
  let param_locs =
    (* defensively re-align with f_params (exotic declarators may have
       produced fewer recorded name spans than parameters) *)
    let n = List.length f.f_params in
    let rec pad locs k =
      if k = 0 then []
      else
        match locs with
        | l :: rest -> l :: pad rest (k - 1)
        | [] -> (0, 0) :: pad [] (k - 1)
    in
    pad f.f_param_locs n
  in
  let params =
    List.concat
      (List.map2
         (fun (i, (pname, pty), ploc) (c : cell) ->
           positions_of_rt ?qual ~loc:(anchor ploc) ~fname:f.f_name
             ~where:(Param (i, pname)) prog pty c.contents)
         (List.map2
            (fun (i, p) ploc -> (i, p, ploc))
            (List.mapi (fun i p -> (i, p)) f.f_params)
            param_locs)
         iface.fs_params)
  in
  let ret =
    positions_of_rt ?qual ~loc:(anchor f.f_name_loc) ~fname:f.f_name
      ~where:Ret prog f.f_ret iface.fs_ret
  in
  params @ ret

(** Classify every interesting position after solving.

    If the analysis ran under a {!Typequal.Budget} that tripped, the
    solver's least/greatest solutions may be partial, so every position is
    conservatively classified [Either] and every function is reported
    degraded (keeping any more specific per-function reason already
    recorded). *)
let measure_full ?locate (env : Analysis.env) (ifaces : (string * fsig) list)
    : results * (position * verdict * Solver.var) list =
  let store = env.Analysis.store in
  ignore (Solver.solve store : (unit, Solver.error list) result);
  let type_errors = List.length (Solver.last_errors store) in
  let qual = env.Analysis.rules.Analysis.qr_name in
  let budget_trip =
    match env.Analysis.budget with
    | Some b -> Typequal.Budget.exhausted b
    | None -> None
  in
  let positions =
    List.concat_map
      (fun (name, iface) ->
        match Cprog.find_fun env.Analysis.prog name with
        | Some f -> (
            try positions_of_fun ~qual ?locate env.Analysis.prog f iface
            with Cprog.Frontend_error m ->
              Analysis.degrade env name ("measurement failed: " ^ m);
              [])
        | None -> [])
      ifaces
  in
  (* when the measured qualifier is an ordered coordinate, also report
     the inferred level range by name (never raw masks) *)
  let sp = Solver.space store in
  let qi = Typequal.Lattice.Space.find_opt sp qual in
  let level_range var =
    match qi with
    | Some i when Typequal.Lattice.Space.order sp i <> None ->
        Some
          ( Typequal.Lattice.Elt.level_name sp i (Solver.least store var),
            Typequal.Lattice.Elt.level_name sp i (Solver.greatest store var) )
    | _ -> None
  in
  let classified =
    List.map
      (fun (p, var) ->
        let v =
          if budget_trip <> None then Either
          else
            match Solver.classify_name store var qual with
            | Solver.Forced_up -> Must_const
            | Solver.Forced_down -> Must_not_const
            | Solver.Free -> Either
        in
        let p =
          if budget_trip <> None then p
          else { p with p_levels = level_range var }
        in
        (p, v, var))
      positions
  in
  let pairs = List.map (fun (p, v, _) -> (p, v)) classified in
  let outcomes =
    List.map
      (fun (f : Cast.fundef) ->
        let o =
          match Hashtbl.find_opt env.Analysis.outcomes f.f_name with
          | Some (Analysis.Degraded _ as o) -> o
          | recorded -> (
              match budget_trip with
              | Some r -> Analysis.Degraded ("budget exhausted: " ^ r)
              | None -> (
                  match recorded with
                  | Some o -> o
                  | None -> Analysis.Analyzed))
        in
        (f.f_name, o))
      (Cprog.functions env.Analysis.prog)
  in
  let count f = List.length (List.filter f pairs) in
  ( {
      positions = pairs;
      declared = count (fun (p, _) -> p.p_declared);
      possible = count (fun (_, v) -> v <> Must_not_const);
      must = count (fun (_, v) -> v = Must_const);
      total = List.length pairs;
      type_errors;
      warnings = env.Analysis.warnings;
      outcomes;
    },
    classified )

let measure ?locate env ifaces = fst (measure_full ?locate env ifaces)

(** Like {!measure}, but also return an index from stable position keys
    to the live position, verdict and solver variable. Each position is
    registered under its structural key and (when the anchor has column
    precision) its canonical [unit:line:col@level] key. Only meaningful
    against a live store — the index holds solver-variable back-pointers
    and must not be marshaled. *)
let measure_indexed ?locate env ifaces :
    results * (string, position * verdict * Solver.var) Hashtbl.t =
  let r, classified = measure_full ?locate env ifaces in
  let index = Hashtbl.create 64 in
  List.iter
    (fun (p, v, var) ->
      let add k =
        if not (Hashtbl.mem index k) then Hashtbl.add index k (p, v, var)
      in
      add (structural_key p);
      let ck = position_key p in
      if ck <> structural_key p then add ck)
    classified;
  (r, index)

let pp_where ppf = function
  | Param (i, name) -> Fmt.pf ppf "param %d (%s)" i name
  | Ret -> Fmt.string ppf "return"

let pp_verdict ppf = function
  | Must_const -> Fmt.string ppf "must-const"
  | Must_not_const -> Fmt.string ppf "non-const"
  | Either -> Fmt.string ppf "could-be-const"

let pp_position ppf ((p, v) : position * verdict) =
  Fmt.pf ppf "%s: %a level %d%s: %a%a" p.p_fun pp_where p.p_where p.p_level
    (if p.p_declared then " [declared const]" else "")
    pp_verdict v
    Fmt.(
      option (fun ppf (lo, hi) ->
          if lo = hi then pf ppf " [%s]" lo else pf ppf " [%s..%s]" lo hi))
    p.p_levels

let pp_results ppf (r : results) =
  Fmt.pf ppf "declared=%d inferred-possible=%d must=%d total=%d errors=%d"
    r.declared r.possible r.must r.total r.type_errors
