(** The analysis session: every stage of the const-inference pipeline —
    unit table, linked program, FDG, published schemes, solved store,
    report — as a persistent value with precise invalidation, plus the
    batch entry points that drive one-shot runs over the same machinery.

    The staged pipeline Table 2 and Figure 6 are produced from lives
    here; {!Driver} re-exports the batch surface for existing callers.
    A {!t} keeps the warm artifacts between runs: the per-unit AST memo
    (keyed by unit content digest) and the per-SCC scheme memo (keyed by
    the same digests PR 7's persistent cache computes), so
    {!update_unit} dirties exactly the cone of the edit — unchanged
    units replay their ASTs without lexing and unchanged SCCs whose
    dependency interfaces still hold replay their schemes without
    re-generation. Queries ({!classify}, {!explain}, {!whatif}) are
    answered against the warm solved store through stable
    [unit:line:col] position keys (see {!Report.position_key}).

    Multi-file projects run through the {e per-unit frontend} by
    default: each translation unit is lexed and parsed independently (in
    parallel under [--jobs]), then a deterministic serial link step
    merges the unit programs and threads the cross-unit parser
    environment. The pre-PR-9 "concatenate, then parse once" pipeline is
    kept behind {!Concat} as the parity oracle — both frontends produce
    byte-identical reports, diagnostics, and solver counters. See
    DESIGN.md "Per-unit frontend" and "Session architecture". *)

type timing = {
  t_compile : float;  (** parse + table construction, seconds *)
  t_analysis : float;  (** constraint generation + solving *)
}

(** Which frontend assembles the whole program from translation units. *)
type frontend =
  | Per_unit  (** per-unit parse + link (default) *)
  | Concat  (** legacy megastring concatenation: the parity oracle *)

(** Frontend phase breakdown. Under [--jobs] > 1 the lex/parse/build
    times are summed across worker domains (like the solver's per-phase
    timers), so they can exceed the compile wall clock. *)
type frontend_stats = {
  fs_units : int;
  fs_reparsed : int;
      (** units whose speculative parse was discarded and redone with
          the linked environment (typedef/enum-name overlap, anonymous
          tag numbering, or a diagnostic budget spill) *)
  fs_lex_s : float;
  fs_parse_s : float;
  fs_build_s : float;
  fs_link_s : float;
}

type run = {
  results : Report.results;
  timing : timing;
  lines : int;
  n_functions : int;
  n_constraints : int;  (** number of qualifier variables, a proxy for size *)
  solver_stats : Typequal.Solver.stats;
      (** constraint-store counters (unifications, dedup, cycle collapses,
          worklist pops) accumulated over the whole run *)
  diagnostics : Cfront.Diag.t list;
      (** lexer/parser diagnostics recovered from, in source order; empty
          for a clean parse. Multi-unit runs carry unit-local positions
          ([Diag.d_unit] names the file). *)
  fdg_scc_count : int;  (** SCCs in the function dependence graph *)
  fdg_largest_scc : int;  (** size of the largest (mutual-recursion) SCC *)
  wavefront_width : int;
      (** maximum SCCs simultaneously ready under wavefront scheduling: an
          upper bound on useful analysis parallelism *)
  par : Analysis.par_stats option;
      (** parallel-engine phase breakdown; [None] for serial runs *)
  frontend : frontend_stats option;
      (** per-unit frontend phase breakdown; [None] for the concat
          oracle, single-source runs, and whole-run cache hits *)
}

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

exception Error of string

let compile src =
  match Cfront.Cparse.parse_program_result src with
  | Error m -> raise (Error m)
  | Ok p -> Cfront.Cprog.build p

(** [Some cores] when [jobs] asks for more worker domains than the host
    can schedule — the caller should warn: oversubscribed domains contend
    instead of parallelizing (BENCH_hotpath.json measured jobs-4 on one
    core at ~7x slower than serial). *)
let oversubscription ~jobs =
  let cores = Typequal.Pool.cores_available () in
  if jobs > cores then Some cores else None

(** The oversubscription advisory as a structured diagnostic (severity
    {!Cfront.Diag.Notice}, code N0901). The batch CLIs render it with a
    ["warning: "] prefix — byte-identical to the historical free-form
    line — while the daemon ships it to clients as data. *)
let oversubscription_notice ~jobs : Cfront.Diag.t option =
  match oversubscription ~jobs with
  | None -> None
  | Some cores ->
      Some
        (Cfront.Diag.notice ~code:"N0901"
           (Printf.sprintf
              "--jobs %d exceeds the %d available cores; domains will \
               contend rather than parallelize"
              jobs cores))

(* ------------------------------------------------------------------ *)
(* Persistent cache (three disk tiers; see DESIGN.md)                  *)
(* ------------------------------------------------------------------ *)

module Cache = Typequal.Cache

(** an open cache plus the caller's identity string for everything the
    fingerprints below cannot see — the rule set beyond its qualifier
    space (e.g. which CLI analysis flavour and lattice file built it) *)
type cache_spec = { cs_cache : Cache.t; cs_opts_id : string }

(* The context digest stamped into every envelope: qualifier-space dump
   (the full lattice structure), compiler version (Marshal payloads are
   not portable across it), and a payload-format revision to bump whenever
   any marshaled type in this file or the analysis changes shape. *)
let space_fingerprint (sp : Typequal.Lattice.Space.t) : Digest.t =
  Digest.string
    (Fmt.str "%a|%s|payload-fmt-3" Typequal.Lattice.Space.pp_dump sp
       Sys.ocaml_version)

(** Open a cache directory for runs under this rule set (default: const
    inference). Returns [None] — after [warn] — when the path is unusable;
    run without a cache then. Never raises. *)
let open_cache ?warn ?(rules = Analysis.const_rules) ~opts_id dir :
    cache_spec option =
  match
    Cache.open_dir ?warn ~ctx:(space_fingerprint rules.Analysis.qr_space) dir
  with
  | Some c -> Some { cs_cache = c; cs_opts_id = opts_id }
  | None -> None

(* Unit identity: the per-file content hash that keys invalidation. The
   name participates, so renaming a file on disk invalidates exactly the
   units (and run) that file contributes to. *)
let unit_digest name content = Digest.string (name ^ "\000" ^ content)

(* a unit's span in the concatenated program: first line, last line, unit
   name, content digest *)
type span = int * int * string * string

let mode_name = function
  | Analysis.Mono -> "mono"
  | Analysis.Poly -> "poly"
  | Analysis.Polyrec -> "polyrec"

(* Everything that parameterizes inference besides the program text and
   the qualifier space (already in the envelope context). [jobs] is
   deliberately absent: results are jobs-invariant. So is the frontend:
   per-unit and concat runs are byte-identical, hence cache-compatible. *)
let opt_fingerprint ~opts_id ~mode ~field_sharing ~simplify ~compact
    ~max_errors : string =
  let ob = function Some b -> string_of_bool b | None -> "-" in
  Digest.string
    (String.concat "|"
       [
         opts_id;
         mode_name mode;
         ob field_sharing;
         ob simplify;
         ob compact;
         (match max_errors with Some n -> string_of_int n | None -> "-");
       ])

(* The cross-unit declaration context a function's analysis depends on
   beyond its own unit: globals, prototypes, typedefs, struct/union
   layouts, enums — everything of the program except function bodies
   (covered per-unit) and the FDG dependency set (covered by the
   envelopes' dependency digests). Line numbers and initializers are
   excluded, so touching one unit does not invalidate the others — and
   the digest is frontend-invariant (unit-local vs concatenated line
   numbers never enter it). *)
let env_fingerprint (prog : Cfront.Cprog.t) : string =
  let b = Buffer.create 4096 in
  let put x = Buffer.add_string b (Marshal.to_string x []) in
  List.iter
    (fun (g : Cfront.Cast.global) ->
      match g with
      | Cfront.Cast.GFun _ -> ()
      | Cfront.Cast.GVar d ->
          put ("v", d.Cfront.Cast.d_name, d.Cfront.Cast.d_type)
      | Cfront.Cast.GProto (n, t, _) -> put ("p", n, t)
      | Cfront.Cast.GTypedef (n, t, _) -> put ("t", n, t)
      | Cfront.Cast.GComp (tag, u, fields, _) -> put ("c", (tag, u, fields))
      | Cfront.Cast.GEnum (tag, items, _) -> put ("e", (tag, items)))
    prog.Cfront.Cprog.order;
  Digest.string (Buffer.contents b)

(* the run record's cacheable core: no wall-clock, no parallel-phase
   breakdown, solver counters sanitized of nondeterministic fields *)
type cached_run = {
  cr_results : Report.results;
  cr_lines : int;
  cr_n_functions : int;
  cr_n_constraints : int;
  cr_stats : Typequal.Solver.stats;
  cr_diags : Cfront.Diag.t list;
  cr_scc_count : int;
  cr_largest_scc : int;
  cr_wavefront : int;
}

(* load kind/key and unmarshal as ['a]; any decode failure rejects the
   entry (the envelope verified, so the payload was well-formed bytes that
   mean nothing to us — e.g. written by a differently-shaped build) *)
let load_marshal (type a) (c : Cache.t) ~kind ~key ~deps : a option =
  match Cache.load c ~kind ~key ~deps with
  | None -> None
  | Some payload -> (
      match (Marshal.from_string payload 0 : a) with
      | v -> Some v
      | exception ((Out_of_memory | Sys.Break) as e) -> raise e
      | exception _ ->
          Cache.reject_undecodable c ~kind ~key;
          None)

(* analysis + measurement, also returning the live interfaces and the
   stable-key position index the persistent session queries through *)
let analyze_indexed ?rules ?field_sharing ?simplify ?compact ?budget ?jobs
    ?cache ?locate mode prog =
  let (env, ifaces), t =
    time (fun () ->
        Analysis.run ?rules ?field_sharing ?simplify ?compact ?budget ?cache
          ?jobs mode prog)
  in
  let st = env.Analysis.store in
  let solve0 = (Typequal.Solver.stats st).solve_s in
  let (results, index), t2 =
    time (fun () -> Report.measure_indexed ?locate env ifaces)
  in
  (* the report's own cost, minus the final solve it triggers (that time
     is already accounted to solve_s) *)
  let solve_d = (Typequal.Solver.stats st).solve_s -. solve0 in
  Typequal.Solver.note_phase st Typequal.Solver.Report
    (Float.max 0. (t2 -. solve_d));
  (env, ifaces, results, index, t +. t2)

let analyze ?rules ?field_sharing ?simplify ?compact ?budget ?jobs ?cache
    mode prog =
  let env, _, results, _, t =
    analyze_indexed ?rules ?field_sharing ?simplify ?compact ?budget ?jobs
      ?cache mode prog
  in
  (env, results, t)

(* ------------------------------------------------------------------ *)
(* Shared back half of both frontends                                  *)
(* ------------------------------------------------------------------ *)

(* the frontend's product, whichever frontend built it *)
type compiled = {
  co_prog : Cfront.Cprog.t;
  co_diags : Cfront.Diag.t list;
  co_degraded : (string * string) list;
  co_lines : int;
  co_t_compile : float;
  co_frontend : frontend_stats option;
}

let finish_full ?rules ?field_sharing ?simplify ?compact ?budget ?jobs
    ?cache ?locate mode (co : compiled) =
  let env, ifaces, results, index, t_analysis =
    analyze_indexed ?rules ?field_sharing ?simplify ?compact ?budget ?jobs
      ?cache ?locate mode co.co_prog
  in
  let fdg = Fdg.build co.co_prog in
  let results =
    {
      results with
      (* tail-recursive construction: a pathological input can demote
         thousands of functions, and outcome lists are program-sized *)
      Report.outcomes =
        List.rev_append
          (List.rev results.Report.outcomes)
          (List.rev
             (List.rev_map
                (fun (name, reason) -> (name, Analysis.Degraded reason))
                co.co_degraded));
    }
  in
  let run =
    {
      results;
      timing = { t_compile = co.co_t_compile; t_analysis };
      lines = co.co_lines;
      n_functions = List.length (Cfront.Cprog.functions co.co_prog);
      n_constraints = Typequal.Solver.num_vars env.Analysis.store;
      solver_stats = Analysis.stats env;
      diagnostics = co.co_diags;
      fdg_scc_count = Fdg.scc_count fdg;
      fdg_largest_scc = Fdg.largest_scc fdg;
      wavefront_width = Fdg.wavefront_width fdg;
      par = env.Analysis.par;
      frontend = co.co_frontend;
    }
  in
  (run, env, ifaces, index)

let finish ?rules ?field_sharing ?simplify ?compact ?budget ?jobs ?cache
    ?locate mode (co : compiled) : run =
  let run, _, _, _ =
    finish_full ?rules ?field_sharing ?simplify ?compact ?budget ?jobs
      ?cache ?locate mode co
  in
  run

let run_of_cached (cr : cached_run) ~t_lookup : run =
  {
    results = cr.cr_results;
    timing = { t_compile = 0.; t_analysis = t_lookup };
    lines = cr.cr_lines;
    n_functions = cr.cr_n_functions;
    n_constraints = cr.cr_n_constraints;
    solver_stats = cr.cr_stats;
    diagnostics = cr.cr_diags;
    fdg_scc_count = cr.cr_scc_count;
    fdg_largest_scc = cr.cr_largest_scc;
    wavefront_width = cr.cr_wavefront;
    par = None;
    frontend = None;
  }

let cached_of_run (r : run) : cached_run =
  {
    cr_results = r.results;
    cr_lines = r.lines;
    cr_n_functions = r.n_functions;
    cr_n_constraints = r.n_constraints;
    cr_stats = Analysis.sanitize_stats r.solver_stats;
    cr_diags = r.diagnostics;
    cr_scc_count = r.fdg_scc_count;
    cr_largest_scc = r.fdg_largest_scc;
    cr_wavefront = r.wavefront_width;
  }

(* the whole-run cache key over the units' content digests: shared by
   both frontends, whose runs are byte-identical *)
let run_key ~optfp (digests : string list) =
  Digest.string (optfp ^ String.concat "" digests)

(* ------------------------------------------------------------------ *)
(* Concat frontend (the parity oracle)                                 *)
(* ------------------------------------------------------------------ *)

(* Rebind a concatenated-program diagnostic to its unit: the unit whose
   line range contains the span start, with lines shifted to be
   unit-local. Diagnostics that land in no unit (impossible in practice:
   separator lines hold only a comment) pass through untouched. *)
let remap_concat_diag (spans : span list) (d : Cfront.Diag.t) :
    Cfront.Diag.t =
  let l = d.Cfront.Diag.d_span.Cfront.Diag.sl in
  match
    List.find_opt (fun (s, e, _, _) -> l >= s && l <= e) spans
  with
  | Some (s, _, name, _) ->
      let sp = d.Cfront.Diag.d_span in
      Cfront.Diag.with_unit
        ~span:
          {
            sp with
            Cfront.Diag.sl = sp.Cfront.Diag.sl - s + 1;
            el = sp.Cfront.Diag.el - s + 1;
          }
        name d
  | None -> d

(* Normalize the concat parse's diagnostic order to the per-unit order:
   unit-major, lexical diagnostics before parse diagnostics within a
   unit. (The megastring parse reports every unit's lexical errors
   before any unit's parse errors; the per-unit frontend finishes each
   unit before starting the next.) The sort is stable, so within one
   (unit, phase) bucket the source order is preserved. *)
let normalize_concat_diags (spans : span list) (diags : Cfront.Diag.t list) :
    Cfront.Diag.t list =
  let unit_index =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun i (_, _, name, _) -> Hashtbl.replace tbl name i) spans;
    fun d ->
      match d.Cfront.Diag.d_unit with
      | Some u -> ( match Hashtbl.find_opt tbl u with Some i -> i | None -> 0)
      | None -> 0
  in
  let phase d =
    (* E01xx lexical, anything else (E02xx parse, E0299 note) after *)
    if String.length d.Cfront.Diag.d_code >= 3
       && String.sub d.Cfront.Diag.d_code 0 3 = "E01"
    then 0
    else 1
  in
  List.stable_sort
    (fun a b -> compare (unit_index a, phase a) (unit_index b, phase b))
    diags

(* multi-unit parity with the per-unit frontend: report unit-local
   positions and per-unit diagnostic order *)
let localize_concat ~(spans : span list) (pr : Cfront.Cparse.presult) =
  match spans with
  | [] | [ _ ] -> pr
  | _ ->
      {
        pr with
        Cfront.Cparse.pr_diags =
          normalize_concat_diags spans
            (List.map (remap_concat_diag spans) pr.Cfront.Cparse.pr_diags);
      }

(* resolve a concatenated-program line to its (unit, local line) pair —
   the concat frontend's position anchor, mirrored by the per-unit
   frontend's unit table so both produce identical position keys *)
let locate_of_spans (spans : span list) _fname line =
  match List.find_opt (fun (s, e, _, _) -> line >= s && line <= e) spans with
  | Some (s, _, name, _) -> (name, line - s + 1)
  | None -> ("", line)

(* One mode over an already-concatenated program [src] whose units are
   described by [spans]. The cold path is the pre-cache pipeline verbatim;
   the cached path layers three tiers over it — whole-run, parsed AST, and
   per-SCC schemes (inside {!Analysis.run}) — each of which degrades to
   the tier below on any miss or rejection, so every fault converges to
   the cold result. *)
let run_concat ?(mode = Analysis.Mono) ?rules ?field_sharing ?simplify
    ?compact ?budget ?jobs ?max_errors ?cache ?lines ~(spans : span list)
    (src : string) : run =
  let lines = match lines with Some n -> n | None -> Cfront.Cprog.count_lines src in
  let localize = localize_concat ~spans in
  let locate = locate_of_spans spans in
  let finish ?cache co =
    finish ?rules ?field_sharing ?simplify ?compact ?budget ?jobs ?cache
      ~locate mode co
  in
  let compiled pr prog t_compile =
    {
      co_prog = prog;
      co_diags = pr.Cfront.Cparse.pr_diags;
      co_degraded = pr.Cfront.Cparse.pr_degraded;
      co_lines = lines;
      co_t_compile = t_compile;
      co_frontend = None;
    }
  in
  let cold_run ?cache () =
    let (pr, prog), t_compile =
      time (fun () ->
          let pr =
            localize (Cfront.Cparse.parse_program_partial ?max_errors src)
          in
          (pr, Cfront.Cprog.build pr.Cfront.Cparse.pr_prog))
    in
    finish ?cache (compiled pr prog t_compile)
  in
  (* budgeted runs are load-dependent, not reproducible artifacts: never
     cached, never served from cache *)
  let cache = match budget with Some _ -> None | None -> cache in
  match cache with
  | None -> cold_run ()
  | Some cs -> (
      let t0 = Unix.gettimeofday () in
      let optfp =
        opt_fingerprint ~opts_id:cs.cs_opts_id ~mode ~field_sharing ~simplify
          ~compact ~max_errors
      in
      let run_key = run_key ~optfp (List.map (fun (_, _, _, d) -> d) spans) in
      match
        (load_marshal cs.cs_cache ~kind:"run" ~key:run_key ~deps:[]
          : cached_run option)
      with
      | Some cr -> run_of_cached cr ~t_lookup:(Unix.gettimeofday () -. t0)
      | None ->
          let ast_key =
            Digest.string
              (Printf.sprintf "ast\000%s\000%s"
                 (match max_errors with
                 | Some n -> string_of_int n
                 | None -> "-")
                 src)
          in
          let (pr, prog), t_compile =
            time (fun () ->
                let pr =
                  match
                    (load_marshal cs.cs_cache ~kind:"ast" ~key:ast_key
                       ~deps:[]
                      : Cfront.Cparse.presult option)
                  with
                  | Some pr -> pr
                  | None ->
                      let pr =
                        localize
                          (Cfront.Cparse.parse_program_partial ?max_errors
                             src)
                      in
                      Cache.store cs.cs_cache ~kind:"ast" ~key:ast_key
                        ~deps:[]
                        (Marshal.to_string pr []);
                      pr
                in
                (pr, Cfront.Cprog.build pr.Cfront.Cparse.pr_prog))
          in
          let unit_of =
            let tbl = Hashtbl.create 64 in
            List.iter
              (fun (f : Cfront.Cast.fundef) ->
                List.iter
                  (fun (s, e, _, d) ->
                    if
                      f.Cfront.Cast.f_line >= s
                      && f.Cfront.Cast.f_line <= e
                      && not (Hashtbl.mem tbl f.Cfront.Cast.f_name)
                    then Hashtbl.replace tbl f.Cfront.Cast.f_name d)
                  spans)
              (Cfront.Cprog.functions prog);
            fun name -> Hashtbl.find_opt tbl name
          in
          let actx =
            {
              Analysis.cc_cache = Some cs.cs_cache;
              cc_memo = None;
              cc_key_prefix = env_fingerprint prog ^ optfp;
              cc_unit_of = unit_of;
            }
          in
          let run =
            finish ~cache:actx (compiled pr prog t_compile)
          in
          Cache.store cs.cs_cache ~kind:"run" ~key:run_key ~deps:[]
            (Marshal.to_string (cached_of_run run) []);
          run)

(* ------------------------------------------------------------------ *)
(* Per-unit frontend                                                   *)
(* ------------------------------------------------------------------ *)

(* the per-unit AST cache payload: the speculative (environment-free)
   parse of one unit, reusable under any link order. Reparses triggered
   by the link environment are never cached — they depend on it. *)
type cached_unit = { cu_res : Cfront.Cparse.uresult }

let unit_key ~max_errors ~digest =
  Digest.string (Printf.sprintf "unit\000%d\000%s" max_errors digest)

(* one unit's frontend product, pre-link *)
type unit_fe = {
  uf_name : string;
  uf_src : string;
  uf_digest : string;
  uf_res : Cfront.Cparse.uresult;
  uf_prog : Cfront.Cprog.t;  (* build of the speculative parse *)
}

(** The per-unit frontend alone: speculative parallel lex+parse+build per
    translation unit, then a deterministic serial link that replays the
    cross-unit parser environment in file order and re-parses the rare
    unit whose speculative result it could have influenced. Returns the
    compiled program plus the function-name -> (defining unit, unit
    digest) table: the digest keys the per-SCC cache tier, the unit name
    anchors the report's stable position keys. [fe_memo] is the
    persistent session's in-memory AST tier (unit digest -> speculative
    parse), probed before the disk tier and fed by fresh parses. *)
let compile_units ?cache ?fe_memo ~jobs ~me (files : (string * string) list)
    : compiled * (string, string * string) Hashtbl.t =
  let lines =
    List.fold_left
      (fun acc (_, src) -> acc + Cfront.Cprog.count_lines src)
      0 files
  in
  let multi = match files with [] | [ _ ] -> false | _ -> true in
  let t0 = Unix.gettimeofday () in
  let files_a = Array.of_list files in
  let digests_a =
    Array.map (fun (name, src) -> unit_digest name src) files_a
  in
  let n = Array.length files_a in
      (* --- per-unit AST memo + cache probes (serial: neither the memo
         table nor cache handles are domain-safe) --- *)
      let probed : Cfront.Cparse.uresult option array = Array.make n None in
      (match fe_memo with
      | None -> ()
      | Some m ->
          Array.iteri
            (fun i _ ->
              match Hashtbl.find_opt m digests_a.(i) with
              | Some res -> probed.(i) <- Some res
              | None -> ())
            files_a);
      (match cache with
      | None -> ()
      | Some cs ->
          Array.iteri
            (fun i _ ->
              if probed.(i) = None then
                match
                  (load_marshal cs.cs_cache ~kind:"unit"
                     ~key:(unit_key ~max_errors:me ~digest:digests_a.(i))
                     ~deps:[]
                    : cached_unit option)
                with
                | Some cu -> probed.(i) <- Some cu.cu_res
                | None -> ())
            files_a);
      (* --- speculative lex+parse+build, one task per unit --- *)
      let slots : unit_fe option array = Array.make n None in
      let tmu = Mutex.create () in
      let lex_s = ref 0. and parse_s = ref 0. and build_s = ref 0. in
      let add cell dt =
        Mutex.lock tmu;
        cell := !cell +. dt;
        Mutex.unlock tmu
      in
      Typequal.Pool.with_pool ~jobs (fun pool ->
          Array.iteri
            (fun i (name, src) ->
              Typequal.Pool.submit pool (fun () ->
                  let res =
                    match probed.(i) with
                    | Some res -> res
                    | None ->
                        let (tb, lex_diags), t_lex =
                          time (fun () ->
                              Cfront.Clexer.tokenize_buf ~max_errors:me src)
                        in
                        add lex_s t_lex;
                        let res, t_parse =
                          time (fun () ->
                              Cfront.Cparse.parse_unit ~max_errors:me tb
                                ~lex_diags)
                        in
                        add parse_s t_parse;
                        res
                  in
                  let prog, t_build =
                    time (fun () ->
                        Cfront.Cprog.build
                          res.Cfront.Cparse.ur_pr.Cfront.Cparse.pr_prog)
                  in
                  add build_s t_build;
                  slots.(i) <-
                    Some
                      {
                        uf_name = name;
                        uf_src = src;
                        uf_digest = digests_a.(i);
                        uf_res = res;
                        uf_prog = prog;
                      }))
            files_a;
          Typequal.Pool.wait pool);
      (* --- persist fresh speculative parses (memo and disk) --- *)
      Array.iteri
        (fun i uf ->
          match (probed.(i), uf) with
          | None, Some uf ->
              (match fe_memo with
              | Some m -> Hashtbl.replace m digests_a.(i) uf.uf_res
              | None -> ());
              (match cache with
              | Some cs ->
                  Cache.store cs.cs_cache ~kind:"unit"
                    ~key:(unit_key ~max_errors:me ~digest:digests_a.(i))
                    ~deps:[]
                    (Marshal.to_string { cu_res = uf.uf_res } [])
              | None -> ())
          | _ -> ())
        slots;
      (* --- serial link: validate each speculative parse against the
         accumulated environment, re-parse when it could have been
         influenced, thread the diagnostic budget, merge in file order --- *)
      let link_t0 = Unix.gettimeofday () in
      let env_typedefs : (string, unit) Hashtbl.t = Hashtbl.create 64 in
      let env_enums : (string, int) Hashtbl.t = Hashtbl.create 64 in
      let env_anon = ref 0 in
      let consumed = ref 0 in
      let capped = ref false in
      let reparsed = ref 0 in
      let progs = ref [] in
      let diags = ref [] in
      let degraded = ref [] in
      let unit_of_tbl : (string, string * string) Hashtbl.t =
        Hashtbl.create 64
      in
      Array.iter
        (fun uf ->
          let uf = Option.get uf in
          if not !capped then
            if !consumed >= me then begin
              (* the budget ran out exactly at a unit boundary: a
                 whole-program parse would give up at this unit's first
                 token *)
              capped := true;
              let d =
                Cfront.Diag.note ~code:"E0299"
                  uf.uf_res.Cfront.Cparse.ur_first_span
                  (Printf.sprintf
                     "too many errors (%d); giving up on the rest of the \
                      file"
                     me)
              in
              let d =
                if multi then Cfront.Diag.with_unit uf.uf_name d else d
              in
              diags := d :: !diags
            end
            else begin
              let spec = uf.uf_res in
              let k =
                List.length spec.Cfront.Cparse.ur_pr.Cfront.Cparse.pr_diags
              in
              let mention_hit =
                (Hashtbl.length env_typedefs > 0
                || Hashtbl.length env_enums > 0)
                && List.exists
                     (fun id ->
                       Hashtbl.mem env_typedefs id
                       || Hashtbl.mem env_enums id)
                     spec.Cfront.Cparse.ur_idents
              in
              let anon_hit =
                !env_anon > 0 && spec.Cfront.Cparse.ur_anon > 0
              in
              let budget_hit = !consumed > 0 && k > 0 && !consumed + k >= me in
              let res, prog =
                if not (mention_hit || anon_hit || budget_hit) then
                  (spec, uf.uf_prog)
                else begin
                  incr reparsed;
                  let seed =
                    {
                      Cfront.Cparse.us_typedefs =
                        Hashtbl.fold
                          (fun k () acc -> k :: acc)
                          env_typedefs [];
                      us_enums =
                        Hashtbl.fold
                          (fun k v acc -> (k, v) :: acc)
                          env_enums [];
                      us_anon = !env_anon;
                      us_count_base = !consumed;
                    }
                  in
                  let tb, lex_diags =
                    Cfront.Clexer.tokenize_buf ~max_errors:(me - !consumed)
                      uf.uf_src
                  in
                  let res =
                    Cfront.Cparse.parse_unit ~max_errors:me ~seed tb
                      ~lex_diags
                  in
                  ( res,
                    Cfront.Cprog.build
                      res.Cfront.Cparse.ur_pr.Cfront.Cparse.pr_prog )
                end
              in
              let pr = res.Cfront.Cparse.ur_pr in
              consumed := !consumed + List.length pr.Cfront.Cparse.pr_diags;
              if res.Cfront.Cparse.ur_capped then capped := true;
              List.iter
                (fun name -> Hashtbl.replace env_typedefs name ())
                res.Cfront.Cparse.ur_typedefs;
              List.iter
                (fun (name, v) -> Hashtbl.replace env_enums name v)
                res.Cfront.Cparse.ur_enums;
              env_anon := !env_anon + res.Cfront.Cparse.ur_anon;
              progs := prog :: !progs;
              List.iter
                (fun d ->
                  let d =
                    if multi then Cfront.Diag.with_unit uf.uf_name d else d
                  in
                  diags := d :: !diags)
                pr.Cfront.Cparse.pr_diags;
              List.iter
                (fun dg -> degraded := dg :: !degraded)
                pr.Cfront.Cparse.pr_degraded;
              List.iter
                (fun (f : Cfront.Cast.fundef) ->
                  if not (Hashtbl.mem unit_of_tbl f.Cfront.Cast.f_name) then
                    Hashtbl.replace unit_of_tbl f.Cfront.Cast.f_name
                      (uf.uf_name, uf.uf_digest))
                (Cfront.Cprog.functions prog)
            end)
        slots;
      let prog = Cfront.Cprog.merge (List.rev !progs) in
      let link_s = Unix.gettimeofday () -. link_t0 in
      let t_compile = Unix.gettimeofday () -. t0 in
      let fe =
        {
          fs_units = n;
          fs_reparsed = !reparsed;
          fs_lex_s = !lex_s;
          fs_parse_s = !parse_s;
          fs_build_s = !build_s;
          fs_link_s = link_s;
        }
      in
      let co =
        {
          co_prog = prog;
          co_diags = List.rev !diags;
          co_degraded = List.rev !degraded;
          co_lines = lines;
          co_t_compile = t_compile;
          co_frontend = Some fe;
        }
      in
      (co, unit_of_tbl)

(* the per-unit frontend's position anchor: a function's lines are
   already unit-local, so only the unit name needs resolving *)
let locate_of_tbl (tbl : (string, string * string) Hashtbl.t) fname line =
  match Hashtbl.find_opt tbl fname with
  | Some (u, _) -> (u, line)
  | None -> ("", line)

(** One mode over the per-unit pipeline, with the whole-run and per-unit
    AST cache tiers layered over {!compile_units}. *)
let run_units ?(mode = Analysis.Mono) ?rules ?field_sharing ?simplify
    ?compact ?budget ?(jobs = 1) ?max_errors ?cache
    (files : (string * string) list) : run =
  let me = Option.value max_errors ~default:20 in
  (* budgeted runs are never cached (see run_concat) *)
  let cache = match budget with Some _ -> None | None -> cache in
  let t0 = Unix.gettimeofday () in
  let digests = List.map (fun (n, s) -> unit_digest n s) files in
  let optfp =
    match cache with
    | None -> ""
    | Some cs ->
        opt_fingerprint ~opts_id:cs.cs_opts_id ~mode ~field_sharing ~simplify
          ~compact ~max_errors
  in
  let rkey = run_key ~optfp digests in
  let run_hit =
    match cache with
    | None -> None
    | Some cs ->
        (load_marshal cs.cs_cache ~kind:"run" ~key:rkey ~deps:[]
          : cached_run option)
  in
  match run_hit with
  | Some cr -> run_of_cached cr ~t_lookup:(Unix.gettimeofday () -. t0)
  | None ->
      let co, unit_of_tbl = compile_units ?cache ~jobs ~me files in
      let actx =
        match cache with
        | None -> None
        | Some cs ->
            Some
              {
                Analysis.cc_cache = Some cs.cs_cache;
                cc_memo = None;
                cc_key_prefix = env_fingerprint co.co_prog ^ optfp;
                cc_unit_of =
                  (fun name ->
                    Option.map snd (Hashtbl.find_opt unit_of_tbl name));
              }
      in
      let run =
        finish ?rules ?field_sharing ?simplify ?compact ?budget ~jobs
          ?cache:actx ~locate:(locate_of_tbl unit_of_tbl) mode co
      in
      (match cache with
      | None -> ()
      | Some cs ->
          Cache.store cs.cs_cache ~kind:"run" ~key:rkey ~deps:[]
            (Marshal.to_string (cached_of_run run) []));
      run

(* ------------------------------------------------------------------ *)
(* Batch entry points                                                  *)
(* ------------------------------------------------------------------ *)

(** Run one mode on C source, recovering from lexer/parser errors: globals
    that fail to parse are dropped (with a diagnostic), function bodies
    that fail are demoted to prototypes and reported as degraded outcomes.
    Raises only for faults that leave nothing to analyze (e.g.
    [Cfront.Cprog.Frontend_error] from table construction). *)
let run_source ?mode ?rules ?field_sharing ?simplify ?compact ?budget ?jobs
    ?max_errors ?cache ?(unit = "<input>") (src : string) : run =
  run_concat ?mode ?rules ?field_sharing ?simplify ?compact ?budget ?jobs
    ?max_errors ?cache
    ~spans:[ (1, max_int, unit, unit_digest unit src) ]
    src

(** Multi-file projects, concatenated (the parity oracle): the
    translation units are analyzed as one program, as a 1990s
    whole-program analysis would see them after preprocessing. File
    boundaries are kept as comments for span accounting — and, when
    caching, as the unit spans that key per-file invalidation. *)
let concat_sources_spans (files : (string * string) list) :
    string * span list =
  let b = Buffer.create 65536 in
  let line = ref 1 in
  let spans = ref [] in
  List.iter
    (fun (name, src) ->
      Buffer.add_string b (Printf.sprintf "/* === %s === */\n" name);
      incr line;
      let start = !line in
      Buffer.add_string b src;
      let nl =
        String.fold_left (fun a c -> if c = '\n' then a + 1 else a) 0 src
      in
      let add_nl =
        String.length src > 0 && src.[String.length src - 1] <> '\n'
      in
      if add_nl then Buffer.add_char b '\n';
      line := !line + nl + (if add_nl then 1 else 0);
      spans := (start, !line - 1, name, unit_digest name src) :: !spans)
    files;
  (Buffer.contents b, List.rev !spans)

let concat_sources files = fst (concat_sources_spans files)

(** Multi-file projects: each translation unit is lexed and parsed
    independently (per-unit frontend, the default), or the units are
    concatenated and parsed as one megastring ({!Concat}, the legacy
    oracle). Reports, diagnostics, and solver counters are byte-identical
    either way; only speed, memory, and cache granularity differ. *)
let run_sources ?(frontend = Per_unit) ?mode ?rules ?field_sharing ?simplify
    ?compact ?budget ?jobs ?max_errors ?cache
    (files : (string * string) list) : run =
  match frontend with
  | Per_unit ->
      run_units ?mode ?rules ?field_sharing ?simplify ?compact ?budget
        ?jobs ?max_errors ?cache files
  | Concat ->
      let src, spans = concat_sources_spans files in
      let lines =
        List.fold_left
          (fun acc (_, s) -> acc + Cfront.Cprog.count_lines s)
          0 files
      in
      run_concat ?mode ?rules ?field_sharing ?simplify ?compact ?budget
        ?jobs ?max_errors ?cache ~lines ~spans src

(** The frontend alone — parse and link a multi-file project without
    analyzing it. What the bench harness times and heap-profiles when it
    compares the two frontends' compile phases. *)
let compile_sources ?(frontend = Per_unit) ?(jobs = 1) ?max_errors
    (files : (string * string) list) : compiled =
  let me = Option.value max_errors ~default:20 in
  match frontend with
  | Per_unit -> fst (compile_units ~jobs ~me files)
  | Concat ->
      let src, spans = concat_sources_spans files in
      let lines =
        List.fold_left
          (fun acc (_, s) -> acc + Cfront.Cprog.count_lines s)
          0 files
      in
      let (pr, prog), t_compile =
        time (fun () ->
            let pr =
              localize_concat ~spans
                (Cfront.Cparse.parse_program_partial ~max_errors:me src)
            in
            (pr, Cfront.Cprog.build pr.Cfront.Cparse.pr_prog))
      in
      {
        co_prog = prog;
        co_diags = pr.Cfront.Cparse.pr_diags;
        co_degraded = pr.Cfront.Cparse.pr_degraded;
        co_lines = lines;
        co_t_compile = t_compile;
        co_frontend = None;
      }

(** Run both modes, reusing the parse: one row of Table 2. *)
type row = {
  name : string;
  r_lines : int;
  compile_s : float;
  mono_s : float;
  poly_s : float;
  declared : int;
  mono : int;
  poly : int;
  total : int;
  mono_results : Report.results;
  poly_results : Report.results;
}

let table2_row ~name (src : string) : row =
  let prog, t_compile = time (fun () -> compile src) in
  let _, mono_results, mono_s = analyze Analysis.Mono prog in
  let _, poly_results, poly_s = analyze Analysis.Poly prog in
  {
    name;
    r_lines = Cfront.Cprog.count_lines src;
    compile_s = t_compile;
    mono_s;
    poly_s;
    declared = mono_results.Report.declared;
    mono = mono_results.Report.possible;
    poly = poly_results.Report.possible;
    total = mono_results.Report.total;
    mono_results;
    poly_results;
  }

(* ------------------------------------------------------------------ *)
(* The persistent session                                              *)
(* ------------------------------------------------------------------ *)

module Solver = Typequal.Solver
module Lat = Typequal.Lattice

(* one mode's warm artifacts: the solved store with its live interfaces
   and the stable-key index into it *)
type mode_state = {
  ms_run : run;
  ms_env : Analysis.env;
  ms_ifaces : (string * Qtypes.fsig) list;
  ms_index :
    (string, Report.position * Report.verdict * Solver.var) Hashtbl.t;
}

type t = {
  s_rules : Analysis.qrules;
  s_default_mode : Analysis.mode;
  s_field_sharing : bool option;
  s_simplify : bool option;
  s_compact : bool option;
  s_max_errors : int option;
  s_jobs : int;
  s_opts_id : string;
  s_cache : cache_spec option;
  (* warm tiers that survive invalidation: both are keyed by content
     digests, so a stale entry can never be served — an edit simply
     stops hitting it *)
  s_fe_memo : (string, Cfront.Cparse.uresult) Hashtbl.t;
  s_scc_memo : Analysis.scc_memo;
  mutable s_units : (string * string) list;  (* (name, source), in order *)
  (* stages derived from the unit table; dropped on any unit edit *)
  mutable s_compiled :
    (compiled * (string, string * string) Hashtbl.t) option;
  s_modes : (string, mode_state) Hashtbl.t;
}

let create ?rules ?(mode = Analysis.Poly) ?field_sharing ?simplify ?compact
    ?max_errors ?(jobs = 1) ?cache ?(opts_id = "session")
    (units : (string * string) list) : t =
  {
    s_rules = Option.value rules ~default:Analysis.const_rules;
    s_default_mode = mode;
    s_field_sharing = field_sharing;
    s_simplify = simplify;
    s_compact = compact;
    s_max_errors = max_errors;
    s_jobs = jobs;
    s_opts_id =
      (match cache with Some cs -> cs.cs_opts_id | None -> opts_id);
    s_cache = cache;
    s_fe_memo = Hashtbl.create 64;
    s_scc_memo = Analysis.create_memo ();
    s_units = units;
    s_compiled = None;
    s_modes = Hashtbl.create 4;
  }

let units t = List.map fst t.s_units
let default_mode t = t.s_default_mode

(* Drop the derived stages. The AST and scheme memos are kept: they are
   content-addressed, so after the next compile the clean cone replays
   from them and only the dirtied cone recomputes. *)
let invalidate t =
  t.s_compiled <- None;
  Hashtbl.reset t.s_modes

let update_unit t name src : [ `Added | `Updated | `Unchanged ] =
  let digest = unit_digest name src in
  let status = ref `Added in
  let rec go = function
    | [] -> [ (name, src) ]
    | (n, s) :: rest when n = name ->
        if unit_digest n s = digest then begin
          status := `Unchanged;
          (n, s) :: rest
        end
        else begin
          status := `Updated;
          (name, src) :: rest
        end
    | u :: rest -> u :: go rest
  in
  let units = go t.s_units in
  if !status <> `Unchanged then begin
    t.s_units <- units;
    invalidate t
  end;
  !status

let remove_unit t name : bool =
  let found = List.mem_assoc name t.s_units in
  if found then begin
    t.s_units <- List.remove_assoc name t.s_units;
    invalidate t
  end;
  found

let ensure_compiled t =
  match t.s_compiled with
  | Some c -> c
  | None ->
      if t.s_units = [] then raise (Error "session has no units");
      let me = Option.value t.s_max_errors ~default:20 in
      let c =
        compile_units ?cache:t.s_cache ~fe_memo:t.s_fe_memo ~jobs:t.s_jobs
          ~me t.s_units
      in
      t.s_compiled <- Some c;
      c

let ensure_mode t mode : mode_state =
  let key = mode_name mode in
  match Hashtbl.find_opt t.s_modes key with
  | Some ms -> ms
  | None ->
      let co, tbl = ensure_compiled t in
      let optfp =
        opt_fingerprint ~opts_id:t.s_opts_id ~mode
          ~field_sharing:t.s_field_sharing ~simplify:t.s_simplify
          ~compact:t.s_compact ~max_errors:t.s_max_errors
      in
      let actx =
        {
          Analysis.cc_cache =
            Option.map (fun cs -> cs.cs_cache) t.s_cache;
          cc_memo = Some t.s_scc_memo;
          cc_key_prefix = env_fingerprint co.co_prog ^ optfp;
          cc_unit_of =
            (fun name -> Option.map snd (Hashtbl.find_opt tbl name));
        }
      in
      let run, env, ifaces, index =
        finish_full ~rules:t.s_rules ?field_sharing:t.s_field_sharing
          ?simplify:t.s_simplify ?compact:t.s_compact ~jobs:t.s_jobs
          ~cache:actx ~locate:(locate_of_tbl tbl) mode co
      in
      let ms = { ms_run = run; ms_env = env; ms_ifaces = ifaces; ms_index = index } in
      Hashtbl.replace t.s_modes key ms;
      ms

let mode_of t = function Some m -> m | None -> t.s_default_mode

(** Run one mode over the session's current units — warm: clean units
    replay from the AST memo, clean SCCs from the scheme memo, and a
    repeat of an already-computed mode returns its state untouched. *)
let run ?mode t : run = (ensure_mode t (mode_of t mode)).ms_run

let diagnostics t : Cfront.Diag.t list = (fst (ensure_compiled t)).co_diags

(* the session's positions in report order, each with its canonical key
   and live solver variable *)
let indexed_positions (ms : mode_state) :
    (string * Report.position * Report.verdict * Solver.var) list =
  List.filter_map
    (fun ((p : Report.position), v) ->
      let k = Report.position_key p in
      match Hashtbl.find_opt ms.ms_index k with
      | Some (_, _, var) -> Some (k, p, v, var)
      | None -> None)
    ms.ms_run.results.Report.positions

(** Every interesting position with its canonical key and verdict. *)
let positions ?mode t :
    (string * Report.position * Report.verdict) list =
  let ms = ensure_mode t (mode_of t mode) in
  List.map (fun (k, p, v, _) -> (k, p, v)) (indexed_positions ms)

(** Answer "is this position must-const?" (or must-[qual]) by stable
    key — [unit:line:col@level] or the structural
    [unit:fun:pN@level] / [unit:fun:ret@level] alias. *)
let classify ?mode t key : (Report.position * Report.verdict) option =
  let ms = ensure_mode t (mode_of t mode) in
  Option.map
    (fun (p, v, _) -> (p, v))
    (Hashtbl.find_opt ms.ms_index key)

(** Explain why a position's qualifier variable is forced: the solver's
    violation/forcing path, or [None] when nothing binds it (its bounds
    are consistent). Unknown keys return [Error]. *)
let explain ?mode t key :
    (Report.position * Report.verdict * string option, string) result =
  let ms = ensure_mode t (mode_of t mode) in
  match Hashtbl.find_opt ms.ms_index key with
  | None -> Result.Error (Printf.sprintf "unknown position key %S" key)
  | Some (p, v, var) ->
      Ok (p, v, Solver.explain_var ms.ms_env.Analysis.store var)

(* ---- speculative queries (what-if) ---- *)

type whatif_change = {
  wc_key : string;
  wc_fun : string;
  wc_before : Report.verdict;
  wc_after : Report.verdict;
}

type whatif_result = {
  w_key : string;  (** the annotated position *)
  w_qual : string;  (** the qualifier speculatively added *)
  w_changed : whatif_change list;  (** positions whose verdict moved *)
  w_errors_before : int;
  w_errors_after : int;
}

let verdict_of_solver = function
  | Solver.Forced_up -> Report.Must_const
  | Solver.Forced_down -> Report.Must_not_const
  | Solver.Free -> Report.Either

(** "What breaks if I add [$qual] here?" — split into a serial prepare
    step and a pure evaluation thunk. The prepare step snapshots the
    warm store ({!Solver.export}) and the baseline verdicts; it must run
    with exclusive access to the session (the daemon does this on its
    event loop). The returned thunk clones the snapshot into a private
    store, adds the speculative annotation as a lower bound, re-solves
    incrementally, and diffs every position's verdict — it touches no
    session state, so any number of thunks may run concurrently on the
    domain pool. *)
let whatif_task ?mode t ~qual key :
    ((unit -> whatif_result), string) result =
  let ms = ensure_mode t (mode_of t mode) in
  let store = ms.ms_env.Analysis.store in
  let sp = Solver.space store in
  match Hashtbl.find_opt ms.ms_index key with
  | None -> Result.Error (Printf.sprintf "unknown position key %S" key)
  | Some (_, _, var0) -> (
      match Lat.Space.find_opt sp qual with
      | None -> Result.Error (Printf.sprintf "unknown qualifier %S" qual)
      | Some _ ->
          let batch = Solver.export store in
          let snapshot =
            List.map
              (fun (k, (p : Report.position), _, var) ->
                ( k,
                  p.Report.p_fun,
                  verdict_of_solver (Solver.classify_name store var qual),
                  var ))
              (indexed_positions ms)
          in
          let errors_before = List.length (Solver.last_errors store) in
          Ok
            (fun () ->
              let clone = Solver.create sp in
              let rename = Solver.absorb clone batch in
              let tr v = Option.value (rename v) ~default:v in
              Solver.add_leq_cv
                ~reason:(Printf.sprintf "whatif $%s at %s" qual key)
                ~mask:(Lat.Elt.mask_of_names sp [ qual ])
                clone
                (Lat.Elt.of_names_up sp [ qual ])
                (tr var0);
              ignore (Solver.solve clone : (unit, _) result);
              let changed =
                List.filter_map
                  (fun (k, fname, before, var) ->
                    let after =
                      verdict_of_solver
                        (Solver.classify_name clone (tr var) qual)
                    in
                    if after = before then None
                    else
                      Some
                        {
                          wc_key = k;
                          wc_fun = fname;
                          wc_before = before;
                          wc_after = after;
                        })
                  snapshot
              in
              {
                w_key = key;
                w_qual = qual;
                w_changed = changed;
                w_errors_before = errors_before;
                w_errors_after = List.length (Solver.last_errors clone);
              }))

(** {!whatif_task} prepared and evaluated inline. *)
let whatif ?mode t ~qual key : (whatif_result, string) result =
  Result.map (fun f -> f ()) (whatif_task ?mode t ~qual key)

(* ---- session statistics ---- *)

type session_stats = {
  ss_units : int;
  ss_modes : string list;  (** warm (already analyzed) modes *)
  ss_memo_hits : int;  (** per-SCC scheme memo *)
  ss_memo_misses : int;
  ss_cache : Typequal.Cache.stats option;  (** disk tiers, when attached *)
}

let stats t : session_stats =
  let hits, misses = Analysis.memo_counts t.s_scc_memo in
  {
    ss_units = List.length t.s_units;
    ss_modes = List.of_seq (Hashtbl.to_seq_keys t.s_modes);
    ss_memo_hits = hits;
    ss_memo_misses = misses;
    ss_cache =
      Option.map (fun cs -> Typequal.Cache.stats cs.cs_cache) t.s_cache;
  }

(* ------------------------------------------------------------------ *)
(* Rendering (the batch CLIs' report block, shared with the daemon)    *)
(* ------------------------------------------------------------------ *)

let pp_mode_long ppf = function
  | Analysis.Mono -> Fmt.string ppf "monomorphic"
  | Analysis.Poly -> Fmt.string ppf "polymorphic"
  | Analysis.Polyrec -> Fmt.string ppf "polymorphic-recursive"

(** The per-run report exactly as [cqualc] prints it (stdout block only;
    diagnostics go to stderr and stay in the CLI). The daemon's [render]
    method returns this same text, which is what the CI smoke job diffs
    against a cold [cqualc] run. *)
let render_run ?(stats = false) ?(positions = false) ?(jobs = 1) ~name mode
    (r : run) : string =
  let b = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let res = r.results in
  pr "=== %s (%s) ===\n" name (Fmt.str "%a" pp_mode_long mode);
  let degraded =
    List.filter_map
      (fun (f, o) ->
        match o with
        | Analysis.Degraded reason -> Some (f, reason)
        | Analysis.Analyzed -> None)
      res.Report.outcomes
  in
  let n_analyzed = List.length res.Report.outcomes - List.length degraded in
  pr
    "lines: %d, functions: %d (%d analyzed, %d degraded), qualifier \
     variables: %d\n"
    r.lines
    (List.length res.Report.outcomes)
    n_analyzed (List.length degraded) r.n_constraints;
  List.iter (fun (f, reason) -> pr "degraded: %s: %s\n" f reason) degraded;
  if stats then begin
    pr "solver: %s\n" (Fmt.str "%a" Typequal.Solver.pp_stats r.solver_stats);
    pr "fdg: %d sccs, largest %d, wavefront width %d\n" r.fdg_scc_count
      r.fdg_largest_scc r.wavefront_width;
    (match r.frontend with
    | Some fs ->
        pr
          "frontend: %d units, %d reparsed, lex %.3fs, parse %.3fs, build \
           %.3fs, link %.3fs\n"
          fs.fs_units fs.fs_reparsed fs.fs_lex_s fs.fs_parse_s fs.fs_build_s
          fs.fs_link_s
    | None -> ());
    (match oversubscription ~jobs with
    | Some cores ->
        pr "oversubscribed: %d jobs on %d available cores\n" jobs cores
    | None -> ());
    match r.par with
    | Some p ->
        pr "parallel: %d jobs, %d tasks, generate %.3fs, merge %.3fs\n"
          p.Analysis.ps_jobs p.Analysis.ps_tasks p.Analysis.ps_gen_s
          p.Analysis.ps_merge_s
    | None -> ()
  end;
  pr
    "interesting const positions: %d total; %d declared, %d possible (%d \
     must-const, %d could-be-either), %d must-not\n"
    res.Report.total res.Report.declared res.Report.possible res.Report.must
    (res.Report.possible - res.Report.must)
    (res.Report.total - res.Report.possible);
  if res.Report.type_errors > 0 then
    pr "TYPE ERRORS: %d (const usage is inconsistent)\n"
      res.Report.type_errors;
  List.iter (fun w -> pr "warning: %s\n" w) res.Report.warnings;
  if positions then
    List.iter
      (fun pv -> pr "  %s\n" (Fmt.str "%a" Report.pp_position pv))
      res.Report.positions;
  Buffer.contents b

(** Render one mode of the session — the daemon's [render] method. *)
let render ?mode ?stats ?positions ?(name = "session") t : string =
  let m = mode_of t mode in
  render_run ?stats ?positions ~jobs:t.s_jobs ~name m
    (ensure_mode t m).ms_run
