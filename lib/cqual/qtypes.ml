(** Qualified types for C and the paper's translation ℓ from C types to
    ref types (Section 4.1).

    All C variables denote updateable memory locations; in the paper's
    terms they are all ref types, and the C qualifiers shift up one level:
    [ℓ(Q int) = Q ref(⊥ int)] and [ℓ(Q ptr(CT)) = Q ref(Q0 ref(ρ))] where
    [(Q0, ρ) = ℓ'(CT)]. We represent a memory cell ("Q ref(ρ)") as a
    {!cell} carrying the solver variable for [Q] and the structure of its
    contents; the r-value of a pointer expression {e is} the cell it points
    to, so the standard invariant (SubRef) subtyping applies directly. *)

module Solver = Typequal.Solver
module Elt = Typequal.Lattice.Elt
open Cfront

type rt =
  | RBase  (** integers, floats, enums — their own qualifier level is
               irrelevant to const inference (always ⊥ in ℓ) *)
  | RVoid  (** contents of [void*]: matches anything, loses information *)
  | RPtr of cell  (** a pointer value: the cell it points to *)
  | RStruct of string  (** a struct/union value; fields live in the shared
                           per-tag table (Section 4.2) *)
  | RFun of fsig  (** a function designator / function pointer *)

and cell = {
  q : Solver.var;  (** the qualifier on this ref — where [const] lives *)
  mutable contents : rt;
}

and fsig = {
  fs_params : cell list;
      (** the parameter {e variables'} cells: an argument flows into the
          contents of its parameter's cell *)
  fs_ret : rt;
  fs_varargs : bool;
}

let fresh_cell ?(name = "cell") store contents =
  { q = Solver.fresh ~name store; contents }

(* ------------------------------------------------------------------ *)
(* The ℓ translation                                                   *)
(* ------------------------------------------------------------------ *)

(** Seed a cell's qualifier with its declared source qualifiers: a declared
    [const] becomes a lower bound, so the least solution reports the
    position as must-const and flows out of it carry constness. User [$q]
    qualifiers in the space are seeded the same way. *)
let seed_declared store (c : cell) (quals : Cast.quals) ~reason =
  let sp = Solver.space store in
  let elt =
    List.fold_left
      (fun acc q ->
        match Typequal.Lattice.Space.resolve sp q with
        | Some (`Qual i) -> Elt.set sp i acc
        | Some (`Level (i, l)) ->
            (* a declared level of an ordered coordinate lower-bounds the
               coordinate at that level *)
            Elt.join sp acc (Elt.with_level sp i l (Elt.bottom sp))
        | None -> acc (* qualifier not in this analysis's space: ignored *))
      (Elt.bottom sp) quals
  in
  if not (Elt.equal elt (Elt.bottom sp)) then
    Solver.add_leq_cv ~reason store elt c.q

(** [rt_of_ctype] translates an (already typedef-expanded) C type to the
    r-value structure ℓ'(CT), creating a fresh cell per pointer level and
    seeding declared qualifiers via [seed] (default: every declared
    qualifier that names a space member becomes a lower bound; analyses
    with richer declaration semantics — e.g. taint's [$untainted] sink
    markers — pass their own). *)
let rec rt_of_ctype ?seed store (ty : Cast.ctype) : rt =
  match ty with
  | TVoid _ -> RVoid
  | TInt _ | TFloat _ -> RBase
  | TStruct (tag, _) -> RStruct tag
  | TNamed (n, _) ->
      (* an unexpanded typedef can only reach here when its definition was
         lost (e.g. to a parse error); signal it like Cprog.expand does so
         the analysis demotes the enclosing function to degraded instead
         of crashing the run *)
      raise (Cprog.Frontend_error ("unknown typedef " ^ n))
  | TPtr (target, _) | TArray (target, _, _) ->
      let c = cell_of_ctype ?seed store target in
      RPtr c
  | TFun (ret, params, varargs) ->
      RFun
        {
          fs_params =
            List.map (fun (n, pt) -> cell_of_param ?seed store n pt) params;
          fs_ret = rt_of_ctype ?seed store (Cprog.decay ret);
          fs_varargs = varargs;
        }

(** The cell for a memory location holding a value of C type [ty]: its
    qualifier carries [ty]'s top-level declared qualifiers (ℓ shifts them
    onto the ref). *)
and cell_of_ctype ?(name = "cell") ?seed store (ty : Cast.ctype) : cell =
  let c = fresh_cell ~name store (rt_of_ctype ?seed store ty) in
  (match seed with
  | Some f -> f c (Cast.quals_of ty)
  | None -> seed_declared store c (Cast.quals_of ty) ~reason:"declared qualifier");
  c

and cell_of_param ?seed store pname pt =
  cell_of_ctype ~name:("param_" ^ pname) ?seed store (Cprog.decay pt)

(* ------------------------------------------------------------------ *)
(* Subtyping (SubRef is invariant — Section 2.4)                       *)
(* ------------------------------------------------------------------ *)

(* C programs defeat the type system in ways the paper enumerates
   (Section 4.2); on shape mismatch we lose the association rather than
   fail, like the paper's handling of casts. *)
let rec sub ?reason store (r1 : rt) (r2 : rt) : unit =
  match (r1, r2) with
  | RPtr c1, RPtr c2 ->
      Solver.add_leq_vv ?reason store c1.q c2.q;
      eq_contents ?reason store c1.contents c2.contents
  | RFun f1, RFun f2 -> eq_fsig ?reason store f1 f2
  (* a function designator decays to a function pointer (and back):
     storing a function into a function-pointer cell links the
     signatures *)
  | RFun f1, RPtr { contents = RFun f2; _ }
  | RPtr { contents = RFun f1; _ }, RFun f2 ->
      eq_fsig ?reason store f1 f2
  | RStruct _, RStruct _ | RBase, RBase -> ()
  | _ -> () (* implicit conversion: retain nothing across shapes *)

and eq_contents ?reason store (r1 : rt) (r2 : rt) : unit =
  match (r1, r2) with
  | RVoid, _ | _, RVoid -> () (* void* erases deeper structure *)
  | RPtr c1, RPtr c2 ->
      if c1 != c2 then begin
        Solver.add_eq_vv ?reason store c1.q c2.q;
        eq_contents ?reason store c1.contents c2.contents
      end
  | RFun f1, RFun f2 -> eq_fsig ?reason store f1 f2
  | RFun f1, RPtr { contents = RFun f2; _ }
  | RPtr { contents = RFun f1; _ }, RFun f2 ->
      eq_fsig ?reason store f1 f2
  | _ -> ()

and eq_fsig ?reason store f1 f2 =
  (* function pointers: equate parameter and return structure *)
  List.iter2
    (fun (c1 : cell) (c2 : cell) ->
      if c1 != c2 then begin
        Solver.add_eq_vv ?reason store c1.q c2.q;
        eq_contents ?reason store c1.contents c2.contents
      end)
    (take_common f1.fs_params f2.fs_params)
    (take_common f2.fs_params f1.fs_params);
  sub ?reason store f1.fs_ret f2.fs_ret;
  sub ?reason store f2.fs_ret f1.fs_ret

and take_common a b =
  (* mismatched arities happen in real C; relate the common prefix *)
  let la = List.length a and lb = List.length b in
  if la <= lb then a else List.filteri (fun i _ -> i < lb) a

(* ------------------------------------------------------------------ *)
(* Copying under a renaming (polymorphic instantiation, Section 4.3)   *)
(* ------------------------------------------------------------------ *)

(** Structural copy of an interface with every cell's qualifier variable
    mapped through [rn]; shared cells stay shared (memo on identity). *)
let copy_rt (rn : Solver.var -> Solver.var) (r : rt) : rt =
  let memo : (int, cell) Hashtbl.t = Hashtbl.create 8 in
  let rec go_rt = function
    | (RBase | RVoid | RStruct _) as r -> r
    | RPtr c -> RPtr (go_cell c)
    | RFun f ->
        RFun
          {
            fs_params = List.map go_cell f.fs_params;
            fs_ret = go_rt f.fs_ret;
            fs_varargs = f.fs_varargs;
          }
  and go_cell c =
    match Hashtbl.find_opt memo (Solver.var_id c.q) with
    | Some c' -> c'
    | None ->
        let c' = { q = rn c.q; contents = RBase } in
        Hashtbl.add memo (Solver.var_id c.q) c';
        c'.contents <- go_rt c.contents;
        c'
  in
  go_rt r

let copy_fsig rn (f : fsig) : fsig =
  match copy_rt rn (RFun f) with RFun f' -> f' | _ -> assert false

(** All qualifier variables reachable from an r-type (for generalization
    bookkeeping). *)
let rt_qvars (r : rt) : Solver.var list =
  match r with
  | RBase | RVoid | RStruct _ -> [] (* no cells: skip the visited table *)
  | RPtr _ | RFun _ ->
      let seen = Hashtbl.create 16 in
      let acc = ref [] in
      let rec go_rt = function
        | RBase | RVoid | RStruct _ -> ()
        | RPtr c -> go_cell c
        | RFun f ->
            List.iter go_cell f.fs_params;
            go_rt f.fs_ret
      and go_cell c =
        if not (Hashtbl.mem seen (Solver.var_id c.q)) then begin
          Hashtbl.add seen (Solver.var_id c.q) ();
          acc := c.q :: !acc;
          go_rt c.contents
        end
      in
      go_rt r;
      !acc

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let rec pp_rt ppf = function
  | RBase -> Fmt.string ppf "base"
  | RVoid -> Fmt.string ppf "void"
  | RPtr c -> Fmt.pf ppf "ptr(%a)" pp_cell c
  | RStruct tag -> Fmt.pf ppf "struct %s" tag
  | RFun f ->
      Fmt.pf ppf "fun(%a) -> %a"
        Fmt.(list ~sep:comma pp_cell)
        f.fs_params pp_rt f.fs_ret

and pp_cell ppf c = Fmt.pf ppf "%a ref(%a)" Solver.pp_var c.q pp_rt c.contents

(* ------------------------------------------------------------------ *)
(* Hash-consed shapes                                                  *)
(* ------------------------------------------------------------------ *)

(** The qualifier-less skeleton of an r-type, hash-consed per analysis
    environment: structurally equal r-types (including their cell-sharing
    pattern, but independent of which qualifier variables they carry) map
    to the same small integer. A shape id plus the DFS sequence of
    qualifier variables (the {!rt_qvars} order — cell numbering below
    visits in the same order) fully determines every constraint a
    structural [sub] against the r-type emits, which is what makes shapes
    usable as instantiation-memo keys. *)
module Shape = struct
  type t = {
    sh_id : int;
    sh_flat : bool;
        (* no RPtr/RFun anywhere: a structural [sub] against a flat
           r-type emits no constraints at all *)
  }

  type table = {
    tbl : (string, t) Hashtbl.t;
    mutable next : int;
    by_cell : (int, t) Hashtbl.t;
        (* root-cell intern: uid of an [RPtr] root's qualifier → shape.
           Sound because a cell's reachable structure is fixed once its
           builder returns ([copy_rt]/[mirror]/decode tie the knot before
           exposing the cell), and a qualifier variable shared between two
           cells only arises through structure-preserving copies — the
           cells are isomorphic, so their shapes coincide. *)
  }

  let create_table () =
    { tbl = Hashtbl.create 64; next = 0; by_cell = Hashtbl.create 256 }

  let id s = s.sh_id
  let flat s = s.sh_flat

  let intern table key ~flat =
    match Hashtbl.find_opt table.tbl key with
    | Some s -> s
    | None ->
        let s = { sh_id = table.next; sh_flat = flat } in
        table.next <- table.next + 1;
        Hashtbl.add table.tbl key s;
        s

  (* canonical structural key: cells are numbered by first visit and
     back-references rendered as [@k], so aliasing patterns distinguish
     shapes while the variables themselves do not *)
  let of_rt_uncached table (r : rt) : t =
    let buf = Buffer.create 32 in
    let seen = Hashtbl.create 8 in
    let count = ref 0 in
    let flat = ref true in
    let rec go_rt = function
      | RBase -> Buffer.add_char buf 'b'
      | RVoid -> Buffer.add_char buf 'v'
      | RStruct tag ->
          Buffer.add_char buf 's';
          Buffer.add_string buf tag;
          Buffer.add_char buf ';'
      | RPtr c ->
          flat := false;
          Buffer.add_char buf 'p';
          go_cell c
      | RFun f ->
          flat := false;
          Buffer.add_char buf (if f.fs_varargs then 'F' else 'f');
          Buffer.add_char buf '(';
          List.iter go_cell f.fs_params;
          Buffer.add_char buf ')';
          go_rt f.fs_ret
    and go_cell c =
      match Hashtbl.find_opt seen (Solver.var_uid c.q) with
      | Some k ->
          Buffer.add_char buf '@';
          Buffer.add_string buf (string_of_int k)
      | None ->
          Hashtbl.add seen (Solver.var_uid c.q) !count;
          incr count;
          Buffer.add_char buf 'c';
          go_rt c.contents
    in
    go_rt r;
    intern table (Buffer.contents buf) ~flat:!flat

  (* fast paths over the canonical-key walk: cell-free skeletons intern
     against constant keys (no buffer, no visited table), and pointer
     roots are remembered per root cell — repeated shape queries against
     the same argument type (every call site of a session-memo candidate
     makes one per argument) become a single table hit *)
  let of_rt table (r : rt) : t =
    match r with
    | RBase -> intern table "b" ~flat:true
    | RVoid -> intern table "v" ~flat:true
    | RStruct tag -> intern table ("s" ^ tag ^ ";") ~flat:true
    | RPtr c -> (
        let uid = Solver.var_uid c.q in
        match Hashtbl.find_opt table.by_cell uid with
        | Some s -> s
        | None ->
            let s = of_rt_uncached table r in
            Hashtbl.add table.by_cell uid s;
            s)
    | RFun _ -> of_rt_uncached table r
end
