(** The analysis session: the const-inference pipeline as named stages —
    unit table → linked program → FDG → published schemes → solved store
    → report — behind both one-shot batch entry points (re-exported by
    {!Driver}) and a persistent {!t} that keeps warm artifacts between
    runs and answers position-level queries without re-parsing or
    re-solving clean units. See DESIGN.md "Session architecture & wire
    protocol". *)

(** {1 Batch pipeline} *)

type timing = {
  t_compile : float;  (** parse + table construction, seconds *)
  t_analysis : float;  (** constraint generation + solving *)
}

(** Which frontend assembles the whole program from translation units. *)
type frontend =
  | Per_unit  (** per-unit parse + link (default) *)
  | Concat  (** legacy megastring concatenation: the parity oracle *)

(** Frontend phase breakdown. Under [--jobs] > 1 the lex/parse/build
    times are summed across worker domains, so they can exceed the
    compile wall clock. *)
type frontend_stats = {
  fs_units : int;
  fs_reparsed : int;
      (** units whose speculative parse was discarded and redone with
          the linked environment *)
  fs_lex_s : float;
  fs_parse_s : float;
  fs_build_s : float;
  fs_link_s : float;
}

type run = {
  results : Report.results;
  timing : timing;
  lines : int;
  n_functions : int;
  n_constraints : int;  (** number of qualifier variables *)
  solver_stats : Typequal.Solver.stats;
  diagnostics : Cfront.Diag.t list;
      (** lexer/parser diagnostics recovered from, in source order *)
  fdg_scc_count : int;
  fdg_largest_scc : int;
  wavefront_width : int;
  par : Analysis.par_stats option;  (** [None] for serial runs *)
  frontend : frontend_stats option;
      (** [None] for the concat oracle, single-source runs, and
          whole-run cache hits *)
}

exception Error of string

val compile : string -> Cfront.Cprog.t
(** Parse a single source to its program tables; raises {!Error} when
    nothing parses. *)

val oversubscription : jobs:int -> int option
(** [Some cores] when [jobs] exceeds the host's available cores. *)

val oversubscription_notice : jobs:int -> Cfront.Diag.t option
(** The oversubscription advisory as a structured {!Cfront.Diag.Notice}
    (code N0901). The CLIs print it with a ["warning: "] prefix —
    byte-identical to the historical free-form line — and the daemon
    ships it to clients as data. *)

(** {2 Persistent on-disk cache} *)

type cache_spec = {
  cs_cache : Typequal.Cache.t;
  cs_opts_id : string;
      (** caller identity beyond the lattice: analysis flavour, lattice
          file digest, measured qualifier *)
}

val space_fingerprint : Typequal.Lattice.Space.t -> Digest.t
(** The envelope context digest: lattice dump, compiler version, and
    payload-format revision. *)

val open_cache :
  ?warn:(string -> unit) ->
  ?rules:Analysis.qrules ->
  opts_id:string ->
  string ->
  cache_spec option
(** Open a cache directory for runs under this rule set; [None] (after
    [warn]) when the path is unusable. Never raises. *)

val unit_digest : string -> string -> Digest.t
(** [unit_digest name content]: the per-file content hash that keys
    invalidation. *)

type span = int * int * string * string
(** a unit's span in a concatenated program: first line, last line,
    unit name, content digest *)

val mode_name : Analysis.mode -> string

(** {2 One-shot entry points} *)

val analyze :
  ?rules:Analysis.qrules ->
  ?field_sharing:bool ->
  ?simplify:bool ->
  ?compact:bool ->
  ?budget:Typequal.Budget.t ->
  ?jobs:int ->
  ?cache:Analysis.cache_ctx ->
  Analysis.mode ->
  Cfront.Cprog.t ->
  Analysis.env * Report.results * float
(** Analysis plus measurement over an already-compiled program. *)

type compiled = {
  co_prog : Cfront.Cprog.t;
  co_diags : Cfront.Diag.t list;
  co_degraded : (string * string) list;
  co_lines : int;
  co_t_compile : float;
  co_frontend : frontend_stats option;
}
(** the frontend's product, whichever frontend built it *)

val finish :
  ?rules:Analysis.qrules ->
  ?field_sharing:bool ->
  ?simplify:bool ->
  ?compact:bool ->
  ?budget:Typequal.Budget.t ->
  ?jobs:int ->
  ?cache:Analysis.cache_ctx ->
  ?locate:(string -> int -> string * int) ->
  Analysis.mode ->
  compiled ->
  run
(** The shared back half of both frontends: analyze, measure, and attach
    FDG statistics. [locate] resolves a function's AST line to its
    (unit, local line) anchor for stable position keys. *)

val run_concat :
  ?mode:Analysis.mode ->
  ?rules:Analysis.qrules ->
  ?field_sharing:bool ->
  ?simplify:bool ->
  ?compact:bool ->
  ?budget:Typequal.Budget.t ->
  ?jobs:int ->
  ?max_errors:int ->
  ?cache:cache_spec ->
  ?lines:int ->
  spans:span list ->
  string ->
  run
(** One mode over an already-concatenated program. *)

val run_units :
  ?mode:Analysis.mode ->
  ?rules:Analysis.qrules ->
  ?field_sharing:bool ->
  ?simplify:bool ->
  ?compact:bool ->
  ?budget:Typequal.Budget.t ->
  ?jobs:int ->
  ?max_errors:int ->
  ?cache:cache_spec ->
  (string * string) list ->
  run
(** One mode over the per-unit pipeline. *)

val run_source :
  ?mode:Analysis.mode ->
  ?rules:Analysis.qrules ->
  ?field_sharing:bool ->
  ?simplify:bool ->
  ?compact:bool ->
  ?budget:Typequal.Budget.t ->
  ?jobs:int ->
  ?max_errors:int ->
  ?cache:cache_spec ->
  ?unit:string ->
  string ->
  run
(** Run one mode on a single C source, recovering from lexer/parser
    errors. *)

val concat_sources_spans : (string * string) list -> string * span list
val concat_sources : (string * string) list -> string

val run_sources :
  ?frontend:frontend ->
  ?mode:Analysis.mode ->
  ?rules:Analysis.qrules ->
  ?field_sharing:bool ->
  ?simplify:bool ->
  ?compact:bool ->
  ?budget:Typequal.Budget.t ->
  ?jobs:int ->
  ?max_errors:int ->
  ?cache:cache_spec ->
  (string * string) list ->
  run
(** Multi-file projects under either frontend; reports, diagnostics and
    solver counters are byte-identical either way. *)

val compile_sources :
  ?frontend:frontend ->
  ?jobs:int ->
  ?max_errors:int ->
  (string * string) list ->
  compiled
(** The frontend alone — parse and link without analyzing. *)

(** Run both modes, reusing the parse: one row of Table 2. *)
type row = {
  name : string;
  r_lines : int;
  compile_s : float;
  mono_s : float;
  poly_s : float;
  declared : int;
  mono : int;
  poly : int;
  total : int;
  mono_results : Report.results;
  poly_results : Report.results;
}

val table2_row : name:string -> string -> row

(** {1 The persistent session} *)

type t
(** A persistent analysis session over a set of named translation
    units. Derived stages (linked program, solved stores, reports) are
    dropped on any unit edit, but two content-addressed warm tiers
    survive: the per-unit AST memo and the per-SCC scheme memo — so
    re-running after an edit replays everything outside the edit's
    dependency cone instead of recomputing it. *)

val create :
  ?rules:Analysis.qrules ->
  ?mode:Analysis.mode ->
  ?field_sharing:bool ->
  ?simplify:bool ->
  ?compact:bool ->
  ?max_errors:int ->
  ?jobs:int ->
  ?cache:cache_spec ->
  ?opts_id:string ->
  (string * string) list ->
  t
(** [create units] builds a session over [(name, source)] pairs.
    [mode] is the default query/analysis mode (default [Poly]);
    [cache] additionally attaches the persistent disk tiers. Nothing is
    parsed or analyzed until the first {!run} or query. *)

val units : t -> string list
(** Current unit names, in link order. *)

val default_mode : t -> Analysis.mode
(** The mode queries default to (the [mode] given to {!create}). *)

val update_unit : t -> string -> string -> [ `Added | `Updated | `Unchanged ]
(** [update_unit t name src] replaces (or appends) one unit's source.
    [`Unchanged] (same content digest) invalidates nothing; otherwise
    all derived stages are dropped and the next run recomputes exactly
    the edit's cone, replaying the rest from the warm memos. *)

val remove_unit : t -> string -> bool
(** Remove a unit; [false] if it was not present. *)

val run : ?mode:Analysis.mode -> t -> run
(** Analyze the current units under [mode] (default: the session's).
    Warm: repeated calls return the computed state; after an edit, clean
    units replay from the AST memo and clean SCCs from the scheme
    memo. *)

val diagnostics : t -> Cfront.Diag.t list
(** Frontend diagnostics for the current units (mode-independent). *)

(** {2 Position-level queries}

    Positions are addressed by the stable keys of
    {!Report.position_key}: canonical [unit:line:col@level], or the
    structural alias [unit:fun:pN@level] / [unit:fun:ret@level]. *)

val positions :
  ?mode:Analysis.mode ->
  t ->
  (string * Report.position * Report.verdict) list
(** Every interesting position with its canonical key, in report
    order. *)

val classify :
  ?mode:Analysis.mode ->
  t ->
  string ->
  (Report.position * Report.verdict) option
(** "Is this position must-const?" — answered from the warm store. *)

val explain :
  ?mode:Analysis.mode ->
  t ->
  string ->
  (Report.position * Report.verdict * string option, string) result
(** Why a position's qualifier variable is forced: the solver's
    forcing/violation path, [None] when nothing binds it. [Error] for
    unknown keys. *)

type whatif_change = {
  wc_key : string;
  wc_fun : string;
  wc_before : Report.verdict;
  wc_after : Report.verdict;
}

type whatif_result = {
  w_key : string;  (** the annotated position *)
  w_qual : string;  (** the qualifier speculatively added *)
  w_changed : whatif_change list;  (** positions whose verdict moved *)
  w_errors_before : int;
  w_errors_after : int;
}

val whatif_task :
  ?mode:Analysis.mode ->
  t ->
  qual:string ->
  string ->
  (unit -> whatif_result, string) result
(** "What breaks if I add [$qual] here?" — the serial prepare step
    snapshots the warm store and baseline verdicts (run it with
    exclusive session access); the returned thunk solves a private
    clone and touches no session state, so any number of thunks may run
    concurrently on the domain pool. *)

val whatif :
  ?mode:Analysis.mode ->
  t ->
  qual:string ->
  string ->
  (whatif_result, string) result
(** {!whatif_task} prepared and evaluated inline. *)

(** {2 Statistics} *)

type session_stats = {
  ss_units : int;
  ss_modes : string list;  (** warm (already analyzed) modes *)
  ss_memo_hits : int;  (** per-SCC scheme memo *)
  ss_memo_misses : int;
  ss_cache : Typequal.Cache.stats option;  (** disk tiers, when attached *)
}

val stats : t -> session_stats

(** {2 Rendering} *)

val render_run :
  ?stats:bool ->
  ?positions:bool ->
  ?jobs:int ->
  name:string ->
  Analysis.mode ->
  run ->
  string
(** The per-run report exactly as [cqualc] prints it (stdout block
    only). *)

val render :
  ?mode:Analysis.mode ->
  ?stats:bool ->
  ?positions:bool ->
  ?name:string ->
  t ->
  string
(** One mode of the session rendered with {!render_run} — the daemon's
    [render] method, diffable against a cold [cqualc] run. *)
