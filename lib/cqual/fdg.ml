(** The function dependence graph (Definition 4) and its strongly
    connected components.

    [V] is the set of defined functions; there is an edge from [f] to [g]
    iff [f]'s body contains an occurrence of the name [g]. The SCCs are the
    sets of mutually recursive functions; traversing them in reverse
    topological order (callees first) is exactly the order in which
    let-style qualifier polymorphism can generalize (Section 4.3). Tarjan's
    algorithm emits SCCs in that order directly. *)

open Cfront

type t = {
  sccs : string list list;
      (** reverse topological order: every callee's SCC precedes its
          callers' *)
  edges : (string, string list) Hashtbl.t;
}

(** Names a function's body mentions (including in local initializers and
    via function pointers — any occurrence counts, per Definition 4). *)
let mentions (f : Cast.fundef) : string list =
  let acc =
    List.fold_left
      (fun acc s -> Cast.fold_stmt_exprs (fun acc e -> Cast.expr_idents acc e) acc s)
      [] f.f_body
  in
  List.sort_uniq String.compare acc

let build (prog : Cprog.t) : t =
  let funs = Cprog.functions prog in
  let defined = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace defined f.Cast.f_name ()) funs;
  let edges = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let ms =
        List.filter
          (fun g -> Hashtbl.mem defined g && g <> f.Cast.f_name)
          (mentions f)
      in
      Hashtbl.replace edges f.Cast.f_name ms)
    funs;
  (* Tarjan's strongly connected components. *)
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (try Hashtbl.find edges v with Not_found -> []);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      (* pop the SCC *)
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if String.equal w v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter
    (fun f -> if not (Hashtbl.mem index f.Cast.f_name) then strongconnect f.Cast.f_name)
    funs;
  (* Tarjan emits each SCC after all SCCs it can reach, i.e. callees first;
     [!sccs] accumulated by consing is callers-first, so reverse. *)
  { sccs = List.rev !sccs; edges }

let scc_count t = List.length t.sccs

let largest_scc t =
  List.fold_left (fun m s -> max m (List.length s)) 0 t.sccs

(* Per-SCC dependency structure over the indices of [t.sccs], for the
   wavefront scheduler. An edge [f -> g] means [f] mentions [g], so [f]'s
   SCC depends on (must be analyzed after) [g]'s. [in_degree.(i)] counts
   the distinct SCCs that SCC [i] depends on; [dependents.(j)] lists the
   SCCs depending on [j] — the candidates released when [j] completes. *)
let scc_deps t : int array * int list array =
  let sccs = Array.of_list t.sccs in
  let n = Array.length sccs in
  let scc_of = Hashtbl.create 64 in
  Array.iteri (fun i scc -> List.iter (fun f -> Hashtbl.replace scc_of f i) scc) sccs;
  let in_degree = Array.make n 0 in
  let dependents = Array.make n [] in
  (* dedup (i, j) SCC pairs on a single packed int key: [n] is the SCC
     count, so [i * n + j] is injective — no tuple allocation, no
     polymorphic hashing *)
  let seen = Hashtbl.create 64 in
  Array.iteri
    (fun i scc ->
      List.iter
        (fun f ->
          List.iter
            (fun g ->
              match Hashtbl.find_opt scc_of g with
              | Some j when j <> i && not (Hashtbl.mem seen ((i * n) + j)) ->
                  Hashtbl.add seen ((i * n) + j) ();
                  in_degree.(i) <- in_degree.(i) + 1;
                  dependents.(j) <- i :: dependents.(j)
              | _ -> ())
            (try Hashtbl.find t.edges f with Not_found -> []))
        scc)
    sccs;
  (in_degree, dependents)

(* Maximum number of SCCs simultaneously ready under level-synchronous
   (Kahn) scheduling: an upper bound on useful analysis parallelism, and
   the figure [--stats] reports as the wavefront width. *)
let wavefront_width t =
  let in_degree, dependents = scc_deps t in
  let indeg = Array.copy in_degree in
  let frontier = ref [] in
  Array.iteri (fun i d -> if d = 0 then frontier := i :: !frontier) indeg;
  let width = ref 0 in
  while !frontier <> [] do
    width := max !width (List.length !frontier);
    let next = ref [] in
    List.iter
      (fun i ->
        List.iter
          (fun j ->
            indeg.(j) <- indeg.(j) - 1;
            if indeg.(j) = 0 then next := j :: !next)
          dependents.(i))
      !frontier;
    frontier := !next
  done;
  !width
