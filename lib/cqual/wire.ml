(** The daemon's wire format: JSON and newline-delimited JSON-RPC,
    hand-rolled (the toolchain ships no JSON library, and the protocol
    is small enough that a dependency would be all cost). One request or
    response per line; no literal newlines ever appear inside a message
    — the string printer escapes them — so a line reader frames the
    stream correctly. See DESIGN.md "Session architecture & wire
    protocol" for the schema. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let num_int n = Num (float_of_int n)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_num b f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else if Float.is_nan f || Float.abs f = Float.infinity then
    (* JSON has no NaN/inf; null is the least-wrong encoding *)
    Buffer.add_string b "null"
  else Buffer.add_string b (Printf.sprintf "%.12g" f)

let rec add_json b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num f -> add_num b f
  | Str s ->
      Buffer.add_char b '"';
      escape_into b s;
      Buffer.add_char b '"'
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          add_json b x)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape_into b k;
          Buffer.add_string b "\":";
          add_json b v)
        fields;
      Buffer.add_char b '}'

let to_string (j : json) : string =
  let b = Buffer.create 256 in
  add_json b j;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let of_string (s : string) : (json, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* encode a \uXXXX code point (with surrogate-pair handling) as UTF-8 *)
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "truncated escape";
          let c = s.[!pos] in
          advance ();
          (match c with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              let cp = hex4 () in
              let cp =
                (* high surrogate: consume the paired low surrogate *)
                if cp >= 0xD800 && cp <= 0xDBFF
                   && !pos + 1 < n
                   && s.[!pos] = '\\'
                   && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00))
                end
                else cp
              in
              add_utf8 b cp
          | c -> fail (Printf.sprintf "bad escape \\%C" c));
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let mem key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get_string = function Str s -> Some s | _ -> None

let get_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let get_bool = function Bool b -> Some b | _ -> None

let mem_string key j = Option.bind (mem key j) get_string
let mem_int key j = Option.bind (mem key j) get_int
let mem_bool key j = Option.bind (mem key j) get_bool

(* ------------------------------------------------------------------ *)
(* JSON-RPC framing                                                    *)
(* ------------------------------------------------------------------ *)

type request = {
  rq_id : json;  (** echoed verbatim; [Null] when the client sent none *)
  rq_method : string;
  rq_params : json;  (** [Obj []] when absent *)
}

let parse_request (line : string) : (request, string) result =
  match of_string line with
  | Error m -> Error m
  | Ok j -> (
      match mem_string "method" j with
      | None -> Error "request has no \"method\""
      | Some m ->
          Ok
            {
              rq_id = Option.value (mem "id" j) ~default:Null;
              rq_method = m;
              rq_params = Option.value (mem "params" j) ~default:(Obj []);
            })

let response_ok ~id (result : json) : string =
  to_string (Obj [ ("id", id); ("result", result) ])

let response_error ~id ?(code = -32000) (message : string) : string =
  to_string
    (Obj
       [
         ("id", id);
         ("error", Obj [ ("code", num_int code); ("message", Str message) ]);
       ])
