(** Const inference for C (Section 4): flow-insensitive constraint
    generation over mini-C programs.

    Every C construct the paper discusses is handled:
    - variables are refs; r-positions auto-dereference (Section 4.1);
    - assignment requires the target ref below [¬const] (rule (Assign'));
    - struct fields share one set of qualifier variables per declaration,
      while the top-level qualifiers of distinct struct variables stay
      independent (Section 4.2);
    - typedefs are macro-expanded, sharing nothing (Section 4.2);
    - undefined (library) functions are conservative: pointer arguments
      whose parameter is not declared const are forced non-const; their
      results are fresh per call (Section 4.2);
    - explicit casts lose the association between value and type; implicit
      conversions retain what they can (Section 4.2);
    - variadic calls and arity mismatches ignore extra arguments
      (Section 4.2);
    - polymorphic inference generalizes per strongly connected component of
      the FDG, traversed callees-first; global variables stay monomorphic
      (Section 4.3). *)

module Solver = Typequal.Solver
module Budget = Typequal.Budget
module Pool = Typequal.Pool
module Elt = Typequal.Lattice.Elt
module Space = Typequal.Lattice.Space
module Q = Typequal.Qualifier
open Cfront
open Qtypes

type mode =
  | Mono
  | Poly
  | Polyrec
      (** polymorphic recursion (Section 4.3's "we would prefer to use
          polymorphic recursion": decidable and efficient because the
          qualifier lattice is finite and qualifiers do not change the
          type structure); implemented as Mycroft-style iteration of the
          per-SCC generalization to a fixed point of the interface
          summaries *)

(** The qualifier space used by const inference. *)
let const_space = Space.create [ Q.const ]

(** Per-qualifier rule set for the C analysis — the C-side analogue of the
    example language's hooks. The engine (flows, ℓ translation, struct
    sharing, FDG polymorphism) is qualifier-agnostic; these three callbacks
    give a space its semantics. *)
type qrules = {
  qr_space : Space.t;
  qr_name : string;  (** the qualifier whose verdicts {!Report} counts *)
  qr_write : Solver.t -> Solver.var -> unit;
      (** called with the qualifier of every assigned ref (the paper's
          (Assign') choice point) *)
  qr_escape : Solver.t -> declared:Cast.quals option -> Solver.var -> unit;
      (** called with the qualifier of each pointer level of a value
          escaping to unknown code (library/variadic/undeclared calls),
          together with the declared qualifiers of the corresponding
          parameter level if a prototype provides them *)
  qr_seed : Solver.t -> Qtypes.cell -> Cast.quals -> unit;
      (** interpretation of source-level qualifiers on a declaration *)
}

(** Section 4's const rules, generalized over the ambient space (which
    must contain ["const"]): assignment targets below ¬const; escaping
    pointer levels not declared const are forced non-const; declared
    qualifiers in the space seed lower bounds. Running the same rules in a
    wider space (extra coordinates, possibly multi-level) must not change
    the const verdicts — the bench's lattice section checks exactly that. *)
let const_rules_in sp : qrules =
  let not_const = Elt.not_name sp "const" in
  {
    qr_space = sp;
    qr_name = "const";
    qr_write =
      (fun store q ->
        Solver.add_leq_vc ~reason:"assignment target must be non-const (Assign')"
          store q not_const);
    qr_escape =
      (fun store ~declared q ->
        let exempt =
          match declared with Some qs -> Cast.is_const qs | None -> false
        in
        if not exempt then
          Solver.add_leq_vc
            ~reason:"escapes to unknown code not declared const" store q
            not_const);
    qr_seed =
      (fun store c quals ->
        seed_declared store c quals ~reason:"declared qualifier");
  }

let const_rules : qrules = const_rules_in const_space

let taint_space = Space.create [ Q.tainted ]

(** CQual-style taint rules over the Section 2.5 [$]-qualifier syntax:
    [$tainted] on a declaration level seeds taint (sources), [$untainted]
    pins the level below ¬tainted (trusted sinks). Writes are unrestricted;
    escaping to unknown code neither taints nor untaints (library
    behaviour is described by its prototype annotations). *)
let taint_rules : qrules =
  let sp = taint_space in
  let not_tainted = Elt.not_name sp "tainted" in
  let tainted = Elt.of_names_up sp [ "tainted" ] in
  {
    qr_space = sp;
    qr_name = "tainted";
    qr_write = (fun _ _ -> ());
    qr_escape =
      (fun store ~declared q ->
        match declared with
        | Some qs when Cast.has_qual "untainted" qs ->
            Solver.add_leq_vc ~reason:"trusted sink ($untainted)" store q
              not_tainted
        | _ -> ());
    qr_seed =
      (fun store c quals ->
        if Cast.has_qual "tainted" quals then
          Solver.add_leq_cv ~reason:"declared $tainted (source)" store tainted
            c.Qtypes.q;
        if Cast.has_qual "untainted" quals then
          Solver.add_leq_vc ~reason:"declared $untainted (sink)" store
            c.Qtypes.q not_tainted);
  }

(** Generic rules for a user-defined lattice (the [--lattice FILE] path):
    CQual's declaration semantics. A declared classic qualifier seeds a
    lower bound (presence), as in {!const_rules}. A declared {e level} of
    an ordered coordinate pins the coordinate to exactly that level — the
    declaration states the variable's constant value, so [$tainted] data
    cannot flow into a [$untainted] cell and vice versa only downward.
    Escapes to unknown code are bounded by the declared level of the
    prototype parameter when one exists (the CQual trusted-sink pattern:
    [$untainted] pins escapes at bottom); writes are unrestricted.
    [qual] names the coordinate {!Report} measures. *)
let lattice_rules sp ~qual : qrules =
  if not (Space.mem sp qual) then
    invalid_arg ("Analysis.lattice_rules: qualifier " ^ qual ^ " not in space");
  let pin_level store v i l ~reason =
    let mask = Elt.singleton_mask sp i in
    Solver.add_leq_cv ~mask ~reason store
      (Elt.with_level sp i l (Elt.bottom sp))
      v;
    Solver.add_leq_vc ~mask ~reason store v (Elt.with_level sp i l (Elt.top sp))
  in
  {
    qr_space = sp;
    qr_name = qual;
    qr_write = (fun _ _ -> ());
    qr_escape =
      (fun store ~declared q ->
        match declared with
        | Some qs ->
            List.iter
              (fun qn ->
                match Space.resolve sp qn with
                | Some (`Level (i, l)) ->
                    Solver.add_leq_vc
                      ~mask:(Elt.singleton_mask sp i)
                      ~reason:("escapes to code declared " ^ qn)
                      store q
                      (Elt.with_level sp i l (Elt.top sp))
                | Some (`Qual _) | None -> ())
              qs
        | None -> ());
    qr_seed =
      (fun store c quals ->
        (* classic qualifiers: presence as a lower bound *)
        seed_declared store c
          (List.filter
             (fun qn ->
               match Space.resolve sp qn with Some (`Qual _) -> true | _ -> false)
             quals)
          ~reason:"declared qualifier";
        (* levels: the declaration is the coordinate's constant value *)
        List.iter
          (fun qn ->
            match Space.resolve sp qn with
            | Some (`Level (i, l)) ->
                pin_level store c.Qtypes.q i l ~reason:("declared " ^ qn)
            | Some (`Qual _) | None -> ())
          quals);
  }

type fentry =
  | FMono of fsig  (** constraints link directly to these cells *)
  | FPoly of Solver.scheme * fsig  (** instantiated per occurrence *)

(** Per-function analysis outcome. A degraded function contributed no (or
    only partial) constraints; its callers see it as a library function,
    which is conservative, and {!Report} excludes its positions. *)
type outcome = Analyzed | Degraded of string

(** How a variable of a worker's private store binds into the shared
    store at merge time (parallel analysis). *)
type gbind =
  | Gvar of Solver.var  (** mirror of this pre-existing shared variable *)
  | Gauto of string
      (** auto-declared global, identified by name — it may not exist in
          the shared store yet, and several workers may introduce it
          independently; the first merged batch materializes it *)

(** A function's published summary, in the {e producing} worker's private
    terms: consumers resolve foreign variables through [p_bind] (foreign
    var id -> shared binding) into mirrors of their own. *)
type pentry = {
  p_scheme : Solver.scheme;
  p_fsig : fsig;
  p_bind : (int, gbind) Hashtbl.t;
}

(** Published summaries: written by a worker when its SCC completes —
    before its dependents are released, so the wavefront's happens-before
    edge covers them — and read by dependent workers. *)
type pub = {
  pub_m : Mutex.t;
  pub_tbl : (string, pentry) Hashtbl.t;
}

(** May instances of a scheme be shared between call sites of the same
    callee? Decided once per (scheme, callee), from the shape of the
    registered interface and the scheme's own atoms — both structural, so
    serial runs, worker replicas (over mirrored schemes), and cached
    replays reach the same verdict. *)
type memo_verdict =
  | MFlat
      (** the whole signature is flat (flat return, flat pointed-to
          contents on every parameter): linking {e any} call against it
          emits no atoms, and the scheme's atoms can never violate on
          their own — the registered interface serves every call site
          with no instantiation at all *)
  | MSession
      (** flat return only: one instance may serve all call sites with
          identical argument shapes and variables within one recording
          session (the PR 4 memo) *)
  | MNonflatRet  (** rejected: using the result emits structural atoms *)
  | MMayViolate
      (** rejected: a dropped instance copy could drop a bound violation *)

(** Wall-clock phase breakdown of a parallel run (for [--stats]). *)
type par_stats = {
  ps_jobs : int;
  ps_tasks : int;  (** scheduled units: SCCs (poly) or functions (mono) *)
  ps_gen_s : float;  (** parallel constraint-generation phase *)
  ps_merge_s : float;  (** serial batched merge into the shared store *)
}

type env = {
  store : Solver.t;
  prog : Cprog.t;
  mode : mode;
  fields : (string, (string * cell) list) Hashtbl.t;
  funs : (string, fentry) Hashtbl.t;
  globals : (string, cell) Hashtbl.t;
  rules : qrules;
  mutable warnings : string list;
  late_mono : (int, unit) Hashtbl.t;
      (** variables that join the monomorphic environment after the global
          watermark (auto-declared identifiers); never generalized *)
  field_sharing : bool;
      (** Section 4.2 field sharing; [false] only for the ablation study:
          every struct access then gets fresh field cells *)
  outcomes : (string, outcome) Hashtbl.t;  (** per defined function *)
  budget : Budget.t option;
      (** resource guard; exhaustion degrades remaining functions *)
  pc : par_ctx option;
      (** present iff this is a worker's private view: [store] and every
          table above are private to one domain, and shared state is
          reached read-only through the context *)
  mutable par : par_stats option;  (** set on the shared env by parallel runs *)
  compact : bool;
      (** scheme compaction at generalization and instantiation
          memoization (default on); [false] restores the uncompacted
          behaviour — reports are identical either way, only the
          constraint-system size differs *)
  shapes : Shape.table;  (** hash-consed r-type skeletons, per store *)
  imemo : (int * string * (int * int list) list, fsig) Hashtbl.t;
      (** instantiation memo: (scheme id, callee, per-argument
          (shape id, qualifier-variable uids)) -> the shared instance.
          Valid only within one recording session — every session
          boundary resets it, so a memo hit always names an instance
          whose atoms were captured into the current recording. *)
  memo_ok : (int * string, memo_verdict) Hashtbl.t;
      (** cached sharing eligibility per (scheme id, callee); see
          {!memo_verdict} *)
}

(** A worker's window onto the shared analysis: the read-only global env
    (its tables are frozen during the parallel phase), the mirror tables
    mapping shared cells into the worker's private store, and the binding
    table the merge uses to map private variables back. *)
and par_ctx = {
  pc_genv : env;
  pc_bind : (int, gbind) Hashtbl.t;  (** private var id -> shared binding *)
  pc_gmirror : (int, Solver.var) Hashtbl.t;  (** shared var id -> mirror *)
  pc_cmirror : (int, cell) Hashtbl.t;  (** shared cell (by q id) -> mirror *)
  pc_autos : (string * cell) list ref;
      (** auto-declared globals this worker introduced, newest first *)
  pc_pub : pub;
}

let warn env msg = env.warnings <- msg :: env.warnings

(* ------------------------------------------------------------------ *)
(* Fault isolation                                                     *)
(* ------------------------------------------------------------------ *)

let degrade env name reason =
  Hashtbl.replace env.outcomes name (Degraded reason)

let mark_analyzed env name =
  if not (Hashtbl.mem env.outcomes name) then
    Hashtbl.replace env.outcomes name Analyzed

let budget_reason env =
  match env.budget with Some b -> Budget.exhausted b | None -> None

let reason_of_exn = function
  | Cprog.Frontend_error m -> m
  | Failure m -> "analysis failure: " ^ m
  | Stack_overflow -> "analysis failure: stack overflow"
  | e -> "analysis failure: " ^ Printexc.to_string e

(* Run [k] under fault isolation for function [name]: exceptions and
   budget exhaustion degrade the function instead of aborting the run.
   Out-of-memory and interrupts are never swallowed. *)
let guarded env name (k : unit -> 'a) : 'a option =
  match budget_reason env with
  | Some r ->
      degrade env name ("budget exhausted: " ^ r);
      None
  | None -> (
      match k () with
      | x ->
          mark_analyzed env name;
          Some x
      | exception ((Out_of_memory | Sys.Break) as e) -> raise e
      | exception e ->
          degrade env name (reason_of_exn e);
          None)

(* declaration-qualifier seeding, per the active rule set *)
let seed env = env.rules.qr_seed env.store

(* ------------------------------------------------------------------ *)
(* Mirroring shared cells into a worker's private store                *)
(* ------------------------------------------------------------------ *)

(* A mirror is a fresh private variable standing for a shared one: the
   worker constrains the mirror, and the merge binds it back to the shared
   original instead of re-creating it, so the shared store's variable
   sequence stays identical to a serial run's. Mirrors are memoized per
   worker (aliasing in the shared store must stay aliasing privately). No
   declared-qualifier seeding happens here — those constraints were added
   to the shared store when the global environment was built. *)
let mirror_var env pc (g : Solver.var) : Solver.var =
  let id = Solver.var_id g in
  match Hashtbl.find_opt pc.pc_gmirror id with
  | Some v -> v
  | None ->
      let v = Solver.fresh ~name:(Solver.var_name g) env.store in
      Hashtbl.replace pc.pc_gmirror id v;
      Hashtbl.replace pc.pc_bind (Solver.var_id v) (Gvar g);
      v

let rec mirror_rt env pc = function
  | (RBase | RVoid | RStruct _) as r -> r
  | RPtr c -> RPtr (mirror_cell env pc c)
  | RFun f -> RFun (mirror_fsig env pc f)

and mirror_cell env pc (c : cell) : cell =
  let id = Solver.var_id c.q in
  match Hashtbl.find_opt pc.pc_cmirror id with
  | Some c' -> c'
  | None ->
      let c' = { q = mirror_var env pc c.q; contents = RBase } in
      Hashtbl.replace pc.pc_cmirror id c';
      c'.contents <- mirror_rt env pc c.contents;
      c'

and mirror_fsig env pc (f : fsig) : fsig =
  {
    fs_params = List.map (mirror_cell env pc) f.fs_params;
    fs_ret = mirror_rt env pc f.fs_ret;
    fs_varargs = f.fs_varargs;
  }

(* ------------------------------------------------------------------ *)
(* Shared struct field tables (Section 4.2)                            *)
(* ------------------------------------------------------------------ *)

let rec field_cells env tag : (string * cell) list =
  match Hashtbl.find_opt env.fields tag with
  | Some fs when env.field_sharing -> fs
  | Some _ ->
      (* ablation: fresh cells per access site, no sharing *)
      List.map
        (fun (name, ft) ->
          (name, cell_of_ctype ~name ~seed:(seed env) env.store ft))
        (Cprog.fields env.prog tag)
  | None -> (
      match env.pc with
      | Some pc when Hashtbl.mem pc.pc_genv.fields tag ->
          if env.field_sharing then begin
            (* worker view of the shared per-tag table: mirror the shared
               cells (memoized, so sharing is preserved) *)
            let fs =
              List.map
                (fun (name, c) -> (name, mirror_cell env pc c))
                (Hashtbl.find pc.pc_genv.fields tag)
            in
            Hashtbl.replace env.fields tag fs;
            fs
          end
          else
            (* ablation under parallelism: the shared env knows the tag, so
               behave like the [Some _] branch — fresh cells per access *)
            List.map
              (fun (name, ft) ->
                (name, cell_of_ctype ~name ~seed:(seed env) env.store ft))
              (Cprog.fields env.prog tag)
      | _ -> build_fields env tag)

and build_fields env tag =
  (* install a placeholder first so recursive structs terminate *)
      Hashtbl.replace env.fields tag [];
      let fs =
        List.map
          (fun (name, ft) ->
            ( name,
              cell_of_ctype
                ~name:(tag ^ "." ^ name)
                ~seed:(seed env) env.store ft ))
          (Cprog.fields env.prog tag)
      in
      Hashtbl.replace env.fields tag fs;
      fs

and find_field env tag fname =
  List.assoc_opt fname (field_cells env tag)

(* ------------------------------------------------------------------ *)
(* Scopes                                                              *)
(* ------------------------------------------------------------------ *)

type scope = {
  mutable locals : (string * cell) list;
  ret : rt;  (** current function's return r-type *)
}

let lookup_var env scope x : cell option =
  match List.assoc_opt x scope.locals with
  | Some c -> Some c
  | None -> (
      match Hashtbl.find_opt env.globals x with
      | Some c -> Some c
      | None -> (
          (* worker view: mirror the shared global on first touch *)
          match env.pc with
          | Some pc -> (
              match Hashtbl.find_opt pc.pc_genv.globals x with
              | Some gc ->
                  let c = mirror_cell env pc gc in
                  Hashtbl.replace env.globals x c;
                  Some c
              | None -> None)
          | None -> None))

(* Undeclared identifiers (K&R implicit, or benchmarks referencing symbols
   from headers we do not have): auto-declare as an int global so repeated
   uses alias. *)
let auto_global env x =
  match Hashtbl.find_opt env.globals x with
  | Some c -> c
  | None ->
      let c = fresh_cell ~name:("auto_" ^ x) env.store RBase in
      Hashtbl.replace env.globals x c;
      Hashtbl.replace env.late_mono (Solver.var_id c.q) ();
      (match env.pc with
      | Some pc ->
          (* bind by name: the shared counterpart may not exist yet, and
             concurrent workers may introduce the same one — the first
             merged batch materializes it, the rest bind to it *)
          Hashtbl.replace pc.pc_bind (Solver.var_id c.q) (Gauto x);
          pc.pc_autos := (x, c) :: !(pc.pc_autos)
      | None -> ());
      c

(* ------------------------------------------------------------------ *)
(* Function interfaces                                                 *)
(* ------------------------------------------------------------------ *)

let iface_of_fundef env (f : Cast.fundef) : fsig =
  {
    fs_params =
      List.map
        (fun (n, pt) ->
          cell_of_param ~seed:(seed env) env.store n
            (Cprog.expand env.prog pt))
        f.f_params;
    fs_ret =
      rt_of_ctype ~seed:(seed env) env.store
        (Cprog.expand env.prog (Cprog.decay f.f_ret));
    fs_varargs = f.f_varargs;
  }

(* A fresh signature for an undefined (library) function, from its
   prototype. Fresh per call site: library results never alias. *)
let lib_sig env name : fsig option =
  match Cprog.find_proto env.prog name with
  | Some (TFun _ as ft) -> (
      match rt_of_ctype ~seed:(seed env) env.store (Cprog.expand env.prog ft) with
      | RFun s -> Some s
      | _ -> None)
  | _ -> None

(** Apply the escape rule to every pointer level of [r]: the conservative
    treatment of values reaching unknown code (Section 4.2). When [decl]
    is the declared parameter type, each level's declared qualifiers are
    passed to the rule (e.g. const-declared levels are exempt from
    non-const forcing). *)
let rec force_escape env ?(decl : Cast.ctype option) (r : rt) ~reason =
  ignore reason;
  match r with
  | RBase | RVoid | RStruct _ -> ()
  | RFun _ -> ()
  | RPtr c ->
      let target_decl =
        match decl with
        | Some (TPtr (t, _)) | Some (TArray (t, _, _)) -> Some t
        | _ -> None
      in
      let declared = Option.map Cast.quals_of target_decl in
      env.rules.qr_escape env.store ~declared c.q;
      force_escape env ?decl:target_decl c.contents ~reason

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let assign_to env (c : cell) ~reason =
  (* the (Assign') choice point: rules restrict the assigned ref *)
  ignore reason;
  env.rules.qr_write env.store c.q

(* Resolve a foreign variable (one of another worker's private store) to a
   variable of this worker's store, via its published shared binding. A
   variable [bind] does not cover is one of the producing scheme's locals:
   those are freshened at instantiation and need no resolution. *)
let import_var env pc (p_bind : (int, gbind) Hashtbl.t) v =
  match Hashtbl.find_opt p_bind (Solver.var_id v) with
  | Some (Gvar g) -> mirror_var env pc g
  | Some (Gauto name) -> (auto_global env name).q
  | None -> v

(* Translate a published summary into this worker's terms: scheme locals
   are kept (they only name freshening slots), while free variables —
   which name the producing worker's mirrors of shared state — are
   re-based onto this worker's own mirrors. The result behaves exactly
   like a locally generalized [FPoly] entry. *)
let import_fentry env pc (pe : pentry) : fentry =
  let resolve v = import_var env pc pe.p_bind v in
  let atoms =
    List.map
      (function
        | Solver.Avc (v, c, m, r) -> Solver.Avc (resolve v, c, m, r)
        | Solver.Acv (c, v, m, r) -> Solver.Acv (c, resolve v, m, r)
        | Solver.Avv (a, b, m, r) -> Solver.Avv (resolve a, resolve b, m, r))
      (Solver.scheme_atoms pe.p_scheme)
  in
  let sch =
    Solver.make_scheme ~locals:(Solver.scheme_locals pe.p_scheme) ~atoms
  in
  FPoly (sch, pe.p_fsig)

(* resolve a function name to its cached entry, importing shared-store
   interfaces (mono) or published summaries (poly modes) into the
   worker's own terms on first sight *)
let rec fentry_of env name : fentry option =
  match Hashtbl.find_opt env.funs name with
  | Some e -> Some e
  | None -> (
      match env.pc with
      | None -> None
      | Some pc -> (
          match Hashtbl.find_opt pc.pc_genv.funs name with
          | Some (FMono s) ->
              (* mono mode: interfaces live in the shared store (built in
                 the serial first pass); mirror once and cache *)
              let s' = mirror_fsig env pc s in
              Hashtbl.replace env.funs name (FMono s');
              Some (FMono s')
          | Some (FPoly _) | None -> (
              (* poly modes: summaries are published by completed SCC
                 workers; a missing entry means the callee's SCC degraded
                 (or is genuinely undefined) — fall through to the
                 conservative library treatment, like the serial run *)
              Mutex.lock pc.pc_pub.pub_m;
              let pe = Hashtbl.find_opt pc.pc_pub.pub_tbl name in
              Mutex.unlock pc.pc_pub.pub_m;
              match pe with
              | Some pe ->
                  Hashtbl.replace env.funs name (import_fentry env pc pe);
                  fentry_of env name
              | None -> None)))

(* instantiate a defined function for one occurrence *)
let fun_occurrence env name : fsig option =
  match fentry_of env name with
  | Some (FMono s) -> Some s
  | Some (FPoly (sch, s)) ->
      let rn = Solver.instantiate env.store sch in
      Some (copy_fsig rn s)
  | None -> None

(* Classify one (scheme, callee) pair for instance sharing; see
   {!memo_verdict}. Requirements, from weakest to strongest:
   (a) a flat return type, so using the result emits no structural
   constraints; (b) atoms that can never produce a bound violation on
   their own, so dropping a would-be second copy cannot drop an error;
   (c) flat pointed-to contents on every parameter, so the [sub
   r p.contents] in {!call} emits nothing for any argument. (a)+(b) give
   session sharing over identical-argument call sites; (a)+(b)+(c) give
   MFlat — no call site can ever reach an instance variable, so the
   registered interface itself serves every occurrence. The
   pessimistically-pinned set for (b) is exactly the instance variables a
   call site flows into: each parameter's pointed-to contents and the
   result (empty under (c)). A parameter's own top-level qualifier
   receives no call-site inflow, so it keeps its scheme-internal bounds —
   pinning it too would reject every function that increments a pointer
   parameter. Cached per (scheme, callee). *)
let memo_verdict env sch (s : fsig) name =
  let key = (Solver.scheme_id sch, name) in
  match Hashtbl.find_opt env.memo_ok key with
  | Some v -> v
  | None ->
      let v =
        if not (Shape.flat (Shape.of_rt env.shapes s.fs_ret)) then MNonflatRet
        else begin
          let flat_params =
            List.for_all
              (fun (p : cell) ->
                Shape.flat (Shape.of_rt env.shapes p.contents))
              s.fs_params
          in
          let inflow =
            if flat_params then []
            else
              rt_qvars s.fs_ret
              @ List.concat_map
                  (fun (p : cell) -> rt_qvars p.contents)
                  s.fs_params
          in
          if
            Solver.atoms_never_violate
              (Solver.space env.store)
              ~locals:(Solver.scheme_locals sch)
              ~exposed:inflow
              (Solver.scheme_atoms sch)
          then if flat_params then MFlat else MSession
          else MMayViolate
        end
      in
      Hashtbl.replace env.memo_ok key v;
      v

(* Instantiate a defined function for one CALL occurrence. Two calls of an
   eligible polymorphic callee whose arguments have identical skeletons
   and qualifier variables emit literally identical argument-flow atoms
   against either instance, and the flat result is consumed without
   constraints — so the second call re-uses the first call's instance
   instead of re-emitting the scheme. Observationally invisible:
   solutions of named program variables and the violation set are
   unchanged (the skipped copy's atoms never violate, and its fresh
   variables are unobservable). *)
let fun_call_occurrence env name (arg_rts : rt list) : fsig option =
  match fentry_of env name with
  | Some (FMono s) -> Some s
  | Some (FPoly (sch, s)) ->
      let instantiate () =
        let rn = Solver.instantiate env.store sch in
        copy_fsig rn s
      in
      if env.compact then begin
        Solver.note_memo_candidate env.store;
        match memo_verdict env sch s name with
        | MFlat ->
            (* no call can reach an instance variable and the scheme's
               atoms never violate: the registered interface IS the
               summary, shared across sessions, SCCs, and rounds *)
            Solver.note_memo_hit env.store;
            Some s
        | MSession -> (
            let arg_key =
              List.map
                (fun r ->
                  ( Shape.id (Shape.of_rt env.shapes r),
                    List.map Solver.var_uid (rt_qvars r) ))
                arg_rts
            in
            let key = (Solver.scheme_id sch, name, arg_key) in
            match Hashtbl.find_opt env.imemo key with
            | Some inst ->
                Solver.note_memo_hit env.store;
                Some inst
            | None ->
                Solver.note_memo_miss env.store;
                let inst = instantiate () in
                Hashtbl.replace env.imemo key inst;
                Some inst)
        | MNonflatRet ->
            Solver.note_memo_reject_nonflat_ret env.store;
            Some (instantiate ())
        | MMayViolate ->
            Solver.note_memo_reject_may_violate env.store;
            Some (instantiate ())
      end
      else Some (instantiate ())
  | None -> None

let rec lvalue env scope (e : Cast.expr) : cell =
  match e with
  | EVar x -> (
      match lookup_var env scope x with
      | Some c -> c
      | None -> (
          match fun_occurrence env x with
          | Some s -> fresh_cell env.store (RFun s)
          | None -> (
              match lib_sig env x with
              | Some s -> fresh_cell env.store (RFun s)
              | None -> auto_global env x)))
  | EDeref e -> (
      match rvalue env scope e with
      | RPtr c -> c
      | RFun s -> fresh_cell env.store (RFun s) (* *f on a function *)
      | _ -> fresh_cell env.store RBase (* cast/void*: information lost *))
  | EIndex (e, i) -> (
      ignore (rvalue env scope i);
      match rvalue env scope e with
      | RPtr c -> c
      | _ -> fresh_cell env.store RBase)
  | EMember (e, fname) ->
      let parent = lvalue env scope e in
      member_cell env parent fname
  | EArrow (e, fname) -> (
      match rvalue env scope e with
      | RPtr parent -> member_cell env parent fname
      | _ -> fresh_cell env.store RBase)
  | ECast (t, e) ->
      ignore (rvalue env scope e);
      cell_of_ctype ~seed:(seed env) env.store (Cprog.expand env.prog t)
  | EComma (a, b) ->
      ignore (rvalue env scope a);
      lvalue env scope b
  | _ ->
      (* not an l-value in our subset; lose information *)
      ignore (rvalue env scope e);
      fresh_cell env.store RBase

(* Field access through a parent cell: the field's qualifier variables are
   shared per struct declaration; the l-value seen here is a guard cell
   whose qualifier joins the parent's and the field's, so an assignment
   (an upper bound ¬const) forces BOTH non-const while reads share the
   field's contents (Section 4.2). *)
and member_cell env (parent : cell) fname : cell =
  match parent.contents with
  | RStruct tag -> (
      match find_field env tag fname with
      | Some fc ->
          let g = fresh_cell ~name:("access_" ^ fname) env.store fc.contents in
          Solver.add_leq_vv ~reason:"field qualifier" env.store fc.q g.q;
          Solver.add_leq_vv ~reason:"enclosing struct qualifier" env.store
            parent.q g.q;
          g
      | None -> fresh_cell env.store RBase)
  | _ -> fresh_cell env.store RBase

and rvalue env scope (e : Cast.expr) : rt =
  match e with
  | EInt _ | EFloat _ | EChar _ | ESizeofT _ -> RBase
  | ESizeofE e ->
      ignore (rvalue env scope e);
      RBase
  | EString _ ->
      (* a C89 string literal has type char[]; its cell is fresh *)
      RPtr (fresh_cell ~name:"strlit" env.store RBase)
  | EVar x -> (
      (* function designators are values, not refs *)
      match lookup_var env scope x with
      | Some c -> c.contents
      | None -> (
          match fun_occurrence env x with
          | Some s -> RFun s
          | None -> (
              match lib_sig env x with
              | Some s -> RFun s
              | None -> (auto_global env x).contents)))
  | EUnop (_, e) ->
      ignore (rvalue env scope e);
      RBase
  | EBinop (op, a, b) -> (
      let ra = rvalue env scope a in
      let rb = rvalue env scope b in
      match (op, ra, rb) with
      (* pointer arithmetic preserves the pointer *)
      | (Add | Sub), (RPtr _ as p), _ -> p
      | (Add | Sub), _, (RPtr _ as p) -> p
      | _ -> RBase)
  | EAssign (lhs, rhs) ->
      let c = lvalue env scope lhs in
      assign_to env c ~reason:"assignment target (Assign')";
      let rr = rvalue env scope rhs in
      sub ~reason:"assignment flow" env.store rr c.contents;
      c.contents
  | EAssignOp (_, lhs, rhs) ->
      let c = lvalue env scope lhs in
      assign_to env c ~reason:"compound assignment target (Assign')";
      ignore (rvalue env scope rhs);
      c.contents
  | EIncDec (_, _, lhs) ->
      let c = lvalue env scope lhs in
      assign_to env c ~reason:"++/-- target (Assign')";
      c.contents
  | ECond (g, a, b) -> (
      ignore (rvalue env scope g);
      let ra = rvalue env scope a in
      let rb = rvalue env scope b in
      match (ra, rb) with
      | RPtr c1, RPtr c2 ->
          let r = fresh_cell ~name:"cond" env.store c1.contents in
          Solver.add_leq_vv ~reason:"?: left" env.store c1.q r.q;
          Solver.add_leq_vv ~reason:"?: right" env.store c2.q r.q;
          eq_contents ~reason:"?: contents" env.store c1.contents c2.contents;
          RPtr r
      | (RPtr _ as p), _ | _, (RPtr _ as p) -> p (* e.g. p ? p : 0 *)
      | ra, _ -> ra)
  | EComma (a, b) ->
      ignore (rvalue env scope a);
      rvalue env scope b
  | EAddr e -> RPtr (lvalue env scope e)
  | EDeref _ | EIndex _ | EMember _ | EArrow _ ->
      (lvalue env scope e).contents
  | ECast (t, e) ->
      (* explicit cast: evaluate for effects, then sever the association *)
      ignore (rvalue env scope e);
      rt_of_ctype ~seed:(seed env) env.store (Cprog.expand env.prog t)
  | EInitList es ->
      List.iter (fun e -> ignore (rvalue env scope e)) es;
      RBase
  | ECall (callee, args) -> call env scope callee args

and call env scope callee args : rt =
  let arg_rts = List.map (fun a -> rvalue env scope a) args in
  let link_sig (s : fsig) =
    let rec link ps rs =
      match (ps, rs) with
      | _, [] -> ()
      | [], _ -> () (* extra arguments are ignored (Section 4.2) *)
      | (p : cell) :: ps, r :: rs ->
          sub ~reason:"argument flow" env.store r p.contents;
          link ps rs
    in
    link s.fs_params arg_rts;
    (* variadic extras and arity mismatches are ignored (Section 4.2:
       "we simply ignore extra arguments") *)
    s.fs_ret
  in
  match callee with
  | EVar fname -> (
      match fun_call_occurrence env fname arg_rts with
      | Some s -> link_sig s
      | None -> (
          match lib_sig env fname with
          | Some s ->
              (* library call: parameters not declared const are treated as
                 non-const (Section 4.2) *)
              let decls =
                match Cprog.find_proto env.prog fname with
                | Some (TFun (_, ps, _)) ->
                    List.map (fun (_, t) -> Cprog.decay (Cprog.expand env.prog t)) ps
                | _ -> []
              in
              let rec force rs ds i =
                match rs with
                | [] -> ()
                | r :: rs ->
                    (match List.nth_opt ds i with
                    | Some d ->
                        force_escape env ~decl:d r
                          ~reason:("argument to library function " ^ fname)
                    | None ->
                        (* extra (variadic) arguments are ignored,
                           Section 4.2 *)
                        ());
                    force rs ds (i + 1)
              in
              force arg_rts decls 0;
              s.fs_ret
          | None ->
              (* no prototype at all: every pointer argument is conservative *)
              warn env ("call to undeclared function " ^ fname);
              List.iter
                (fun r ->
                  force_escape env r
                    ~reason:("argument to undeclared function " ^ fname))
                arg_rts;
              RBase))
  | _ -> (
      (* call through an expression: function pointer *)
      match rvalue env scope callee with
      | RFun s -> link_sig s
      | RPtr { contents = RFun s; _ } -> link_sig s
      | _ ->
          List.iter
            (fun r ->
              force_escape env r ~reason:"argument through unknown pointer")
            arg_rts;
          RBase)

(* ------------------------------------------------------------------ *)
(* Initializers and statements                                         *)
(* ------------------------------------------------------------------ *)

let rec init_into env scope (c : cell) (e : Cast.expr) =
  match (e, c.contents) with
  | EInitList items, RStruct tag ->
      let fields = field_cells env tag in
      List.iteri
        (fun i item ->
          match List.nth_opt fields i with
          | Some (_, fc) -> init_into env scope fc item
          | None -> ignore (rvalue env scope item))
        items
  | EInitList items, RPtr elem ->
      (* array initializer: every item flows into the element cell *)
      List.iter (fun item -> init_into env scope elem item) items
  | EInitList items, _ ->
      List.iter (fun item -> ignore (rvalue env scope item)) items
  | e, _ ->
      let r = rvalue env scope e in
      sub ~reason:"initializer flow" env.store r c.contents

let declare_local env scope (d : Cast.decl) =
  let ty = Cprog.expand env.prog d.d_type in
  let c = cell_of_ctype ~name:d.d_name ~seed:(seed env) env.store ty in
  scope.locals <- (d.d_name, c) :: scope.locals;
  match d.d_init with Some e -> init_into env scope c e | None -> ()

let rec stmt env scope (s : Cast.stmt) =
  match s with
  | SExpr e -> ignore (rvalue env scope e)
  | SDecl ds -> List.iter (declare_local env scope) ds
  | SBlock ss ->
      (* block scoping: restore locals on exit *)
      let saved = scope.locals in
      List.iter (stmt env scope) ss;
      scope.locals <- saved
  | SIf (g, s1, s2) ->
      ignore (rvalue env scope g);
      stmt env scope s1;
      Option.iter (stmt env scope) s2
  | SWhile (g, b) ->
      ignore (rvalue env scope g);
      stmt env scope b
  | SDoWhile (b, g) ->
      stmt env scope b;
      ignore (rvalue env scope g)
  | SFor (init, cond, step, body) ->
      let saved = scope.locals in
      Option.iter (stmt env scope) init;
      Option.iter (fun e -> ignore (rvalue env scope e)) cond;
      Option.iter (fun e -> ignore (rvalue env scope e)) step;
      stmt env scope body;
      scope.locals <- saved
  | SReturn (Some e) ->
      let r = rvalue env scope e in
      sub ~reason:"return flow" env.store r scope.ret
  | SReturn None | SBreak | SContinue | SGoto _ | SNull -> ()
  | SSwitch (g, b) ->
      ignore (rvalue env scope g);
      stmt env scope b
  | SCase (g, b) ->
      ignore (rvalue env scope g);
      stmt env scope b
  | SDefault b | SLabel (_, b) -> stmt env scope b

let analyze_body env (f : Cast.fundef) (iface : fsig) =
  let scope =
    {
      locals = List.map2 (fun (n, _) c -> (n, c)) f.f_params iface.fs_params;
      ret = iface.fs_ret;
    }
  in
  List.iter (stmt env scope) f.f_body

(* ------------------------------------------------------------------ *)
(* Whole-program drivers                                               *)
(* ------------------------------------------------------------------ *)

let make_env ?(rules = const_rules) ?(field_sharing = true) ?(compact = true)
    ?budget mode (prog : Cprog.t) : env =
  let store = Solver.create rules.qr_space in
  Solver.set_budget store budget;
  {
    store;
    prog;
    mode;
    fields = Hashtbl.create 16;
    funs = Hashtbl.create 64;
    globals = Hashtbl.create 64;
    rules;
    warnings = [];
    late_mono = Hashtbl.create 16;
    field_sharing;
    outcomes = Hashtbl.create 16;
    budget;
    pc = None;
    par = None;
    compact;
    shapes = Shape.create_table ();
    imemo = Hashtbl.create 64;
    memo_ok = Hashtbl.create 16;
  }

(* Credit a wall-clock window to one of the per-phase stats columns,
   minus whatever the solver already credited to the nested phases
   (instantiate/compact run inside the congen window), so the columns
   stay disjoint and sum to roughly the analysis wall time. *)
let timed_phase env ph f =
  let st = env.store in
  let i0 = Solver.phase_seconds st Solver.Instantiate
  and c0 = Solver.phase_seconds st Solver.Compact in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  let nested =
    Solver.phase_seconds st Solver.Instantiate
    -. i0
    +. (Solver.phase_seconds st Solver.Compact -. c0)
  in
  Solver.note_phase st ph (Float.max 0. (dt -. nested));
  r

(* Global variables and struct tables are part of the monomorphic
   environment: build them eagerly so scheme generalization can exclude
   their variables by creation time. *)
let build_global_env env =
  List.iter
    (fun (d : Cast.decl) ->
      try
        let ty = Cprog.expand env.prog d.d_type in
        Hashtbl.replace env.globals d.d_name
          (cell_of_ctype ~name:d.d_name ~seed:(seed env) env.store ty)
      with Cprog.Frontend_error m ->
        (* e.g. the typedef's definition was lost to a parse error: the
           global keeps a fresh unconstrained cell so uses still alias *)
        warn env
          (Printf.sprintf "global %s: %s; treated as unconstrained" d.d_name m);
        Hashtbl.replace env.globals d.d_name
          (fresh_cell ~name:d.d_name env.store RBase))
    (Cprog.global_vars env.prog);
  Hashtbl.iter
    (fun tag _ ->
      try ignore (field_cells env tag)
      with Cprog.Frontend_error m ->
        warn env
          (Printf.sprintf "struct %s: %s; fields treated as unconstrained" tag
             m))
    env.prog.Cprog.comps

let analyze_global_inits env =
  (* initializer calls instantiate outside any recording: a fresh memo
     session (instances memoized during the last SCC are not shareable
     here — their atoms belong to that SCC's scheme, not the store) *)
  Hashtbl.reset env.imemo;
  let scope = { locals = []; ret = RBase } in
  timed_phase env Solver.Congen (fun () ->
      List.iter
        (fun (d : Cast.decl) ->
          match d.d_init with
          | Some e -> (
              match Hashtbl.find_opt env.globals d.d_name with
              | Some c -> (
                  try init_into env scope c e
                  with Cprog.Frontend_error m ->
                    warn env
                      (Printf.sprintf "initializer of %s: %s; ignored"
                         d.d_name m))
              | None -> ())
          | None -> ())
        (Cprog.global_vars env.prog))

(** Monomorphic const inference (the "Mono" column of Table 2). *)
let run_mono ?rules ?field_sharing ?compact ?budget (prog : Cprog.t) :
    env * (string * fsig) list =
  let env = make_env ?rules ?field_sharing ?compact ?budget Mono prog in
  build_global_env env;
  let funs = Cprog.functions prog in
  (* pass 1: interfaces, so calls in any order link directly; a function
     whose interface cannot be built is degraded and left out of env.funs,
     so its callers fall back to the conservative library treatment *)
  let ifaces =
    timed_phase env Solver.Congen (fun () ->
        List.filter_map
          (fun (f : Cast.fundef) ->
            match guarded env f.f_name (fun () -> iface_of_fundef env f) with
            | Some s ->
                Hashtbl.replace env.funs f.f_name (FMono s);
                Some (f.f_name, s)
            | None -> None)
          funs)
  in
  (* pass 2: bodies *)
  timed_phase env Solver.Congen (fun () ->
      List.iter
        (fun (f : Cast.fundef) ->
          match Hashtbl.find_opt env.funs f.f_name with
          | Some (FMono s) ->
              ignore (guarded env f.f_name (fun () -> analyze_body env f s))
          | _ -> ())
        funs);
  analyze_global_inits env;
  (env, ifaces)

(* Generalize an SCC's captured constraints: every variable mentioned
   that is not part of the monomorphic global environment becomes a scheme
   local (Section 4.3). [is_global] decides membership in the monomorphic
   environment: by creation watermark + late-mono table for a serial run,
   by the mirror/auto binding table for a worker's private store. *)
let generalize_scc ~is_global atoms
    (scc_ifaces : (Cast.fundef * fsig) list) : Solver.scheme =
  let seen = Hashtbl.create 64 in
  let locals = ref [] in
  let consider v =
    let id = Solver.var_id v in
    if (not (is_global v)) && not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      locals := v :: !locals
    end
  in
  List.iter
    (function
      | Solver.Avc (v, _, _, _) | Solver.Acv (_, v, _, _) -> consider v
      | Solver.Avv (a, b, _, _) ->
          consider a;
          consider b)
    atoms;
  List.iter (fun (_, s) -> List.iter consider (rt_qvars (RFun s))) scc_ifaces;
  Solver.make_scheme ~locals:!locals ~atoms

(* A deterministic bounds summary of an interface, used as the
   convergence criterion for polymorphic recursion: the (lo, hi) vector is
   structural, so two rounds can be compared even though their variables
   differ. [bounds] maps a variable id to its (lo, hi) pair, typically
   {!Solver.solve_atoms} over the scheme's own atoms — no global solve. *)
let summarize_iface bounds (s : fsig) : (Elt.t * Elt.t) list =
  let acc = ref [] in
  let seen = Hashtbl.create 16 in
  let rec go_rt = function
    | RBase | RVoid | RStruct _ -> ()
    | RPtr c -> go_cell c
    | RFun f ->
        List.iter go_cell f.fs_params;
        go_rt f.fs_ret
  and go_cell c =
    if not (Hashtbl.mem seen (Solver.var_id c.q)) then begin
      Hashtbl.add seen (Solver.var_id c.q) ();
      acc := bounds (Solver.var_id c.q) :: !acc;
      go_rt c.contents
    end
  in
  go_rt (RFun s);
  List.rev !acc

(* The monomorphic-environment predicate of a serial run: everything
   created before the watermark (globals, struct fields) plus the
   late-arriving auto globals. *)
let serial_is_global env ~global_watermark v =
  Solver.var_id v < global_watermark
  || Hashtbl.mem env.late_mono (Solver.var_id v)

(* A multi-member SCC generalizes into one scheme carrying every
   member's constraints and every member's interface — but a call to
   one member must not pay for the whole component. The scale corpora's
   cross-file recursion rings tie SCC size to project size, so
   instantiating the shared scheme at each ring call site made total
   instantiation cost quadratic in project size (measured: ~20k ring
   calls x ~120 locals each = 80% of all variables created on the
   megacorpus). At registration, re-compact the shared scheme down to
   the member's own interface-reachable core: exact by compaction's
   contract (identical interface solutions and bound violations),
   deterministic (compaction never iterates a hash table, so serial,
   worker and replay derivations agree structurally), and excluded from
   the scheme-size counters ([~count:false]) so those keep describing
   the primary generalizations. Singleton SCCs keep their scheme as is:
   it was already compacted against exactly this interface. *)
let member_scheme env sch (s : fsig) : Solver.scheme =
  if env.compact then
    Solver.compact ~count:false env.store ~interface:(rt_qvars (RFun s)) sch
  else sch

let register_member_schemes env sch (scc_ifaces : (Cast.fundef * fsig) list) =
  let multi = match scc_ifaces with _ :: _ :: _ -> true | _ -> false in
  List.iter
    (fun ((f : Cast.fundef), s) ->
      let sch_m = if multi then member_scheme env sch s else sch in
      Hashtbl.replace env.funs f.f_name (FPoly (sch_m, s)))
    scc_ifaces

(* Process one SCC (Poly): interfaces first so mutual recursion links
   directly, then bodies; capture the atoms, generalize, optionally
   simplify, and register the scheme for the members. Raises on analysis
   failure — fault isolation is the caller's job. *)
let poly_scc env ~is_global ~simplify members :
    (Cast.fundef * fsig) list * Solver.scheme =
  (* one memo session per recording: hits must name instances captured
     into THIS scheme *)
  Hashtbl.reset env.imemo;
  let scc_ifaces, atoms =
    timed_phase env Solver.Congen (fun () ->
        Solver.recording env.store (fun () ->
            let is =
              List.map
                (fun (f : Cast.fundef) ->
                  let s = iface_of_fundef env f in
                  Hashtbl.replace env.funs f.f_name (FMono s);
                  (f, s))
                members
            in
            List.iter (fun (f, s) -> analyze_body env f s) is;
            is))
  in
  let sch =
    timed_phase env Solver.Generalize (fun () ->
        generalize_scc ~is_global atoms scc_ifaces)
  in
  let interface =
    List.concat_map (fun (_, s) -> rt_qvars (RFun s)) scc_ifaces
  in
  let sch =
    if simplify then Solver.simplify_scheme env.store ~interface sch else sch
  in
  let sch =
    if env.compact then Solver.compact env.store ~interface sch else sch
  in
  register_member_schemes env sch scc_ifaces;
  (scc_ifaces, sch)

(** Polymorphic const inference (Section 4.3, the "Poly" column): SCCs of
    the FDG processed callees-first; each SCC's constraints are captured
    and generalized into one scheme shared by its members. *)
let run_poly ?rules ?field_sharing ?(simplify = false) ?compact ?budget
    (prog : Cprog.t) : env * (string * fsig) list =
  let env = make_env ?rules ?field_sharing ?compact ?budget Poly prog in
  build_global_env env;
  (* variables created so far (globals, struct fields) are monomorphic *)
  let global_watermark = Solver.num_vars env.store in
  let is_global = serial_is_global env ~global_watermark in
  let fdg = Fdg.build prog in
  let ifaces = ref [] in
  (* fault isolation is per SCC: members are generalized together, so a
     failure in any of them invalidates the whole component's scheme *)
  let degrade_scc members reason =
    List.iter
      (fun (f : Cast.fundef) ->
        degrade env f.f_name reason;
        Hashtbl.remove env.funs f.f_name)
      members
  in
  List.iter
    (fun scc ->
      let members =
        List.filter_map (fun name -> Cprog.find_fun prog name) scc
      in
      match budget_reason env with
      | Some r -> degrade_scc members ("budget exhausted: " ^ r)
      | None -> (
          match poly_scc env ~is_global ~simplify members with
          | exception ((Out_of_memory | Sys.Break) as e) -> raise e
          | exception e -> degrade_scc members (reason_of_exn e)
          | scc_ifaces, _ ->
              List.iter
                (fun ((f : Cast.fundef), s) ->
                  mark_analyzed env f.f_name;
                  ifaces := (f.f_name, s) :: !ifaces)
                scc_ifaces))
    fdg.Fdg.sccs;
  analyze_global_inits env;
  (env, List.rev !ifaces)

(** Polymorphic recursion: like {!run_poly}, but recursive calls within
    an SCC are themselves polymorphic. Each SCC is re-analyzed with the
    previous iteration's schemes used for in-SCC calls — starting from the
    most general (unconstrained) summaries — until the interface verdicts
    reach a fixed point. Termination: the summaries form a finite domain
    and the iteration is capped (the cap is never reached in practice;
    the fixed point typically arrives by the second round). *)
(* Process one SCC (Polyrec): Mycroft iteration to a fixed point of the
   interface summaries, entirely within [env]'s store (each round's
   constraints stay in the store, like the serial run). Returns the final
   interfaces and scheme; raises on analysis failure. *)
let polyrec_scc env ~is_global prog scc members :
    (Cast.fundef * fsig) list * Solver.scheme =
  let max_rounds = 6 in
  let is_recursive =
    match scc with
    | [ f ] -> (
        (* the FDG filters self-edges; detect direct recursion from the
           body's own mentions *)
        match Cprog.find_fun prog f with
        | Some fd -> List.mem f (Fdg.mentions fd)
        | None -> false)
    | _ -> true
  in
  let process_round () =
    (* memo sessions never span rounds: a later round's scheme must
       capture its own copies of every instance *)
    Hashtbl.reset env.imemo;
    timed_phase env Solver.Congen (fun () ->
        Solver.recording env.store (fun () ->
            let is =
              List.map
                (fun (f : Cast.fundef) -> (f, iface_of_fundef env f))
                members
            in
            List.iter (fun (f, s) -> analyze_body env f s) is;
            is))
  in
  let finish scc_ifaces atoms =
    let sch =
      timed_phase env Solver.Generalize (fun () ->
          generalize_scc ~is_global atoms scc_ifaces)
    in
    let interface =
      List.concat_map (fun (_, s) -> rt_qvars (RFun s)) scc_ifaces
    in
    (* both reduce the scheme to its interface-reachable core and are
       exact on interface solutions; compact additionally dedupes and
       collapses cycles, so when it is on running both would be wasted
       work (measured: they reach the same size) *)
    let sch =
      if env.compact then Solver.compact env.store ~interface sch
      else Solver.simplify_scheme env.store ~interface sch
    in
    register_member_schemes env sch scc_ifaces;
    sch
  in
  if not is_recursive then begin
    (* non-recursive: identical to plain per-SCC polymorphism, but members
       must be callable monomorphically while their own bodies are
       analyzed *)
    Hashtbl.reset env.imemo;
    let scc_ifaces, atoms =
      timed_phase env Solver.Congen (fun () ->
          Solver.recording env.store (fun () ->
              let is =
                List.map
                  (fun (f : Cast.fundef) ->
                    let s = iface_of_fundef env f in
                    Hashtbl.replace env.funs f.f_name (FMono s);
                    (f, s))
                  members
              in
              List.iter (fun (f, s) -> analyze_body env f s) is;
              is))
    in
    let sch = finish scc_ifaces atoms in
    (scc_ifaces, sch)
  end
  else begin
    (* round 0: most general summaries — unconstrained skeletons *)
    List.iter
      (fun (f : Cast.fundef) ->
        let sk = iface_of_fundef env f in
        let sch0 = Solver.make_scheme ~locals:(rt_qvars (RFun sk)) ~atoms:[] in
        Hashtbl.replace env.funs f.f_name (FPoly (sch0, sk)))
      members;
    let rec iterate prev_summaries round =
      (* bodies analyzed against the PREVIOUS round's schemes: in-SCC
         calls instantiate polymorphically *)
      let scc_ifaces, atoms = process_round () in
      let sch = finish scc_ifaces atoms in
      let bounds =
        Solver.solve_atoms (Solver.space env.store) (Solver.scheme_atoms sch)
      in
      let summaries =
        List.map (fun (_, s) -> summarize_iface bounds s) scc_ifaces
      in
      if summaries = prev_summaries || round >= max_rounds then
        (scc_ifaces, sch)
      else iterate summaries (round + 1)
    in
    iterate [] 1
  end

let run_polyrec ?rules ?field_sharing ?compact ?budget (prog : Cprog.t) :
    env * (string * fsig) list =
  let env = make_env ?rules ?field_sharing ?compact ?budget Polyrec prog in
  build_global_env env;
  let global_watermark = Solver.num_vars env.store in
  let is_global = serial_is_global env ~global_watermark in
  let fdg = Fdg.build prog in
  let ifaces = ref [] in
  List.iter
    (fun scc ->
      let members =
        List.filter_map (fun name -> Cprog.find_fun prog name) scc
      in
      let degrade_scc reason =
        List.iter
          (fun (f : Cast.fundef) ->
            degrade env f.f_name reason;
            Hashtbl.remove env.funs f.f_name)
          members
      in
      match budget_reason env with
      | Some r -> degrade_scc ("budget exhausted: " ^ r)
      | None -> (
          match polyrec_scc env ~is_global prog scc members with
          | exception ((Out_of_memory | Sys.Break) as e) -> raise e
          | exception e -> degrade_scc (reason_of_exn e)
          | final, _ ->
              List.iter
                (fun ((f : Cast.fundef), s) ->
                  mark_analyzed env f.f_name;
                  ifaces := (f.f_name, s) :: !ifaces)
                final))
    fdg.Fdg.sccs;
  analyze_global_inits env;
  (env, List.rev !ifaces)

(* ------------------------------------------------------------------ *)
(* Parallel drivers (multicore wavefront; see DESIGN.md)               *)
(* ------------------------------------------------------------------ *)

(* A private analysis view for one worker task: fresh store (charging the
   shared budget), private tables, and a mirror context onto [genv]. *)
let worker_env (genv : env) (pub : pub) : env =
  let store = Solver.create genv.rules.qr_space in
  Solver.set_budget store genv.budget;
  {
    store;
    prog = genv.prog;
    mode = genv.mode;
    fields = Hashtbl.create 16;
    funs = Hashtbl.create 16;
    globals = Hashtbl.create 16;
    rules = genv.rules;
    warnings = [];
    late_mono = Hashtbl.create 8;
    field_sharing = genv.field_sharing;
    outcomes = Hashtbl.create 8;
    budget = genv.budget;
    pc =
      Some
        {
          pc_genv = genv;
          pc_bind = Hashtbl.create 64;
          pc_gmirror = Hashtbl.create 64;
          pc_cmirror = Hashtbl.create 64;
          pc_autos = ref [];
          pc_pub = pub;
        };
    par = None;
    compact = genv.compact;
    shapes = Shape.create_table ();
    imemo = Hashtbl.create 32;
    memo_ok = Hashtbl.create 16;
  }

let worker_pc env =
  match env.pc with Some pc -> pc | None -> invalid_arg "not a worker env"

(* Everything a finished task hands to the merge, in the worker's own
   terms. *)
type task_result = {
  tr_batch : Solver.batch;
  tr_bind : (int, gbind) Hashtbl.t;
  tr_autos : (string * cell) list;  (* creation order *)
  tr_warnings : string list;  (* newest first, as accumulated *)
  tr_outcomes : (string * outcome) list;
  tr_ifaces : (Cast.fundef * fsig) list;  (* [] when degraded / mono *)
  tr_scheme : Solver.scheme option;  (* None in mono mode / when degraded *)
  tr_aux : Solver.stats;  (* worker-store counters (compaction, memo) *)
}

let task_result wenv ~ifaces ~scheme : task_result =
  let pc = worker_pc wenv in
  {
    tr_batch = Solver.export wenv.store;
    tr_bind = pc.pc_bind;
    tr_autos = List.rev !(pc.pc_autos);
    tr_warnings = wenv.warnings;
    tr_outcomes = Hashtbl.fold (fun k v acc -> (k, v) :: acc) wenv.outcomes [];
    tr_ifaces = ifaces;
    tr_scheme = scheme;
    tr_aux = Solver.stats wenv.store;
  }

(* Merge one worker's result into the shared env, in deterministic task
   order: absorb the batch (mirrors bind to their shared originals; every
   other variable is re-created in creation order, reproducing the
   variable and atom sequence of a serial run), materialize auto globals,
   and translate interfaces and scheme into shared-store terms. Returns
   the interface entries to report. *)
let merge_result genv (r : task_result) : (string * fsig) list =
  Solver.merge_aux_stats genv.store r.tr_aux;
  let bind v =
    match Hashtbl.find_opt r.tr_bind (Solver.var_id v) with
    | Some (Gvar g) -> Some g
    | Some (Gauto name) ->
        (* materialized by an earlier batch, or created fresh right here *)
        Option.map (fun (c : cell) -> c.q) (Hashtbl.find_opt genv.globals name)
    | None -> None
  in
  let skippable =
    (match r.tr_scheme with None -> true | Some _ -> false)
    && r.tr_ifaces = [] && r.tr_autos = []
    && Solver.batch_skippable ~bind r.tr_batch
  in
  if skippable then begin
    (* the absorb would create no variable and add no atom: skip it, keep
       only the side reports (common for leaf functions whose body
       touches nothing beyond its mirrored interface) *)
    Solver.note_skipped_batch genv.store;
    List.iter (fun (n, o) -> Hashtbl.replace genv.outcomes n o) r.tr_outcomes;
    genv.warnings <- r.tr_warnings @ genv.warnings;
    []
  end
  else begin
  let rn = Solver.absorb genv.store ~bind r.tr_batch in
  let rnv v = match rn v with Some v' -> v' | None -> v in
  List.iter
    (fun (name, (c : cell)) ->
      if not (Hashtbl.mem genv.globals name) then begin
        let gc = { q = rnv c.q; contents = RBase } in
        Hashtbl.replace genv.globals name gc;
        Hashtbl.replace genv.late_mono (Solver.var_id gc.q) ()
      end)
    r.tr_autos;
  List.iter (fun (n, o) -> Hashtbl.replace genv.outcomes n o) r.tr_outcomes;
  genv.warnings <- r.tr_warnings @ genv.warnings;
  match r.tr_scheme with
  | None ->
      List.map
        (fun ((f : Cast.fundef), s) -> (f.f_name, copy_fsig rnv s))
        r.tr_ifaces
  | Some sch ->
      let rn_atom = function
        | Solver.Avc (v, c, m, re) -> Solver.Avc (rnv v, c, m, re)
        | Solver.Acv (c, v, m, re) -> Solver.Acv (c, rnv v, m, re)
        | Solver.Avv (a, b, m, re) -> Solver.Avv (rnv a, rnv b, m, re)
      in
      let sch_g =
        Solver.make_scheme
          ~locals:(List.map rnv (Solver.scheme_locals sch))
          ~atoms:(List.map rn_atom (Solver.scheme_atoms sch))
      in
      let multi = match r.tr_ifaces with _ :: _ :: _ -> true | _ -> false in
      List.map
        (fun ((f : Cast.fundef), s) ->
          let s_g = copy_fsig rnv s in
          (* same member projection the worker registered locally, over
             the shared-store translation of the scheme *)
          let sch_f = if multi then member_scheme genv sch_g s_g else sch_g in
          Hashtbl.replace genv.funs f.f_name (FPoly (sch_f, s_g));
          (f.f_name, s_g))
        r.tr_ifaces
  end

(* ------------------------------------------------------------------ *)
(* Persistent per-SCC cache (portable task results; see DESIGN.md)     *)
(* ------------------------------------------------------------------ *)

module Cache = Typequal.Cache

(* A worker's task result is expressed in its own private store, whose
   variables are meaningless across processes. To persist it we re-express
   everything in {e portable} terms: variables become their creation index
   (a fresh store's [var_id] IS the creation index), and bindings to the
   shared store become stable {e paths} — "g:name#k" for the k-th cell of
   global [name] (DFS order), "f:tag.field#k" for struct fields, or the
   auto-global's name. Both sides derive the same paths from the same
   program, so a later process can replay the exact constraint stream into
   a fresh worker store and merge it as if it had just been inferred. *)

type registry = {
  rg_path : (int, string) Hashtbl.t;  (** shared var id -> stable path *)
  rg_var : (string, Solver.var) Hashtbl.t;  (** stable path -> shared var *)
}

(* Visit every cell reachable from [c] in DFS preorder, calling
   [f path var] with "<root>#k" for the k-th newly seen cell. *)
let walk_cells root (c : cell) f =
  let seen = Hashtbl.create 8 in
  let k = ref 0 in
  let rec go_cell c =
    let id = Solver.var_id c.q in
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      f (Printf.sprintf "%s#%d" root !k) c.q;
      incr k;
      go_rt c.contents
    end
  and go_rt = function
    | RBase | RVoid | RStruct _ -> ()
    | RPtr c -> go_cell c
    | RFun fs ->
        List.iter go_cell fs.fs_params;
        go_rt fs.fs_ret
  in
  go_cell c

(* Stable paths for every shared variable a worker can mirror: the global
   environment is fully built before the parallel phase and frozen during
   it, so declaration order (globals) and sorted tag order (fields) give
   both the writer and a later reader the same enumeration. *)
let registry_of_env (genv : env) : registry =
  let rg = { rg_path = Hashtbl.create 997; rg_var = Hashtbl.create 997 } in
  let add path v =
    if not (Hashtbl.mem rg.rg_path (Solver.var_id v)) then begin
      Hashtbl.replace rg.rg_path (Solver.var_id v) path;
      Hashtbl.replace rg.rg_var path v
    end
  in
  List.iter
    (fun (d : Cast.decl) ->
      match Hashtbl.find_opt genv.globals d.d_name with
      | Some c -> walk_cells ("g:" ^ d.d_name) c add
      | None -> ())
    (Cprog.global_vars genv.prog);
  let tags = Hashtbl.fold (fun tag _ acc -> tag :: acc) genv.fields [] in
  List.iter
    (fun tag ->
      List.iter
        (fun (fname, c) -> walk_cells (Printf.sprintf "f:%s.%s" tag fname) c add)
        (Hashtbl.find genv.fields tag))
    (List.sort compare tags);
  rg

exception Unencodable
(** raised while encoding a task whose bindings have no stable path; the
    task is simply not cached (never an error) *)

exception Undecodable_task
(** raised while decoding a cached payload that is internally inconsistent
    (e.g. variable indices out of range); the loader rejects the entry and
    re-infers cold *)

(** how a portable variable binds into the shared store *)
type pbind =
  | PB_none  (** worker-private: re-created fresh on replay *)
  | PB_global of string  (** mirror of the shared variable at this path *)
  | PB_auto of string  (** auto-declared global, bound by name *)

(** an atom over portable variable indices *)
type patom =
  | PAvc of int * Elt.t * int * string option
  | PAcv of Elt.t * int * int * string option
  | PAvv of int * int * int * string option

(** portable mirror of {!Qtypes.rt}: qualifier variables by index *)
type ptcell = { ptq : int; mutable ptr : ptrt }

and ptrt =
  | PTBase
  | PTVoid
  | PTStruct of string
  | PTPtr of ptcell
  | PTFun of pfsig

and pfsig = { pfs_params : ptcell list; pfs_ret : ptrt; pfs_varargs : bool }

(** one SCC task's complete result, in portable terms; [Marshal]-safe *)
type ptask = {
  pt_vars : (string * pbind) array;  (** per creation index: name, binding *)
  pt_atoms : patom array;  (** the full add-call log, insertion order *)
  pt_warnings : string list;
  pt_outcomes : (string * outcome) list;
  pt_ifaces : (string * pfsig) list;  (** member name -> interface *)
  pt_scheme : (int list * patom list) option;
  pt_aux : Solver.stats;  (** deterministic counters only (sanitized) *)
}

(* Wall-clock and heap fields are nondeterministic; zero them so a cached
   result merges the same counters a fresh inference would have after
   {!Solver.merge_aux_stats} (which folds only the deterministic ones). *)
let sanitize_stats (s : Solver.stats) : Solver.stats =
  {
    s with
    Solver.solve_s = 0.;
    absorb_s = 0.;
    congen_s = 0.;
    generalize_s = 0.;
    compact_s = 0.;
    instantiate_s = 0.;
    report_s = 0.;
    heap_words = 0;
    top_heap_words = 0;
    cores_available = 0;
  }

let encode_task (rg : registry) (r : task_result) : ptask =
  let vars, atoms = Solver.batch_content r.tr_batch in
  let pt_vars =
    Array.mapi
      (fun i v ->
        if Solver.var_id v <> i then raise Unencodable;
        let bind =
          match Hashtbl.find_opt r.tr_bind i with
          | None -> PB_none
          | Some (Gauto x) -> PB_auto x
          | Some (Gvar g) -> (
              match Hashtbl.find_opt rg.rg_path (Solver.var_id g) with
              | Some p -> PB_global p
              | None -> raise Unencodable)
        in
        (Solver.var_name v, bind))
      vars
  in
  let n = Array.length pt_vars in
  let pvar v =
    let id = Solver.var_id v in
    if id < 0 || id >= n then raise Unencodable;
    id
  in
  let patom = function
    | Solver.Avc (v, c, m, re) -> PAvc (pvar v, c, m, re)
    | Solver.Acv (c, v, m, re) -> PAcv (c, pvar v, m, re)
    | Solver.Avv (a, b, m, re) -> PAvv (pvar a, pvar b, m, re)
  in
  let cmemo : (int, ptcell) Hashtbl.t = Hashtbl.create 32 in
  let rec prt = function
    | RBase -> PTBase
    | RVoid -> PTVoid
    | RStruct t -> PTStruct t
    | RPtr c -> PTPtr (pcell c)
    | RFun f -> PTFun (pfsig f)
  and pcell (c : cell) =
    let id = Solver.var_id c.q in
    match Hashtbl.find_opt cmemo id with
    | Some pc -> pc
    | None ->
        let pc = { ptq = pvar c.q; ptr = PTBase } in
        Hashtbl.add cmemo id pc;
        pc.ptr <- prt c.contents;
        pc
  and pfsig (f : fsig) =
    {
      pfs_params = List.map pcell f.fs_params;
      pfs_ret = prt f.fs_ret;
      pfs_varargs = f.fs_varargs;
    }
  in
  {
    pt_vars;
    pt_atoms = Array.map patom atoms;
    pt_warnings = r.tr_warnings;
    pt_outcomes = r.tr_outcomes;
    pt_ifaces =
      List.map (fun ((f : Cast.fundef), s) -> (f.f_name, pfsig s)) r.tr_ifaces;
    pt_scheme =
      Option.map
        (fun sch ->
          ( List.map pvar (Solver.scheme_locals sch),
            List.map patom (Solver.scheme_atoms sch) ))
        r.tr_scheme;
    pt_aux = sanitize_stats r.tr_aux;
  }

(* Replay a portable task into a fresh worker store: re-create every
   variable at its recorded index (mirroring / auto-declaring exactly as
   the original inference did), re-add every atom through the normal
   entry points, and rebuild the interfaces and scheme over the new
   variables. The resulting [task_result] merges byte-identically to the
   one the original inference produced. Every inconsistency raises
   {!Undecodable_task} — notably the index parity check, which catches
   any payload whose creation sequence cannot be reproduced. *)
let replay_task (genv : env) (pub : pub) (rg : registry) (prog : Cprog.t)
    (pt : ptask) : task_result =
  let wenv = worker_env genv pub in
  let pc = worker_pc wenv in
  let n = Array.length pt.pt_vars in
  let rev = ref [] in
  for i = 0 to n - 1 do
    let name, bind = pt.pt_vars.(i) in
    let v =
      match bind with
      | PB_none -> Solver.fresh ~name wenv.store
      | PB_auto x -> (auto_global wenv x).q
      | PB_global p -> (
          match Hashtbl.find_opt rg.rg_var p with
          | Some g -> mirror_var wenv pc g
          | None -> raise Undecodable_task)
    in
    if Solver.var_id v <> i then raise Undecodable_task;
    rev := v :: !rev
  done;
  let vars = Array.of_list (List.rev !rev) in
  let gv i = if i < 0 || i >= n then raise Undecodable_task else vars.(i) in
  Array.iter
    (function
      | PAvc (v, c, m, re) ->
          Solver.add_leq_vc ?reason:re ~mask:m wenv.store (gv v) c
      | PAcv (c, v, m, re) ->
          Solver.add_leq_cv ?reason:re ~mask:m wenv.store c (gv v)
      | PAvv (a, b, m, re) ->
          Solver.add_leq_vv ?reason:re ~mask:m wenv.store (gv a) (gv b))
    pt.pt_atoms;
  let datom = function
    | PAvc (v, c, m, re) -> Solver.Avc (gv v, c, m, re)
    | PAcv (c, v, m, re) -> Solver.Acv (c, gv v, m, re)
    | PAvv (a, b, m, re) -> Solver.Avv (gv a, gv b, m, re)
  in
  let cmemo : (int, cell) Hashtbl.t = Hashtbl.create 32 in
  let rec drt = function
    | PTBase -> RBase
    | PTVoid -> RVoid
    | PTStruct t -> RStruct t
    | PTPtr c -> RPtr (dcell c)
    | PTFun f -> RFun (dfsig f)
  and dcell (c : ptcell) =
    match Hashtbl.find_opt cmemo c.ptq with
    | Some c' -> c'
    | None ->
        let c' = { q = gv c.ptq; contents = RBase } in
        Hashtbl.add cmemo c.ptq c';
        c'.contents <- drt c.ptr;
        c'
  and dfsig f =
    {
      fs_params = List.map dcell f.pfs_params;
      fs_ret = drt f.pfs_ret;
      fs_varargs = f.pfs_varargs;
    }
  in
  let tr_ifaces =
    List.map
      (fun (name, pf) ->
        match Cprog.find_fun prog name with
        | Some fd -> (fd, dfsig pf)
        | None -> raise Undecodable_task)
      pt.pt_ifaces
  in
  let tr_scheme =
    Option.map
      (fun (locals, atoms) ->
        Solver.make_scheme ~locals:(List.map gv locals)
          ~atoms:(List.map datom atoms))
      pt.pt_scheme
  in
  {
    tr_batch = Solver.export wenv.store;
    tr_bind = pc.pc_bind;
    tr_autos = List.rev !(pc.pc_autos);
    tr_warnings = pt.pt_warnings;
    tr_outcomes = pt.pt_outcomes;
    tr_ifaces;
    tr_scheme;
    tr_aux = pt.pt_aux;
  }

(* The digest of what an SCC {e publishes} to its dependents: interfaces
   and scheme with private variables canonicalized positionally and shared
   bindings by stable path. Dependents chain these digests into their own
   envelopes, so a dependency whose published interface changed — and only
   then — invalidates them ("early cutoff": a body edit that compacts to
   the same scheme keeps every dependent warm). *)
let iface_digest (pt : ptask) : Digest.t =
  let b = Buffer.create 512 in
  let lmap = Hashtbl.create 32 in
  let lnext = ref 0 in
  let pv i =
    if i < 0 || i >= Array.length pt.pt_vars then Buffer.add_string b "!;"
    else
      match snd pt.pt_vars.(i) with
      | PB_global p ->
          Buffer.add_char b 'G';
          Buffer.add_string b p;
          Buffer.add_char b ';'
      | PB_auto x ->
          Buffer.add_char b 'A';
          Buffer.add_string b x;
          Buffer.add_char b ';'
      | PB_none ->
          let k =
            match Hashtbl.find_opt lmap i with
            | Some k -> k
            | None ->
                let k = !lnext in
                incr lnext;
                Hashtbl.add lmap i k;
                k
          in
          Buffer.add_char b 'L';
          Buffer.add_string b (string_of_int k);
          Buffer.add_char b ';'
  in
  let atom = function
    | PAvc (v, c, m, r) ->
        Buffer.add_string b "vc";
        pv v;
        Buffer.add_string b
          (Printf.sprintf "%d,%d,%s;" c m (Option.value r ~default:""))
    | PAcv (c, v, m, r) ->
        Buffer.add_string b (Printf.sprintf "cv%d," c);
        pv v;
        Buffer.add_string b
          (Printf.sprintf "%d,%s;" m (Option.value r ~default:""))
    | PAvv (x, y, m, r) ->
        Buffer.add_string b "vv";
        pv x;
        pv y;
        Buffer.add_string b
          (Printf.sprintf "%d,%s;" m (Option.value r ~default:""))
  in
  let cseen = Hashtbl.create 32 in
  let cnext = ref 0 in
  let rec rt = function
    | PTBase -> Buffer.add_char b 'b'
    | PTVoid -> Buffer.add_char b 'v'
    | PTStruct t ->
        Buffer.add_char b 's';
        Buffer.add_string b t;
        Buffer.add_char b ';'
    | PTPtr c ->
        Buffer.add_char b 'p';
        cell c
    | PTFun f -> fsig f
  and cell (c : ptcell) =
    match Hashtbl.find_opt cseen c.ptq with
    | Some k -> Buffer.add_string b ("^" ^ string_of_int k)
    | None ->
        let k = !cnext in
        incr cnext;
        Hashtbl.add cseen c.ptq k;
        Buffer.add_char b '(';
        pv c.ptq;
        rt c.ptr;
        Buffer.add_char b ')'
  and fsig f =
    Buffer.add_string b (if f.pfs_varargs then "F*(" else "F(");
    List.iter cell f.pfs_params;
    Buffer.add_string b ")->";
    rt f.pfs_ret
  in
  List.iter
    (fun (name, f) ->
      Buffer.add_char b 'I';
      Buffer.add_string b name;
      Buffer.add_char b ':';
      fsig f;
      Buffer.add_char b '\n')
    pt.pt_ifaces;
  (match pt.pt_scheme with
  | None -> Buffer.add_string b "noscheme"
  | Some (locals, atoms) ->
      Buffer.add_string b "S[";
      List.iter pv locals;
      Buffer.add_char b ']';
      List.iter atom atoms);
  Digest.string (Buffer.contents b)

(** In-memory SCC-task memo: the decoded, dependency-stamped {!ptask}s of
    a live session, keyed like the disk tier but skipping Marshal, MD5,
    and file I/O entirely. This is what makes a warm {!Session} edit
    cheap: after [update_unit], every clean SCC replays its decoded task
    (and reuses its precomputed interface digest) instead of re-reading
    and re-verifying an envelope. Entries are validated against the same
    dependency-digest chain as the envelopes, so a memo hit is exactly as
    trustworthy as a disk hit — and byte-identical to a cold run, since
    both paths converge on {!replay_task}. Domain-safe: the table is
    mutex-guarded (tasks on the pool probe it concurrently). *)
type scc_memo = {
  sm_m : Mutex.t;
  sm_tbl : (Digest.t, memo_entry) Hashtbl.t;
  mutable sm_hits : int;
  mutable sm_misses : int;
}

and memo_entry = {
  me_deps : Digest.t list;  (* dependency interface digests at store time *)
  me_pt : ptask;
  me_ifd : Digest.t;  (* iface_digest me_pt, computed once *)
}

let create_memo () =
  { sm_m = Mutex.create (); sm_tbl = Hashtbl.create 256; sm_hits = 0; sm_misses = 0 }

let memo_counts sm =
  Mutex.lock sm.sm_m;
  let r = (sm.sm_hits, sm.sm_misses) in
  Mutex.unlock sm.sm_m;
  r

(** Everything {!run_sccs_par} needs to cache per-SCC results: the cache
    tiers (persistent directory and/or in-session memo), the fingerprint
    of the cross-unit context (declarations, options, rule set —
    everything that affects inference besides the member bodies), and the
    per-unit content digest of the file defining each function ([None]
    makes that function's SCC uncacheable). *)
type cache_ctx = {
  cc_cache : Cache.t option;  (** the persistent tier; [None] = memo only *)
  cc_memo : scc_memo option;  (** the in-session decoded tier *)
  cc_key_prefix : string;
  cc_unit_of : string -> string option;
}

let scc_kind = "scc"

(* Wavefront scheduling of the SCC DAG: an SCC is ready once all its
   callees' SCCs have completed and published their summaries; ready SCCs
   run concurrently on the pool, each inferring into a private store.
   Batches are merged serially in SCC index order — the serial traversal
   order — so the shared store, and hence every reported figure, is
   identical to a serial run's.

   With [?cache], each task first tries to replay a verified cache entry
   (keyed by context + member units, chained to the dependencies' current
   interface digests); on any miss or rejection it infers cold and stores
   the portable result. Either way it computes its interface digest before
   releasing its dependents, so they always chain against this run's
   truth. *)
let run_sccs_par ~jobs ?rules ?field_sharing ?compact ?budget ?cache mode
    ~(process :
       env ->
       scc:string list ->
       members:Cast.fundef list ->
       (Cast.fundef * fsig) list * Solver.scheme) (prog : Cprog.t) :
    env * (string * fsig) list =
  let genv = make_env ?rules ?field_sharing ?compact ?budget mode prog in
  build_global_env genv;
  let t0 = Unix.gettimeofday () in
  let fdg = Fdg.build prog in
  let sccs = Array.of_list fdg.Fdg.sccs in
  let n = Array.length sccs in
  let in_degree0, dependents = Fdg.scc_deps fdg in
  let indeg = Array.copy in_degree0 in
  let pub = { pub_m = Mutex.create (); pub_tbl = Hashtbl.create 64 } in
  let results : task_result option array = Array.make n None in
  let m = Mutex.create () in
  (* cache plumbing: stable-path registry, dependency lists (the inversion
     of [dependents], ascending), and per-SCC interface digests — written
     by each task before its dependents are released, read by them when
     they chain their own envelopes *)
  let rg = match cache with Some _ -> Some (registry_of_env genv) | None -> None in
  let deps_of = Array.make n [] in
  (match cache with
  | Some _ ->
      Array.iteri
        (fun j ds -> List.iter (fun i -> deps_of.(i) <- j :: deps_of.(i)) ds)
        dependents;
      Array.iteri (fun i l -> deps_of.(i) <- List.sort_uniq compare l) deps_of
  | None -> ());
  let ifd = Array.make n "" in
  let key_of i =
    match cache with
    | None -> None
    | Some cc ->
        let b = Buffer.create 128 in
        Buffer.add_string b cc.cc_key_prefix;
        let ok =
          List.for_all
            (fun name ->
              match cc.cc_unit_of name with
              | Some d ->
                  Buffer.add_string b name;
                  Buffer.add_char b '\000';
                  Buffer.add_string b d;
                  Buffer.add_char b '\000';
                  true
              | None -> false)
            sccs.(i)
        in
        if ok then Some (Digest.string (Buffer.contents b)) else None
  in
  Pool.with_pool ~jobs (fun pool ->
      let rec task i () =
        let members =
          List.filter_map (fun name -> Cprog.find_fun prog name) sccs.(i)
        in
        let key = key_of i in
        let deps () = List.map (fun j -> ifd.(j)) deps_of.(i) in
        (* warm paths, fastest first. Memo: a decoded task from this
           session whose dependency digests still match — replay with no
           I/O, no unmarshal, no re-digesting. Disk: verified envelope ->
           decode -> replay; any failure past verification rejects the
           entry and falls through cold. *)
        let memo_hit =
          match (cache, rg, key) with
          | Some { cc_memo = Some sm; _ }, Some rg, Some key -> (
              Mutex.lock sm.sm_m;
              let e = Hashtbl.find_opt sm.sm_tbl key in
              Mutex.unlock sm.sm_m;
              match e with
              | Some e when e.me_deps = deps () -> (
                  match replay_task genv pub rg prog e.me_pt with
                  | r ->
                      Mutex.lock sm.sm_m;
                      sm.sm_hits <- sm.sm_hits + 1;
                      Mutex.unlock sm.sm_m;
                      Some (r, e)
                  | exception ((Out_of_memory | Sys.Break) as e) -> raise e
                  | exception _ ->
                      (* a task that replayed from disk must replay from
                         memory; drop the entry and fall through *)
                      Mutex.lock sm.sm_m;
                      Hashtbl.remove sm.sm_tbl key;
                      Mutex.unlock sm.sm_m;
                      None)
              | _ ->
                  Mutex.lock sm.sm_m;
                  sm.sm_misses <- sm.sm_misses + 1;
                  Mutex.unlock sm.sm_m;
                  None)
          | _ -> None
        in
        let cached =
          match memo_hit with
          | Some (r, e) -> Some (r, e.me_pt, Some e.me_ifd)
          | None -> (
              match (cache, rg, key) with
              | Some ({ cc_cache = Some disk; _ } as _cc), Some rg, Some key
                -> (
                  match
                    Cache.load disk ~kind:scc_kind ~key ~deps:(deps ())
                  with
                  | None -> None
                  | Some payload -> (
                      match
                        let pt = (Marshal.from_string payload 0 : ptask) in
                        let r = replay_task genv pub rg prog pt in
                        (r, pt)
                      with
                      | r, pt -> Some (r, pt, None)
                      | exception ((Out_of_memory | Sys.Break) as e) ->
                          raise e
                      | exception _ ->
                          Cache.reject_undecodable disk ~kind:scc_kind ~key;
                          None))
              | _ -> None)
        in
        (* remember a decoded task (with its digest chain) in the memo *)
        let memo_put key pt ifd =
          match cache with
          | Some { cc_memo = Some sm; _ } ->
              Mutex.lock sm.sm_m;
              Hashtbl.replace sm.sm_tbl key
                { me_deps = deps (); me_pt = pt; me_ifd = ifd };
              Mutex.unlock sm.sm_m
          | _ -> ()
        in
        let r, pt_hit, ifd_hit =
          match cached with
          | Some (r, pt, ifd) -> (r, Some pt, ifd)
          | None ->
              let wenv = worker_env genv pub in
              let degrade_scc reason =
                List.iter
                  (fun (f : Cast.fundef) -> degrade wenv f.f_name reason)
                  members
              in
              let r =
                match budget_reason wenv with
                | Some reason ->
                    degrade_scc ("budget exhausted: " ^ reason);
                    task_result wenv ~ifaces:[] ~scheme:None
                | None -> (
                    match process wenv ~scc:sccs.(i) ~members with
                    | exception ((Out_of_memory | Sys.Break) as e) -> raise e
                    | exception e ->
                        degrade_scc (reason_of_exn e);
                        (* keep the partial batch: a degraded serial SCC
                           also leaves its partial constraints in the
                           store *)
                        task_result wenv ~ifaces:[] ~scheme:None
                    | scc_ifaces, sch ->
                        List.iter
                          (fun ((f : Cast.fundef), _) ->
                            mark_analyzed wenv f.f_name)
                          scc_ifaces;
                        task_result wenv ~ifaces:scc_ifaces
                          ~scheme:(Some sch))
              in
              (r, None, None)
        in
        (* interface digest (and store, after a cold inference) before the
           dependents go: they chain against it. Uncacheable results still
           get a digest that moves with the member units, so a dependent
           entry goes stale whenever this SCC could have changed. *)
        (match (cache, rg) with
        | Some cc, Some rg ->
            ifd.(i) <-
              (match (ifd_hit, pt_hit) with
              | Some d, _ ->
                  (* memo hit: digest precomputed at store time *)
                  d
              | None, Some pt ->
                  (* disk hit: digest once, and promote to the memo so
                     the next warm run skips the envelope entirely *)
                  let d = iface_digest pt in
                  (match key with Some key -> memo_put key pt d | None -> ());
                  d
              | None, None -> (
                  match encode_task rg r with
                  | pt ->
                      (match (key, cc.cc_cache) with
                      | Some key, Some disk ->
                          Cache.store disk ~kind:scc_kind ~key
                            ~deps:(deps ())
                            (Marshal.to_string pt [])
                      | _ -> ());
                      let d = iface_digest pt in
                      (match key with Some key -> memo_put key pt d | None -> ());
                      d
                  | exception Unencodable ->
                      (* no interface bytes to digest, so chain
                         dependents to the member units instead: editing
                         any member body changes its unit digest and
                         hence this digest, invalidating their envelopes.
                         A member whose unit is unknown makes the digest
                         unique to this run, so dependents go cold rather
                         than warm-hit against unverifiable state. *)
                      let b = Buffer.create 128 in
                      Buffer.add_string b "unencodable\000";
                      Buffer.add_string b cc.cc_key_prefix;
                      List.iter
                        (fun name ->
                          Buffer.add_string b name;
                          Buffer.add_char b '\000';
                          Buffer.add_string b
                            (match cc.cc_unit_of name with
                            | Some d -> d
                            | None ->
                                Printf.sprintf "?%d.%.9f" (Unix.getpid ())
                                  (Unix.gettimeofday ()));
                          Buffer.add_char b '\000')
                        sccs.(i);
                      Digest.string (Buffer.contents b)))
        | _ -> ());
        (* publish before releasing dependents: they instantiate us.
           Member projection happens outside the lock — consumers only
           ever see the per-member scheme, matching what the serial run
           registers. *)
        (match r.tr_scheme with
        | Some sch ->
            let multi =
              match r.tr_ifaces with _ :: _ :: _ -> true | _ -> false
            in
            let entries =
              List.map
                (fun ((f : Cast.fundef), s) ->
                  let sch_m = if multi then member_scheme genv sch s else sch in
                  ( f.f_name,
                    { p_scheme = sch_m; p_fsig = s; p_bind = r.tr_bind } ))
                r.tr_ifaces
            in
            Mutex.lock pub.pub_m;
            List.iter
              (fun (n, e) -> Hashtbl.replace pub.pub_tbl n e)
              entries;
            Mutex.unlock pub.pub_m
        | None -> ());
        let ready = ref [] in
        Mutex.lock m;
        results.(i) <- Some r;
        List.iter
          (fun j ->
            indeg.(j) <- indeg.(j) - 1;
            if indeg.(j) = 0 then ready := j :: !ready)
          dependents.(i);
        Mutex.unlock m;
        List.iter (fun j -> Pool.submit pool (task j)) !ready
      in
      Array.iteri
        (fun i d -> if d = 0 then Pool.submit pool (task i))
        in_degree0;
      Pool.wait pool);
  let t_gen = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  (* the merge replays variables the workers already charged against the
     shared budget; don't charge them twice *)
  Solver.set_budget genv.store None;
  let ifaces = ref [] in
  (* drop each batch as soon as it is merged: a retained batch pins the
     whole worker arena (its variables point back at their store's
     columns), which is where the multi-gigaword jobs>1 heap came from *)
  Array.iteri
    (fun i -> function
      | Some r ->
          List.iter (fun e -> ifaces := e :: !ifaces) (merge_result genv r);
          results.(i) <- None
      | None -> ())
    results;
  Solver.set_budget genv.store genv.budget;
  analyze_global_inits genv;
  genv.par <-
    Some
      {
        ps_jobs = jobs;
        ps_tasks = n;
        ps_gen_s = t_gen;
        ps_merge_s = Unix.gettimeofday () -. t1;
      };
  (genv, List.rev !ifaces)

(* Mono map-reduce: interfaces are built serially in the shared store
   (pass 1, unchanged), then bodies fan out one task per function; every
   body generates into a private store against mirrored interfaces, and
   the batches merge back in function order. *)
let run_mono_par ~jobs ?rules ?field_sharing ?compact ?budget (prog : Cprog.t) :
    env * (string * fsig) list =
  let genv = make_env ?rules ?field_sharing ?compact ?budget Mono prog in
  build_global_env genv;
  let funs = Cprog.functions prog in
  let ifaces =
    timed_phase genv Solver.Congen (fun () ->
        List.filter_map
          (fun (f : Cast.fundef) ->
            match guarded genv f.f_name (fun () -> iface_of_fundef genv f) with
            | Some s ->
                Hashtbl.replace genv.funs f.f_name (FMono s);
                Some (f.f_name, s)
            | None -> None)
          funs)
  in
  let t0 = Unix.gettimeofday () in
  let pub = { pub_m = Mutex.create (); pub_tbl = Hashtbl.create 1 } in
  let work =
    Array.of_list
      (List.filter
         (fun (f : Cast.fundef) -> Hashtbl.mem genv.funs f.f_name)
         funs)
  in
  let results : task_result option array =
    Array.make (Array.length work) None
  in
  Pool.with_pool ~jobs (fun pool ->
      Array.iteri
        (fun i (f : Cast.fundef) ->
          Pool.submit pool (fun () ->
              let wenv = worker_env genv pub in
              (match Hashtbl.find_opt genv.funs f.f_name with
              | Some (FMono s) ->
                  timed_phase wenv Solver.Congen (fun () ->
                      ignore
                        (guarded wenv f.f_name (fun () ->
                             analyze_body wenv f
                               (mirror_fsig wenv (worker_pc wenv) s))))
              | _ -> ());
              (* distinct indices: no write race, and Pool.wait's queue
                 mutex orders these writes before the main-domain reads *)
              results.(i) <- Some (task_result wenv ~ifaces:[] ~scheme:None)))
        work;
      Pool.wait pool);
  let t_gen = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  Solver.set_budget genv.store None;
  (* free each worker batch right after its merge (see run_sccs_par) *)
  Array.iteri
    (fun i -> function
      | Some r ->
          ignore (merge_result genv r : (string * fsig) list);
          results.(i) <- None
      | None -> ())
    results;
  Solver.set_budget genv.store genv.budget;
  analyze_global_inits genv;
  genv.par <-
    Some
      {
        ps_jobs = jobs;
        ps_tasks = Array.length work;
        ps_gen_s = t_gen;
        ps_merge_s = Unix.gettimeofday () -. t1;
      };
  (genv, ifaces)

let run_poly_par ~jobs ?rules ?field_sharing ?(simplify = false) ?compact
    ?budget ?cache prog =
  run_sccs_par ~jobs ?rules ?field_sharing ?compact ?budget ?cache Poly prog
    ~process:(fun wenv ~scc:_ ~members ->
      let pc = worker_pc wenv in
      let is_global v = Hashtbl.mem pc.pc_bind (Solver.var_id v) in
      poly_scc wenv ~is_global ~simplify members)

let run_polyrec_par ~jobs ?rules ?field_sharing ?compact ?budget ?cache prog
    =
  run_sccs_par ~jobs ?rules ?field_sharing ?compact ?budget ?cache Polyrec
    prog
    ~process:(fun wenv ~scc ~members ->
      let pc = worker_pc wenv in
      let is_global v = Hashtbl.mem pc.pc_bind (Solver.var_id v) in
      polyrec_scc wenv ~is_global prog scc members)

(** Run an analysis. [jobs > 1] runs the multicore engine (wavefront over
    the FDG for the polymorphic modes, per-function map-reduce for mono);
    results are deterministic and identical to [jobs = 1], which takes the
    plain serial path.

    [?cache] enables the persistent per-SCC cache for the polymorphic
    modes; those runs always route through the SCC-task engine (at
    [jobs = 1] the pool runs tasks inline in submission order — the exact
    serial schedule), whose results are byte-identical to serial. A run
    under a {!Budget} never uses the cache: budget trips are
    load-dependent, hence not reproducible artifacts. *)
let run ?rules ?field_sharing ?simplify ?compact ?budget ?cache ?(jobs = 1)
    mode prog =
  let cache = match budget with Some _ -> None | None -> cache in
  let cached = match cache with Some _ -> true | None -> false in
  if jobs > 1 || (cached && mode <> Mono) then
    match mode with
    | Mono -> run_mono_par ~jobs ?rules ?field_sharing ?compact ?budget prog
    | Poly ->
        run_poly_par ~jobs ?rules ?field_sharing ?simplify ?compact ?budget
          ?cache prog
    | Polyrec ->
        run_polyrec_par ~jobs ?rules ?field_sharing ?compact ?budget ?cache
          prog
  else
    match mode with
    | Mono -> run_mono ?rules ?field_sharing ?compact ?budget prog
    | Poly -> run_poly ?rules ?field_sharing ?simplify ?compact ?budget prog
    | Polyrec -> run_polyrec ?rules ?field_sharing ?compact ?budget prog

(** Solver statistics accumulated by the analysis (see {!Solver.stats}). *)
let stats (env : env) = Solver.stats env.store
