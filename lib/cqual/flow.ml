(** Flow-sensitive qualifiers (the paper's Section 6, "Future Work").

    The paper's framework keeps one qualified type per location for the
    whole program, which cannot express lclint-style analyses "in which
    annotations on a given location may vary at each program point". The
    solution it sketches: {e assign each location a distinct type at every
    program point and add subtyping constraints between the different
    types — if statement [s] does not perform a strong update of [x] add
    [tau1 <= tau2]; if [s] strongly updates [x], do not add this
    constraint.}

    This module implements that sketch for mini-C, intraprocedurally, for
    scalar locals, over the taint qualifier:

    - every tracked local has a fresh qualifier variable per program
      point; ordinary statements thread the state;
    - an assignment to a local whose address is never taken is a {e
      strong update}: the new variable is constrained only by the
      right-hand side, severing the past;
    - address-taken locals get {e weak} updates (old state flows in too);
    - control-flow joins (if/else, switch, loop back edges, break and
      continue) introduce fresh merge variables with a constraint from
      each incoming state — loops need no fixpoint iteration because the
      constraint solver already computes one over the cyclic graph;
    - sources and sinks come from the Section 2.5 [$]-qualifier syntax on
      prototypes: [$tainted int read_input(void);] and
      [void run($untainted int cmd);].

    A [goto] or a label makes the enclosing function fall back to
    flow-insensitive mode (one variable per local) — the approximation is
    per-function and explicit in the result. The flow-insensitive mode is
    also available directly, as the comparison baseline. *)

module Solver = Typequal.Solver
module Elt = Typequal.Lattice.Elt
module Space = Typequal.Lattice.Space
open Cfront

let space = Space.create [ Typequal.Qualifier.tainted ]

type mode = Sensitive | Insensitive

type func_result = {
  fr_name : string;
  fr_fell_back : bool;  (** goto/label forced flow-insensitive analysis *)
}

type result = {
  errors : string list;  (** one per violated sink constraint *)
  functions : func_result list;
}

(* per-function analysis context *)
type ctx = {
  store : Solver.t;
  prog : Cprog.t;
  addr_taken : (string, unit) Hashtbl.t;
  flow : bool;  (** false: one variable per local (fallback/baseline) *)
  tainted_elt : Elt.t;
  not_tainted : Elt.t;
  mutable breaks : state list;  (** pending break states (innermost loop) *)
  mutable continues : state list;
}

(* the abstract state: taint variable of each tracked local *)
and state = (string * Solver.var) list

let fresh ctx name = Solver.fresh ~name:("flow_" ^ name) ctx.store

let lookup st x = List.assoc_opt x st

(* same binding discipline as [(x, v) :: List.remove_assoc x st] (new
   binding at the head, first old occurrence dropped) in one traversal
   without the intermediate list *)
let update st x v =
  let rec drop = function
    | [] -> []
    | (y, _) :: tl when String.equal y x -> tl
    | b :: tl -> b :: drop tl
  in
  (x, v) :: drop st

(* join two states: fresh variable per local, both branches flow in *)
let join_states ctx (a : state) (b : state) : state =
  List.map
    (fun (x, va) ->
      match lookup b x with
      | Some vb when Solver.var_id vb <> Solver.var_id va ->
          let v = fresh ctx (x ^ "_join") in
          Solver.add_leq_vv ~reason:"control-flow join" ctx.store va v;
          Solver.add_leq_vv ~reason:"control-flow join" ctx.store vb v;
          (x, v)
      | _ -> (x, va))
    a

let join_all ctx = function
  | [] -> None
  | s :: rest -> Some (List.fold_left (join_states ctx) s rest)

(* ------------------------------------------------------------------ *)
(* Declared $-qualifiers on prototypes                                 *)
(* ------------------------------------------------------------------ *)

let ret_tainted ctx fname =
  match Cprog.find_proto ctx.prog fname with
  | Some (TFun (ret, _, _)) -> Cast.has_qual "tainted" (Cast.quals_of ret)
  | _ -> (
      match Cprog.find_fun ctx.prog fname with
      | Some f -> Cast.has_qual "tainted" (Cast.quals_of f.f_ret)
      | None -> false)

let param_decls ctx fname =
  match Cprog.find_proto ctx.prog fname with
  | Some (TFun (_, ps, _)) -> List.map snd ps
  | _ -> (
      match Cprog.find_fun ctx.prog fname with
      | Some f -> List.map snd f.f_params
      | None -> [])

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* taint of an expression in a state; returns (taint var, state) — calls
   have no effect on tracked locals except through explicit assignment
   (scalars are passed by value) *)
let rec taint_of ctx (st : state) (e : Cast.expr) : Solver.var * state =
  match e with
  | EInt _ | EFloat _ | EChar _ | EString _ | ESizeofT _ | ESizeofE _ ->
      (fresh ctx "lit", st)
  | EVar x -> (
      match lookup st x with
      | Some v -> (v, st)
      | None -> (fresh ctx ("ext_" ^ x), st))
  | EUnop (_, e) | ECast (_, e) ->
      (* unary ops preserve taint; casts of scalars do too (a cast cannot
         launder a value the way it severs pointer structure) *)
      taint_of ctx st e
  | EBinop (_, a, b) ->
      let va, st = taint_of ctx st a in
      let vb, st = taint_of ctx st b in
      let r = fresh ctx "binop" in
      Solver.add_leq_vv ~reason:"left operand taints result" ctx.store va r;
      Solver.add_leq_vv ~reason:"right operand taints result" ctx.store vb r;
      (r, st)
  | ECond (g, a, b) ->
      let _, st = taint_of ctx st g in
      let va, st = taint_of ctx st a in
      let vb, st = taint_of ctx st b in
      let r = fresh ctx "cond" in
      Solver.add_leq_vv ~reason:"?: left" ctx.store va r;
      Solver.add_leq_vv ~reason:"?: right" ctx.store vb r;
      (r, st)
  | EComma (a, b) ->
      let st = effects ctx st a in
      taint_of ctx st b
  | EAssign (lhs, rhs) ->
      let v, st = assign ctx st lhs rhs in
      (v, st)
  | EAssignOp (_, lhs, rhs) ->
      (* x op= e reads x: a weak update regardless *)
      let vr, st = taint_of ctx st rhs in
      let vold, st = taint_of ctx st lhs in
      let v = fresh ctx "opassign" in
      Solver.add_leq_vv ~reason:"compound assignment" ctx.store vold v;
      Solver.add_leq_vv ~reason:"compound assignment" ctx.store vr v;
      let st = weak_or_strong_update ctx st lhs v ~strong:false in
      (v, st)
  | EIncDec (_, _, lhs) ->
      let vold, st = taint_of ctx st lhs in
      let st = weak_or_strong_update ctx st lhs vold ~strong:false in
      (vold, st)
  | ECall (EVar fname, args) ->
      let decls = param_decls ctx fname in
      let st =
        List.fold_left
          (fun st (i, arg) ->
            let va, st = taint_of ctx st arg in
            (match List.nth_opt decls i with
            | Some pt when Cast.has_qual "untainted" (Cast.quals_of pt) ->
                Solver.add_leq_vc
                  ~reason:
                    (Printf.sprintf "argument %d of sink %s must be untainted"
                       i fname)
                  ctx.store va ctx.not_tainted
            | _ -> ());
            st)
          st
          (List.mapi (fun i a -> (i, a)) args)
      in
      let r = fresh ctx ("ret_" ^ fname) in
      if ret_tainted ctx fname then
        Solver.add_leq_cv
          ~reason:(fname ^ " returns tainted data (source)")
          ctx.store ctx.tainted_elt r;
      (r, st)
  | ECall (f, args) ->
      let st = effects ctx st f in
      let st = List.fold_left (fun st a -> effects ctx st a) st args in
      (fresh ctx "indirect_call", st)
  | EAddr e | EDeref e | EIndex (e, _) | EMember (e, _) | EArrow (e, _) ->
      let st = effects ctx st e in
      (fresh ctx "mem", st)
  | EInitList es ->
      let st = List.fold_left (fun st e -> effects ctx st e) st es in
      (fresh ctx "init", st)

and effects ctx st e =
  let _, st = taint_of ctx st e in
  st

and weak_or_strong_update ctx st lhs v ~strong : state =
  match lhs with
  | EVar x when lookup st x <> None ->
      let strong =
        strong && ctx.flow && not (Hashtbl.mem ctx.addr_taken x)
      in
      if strong then update st x v
      else begin
        (* weak: the new value joins the old *)
        let old = Option.get (lookup st x) in
        if Solver.var_id old <> Solver.var_id v then
          Solver.add_leq_vv ~reason:"weak update" ctx.store v old;
        st
      end
  | _ -> st (* writes through memory are outside the scalar tracking *)

and assign ctx st lhs rhs : Solver.var * state =
  let vr, st = taint_of ctx st rhs in
  match lhs with
  | EVar x when lookup st x <> None ->
      if ctx.flow && not (Hashtbl.mem ctx.addr_taken x) then begin
        (* strong update: a brand-new variable, severed from the past *)
        let v = fresh ctx (x ^ "_upd") in
        Solver.add_leq_vv ~reason:"assignment" ctx.store vr v;
        (v, update st x v)
      end
      else begin
        let old = Option.get (lookup st x) in
        Solver.add_leq_vv ~reason:"weak assignment" ctx.store vr old;
        (old, st)
      end
  | _ ->
      let st = effects ctx st lhs in
      (vr, st)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let is_scalar = function
  | Cast.TInt _ | Cast.TFloat _ -> true
  | _ -> false

let rec stmt ctx (st : state) (s : Cast.stmt) : state =
  match s with
  | SExpr e -> effects ctx st e
  | SDecl ds ->
      List.fold_left
        (fun st (d : Cast.decl) ->
          let ty = Cprog.expand ctx.prog d.d_type in
          if is_scalar ty then begin
            let v = fresh ctx d.d_name in
            if Cast.has_qual "tainted" (Cast.quals_of ty) then
              Solver.add_leq_cv ~reason:"declared $tainted" ctx.store
                ctx.tainted_elt v;
            if Cast.has_qual "untainted" (Cast.quals_of ty) then
              Solver.add_leq_vc ~reason:"declared $untainted" ctx.store v
                ctx.not_tainted;
            let st = (d.d_name, v) :: st in
            match d.d_init with
            | Some e ->
                let vi, st = taint_of ctx st e in
                Solver.add_leq_vv ~reason:"initializer" ctx.store vi v;
                st
            | None -> st
          end
          else
            match d.d_init with Some e -> effects ctx st e | None -> st)
        st ds
  | SBlock ss -> List.fold_left (stmt ctx) st ss
  | SIf (g, s1, s2) ->
      let st = effects ctx st g in
      let st1 = stmt ctx st s1 in
      let st2 = match s2 with Some s2 -> stmt ctx st s2 | None -> st in
      if ctx.flow then join_states ctx st1 st2
      else st (* insensitive: all vars are shared anyway *)
  | SWhile (g, body) -> loop ctx st ~pre_test:(Some g) ~post_test:None body
  | SDoWhile (body, g) ->
      loop ctx st ~pre_test:None ~post_test:(Some g) body
  | SFor (init, cond, step, body) ->
      let st = match init with Some s -> stmt ctx st s | None -> st in
      let body' =
        Cast.SBlock
          (body :: (match step with Some e -> [ Cast.SExpr e ] | None -> []))
      in
      loop ctx st ~pre_test:cond ~post_test:None body'
  | SReturn (Some e) -> effects ctx st e
  | SReturn None | SNull -> st
  | SBreak ->
      ctx.breaks <- st :: ctx.breaks;
      st
  | SContinue ->
      ctx.continues <- st :: ctx.continues;
      st
  | SSwitch (g, body) ->
      let st = effects ctx st g in
      (* all cases start from the switch head; the result joins the body's
         fall-out with the pending breaks and the head (default absent) *)
      let saved = ctx.breaks in
      ctx.breaks <- [];
      let out = stmt ctx st body in
      let exits = (out :: ctx.breaks) @ [ st ] in
      ctx.breaks <- saved;
      if ctx.flow then Option.get (join_all ctx exits) else st
  | SCase (_, s) | SDefault s | SLabel (_, s) -> stmt ctx st s
  | SGoto _ -> st (* only reached in fallback mode; see [uses_goto] *)

(* A structured loop: head variables receive the entry state and the back
   edge (body exit and continues); the loop exit joins the head (zero
   iterations) with pending breaks. *)
and loop ctx st ~pre_test ~post_test body : state =
  if not ctx.flow then begin
    let st = match pre_test with Some g -> effects ctx st g | None -> st in
    let st = stmt ctx st body in
    match post_test with Some g -> effects ctx st g | None -> st
  end
  else begin
    (* fresh head variable per local *)
    let head =
      List.map
        (fun (x, v) ->
          let h = fresh ctx (x ^ "_loop") in
          Solver.add_leq_vv ~reason:"loop entry" ctx.store v h;
          (x, h))
        st
    in
    let saved_b = ctx.breaks and saved_c = ctx.continues in
    ctx.breaks <- [];
    ctx.continues <- [];
    let st0 =
      match pre_test with Some g -> effects ctx head g | None -> head
    in
    let body_exit = stmt ctx st0 body in
    let body_exit =
      match post_test with
      | Some g -> effects ctx body_exit g
      | None -> body_exit
    in
    (* back edges: body exit and every continue flow into the head *)
    let back st' =
      List.iter
        (fun (x, h) ->
          match lookup st' x with
          | Some v when Solver.var_id v <> Solver.var_id h ->
              Solver.add_leq_vv ~reason:"loop back edge" ctx.store v h
          | _ -> ())
        head
    in
    back body_exit;
    List.iter back ctx.continues;
    (* exit: the head state (the test can fail on any iteration) joined
       with the breaks *)
    let exits = head :: ctx.breaks in
    ctx.breaks <- saved_b;
    ctx.continues <- saved_c;
    Option.get (join_all ctx exits)
  end

(* ------------------------------------------------------------------ *)
(* Functions and programs                                              *)
(* ------------------------------------------------------------------ *)

let rec stmt_uses_goto = function
  | Cast.SGoto _ | Cast.SLabel _ -> true
  | SBlock ss -> List.exists stmt_uses_goto ss
  | SIf (_, a, b) ->
      stmt_uses_goto a || Option.fold ~none:false ~some:stmt_uses_goto b
  | SWhile (_, s) | SDoWhile (s, _) | SSwitch (_, s) | SCase (_, s)
  | SDefault s ->
      stmt_uses_goto s
  | SFor (i, _, _, s) ->
      Option.fold ~none:false ~some:stmt_uses_goto i || stmt_uses_goto s
  | SExpr _ | SDecl _ | SReturn _ | SBreak | SContinue | SNull -> false

let addr_taken_locals (f : Cast.fundef) : (string, unit) Hashtbl.t =
  let tbl = Hashtbl.create 8 in
  let rec expr = function
    | Cast.EAddr (EVar x) -> Hashtbl.replace tbl x ()
    | EAddr e | EUnop (_, e) | ECast (_, e) | ESizeofE e | EDeref e
    | EIncDec (_, _, e)
    | EMember (e, _)
    | EArrow (e, _) ->
        expr e
    | EBinop (_, a, b)
    | EAssign (a, b)
    | EAssignOp (_, a, b)
    | EComma (a, b)
    | EIndex (a, b) ->
        expr a;
        expr b
    | ECond (a, b, c) ->
        expr a;
        expr b;
        expr c
    | ECall (f, args) ->
        expr f;
        List.iter expr args
    | EInitList es -> List.iter expr es
    | EInt _ | EFloat _ | EChar _ | EString _ | EVar _ | ESizeofT _ -> ()
  in
  List.iter
    (fun s -> Cast.fold_stmt_exprs (fun () e -> expr e) () s)
    f.f_body;
  tbl

let analyze_function ~tainted_elt ~not_tainted store prog mode
    (f : Cast.fundef) : func_result =
  let uses_goto = List.exists stmt_uses_goto f.f_body in
  let flow = mode = Sensitive && not uses_goto in
  let ctx =
    {
      store;
      prog;
      addr_taken = addr_taken_locals f;
      flow;
      tainted_elt;
      not_tainted;
      breaks = [];
      continues = [];
    }
  in
  (* parameters are tracked locals seeded from their declarations *)
  let st0 =
    List.filter_map
      (fun (n, pt) ->
        let ty = Cprog.expand prog pt in
        if is_scalar ty then begin
          let v = fresh ctx n in
          if Cast.has_qual "tainted" (Cast.quals_of ty) then
            Solver.add_leq_cv ~reason:"parameter declared $tainted" store
              ctx.tainted_elt v;
          if Cast.has_qual "untainted" (Cast.quals_of ty) then
            Solver.add_leq_vc ~reason:"parameter declared $untainted" store v
              ctx.not_tainted;
          Some (n, v)
        end
        else None)
      f.f_params
  in
  ignore (List.fold_left (stmt ctx) st0 f.f_body);
  { fr_name = f.f_name; fr_fell_back = mode = Sensitive && uses_goto }

(** Analyze a whole program's defined functions. *)
let analyze ?(mode = Sensitive) (prog : Cprog.t) : result =
  let store = Solver.create space in
  (* the source/sink lattice elements are program-invariant: build them
     once, not per function *)
  let tainted_elt = Elt.of_names_up space [ "tainted" ]
  and not_tainted = Elt.not_name space "tainted" in
  let functions =
    List.map
      (analyze_function ~tainted_elt ~not_tainted store prog mode)
      (Cprog.functions prog)
  in
  let errors =
    match Solver.solve store with
    | Ok () -> []
    | Error es -> List.map Solver.error_message es
  in
  { errors; functions }

let analyze_source ?mode src =
  match Cparse.parse_program_result src with
  | Error m -> Error m
  | Ok p -> Ok (analyze ?mode (Cprog.build p))
