(** The batch driver, now a thin client of {!Session}: every type and
    entry point below is re-exported from the session layer, where the
    pipeline stages actually live. Existing callers (the CLIs, the
    bench harness, the tests) keep compiling unchanged; new code should
    use {!Session} directly — a persistent {!Session.t} additionally
    offers warm re-analysis and position-level queries. *)

type timing = Session.timing = { t_compile : float; t_analysis : float }

type frontend = Session.frontend = Per_unit | Concat

type frontend_stats = Session.frontend_stats = {
  fs_units : int;
  fs_reparsed : int;
  fs_lex_s : float;
  fs_parse_s : float;
  fs_build_s : float;
  fs_link_s : float;
}

type run = Session.run = {
  results : Report.results;
  timing : timing;
  lines : int;
  n_functions : int;
  n_constraints : int;
  solver_stats : Typequal.Solver.stats;
  diagnostics : Cfront.Diag.t list;
  fdg_scc_count : int;
  fdg_largest_scc : int;
  wavefront_width : int;
  par : Analysis.par_stats option;
  frontend : frontend_stats option;
}

exception Error = Session.Error

let compile = Session.compile
let oversubscription = Session.oversubscription
let oversubscription_notice = Session.oversubscription_notice

module Cache = Typequal.Cache

type cache_spec = Session.cache_spec = {
  cs_cache : Cache.t;
  cs_opts_id : string;
}

type span = Session.span

let space_fingerprint = Session.space_fingerprint
let open_cache = Session.open_cache
let unit_digest = Session.unit_digest
let mode_name = Session.mode_name
let analyze = Session.analyze

type compiled = Session.compiled = {
  co_prog : Cfront.Cprog.t;
  co_diags : Cfront.Diag.t list;
  co_degraded : (string * string) list;
  co_lines : int;
  co_t_compile : float;
  co_frontend : frontend_stats option;
}

let finish = Session.finish
let run_concat = Session.run_concat
let run_units = Session.run_units
let run_source = Session.run_source
let concat_sources_spans = Session.concat_sources_spans
let concat_sources = Session.concat_sources
let run_sources = Session.run_sources
let compile_sources = Session.compile_sources

type row = Session.row = {
  name : string;
  r_lines : int;
  compile_s : float;
  mono_s : float;
  poly_s : float;
  declared : int;
  mono : int;
  poly : int;
  total : int;
  mono_results : Report.results;
  poly_results : Report.results;
}

let table2_row = Session.table2_row
