(** End-to-end const inference: parse, analyze (mono and/or poly), measure.
    This is the pipeline Table 2 and Figure 6 are produced from.

    Multi-file projects run through the {e per-unit frontend} by default:
    each translation unit is lexed and parsed independently (in parallel
    under [--jobs]), then a deterministic serial link step merges the
    unit programs and threads the cross-unit parser environment. The
    pre-PR-9 "concatenate, then parse once" pipeline is kept behind
    {!Concat} as the parity oracle — both frontends produce
    byte-identical reports, diagnostics, and solver counters. See
    DESIGN.md "Per-unit frontend". *)

type timing = {
  t_compile : float;  (** parse + table construction, seconds *)
  t_analysis : float;  (** constraint generation + solving *)
}

(** Which frontend assembles the whole program from translation units. *)
type frontend =
  | Per_unit  (** per-unit parse + link (default) *)
  | Concat  (** legacy megastring concatenation: the parity oracle *)

(** Frontend phase breakdown. Under [--jobs] > 1 the lex/parse/build
    times are summed across worker domains (like the solver's per-phase
    timers), so they can exceed the compile wall clock. *)
type frontend_stats = {
  fs_units : int;
  fs_reparsed : int;
      (** units whose speculative parse was discarded and redone with
          the linked environment (typedef/enum-name overlap, anonymous
          tag numbering, or a diagnostic budget spill) *)
  fs_lex_s : float;
  fs_parse_s : float;
  fs_build_s : float;
  fs_link_s : float;
}

type run = {
  results : Report.results;
  timing : timing;
  lines : int;
  n_functions : int;
  n_constraints : int;  (** number of qualifier variables, a proxy for size *)
  solver_stats : Typequal.Solver.stats;
      (** constraint-store counters (unifications, dedup, cycle collapses,
          worklist pops) accumulated over the whole run *)
  diagnostics : Cfront.Diag.t list;
      (** lexer/parser diagnostics recovered from, in source order; empty
          for a clean parse. Multi-unit runs carry unit-local positions
          ([Diag.d_unit] names the file). *)
  fdg_scc_count : int;  (** SCCs in the function dependence graph *)
  fdg_largest_scc : int;  (** size of the largest (mutual-recursion) SCC *)
  wavefront_width : int;
      (** maximum SCCs simultaneously ready under wavefront scheduling: an
          upper bound on useful analysis parallelism *)
  par : Analysis.par_stats option;
      (** parallel-engine phase breakdown; [None] for serial runs *)
  frontend : frontend_stats option;
      (** per-unit frontend phase breakdown; [None] for the concat
          oracle, single-source runs, and whole-run cache hits *)
}

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

exception Error of string

let compile src =
  match Cfront.Cparse.parse_program_result src with
  | Error m -> raise (Error m)
  | Ok p -> Cfront.Cprog.build p

(** [Some cores] when [jobs] asks for more worker domains than the host
    can schedule — the caller should warn: oversubscribed domains contend
    instead of parallelizing (BENCH_hotpath.json measured jobs-4 on one
    core at ~7x slower than serial). *)
let oversubscription ~jobs =
  let cores = Typequal.Pool.cores_available () in
  if jobs > cores then Some cores else None

(* ------------------------------------------------------------------ *)
(* Persistent cache (three tiers; see DESIGN.md)                       *)
(* ------------------------------------------------------------------ *)

module Cache = Typequal.Cache

(** an open cache plus the caller's identity string for everything the
    fingerprints below cannot see — the rule set beyond its qualifier
    space (e.g. which CLI analysis flavour and lattice file built it) *)
type cache_spec = { cs_cache : Cache.t; cs_opts_id : string }

(* The context digest stamped into every envelope: qualifier-space dump
   (the full lattice structure), compiler version (Marshal payloads are
   not portable across it), and a payload-format revision to bump whenever
   any marshaled type in this file or the analysis changes shape. *)
let space_fingerprint (sp : Typequal.Lattice.Space.t) : Digest.t =
  Digest.string
    (Fmt.str "%a|%s|payload-fmt-2" Typequal.Lattice.Space.pp_dump sp
       Sys.ocaml_version)

(** Open a cache directory for runs under this rule set (default: const
    inference). Returns [None] — after [warn] — when the path is unusable;
    run without a cache then. Never raises. *)
let open_cache ?warn ?(rules = Analysis.const_rules) ~opts_id dir :
    cache_spec option =
  match
    Cache.open_dir ?warn ~ctx:(space_fingerprint rules.Analysis.qr_space) dir
  with
  | Some c -> Some { cs_cache = c; cs_opts_id = opts_id }
  | None -> None

(* Unit identity: the per-file content hash that keys invalidation. The
   name participates, so renaming a file on disk invalidates exactly the
   units (and run) that file contributes to. *)
let unit_digest name content = Digest.string (name ^ "\000" ^ content)

(* a unit's span in the concatenated program: first line, last line, unit
   name, content digest *)
type span = int * int * string * string

let mode_name = function
  | Analysis.Mono -> "mono"
  | Analysis.Poly -> "poly"
  | Analysis.Polyrec -> "polyrec"

(* Everything that parameterizes inference besides the program text and
   the qualifier space (already in the envelope context). [jobs] is
   deliberately absent: results are jobs-invariant. So is the frontend:
   per-unit and concat runs are byte-identical, hence cache-compatible. *)
let opt_fingerprint ~(cs : cache_spec) ~mode ~field_sharing ~simplify
    ~compact ~max_errors : string =
  let ob = function Some b -> string_of_bool b | None -> "-" in
  Digest.string
    (String.concat "|"
       [
         cs.cs_opts_id;
         mode_name mode;
         ob field_sharing;
         ob simplify;
         ob compact;
         (match max_errors with Some n -> string_of_int n | None -> "-");
       ])

(* The cross-unit declaration context a function's analysis depends on
   beyond its own unit: globals, prototypes, typedefs, struct/union
   layouts, enums — everything of the program except function bodies
   (covered per-unit) and the FDG dependency set (covered by the
   envelopes' dependency digests). Line numbers and initializers are
   excluded, so touching one unit does not invalidate the others — and
   the digest is frontend-invariant (unit-local vs concatenated line
   numbers never enter it). *)
let env_fingerprint (prog : Cfront.Cprog.t) : string =
  let b = Buffer.create 4096 in
  let put x = Buffer.add_string b (Marshal.to_string x []) in
  List.iter
    (fun (g : Cfront.Cast.global) ->
      match g with
      | Cfront.Cast.GFun _ -> ()
      | Cfront.Cast.GVar d ->
          put ("v", d.Cfront.Cast.d_name, d.Cfront.Cast.d_type)
      | Cfront.Cast.GProto (n, t, _) -> put ("p", n, t)
      | Cfront.Cast.GTypedef (n, t, _) -> put ("t", n, t)
      | Cfront.Cast.GComp (tag, u, fields, _) -> put ("c", (tag, u, fields))
      | Cfront.Cast.GEnum (tag, items, _) -> put ("e", (tag, items)))
    prog.Cfront.Cprog.order;
  Digest.string (Buffer.contents b)

(* the run record's cacheable core: no wall-clock, no parallel-phase
   breakdown, solver counters sanitized of nondeterministic fields *)
type cached_run = {
  cr_results : Report.results;
  cr_lines : int;
  cr_n_functions : int;
  cr_n_constraints : int;
  cr_stats : Typequal.Solver.stats;
  cr_diags : Cfront.Diag.t list;
  cr_scc_count : int;
  cr_largest_scc : int;
  cr_wavefront : int;
}

(* load kind/key and unmarshal as ['a]; any decode failure rejects the
   entry (the envelope verified, so the payload was well-formed bytes that
   mean nothing to us — e.g. written by a differently-shaped build) *)
let load_marshal (type a) (c : Cache.t) ~kind ~key ~deps : a option =
  match Cache.load c ~kind ~key ~deps with
  | None -> None
  | Some payload -> (
      match (Marshal.from_string payload 0 : a) with
      | v -> Some v
      | exception ((Out_of_memory | Sys.Break) as e) -> raise e
      | exception _ ->
          Cache.reject_undecodable c ~kind ~key;
          None)

let analyze ?rules ?field_sharing ?simplify ?compact ?budget ?jobs ?cache
    mode prog =
  let (env, ifaces), t =
    time (fun () ->
        Analysis.run ?rules ?field_sharing ?simplify ?compact ?budget ?cache
          ?jobs mode prog)
  in
  let st = env.Analysis.store in
  let solve0 = (Typequal.Solver.stats st).solve_s in
  let results, t2 = time (fun () -> Report.measure env ifaces) in
  (* the report's own cost, minus the final solve it triggers (that time
     is already accounted to solve_s) *)
  let solve_d = (Typequal.Solver.stats st).solve_s -. solve0 in
  Typequal.Solver.note_phase st Typequal.Solver.Report
    (Float.max 0. (t2 -. solve_d));
  (env, results, t +. t2)

(* ------------------------------------------------------------------ *)
(* Shared back half of both frontends                                  *)
(* ------------------------------------------------------------------ *)

(* the frontend's product, whichever frontend built it *)
type compiled = {
  co_prog : Cfront.Cprog.t;
  co_diags : Cfront.Diag.t list;
  co_degraded : (string * string) list;
  co_lines : int;
  co_t_compile : float;
  co_frontend : frontend_stats option;
}

let finish ?rules ?field_sharing ?simplify ?compact ?budget ?jobs ?cache
    mode (co : compiled) : run =
  let env, results, t_analysis =
    analyze ?rules ?field_sharing ?simplify ?compact ?budget ?jobs ?cache
      mode co.co_prog
  in
  let fdg = Fdg.build co.co_prog in
  let results =
    {
      results with
      (* tail-recursive construction: a pathological input can demote
         thousands of functions, and outcome lists are program-sized *)
      Report.outcomes =
        List.rev_append
          (List.rev results.Report.outcomes)
          (List.rev
             (List.rev_map
                (fun (name, reason) -> (name, Analysis.Degraded reason))
                co.co_degraded));
    }
  in
  {
    results;
    timing = { t_compile = co.co_t_compile; t_analysis };
    lines = co.co_lines;
    n_functions = List.length (Cfront.Cprog.functions co.co_prog);
    n_constraints = Typequal.Solver.num_vars env.Analysis.store;
    solver_stats = Analysis.stats env;
    diagnostics = co.co_diags;
    fdg_scc_count = Fdg.scc_count fdg;
    fdg_largest_scc = Fdg.largest_scc fdg;
    wavefront_width = Fdg.wavefront_width fdg;
    par = env.Analysis.par;
    frontend = co.co_frontend;
  }

let run_of_cached (cr : cached_run) ~t_lookup : run =
  {
    results = cr.cr_results;
    timing = { t_compile = 0.; t_analysis = t_lookup };
    lines = cr.cr_lines;
    n_functions = cr.cr_n_functions;
    n_constraints = cr.cr_n_constraints;
    solver_stats = cr.cr_stats;
    diagnostics = cr.cr_diags;
    fdg_scc_count = cr.cr_scc_count;
    fdg_largest_scc = cr.cr_largest_scc;
    wavefront_width = cr.cr_wavefront;
    par = None;
    frontend = None;
  }

let cached_of_run (r : run) : cached_run =
  {
    cr_results = r.results;
    cr_lines = r.lines;
    cr_n_functions = r.n_functions;
    cr_n_constraints = r.n_constraints;
    cr_stats = Analysis.sanitize_stats r.solver_stats;
    cr_diags = r.diagnostics;
    cr_scc_count = r.fdg_scc_count;
    cr_largest_scc = r.fdg_largest_scc;
    cr_wavefront = r.wavefront_width;
  }

(* the whole-run cache key over the units' content digests: shared by
   both frontends, whose runs are byte-identical *)
let run_key ~optfp (digests : string list) =
  Digest.string (optfp ^ String.concat "" digests)

(* ------------------------------------------------------------------ *)
(* Concat frontend (the parity oracle)                                 *)
(* ------------------------------------------------------------------ *)

(* Rebind a concatenated-program diagnostic to its unit: the unit whose
   line range contains the span start, with lines shifted to be
   unit-local. Diagnostics that land in no unit (impossible in practice:
   separator lines hold only a comment) pass through untouched. *)
let remap_concat_diag (spans : span list) (d : Cfront.Diag.t) :
    Cfront.Diag.t =
  let l = d.Cfront.Diag.d_span.Cfront.Diag.sl in
  match
    List.find_opt (fun (s, e, _, _) -> l >= s && l <= e) spans
  with
  | Some (s, _, name, _) ->
      let sp = d.Cfront.Diag.d_span in
      Cfront.Diag.with_unit
        ~span:
          {
            sp with
            Cfront.Diag.sl = sp.Cfront.Diag.sl - s + 1;
            el = sp.Cfront.Diag.el - s + 1;
          }
        name d
  | None -> d

(* Normalize the concat parse's diagnostic order to the per-unit order:
   unit-major, lexical diagnostics before parse diagnostics within a
   unit. (The megastring parse reports every unit's lexical errors
   before any unit's parse errors; the per-unit frontend finishes each
   unit before starting the next.) The sort is stable, so within one
   (unit, phase) bucket the source order is preserved. *)
let normalize_concat_diags (spans : span list) (diags : Cfront.Diag.t list) :
    Cfront.Diag.t list =
  let unit_index =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun i (_, _, name, _) -> Hashtbl.replace tbl name i) spans;
    fun d ->
      match d.Cfront.Diag.d_unit with
      | Some u -> ( match Hashtbl.find_opt tbl u with Some i -> i | None -> 0)
      | None -> 0
  in
  let phase d =
    (* E01xx lexical, anything else (E02xx parse, E0299 note) after *)
    if String.length d.Cfront.Diag.d_code >= 3
       && String.sub d.Cfront.Diag.d_code 0 3 = "E01"
    then 0
    else 1
  in
  List.stable_sort
    (fun a b -> compare (unit_index a, phase a) (unit_index b, phase b))
    diags

(* multi-unit parity with the per-unit frontend: report unit-local
   positions and per-unit diagnostic order *)
let localize_concat ~(spans : span list) (pr : Cfront.Cparse.presult) =
  match spans with
  | [] | [ _ ] -> pr
  | _ ->
      {
        pr with
        Cfront.Cparse.pr_diags =
          normalize_concat_diags spans
            (List.map (remap_concat_diag spans) pr.Cfront.Cparse.pr_diags);
      }

(* One mode over an already-concatenated program [src] whose units are
   described by [spans]. The cold path is the pre-cache pipeline verbatim;
   the cached path layers three tiers over it — whole-run, parsed AST, and
   per-SCC schemes (inside {!Analysis.run}) — each of which degrades to
   the tier below on any miss or rejection, so every fault converges to
   the cold result. *)
let run_concat ?(mode = Analysis.Mono) ?rules ?field_sharing ?simplify
    ?compact ?budget ?jobs ?max_errors ?cache ?lines ~(spans : span list)
    (src : string) : run =
  let lines = match lines with Some n -> n | None -> Cfront.Cprog.count_lines src in
  let localize = localize_concat ~spans in
  let finish ?cache co =
    finish ?rules ?field_sharing ?simplify ?compact ?budget ?jobs ?cache mode
      co
  in
  let compiled pr prog t_compile =
    {
      co_prog = prog;
      co_diags = pr.Cfront.Cparse.pr_diags;
      co_degraded = pr.Cfront.Cparse.pr_degraded;
      co_lines = lines;
      co_t_compile = t_compile;
      co_frontend = None;
    }
  in
  let cold_run ?cache () =
    let (pr, prog), t_compile =
      time (fun () ->
          let pr =
            localize (Cfront.Cparse.parse_program_partial ?max_errors src)
          in
          (pr, Cfront.Cprog.build pr.Cfront.Cparse.pr_prog))
    in
    finish ?cache (compiled pr prog t_compile)
  in
  (* budgeted runs are load-dependent, not reproducible artifacts: never
     cached, never served from cache *)
  let cache = match budget with Some _ -> None | None -> cache in
  match cache with
  | None -> cold_run ()
  | Some cs -> (
      let t0 = Unix.gettimeofday () in
      let optfp =
        opt_fingerprint ~cs ~mode ~field_sharing ~simplify ~compact
          ~max_errors
      in
      let run_key = run_key ~optfp (List.map (fun (_, _, _, d) -> d) spans) in
      match
        (load_marshal cs.cs_cache ~kind:"run" ~key:run_key ~deps:[]
          : cached_run option)
      with
      | Some cr -> run_of_cached cr ~t_lookup:(Unix.gettimeofday () -. t0)
      | None ->
          let ast_key =
            Digest.string
              (Printf.sprintf "ast\000%s\000%s"
                 (match max_errors with
                 | Some n -> string_of_int n
                 | None -> "-")
                 src)
          in
          let (pr, prog), t_compile =
            time (fun () ->
                let pr =
                  match
                    (load_marshal cs.cs_cache ~kind:"ast" ~key:ast_key
                       ~deps:[]
                      : Cfront.Cparse.presult option)
                  with
                  | Some pr -> pr
                  | None ->
                      let pr =
                        localize
                          (Cfront.Cparse.parse_program_partial ?max_errors
                             src)
                      in
                      Cache.store cs.cs_cache ~kind:"ast" ~key:ast_key
                        ~deps:[]
                        (Marshal.to_string pr []);
                      pr
                in
                (pr, Cfront.Cprog.build pr.Cfront.Cparse.pr_prog))
          in
          let unit_of =
            let tbl = Hashtbl.create 64 in
            List.iter
              (fun (f : Cfront.Cast.fundef) ->
                List.iter
                  (fun (s, e, _, d) ->
                    if
                      f.Cfront.Cast.f_line >= s
                      && f.Cfront.Cast.f_line <= e
                      && not (Hashtbl.mem tbl f.Cfront.Cast.f_name)
                    then Hashtbl.replace tbl f.Cfront.Cast.f_name d)
                  spans)
              (Cfront.Cprog.functions prog);
            fun name -> Hashtbl.find_opt tbl name
          in
          let actx =
            {
              Analysis.cc_cache = cs.cs_cache;
              cc_key_prefix = env_fingerprint prog ^ optfp;
              cc_unit_of = unit_of;
            }
          in
          let run =
            finish ~cache:actx (compiled pr prog t_compile)
          in
          Cache.store cs.cs_cache ~kind:"run" ~key:run_key ~deps:[]
            (Marshal.to_string (cached_of_run run) []);
          run)

(* ------------------------------------------------------------------ *)
(* Per-unit frontend                                                   *)
(* ------------------------------------------------------------------ *)

(* the per-unit AST cache payload: the speculative (environment-free)
   parse of one unit, reusable under any link order. Reparses triggered
   by the link environment are never cached — they depend on it. *)
type cached_unit = { cu_res : Cfront.Cparse.uresult }

let unit_key ~max_errors ~digest =
  Digest.string (Printf.sprintf "unit\000%d\000%s" max_errors digest)

(* one unit's frontend product, pre-link *)
type unit_fe = {
  uf_name : string;
  uf_src : string;
  uf_digest : string;
  uf_res : Cfront.Cparse.uresult;
  uf_prog : Cfront.Cprog.t;  (* build of the speculative parse *)
}

(** The per-unit frontend alone: speculative parallel lex+parse+build per
    translation unit, then a deterministic serial link that replays the
    cross-unit parser environment in file order and re-parses the rare
    unit whose speculative result it could have influenced. Returns the
    compiled program plus the function-name -> defining-unit-digest table
    the per-SCC cache tier keys on. *)
let compile_units ?cache ~jobs ~me (files : (string * string) list) :
    compiled * (string, string) Hashtbl.t =
  let lines =
    List.fold_left
      (fun acc (_, src) -> acc + Cfront.Cprog.count_lines src)
      0 files
  in
  let multi = match files with [] | [ _ ] -> false | _ -> true in
  let t0 = Unix.gettimeofday () in
  let files_a = Array.of_list files in
  let digests_a =
    Array.map (fun (name, src) -> unit_digest name src) files_a
  in
  let n = Array.length files_a in
      (* --- per-unit AST cache probes (serial: cache handles are not
         domain-safe) --- *)
      let probed : Cfront.Cparse.uresult option array = Array.make n None in
      (match cache with
      | None -> ()
      | Some cs ->
          Array.iteri
            (fun i _ ->
              match
                (load_marshal cs.cs_cache ~kind:"unit"
                   ~key:(unit_key ~max_errors:me ~digest:digests_a.(i))
                   ~deps:[]
                  : cached_unit option)
              with
              | Some cu -> probed.(i) <- Some cu.cu_res
              | None -> ())
            files_a);
      (* --- speculative lex+parse+build, one task per unit --- *)
      let slots : unit_fe option array = Array.make n None in
      let tmu = Mutex.create () in
      let lex_s = ref 0. and parse_s = ref 0. and build_s = ref 0. in
      let add cell dt =
        Mutex.lock tmu;
        cell := !cell +. dt;
        Mutex.unlock tmu
      in
      Typequal.Pool.with_pool ~jobs (fun pool ->
          Array.iteri
            (fun i (name, src) ->
              Typequal.Pool.submit pool (fun () ->
                  let res =
                    match probed.(i) with
                    | Some res -> res
                    | None ->
                        let (tb, lex_diags), t_lex =
                          time (fun () ->
                              Cfront.Clexer.tokenize_buf ~max_errors:me src)
                        in
                        add lex_s t_lex;
                        let res, t_parse =
                          time (fun () ->
                              Cfront.Cparse.parse_unit ~max_errors:me tb
                                ~lex_diags)
                        in
                        add parse_s t_parse;
                        res
                  in
                  let prog, t_build =
                    time (fun () ->
                        Cfront.Cprog.build
                          res.Cfront.Cparse.ur_pr.Cfront.Cparse.pr_prog)
                  in
                  add build_s t_build;
                  slots.(i) <-
                    Some
                      {
                        uf_name = name;
                        uf_src = src;
                        uf_digest = digests_a.(i);
                        uf_res = res;
                        uf_prog = prog;
                      }))
            files_a;
          Typequal.Pool.wait pool);
      (* --- persist fresh speculative parses --- *)
      (match cache with
      | None -> ()
      | Some cs ->
          Array.iteri
            (fun i uf ->
              match (probed.(i), uf) with
              | None, Some uf ->
                  Cache.store cs.cs_cache ~kind:"unit"
                    ~key:(unit_key ~max_errors:me ~digest:digests_a.(i))
                    ~deps:[]
                    (Marshal.to_string { cu_res = uf.uf_res } [])
              | _ -> ())
            slots);
      (* --- serial link: validate each speculative parse against the
         accumulated environment, re-parse when it could have been
         influenced, thread the diagnostic budget, merge in file order --- *)
      let link_t0 = Unix.gettimeofday () in
      let env_typedefs : (string, unit) Hashtbl.t = Hashtbl.create 64 in
      let env_enums : (string, int) Hashtbl.t = Hashtbl.create 64 in
      let env_anon = ref 0 in
      let consumed = ref 0 in
      let capped = ref false in
      let reparsed = ref 0 in
      let progs = ref [] in
      let diags = ref [] in
      let degraded = ref [] in
      let unit_of_tbl : (string, string) Hashtbl.t = Hashtbl.create 64 in
      Array.iter
        (fun uf ->
          let uf = Option.get uf in
          if not !capped then
            if !consumed >= me then begin
              (* the budget ran out exactly at a unit boundary: a
                 whole-program parse would give up at this unit's first
                 token *)
              capped := true;
              let d =
                Cfront.Diag.note ~code:"E0299"
                  uf.uf_res.Cfront.Cparse.ur_first_span
                  (Printf.sprintf
                     "too many errors (%d); giving up on the rest of the \
                      file"
                     me)
              in
              let d =
                if multi then Cfront.Diag.with_unit uf.uf_name d else d
              in
              diags := d :: !diags
            end
            else begin
              let spec = uf.uf_res in
              let k =
                List.length spec.Cfront.Cparse.ur_pr.Cfront.Cparse.pr_diags
              in
              let mention_hit =
                (Hashtbl.length env_typedefs > 0
                || Hashtbl.length env_enums > 0)
                && List.exists
                     (fun id ->
                       Hashtbl.mem env_typedefs id
                       || Hashtbl.mem env_enums id)
                     spec.Cfront.Cparse.ur_idents
              in
              let anon_hit =
                !env_anon > 0 && spec.Cfront.Cparse.ur_anon > 0
              in
              let budget_hit = !consumed > 0 && k > 0 && !consumed + k >= me in
              let res, prog =
                if not (mention_hit || anon_hit || budget_hit) then
                  (spec, uf.uf_prog)
                else begin
                  incr reparsed;
                  let seed =
                    {
                      Cfront.Cparse.us_typedefs =
                        Hashtbl.fold
                          (fun k () acc -> k :: acc)
                          env_typedefs [];
                      us_enums =
                        Hashtbl.fold
                          (fun k v acc -> (k, v) :: acc)
                          env_enums [];
                      us_anon = !env_anon;
                      us_count_base = !consumed;
                    }
                  in
                  let tb, lex_diags =
                    Cfront.Clexer.tokenize_buf ~max_errors:(me - !consumed)
                      uf.uf_src
                  in
                  let res =
                    Cfront.Cparse.parse_unit ~max_errors:me ~seed tb
                      ~lex_diags
                  in
                  ( res,
                    Cfront.Cprog.build
                      res.Cfront.Cparse.ur_pr.Cfront.Cparse.pr_prog )
                end
              in
              let pr = res.Cfront.Cparse.ur_pr in
              consumed := !consumed + List.length pr.Cfront.Cparse.pr_diags;
              if res.Cfront.Cparse.ur_capped then capped := true;
              List.iter
                (fun name -> Hashtbl.replace env_typedefs name ())
                res.Cfront.Cparse.ur_typedefs;
              List.iter
                (fun (name, v) -> Hashtbl.replace env_enums name v)
                res.Cfront.Cparse.ur_enums;
              env_anon := !env_anon + res.Cfront.Cparse.ur_anon;
              progs := prog :: !progs;
              List.iter
                (fun d ->
                  let d =
                    if multi then Cfront.Diag.with_unit uf.uf_name d else d
                  in
                  diags := d :: !diags)
                pr.Cfront.Cparse.pr_diags;
              List.iter
                (fun dg -> degraded := dg :: !degraded)
                pr.Cfront.Cparse.pr_degraded;
              List.iter
                (fun (f : Cfront.Cast.fundef) ->
                  if not (Hashtbl.mem unit_of_tbl f.Cfront.Cast.f_name) then
                    Hashtbl.replace unit_of_tbl f.Cfront.Cast.f_name
                      uf.uf_digest)
                (Cfront.Cprog.functions prog)
            end)
        slots;
      let prog = Cfront.Cprog.merge (List.rev !progs) in
      let link_s = Unix.gettimeofday () -. link_t0 in
      let t_compile = Unix.gettimeofday () -. t0 in
      let fe =
        {
          fs_units = n;
          fs_reparsed = !reparsed;
          fs_lex_s = !lex_s;
          fs_parse_s = !parse_s;
          fs_build_s = !build_s;
          fs_link_s = link_s;
        }
      in
      let co =
        {
          co_prog = prog;
          co_diags = List.rev !diags;
          co_degraded = List.rev !degraded;
          co_lines = lines;
          co_t_compile = t_compile;
          co_frontend = Some fe;
        }
      in
      (co, unit_of_tbl)

(** One mode over the per-unit pipeline, with the whole-run and per-unit
    AST cache tiers layered over {!compile_units}. *)
let run_units ?(mode = Analysis.Mono) ?rules ?field_sharing ?simplify
    ?compact ?budget ?(jobs = 1) ?max_errors ?cache
    (files : (string * string) list) : run =
  let me = Option.value max_errors ~default:20 in
  (* budgeted runs are never cached (see run_concat) *)
  let cache = match budget with Some _ -> None | None -> cache in
  let t0 = Unix.gettimeofday () in
  let digests = List.map (fun (n, s) -> unit_digest n s) files in
  let optfp =
    match cache with
    | None -> ""
    | Some cs ->
        opt_fingerprint ~cs ~mode ~field_sharing ~simplify ~compact
          ~max_errors
  in
  let rkey = run_key ~optfp digests in
  let run_hit =
    match cache with
    | None -> None
    | Some cs ->
        (load_marshal cs.cs_cache ~kind:"run" ~key:rkey ~deps:[]
          : cached_run option)
  in
  match run_hit with
  | Some cr -> run_of_cached cr ~t_lookup:(Unix.gettimeofday () -. t0)
  | None ->
      let co, unit_of_tbl = compile_units ?cache ~jobs ~me files in
      let actx =
        match cache with
        | None -> None
        | Some cs ->
            Some
              {
                Analysis.cc_cache = cs.cs_cache;
                cc_key_prefix = env_fingerprint co.co_prog ^ optfp;
                cc_unit_of =
                  (fun name -> Hashtbl.find_opt unit_of_tbl name);
              }
      in
      let run =
        finish ?rules ?field_sharing ?simplify ?compact ?budget ~jobs
          ?cache:actx mode co
      in
      (match cache with
      | None -> ()
      | Some cs ->
          Cache.store cs.cs_cache ~kind:"run" ~key:rkey ~deps:[]
            (Marshal.to_string (cached_of_run run) []));
      run

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Run one mode on C source, recovering from lexer/parser errors: globals
    that fail to parse are dropped (with a diagnostic), function bodies
    that fail are demoted to prototypes and reported as degraded outcomes.
    Raises only for faults that leave nothing to analyze (e.g.
    [Cfront.Cprog.Frontend_error] from table construction). *)
let run_source ?mode ?rules ?field_sharing ?simplify ?compact ?budget ?jobs
    ?max_errors ?cache ?(unit = "<input>") (src : string) : run =
  run_concat ?mode ?rules ?field_sharing ?simplify ?compact ?budget ?jobs
    ?max_errors ?cache
    ~spans:[ (1, max_int, unit, unit_digest unit src) ]
    src

(** Multi-file projects, concatenated (the parity oracle): the
    translation units are analyzed as one program, as a 1990s
    whole-program analysis would see them after preprocessing. File
    boundaries are kept as comments for span accounting — and, when
    caching, as the unit spans that key per-file invalidation. *)
let concat_sources_spans (files : (string * string) list) :
    string * span list =
  let b = Buffer.create 65536 in
  let line = ref 1 in
  let spans = ref [] in
  List.iter
    (fun (name, src) ->
      Buffer.add_string b (Printf.sprintf "/* === %s === */\n" name);
      incr line;
      let start = !line in
      Buffer.add_string b src;
      let nl =
        String.fold_left (fun a c -> if c = '\n' then a + 1 else a) 0 src
      in
      let add_nl =
        String.length src > 0 && src.[String.length src - 1] <> '\n'
      in
      if add_nl then Buffer.add_char b '\n';
      line := !line + nl + (if add_nl then 1 else 0);
      spans := (start, !line - 1, name, unit_digest name src) :: !spans)
    files;
  (Buffer.contents b, List.rev !spans)

let concat_sources files = fst (concat_sources_spans files)

(** Multi-file projects: each translation unit is lexed and parsed
    independently (per-unit frontend, the default), or the units are
    concatenated and parsed as one megastring ({!Concat}, the legacy
    oracle). Reports, diagnostics, and solver counters are byte-identical
    either way; only speed, memory, and cache granularity differ. *)
let run_sources ?(frontend = Per_unit) ?mode ?rules ?field_sharing ?simplify
    ?compact ?budget ?jobs ?max_errors ?cache
    (files : (string * string) list) : run =
  match frontend with
  | Per_unit ->
      run_units ?mode ?rules ?field_sharing ?simplify ?compact ?budget
        ?jobs ?max_errors ?cache files
  | Concat ->
      let src, spans = concat_sources_spans files in
      let lines =
        List.fold_left
          (fun acc (_, s) -> acc + Cfront.Cprog.count_lines s)
          0 files
      in
      run_concat ?mode ?rules ?field_sharing ?simplify ?compact ?budget
        ?jobs ?max_errors ?cache ~lines ~spans src

(** The frontend alone — parse and link a multi-file project without
    analyzing it. What the bench harness times and heap-profiles when it
    compares the two frontends' compile phases. *)
let compile_sources ?(frontend = Per_unit) ?(jobs = 1) ?max_errors
    (files : (string * string) list) : compiled =
  let me = Option.value max_errors ~default:20 in
  match frontend with
  | Per_unit -> fst (compile_units ~jobs ~me files)
  | Concat ->
      let src, spans = concat_sources_spans files in
      let lines =
        List.fold_left
          (fun acc (_, s) -> acc + Cfront.Cprog.count_lines s)
          0 files
      in
      let (pr, prog), t_compile =
        time (fun () ->
            let pr =
              localize_concat ~spans
                (Cfront.Cparse.parse_program_partial ~max_errors:me src)
            in
            (pr, Cfront.Cprog.build pr.Cfront.Cparse.pr_prog))
      in
      {
        co_prog = prog;
        co_diags = pr.Cfront.Cparse.pr_diags;
        co_degraded = pr.Cfront.Cparse.pr_degraded;
        co_lines = lines;
        co_t_compile = t_compile;
        co_frontend = None;
      }

(** Run both modes, reusing the parse: one row of Table 2. *)
type row = {
  name : string;
  r_lines : int;
  compile_s : float;
  mono_s : float;
  poly_s : float;
  declared : int;
  mono : int;
  poly : int;
  total : int;
  mono_results : Report.results;
  poly_results : Report.results;
}

let table2_row ~name (src : string) : row =
  let prog, t_compile = time (fun () -> compile src) in
  let _, mono_results, mono_s = analyze Analysis.Mono prog in
  let _, poly_results, poly_s = analyze Analysis.Poly prog in
  {
    name;
    r_lines = Cfront.Cprog.count_lines src;
    compile_s = t_compile;
    mono_s;
    poly_s;
    declared = mono_results.Report.declared;
    mono = mono_results.Report.possible;
    poly = poly_results.Report.possible;
    total = mono_results.Report.total;
    mono_results;
    poly_results;
  }
