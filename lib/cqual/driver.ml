(** End-to-end const inference: parse, analyze (mono and/or poly), measure.
    This is the pipeline Table 2 and Figure 6 are produced from. *)

type timing = {
  t_compile : float;  (** parse + table construction, seconds *)
  t_analysis : float;  (** constraint generation + solving *)
}

type run = {
  results : Report.results;
  timing : timing;
  lines : int;
  n_functions : int;
  n_constraints : int;  (** number of qualifier variables, a proxy for size *)
  solver_stats : Typequal.Solver.stats;
      (** constraint-store counters (unifications, dedup, cycle collapses,
          worklist pops) accumulated over the whole run *)
  diagnostics : Cfront.Diag.t list;
      (** lexer/parser diagnostics recovered from, in source order; empty
          for a clean parse *)
  fdg_scc_count : int;  (** SCCs in the function dependence graph *)
  fdg_largest_scc : int;  (** size of the largest (mutual-recursion) SCC *)
  wavefront_width : int;
      (** maximum SCCs simultaneously ready under wavefront scheduling: an
          upper bound on useful analysis parallelism *)
  par : Analysis.par_stats option;
      (** parallel-engine phase breakdown; [None] for serial runs *)
}

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

exception Error of string

let compile src =
  match Cfront.Cparse.parse_program_result src with
  | Error m -> raise (Error m)
  | Ok p -> Cfront.Cprog.build p

let analyze ?rules ?field_sharing ?simplify ?compact ?budget ?jobs mode prog
    =
  let (env, ifaces), t =
    time (fun () ->
        Analysis.run ?rules ?field_sharing ?simplify ?compact ?budget ?jobs
          mode prog)
  in
  let results, t2 = time (fun () -> Report.measure env ifaces) in
  (env, results, t +. t2)

(** Run one mode on C source, recovering from lexer/parser errors: globals
    that fail to parse are dropped (with a diagnostic), function bodies
    that fail are demoted to prototypes and reported as degraded outcomes.
    Raises only for faults that leave nothing to analyze (e.g.
    [Cfront.Cprog.Frontend_error] from table construction). *)
let run_source ?(mode = Analysis.Mono) ?rules ?field_sharing ?simplify
    ?compact ?budget ?jobs ?max_errors (src : string) : run =
  let (pr, prog), t_compile =
    time (fun () ->
        let pr = Cfront.Cparse.parse_program_partial ?max_errors src in
        (pr, Cfront.Cprog.build pr.Cfront.Cparse.pr_prog))
  in
  let env, results, t_analysis =
    analyze ?rules ?field_sharing ?simplify ?compact ?budget ?jobs mode prog
  in
  let fdg = Fdg.build prog in
  let results =
    {
      results with
      Report.outcomes =
        results.Report.outcomes
        @ List.map
            (fun (name, reason) -> (name, Analysis.Degraded reason))
            pr.Cfront.Cparse.pr_degraded;
    }
  in
  {
    results;
    timing = { t_compile; t_analysis };
    lines = Cfront.Cprog.count_lines src;
    n_functions = List.length (Cfront.Cprog.functions prog);
    n_constraints = Typequal.Solver.num_vars env.Analysis.store;
    solver_stats = Analysis.stats env;
    diagnostics = pr.Cfront.Cparse.pr_diags;
    fdg_scc_count = Fdg.scc_count fdg;
    fdg_largest_scc = Fdg.largest_scc fdg;
    wavefront_width = Fdg.wavefront_width fdg;
    par = env.Analysis.par;
  }

(** Multi-file projects: the translation units are analyzed as one
    program by concatenation, as a 1990s whole-program analysis would see
    them after preprocessing (each unit already carries the shared
    prototypes from its header, and the generator emits the header as the
    first unit). File boundaries are kept as comments for line
    accounting. *)
let concat_sources (files : (string * string) list) : string =
  let b = Buffer.create 65536 in
  List.iter
    (fun (name, src) ->
      Buffer.add_string b (Printf.sprintf "/* === %s === */\n" name);
      Buffer.add_string b src;
      if String.length src > 0 && src.[String.length src - 1] <> '\n' then
        Buffer.add_char b '\n')
    files;
  Buffer.contents b

let run_sources ?mode ?rules ?field_sharing ?simplify ?compact ?budget ?jobs
    ?max_errors (files : (string * string) list) : run =
  run_source ?mode ?rules ?field_sharing ?simplify ?compact ?budget ?jobs
    ?max_errors (concat_sources files)

(** Run both modes, reusing the parse: one row of Table 2. *)
type row = {
  name : string;
  r_lines : int;
  compile_s : float;
  mono_s : float;
  poly_s : float;
  declared : int;
  mono : int;
  poly : int;
  total : int;
  mono_results : Report.results;
  poly_results : Report.results;
}

let table2_row ~name (src : string) : row =
  let prog, t_compile = time (fun () -> compile src) in
  let _, mono_results, mono_s = analyze Analysis.Mono prog in
  let _, poly_results, poly_s = analyze Analysis.Poly prog in
  {
    name;
    r_lines = Cfront.Cprog.count_lines src;
    compile_s = t_compile;
    mono_s;
    poly_s;
    declared = mono_results.Report.declared;
    mono = mono_results.Report.possible;
    poly = poly_results.Report.possible;
    total = mono_results.Report.total;
    mono_results;
    poly_results;
  }
