(** End-to-end const inference: parse, analyze (mono and/or poly), measure.
    This is the pipeline Table 2 and Figure 6 are produced from. *)

type timing = {
  t_compile : float;  (** parse + table construction, seconds *)
  t_analysis : float;  (** constraint generation + solving *)
}

type run = {
  results : Report.results;
  timing : timing;
  lines : int;
  n_functions : int;
  n_constraints : int;  (** number of qualifier variables, a proxy for size *)
  solver_stats : Typequal.Solver.stats;
      (** constraint-store counters (unifications, dedup, cycle collapses,
          worklist pops) accumulated over the whole run *)
  diagnostics : Cfront.Diag.t list;
      (** lexer/parser diagnostics recovered from, in source order; empty
          for a clean parse *)
  fdg_scc_count : int;  (** SCCs in the function dependence graph *)
  fdg_largest_scc : int;  (** size of the largest (mutual-recursion) SCC *)
  wavefront_width : int;
      (** maximum SCCs simultaneously ready under wavefront scheduling: an
          upper bound on useful analysis parallelism *)
  par : Analysis.par_stats option;
      (** parallel-engine phase breakdown; [None] for serial runs *)
}

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

exception Error of string

let compile src =
  match Cfront.Cparse.parse_program_result src with
  | Error m -> raise (Error m)
  | Ok p -> Cfront.Cprog.build p

(* ------------------------------------------------------------------ *)
(* Persistent cache (three tiers; see DESIGN.md)                       *)
(* ------------------------------------------------------------------ *)

module Cache = Typequal.Cache

(** an open cache plus the caller's identity string for everything the
    fingerprints below cannot see — the rule set beyond its qualifier
    space (e.g. which CLI analysis flavour and lattice file built it) *)
type cache_spec = { cs_cache : Cache.t; cs_opts_id : string }

(* The context digest stamped into every envelope: qualifier-space dump
   (the full lattice structure), compiler version (Marshal payloads are
   not portable across it), and a payload-format revision to bump whenever
   any marshaled type in this file or the analysis changes shape. *)
let space_fingerprint (sp : Typequal.Lattice.Space.t) : Digest.t =
  Digest.string
    (Fmt.str "%a|%s|payload-fmt-1" Typequal.Lattice.Space.pp_dump sp
       Sys.ocaml_version)

(** Open a cache directory for runs under this rule set (default: const
    inference). Returns [None] — after [warn] — when the path is unusable;
    run without a cache then. Never raises. *)
let open_cache ?warn ?(rules = Analysis.const_rules) ~opts_id dir :
    cache_spec option =
  match
    Cache.open_dir ?warn ~ctx:(space_fingerprint rules.Analysis.qr_space) dir
  with
  | Some c -> Some { cs_cache = c; cs_opts_id = opts_id }
  | None -> None

(* Unit identity: the per-file content hash that keys invalidation. The
   name participates, so renaming a file on disk invalidates exactly the
   units (and run) that file contributes to — even though the analysis
   sees one concatenated program. *)
let unit_digest name content = Digest.string (name ^ "\000" ^ content)

(* a unit's span in the concatenated program: first line, last line,
   content digest *)
type span = int * int * string

let mode_name = function
  | Analysis.Mono -> "mono"
  | Analysis.Poly -> "poly"
  | Analysis.Polyrec -> "polyrec"

(* Everything that parameterizes inference besides the program text and
   the qualifier space (already in the envelope context). [jobs] is
   deliberately absent: results are jobs-invariant. *)
let opt_fingerprint ~(cs : cache_spec) ~mode ~field_sharing ~simplify
    ~compact ~max_errors : string =
  let ob = function Some b -> string_of_bool b | None -> "-" in
  Digest.string
    (String.concat "|"
       [
         cs.cs_opts_id;
         mode_name mode;
         ob field_sharing;
         ob simplify;
         ob compact;
         (match max_errors with Some n -> string_of_int n | None -> "-");
       ])

(* The cross-unit declaration context a function's analysis depends on
   beyond its own unit: globals, prototypes, typedefs, struct/union
   layouts, enums — everything of the program except function bodies
   (covered per-unit) and the FDG dependency set (covered by the
   envelopes' dependency digests). Line numbers and initializers are
   excluded, so touching one unit does not invalidate the others. *)
let env_fingerprint (prog : Cfront.Cprog.t) : string =
  let b = Buffer.create 4096 in
  let put x = Buffer.add_string b (Marshal.to_string x []) in
  List.iter
    (fun (g : Cfront.Cast.global) ->
      match g with
      | Cfront.Cast.GFun _ -> ()
      | Cfront.Cast.GVar d ->
          put ("v", d.Cfront.Cast.d_name, d.Cfront.Cast.d_type)
      | Cfront.Cast.GProto (n, t, _) -> put ("p", n, t)
      | Cfront.Cast.GTypedef (n, t, _) -> put ("t", n, t)
      | Cfront.Cast.GComp (tag, u, fields, _) -> put ("c", (tag, u, fields))
      | Cfront.Cast.GEnum (tag, items, _) -> put ("e", (tag, items)))
    prog.Cfront.Cprog.order;
  Digest.string (Buffer.contents b)

(* the run record's cacheable core: no wall-clock, no parallel-phase
   breakdown, solver counters sanitized of nondeterministic fields *)
type cached_run = {
  cr_results : Report.results;
  cr_lines : int;
  cr_n_functions : int;
  cr_n_constraints : int;
  cr_stats : Typequal.Solver.stats;
  cr_diags : Cfront.Diag.t list;
  cr_scc_count : int;
  cr_largest_scc : int;
  cr_wavefront : int;
}

(* load kind/key and unmarshal as ['a]; any decode failure rejects the
   entry (the envelope verified, so the payload was well-formed bytes that
   mean nothing to us — e.g. written by a differently-shaped build) *)
let load_marshal (type a) (c : Cache.t) ~kind ~key ~deps : a option =
  match Cache.load c ~kind ~key ~deps with
  | None -> None
  | Some payload -> (
      match (Marshal.from_string payload 0 : a) with
      | v -> Some v
      | exception ((Out_of_memory | Sys.Break) as e) -> raise e
      | exception _ ->
          Cache.reject_undecodable c ~kind ~key;
          None)

let analyze ?rules ?field_sharing ?simplify ?compact ?budget ?jobs ?cache
    mode prog =
  let (env, ifaces), t =
    time (fun () ->
        Analysis.run ?rules ?field_sharing ?simplify ?compact ?budget ?cache
          ?jobs mode prog)
  in
  let st = env.Analysis.store in
  let solve0 = (Typequal.Solver.stats st).solve_s in
  let results, t2 = time (fun () -> Report.measure env ifaces) in
  (* the report's own cost, minus the final solve it triggers (that time
     is already accounted to solve_s) *)
  let solve_d = (Typequal.Solver.stats st).solve_s -. solve0 in
  Typequal.Solver.note_phase st Typequal.Solver.Report
    (Float.max 0. (t2 -. solve_d));
  (env, results, t +. t2)

(* One mode over an already-concatenated program [src] whose units are
   described by [spans]. The cold path is the pre-cache pipeline verbatim;
   the cached path layers three tiers over it — whole-run, parsed AST, and
   per-SCC schemes (inside {!Analysis.run}) — each of which degrades to
   the tier below on any miss or rejection, so every fault converges to
   the cold result. *)
let run_concat ?(mode = Analysis.Mono) ?rules ?field_sharing ?simplify
    ?compact ?budget ?jobs ?max_errors ?cache ~(spans : span list)
    (src : string) : run =
  let cold_analyze ?cache () =
    let (pr, prog), t_compile =
      time (fun () ->
          let pr = Cfront.Cparse.parse_program_partial ?max_errors src in
          (pr, Cfront.Cprog.build pr.Cfront.Cparse.pr_prog))
    in
    (pr, prog, t_compile, cache)
  in
  let finish (pr, prog, t_compile, cache) =
    let env, results, t_analysis =
      analyze ?rules ?field_sharing ?simplify ?compact ?budget ?jobs ?cache
        mode prog
    in
    let fdg = Fdg.build prog in
    let results =
      {
        results with
        Report.outcomes =
          results.Report.outcomes
          @ List.map
              (fun (name, reason) -> (name, Analysis.Degraded reason))
              pr.Cfront.Cparse.pr_degraded;
      }
    in
    {
      results;
      timing = { t_compile; t_analysis };
      lines = Cfront.Cprog.count_lines src;
      n_functions = List.length (Cfront.Cprog.functions prog);
      n_constraints = Typequal.Solver.num_vars env.Analysis.store;
      solver_stats = Analysis.stats env;
      diagnostics = pr.Cfront.Cparse.pr_diags;
      fdg_scc_count = Fdg.scc_count fdg;
      fdg_largest_scc = Fdg.largest_scc fdg;
      wavefront_width = Fdg.wavefront_width fdg;
      par = env.Analysis.par;
    }
  in
  (* budgeted runs are load-dependent, not reproducible artifacts: never
     cached, never served from cache *)
  let cache = match budget with Some _ -> None | None -> cache in
  match cache with
  | None -> finish (cold_analyze ())
  | Some cs -> (
      let t0 = Unix.gettimeofday () in
      let optfp =
        opt_fingerprint ~cs ~mode ~field_sharing ~simplify ~compact
          ~max_errors
      in
      let run_key =
        Digest.string
          (optfp ^ String.concat "" (List.map (fun (_, _, d) -> d) spans))
      in
      match
        (load_marshal cs.cs_cache ~kind:"run" ~key:run_key ~deps:[]
          : cached_run option)
      with
      | Some cr ->
          {
            results = cr.cr_results;
            timing =
              { t_compile = 0.; t_analysis = Unix.gettimeofday () -. t0 };
            lines = cr.cr_lines;
            n_functions = cr.cr_n_functions;
            n_constraints = cr.cr_n_constraints;
            solver_stats = cr.cr_stats;
            diagnostics = cr.cr_diags;
            fdg_scc_count = cr.cr_scc_count;
            fdg_largest_scc = cr.cr_largest_scc;
            wavefront_width = cr.cr_wavefront;
            par = None;
          }
      | None ->
          let ast_key =
            Digest.string
              (Printf.sprintf "ast\000%s\000%s"
                 (match max_errors with
                 | Some n -> string_of_int n
                 | None -> "-")
                 src)
          in
          let (pr, prog), t_compile =
            time (fun () ->
                let pr =
                  match
                    (load_marshal cs.cs_cache ~kind:"ast" ~key:ast_key
                       ~deps:[]
                      : Cfront.Cparse.presult option)
                  with
                  | Some pr -> pr
                  | None ->
                      let pr =
                        Cfront.Cparse.parse_program_partial ?max_errors src
                      in
                      Cache.store cs.cs_cache ~kind:"ast" ~key:ast_key
                        ~deps:[]
                        (Marshal.to_string pr []);
                      pr
                in
                (pr, Cfront.Cprog.build pr.Cfront.Cparse.pr_prog))
          in
          let unit_of =
            let tbl = Hashtbl.create 64 in
            List.iter
              (fun (f : Cfront.Cast.fundef) ->
                List.iter
                  (fun (s, e, d) ->
                    if
                      f.Cfront.Cast.f_line >= s
                      && f.Cfront.Cast.f_line <= e
                      && not (Hashtbl.mem tbl f.Cfront.Cast.f_name)
                    then Hashtbl.replace tbl f.Cfront.Cast.f_name d)
                  spans)
              (Cfront.Cprog.functions prog);
            fun name -> Hashtbl.find_opt tbl name
          in
          let actx =
            {
              Analysis.cc_cache = cs.cs_cache;
              cc_key_prefix = env_fingerprint prog ^ optfp;
              cc_unit_of = unit_of;
            }
          in
          let run = finish (pr, prog, t_compile, Some actx) in
          let cr =
            {
              cr_results = run.results;
              cr_lines = run.lines;
              cr_n_functions = run.n_functions;
              cr_n_constraints = run.n_constraints;
              cr_stats = Analysis.sanitize_stats run.solver_stats;
              cr_diags = run.diagnostics;
              cr_scc_count = run.fdg_scc_count;
              cr_largest_scc = run.fdg_largest_scc;
              cr_wavefront = run.wavefront_width;
            }
          in
          Cache.store cs.cs_cache ~kind:"run" ~key:run_key ~deps:[]
            (Marshal.to_string cr []);
          run)

(** Run one mode on C source, recovering from lexer/parser errors: globals
    that fail to parse are dropped (with a diagnostic), function bodies
    that fail are demoted to prototypes and reported as degraded outcomes.
    Raises only for faults that leave nothing to analyze (e.g.
    [Cfront.Cprog.Frontend_error] from table construction). *)
let run_source ?mode ?rules ?field_sharing ?simplify ?compact ?budget ?jobs
    ?max_errors ?cache ?(unit = "<input>") (src : string) : run =
  run_concat ?mode ?rules ?field_sharing ?simplify ?compact ?budget ?jobs
    ?max_errors ?cache
    ~spans:[ (1, max_int, unit_digest unit src) ]
    src

(** Multi-file projects: the translation units are analyzed as one
    program by concatenation, as a 1990s whole-program analysis would see
    them after preprocessing (each unit already carries the shared
    prototypes from its header, and the generator emits the header as the
    first unit). File boundaries are kept as comments for line
    accounting — and, when caching, as the unit spans that key per-file
    invalidation. *)
let concat_sources_spans (files : (string * string) list) :
    string * span list =
  let b = Buffer.create 65536 in
  let line = ref 1 in
  let spans = ref [] in
  List.iter
    (fun (name, src) ->
      Buffer.add_string b (Printf.sprintf "/* === %s === */\n" name);
      incr line;
      let start = !line in
      Buffer.add_string b src;
      let nl =
        String.fold_left (fun a c -> if c = '\n' then a + 1 else a) 0 src
      in
      let add_nl =
        String.length src > 0 && src.[String.length src - 1] <> '\n'
      in
      if add_nl then Buffer.add_char b '\n';
      line := !line + nl + (if add_nl then 1 else 0);
      spans := (start, !line - 1, unit_digest name src) :: !spans)
    files;
  (Buffer.contents b, List.rev !spans)

let concat_sources files = fst (concat_sources_spans files)

let run_sources ?mode ?rules ?field_sharing ?simplify ?compact ?budget ?jobs
    ?max_errors ?cache (files : (string * string) list) : run =
  let src, spans = concat_sources_spans files in
  run_concat ?mode ?rules ?field_sharing ?simplify ?compact ?budget ?jobs
    ?max_errors ?cache ~spans src

(** Run both modes, reusing the parse: one row of Table 2. *)
type row = {
  name : string;
  r_lines : int;
  compile_s : float;
  mono_s : float;
  poly_s : float;
  declared : int;
  mono : int;
  poly : int;
  total : int;
  mono_results : Report.results;
  poly_results : Report.results;
}

let table2_row ~name (src : string) : row =
  let prog, t_compile = time (fun () -> compile src) in
  let _, mono_results, mono_s = analyze Analysis.Mono prog in
  let _, poly_results, poly_s = analyze Analysis.Poly prog in
  {
    name;
    r_lines = Cfront.Cprog.count_lines src;
    compile_s = t_compile;
    mono_s;
    poly_s;
    declared = mono_results.Report.declared;
    mono = mono_results.Report.possible;
    poly = poly_results.Report.possible;
    total = mono_results.Report.total;
    mono_results;
    poly_results;
  }
