(** The benchmark suite of Table 1, as synthetic stand-ins.

    The paper analyzed six real C packages; we cannot ship them, so each
    row is regenerated deterministically at the same line count with the
    generator (see DESIGN.md, Substitutions). Names carry a [-sim] suffix
    to make the substitution explicit in all output. *)

type bench = {
  b_name : string;
  b_description : string;
  b_lines : int;  (** the paper's Table 1 line count *)
  b_seed : int;
}

(** Table 1. *)
let table1 =
  [
    {
      b_name = "woman-3.0a-sim";
      b_description = "Replacement for man package";
      b_lines = 1496;
      b_seed = 0x30a;
    }
    ;
    {
      b_name = "patch-2.5-sim";
      b_description = "Apply a diff file to an original";
      b_lines = 5303;
      b_seed = 0x25;
    };
    {
      b_name = "m4-1.4-sim";
      b_description = "Unix macro preprocessor";
      b_lines = 7741;
      b_seed = 0x14;
    };
    {
      b_name = "diffutils-2.7-sim";
      b_description = "Collection of utilities for diffing files";
      b_lines = 8741;
      b_seed = 0x27;
    };
    {
      b_name = "ssh-1.2.26-sim";
      b_description = "Secure shell";
      b_lines = 18620;
      b_seed = 0x1226;
    };
    {
      b_name = "uucp-1.04-sim";
      b_description = "Unix to unix copy package";
      b_lines = 36913;
      b_seed = 0x104;
    };
  ]

let source_of (b : bench) : string =
  Gen.generate ~seed:b.b_seed ~target_lines:b.b_lines ()

(** A reduced suite for quick test runs. *)
let small =
  [
    { b_name = "tiny-sim"; b_description = "tiny"; b_lines = 300; b_seed = 42 };
    {
      b_name = "small-sim";
      b_description = "small";
      b_lines = 1200;
      b_seed = 43;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Scale corpora (multi-file projects)                                 *)
(* ------------------------------------------------------------------ *)

(** The million-line-push workloads: deterministic multi-file projects
    with cross-file call graphs and mutual-recursion rings spanning every
    file (see {!Gen.generate_project}). [scale] is what the [scale] bench
    section and the CI scale-smoke job run; the line counts are targets —
    the realized count is whatever the generator emits at or just above
    the target. *)
let scale =
  [
    {
      b_name = "mega-project-sim";
      b_description = "1M+ line multi-file project";
      b_lines = 1_000_000;
      b_seed = 0xA11;
    };
  ]

(** The reduced scale corpus for CI smoke runs (~100 kloc). *)
let scale_smoke =
  [
    {
      b_name = "midi-project-sim";
      b_description = "100 kloc multi-file project";
      b_lines = 100_000;
      b_seed = 0xA12;
    };
  ]

let project_of (b : bench) : (string * string) list =
  Gen.generate_project ~seed:b.b_seed ~target_lines:b.b_lines ()
